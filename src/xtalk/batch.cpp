#include "xtalk/batch.h"

#include <bit>
#include <cassert>
#include <stdexcept>
#include <string>

namespace xtest::xtalk {

namespace {

// Same constant as the reference model and BusEvaluator: delay expressions
// must round identically across all three paths.
constexpr double kLn2 = 0.6931471805599453;

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = i;
  return v;
}

// --- lane kernels ----------------------------------------------------------
// Unit-stride loops over `lanes` doubles; plain C++ the compiler can
// auto-vectorize.  These four are the dispatch seam for an explicit AVX2
// path: swap their bodies behind a runtime CPU check without touching the
// callers, and bit-identity is preserved as long as each lane's operation
// order is (they are independent per lane).

void accumulate_row(double* acc, const double* row, double scale,
                    std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) acc[l] += scale * row[l];
}

void fill_lanes(double* acc, double value, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) acc[l] = value;
}

/// Glitch verdicts for a stable wire: flips lane l's bit when the victim
/// excursion vdd * acc[l] / denom[l] crosses the threshold away from the
/// held value.  Same expression shape as BusEvaluator.
void apply_glitch(std::uint64_t* out, const double* acc, const double* denom,
                  double vdd, double threshold, bool b2, std::uint64_t bit,
                  std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    const double dv = vdd * acc[l] / denom[l];
    const bool flips = b2 ? (-dv >= threshold) : (dv >= threshold);
    if (flips) out[l] ^= bit;
  }
}

/// Delay verdicts for a switching wire: lane l samples the old bit when
/// ln2 * R * ceff[l] * 1e-6 exceeds the sampling slack.
void apply_delay(std::uint64_t* out, const double* ceff, double resistance,
                 double slack_ns, std::uint64_t bit, std::size_t lanes) {
  for (std::size_t l = 0; l < lanes; ++l) {
    const double delay = kLn2 * resistance * ceff[l] * 1e-6;
    if (delay > slack_ns) out[l] ^= bit;
  }
}

}  // namespace

DefectBatch::DefectBatch(const RcNetwork& nominal,
                         const DefectLibrary& library,
                         std::vector<std::size_t> indices,
                         std::vector<std::optional<MafFault>> forced)
    : width_(nominal.width()),
      lanes_(indices.size()),
      driver_resistance_ohm_(nominal.driver_resistance()),
      sources_(std::move(indices)),
      ground_(width_) {
  if (!forced.empty() && forced.size() != lanes_)
    throw std::invalid_argument(
        "DefectBatch: " + std::to_string(forced.size()) +
        " forced faults for " + std::to_string(lanes_) + " lanes");
  forced_ = forced.empty()
                ? std::vector<std::optional<MafFault>>(lanes_)
                : std::move(forced);
  for (unsigned i = 0; i < width_; ++i) ground_[i] = nominal.ground_cap(i);

  const std::size_t npairs =
      static_cast<std::size_t>(width_) * (width_ - 1) / 2;
  factors_.resize(lanes_ * npairs);
  coupling_.assign(static_cast<std::size_t>(width_) * width_ * lanes_, 0.0);
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    const Defect& d = library[sources_[lane]];
    if (d.width() != width_)
      throw std::invalid_argument(
          "DefectBatch: defect " + std::to_string(sources_[lane]) +
          " has width " + std::to_string(d.width()) +
          ", batch bus has width " + std::to_string(width_));
    std::size_t k = 0;
    for (unsigned i = 0; i < width_; ++i) {
      for (unsigned j = i + 1; j < width_; ++j, ++k) {
        const double f = d.factor(i, j);
        factors_[lane * npairs + k] = f;
        // Exactly RcNetwork::scale_coupling: one multiply of the nominal
        // symmetric entry.
        const double c = nominal.coupling(i, j) * f;
        coupling_[(static_cast<std::size_t>(i) * width_ + j) * lanes_ +
                  lane] = c;
        coupling_[(static_cast<std::size_t>(j) * width_ + i) * lanes_ +
                  lane] = c;
      }
    }
  }
}

DefectBatch::DefectBatch(const RcNetwork& nominal,
                         const DefectLibrary& library,
                         std::vector<std::optional<MafFault>> forced)
    : DefectBatch(nominal, library, iota_indices(library.size()),
                  std::move(forced)) {}

Defect DefectBatch::scatter(std::size_t lane) const {
  const std::size_t npairs =
      static_cast<std::size_t>(width_) * (width_ - 1) / 2;
  return Defect(width_,
                std::vector<double>(factors_.begin() + lane * npairs,
                                    factors_.begin() + (lane + 1) * npairs));
}

BatchEvaluator::BatchEvaluator(const DefectBatch& batch,
                               const ErrorModelConfig& config)
    : batch_(&batch),
      quiet_is_identity_(config.glitch_threshold_v > 0.0),
      vdd_v_(config.vdd_v),
      glitch_threshold_v_(config.glitch_threshold_v),
      delay_slack_ns_(config.delay_slack_ns),
      driver_resistance_ohm_(batch.driver_resistance()),
      glitch_denom_(static_cast<std::size_t>(batch.width()) * batch.lanes()),
      acc_(batch.lanes()),
      out_(batch.lanes()) {
  const unsigned width = batch.width();
  const std::size_t lanes = batch.lanes();
  assert(width >= 1 && width <= 64);
  // Per (wire, lane) glitch denominator: ground_cap(i) + net_coupling(i)
  // with net_coupling summing all couplings of the defect-applied network
  // in ascending wire order, exactly like RcNetwork::net_coupling (the
  // zero diagonal contributes +0.0 there too).
  for (unsigned i = 0; i < width; ++i) {
    double* denom = &glitch_denom_[static_cast<std::size_t>(i) * lanes];
    fill_lanes(denom, 0.0, lanes);
    for (unsigned j = 0; j < width; ++j)
      accumulate_row(denom, batch.pair_row(i, j), 1.0, lanes);
    for (std::size_t l = 0; l < lanes; ++l) denom[l] = batch.ground(i) + denom[l];
  }
  // Forced-MAF lanes: the MA test is the unique fully exciting pair, so
  // the runtime override reduces to one word compare per lane.
  forced_active_.assign(lanes, 0);
  forced_v1_.assign(lanes, 0);
  forced_v2_.assign(lanes, 0);
  forced_word_.assign(lanes, 0);
  forced_direction_.assign(lanes, BusDirection::kCpuToCore);
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::optional<MafFault>& f = batch.forced(l);
    if (!f) continue;
    any_forced_ = true;
    const VectorPair pair = ma_test(width, *f);
    forced_active_[l] = 1;
    forced_v1_[l] = pair.v1.bits();
    forced_v2_[l] = pair.v2.bits();
    forced_word_[l] = faulty_v2(*f, pair).bits();
    forced_direction_[l] = f->direction;
  }
}

std::uint64_t BatchEvaluator::receive(std::size_t lane, std::uint64_t v1,
                                      std::uint64_t v2,
                                      BusDirection direction) const {
  const unsigned width = batch_->width();
  const std::size_t lanes = batch_->lanes();
  const std::uint64_t toggled = v1 ^ v2;
  std::uint64_t out = v2;
  if (toggled != 0 || !quiet_is_identity_) {
    for (unsigned i = 0; i < width; ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if ((toggled & bit) == 0) {
        double injected = 0.0;
        for (std::uint64_t m = toggled; m != 0; m &= m - 1) {
          const unsigned j = static_cast<unsigned>(std::countr_zero(m));
          injected += (((v2 >> j) & 1) != 0 ? 1.0 : -1.0) *
                      batch_->pair_row(i, j)[lane];
        }
        const double dv =
            vdd_v_ * injected /
            glitch_denom_[static_cast<std::size_t>(i) * lanes + lane];
        const bool b2 = (v2 & bit) != 0;
        const bool flips = b2 ? (-dv >= glitch_threshold_v_)
                              : (dv >= glitch_threshold_v_);
        if (flips) out ^= bit;
      } else {
        const bool rising = (v2 & bit) != 0;
        double ceff = batch_->ground(i);
        for (unsigned j = 0; j < width; ++j) {
          double miller = 1.0;
          if (((toggled >> j) & 1) != 0)
            miller = (((v2 >> j) & 1) != 0) == rising ? 0.0 : 2.0;
          ceff += miller * batch_->pair_row(i, j)[lane];
        }
        const double delay = kLn2 * driver_resistance_ohm_ * ceff * 1e-6;
        if (delay > delay_slack_ns_) out ^= bit;
      }
    }
  }
  if (forced_active_.size() > lane && forced_active_[lane] &&
      forced_direction_[lane] == direction && v1 == forced_v1_[lane] &&
      v2 == forced_v2_[lane])
    out = forced_word_[lane];
  return out;
}

std::size_t BatchEvaluator::screen(std::uint64_t v1, std::uint64_t v2,
                                   BusDirection direction,
                                   std::uint64_t expected,
                                   std::uint8_t* live) {
  const unsigned width = batch_->width();
  const std::size_t lanes = batch_->lanes();
  const std::uint64_t toggled = v1 ^ v2;

  if (toggled == 0 && quiet_is_identity_ && !any_forced_) {
    // Quiet transfer: every lane provably samples the driven word.
    std::size_t alive = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
      if (live[l] && v2 != expected) live[l] = 0;
      alive += live[l];
    }
    return alive;
  }

  for (std::size_t l = 0; l < lanes; ++l) out_[l] = v2;
  if (!(toggled == 0 && quiet_is_identity_)) {
    for (unsigned i = 0; i < width; ++i) {
      const std::uint64_t bit = std::uint64_t{1} << i;
      if ((toggled & bit) == 0) {
        // Stable wire: per-lane injected charge over the toggled
        // aggressors, ascending wire order (countr_zero walks ascending).
        fill_lanes(acc_.data(), 0.0, lanes);
        for (std::uint64_t m = toggled; m != 0; m &= m - 1) {
          const unsigned j = static_cast<unsigned>(std::countr_zero(m));
          const double s = ((v2 >> j) & 1) != 0 ? 1.0 : -1.0;
          accumulate_row(acc_.data(), batch_->pair_row(i, j), s, lanes);
        }
        apply_glitch(out_.data(), acc_.data(),
                     &glitch_denom_[static_cast<std::size_t>(i) * lanes],
                     vdd_v_, glitch_threshold_v_, (v2 & bit) != 0, bit,
                     lanes);
      } else {
        // Switching wire: the Miller factor of each aggressor depends only
        // on the transition, so it is shared by every lane; the full
        // ascending-j loop keeps the per-lane sum bit-identical to
        // BusEvaluator (j == i adds Miller 0 times the zero diagonal).
        const bool rising = (v2 & bit) != 0;
        fill_lanes(acc_.data(), batch_->ground(i), lanes);
        for (unsigned j = 0; j < width; ++j) {
          double miller = 1.0;
          if (((toggled >> j) & 1) != 0)
            miller = (((v2 >> j) & 1) != 0) == rising ? 0.0 : 2.0;
          accumulate_row(acc_.data(), batch_->pair_row(i, j), miller, lanes);
        }
        apply_delay(out_.data(), acc_.data(), driver_resistance_ohm_,
                    delay_slack_ns_, bit, lanes);
      }
    }
  }
  if (any_forced_) {
    for (std::size_t l = 0; l < lanes; ++l)
      if (forced_active_[l] && forced_direction_[l] == direction &&
          v1 == forced_v1_[l] && v2 == forced_v2_[l])
        out_[l] = forced_word_[l];
  }
  std::size_t alive = 0;
  for (std::size_t l = 0; l < lanes; ++l) {
    if (live[l] && out_[l] != expected) live[l] = 0;
    alive += live[l];
  }
  return alive;
}

}  // namespace xtest::xtalk
