#include "xtalk/fast_model.h"

#include <bit>
#include <cassert>

namespace xtest::xtalk {

namespace {
// Same constant as the reference model (error_model.cpp): the delay
// expressions must round identically.
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

BusEvaluator::BusEvaluator(const RcNetwork& net, const ErrorModelConfig& config)
    : width_(net.width()),
      quiet_is_identity_(config.glitch_threshold_v > 0.0),
      vdd_v_(config.vdd_v),
      glitch_threshold_v_(config.glitch_threshold_v),
      delay_slack_ns_(config.delay_slack_ns),
      driver_resistance_ohm_(net.driver_resistance()),
      rows_(static_cast<std::size_t>(width_) * width_),
      glitch_denom_(width_),
      ground_(width_) {
  assert(width_ >= 1 && width_ <= 64);
  // Sound worst-case bounds, conservative in the FP sense: a wire whose
  // worst achievable excursion (all aggressors conspiring) sits strictly
  // below the threshold -- with a relative margin dwarfing any rounding
  // the per-transition sums can accumulate -- provably never deviates,
  // on any transition, and receive() need not evaluate it at all.
  constexpr double kFpMargin = 1.0 + 1e-9;
  for (unsigned i = 0; i < width_; ++i) {
    double sum_abs = 0.0;    // worst |injected charge| on a stable wire
    double sum_pos2 = 0.0;   // worst Miller load on a switching wire
    for (unsigned j = 0; j < width_; ++j) {
      const double c = net.coupling(i, j);
      rows_[static_cast<std::size_t>(i) * width_ + j] = c;
      sum_abs += c < 0.0 ? -c : c;
      if (c > 0.0) sum_pos2 += 2.0 * c;
    }
    // Exactly the reference's `total`: ground_cap(i) + net_coupling(i),
    // with net_coupling summing all couplings in ascending wire order.
    glitch_denom_[i] = net.ground_cap(i) + net.net_coupling(i);
    ground_[i] = net.ground_cap(i);

    const double dv_max = vdd_v_ * sum_abs / glitch_denom_[i];
    const bool can_glitch =
        !(dv_max * kFpMargin < glitch_threshold_v_);
    const double delay_max =
        kLn2 * driver_resistance_ohm_ * (ground_[i] + sum_pos2) * 1e-6;
    const bool can_delay = delay_max * kFpMargin > delay_slack_ns_;
    if (can_glitch || can_delay) active_.push_back(i);
  }
  always_identity_ = active_.empty();
}

std::uint64_t BusEvaluator::receive(std::uint64_t v1, std::uint64_t v2) const {
  assert(width_ != 0);
  const std::uint64_t toggled = v1 ^ v2;
  if (toggled == 0 && quiet_is_identity_) return v2;
  if (always_identity_) return v2;

  std::uint64_t out = v2;
  // Only the active wires are evaluated; the pruned ones provably keep
  // their driven value (bounds above), and each wire's decision depends
  // only on (v1, v2) and its own row, so skipping the others is exact.
  for (const unsigned i : active_) {
    const double* row = &rows_[static_cast<std::size_t>(i) * width_];
    const std::uint64_t bit = std::uint64_t{1} << i;
    if ((toggled & bit) == 0) {
      // Stable wire: charge injected by the toggled aggressors only, summed
      // in ascending wire order like the reference (quiet aggressors
      // contribute exactly nothing there too -- they are `continue`d).
      double injected = 0.0;
      for (std::uint64_t m = toggled; m != 0; m &= m - 1) {
        const unsigned j = static_cast<unsigned>(std::countr_zero(m));
        injected += (((v2 >> j) & 1) != 0 ? 1.0 : -1.0) * row[j];
      }
      const double dv = vdd_v_ * injected / glitch_denom_[i];
      const bool b2 = (v2 & bit) != 0;
      const bool flips = b2 ? (-dv >= glitch_threshold_v_)
                            : (dv >= glitch_threshold_v_);
      if (flips) out ^= bit;
    } else {
      // Switching wire: the reference walks every aggressor in ascending
      // order (quiet Miller factor 1), so this loop must too to keep the
      // floating-point sum bit-identical.  The j == i term multiplies the
      // zero diagonal by Miller 0 and adds exactly +0.0.
      const bool rising = (v2 & bit) != 0;
      double ceff = ground_[i];
      for (unsigned j = 0; j < width_; ++j) {
        double miller = 1.0;
        if (((toggled >> j) & 1) != 0)
          miller = (((v2 >> j) & 1) != 0) == rising ? 0.0 : 2.0;
        ceff += miller * row[j];
      }
      const double delay = kLn2 * driver_resistance_ohm_ * ceff * 1e-6;
      if (delay > delay_slack_ns_) out ^= bit;  // receiver samples old bit
    }
  }
  return out;
}

TransitionCache::TransitionCache(unsigned width, unsigned log2_entries) {
  assert(cacheable(width));
  if (log2_entries > 2 * width) log2_entries = 2 * width;
  // At least one full set of two ways (width >= 1 keeps 2 in range).
  if (log2_entries < 2) log2_entries = 2;
  entries_.assign(std::size_t{1} << log2_entries, Entry{});
  shift_ = 64 - (log2_entries - 1);  // hash selects a set, not an entry
}

bool TransitionCache::lookup(std::uint64_t key, std::uint64_t& value) {
  if (entries_.empty()) return false;
  const std::size_t base = index(key);
  Entry& e0 = entries_[base];
  if (e0.generation == generation_ && e0.key == key) {
    value = e0.value;
    ++hits_;
    return true;
  }
  Entry& e1 = entries_[base + 1];
  if (e1.generation == generation_ && e1.key == key) {
    value = e1.value;
    std::swap(e0, e1);  // keep the set in MRU order
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

void TransitionCache::insert(std::uint64_t key, std::uint64_t value) {
  if (entries_.empty()) return;
  const std::size_t base = index(key);
  entries_[base + 1] = entries_[base];  // evict the LRU way
  entries_[base] = Entry{key, value, generation_};
}

void TransitionCache::invalidate() {
  if (entries_.empty()) return;
  if (++generation_ == 0) {
    // Generation wrapped: entries stamped 0 would read as valid again.
    for (Entry& e : entries_) e.generation = 0;
    generation_ = 1;
  }
}

}  // namespace xtest::xtalk
