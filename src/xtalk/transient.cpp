#include "xtalk/transient.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace xtest::xtalk {

LuSolver::LuSolver(std::vector<double> matrix, unsigned n)
    : lu_(std::move(matrix)), perm_(n), n_(n) {
  assert(lu_.size() == static_cast<std::size_t>(n) * n);
  for (unsigned i = 0; i < n_; ++i) perm_[i] = i;
  for (unsigned col = 0; col < n_; ++col) {
    // Partial pivoting.
    unsigned pivot = col;
    double best = std::abs(lu_[col * n_ + col]);
    for (unsigned r = col + 1; r < n_; ++r) {
      const double v = std::abs(lu_[r * n_ + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-30) {
      singular_ = true;
      return;
    }
    if (pivot != col) {
      for (unsigned c = 0; c < n_; ++c)
        std::swap(lu_[col * n_ + c], lu_[pivot * n_ + c]);
      std::swap(perm_[col], perm_[pivot]);
    }
    const double d = lu_[col * n_ + col];
    for (unsigned r = col + 1; r < n_; ++r) {
      const double f = lu_[r * n_ + col] / d;
      lu_[r * n_ + col] = f;
      for (unsigned c = col + 1; c < n_; ++c)
        lu_[r * n_ + c] -= f * lu_[col * n_ + c];
    }
  }
}

void LuSolver::solve(std::vector<double>& b) const {
  if (singular_) throw std::runtime_error("LuSolver: singular matrix");
  assert(b.size() == n_);
  std::vector<double> x(n_);
  for (unsigned i = 0; i < n_; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower triangle).
  for (unsigned i = 0; i < n_; ++i)
    for (unsigned j = 0; j < i; ++j) x[i] -= lu_[i * n_ + j] * x[j];
  // Back substitution.
  for (unsigned i = n_; i-- > 0;) {
    for (unsigned j = i + 1; j < n_; ++j) x[i] -= lu_[i * n_ + j] * x[j];
    x[i] /= lu_[i * n_ + i];
  }
  b = std::move(x);
}

namespace {

/// Maxwell capacitance matrix in fF: diagonal = ground + all couplings,
/// off-diagonal = -coupling.
std::vector<double> maxwell_matrix(const RcNetwork& net) {
  const unsigned n = net.width();
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  for (unsigned i = 0; i < n; ++i) {
    c[i * n + i] = net.ground_cap(i) + net.net_coupling(i);
    for (unsigned j = 0; j < n; ++j)
      if (j != i) c[i * n + j] = -net.coupling(i, j);
  }
  return c;
}

struct Integrator {
  // Trapezoidal rule for C dV/dt = D (S - V), with C in fF, t in ns,
  // R in ohm: D = 1e6 / R (so that tau = R * C comes out in ns).
  unsigned n;
  double dt;
  std::vector<double> m;  // C/dt - D/2
  std::vector<double> d;  // per-wire conductance term
  LuSolver lhs;           // C/dt + D/2

  Integrator(const RcNetwork& net, double time_step_ns)
      : n(net.width()),
        dt(time_step_ns),
        m(maxwell_matrix(net)),
        d(n, 0.0),
        lhs([&] {
          std::vector<double> a = maxwell_matrix(net);
          for (unsigned i = 0; i < n; ++i) {
            const double g = 1e6 / net.driver_resistance();
            for (unsigned j = 0; j < n; ++j) a[i * n + j] /= time_step_ns;
            a[i * n + i] += g / 2.0;
          }
          return a;
        }(),
            net.width()) {
    const double g = 1e6 / net.driver_resistance();
    for (unsigned i = 0; i < n; ++i) {
      for (unsigned j = 0; j < n; ++j) m[i * n + j] /= dt;
      m[i * n + i] -= g / 2.0;
      d[i] = g;
    }
  }

  /// One step: v := solve(lhs, m*v + d.*s).
  void step(std::vector<double>& v, const std::vector<double>& s) const {
    std::vector<double> rhs(n, 0.0);
    for (unsigned i = 0; i < n; ++i) {
      double acc = 0.0;
      for (unsigned j = 0; j < n; ++j) acc += m[i * n + j] * v[j];
      rhs[i] = acc + d[i] * s[i];
    }
    lhs.solve(rhs);
    v = std::move(rhs);
  }
};

}  // namespace

std::vector<WireResponse> TransientSimulator::simulate(
    const RcNetwork& net, const VectorPair& pair) const {
  const unsigned n = net.width();
  assert(pair.v1.width() == n && pair.v2.width() == n);
  const Integrator integ(net, config_.time_step_ns);

  std::vector<double> v(n), s(n);
  for (unsigned i = 0; i < n; ++i) {
    v[i] = pair.v1.bit(i) ? config_.vdd_v : 0.0;
    s[i] = pair.v2.bit(i) ? config_.vdd_v : 0.0;
  }

  std::vector<WireResponse> out(n);
  const double half = config_.vdd_v / 2.0;
  std::vector<double> prev = v;
  const auto steps =
      static_cast<std::size_t>(config_.duration_ns / config_.time_step_ns);
  for (std::size_t k = 1; k <= steps; ++k) {
    integ.step(v, s);
    const double t = static_cast<double>(k) * config_.time_step_ns;
    for (unsigned i = 0; i < n; ++i) {
      const double exc = v[i] - s[i];
      if (std::abs(exc) > std::abs(out[i].peak_excursion_v))
        out[i].peak_excursion_v = exc;
      // Track the last crossing of Vdd/2 (linear interpolation).
      if ((prev[i] - half) * (v[i] - half) < 0.0) {
        const double f = (half - prev[i]) / (v[i] - prev[i]);
        out[i].crossing_time_ns = t - config_.time_step_ns * (1.0 - f);
      }
    }
    prev = v;
  }
  return out;
}

std::vector<double> TransientSimulator::waveform(const RcNetwork& net,
                                                 const VectorPair& pair,
                                                 unsigned wire) const {
  const unsigned n = net.width();
  assert(wire < n);
  const Integrator integ(net, config_.time_step_ns);
  std::vector<double> v(n), s(n);
  for (unsigned i = 0; i < n; ++i) {
    v[i] = pair.v1.bit(i) ? config_.vdd_v : 0.0;
    s[i] = pair.v2.bit(i) ? config_.vdd_v : 0.0;
  }
  std::vector<double> wf{v[wire]};
  const auto steps =
      static_cast<std::size_t>(config_.duration_ns / config_.time_step_ns);
  for (std::size_t k = 1; k <= steps; ++k) {
    integ.step(v, s);
    wf.push_back(v[wire]);
  }
  return wf;
}

ErrorModelConfig transient_calibrated(const RcNetwork& nominal,
                                      double cth_fF,
                                      const TransientSimulator& sim) {
  // Scale the center wire's couplings so its net coupling equals Cth, then
  // measure the transient MA responses there.
  const unsigned n = nominal.width();
  const unsigned victim = n / 2;
  RcNetwork at_cth = nominal;
  const double factor = cth_fF / nominal.net_coupling(victim);
  for (unsigned j = 0; j < n; ++j)
    if (j != victim) at_cth.scale_coupling(victim, j, factor);

  ErrorModelConfig cfg;
  cfg.vdd_v = sim.config().vdd_v;
  const VectorPair gp = ma_test(
      n, {victim, MafType::kPositiveGlitch, BusDirection::kCpuToCore});
  cfg.glitch_threshold_v =
      sim.simulate(at_cth, gp)[victim].peak_excursion_v;
  const VectorPair dr = ma_test(
      n, {victim, MafType::kRisingDelay, BusDirection::kCpuToCore});
  cfg.delay_slack_ns = sim.simulate(at_cth, dr)[victim].crossing_time_ns;
  return cfg;
}

util::BusWord TransientSimulator::receive(
    const RcNetwork& net, const VectorPair& pair,
    const ErrorModelConfig& thresholds) const {
  const std::vector<WireResponse> resp = simulate(net, pair);
  util::BusWord out = pair.v2;
  for (unsigned i = 0; i < net.width(); ++i) {
    const bool b1 = pair.v1.bit(i);
    const bool b2 = pair.v2.bit(i);
    if (b1 == b2) {
      const double exc = resp[i].peak_excursion_v;
      const bool flips = b2 ? (-exc >= thresholds.glitch_threshold_v)
                            : (exc >= thresholds.glitch_threshold_v);
      if (flips) out = out.with_bit(i, !b2);
    } else {
      if (resp[i].crossing_time_ns > thresholds.delay_slack_ns)
        out = out.with_bit(i, b1);
    }
  }
  return out;
}

}  // namespace xtest::xtalk
