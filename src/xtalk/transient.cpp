#include "xtalk/transient.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace xtest::xtalk {

LuSolver::LuSolver(std::vector<double> matrix, unsigned n)
    : lu_(std::move(matrix)), perm_(n), n_(n) {
  assert(lu_.size() == static_cast<std::size_t>(n) * n);
  for (unsigned i = 0; i < n_; ++i) perm_[i] = i;
  for (unsigned col = 0; col < n_; ++col) {
    // Partial pivoting.
    unsigned pivot = col;
    double best = std::abs(lu_[col * n_ + col]);
    for (unsigned r = col + 1; r < n_; ++r) {
      const double v = std::abs(lu_[r * n_ + col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-30) {
      singular_ = true;
      return;
    }
    if (pivot != col) {
      for (unsigned c = 0; c < n_; ++c)
        std::swap(lu_[col * n_ + c], lu_[pivot * n_ + c]);
      std::swap(perm_[col], perm_[pivot]);
    }
    const double d = lu_[col * n_ + col];
    for (unsigned r = col + 1; r < n_; ++r) {
      const double f = lu_[r * n_ + col] / d;
      lu_[r * n_ + col] = f;
      for (unsigned c = col + 1; c < n_; ++c)
        lu_[r * n_ + c] -= f * lu_[col * n_ + c];
    }
  }
}

void LuSolver::solve(std::vector<double>& b) const {
  std::vector<double> scratch;
  solve(b, scratch);
}

void LuSolver::solve(std::vector<double>& b,
                     std::vector<double>& scratch) const {
  if (singular_) throw std::runtime_error("LuSolver: singular matrix");
  assert(b.size() == n_);
  scratch.resize(n_);
  std::vector<double>& x = scratch;
  for (unsigned i = 0; i < n_; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower triangle).
  for (unsigned i = 0; i < n_; ++i)
    for (unsigned j = 0; j < i; ++j) x[i] -= lu_[i * n_ + j] * x[j];
  // Back substitution.
  for (unsigned i = n_; i-- > 0;) {
    for (unsigned j = i + 1; j < n_; ++j) x[i] -= lu_[i * n_ + j] * x[j];
    x[i] /= lu_[i * n_ + i];
  }
  std::swap(b, scratch);  // solution in b, old b becomes next call's scratch
}

namespace {

/// Maxwell capacitance matrix in fF: diagonal = ground + all couplings,
/// off-diagonal = -coupling.
std::vector<double> maxwell_matrix(const RcNetwork& net) {
  const unsigned n = net.width();
  std::vector<double> c(static_cast<std::size_t>(n) * n, 0.0);
  for (unsigned i = 0; i < n; ++i) {
    c[i * n + i] = net.ground_cap(i) + net.net_coupling(i);
    for (unsigned j = 0; j < n; ++j)
      if (j != i) c[i * n + j] = -net.coupling(i, j);
  }
  return c;
}

}  // namespace

// Trapezoidal rule for C dV/dt = D (S - V), with C in fF, t in ns, R in
// ohm: D = 1e6 / R (so that tau = R * C comes out in ns).  Factored once
// per (network revision, time step) and shared by every simulate() /
// waveform() call; stepping never allocates.
struct TransientPlan {
  unsigned n;
  double dt;
  std::uint64_t revision;
  bool fused;
  std::vector<double> m;  // C/dt - D/2
  std::vector<double> d;  // per-wire conductance term
  LuSolver lhs;           // C/dt + D/2
  // Fused path: v' = a v + bmat s with a = lhs^-1 m, bmat = lhs^-1 diag(d).
  // Left empty when fusion is off or the lhs is singular (the reference
  // path then reports the singularity exactly as before).
  std::vector<double> a;
  std::vector<double> bmat;

  TransientPlan(const RcNetwork& net, double time_step_ns, bool fuse)
      : n(net.width()),
        dt(time_step_ns),
        revision(net.revision()),
        fused(fuse),
        m(maxwell_matrix(net)),
        d(n, 0.0),
        lhs([&] {
          std::vector<double> lhs_m = maxwell_matrix(net);
          for (unsigned i = 0; i < n; ++i) {
            const double g = 1e6 / net.driver_resistance();
            for (unsigned j = 0; j < n; ++j) lhs_m[i * n + j] /= time_step_ns;
            lhs_m[i * n + i] += g / 2.0;
          }
          return lhs_m;
        }(),
            net.width()) {
    const double g = 1e6 / net.driver_resistance();
    for (unsigned i = 0; i < n; ++i) {
      for (unsigned j = 0; j < n; ++j) m[i * n + j] /= dt;
      m[i * n + i] -= g / 2.0;
      d[i] = g;
    }
    if (!fuse || lhs.singular()) return;
    a.assign(static_cast<std::size_t>(n) * n, 0.0);
    bmat.assign(static_cast<std::size_t>(n) * n, 0.0);
    std::vector<double> col(n), scratch;
    for (unsigned j = 0; j < n; ++j) {
      for (unsigned i = 0; i < n; ++i) col[i] = m[i * n + j];
      lhs.solve(col, scratch);
      for (unsigned i = 0; i < n; ++i) a[i * n + j] = col[i];
      for (unsigned i = 0; i < n; ++i) col[i] = i == j ? d[j] : 0.0;
      lhs.solve(col, scratch);
      for (unsigned i = 0; i < n; ++i) bmat[i * n + j] = col[i];
    }
  }

  bool use_fused() const { return !a.empty(); }

  /// Source term that is constant across steps: bs = bmat * s (fused) or
  /// d .* s (reference).
  void source_term(const std::vector<double>& s,
                   std::vector<double>& bs) const {
    bs.assign(n, 0.0);
    if (use_fused()) {
      for (unsigned i = 0; i < n; ++i) {
        double acc = 0.0;
        for (unsigned j = 0; j < n; ++j) acc += bmat[i * n + j] * s[j];
        bs[i] = acc;
      }
    } else {
      for (unsigned i = 0; i < n; ++i) bs[i] = d[i] * s[i];
    }
  }

  /// One step, allocation-free: v advances in place, `next` and `scratch`
  /// are caller-owned buffers reused across steps.
  void step(std::vector<double>& v, const std::vector<double>& bs,
            std::vector<double>& next, std::vector<double>& scratch) const {
    if (use_fused()) {
      for (unsigned i = 0; i < n; ++i) {
        double acc = 0.0;
        for (unsigned j = 0; j < n; ++j) acc += a[i * n + j] * v[j];
        next[i] = acc + bs[i];
      }
    } else {
      for (unsigned i = 0; i < n; ++i) {
        double acc = 0.0;
        for (unsigned j = 0; j < n; ++j) acc += m[i * n + j] * v[j];
        next[i] = acc + bs[i];
      }
      lhs.solve(next, scratch);
    }
    std::swap(v, next);
  }
};

struct TransientSimulator::PlanCache {
  std::mutex mutex;
  std::shared_ptr<const TransientPlan> plan;
};

TransientSimulator::TransientSimulator(TransientConfig config)
    : config_(config), cache_(std::make_shared<PlanCache>()) {}

std::shared_ptr<const TransientPlan> TransientSimulator::plan_for(
    const RcNetwork& net) const {
  std::lock_guard<std::mutex> lock(cache_->mutex);
  std::shared_ptr<const TransientPlan>& plan = cache_->plan;
  if (!plan || plan->revision != net.revision() || plan->n != net.width() ||
      plan->dt != config_.time_step_ns || plan->fused != config_.fused_step)
    plan = std::make_shared<const TransientPlan>(net, config_.time_step_ns,
                                                 config_.fused_step);
  return plan;
}

std::vector<WireResponse> TransientSimulator::simulate(
    const RcNetwork& net, const VectorPair& pair) const {
  const unsigned n = net.width();
  assert(pair.v1.width() == n && pair.v2.width() == n);
  const std::shared_ptr<const TransientPlan> plan = plan_for(net);

  std::vector<double> v(n), s(n);
  for (unsigned i = 0; i < n; ++i) {
    v[i] = pair.v1.bit(i) ? config_.vdd_v : 0.0;
    s[i] = pair.v2.bit(i) ? config_.vdd_v : 0.0;
  }
  std::vector<double> bs, next(n, 0.0), scratch;
  plan->source_term(s, bs);

  std::vector<WireResponse> out(n);
  const double half = config_.vdd_v / 2.0;
  std::vector<double> prev = v;
  const auto steps =
      static_cast<std::size_t>(config_.duration_ns / config_.time_step_ns);
  for (std::size_t k = 1; k <= steps; ++k) {
    plan->step(v, bs, next, scratch);
    const double t = static_cast<double>(k) * config_.time_step_ns;
    for (unsigned i = 0; i < n; ++i) {
      const double exc = v[i] - s[i];
      if (std::abs(exc) > std::abs(out[i].peak_excursion_v))
        out[i].peak_excursion_v = exc;
      // Track the last crossing of Vdd/2 (linear interpolation).
      if ((prev[i] - half) * (v[i] - half) < 0.0) {
        const double f = (half - prev[i]) / (v[i] - prev[i]);
        out[i].crossing_time_ns = t - config_.time_step_ns * (1.0 - f);
      }
    }
    prev = v;
  }
  return out;
}

std::vector<double> TransientSimulator::waveform(const RcNetwork& net,
                                                 const VectorPair& pair,
                                                 unsigned wire) const {
  const unsigned n = net.width();
  assert(wire < n);
  const std::shared_ptr<const TransientPlan> plan = plan_for(net);
  std::vector<double> v(n), s(n);
  for (unsigned i = 0; i < n; ++i) {
    v[i] = pair.v1.bit(i) ? config_.vdd_v : 0.0;
    s[i] = pair.v2.bit(i) ? config_.vdd_v : 0.0;
  }
  std::vector<double> bs, next(n, 0.0), scratch;
  plan->source_term(s, bs);
  std::vector<double> wf{v[wire]};
  const auto steps =
      static_cast<std::size_t>(config_.duration_ns / config_.time_step_ns);
  for (std::size_t k = 1; k <= steps; ++k) {
    plan->step(v, bs, next, scratch);
    wf.push_back(v[wire]);
  }
  return wf;
}

ErrorModelConfig transient_calibrated(const RcNetwork& nominal,
                                      double cth_fF,
                                      const TransientSimulator& sim) {
  // Scale the center wire's couplings so its net coupling equals Cth, then
  // measure the transient MA responses there.
  const unsigned n = nominal.width();
  const unsigned victim = n / 2;
  RcNetwork at_cth = nominal;
  const double factor = cth_fF / nominal.net_coupling(victim);
  for (unsigned j = 0; j < n; ++j)
    if (j != victim) at_cth.scale_coupling(victim, j, factor);

  ErrorModelConfig cfg;
  cfg.vdd_v = sim.config().vdd_v;
  const VectorPair gp = ma_test(
      n, {victim, MafType::kPositiveGlitch, BusDirection::kCpuToCore});
  cfg.glitch_threshold_v =
      sim.simulate(at_cth, gp)[victim].peak_excursion_v;
  const VectorPair dr = ma_test(
      n, {victim, MafType::kRisingDelay, BusDirection::kCpuToCore});
  cfg.delay_slack_ns = sim.simulate(at_cth, dr)[victim].crossing_time_ns;
  return cfg;
}

util::BusWord TransientSimulator::receive(
    const RcNetwork& net, const VectorPair& pair,
    const ErrorModelConfig& thresholds) const {
  const std::vector<WireResponse> resp = simulate(net, pair);
  util::BusWord out = pair.v2;
  for (unsigned i = 0; i < net.width(); ++i) {
    const bool b1 = pair.v1.bit(i);
    const bool b2 = pair.v2.bit(i);
    if (b1 == b2) {
      const double exc = resp[i].peak_excursion_v;
      const bool flips = b2 ? (-exc >= thresholds.glitch_threshold_v)
                            : (exc >= thresholds.glitch_threshold_v);
      if (flips) out = out.with_bit(i, !b2);
    } else {
      if (resp[i].crossing_time_ns > thresholds.delay_slack_ns)
        out = out.with_bit(i, b1);
    }
  }
  return out;
}

}  // namespace xtest::xtalk
