// Defect-batched (transition-major) evaluation.
//
// A defect-simulation campaign asks the same question once per defect:
// "does this defect corrupt any of the transitions the self-test program
// drives?"  The per-defect loop answers it by re-simulating the whole
// program under each defect.  This module supports the inverted,
// transition-major loop: gather a *batch* of defects into a
// structure-of-arrays view (`DefectBatch`) and score one (held, driven)
// transition against every defect of the batch in a single pass
// (`BatchEvaluator::screen`), so the campaign can prove most defects
// undetected straight from the gold run's transition stream without
// simulating them at all.
//
// Layout: for each wire pair (i, j) the defect-applied coupling values of
// all lanes are contiguous (`pair_row`), so the per-lane inner loops are
// unit-stride over plain double arrays -- auto-vectorizable C++ today, and
// the scalar kernels below (`accumulate_row`, ...) are the dispatch seam
// for an explicit AVX2 path later.
//
// Bitwise-equivalence guarantee: `BatchEvaluator` performs, per lane, the
// exact floating-point operations of `BusEvaluator::receive` in the same
// order (aggressor sums ascend by wire, the Miller sum keeps the full
// ascending loop, and the glitch denominator is `ground + net_coupling`
// summed the reference way), so a lane's received word is bit-identical to
// simulating that defect alone.  Enforced by tests/test_batch_equivalence.
//
// Exactness of the gather: `DefectBatch` keeps each lane's original
// multiplicative factors verbatim alongside the derived coupling rows, so
// `scatter` reproduces every source `Defect` field exactly (the derived
// coupling `nominal * factor` cannot be divided back without rounding).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "xtalk/defect.h"
#include "xtalk/error_model.h"
#include "xtalk/maf.h"
#include "xtalk/rc_network.h"

namespace xtest::xtalk {

/// Structure-of-arrays view of a slice of a defect library against one
/// nominal network.  Immutable after construction.
class DefectBatch {
 public:
  /// Gathers `library[indices[k]]` into lane k.  Every gathered defect
  /// must match the nominal width (throws std::invalid_argument
  /// otherwise; the campaign pre-filters mismatches into the ordinary
  /// quarantine path).  `forced` optionally pins an ideal MAF per lane
  /// (empty = none anywhere; otherwise one entry per lane).
  DefectBatch(const RcNetwork& nominal, const DefectLibrary& library,
              std::vector<std::size_t> indices,
              std::vector<std::optional<MafFault>> forced = {});

  /// Whole-library convenience gather (lane k = defect k).
  DefectBatch(const RcNetwork& nominal, const DefectLibrary& library,
              std::vector<std::optional<MafFault>> forced = {});

  unsigned width() const { return width_; }
  std::size_t lanes() const { return lanes_; }
  double ground(unsigned i) const { return ground_[i]; }
  double driver_resistance() const { return driver_resistance_ohm_; }

  /// Library index gathered into `lane`.
  std::size_t source_index(std::size_t lane) const { return sources_[lane]; }

  /// Reconstructs lane `lane`'s defect exactly (original factors, not the
  /// derived couplings).
  Defect scatter(std::size_t lane) const;

  const std::optional<MafFault>& forced(std::size_t lane) const {
    return forced_[lane];
  }

  /// The defect-applied coupling(i, j) of every lane, contiguous:
  /// pair_row(i, j)[lane].  The diagonal rows are all zeros, like the
  /// RcNetwork diagonal.
  const double* pair_row(unsigned i, unsigned j) const {
    return &coupling_[(static_cast<std::size_t>(i) * width_ + j) * lanes_];
  }

 private:
  unsigned width_ = 0;
  std::size_t lanes_ = 0;
  double driver_resistance_ohm_ = 0.0;
  std::vector<std::size_t> sources_;
  std::vector<double> factors_;   // lane-major, lanes x width*(width-1)/2
  std::vector<double> coupling_;  // (width*width) rows of `lanes` values
  std::vector<double> ground_;    // per wire (defects never touch ground)
  std::vector<std::optional<MafFault>> forced_;  // one per lane
};

/// Scores one (held, driven) transition against every lane of a batch.
/// Construct once per (batch, thresholds) pair; `screen` is the hot call.
/// Not thread-safe (owns scratch buffers) -- the campaign screens
/// serially, which is also what keeps its results thread-count-invariant.
class BatchEvaluator {
 public:
  /// `batch` must outlive the evaluator.  `config` is the bus's error
  /// model (the system's calibrated per-bus thresholds).
  BatchEvaluator(const DefectBatch& batch, const ErrorModelConfig& config);

  unsigned width() const { return batch_->width(); }
  std::size_t lanes() const { return batch_->lanes(); }
  bool quiet_is_identity() const { return quiet_is_identity_; }

  /// The word lane `lane`'s defect makes the receiver sample for the
  /// transition v1 -> v2.  Bit-identical to BusEvaluator::receive on the
  /// lane's scattered defect applied to the nominal network; a forced MAF
  /// on the lane overrides the model word exactly when the transition is
  /// its MA test and `direction` matches (mirroring soc::System).
  std::uint64_t receive(std::size_t lane, std::uint64_t v1, std::uint64_t v2,
                        BusDirection direction =
                            BusDirection::kCpuToCore) const;

  /// One transition against all live lanes: clears live[l] for every lane
  /// whose received word differs from `expected` (the gold received word).
  /// Dead lanes stay dead.  Returns the number of lanes still live.
  std::size_t screen(std::uint64_t v1, std::uint64_t v2,
                     BusDirection direction, std::uint64_t expected,
                     std::uint8_t* live);

 private:
  const DefectBatch* batch_;
  bool quiet_is_identity_ = false;
  double vdd_v_ = 0.0;
  double glitch_threshold_v_ = 0.0;
  double delay_slack_ns_ = 0.0;
  double driver_resistance_ohm_ = 0.0;
  std::vector<double> glitch_denom_;  // per (wire, lane), lane-contiguous
  // Forced-MAF lanes, precomputed: the MA pair is the unique fully
  // exciting transition, so the override is a word compare per lane.
  bool any_forced_ = false;
  std::vector<std::uint8_t> forced_active_;
  std::vector<std::uint64_t> forced_v1_, forced_v2_, forced_word_;
  std::vector<BusDirection> forced_direction_;
  // Scratch reused across screen calls (per-lane accumulator + out word).
  std::vector<double> acc_;
  std::vector<std::uint64_t> out_;
};

}  // namespace xtest::xtalk
