// Numerical transient simulation of the coupled-RC bus.
//
// The analytical error model (error_model.h) uses closed-form
// charge-sharing and Elmore/Miller expressions.  This module provides the
// golden reference those expressions approximate: a trapezoidal-rule
// integration of the full coupled-RC network
//
//     C dV/dt = (S(t) - V) / R
//
// where C is the Maxwell capacitance matrix (C_ii = Cg_i + sum_j Cc_ij,
// C_ij = -Cc_ij), each wire is driven through its driver resistance R
// towards the source step S (v1 -> v2 at t = 0).  From the waveforms we
// extract the victim glitch peak and the 50%-crossing delay, the same
// quantities the analytical model predicts.
//
// Used by the validation tests and the model-validation bench to show the
// analytical detectability boundary tracks the physical one (the property
// the MAF theory rests on).

#pragma once

#include <memory>
#include <vector>

#include "xtalk/error_model.h"
#include "xtalk/maf.h"
#include "xtalk/rc_network.h"

namespace xtest::xtalk {

struct TransientConfig {
  double vdd_v = 1.8;
  double time_step_ns = 1e-3;
  double duration_ns = 10.0;  ///< must cover several RC time constants
  /// Fold the implicit trapezoidal update into one dense step matrix at
  /// plan-build time (v' = A v + B s, A = lhs^-1 M, B = lhs^-1 diag(d))
  /// instead of a matvec followed by an LU solve every step.  Same scheme,
  /// different floating-point association; the extracted responses agree
  /// to integrator tolerance.  false = the original matvec + solve path
  /// (still allocation-free per step).
  bool fused_step = true;
};

/// Per-wire summary of one transition's transient response.
struct WireResponse {
  /// Largest signed excursion from the settled (v2) level, in volts.
  /// For a stable wire this is the crosstalk glitch.
  double peak_excursion_v = 0.0;
  /// Time the wire last crosses Vdd/2 towards its final value, in ns
  /// (0 for a wire that never leaves its side).  For a switching wire
  /// this is the transition delay.
  double crossing_time_ns = 0.0;
};

/// Factored step plan for one (network revision, time step): built once,
/// reused by every simulate()/waveform() call against the same network.
struct TransientPlan;

class TransientSimulator {
 public:
  explicit TransientSimulator(TransientConfig config = {});

  /// Simulates the transition pair on `net` and summarises every wire.
  std::vector<WireResponse> simulate(const RcNetwork& net,
                                     const VectorPair& pair) const;

  /// Full waveform of one wire (for plotting/inspection); samples of V(t)
  /// every time step.
  std::vector<double> waveform(const RcNetwork& net, const VectorPair& pair,
                               unsigned wire) const;

  /// Receiver decision using the transient waveforms and the same
  /// thresholds as the analytical model: a glitch error when the victim
  /// excursion crosses the receiver threshold, a delay error when the 50%
  /// crossing lands after the sampling slack.
  util::BusWord receive(const RcNetwork& net, const VectorPair& pair,
                        const ErrorModelConfig& thresholds) const;

  const TransientConfig& config() const { return config_; }

 private:
  struct PlanCache;

  /// Returns the cached step plan when the network revision still matches,
  /// otherwise factors a fresh one (see RcNetwork::revision).  Copies of a
  /// simulator share the cache; plans are immutable once built.
  std::shared_ptr<const TransientPlan> plan_for(const RcNetwork& net) const;

  TransientConfig config_;
  std::shared_ptr<PlanCache> cache_;
};

/// Thresholds calibrated against the *transient* MA response instead of
/// the analytical expressions: a bus whose victim net coupling equals
/// `cth_fF` sits exactly on the detectability boundary of
/// TransientSimulator::receive.  Comparing these thresholds with
/// ErrorModelConfig::calibrated quantifies how conservative the closed
/// forms are (the model-validation experiment).
ErrorModelConfig transient_calibrated(const RcNetwork& nominal,
                                      double cth_fF,
                                      const TransientSimulator& sim);

/// Dense LU solver used by the integrator (exposed for testing).
class LuSolver {
 public:
  /// Factorises a square matrix (row-major), partial pivoting.
  explicit LuSolver(std::vector<double> matrix, unsigned n);

  /// Solves A x = b in place.  Allocates a scratch vector per call; hot
  /// loops should use the two-argument overload instead.
  void solve(std::vector<double>& b) const;

  /// Allocation-free solve: `scratch` is sized on first use and reused
  /// across calls (its contents are clobbered).
  void solve(std::vector<double>& b, std::vector<double>& scratch) const;

  bool singular() const { return singular_; }

 private:
  std::vector<double> lu_;
  std::vector<unsigned> perm_;
  unsigned n_;
  bool singular_ = false;
};

}  // namespace xtest::xtalk
