#include "xtalk/defect.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace xtest::xtalk {

double recommended_cth(const RcNetwork& nominal, double ratio) {
  return ratio * nominal.max_net_coupling();
}

Defect::Defect(unsigned width, std::vector<double> factors)
    : width_(width), factors_(std::move(factors)) {
  const std::size_t expected =
      static_cast<std::size_t>(width_) * (width_ - 1) / 2;
  if (factors_.size() != expected)
    throw std::invalid_argument(
        "Defect: " + std::to_string(factors_.size()) + " factors for width " +
        std::to_string(width_) + " (expected " + std::to_string(expected) +
        ")");
  for (std::size_t k = 0; k < factors_.size(); ++k)
    if (!std::isfinite(factors_[k]) || factors_[k] < 0.0)
      throw std::invalid_argument(
          "Defect: factor " + std::to_string(k) +
          " is negative or non-finite (" + std::to_string(factors_[k]) + ")");
}

std::size_t Defect::tri_index(unsigned i, unsigned j) const {
  assert(i != j && i < width_ && j < width_);
  if (i > j) std::swap(i, j);
  // Offset of row i in the upper triangle (row i has width-1-i entries).
  const std::size_t row_start =
      static_cast<std::size_t>(i) * width_ - static_cast<std::size_t>(i) * (i + 1) / 2;
  return row_start + (j - i - 1);
}

double Defect::factor(unsigned i, unsigned j) const {
  return factors_[tri_index(i, j)];
}

RcNetwork Defect::apply(const RcNetwork& nominal) const {
  if (nominal.width() != width_)
    throw std::invalid_argument(
        "Defect::apply: defect width " + std::to_string(width_) +
        " does not match bus width " + std::to_string(nominal.width()));
  RcNetwork net = nominal;
  for (unsigned i = 0; i < width_; ++i)
    for (unsigned j = i + 1; j < width_; ++j)
      net.scale_coupling(i, j, factor(i, j));
  return net;
}

std::vector<unsigned> Defect::defective_wires(const RcNetwork& nominal,
                                              double cth_fF) const {
  const RcNetwork net = apply(nominal);
  std::vector<unsigned> out;
  for (unsigned i = 0; i < width_; ++i)
    if (net.net_coupling(i) > cth_fF) out.push_back(i);
  return out;
}

DefectLibrary DefectLibrary::generate(const RcNetwork& nominal,
                                      const DefectConfig& config) {
  if (config.cth_fF <= 0.0)
    throw std::invalid_argument("DefectConfig::cth_fF must be positive");
  const unsigned width = nominal.width();
  const std::size_t npairs =
      static_cast<std::size_t>(width) * (width - 1) / 2;
  util::Rng rng(config.seed);

  std::vector<Defect> defects;
  defects.reserve(config.count);
  std::size_t attempts = 0;
  std::vector<double> factors(npairs);
  while (defects.size() < config.count) {
    if (++attempts > config.max_attempts)
      throw std::runtime_error(
          "DefectLibrary::generate: defect yield too low; raise sigma or "
          "lower cth_fF");
    for (double& f : factors)
      f = std::max(0.0, 1.0 + rng.gaussian(config.sigma_pct / 100.0));
    Defect candidate(width, factors);
    const RcNetwork net = candidate.apply(nominal);
    if (net.max_net_coupling() > config.cth_fF)
      defects.push_back(std::move(candidate));
  }
  return DefectLibrary(config, std::move(defects), attempts);
}

DefectLibrary DefectLibrary::from_defects(const DefectConfig& config,
                                          std::vector<Defect> defects) {
  DefectConfig c = config;
  c.count = defects.size();
  const std::size_t attempts = defects.size();
  return DefectLibrary(c, std::move(defects), attempts);
}

std::vector<std::size_t> DefectLibrary::defective_wire_histogram(
    const RcNetwork& nominal) const {
  std::vector<std::size_t> hist(nominal.width(), 0);
  for (const Defect& d : defects_)
    for (unsigned w : d.defective_wires(nominal, config_.cth_fF)) ++hist[w];
  return hist;
}

}  // namespace xtest::xtalk
