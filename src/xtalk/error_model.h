// High-level crosstalk error model (Bai-Dey, VTS'01).
//
// Given the RC parameters of a bus and a transition (previous word ->
// driven word), the model decides for every wire whether the receiver
// samples a corrupted value:
//
//  * A wire holding its value can suffer a coupling glitch.  Charge
//    injected by switching neighbours produces a victim excursion of
//        dV = Vdd * (sum_j s_j * Cc[i][j]) / (Cg[i] + sum_j Cc[i][j])
//    with s_j = +1 for a rising aggressor, -1 for falling, 0 for quiet.
//    The receiver captures a flipped bit when |dV| >= glitch_threshold_v
//    and the excursion points away from the held value.
//
//  * A transitioning wire can suffer a crosstalk delay.  Its effective
//    switched capacitance uses Miller factors (0 for an aggressor switching
//    the same way, 1 for a quiet aggressor, 2 for an opposite transition):
//        t = ln2 * R * (Cg[i] + sum_j k_ij * Cc[i][j])
//    The receiver samples the *old* bit when t > delay_slack_ns.
//
// Both effects grow monotonically with coupling capacitance, which is the
// property the MAF theory (ICCAD'99) rests on: under the MA excitation the
// error appears exactly when the net coupling C on the victim exceeds a
// threshold Cth.  `ErrorModelConfig::calibrated` derives the voltage and
// timing thresholds from a chosen Cth so that glitch and delay effects
// share one detectability boundary, as assumed by the paper's Fig. 10 flow.

#pragma once

#include "util/bitvec.h"
#include "xtalk/maf.h"
#include "xtalk/rc_network.h"

namespace xtest::xtalk {

struct ErrorModelConfig {
  double vdd_v = 1.8;
  /// Receiver captures a glitch when the victim excursion reaches this.
  double glitch_threshold_v = 0.9;
  /// Receiver samples the old value when the transition is slower than this.
  double delay_slack_ns = 1.0;

  /// Thresholds such that, under the MA excitation on `nominal`'s bus, a
  /// wire errs exactly when its net coupling exceeds `cth_fF`.
  static ErrorModelConfig calibrated(const RcNetwork& nominal, double cth_fF);
};

/// Stateless evaluator: corruption of one bus transfer.
class CrosstalkErrorModel {
 public:
  explicit CrosstalkErrorModel(ErrorModelConfig config) : config_(config) {}

  const ErrorModelConfig& config() const { return config_; }

  /// Victim excursion in volts on wire `i` for the transition `pair`
  /// (positive = towards Vdd).  Meaningful when wire `i` is stable.
  double glitch_amplitude(const RcNetwork& net, const VectorPair& pair,
                          unsigned i) const;

  /// 50%-point transition delay in ns on wire `i` for the transition `pair`.
  /// Meaningful when wire `i` switches.
  double transition_delay(const RcNetwork& net, const VectorPair& pair,
                          unsigned i) const;

  /// The word the receiver samples when `pair.v2` is driven after `pair.v1`.
  util::BusWord receive(const RcNetwork& net, const VectorPair& pair) const;

  /// True when `receive` differs from the driven word.
  bool corrupts(const RcNetwork& net, const VectorPair& pair) const {
    return receive(net, pair) != pair.v2;
  }

 private:
  ErrorModelConfig config_;
};

}  // namespace xtest::xtalk
