#include "xtalk/rc_network.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

namespace xtest::xtalk {

RcNetwork::RcNetwork(const BusGeometry& geometry)
    : geometry_(geometry),
      width_(geometry.width),
      driver_resistance_ohm_(geometry.driver_resistance_ohm),
      coupling_(static_cast<std::size_t>(geometry.width) * geometry.width,
                0.0),
      ground_(geometry.width, 0.0),
      revision_(next_revision()) {
  assert(width_ >= 2);
  const double c1 = geometry.coupling_fF_per_um * geometry.wire_length_um;
  for (unsigned i = 0; i < width_; ++i) {
    ground_[i] = geometry.ground_fF_per_um * geometry.wire_length_um;
    for (unsigned j = i + 1; j < width_; ++j) {
      const double d = static_cast<double>(j - i);
      const double c = c1 / std::pow(d, geometry.distance_decay_exponent);
      coupling_[index(i, j)] = c;
      coupling_[index(j, i)] = c;
    }
  }
}

std::uint64_t RcNetwork::next_revision() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void RcNetwork::set_coupling(unsigned i, unsigned j, double fF) {
  assert(i != j && i < width_ && j < width_);
  coupling_[index(i, j)] = fF;
  coupling_[index(j, i)] = fF;
  revision_ = next_revision();
}

void RcNetwork::scale_coupling(unsigned i, unsigned j, double factor) {
  set_coupling(i, j, coupling(i, j) * factor);
}

void RcNetwork::add_ground_load(unsigned i, double fF) {
  assert(i < width_);
  ground_[i] += fF;
  revision_ = next_revision();
}

double RcNetwork::net_coupling(unsigned i) const {
  double sum = 0.0;
  for (unsigned j = 0; j < width_; ++j) sum += coupling_[index(i, j)];
  return sum;
}

double RcNetwork::max_net_coupling() const {
  double best = 0.0;
  for (unsigned i = 0; i < width_; ++i)
    best = std::max(best, net_coupling(i));
  return best;
}

}  // namespace xtest::xtalk
