// Hot-path evaluation of the crosstalk error model.
//
// `CrosstalkErrorModel::receive` is called once per bus transfer -- millions
// of times per defect-simulation campaign -- and the reference implementation
// re-reads the RC network through per-bit `bit()`/`with_bit()` accessors and
// recomputes per-wire capacitance totals on every call.  This module provides
// the production path:
//
//  * `BusEvaluator` precomputes, once per (network, thresholds) pair -- i.e.
//    once per injected defect -- the contiguous coupling rows and the per-wire
//    glitch denominators, and evaluates a whole transfer in a single pass over
//    packed `std::uint64_t` words.  Stable wires integrate charge only over
//    the *toggled* aggressors (`v1 ^ v2`), and the result word is mutated
//    locally instead of through chained `with_bit` copies.
//
//  * `TransitionCache` memoizes receive results per defect.  Instruction-fetch
//    loops drive the same (held, driven) pairs thousands of times per run, so
//    a small direct-mapped table keyed by `(held << width) | word` converts
//    almost the whole campaign inner loop into table lookups.  Invalidation
//    is O(1) via a generation counter; hit/miss counters feed the campaign
//    stats JSON.
//
// Bitwise-equivalence guarantee: `BusEvaluator::receive` performs the exact
// floating-point operations of the reference model in the same order (the
// precomputed denominator is `ground_cap(i) + net_coupling(i)` evaluated the
// same way, aggressor sums accumulate in ascending wire order, and the Miller
// sum keeps the reference's full ascending loop), so its verdicts are
// bit-identical to `CrosstalkErrorModel::receive` -- enforced by the property
// tests in tests/test_fastpath.cpp.

#pragma once

#include <cstdint>
#include <vector>

#include "xtalk/error_model.h"
#include "xtalk/rc_network.h"

namespace xtest::xtalk {

/// Precomputed per-defect receive evaluator.  Immutable after construction,
/// so one instance may be shared by concurrent readers.
class BusEvaluator {
 public:
  /// Empty evaluator (width 0): behaves like an ideal bus.
  BusEvaluator() = default;

  BusEvaluator(const RcNetwork& net, const ErrorModelConfig& config);

  unsigned width() const { return width_; }

  /// True when a quiet transfer (v1 == v2) provably samples the driven word,
  /// letting callers skip evaluation entirely.  Holds whenever the glitch
  /// threshold is positive (always true for calibrated configs).
  bool quiet_is_identity() const { return quiet_is_identity_; }

  /// True when *every* transfer provably samples the driven word: no wire
  /// can glitch or sample late under any transition (worst-case charge /
  /// Miller bounds, computed once at construction).  Calibrated nominal
  /// networks satisfy this by design -- the thresholds sit a cth_ratio
  /// factor above anything the nominal couplings can excite -- so nominal
  /// bus traffic needs no per-transfer evaluation at all.
  bool always_identity() const { return always_identity_; }

  /// Wires that could deviate on some transition (empty iff
  /// always_identity).  receive() only evaluates these; for a single
  /// coupling defect that is typically the victim and its neighbours.
  unsigned active_wires() const {
    return static_cast<unsigned>(active_.size());
  }

  /// The word the receiver samples when `v2` is driven after `v1`.
  /// Bit-identical to CrosstalkErrorModel::receive on the same network.
  std::uint64_t receive(std::uint64_t v1, std::uint64_t v2) const;

 private:
  unsigned width_ = 0;
  bool quiet_is_identity_ = false;
  bool always_identity_ = false;
  double vdd_v_ = 0.0;
  double glitch_threshold_v_ = 0.0;
  double delay_slack_ns_ = 0.0;
  double driver_resistance_ohm_ = 0.0;
  std::vector<double> rows_;          // width x width coupling, row-major
  std::vector<double> glitch_denom_;  // ground_cap(i) + net_coupling(i)
  std::vector<double> ground_;        // ground_cap(i)
  std::vector<unsigned> active_;      // wires whose worst case can deviate
};

/// Two-way set-associative memo of receive results for one bus under one
/// defect.
///
/// Key layout is `(held << width) | driven` -- unique for width <= 16 (all
/// system buses are 12/8/3 wires), checked by `cacheable`.  The hash picks
/// a set of two entries kept in MRU order; a straight-line SBST program has
/// hundreds of unique transitions that each recur once per run, so a
/// direct-mapped table ping-pongs colliding pairs into steady-state misses
/// (~10% of all transfers) that two ways absorb almost entirely.  Entries
/// are validated against a generation counter so `invalidate()` is O(1);
/// the backing table is only rebuilt on the (astronomically rare)
/// generation wrap.  Not thread-safe: each worker's System owns its own
/// caches, exactly like the simulator state they memoize.
class TransitionCache {
 public:
  /// Empty cache: lookups miss without counting, inserts are dropped.
  TransitionCache() = default;

  /// `log2_entries` is the total entry count (two ways per set), clamped
  /// to the key space (2 * width bits).
  explicit TransitionCache(unsigned width, unsigned log2_entries = 14);

  /// Whether the packed key is collision-free for this bus width.
  static bool cacheable(unsigned width) { return width >= 1 && width <= 16; }

  bool enabled() const { return !entries_.empty(); }

  bool lookup(std::uint64_t key, std::uint64_t& value);
  void insert(std::uint64_t key, std::uint64_t value);

  /// Drops every entry in O(1).  Call whenever the underlying network,
  /// thresholds, or forced-fault state changes.
  void invalidate();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::uint32_t generation = 0;  // valid iff == generation_
  };

  /// Base of the two-entry set for `key` (always even).
  std::size_t index(std::uint64_t key) const {
    // Fibonacci hash: spreads the low-entropy packed keys over the sets.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_)
           << 1;
  }

  std::vector<Entry> entries_;
  std::uint32_t generation_ = 1;  // entries default to 0 == invalid
  unsigned shift_ = 64;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace xtest::xtalk
