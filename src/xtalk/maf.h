// Maximum Aggressor Fault (MAF) model.
//
// Following Cuviello/Dey/Bai/Zhao (ICCAD'99), a crosstalk fault on an N-wire
// bus is abstracted by its error effect on one victim wire:
//
//   positive glitch (gp): victim stable 0, all aggressors rise
//   negative glitch (gn): victim stable 1, all aggressors fall
//   rising delay    (dr): victim rises,    all aggressors fall
//   falling delay   (df): victim falls,    all aggressors rise
//
// Each fault has a unique Maximum Aggressor (MA) test: the two-vector
// sequence (v1, v2) shown in Fig. 1 of the paper.  For an N-wire bus there
// are 4N faults per direction.  MA tests are necessary and sufficient for
// detecting every cross-coupling defect in an RC interconnect network.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bitvec.h"

namespace xtest::xtalk {

using util::BusWord;

/// The four MAF error effects.
enum class MafType : std::uint8_t {
  kPositiveGlitch,
  kNegativeGlitch,
  kRisingDelay,
  kFallingDelay,
};

/// All four types, in the paper's enumeration order (gp, gn, dr, df).
inline constexpr MafType kAllMafTypes[] = {
    MafType::kPositiveGlitch,
    MafType::kNegativeGlitch,
    MafType::kRisingDelay,
    MafType::kFallingDelay,
};

/// Short mnemonic used throughout reports: "gp", "gn", "dr", "df".
std::string to_string(MafType t);

/// Whether the fault is a glitch effect (victim stable) as opposed to a
/// delay effect (victim transitioning).
bool is_glitch(MafType t);

/// Transfer direction on a bidirectional bus.  Unidirectional buses (the
/// address bus) only ever use kCpuToCore.
enum class BusDirection : std::uint8_t { kCpuToCore, kCoreToCpu };

std::string to_string(BusDirection d);

/// One MAF: an error effect on one victim wire, for transfers in one
/// direction.  `victim` is a 0-based wire index (wire 0 = LSB); the paper's
/// "bus line i" is victim i-1.
struct MafFault {
  unsigned victim = 0;
  MafType type = MafType::kPositiveGlitch;
  BusDirection direction = BusDirection::kCpuToCore;

  bool operator==(const MafFault&) const = default;

  /// "gp@3/cpu->core" style label (victim printed 1-based as in the paper).
  std::string label() const;
};

/// A two-vector MA test.
struct VectorPair {
  BusWord v1;
  BusWord v2;

  bool operator==(const VectorPair&) const = default;
};

/// The MA test for `fault` on a `width`-wire bus (Fig. 1 of the paper).
VectorPair ma_test(unsigned width, const MafFault& fault);

/// The word sampled by the receiver when `fault` is excited by the MA test
/// transition of `pair`:
///  - glitches flip the victim bit of v2;
///  - delays leave the victim bit at its v1 value.
/// Works for any pair, not only the canonical MA test.
BusWord faulty_v2(const MafFault& fault, const VectorPair& pair);

/// Whether the transition (pair.v1 -> pair.v2) fully excites `fault`, i.e.
/// the victim holds the required value/transition and every aggressor makes
/// the required transition.  The MA test is the unique fully-exciting pair.
bool fully_excites(const MafFault& fault, const VectorPair& pair);

/// All 4N faults (or 8N when `bidirectional`), ordered by victim then type,
/// CpuToCore before CoreToCpu.
std::vector<MafFault> enumerate_mafs(unsigned width, bool bidirectional);

}  // namespace xtest::xtalk
