#include "xtalk/error_model.h"

#include <cassert>
#include <cmath>

namespace xtest::xtalk {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

ErrorModelConfig ErrorModelConfig::calibrated(const RcNetwork& nominal,
                                              double cth_fF) {
  ErrorModelConfig cfg;
  const double cg = nominal.ground_cap(0);
  // Glitch: under the MA test every aggressor switches, so the excursion is
  // Vdd * C / (Cg + C); it reaches the threshold exactly at C = Cth.
  cfg.glitch_threshold_v = cfg.vdd_v * cth_fF / (cg + cth_fF);
  // Delay: under the MA test every aggressor switches opposite (Miller 2),
  // so t = ln2 * R * (Cg + 2C); slack is the value of t at C = Cth.
  // R is in ohm, C in fF -> t in 1e-15 * ohm * F = 1e-6 ns; scale to ns.
  cfg.delay_slack_ns =
      kLn2 * nominal.driver_resistance() * (cg + 2.0 * cth_fF) * 1e-6;
  return cfg;
}

double CrosstalkErrorModel::glitch_amplitude(const RcNetwork& net,
                                             const VectorPair& pair,
                                             unsigned i) const {
  const unsigned width = net.width();
  assert(i < width);
  double injected = 0.0;
  for (unsigned j = 0; j < width; ++j) {
    if (j == i) continue;
    const bool a1 = pair.v1.bit(j);
    const bool a2 = pair.v2.bit(j);
    if (a1 == a2) continue;
    injected += (a2 ? 1.0 : -1.0) * net.coupling(i, j);
  }
  const double total = net.ground_cap(i) + net.net_coupling(i);
  return config_.vdd_v * injected / total;
}

double CrosstalkErrorModel::transition_delay(const RcNetwork& net,
                                             const VectorPair& pair,
                                             unsigned i) const {
  const unsigned width = net.width();
  assert(i < width);
  const bool rising = pair.v2.bit(i);
  double ceff = net.ground_cap(i);
  for (unsigned j = 0; j < width; ++j) {
    if (j == i) continue;
    const bool a1 = pair.v1.bit(j);
    const bool a2 = pair.v2.bit(j);
    double miller = 1.0;  // quiet aggressor
    if (a1 != a2) miller = (a2 == rising) ? 0.0 : 2.0;
    ceff += miller * net.coupling(i, j);
  }
  return kLn2 * net.driver_resistance() * ceff * 1e-6;  // fF*ohm -> ns
}

util::BusWord CrosstalkErrorModel::receive(const RcNetwork& net,
                                           const VectorPair& pair) const {
  const unsigned width = net.width();
  assert(pair.v1.width() == width && pair.v2.width() == width);
  util::BusWord out = pair.v2;
  for (unsigned i = 0; i < width; ++i) {
    const bool b1 = pair.v1.bit(i);
    const bool b2 = pair.v2.bit(i);
    if (b1 == b2) {
      const double dv = glitch_amplitude(net, pair, i);
      const bool flips = b2 ? (-dv >= config_.glitch_threshold_v)
                            : (dv >= config_.glitch_threshold_v);
      if (flips) out = out.with_bit(i, !b2);
    } else {
      if (transition_delay(net, pair, i) > config_.delay_slack_ns)
        out = out.with_bit(i, b1);
    }
  }
  return out;
}

}  // namespace xtest::xtalk
