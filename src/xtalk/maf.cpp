#include "xtalk/maf.h"

#include <cassert>

namespace xtest::xtalk {

std::string to_string(MafType t) {
  switch (t) {
    case MafType::kPositiveGlitch: return "gp";
    case MafType::kNegativeGlitch: return "gn";
    case MafType::kRisingDelay: return "dr";
    case MafType::kFallingDelay: return "df";
  }
  return "?";
}

bool is_glitch(MafType t) {
  return t == MafType::kPositiveGlitch || t == MafType::kNegativeGlitch;
}

std::string to_string(BusDirection d) {
  return d == BusDirection::kCpuToCore ? "cpu->core" : "core->cpu";
}

std::string MafFault::label() const {
  return to_string(type) + "@" + std::to_string(victim + 1) + "/" +
         to_string(direction);
}

VectorPair ma_test(unsigned width, const MafFault& fault) {
  assert(fault.victim < width);
  const BusWord victim_bit = BusWord::one_hot(width, fault.victim);
  switch (fault.type) {
    case MafType::kPositiveGlitch:
      // victim stable 0, aggressors 0 -> 1
      return {BusWord::zeros(width), victim_bit.inverted()};
    case MafType::kNegativeGlitch:
      // victim stable 1, aggressors 1 -> 0
      return {BusWord::ones(width), victim_bit};
    case MafType::kRisingDelay:
      // victim 0 -> 1, aggressors 1 -> 0
      return {victim_bit.inverted(), victim_bit};
    case MafType::kFallingDelay:
      // victim 1 -> 0, aggressors 0 -> 1
      return {victim_bit, victim_bit.inverted()};
  }
  return {};
}

BusWord faulty_v2(const MafFault& fault, const VectorPair& pair) {
  switch (fault.type) {
    case MafType::kPositiveGlitch:
      return pair.v2.with_bit(fault.victim, true);
    case MafType::kNegativeGlitch:
      return pair.v2.with_bit(fault.victim, false);
    case MafType::kRisingDelay:
    case MafType::kFallingDelay:
      return pair.v2.with_bit(fault.victim, pair.v1.bit(fault.victim));
  }
  return pair.v2;
}

bool fully_excites(const MafFault& fault, const VectorPair& pair) {
  const unsigned width = pair.v1.width();
  assert(pair.v2.width() == width);
  assert(fault.victim < width);
  const bool b1 = pair.v1.bit(fault.victim);
  const bool b2 = pair.v2.bit(fault.victim);
  bool victim_ok = false;
  bool aggressors_rise = false;  // required aggressor direction
  switch (fault.type) {
    case MafType::kPositiveGlitch:
      victim_ok = !b1 && !b2;
      aggressors_rise = true;
      break;
    case MafType::kNegativeGlitch:
      victim_ok = b1 && b2;
      aggressors_rise = false;
      break;
    case MafType::kRisingDelay:
      victim_ok = !b1 && b2;
      aggressors_rise = false;
      break;
    case MafType::kFallingDelay:
      victim_ok = b1 && !b2;
      aggressors_rise = true;
      break;
  }
  if (!victim_ok) return false;
  for (unsigned i = 0; i < width; ++i) {
    if (i == fault.victim) continue;
    const bool a1 = pair.v1.bit(i);
    const bool a2 = pair.v2.bit(i);
    if (aggressors_rise ? !(!a1 && a2) : !(a1 && !a2)) return false;
  }
  return true;
}

std::vector<MafFault> enumerate_mafs(unsigned width, bool bidirectional) {
  std::vector<MafFault> out;
  out.reserve(width * 4 * (bidirectional ? 2 : 1));
  const BusDirection dirs[] = {BusDirection::kCpuToCore,
                               BusDirection::kCoreToCpu};
  const int ndir = bidirectional ? 2 : 1;
  for (int d = 0; d < ndir; ++d)
    for (unsigned v = 0; v < width; ++v)
      for (MafType t : kAllMafTypes) out.push_back({v, t, dirs[d]});
  return out;
}

}  // namespace xtest::xtalk
