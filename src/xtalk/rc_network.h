// RC model of a parallel on-chip bus.
//
// The paper's defect simulation (Section 5, Figs. 9-10) operates on the
// coupling-capacitance matrix of the bus: nominal values come from wire
// geometry, defects are percentage perturbations of those values, and the
// detectability criterion of Cuviello et al. (ICCAD'99) reduces to "net
// coupling capacitance on some wire exceeds a threshold Cth".
//
// We model each wire with a lumped driver resistance R, a ground capacitance
// Cg, and a symmetric coupling matrix Cc[i][j] whose nominal entries decay
// with wire distance as 1/d^2 (a standard parallel-plate + fringing
// approximation for same-layer neighbours).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xtest::xtalk {

/// Geometry and electrical parameters of a parallel bus.  Defaults model a
/// 2 mm global bus in a 0.18 um-class process (the paper's DSM context).
struct BusGeometry {
  unsigned width = 8;              ///< number of wires
  double wire_length_um = 2000.0;  ///< parallel run length
  double coupling_fF_per_um = 0.08;  ///< nearest-neighbour coupling per um
  double ground_fF_per_um = 0.06;    ///< wire-to-ground cap per um
  double distance_decay_exponent = 2.0;  ///< Cc(d) = Cc(1) / d^exp
  double driver_resistance_ohm = 500.0;  ///< lumped driver + wire resistance

  bool operator==(const BusGeometry&) const = default;
};

/// Dense symmetric coupling matrix plus per-wire ground caps and driver R.
class RcNetwork {
 public:
  /// Builds nominal capacitances from geometry.
  explicit RcNetwork(const BusGeometry& geometry);

  unsigned width() const { return width_; }

  /// Coupling capacitance between wires i and j in fF (0 when i == j).
  double coupling(unsigned i, unsigned j) const {
    return coupling_[index(i, j)];
  }
  void set_coupling(unsigned i, unsigned j, double fF);

  /// Multiply the coupling between i and j by `factor` (defect injection).
  void scale_coupling(unsigned i, unsigned j, double factor);

  /// Adds quiet capacitive load to wire i -- models coupling to wires of
  /// *another* bus routed alongside (the paper's "crosstalk between two
  /// busses" remark): a quiet neighbour never injects charge but always
  /// loads the wire, damping glitches and stretching delays.
  void add_ground_load(unsigned i, double fF);

  /// Sum of coupling capacitance seen by wire i -- the quantity the paper's
  /// Cth criterion is defined on ("net coupling capacitance C").
  double net_coupling(unsigned i) const;

  /// Largest net coupling over all wires.
  double max_net_coupling() const;

  double ground_cap(unsigned i) const { return ground_[i]; }
  double driver_resistance() const { return driver_resistance_ohm_; }

  const BusGeometry& geometry() const { return geometry_; }

  /// Content identity for derived-data caches (e.g. the transient step
  /// plan): drawn from a process-wide counter at construction and bumped by
  /// every mutator, so two networks share a revision only when one is an
  /// unmodified copy of the other -- i.e. only when their capacitances are
  /// identical.  Address reuse can never alias two different networks.
  std::uint64_t revision() const { return revision_; }

 private:
  static std::uint64_t next_revision();

  std::size_t index(unsigned i, unsigned j) const {
    return static_cast<std::size_t>(i) * width_ + j;
  }

  BusGeometry geometry_;
  unsigned width_;
  double driver_resistance_ohm_;
  std::vector<double> coupling_;  // width x width, symmetric, zero diagonal
  std::vector<double> ground_;    // per wire
  std::uint64_t revision_;
};

}  // namespace xtest::xtalk
