// Defect library generation (Fig. 10 of the paper).
//
// A candidate defect perturbs every coupling capacitance of the nominal bus
// by an independent Gaussian percentage (the paper uses a 3-sigma point of
// 150%, i.e. sigma = 50%).  A candidate is *recorded* as a defect exactly
// when the net coupling capacitance on some wire exceeds the threshold Cth
// -- the criterion of Cuviello et al. (ICCAD'99) for "some MA test can
// detect it".  Candidates below the threshold are electrically benign and
// are discarded, exactly as in the paper's flow.

#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "xtalk/rc_network.h"

namespace xtest::xtalk {

struct DefectConfig {
  /// Gaussian sigma of the capacitance variation, in percent.  The paper's
  /// "3-delta point of 150%" is sigma = 50.
  double sigma_pct = 50.0;
  /// Net-coupling threshold in fF above which a wire is defective.
  double cth_fF = 0.0;
  /// Number of defects to generate.
  std::size_t count = 1000;
  std::uint64_t seed = 20010618;  // DAC 2001 week
  /// Abort knob so mis-calibrated configs fail loudly instead of spinning.
  std::size_t max_attempts = 200'000'000;
};

/// Cth used in all experiments: a fixed multiple of the largest *nominal*
/// net coupling, i.e. the acceptable-glitch-height / delay margin expressed
/// in capacitance terms.  With the default ratio the outermost wires cannot
/// become defective under the paper's 3-sigma = 150% distribution, which is
/// what produces the zero-coverage side lines of Fig. 11.
double recommended_cth(const RcNetwork& nominal, double ratio = 1.6);

/// One recorded defect: a multiplicative factor for every unordered wire
/// pair (i < j), row-major in the upper triangle.
class Defect {
 public:
  /// Throws std::invalid_argument when the factor count does not match the
  /// width or any factor is negative or non-finite (defects loaded from
  /// archived CSVs must fail loudly, not poison a campaign).
  Defect(unsigned width, std::vector<double> factors);

  unsigned width() const { return width_; }

  double factor(unsigned i, unsigned j) const;

  /// The nominal network with this defect's perturbation applied.  Throws
  /// std::invalid_argument on a width mismatch.
  RcNetwork apply(const RcNetwork& nominal) const;

  /// Wires whose net coupling exceeds `cth_fF` under this defect.
  std::vector<unsigned> defective_wires(const RcNetwork& nominal,
                                        double cth_fF) const;

 private:
  std::size_t tri_index(unsigned i, unsigned j) const;

  unsigned width_;
  std::vector<double> factors_;  // width*(width-1)/2 entries
};

/// A generated library plus generation statistics.
class DefectLibrary {
 public:
  /// Rejection-samples `config.count` defects.  Throws std::runtime_error
  /// if `max_attempts` candidates do not yield enough defects.
  static DefectLibrary generate(const RcNetwork& nominal,
                                const DefectConfig& config);

  /// Wraps an explicit defect list (e.g. reloaded from CSV) as a library.
  /// The defects are taken as-is; a width that does not match the target
  /// bus surfaces at apply() time, where the campaign quarantines it.
  static DefectLibrary from_defects(const DefectConfig& config,
                                    std::vector<Defect> defects);

  const std::vector<Defect>& defects() const { return defects_; }
  std::size_t size() const { return defects_.size(); }
  const Defect& operator[](std::size_t i) const { return defects_[i]; }

  const DefectConfig& config() const { return config_; }
  /// Candidates drawn, including rejected (benign) ones.
  std::size_t attempts() const { return attempts_; }

  /// Histogram: for each wire, how many library defects make it defective.
  std::vector<std::size_t> defective_wire_histogram(
      const RcNetwork& nominal) const;

 private:
  DefectLibrary(DefectConfig config, std::vector<Defect> defects,
                std::size_t attempts)
      : config_(config), defects_(std::move(defects)), attempts_(attempts) {}

  DefectConfig config_;
  std::vector<Defect> defects_;
  std::size_t attempts_ = 0;
};

}  // namespace xtest::xtalk
