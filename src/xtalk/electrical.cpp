#include "xtalk/electrical.h"

#include <cmath>
#include <stdexcept>

namespace xtest::xtalk {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

std::string to_string(ElectricalBackend backend) {
  switch (backend) {
    case ElectricalBackend::kFullSwing: return "full-swing";
    case ElectricalBackend::kLowSwing: return "low-swing";
  }
  return "full-swing";
}

ElectricalBackend parse_electrical_backend(const std::string& text) {
  if (text == "full-swing") return ElectricalBackend::kFullSwing;
  if (text == "low-swing") return ElectricalBackend::kLowSwing;
  throw std::invalid_argument("expected full-swing or low-swing, got '" +
                              text + "'");
}

ErrorModelConfig calibrate_electrical(const ElectricalConfig& electrical,
                                      const RcNetwork& nominal,
                                      double cth_fF) {
  if (electrical.backend == ElectricalBackend::kFullSwing)
    return ErrorModelConfig::calibrated(nominal, cth_fF);

  // Low-swing: the driver swings swing_ratio * Vdd, so the whole voltage
  // axis of the model -- excursions and thresholds alike -- shrinks by
  // that factor (glitch_amplitude scales with vdd_v).  The glitch
  // threshold is then placed inside the corridor between the worst
  // *nominal* excursion (noise floor: every defect-free transition stays
  // below it, so nominal traffic is never corrupted) and the MAF boundary
  // at Cth.  restorer_ratio = 0.5 lands exactly on the boundary, i.e. the
  // full-swing detectability criterion at the reduced swing; smaller
  // ratios cut the margin towards the floor, making sub-Cth defects
  // observable -- the level-restorer testability argument.
  ErrorModelConfig cfg;
  const double cg = nominal.ground_cap(0);
  const double swing =
      electrical.swing_ratio > 0.0 ? electrical.swing_ratio : 1.0;
  cfg.vdd_v *= swing;
  const double c_floor = nominal.max_net_coupling();
  const double v_floor = cfg.vdd_v * c_floor / (cg + c_floor);
  const double v_maf = cfg.vdd_v * cth_fF / (cg + cth_fF);
  const double fr = electrical.restorer_ratio;
  cfg.glitch_threshold_v = v_floor + (v_maf - v_floor) * 2.0 * fr;
  // A restorer that trips earlier on voltage also resolves transitions
  // earlier in time: the sampling slack stretches by the time the victim
  // RC ramp needs to cross the trip point, t = tau * ln(1 / (1 - fr)),
  // relative to the full-swing 50% point (tau * ln 2).  fr = 0.5 keeps
  // the full-swing slack exactly.
  const double full_slack =
      kLn2 * nominal.driver_resistance() * (cg + 2.0 * cth_fF) * 1e-6;
  const double trip = fr > 0.0 && fr < 1.0 ? -std::log1p(-fr) : kLn2;
  cfg.delay_slack_ns = full_slack * (kLn2 / trip);
  return cfg;
}

}  // namespace xtest::xtalk
