// Pluggable electrical backend for the crosstalk receive model.
//
// The paper's error model assumes full-swing CMOS signalling: the receiver
// thresholds of ErrorModelConfig::calibrated are derived from Vdd and the
// MAF detectability boundary Cth.  Repeaterless low-swing interconnect
// schemes (Naveen & Sharma) trade that swing for energy: the driver only
// swings a fraction of Vdd and a level restorer at the receiver re-amplifies
// the reduced signal.  The noise margins shrink with the swing, so the same
// physical coupling produces receiver errors at smaller excursions -- a
// different *electrical* detectability boundary over the same RC networks.
//
// ElectricalConfig is the seam: every consumer that used to call
// ErrorModelConfig::calibrated directly now routes through
// calibrate_electrical, and the default (kFullSwing) delegates to the
// original calibration bit-for-bit, so off-line campaign verdicts are
// unchanged unless a scenario opts into another backend.
//
// The low-swing backend keeps the corridor *nominal-safe by construction*:
// its glitch threshold is interpolated between the worst nominal excursion
// (the noise floor -- everything below it occurs in defect-free traffic and
// must never flip a receiver) and the MAF boundary at Cth.  restorer_ratio
// in (0, 1) places the level-restorer trip point inside that corridor:
// 0.5 reproduces the full-swing boundary exactly; smaller values detect
// weaker (sub-Cth) defects, the testability argument of the low-swing work.

#pragma once

#include <string>

#include "xtalk/error_model.h"
#include "xtalk/rc_network.h"

namespace xtest::xtalk {

/// Receiver signalling scheme of the bus corridor.
enum class ElectricalBackend {
  kFullSwing,  ///< classic rail-to-rail CMOS (the paper's model)
  kLowSwing,   ///< reduced-swing driver + level restorer at the receiver
};

/// Electrical-backend selection plus the low-swing knobs (ignored by the
/// full-swing backend).  Part of soc::SystemConfig, so it participates in
/// simulator pooling, gold-run keys, and scenario round-trips.
struct ElectricalConfig {
  ElectricalBackend backend = ElectricalBackend::kFullSwing;
  /// Low-swing drive as a fraction of Vdd (Vswing = swing_ratio * vdd).
  double swing_ratio = 0.4;
  /// Level-restorer trip point inside the (noise floor, MAF boundary)
  /// corridor: 0.5 = the full-swing detectability boundary, smaller =
  /// tighter margins (weaker defects become observable).
  double restorer_ratio = 0.35;

  bool operator==(const ElectricalConfig&) const = default;
};

/// "full-swing" / "low-swing".
std::string to_string(ElectricalBackend backend);

/// Inverse of to_string; throws std::invalid_argument naming the valid
/// spellings (the scenario layer maps it to a usage error).
ElectricalBackend parse_electrical_backend(const std::string& text);

/// Receiver thresholds for `nominal`'s bus under the selected backend,
/// calibrated at the MAF boundary `cth_fF`.  kFullSwing returns exactly
/// ErrorModelConfig::calibrated(nominal, cth_fF).  kLowSwing scales Vdd to
/// the reduced swing and derives its thresholds from restorer_ratio as
/// documented above; thresholds always clear the nominal noise floor, so
/// defect-free traffic is received correctly under every backend.
ErrorModelConfig calibrate_electrical(const ElectricalConfig& electrical,
                                      const RcNetwork& nominal, double cth_fF);

}  // namespace xtest::xtalk
