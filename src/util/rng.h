// Deterministic random number generation for defect-library construction.
//
// All stochastic experiments in the library are seeded explicitly so that a
// campaign is exactly reproducible: the same seed always yields the same
// defect library, hence the same coverage table.

#pragma once

#include <cstdint>
#include <random>

namespace xtest::util {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Standard normal times `sigma`.
  double gaussian(double sigma) {
    return std::normal_distribution<double>(0.0, sigma)(engine_);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace xtest::util
