#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace xtest::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      w[c] = std::max(w[c], row[c].size());

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      os << row[c] << std::string(w[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-") << std::string(w[c], '-') << "-|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string Table::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace xtest::util
