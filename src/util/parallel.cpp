#include "util/parallel.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iterator>
#include <thread>

#include "util/fault_injector.h"

namespace xtest::util {

namespace {

unsigned env_threads() {
  const char* raw = std::getenv("XTEST_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return 0;
  return static_cast<unsigned>(v);
}

}  // namespace

ParallelConfig ParallelConfig::from_env() { return {env_threads()}; }

unsigned ParallelConfig::resolve(std::size_t items) const {
  if (items == 0) return 1;  // nothing to fan out, stay on the caller
  unsigned t = threads;
  if (t == 0) t = env_threads();
  if (t == 0) t = std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (t > items) t = static_cast<unsigned>(items);
  return t;
}

std::vector<std::pair<std::size_t, std::size_t>> partition_range(
    std::size_t count, unsigned chunks) {
  if (chunks == 0) chunks = 1;
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(chunks);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t begin = 0;
  for (unsigned w = 0; w < chunks; ++w) {
    const std::size_t len = base + (w < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

void parallel_for_chunks(
    std::size_t count, const ParallelConfig& config,
    const std::function<void(std::size_t, std::size_t, unsigned)>& body) {
  const unsigned workers = config.resolve(count);
  if (workers == 1) {
    body(0, count, 0);
    return;
  }
  const auto chunks = partition_range(count, workers);
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        body(chunks[w].first, chunks[w].second, w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

std::vector<ItemError> parallel_for_items(
    std::size_t count, const ParallelConfig& config,
    const std::function<void(std::size_t, unsigned)>& body) {
  std::vector<std::vector<ItemError>> per_worker(config.resolve(count));
  parallel_for_chunks(
      count, config, [&](std::size_t begin, std::size_t end, unsigned w) {
        for (std::size_t i = begin; i < end; ++i) {
          try {
            FaultInjector::global().maybe_fail("parallel.item");
            body(i, w);
          } catch (const std::exception& e) {
            per_worker[w].push_back({i, e.what()});
          } catch (...) {
            per_worker[w].push_back({i, "unknown exception"});
          }
        }
      });
  std::vector<ItemError> errors;
  for (std::vector<ItemError>& v : per_worker)
    errors.insert(errors.end(), std::make_move_iterator(v.begin()),
                  std::make_move_iterator(v.end()));
  return errors;
}

const char* build_type() {
#ifdef XTEST_BUILD_TYPE
  return XTEST_BUILD_TYPE;
#else
  return "unknown";
#endif
}

std::string CampaignStats::json(const std::string& label) const {
  char buf[1600];
  std::snprintf(
      buf, sizeof buf,
      "{\"campaign\":\"%s\",\"threads\":%u,"
      "\"hardware_concurrency\":%u,\"build_type\":\"%s\",\"defects\":%zu,"
      "\"simulated_cycles\":%llu,\"wall_seconds\":%.6f,"
      "\"defects_per_second\":%.1f,\"detected\":%zu,"
      "\"detected_by_timeout\":%zu,\"undetected\":%zu,\"sim_errors\":%zu,"
      "\"retries\":%zu,\"restored_from_checkpoint\":%zu,"
      "\"salvaged_sections\":%zu,\"dropped_slots\":%zu,"
      "\"flush_failures\":%zu,\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"cache_hit_rate\":%.4f,\"gold_reuses\":%zu,\"gold_evictions\":%zu,"
      "\"batch_screened\":%zu,\"batched_transitions\":%llu,"
      "\"batch_lanes\":%zu,\"batch_capacity\":%zu,\"batch_fill\":%.4f}",
      label.c_str(), threads, std::thread::hardware_concurrency(),
      build_type(), defects_simulated,
      static_cast<unsigned long long>(simulated_cycles), wall_seconds,
      defects_per_second(), detected, detected_by_timeout, undetected,
      sim_errors, retries, restored_from_checkpoint, salvaged_sections,
      dropped_slots, flush_failures,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate(),
      gold_reuses, gold_evictions, batch_screened,
      static_cast<unsigned long long>(batched_transitions), batch_lanes,
      batch_capacity, batch_fill());
  return buf;
}

}  // namespace xtest::util
