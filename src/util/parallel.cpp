#include "util/parallel.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iterator>
#include <thread>

#include "util/fault_injector.h"

namespace xtest::util {

namespace {

unsigned env_threads() {
  const char* raw = std::getenv("XTEST_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return 0;
  return static_cast<unsigned>(v);
}

}  // namespace

ParallelConfig ParallelConfig::from_env() { return {env_threads()}; }

unsigned ParallelConfig::resolve(std::size_t items) const {
  if (items == 0) return 1;  // nothing to fan out, stay on the caller
  unsigned t = threads;
  if (t == 0) t = env_threads();
  if (t == 0) t = std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  if (t > items) t = static_cast<unsigned>(items);
  return t;
}

std::vector<std::pair<std::size_t, std::size_t>> partition_range(
    std::size_t count, unsigned chunks) {
  if (chunks == 0) chunks = 1;
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(chunks);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::size_t begin = 0;
  for (unsigned w = 0; w < chunks; ++w) {
    const std::size_t len = base + (w < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

void parallel_for_chunks(
    std::size_t count, const ParallelConfig& config,
    const std::function<void(std::size_t, std::size_t, unsigned)>& body) {
  const unsigned workers = config.resolve(count);
  if (workers == 1) {
    body(0, count, 0);
    return;
  }
  const auto chunks = partition_range(count, workers);
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        body(chunks[w].first, chunks[w].second, w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

std::vector<ItemError> parallel_for_items(
    std::size_t count, const ParallelConfig& config,
    const std::function<void(std::size_t, unsigned)>& body) {
  std::vector<std::vector<ItemError>> per_worker(config.resolve(count));
  parallel_for_chunks(
      count, config, [&](std::size_t begin, std::size_t end, unsigned w) {
        for (std::size_t i = begin; i < end; ++i) {
          try {
            FaultInjector::global().maybe_fail("parallel.item");
            body(i, w);
          } catch (const std::exception& e) {
            per_worker[w].push_back({i, e.what()});
          } catch (...) {
            per_worker[w].push_back({i, "unknown exception"});
          }
        }
      });
  std::vector<ItemError> errors;
  for (std::vector<ItemError>& v : per_worker)
    errors.insert(errors.end(), std::make_move_iterator(v.begin()),
                  std::make_move_iterator(v.end()));
  return errors;
}

const char* build_type() {
#ifdef XTEST_BUILD_TYPE
  return XTEST_BUILD_TYPE;
#else
  return "unknown";
#endif
}

std::string CampaignStats::json(const std::string& label) const {
  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "{\"campaign\":\"%s\",\"threads\":%u,"
      "\"hardware_concurrency\":%u,\"build_type\":\"%s\",\"defects\":%zu,"
      "\"simulated_cycles\":%llu,\"wall_seconds\":%.6f,"
      "\"defects_per_second\":%.1f,\"detected\":%zu,"
      "\"detected_by_timeout\":%zu,\"undetected\":%zu,\"sim_errors\":%zu,"
      "\"retries\":%zu,\"restored_from_checkpoint\":%zu,"
      "\"salvaged_sections\":%zu,\"dropped_slots\":%zu,"
      "\"flush_failures\":%zu,\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"cache_hit_rate\":%.4f,\"gold_reuses\":%zu,\"gold_evictions\":%zu,"
      "\"run_reuses\":%zu,"
      "\"batch_screened\":%zu,\"batched_transitions\":%llu,"
      "\"batch_lanes\":%zu,\"batch_capacity\":%zu,\"batch_fill\":%.4f,"
      "\"decoded_programs\":%llu,\"decode_cache_hits\":%llu,"
      "\"jit_blocks\":%llu,\"jit_bailouts\":%llu,"
      "\"online_rounds\":%llu,\"online_mmio_heartbeats\":%llu,"
      "\"online_deadlines_late\":%llu,\"online_deadlines_missed\":%llu,"
      "\"online_detection_latency_cycles\":%llu,"
      "\"online_latency_samples\":%zu}",
      label.c_str(), threads, std::thread::hardware_concurrency(),
      build_type(), defects_simulated,
      static_cast<unsigned long long>(simulated_cycles), wall_seconds,
      defects_per_second(), detected, detected_by_timeout, undetected,
      sim_errors, retries, restored_from_checkpoint, salvaged_sections,
      dropped_slots, flush_failures,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_hit_rate(),
      gold_reuses, gold_evictions, run_reuses, batch_screened,
      static_cast<unsigned long long>(batched_transitions), batch_lanes,
      batch_capacity, batch_fill(),
      static_cast<unsigned long long>(decoded_programs),
      static_cast<unsigned long long>(decode_cache_hits),
      static_cast<unsigned long long>(jit_blocks),
      static_cast<unsigned long long>(jit_bailouts),
      static_cast<unsigned long long>(online_rounds),
      static_cast<unsigned long long>(online_mmio_heartbeats),
      static_cast<unsigned long long>(online_deadlines_late),
      static_cast<unsigned long long>(online_deadlines_missed),
      static_cast<unsigned long long>(online_detection_latency_cycles),
      online_latency_samples);
  return buf;
}

void CampaignStats::merge_from(const CampaignStats& other) {
  defects_simulated += other.defects_simulated;
  simulated_cycles += other.simulated_cycles;
  wall_seconds += other.wall_seconds;
  threads = std::max(threads, other.threads);
  detected += other.detected;
  detected_by_timeout += other.detected_by_timeout;
  undetected += other.undetected;
  sim_errors += other.sim_errors;
  retries += other.retries;
  restored_from_checkpoint += other.restored_from_checkpoint;
  salvaged_sections += other.salvaged_sections;
  dropped_slots += other.dropped_slots;
  flush_failures += other.flush_failures;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  gold_reuses += other.gold_reuses;
  gold_evictions += other.gold_evictions;
  run_reuses += other.run_reuses;
  batch_screened += other.batch_screened;
  batched_transitions += other.batched_transitions;
  batch_lanes += other.batch_lanes;
  batch_capacity += other.batch_capacity;
  decoded_programs += other.decoded_programs;
  decode_cache_hits += other.decode_cache_hits;
  jit_blocks += other.jit_blocks;
  jit_bailouts += other.jit_bailouts;
  online_rounds += other.online_rounds;
  online_mmio_heartbeats += other.online_mmio_heartbeats;
  online_deadlines_late += other.online_deadlines_late;
  online_deadlines_missed += other.online_deadlines_missed;
  online_detection_latency_cycles += other.online_detection_latency_cycles;
  online_latency_samples += other.online_latency_samples;
  error_log.insert(error_log.end(), other.error_log.begin(),
                   other.error_log.end());
}

namespace {

/// Extracts `"key":<number>` from a flat JSON object; false if absent.
/// A key that is present but undecodable -- no digits after the colon, a
/// non-finite value, or a second occurrence disagreeing with the first --
/// is damage, not absence, and throws the typed error.
bool json_number(const std::string& obj, const char* key, double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = obj.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtod(start, &end);
  if (end == start)
    throw StatsJsonError(std::string("stats json: unparsable value for \"") +
                         key + "\"");
  if (!std::isfinite(out))
    throw StatsJsonError(std::string("stats json: non-finite value for \"") +
                         key + "\"");
  const std::size_t dup = obj.find(needle, pos + needle.size());
  if (dup != std::string::npos) {
    const char* dstart = obj.c_str() + dup + needle.size();
    char* dend = nullptr;
    const double dv = std::strtod(dstart, &dend);
    if (dend == dstart || dv != out)
      throw StatsJsonError(std::string("stats json: duplicate key \"") + key +
                           "\" with conflicting values");
  }
  return true;
}

template <typename T>
bool json_counter(const std::string& obj, const char* key, T& field) {
  double v = 0.0;
  if (!json_number(obj, key, v)) return false;
  field = static_cast<T>(v);
  return true;
}

}  // namespace

bool parse_stats_json(const std::string& line, CampaignStats& out) {
  const std::size_t open = line.find('{');
  const std::size_t close = line.rfind('}');
  if (open == std::string::npos) return false;
  if (close == std::string::npos || close < open)
    throw StatsJsonError("stats json: truncated object (no closing '}')");
  const std::string obj = line.substr(open, close - open + 1);
  bool any = false;
  any |= json_counter(obj, "defects", out.defects_simulated);
  any |= json_counter(obj, "simulated_cycles", out.simulated_cycles);
  any |= json_counter(obj, "wall_seconds", out.wall_seconds);
  any |= json_counter(obj, "threads", out.threads);
  any |= json_counter(obj, "detected", out.detected);
  any |= json_counter(obj, "detected_by_timeout", out.detected_by_timeout);
  any |= json_counter(obj, "undetected", out.undetected);
  any |= json_counter(obj, "sim_errors", out.sim_errors);
  any |= json_counter(obj, "retries", out.retries);
  any |= json_counter(obj, "restored_from_checkpoint",
                      out.restored_from_checkpoint);
  any |= json_counter(obj, "salvaged_sections", out.salvaged_sections);
  any |= json_counter(obj, "dropped_slots", out.dropped_slots);
  any |= json_counter(obj, "flush_failures", out.flush_failures);
  any |= json_counter(obj, "cache_hits", out.cache_hits);
  any |= json_counter(obj, "cache_misses", out.cache_misses);
  any |= json_counter(obj, "gold_reuses", out.gold_reuses);
  any |= json_counter(obj, "gold_evictions", out.gold_evictions);
  any |= json_counter(obj, "run_reuses", out.run_reuses);
  any |= json_counter(obj, "batch_screened", out.batch_screened);
  any |= json_counter(obj, "batched_transitions", out.batched_transitions);
  any |= json_counter(obj, "batch_lanes", out.batch_lanes);
  any |= json_counter(obj, "batch_capacity", out.batch_capacity);
  any |= json_counter(obj, "decoded_programs", out.decoded_programs);
  any |= json_counter(obj, "decode_cache_hits", out.decode_cache_hits);
  any |= json_counter(obj, "jit_blocks", out.jit_blocks);
  any |= json_counter(obj, "jit_bailouts", out.jit_bailouts);
  any |= json_counter(obj, "online_rounds", out.online_rounds);
  any |= json_counter(obj, "online_mmio_heartbeats",
                      out.online_mmio_heartbeats);
  any |= json_counter(obj, "online_deadlines_late", out.online_deadlines_late);
  any |= json_counter(obj, "online_deadlines_missed",
                      out.online_deadlines_missed);
  any |= json_counter(obj, "online_detection_latency_cycles",
                      out.online_detection_latency_cycles);
  any |= json_counter(obj, "online_latency_samples",
                      out.online_latency_samples);
  return any;
}

}  // namespace xtest::util
