// Fixed-width bus words.
//
// A BusWord is the logical value carried by an N-wire bus (N <= 64).  Wire i
// corresponds to bit i (wire 0 is the least-significant line).  The paper
// numbers bus lines 1..N from the LSB ("bus line 1" in Section 4.1 is the
// least-significant data line), so printable helpers exist for both views.

#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace xtest::util {

/// Value on an N-wire bus, N in [1, 64].  Bits above the width are always 0.
class BusWord {
 public:
  BusWord() = default;

  constexpr BusWord(unsigned width, std::uint64_t bits)
      : width_(width), bits_(bits & mask(width)) {
    assert(width >= 1 && width <= 64);
  }

  /// All-zero word of the given width.
  static constexpr BusWord zeros(unsigned width) { return {width, 0}; }

  /// All-one word of the given width.
  static constexpr BusWord ones(unsigned width) {
    return {width, mask(width)};
  }

  /// Word with only wire `i` high.
  static constexpr BusWord one_hot(unsigned width, unsigned i) {
    return {width, std::uint64_t{1} << i};
  }

  constexpr unsigned width() const { return width_; }
  constexpr std::uint64_t bits() const { return bits_; }

  constexpr bool bit(unsigned i) const {
    assert(i < width_);
    return (bits_ >> i) & 1u;
  }

  constexpr BusWord with_bit(unsigned i, bool value) const {
    assert(i < width_);
    std::uint64_t b = value ? (bits_ | (std::uint64_t{1} << i))
                            : (bits_ & ~(std::uint64_t{1} << i));
    return {width_, b};
  }

  constexpr BusWord inverted() const { return {width_, ~bits_}; }

  constexpr BusWord operator^(const BusWord& o) const {
    assert(width_ == o.width_);
    return {width_, bits_ ^ o.bits_};
  }

  constexpr bool operator==(const BusWord& o) const = default;

  /// Number of wires whose value differs from `o`.
  unsigned hamming_distance(const BusWord& o) const;

  /// MSB-first binary string, e.g. width 4, value 0b0010 -> "0010".
  std::string to_binary() const;

  /// The paper's page:offset rendering for 12-bit addresses
  /// ("1111:11101111"); for other widths falls back to to_binary().
  std::string to_page_offset() const;

  static constexpr std::uint64_t mask(unsigned width) {
    return width >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << width) - 1);
  }

 private:
  unsigned width_ = 1;
  std::uint64_t bits_ = 0;
};

}  // namespace xtest::util
