// Plain-text table rendering for benches and examples.
//
// Every experiment binary prints its reproduction of a paper table/figure
// through this renderer so outputs are uniform and diffable.

#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace xtest::util {

/// Accumulates rows of strings and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment and a header rule.
  std::string render() const;

  /// Render as comma-separated values (header + rows).
  std::string render_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xtest::util
