// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for checkpoint integrity.
//
// Checkpoint files carry a per-section CRC trailer so a torn write, a
// truncated tail, or a flipped bit is *detected* on load and the damaged
// suffix can be dropped (salvage) instead of silently resuming from
// corrupt verdicts.  This is the ubiquitous reflected CRC-32 -- the same
// one zlib/PNG/Ethernet use -- so trailers can be cross-checked with any
// standard tool.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xtest::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of `len` bytes at `data`.  `crc` chains incremental updates:
/// pass the previous return value to continue a running checksum.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t crc = 0) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

inline std::uint32_t crc32(std::string_view s, std::uint32_t crc = 0) {
  return crc32(s.data(), s.size(), crc);
}

}  // namespace xtest::util
