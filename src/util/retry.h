// EINTR-safe syscall retry helpers.
//
// Every read/write loop in the tree talks to the kernel while signals fly:
// the supervisor drains worker pipes under SIGCHLD storms, campaign workers
// heartbeat while the operator mashes Ctrl-C, and the serve daemon moves
// frames across sockets while chaos soaks SIGKILL its peers.  A syscall
// interrupted by a signal fails with EINTR -- which is not an error, just a
// request to try again -- and a short read/write is not a failure either,
// just a partial delivery.  Hand-rolling `do { } while (EINTR)` at every
// call site gets one of the two wrong eventually (the pre-PR-8 supervisor
// drain treated EINTR like EAGAIN and could under-count heartbeats), so the
// idiom lives here once.

#pragma once

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>

namespace xtest::util {

/// Calls `fn` (a syscall-shaped callable returning a signed count) until it
/// either succeeds (>= 0) or fails with an errno other than EINTR.
template <typename Fn>
auto retry_eintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) r;
  do {
    r = fn();
  } while (r < 0 && errno == EINTR);
  return r;
}

/// Writes all `n` bytes to a blocking fd, retrying EINTR and continuing
/// after short writes.  Returns false on any real error (errno is set) --
/// including EAGAIN on a non-blocking fd, which callers that buffer must
/// handle themselves.
inline bool write_full(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = retry_eintr([&] { return ::write(fd, p, n); });
    if (w < 0) return false;
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// write_full for sockets.  A plain write() to a socket whose peer
/// vanished raises SIGPIPE and kills the whole process with no message --
/// exactly the failure a reconnecting client or a daemon shedding a dead
/// peer must survive.  MSG_NOSIGNAL turns that into a plain EPIPE error
/// return the caller can handle like any other broken connection.
inline bool send_full(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w =
        retry_eintr([&] { return ::send(fd, p, n, MSG_NOSIGNAL); });
    if (w < 0) return false;
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly `n` bytes from a blocking fd, retrying EINTR and
/// continuing after short reads.  Returns the byte count actually read:
/// `n` on success, less on EOF, -1 on a real error (errno is set).
inline ssize_t read_full(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r =
        retry_eintr([&] { return ::read(fd, p + got, n - got); });
    if (r < 0) return -1;
    if (r == 0) break;  // EOF
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace xtest::util
