// Minimal POSIX child-process layer for the campaign supervisor.
//
// The supervisor runs campaign shards in *separate processes* so one
// crashing, wedging, or OOM-killed worker can never take the whole
// campaign down.  That needs exactly four primitives: a CLOEXEC pipe, a
// fork/exec spawn that can rewire a handful of child fds (heartbeat
// write end, captured stdout/stderr), non-blocking status polling via
// waitpid, and signal delivery.  Everything here is deliberately thin --
// error handling is exceptions on the parent side and _exit(127) on the
// child side between fork and exec, where nothing else is safe.

#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace xtest::util {

/// An anonymous pipe; both ends are CLOEXEC so they never leak into an
/// exec'd child unless explicitly passed via SpawnSpec::pass_fds.
/// Close-on-destruction is NOT automatic -- the owner closes ends as the
/// handoff dance requires (parent closes the child's end after spawn).
struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
};

/// Creates a CLOEXEC pipe; throws std::runtime_error on failure.
Pipe make_pipe();

/// Puts `fd` into non-blocking mode (the supervisor polls many pipes).
void set_nonblocking(int fd);

/// Closes `fd` if it is valid, ignoring errors; resets it to -1.
void close_fd(int& fd);

/// What to spawn and how to wire its standard environment.
struct SpawnSpec {
  /// argv[0] is the executable path (execv semantics, no PATH search).
  std::vector<std::string> argv;
  /// Child fd rewiring, applied in order in the child after fork:
  /// dup2(parent_fd, child_fd).  dup2 clears CLOEXEC on the target, so
  /// this is also how a CLOEXEC pipe end is deliberately handed to the
  /// child (e.g. {3, heartbeat.write_fd} then "--heartbeat-fd 3").
  std::vector<std::pair<int, int>> pass_fds;  // {child_fd, parent_fd}
  /// When >= 0, dup2'd over the child's stdout / stderr.
  int stdout_fd = -1;
  int stderr_fd = -1;
};

/// How a child ended (or has not yet).
struct ExitStatus {
  bool exited = false;    ///< normal _exit/return; `code` is valid
  bool signaled = false;  ///< killed by a signal; `sig` is valid
  int code = 0;
  int sig = 0;

  bool running() const { return !exited && !signaled; }
  /// Human description: "exit 0", "signal 9 (SIGKILL)", "running".
  std::string describe() const;
};

/// One spawned child.  Movable, not copyable; the destructor does NOT
/// kill or reap -- the supervisor owns the child's lifecycle explicitly.
class ChildProcess {
 public:
  ChildProcess() = default;
  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ~ChildProcess() = default;

  /// fork + execv.  Throws std::runtime_error when the fork fails; an
  /// exec failure inside the child surfaces as exit code 127.
  static ChildProcess spawn(const SpawnSpec& spec);

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }

  /// Non-blocking status check (waitpid WNOHANG).  Once a terminal
  /// status has been collected it is cached and returned forever; the
  /// child is reaped exactly once.
  ExitStatus poll_status();

  /// Blocking wait for termination; reaps and caches like poll_status.
  ExitStatus wait();

  /// Best-effort signal delivery (no-op once reaped or invalid).
  void kill(int sig) const;

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  ExitStatus status_;
};

/// Absolute path of the running executable (/proc/self/exe); empty when
/// the platform cannot say.  The supervisor re-execs this binary as its
/// shard workers.
std::string current_executable();

}  // namespace xtest::util
