// Deterministic parallel campaign execution.
//
// Defect-simulation campaigns are embarrassingly parallel: every defect is
// an independent whole-program simulation against the same gold run.  The
// work pool here fans an index range out over std::thread workers with
// chunked *static* scheduling: the partition of [0, count) into contiguous
// chunks is a pure function of (count, thread count), and campaign code
// writes results into pre-sized vectors by defect index.  Together these
// make every campaign result bitwise identical for ANY thread count --
// including threads == 1, which runs the body inline on the calling
// thread (the exact serial path).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace xtest::util {

/// Thread-count policy for a campaign.
struct ParallelConfig {
  /// 0 = auto: $XTEST_THREADS when set and positive, else the hardware
  /// concurrency.  1 = serial (body runs inline on the caller).
  unsigned threads = 0;

  /// Explicit env snapshot: `threads` filled from $XTEST_THREADS (0 when
  /// unset/invalid, i.e. still auto).  `resolve` consults the env for
  /// auto configs anyway; this exists for callers that want to log the
  /// choice up front.
  static ParallelConfig from_env();

  /// Effective worker count for `items` work items: never 0, never more
  /// than `items` (except that 0 items resolve to 1 so a pool can still
  /// be formed and the serial path stays trivial).
  unsigned resolve(std::size_t items) const;
};

/// Contiguous [begin, end) chunks, one per worker, covering [0, count)
/// exactly once in ascending order.  Chunk lengths differ by at most one;
/// when count < chunks the trailing chunks are empty.  `chunks` is
/// clamped to >= 1.
std::vector<std::pair<std::size_t, std::size_t>> partition_range(
    std::size_t count, unsigned chunks);

/// Runs `body(begin, end, worker)` over the static partition of
/// [0, count), one invocation per worker.  The worker count comes from
/// `config.resolve(count)`; at 1 the body is invoked directly on the
/// calling thread with worker index 0.  All workers are joined before
/// return; an exception thrown inside a worker is captured and re-thrown
/// here (the lowest-index worker's exception wins), so a throwing
/// campaign can never deadlock the pool or leak a detached thread.
void parallel_for_chunks(
    std::size_t count, const ParallelConfig& config,
    const std::function<void(std::size_t, std::size_t, unsigned)>& body);

/// One quarantined work item: the index whose body threw, plus the
/// exception message.
struct ItemError {
  std::size_t index = 0;
  std::string message;
};

/// Fault-contained variant of parallel_for_chunks: runs `body(i, worker)`
/// for every i of the worker's chunk, and an exception thrown for item i
/// is captured as an ItemError instead of killing the sweep -- the worker
/// continues with i + 1 and every other item still runs.  Returned errors
/// are in ascending index order (chunks are contiguous and ascending, so
/// the order is identical for every thread count).  Non-std exceptions are
/// recorded with a generic message.  Each item consults fault-injection
/// site "parallel.item" before running, so an armed injector exercises
/// exactly this quarantine path.
std::vector<ItemError> parallel_for_items(
    std::size_t count, const ParallelConfig& config,
    const std::function<void(std::size_t, unsigned)>& body);

/// Aggregate statistics of one campaign, or a sum over sessions: the
/// campaign functions *add* onto an existing object so multi-session and
/// per-line sweeps accumulate naturally.
struct CampaignStats {
  /// Whole-program (or whole-pattern-set) defect simulations executed.
  std::size_t defects_simulated = 0;
  /// Simulated clock cycles across all runs, gold runs included.  A pure
  /// function of the campaign inputs -- identical for every thread count.
  std::uint64_t simulated_cycles = 0;
  /// Host wall-clock time spent inside campaign calls.
  double wall_seconds = 0.0;
  /// Resolved worker count of the most recent campaign call.
  unsigned threads = 0;

  // Verdict breakdown (filled by campaigns that classify their results; a
  // pure function of the campaign inputs, like simulated_cycles).
  std::size_t detected = 0;
  std::size_t detected_by_timeout = 0;
  std::size_t undetected = 0;
  /// Defects whose simulation threw (quarantined, never aborting the
  /// campaign); the accompanying messages are appended to `error_log`.
  std::size_t sim_errors = 0;
  /// Serial retry attempts made for quarantined defects.
  std::size_t retries = 0;
  /// Verdicts restored from a checkpoint instead of being simulated.
  std::size_t restored_from_checkpoint = 0;
  /// Sections recovered intact from a damaged checkpoint file (the valid
  /// prefix kept by the salvage loader).
  std::size_t salvaged_sections = 0;
  /// Completed verdicts lost to a damaged checkpoint tail and re-simulated.
  std::size_t dropped_slots = 0;
  /// Periodic checkpoint flushes that failed (ENOSPC, injected fault, ...)
  /// and were deferred to the next flush instead of aborting the campaign.
  std::size_t flush_failures = 0;
  // Hot-path counters (results are unaffected: cached words and reused
  // gold snapshots are bit-identical to recomputation).
  /// Bus transfers answered from a transition memo instead of re-evaluated.
  std::uint64_t cache_hits = 0;
  /// Bus transfers that missed the memo and ran the analytic fast path.
  std::uint64_t cache_misses = 0;
  /// Gold runs answered from the process-wide snapshot memo.
  std::size_t gold_reuses = 0;
  /// Gold snapshots evicted by the memo's LRU entry cap during this
  /// campaign's stores (process-wide memo, so sweeps accumulate).
  std::size_t gold_evictions = 0;
  /// Whole defect runs answered from the process-wide run memo instead of
  /// re-simulated (accelerated tiers only; the memoed verdict and cycle
  /// count are the exact values the re-simulation would produce).
  std::size_t run_reuses = 0;
  // Transition-major batched screening (verdicts are unaffected: a
  // screened defect provably produces the gold response).
  /// Defects proven undetected by the batched screen, never simulated.
  std::size_t batch_screened = 0;
  /// Gold transitions scored against a whole DefectBatch window (one per
  /// screen pass; early-exits when a window has no live lane left).
  std::uint64_t batched_transitions = 0;
  /// Defect lanes gathered into batches, and the total lane capacity of
  /// the launched batches (batches x batch_size); their ratio is the
  /// batch fill.
  std::size_t batch_lanes = 0;
  std::size_t batch_capacity = 0;
  // Execution-tier counters (cpu/microcode.h; verdicts are unaffected:
  // accelerated tiers are bitwise-equivalent or finish on the reference
  // interpreter).  All zero on the reference tier.
  /// Program images pre-decoded into micro-op arrays.
  std::uint64_t decoded_programs = 0;
  /// Pre-decode passes answered from a decode memo instead of rebuilt.
  std::uint64_t decode_cache_hits = 0;
  /// Straight-line blocks compiled by the jit tier.
  std::uint64_t jit_blocks = 0;
  /// Runs degraded to a slower tier (self-modified instruction fetch,
  /// mid-program resume, unavailable jit backend).
  std::uint64_t jit_bailouts = 0;
  // On-line interleaved campaigns (sim/online.h; all zero in off-line
  // mode).  Pure functions of the campaign inputs, like the verdicts:
  // identical at every thread count and across checkpoint resumes.
  /// Interleaved rounds (functional window + test slice) executed or
  /// restored, gold schedules included.
  std::uint64_t online_rounds = 0;
  /// Heartbeat writes the functional workload landed on the MMIO deadline
  /// device across all interleaved runs.
  std::uint64_t online_mmio_heartbeats = 0;
  /// Heartbeats arriving later than the deadline (but within twice it).
  std::uint64_t online_deadlines_late = 0;
  /// Heartbeats arriving later than twice the deadline, and starvation
  /// tails of workloads a defect derailed for good.
  std::uint64_t online_deadlines_missed = 0;
  /// Sum over detected defects of the global-clock cycle count from
  /// activation (cycle 0) to the first diverging slice boundary.
  std::uint64_t online_detection_latency_cycles = 0;
  /// Number of defects contributing to that sum (mean latency =
  /// cycles / samples).
  std::size_t online_latency_samples = 0;
  /// One "defect <index>: <message>" line per quarantined simulation.
  std::vector<std::string> error_log;

  double defects_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(defects_simulated) / wall_seconds
               : 0.0;
  }

  /// Fraction of gathered lanes over launched batch capacity, in [0, 1]
  /// (1.0 = every batch ran full; partial tail windows lower it).
  double batch_fill() const {
    return batch_capacity > 0 ? static_cast<double>(batch_lanes) /
                                    static_cast<double>(batch_capacity)
                              : 0.0;
  }

  /// Fraction of cache-eligible transfers served from the memo, in [0, 1].
  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }

  /// One-line JSON record for the perf trajectory, keyed by `label`.
  /// Besides the counters it records the execution environment --
  /// resolved worker count, std::thread::hardware_concurrency(), and the
  /// build type -- so a perf artifact is interpretable on its own (e.g.
  /// "threads=4 slower than threads=1" is expected on a 1-CPU host).
  std::string json(const std::string& label) const;

  /// Adds another campaign's RAW counters onto this one (shard merge,
  /// supervised workers).  Every derived ratio -- cache_hit_rate,
  /// batch_fill, defects_per_second -- stays a function over the merged
  /// raw counters, so merging never averages rates: the merged hit rate
  /// is (sum hits) / (sum hits + sum misses), not the mean of per-shard
  /// rates.  wall_seconds accumulates (aggregate time inside campaign
  /// calls, as for multi-session sweeps); `threads` keeps the maximum of
  /// the two resolved worker counts; error_log entries are appended.
  void merge_from(const CampaignStats& other);
};

/// A stats line that LOOKS like a stats object but cannot be decoded:
/// truncated (an opening '{' with no closing '}'), a known key whose value
/// is not a finite number, or a known key appearing twice with conflicting
/// values.  The supervisor and the serve daemon read these lines from
/// worker process output -- i.e. from a process that may have been
/// SIGKILLed mid-printf -- so damage must surface as this typed error
/// (callers skip the line), never as silently-wrong counters or UB.
struct StatsJsonError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Best-effort inverse of CampaignStats::json for the flat numeric fields
/// (verdict breakdown, cycles, cache/batch/gold counters, wall_seconds,
/// threads).  Scans `line` for the first '{'...'}' JSON object; returns
/// false when no such object or no known key is found, and throws
/// StatsJsonError for an object that is damaged (see above).  Environment
/// fields (hardware_concurrency, build_type) and derived ratios are
/// ignored -- ratios are recomputed from the raw counters.  This is how a
/// supervisor reads a worker process's --stats-json line back.
bool parse_stats_json(const std::string& line, CampaignStats& out);

/// The CMake build type the library was compiled as ("Release",
/// "RelWithDebInfo", ...; "unknown" when the build system did not say).
const char* build_type();

}  // namespace xtest::util
