#include "util/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/retry.h"

namespace xtest::util {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

ExitStatus decode(int raw) {
  ExitStatus st;
  if (WIFEXITED(raw)) {
    st.exited = true;
    st.code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    st.signaled = true;
    st.sig = WTERMSIG(raw);
  }
  return st;
}

}  // namespace

std::string ExitStatus::describe() const {
  if (exited) return "exit " + std::to_string(code);
  if (signaled) {
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) +
           (name != nullptr ? " (" + std::string(name) + ")" : "");
  }
  return "running";
}

Pipe make_pipe() {
  int fds[2];
#ifdef O_CLOEXEC
  if (::pipe2(fds, O_CLOEXEC) != 0) fail("pipe2");
#else
  if (::pipe(fds) != 0) fail("pipe");
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
#endif
  return {fds[0], fds[1]};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    fail("fcntl(O_NONBLOCK)");
}

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(other.pid_), reaped_(other.reaped_), status_(other.status_) {
  other.pid_ = -1;
  other.reaped_ = false;
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    status_ = other.status_;
    other.pid_ = -1;
    other.reaped_ = false;
  }
  return *this;
}

ChildProcess ChildProcess::spawn(const SpawnSpec& spec) {
  if (spec.argv.empty())
    throw std::runtime_error("subprocess: empty argv");
  // execv wants mutable char*; build the array before forking so the
  // child does nothing but dup2 + exec (async-signal-safe territory).
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const std::string& a : spec.argv)
    argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) fail("fork");
  if (pid == 0) {
    // Child: only async-signal-safe calls from here to exec.
    for (const auto& [child_fd, parent_fd] : spec.pass_fds)
      if (::dup2(parent_fd, child_fd) < 0) ::_exit(127);
    if (spec.stdout_fd >= 0 && ::dup2(spec.stdout_fd, STDOUT_FILENO) < 0)
      ::_exit(127);
    if (spec.stderr_fd >= 0 && ::dup2(spec.stderr_fd, STDERR_FILENO) < 0)
      ::_exit(127);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  ChildProcess child;
  child.pid_ = pid;
  return child;
}

ExitStatus ChildProcess::poll_status() {
  if (reaped_ || pid_ <= 0) return status_;
  int raw = 0;
  const pid_t r =
      retry_eintr([&] { return ::waitpid(pid_, &raw, WNOHANG); });
  if (r == pid_) {
    status_ = decode(raw);
    reaped_ = !status_.running();
  }
  return status_;
}

ExitStatus ChildProcess::wait() {
  if (reaped_ || pid_ <= 0) return status_;
  int raw = 0;
  const pid_t r = retry_eintr([&] { return ::waitpid(pid_, &raw, 0); });
  if (r == pid_) {
    status_ = decode(raw);
    reaped_ = !status_.running();
  }
  return status_;
}

void ChildProcess::kill(int sig) const {
  if (pid_ > 0 && !reaped_) ::kill(pid_, sig);
}

std::string current_executable() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

}  // namespace xtest::util
