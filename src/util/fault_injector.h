// Seeded, deterministic fault injection for resilience testing.
//
// Production code that can fail -- checkpoint I/O, serialize loaders,
// per-defect simulation bodies, response unload -- declares *named
// injection sites*: a call to FaultInjector::global().maybe_fail("site")
// on the failure path.  When the injector is disarmed (the default) a
// site costs one relaxed atomic load; nothing fires, nothing is counted.
// Armed, each hit of a site is counted and a per-site rule decides
// whether that hit fails, so tests, the chaos soak, and CI can drive the
// exact error paths that a real ENOSPC / torn write / wedged simulation
// would take -- reproducibly.
//
// Spec grammar (used by $XTEST_FAULTS and `xtest ... --faults`):
//
//   spec    := entry ["," entry]* [":" seed]
//   entry   := site            fail every hit
//            | site "@" N      fail exactly the Nth hit (1-based), once
//            | site "%" P      fail each hit with probability P in [0,1]
//   site    := dotted name, e.g. checkpoint.rename; a trailing '*'
//              matches any site with that prefix (parallel.*)
//
//   XTEST_FAULTS="checkpoint.rename@2:42"
//   XTEST_FAULTS="parallel.item%0.05,checkpoint.fsync%0.2:7"
//
// Probabilistic decisions are a pure function of (seed, site, hit index),
// so a given seed always fails the same hits of a site no matter how
// threads interleave *other* sites.  configure() resets all counters.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

namespace xtest::util {

/// The exception an armed site throws from maybe_fail().  Derives from
/// std::runtime_error so every real error-handling path (quarantine,
/// flush retry, CLI exit codes) treats it exactly like the genuine
/// failure it stands in for.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  /// Disarmed: no site ever fires.
  FaultInjector() = default;

  /// Arms the injector with `spec` (grammar above), resetting all hit and
  /// fire counters.  An empty spec disarms.  Throws std::invalid_argument
  /// on a malformed spec.
  void configure(const std::string& spec);

  /// Disarms and clears every rule and counter.
  void disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Counts a hit of `site` and returns true when the matching rule says
  /// this hit fails.  Disarmed: returns false without counting.
  bool fire(const std::string& site);

  /// Literal-site overload for per-instruction / per-defect hot paths:
  /// the disarmed check happens before any std::string materializes.
  bool fire(const char* site) {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return fire(std::string(site));
  }

  /// fire(), but throws InjectedFault("injected fault at <site> (hit N)")
  /// instead of returning true.
  void maybe_fail(const std::string& site);

  /// Total hits / fires of a concrete site since configure().  Sites are
  /// only tracked while armed.
  std::size_t hits(const std::string& site) const;
  std::size_t fired(const std::string& site) const;

  /// One "site hits=H fired=F" line per tracked site (chaos-soak logs).
  std::string summary() const;

  /// Process-wide injector.  The first call reads $XTEST_FAULTS; a
  /// malformed value prints one warning to stderr and stays disarmed (a
  /// bad knob must not take down a campaign).
  static FaultInjector& global();

 private:
  struct Rule {
    enum class Mode { kAlways, kNth, kProb };
    Mode mode = Mode::kAlways;
    std::uint64_t nth = 0;  // kNth: 1-based hit index that fails
    double prob = 0.0;      // kProb
  };
  struct Counter {
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  const Rule* match_locked(const std::string& site) const;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::uint64_t seed_ = 0;
  std::map<std::string, Rule> rules_;      // key may end in '*' (prefix)
  std::map<std::string, Counter> counts_;  // concrete site names
};

}  // namespace xtest::util
