#include "util/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/retry.h"

namespace xtest::util {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int cloexec_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail("socket");
  return fd;
}

}  // namespace

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = cloexec_socket(AF_UNIX);
  // A stale socket file from a dead daemon blocks bind forever; connect()
  // distinguishes live from stale: ECONNREFUSED means nobody is listening
  // and the path is safe to reclaim.
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EADDRINUSE) {
      const int probe = cloexec_socket(AF_UNIX);
      const int r = retry_eintr([&] {
        return ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                         sizeof addr);
      });
      ::close(probe);
      if (r == 0) {
        ::close(fd);
        errno = EADDRINUSE;
        fail("bind (a daemon is already listening on " + path + ")");
      }
      ::unlink(path.c_str());
      if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        fail("bind " + path);
      }
    } else {
      ::close(fd);
      fail("bind " + path);
    }
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    fail("listen " + path);
  }
  return fd;
}

int listen_tcp(std::uint16_t port, std::uint16_t* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  const int fd = cloexec_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    fail("bind 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    fail("getsockname");
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    fail("listen 127.0.0.1:" + std::to_string(port));
  }
  return fd;
}

int accept_connection(int listen_fd) {
  return static_cast<int>(retry_eintr([&] {
    return ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  }));
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = cloexec_socket(AF_UNIX);
  const int r = static_cast<int>(retry_eintr([&] {
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  }));
  if (r != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int connect_tcp(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int fd = cloexec_socket(AF_INET);
  const int r = static_cast<int>(retry_eintr([&] {
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  }));
  if (r != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

}  // namespace xtest::util
