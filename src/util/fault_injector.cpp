#include "util/fault_injector.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace xtest::util {

namespace {

// FNV-1a, to fold a site name into the decision hash.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// SplitMix64 finaliser: a well-mixed pure function of its input, so each
// (seed, site, hit) triple gets an independent uniform decision.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("fault spec '" + spec + "': " + why);
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (c < '0' || c > '9') return false;
  return true;
}

}  // namespace

void FaultInjector::configure(const std::string& spec) {
  std::map<std::string, Rule> rules;
  std::uint64_t seed = 0;

  std::string entries = spec;
  // A trailing ":<digits>" is the seed; site names never contain ':'.
  const std::size_t colon = entries.rfind(':');
  if (colon != std::string::npos) {
    const std::string tail = entries.substr(colon + 1);
    if (!all_digits(tail))
      bad_spec(spec, "seed '" + tail + "' is not a number");
    seed = std::strtoull(tail.c_str(), nullptr, 10);
    entries.resize(colon);
  }

  std::istringstream is(entries);
  std::string entry;
  while (std::getline(is, entry, ',')) {
    if (entry.empty()) continue;
    Rule rule;
    std::string site = entry;
    const std::size_t at = entry.find('@');
    const std::size_t pct = entry.find('%');
    if (at != std::string::npos && pct != std::string::npos)
      bad_spec(spec, "entry '" + entry + "' mixes '@' and '%'");
    if (at != std::string::npos) {
      site = entry.substr(0, at);
      const std::string n = entry.substr(at + 1);
      if (!all_digits(n) || n == "0")
        bad_spec(spec, "entry '" + entry + "': '@' needs a hit index >= 1");
      rule.mode = Rule::Mode::kNth;
      rule.nth = std::strtoull(n.c_str(), nullptr, 10);
    } else if (pct != std::string::npos) {
      site = entry.substr(0, pct);
      const std::string prob = entry.substr(pct + 1);
      char* end = nullptr;
      rule.mode = Rule::Mode::kProb;
      rule.prob = std::strtod(prob.c_str(), &end);
      if (prob.empty() || end != prob.c_str() + prob.size() ||
          rule.prob < 0.0 || rule.prob > 1.0)
        bad_spec(spec,
                 "entry '" + entry + "': '%' needs a probability in [0,1]");
    }
    if (site.empty()) bad_spec(spec, "entry '" + entry + "' has no site");
    rules[site] = rule;
  }

  std::lock_guard<std::mutex> lock(mu_);
  rules_ = std::move(rules);
  seed_ = seed;
  counts_.clear();
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  counts_.clear();
  seed_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

const FaultInjector::Rule* FaultInjector::match_locked(
    const std::string& site) const {
  const auto exact = rules_.find(site);
  if (exact != rules_.end()) return &exact->second;
  for (const auto& [key, rule] : rules_) {
    if (key.empty() || key.back() != '*') continue;
    if (site.compare(0, key.size() - 1, key, 0, key.size() - 1) == 0)
      return &rule;
  }
  return nullptr;
}

bool FaultInjector::fire(const std::string& site) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  Counter& c = counts_[site];
  ++c.hits;
  const Rule* rule = match_locked(site);
  if (rule == nullptr) return false;
  bool fires = false;
  switch (rule->mode) {
    case Rule::Mode::kAlways: fires = true; break;
    case Rule::Mode::kNth: fires = c.hits == rule->nth; break;
    case Rule::Mode::kProb: {
      const std::uint64_t h = mix(seed_ ^ fnv1a(site) ^ c.hits);
      fires = static_cast<double>(h >> 11) * 0x1.0p-53 < rule->prob;
      break;
    }
  }
  if (fires) ++c.fired;
  return fires;
}

void FaultInjector::maybe_fail(const std::string& site) {
  if (!fire(site)) return;
  std::size_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hit = counts_[site].hits;
  }
  throw InjectedFault("injected fault at " + site + " (hit " +
                      std::to_string(hit) + ")");
}

std::size_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second.hits;
}

std::size_t FaultInjector::fired(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counts_.find(site);
  return it == counts_.end() ? 0 : it->second.fired;
}

std::string FaultInjector::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [site, c] : counts_)
    os << site << " hits=" << c.hits << " fired=" << c.fired << '\n';
  return os.str();
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("XTEST_FAULTS");
        env != nullptr && *env != '\0') {
      try {
        inj->configure(env);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "warning: ignoring XTEST_FAULTS: %s\n",
                     e.what());
      }
    }
    return inj;
  }();
  return *injector;
}

}  // namespace xtest::util
