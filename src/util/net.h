// Minimal socket endpoints for the campaign service.
//
// The serve daemon listens on a Unix-domain socket (the default: one host,
// filesystem permissions as access control) or a loopback TCP port (for
// harnesses that cannot share a filesystem path).  This layer owns exactly
// the endpoint plumbing -- listen, accept, connect -- and nothing about
// the frame protocol; every call retries EINTR (util/retry.h) and reports
// failure by exception on the daemon side (a daemon that cannot bind has
// nothing to degrade to) and by -1/errno on the client side (clients
// retry with backoff).

#pragma once

#include <cstdint>
#include <string>

namespace xtest::util {

/// Binds and listens on a Unix-domain socket at `path`, replacing a stale
/// socket file from a dead daemon (bind would otherwise fail with
/// EADDRINUSE forever).  Returns the listening fd (CLOEXEC).  Throws
/// std::runtime_error on failure.
int listen_unix(const std::string& path);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral).  The port
/// actually bound is written to `bound_port`.  Returns the listening fd
/// (CLOEXEC).  Throws std::runtime_error on failure.
int listen_tcp(std::uint16_t port, std::uint16_t* bound_port);

/// Accepts one pending connection; returns the connection fd (CLOEXEC),
/// or -1 when none is pending (EAGAIN) or the accept genuinely failed
/// (errno says which).  Never throws: a bad peer must not take the
/// accept loop down.
int accept_connection(int listen_fd);

/// Connects to a Unix-domain socket / loopback TCP port.  Returns the
/// connected fd (CLOEXEC) or -1 with errno set.  Blocking; clients wrap
/// these in their own retry/backoff loop.
int connect_unix(const std::string& path);
int connect_tcp(std::uint16_t port);

}  // namespace xtest::util
