#include "util/bitvec.h"

#include <bit>

namespace xtest::util {

unsigned BusWord::hamming_distance(const BusWord& o) const {
  assert(width_ == o.width_);
  return static_cast<unsigned>(std::popcount(bits_ ^ o.bits_));
}

std::string BusWord::to_binary() const {
  std::string s;
  s.reserve(width_);
  for (unsigned i = width_; i-- > 0;) s.push_back(bit(i) ? '1' : '0');
  return s;
}

std::string BusWord::to_page_offset() const {
  if (width_ != 12) return to_binary();
  const std::string s = to_binary();
  return s.substr(0, 4) + ":" + s.substr(4);
}

}  // namespace xtest::util
