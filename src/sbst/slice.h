// Resumable execution slices of a self-test program.
//
// Off-line campaigns run a TestProgram to completion in one call; the
// on-line testing mode (and the PR 3 watchdog before it) needs to stop the
// program at an instruction boundary, give the core back to functional
// work, and later continue as if nothing happened.  A ProgramSlice owns
// exactly that lifecycle: the first run() loads the program into the
// system, every subsequent run() reinstates the saved architectural state
// (soc::SliceState -- CPU registers, memory, bus held words, pre-decode)
// and continues for another cycle budget.
//
// The invariant the slice property tests pin down: for ANY sequence of
// budgets, the concatenated slices produce the same memory contents, the
// same cycle count, and the same halt reason as the single uninterrupted
// run -- on every execution tier, under any defect, across different
// System instances.  Budgets land on instruction boundaries the same way
// Cpu::run's cumulative cycle cap does (the instruction in flight always
// completes), so slicing is tier-exact by construction.

#pragma once

#include <cstdint>

#include "sbst/program.h"
#include "soc/system.h"

namespace xtest::sbst {

class ProgramSlice {
 public:
  /// Binds to `program`, which must outlive the slice.  Nothing runs yet.
  explicit ProgramSlice(const TestProgram& program) : program_(&program) {}

  /// Runs up to `budget` more cycles on `system` (rounded up to the
  /// instruction boundary, as Cpu::run does).  The first call performs the
  /// tester's load_and_reset; later calls restore the suspended state --
  /// on the same System or any other with compatible configuration.  The
  /// suspended state is captured before returning.
  soc::RunResult run(soc::System& system, std::uint64_t budget);

  bool started() const { return started_; }
  bool halted() const { return started_ && state_.cpu.reason !=
                                               cpu::HaltReason::kRunning; }
  /// Cycles consumed so far (across all slices).
  std::uint64_t cycles() const { return started_ ? state_.cpu.cycles : 0; }
  cpu::HaltReason reason() const { return state_.cpu.reason; }

  const TestProgram& program() const { return *program_; }
  const soc::SliceState& state() const { return state_; }

  /// Byte at `addr` in the suspended memory (response-cell unloading from
  /// a parked slice, without touching any System).
  std::uint8_t memory_at(cpu::Addr addr) const {
    return state_.memory[addr & cpu::kAddrMask];
  }

 private:
  const TestProgram* program_;
  soc::SliceState state_;
  bool started_ = false;
};

}  // namespace xtest::sbst
