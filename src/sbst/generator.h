// Self-test program generator (Sections 3-4 of the paper).
//
// Produces a program for the PARWAN-style CPU-memory system that applies MA
// vector pairs to the address and data buses in normal functional mode:
//
//  * data bus, core->cpu (kDataRead): an ADD whose offset byte is v1 reads
//    an operand cell containing v2 -- the M[Ai+1] -> M[Ax] transition of
//    Fig. 4/5.  Responses compact by accumulation exactly as in Fig. 8.
//  * data bus, cpu->core (kDataWrite): LDA loads v2, then a STA whose
//    offset byte is v1 drives ACC = v2 onto the bus; the written target
//    cell is itself the response (Section 3.1).
//  * address bus, delay faults (kAddrDelay): the accessing instruction is
//    placed at v1-1 so its operand fetch produces the Ai+1 -> Ax = v1 -> v2
//    transition (Section 4.2.1).
//  * address bus, glitch faults (kAddrGlitch): the two-instruction scheme
//    of Section 4.2.2 -- instruction 1 at v2-2 accesses v1, instruction 2
//    at v2, so the inter-instruction transition Ax -> Ai+2 applies (v1, v2)
//    without the shared-start-vector address conflict.
//
// Fragments are chained with JMPs; each compaction group is CLA-opened and
// closed by storing the accumulator into a response cell (Section 4.3).
// Tests whose placement constraints collide with already-placed bytes are
// reported unplaced -- the paper's "address conflicts" (41/48 address
// tests in its single session) -- and `generate_sessions` re-attempts them
// in fresh programs, the paper's proposed multi-session resolution.

#pragma once

#include <optional>
#include <vector>

#include "sbst/program.h"

namespace xtest::sbst {

/// Order in which address-bus MAFs are attempted.  Placement is greedy,
/// so the order decides who wins the contested cells near the one-hot /
/// inverted-one-hot clusters (ablation experiment E15).
enum class PlacementOrder : std::uint8_t {
  kVictimMajor,    ///< per victim: gp, gn, dr, df (enumeration order)
  kDelaysFirst,    ///< all dr/df, then all gp/gn
  kGlitchesFirst,  ///< all gp/gn, then all dr/df
  kCenterOut,      ///< victims from the bus center outwards
};

struct GeneratorConfig {
  bool include_address_bus = true;
  bool include_data_bus = true;
  PlacementOrder order = PlacementOrder::kVictimMajor;
  /// Apply data-bus tests in both directions (the paper's 64 = 8*4*2).
  bool data_both_directions = true;
  /// Tests per response-compaction group (the signature is one byte, and
  /// one-hot pass values need group_size <= 8).
  unsigned group_size = 8;
  /// Functionally usable address space: cells at/above are untouchable
  /// (models partially populated memory maps; used by the over-testing
  /// experiment).
  cpu::Addr usable_limit = cpu::kMemWords;
  /// Restrict to specific faults (used for per-line attribution programs
  /// and multi-session retries).  Unset = all faults of the bus.
  std::optional<std::vector<xtalk::MafFault>> address_faults;
  std::optional<std::vector<xtalk::MafFault>> data_faults;

  bool operator==(const GeneratorConfig&) const = default;
};

class TestProgramGenerator {
 public:
  explicit TestProgramGenerator(GeneratorConfig config = {})
      : config_(std::move(config)) {}

  const GeneratorConfig& config() const { return config_; }

  /// Builds one self-test program (one tester session).
  GenerationResult generate() const;

  /// Multi-session splitting (Section 5): keeps generating programs for
  /// the still-unplaced tests until all are placed, progress stops, or
  /// `max_sessions` is reached.
  static std::vector<GenerationResult> generate_sessions(
      GeneratorConfig config, int max_sessions = 6);

 private:
  GeneratorConfig config_;
};

}  // namespace xtest::sbst
