// Self-test program representation.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/memory_image.h"
#include "soc/bus.h"
#include "xtalk/maf.h"

namespace xtest::sbst {

/// How a test was realised in the program.
enum class Scheme : std::uint8_t {
  kAddrDelay,   ///< 1-instruction scheme, transition Ai+1 -> Ax (Sec. 4.2.1)
  kAddrGlitch,  ///< 2-instruction scheme, transition Ax -> Ai' (Sec. 4.2.2)
  /// Compact fallbacks for densely clustered placements: the chaining JMP
  /// itself applies the pair (its byte-2 fetch at v1 is followed by the
  /// instruction fetch at the jump target v2), and detection is by control
  /// divergence rather than an accumulated value.
  kAddrDelayJmp,
  kAddrGlitchJmp,
  kDataRead,    ///< data bus core->cpu, transition M[Ai+1] -> M[Ax] (Sec. 4.1)
  kDataWrite,   ///< data bus cpu->core, transition M[Ai+1] -> ACC (Sec. 3.1)
};

std::string to_string(Scheme s);

/// One MA test realised in the program.
struct PlannedTest {
  soc::BusKind bus = soc::BusKind::kAddress;
  xtalk::MafFault fault;
  xtalk::VectorPair pair;   ///< the applied MA vector pair
  Scheme scheme = Scheme::kAddrDelay;
  int group = -1;           ///< response-compaction group
  cpu::Addr response_cell = 0;
  std::uint8_t pass_value = 0;  ///< this test's contribution to the group
                                ///< signature (diagnostic; gold run is the
                                ///< authoritative expected response)
};

/// A test that could not be realised.
struct UnplacedTest {
  soc::BusKind bus = soc::BusKind::kAddress;
  xtalk::MafFault fault;
  std::string reason;
};

struct TestProgram {
  cpu::MemoryImage image;
  cpu::Addr entry = 0;
  /// Planned tests in execution order.
  std::vector<PlannedTest> tests;
  /// All cells an external tester unloads and compares: group signature
  /// cells plus data-bus write-target cells, in a fixed order.
  std::vector<cpu::Addr> response_cells;
  /// Per response cell: how many tests (prefix of `tests`) have executed
  /// by the time the cell is written.  Lets diagnosis bracket where a
  /// truncated run derailed.
  std::vector<std::size_t> response_watermarks;

  std::size_t program_bytes() const { return image.defined_count(); }
};

struct GenerationResult {
  TestProgram program;
  std::vector<UnplacedTest> unplaced;

  std::size_t placed_count(soc::BusKind bus) const;
  std::size_t unplaced_count(soc::BusKind bus) const;
};

}  // namespace xtest::sbst
