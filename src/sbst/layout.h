// Memory-layout allocator for self-test program construction.
//
// Address-bus tests dictate *where* instructions must live (Section 4.2:
// the instruction providing transition v1 -> v2 must sit at v1-1, or at
// v2-2 for the two-instruction glitch scheme), so building the test program
// is a constrained placement problem over the 4K space.  The allocator
// tracks a use and a value for every byte, supports transactional placement
// (a fragment either fully places or leaves no trace -- a failed fragment
// is exactly the paper's "address conflict" that makes a test unapplicable
// in this session), patchable code bytes for forward JMP chaining, and a
// soft "protected zone" set so relocatable code avoids addresses that
// later fixed fragments will need.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cpu/isa.h"
#include "cpu/memory_image.h"

namespace xtest::sbst {

enum class CellUse : std::uint8_t {
  kFree,
  kCode,      ///< instruction byte, value final
  kPatch,     ///< instruction byte patched later (JMP target bytes)
  kOperand,   ///< data constant read by the program
  kResponse,  ///< written at run time, compared against the gold run
  kForbidden, ///< outside the functionally usable address space
};

class LayoutAllocator {
 public:
  /// Cells at or above `usable_limit` are forbidden (models systems where
  /// part of the address space is not functionally reachable).
  explicit LayoutAllocator(cpu::Addr usable_limit = cpu::kMemWords);

  CellUse use(cpu::Addr a) const { return use_[a & cpu::kAddrMask]; }
  std::uint8_t value(cpu::Addr a) const { return value_[a & cpu::kAddrMask]; }
  bool is_free(cpu::Addr a) const { return use(a) == CellUse::kFree; }

  /// Addresses relocatable code should avoid when possible.
  void add_protected_zone(cpu::Addr first, cpu::Addr last);

  /// Whether `a` lies in a protected zone.
  bool is_protected(cpu::Addr a) const { return in_protected_zone(a); }

  /// First-fit search for `len` consecutive free bytes.  Prefers runs that
  /// do not intersect protected zones; falls back to any free run.  Does
  /// not wrap past 0xFFF.
  std::optional<cpu::Addr> find_free_run(std::size_t len) const;

  /// A free cell whose low byte (page-offset) equals `offset`, i.e. an
  /// address of the form page:offset for some page.  Prefers unprotected.
  std::optional<cpu::Addr> find_free_cell_with_offset(
      std::uint8_t offset) const;

  /// Any free cell (prefers unprotected).
  std::optional<cpu::Addr> find_free_cell() const;

  /// Transactional placement: stage operations, then commit or drop.
  /// Staged cells are visible to further staging within the same
  /// transaction (a fragment may reference its own bytes).
  class Txn {
   public:
    explicit Txn(LayoutAllocator& alloc) : alloc_(alloc) {}

    bool ok() const { return ok_; }

    /// Place a final code byte.
    bool set_code(cpu::Addr a, std::uint8_t v);
    /// Place a code byte whose value is patched later.
    bool set_patch(cpu::Addr a);
    /// Demand that the cell holds `v`: claims a free cell, or accepts an
    /// existing kOperand/kCode cell that already holds exactly `v`.
    bool require_operand(cpu::Addr a, std::uint8_t v);
    /// Demand that the cell's final value differs from `avoid`: claims a
    /// free cell with `preferred` (must differ from `avoid`), or accepts an
    /// occupied non-patch cell whose value differs.  Returns the resulting
    /// value via `out` when non-null.
    bool require_differs(cpu::Addr a, std::uint8_t avoid,
                         std::uint8_t preferred, std::uint8_t* out = nullptr);
    /// Claim a run-time-written response cell.
    bool claim_response(cpu::Addr a);
    /// Claim a response cell, allowing reuse of an existing kOperand cell
    /// whose stored value has already been consumed by earlier-executing
    /// code (the caller guarantees the execution-order argument).
    bool claim_response_overwrite(cpu::Addr a);

    /// Effective use/value seen through this transaction.
    CellUse use(cpu::Addr a) const;
    std::uint8_t value(cpu::Addr a) const;

    void commit();

   private:
    struct Staged {
      CellUse use;
      std::uint8_t value;
    };
    bool stage(cpu::Addr a, CellUse u, std::uint8_t v);

    LayoutAllocator& alloc_;
    std::map<cpu::Addr, Staged> staged_;
    bool ok_ = true;
    bool committed_ = false;
  };

  /// Patch a kPatch cell with its final value (turns it into kCode).
  void patch(cpu::Addr a, std::uint8_t v);

  /// Number of non-free, non-forbidden cells.
  std::size_t used_bytes() const;

  /// The resulting memory image (all non-free cells defined; kPatch cells
  /// must all have been patched).
  cpu::MemoryImage image() const;

 private:
  friend class Txn;

  bool in_protected_zone(cpu::Addr a) const;
  std::optional<cpu::Addr> scan_free_run(std::size_t len,
                                         bool avoid_protected) const;

  std::vector<CellUse> use_;
  std::vector<std::uint8_t> value_;
  std::set<std::pair<cpu::Addr, cpu::Addr>> zones_;
  std::size_t unpatched_ = 0;
};

}  // namespace xtest::sbst
