#include "sbst/slice.h"

namespace xtest::sbst {

soc::RunResult ProgramSlice::run(soc::System& system, std::uint64_t budget) {
  if (!started_) {
    system.load_and_reset(program_->image, program_->entry);
    started_ = true;
  } else {
    system.restore_slice(state_);
  }
  // Cpu::run takes a *cumulative* cap, so "budget more cycles" is the
  // consumed count plus the budget; the instruction in flight at the cap
  // completes, identically on every tier.
  const std::uint64_t consumed = state_.cpu.cycles;
  const soc::RunResult result = system.run(consumed + budget);
  state_ = system.save_slice();
  return result;
}

}  // namespace xtest::sbst
