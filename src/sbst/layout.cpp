#include "sbst/layout.h"

#include <cassert>
#include <stdexcept>

namespace xtest::sbst {

LayoutAllocator::LayoutAllocator(cpu::Addr usable_limit)
    : use_(cpu::kMemWords, CellUse::kFree), value_(cpu::kMemWords, 0) {
  for (std::size_t a = usable_limit; a < cpu::kMemWords; ++a)
    use_[a] = CellUse::kForbidden;
}

void LayoutAllocator::add_protected_zone(cpu::Addr first, cpu::Addr last) {
  zones_.insert({first, last});
}

bool LayoutAllocator::in_protected_zone(cpu::Addr a) const {
  for (const auto& [lo, hi] : zones_)
    if (a >= lo && a <= hi) return true;
  return false;
}

std::optional<cpu::Addr> LayoutAllocator::scan_free_run(
    std::size_t len, bool avoid_protected) const {
  std::size_t run = 0;
  for (std::size_t a = 0; a < cpu::kMemWords; ++a) {
    const bool usable =
        use_[a] == CellUse::kFree &&
        (!avoid_protected || !in_protected_zone(static_cast<cpu::Addr>(a)));
    run = usable ? run + 1 : 0;
    if (run >= len) return static_cast<cpu::Addr>(a + 1 - len);
  }
  return std::nullopt;
}

std::optional<cpu::Addr> LayoutAllocator::find_free_run(
    std::size_t len) const {
  if (auto a = scan_free_run(len, /*avoid_protected=*/true)) return a;
  return scan_free_run(len, /*avoid_protected=*/false);
}

std::optional<cpu::Addr> LayoutAllocator::find_free_cell_with_offset(
    std::uint8_t offset) const {
  for (int pass = 0; pass < 2; ++pass) {
    for (unsigned page = 0; page < 16; ++page) {
      const cpu::Addr a =
          cpu::make_addr(static_cast<std::uint8_t>(page), offset);
      if (use_[a] != CellUse::kFree) continue;
      if (pass == 0 && in_protected_zone(a)) continue;
      return a;
    }
  }
  return std::nullopt;
}

std::optional<cpu::Addr> LayoutAllocator::find_free_cell() const {
  return find_free_run(1);
}

bool LayoutAllocator::Txn::stage(cpu::Addr a, CellUse u, std::uint8_t v) {
  a = cpu::wrap(a);
  staged_[a] = {u, v};
  return true;
}

CellUse LayoutAllocator::Txn::use(cpu::Addr a) const {
  a = cpu::wrap(a);
  auto it = staged_.find(a);
  return it != staged_.end() ? it->second.use : alloc_.use(a);
}

std::uint8_t LayoutAllocator::Txn::value(cpu::Addr a) const {
  a = cpu::wrap(a);
  auto it = staged_.find(a);
  return it != staged_.end() ? it->second.value : alloc_.value(a);
}

bool LayoutAllocator::Txn::set_code(cpu::Addr a, std::uint8_t v) {
  if (use(a) != CellUse::kFree) return ok_ = false;
  return stage(a, CellUse::kCode, v);
}

bool LayoutAllocator::Txn::set_patch(cpu::Addr a) {
  if (use(a) != CellUse::kFree) return ok_ = false;
  return stage(a, CellUse::kPatch, 0);
}

bool LayoutAllocator::Txn::require_operand(cpu::Addr a, std::uint8_t v) {
  switch (use(a)) {
    case CellUse::kFree:
      return stage(a, CellUse::kOperand, v);
    case CellUse::kOperand:
    case CellUse::kCode:
      if (value(a) == v) return true;
      return ok_ = false;
    default:
      return ok_ = false;
  }
}

bool LayoutAllocator::Txn::require_differs(cpu::Addr a, std::uint8_t avoid,
                                           std::uint8_t preferred,
                                           std::uint8_t* out) {
  switch (use(a)) {
    case CellUse::kFree:
      assert(preferred != avoid);
      if (out != nullptr) *out = preferred;
      return stage(a, CellUse::kOperand, preferred);
    case CellUse::kOperand:
    case CellUse::kCode:
      if (value(a) != avoid) {
        if (out != nullptr) *out = value(a);
        return true;
      }
      return ok_ = false;
    default:
      // kPatch: value unknown at this point; kResponse: run-time value
      // unknown; kForbidden: unusable.  All conservative failures.
      return ok_ = false;
  }
}

bool LayoutAllocator::Txn::claim_response(cpu::Addr a) {
  if (use(a) != CellUse::kFree) return ok_ = false;
  return stage(a, CellUse::kResponse, 0);
}

bool LayoutAllocator::Txn::claim_response_overwrite(cpu::Addr a) {
  const CellUse u = use(a);
  if (u != CellUse::kFree && u != CellUse::kOperand) return ok_ = false;
  // Keep the current value: an operand constant is still loaded with the
  // image and consumed by earlier-executing code; only the run-time store
  // turns the cell into a response.
  return stage(a, CellUse::kResponse, value(a));
}

void LayoutAllocator::Txn::commit() {
  assert(ok_ && !committed_);
  committed_ = true;
  for (const auto& [a, cell] : staged_) {
    // Cells accepted as "already holds the right value" are not staged;
    // everything staged is a claim (possibly an operand->response
    // overwrite from claim_response_overwrite).
    if (cell.use == CellUse::kPatch) ++alloc_.unpatched_;
    alloc_.use_[a] = cell.use;
    alloc_.value_[a] = cell.value;
  }
}

void LayoutAllocator::patch(cpu::Addr a, std::uint8_t v) {
  a = cpu::wrap(a);
  if (use_[a] != CellUse::kPatch)
    throw std::logic_error("patch() on a non-patch cell");
  use_[a] = CellUse::kCode;
  value_[a] = v;
  --unpatched_;
}

std::size_t LayoutAllocator::used_bytes() const {
  std::size_t n = 0;
  for (CellUse u : use_)
    if (u != CellUse::kFree && u != CellUse::kForbidden) ++n;
  return n;
}

cpu::MemoryImage LayoutAllocator::image() const {
  if (unpatched_ != 0)
    throw std::logic_error("image() with unpatched JMP bytes");
  cpu::MemoryImage img;
  for (std::size_t a = 0; a < cpu::kMemWords; ++a)
    if (use_[a] != CellUse::kFree && use_[a] != CellUse::kForbidden)
      img.set(static_cast<cpu::Addr>(a), value_[a]);
  return img;
}

}  // namespace xtest::sbst
