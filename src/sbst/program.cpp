#include "sbst/program.h"

namespace xtest::sbst {

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kAddrDelay: return "addr-delay";
    case Scheme::kAddrGlitch: return "addr-glitch";
    case Scheme::kAddrDelayJmp: return "addr-delay-jmp";
    case Scheme::kAddrGlitchJmp: return "addr-glitch-jmp";
    case Scheme::kDataRead: return "data-read";
    case Scheme::kDataWrite: return "data-write";
  }
  return "?";
}

}  // namespace xtest::sbst
