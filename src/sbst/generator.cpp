#include "sbst/generator.h"

#include <algorithm>
#include <cassert>

#include "cpu/isa.h"
#include "sbst/layout.h"

namespace xtest::sbst {

namespace {

using cpu::Addr;
using cpu::make_addr;
using cpu::offset_of;
using cpu::page_of;
using cpu::wrap;
using xtalk::BusDirection;
using xtalk::MafFault;
using xtalk::VectorPair;

std::uint8_t memref_b1(cpu::Opcode op, std::uint8_t page) {
  return static_cast<std::uint8_t>((static_cast<unsigned>(op) << 4) |
                                   (page & 0xF));
}

/// A byte value different from every entry of `avoid`.
std::uint8_t pick_differing(std::initializer_list<std::uint8_t> avoid) {
  for (unsigned v = 0; v < 256; ++v) {
    bool ok = true;
    for (std::uint8_t a : avoid) ok = ok && (v != a);
    if (ok) return static_cast<std::uint8_t>(v);
  }
  return 0;  // unreachable: |avoid| < 256
}

class Builder {
 public:
  explicit Builder(const GeneratorConfig& config)
      : config_(config), alloc_(config.usable_limit) {}

  GenerationResult build() {
    collect_faults();
    add_protected_zones();
    place_entry();
    for (const MafFault& f : addr_faults_) place_address_test(f);
    for (const MafFault& f : data_read_faults_) place_data_read_test(f);
    close_group();
    for (const MafFault& f : data_write_faults_) place_data_write_test(f);
    finish();
    return std::move(result_);
  }

 private:
  static constexpr Addr kNoJmp = 0xFFFF;

  struct Piece {
    Addr start;
    Addr jmp_b1;  // address of the JMP's first byte, kNoJmp if none
  };

  // ---- fault selection ---------------------------------------------------

  static void apply_order(std::vector<MafFault>& faults,
                          PlacementOrder order) {
    switch (order) {
      case PlacementOrder::kVictimMajor:
        break;
      case PlacementOrder::kDelaysFirst:
        std::stable_sort(faults.begin(), faults.end(),
                         [](const MafFault& a, const MafFault& b) {
                           return xtalk::is_glitch(a.type) <
                                  xtalk::is_glitch(b.type);
                         });
        break;
      case PlacementOrder::kGlitchesFirst:
        std::stable_sort(faults.begin(), faults.end(),
                         [](const MafFault& a, const MafFault& b) {
                           return xtalk::is_glitch(a.type) >
                                  xtalk::is_glitch(b.type);
                         });
        break;
      case PlacementOrder::kCenterOut: {
        const auto dist = [](const MafFault& f) {
          const int c = cpu::kAddrBits / 2;
          const int d = static_cast<int>(f.victim) - c;
          return d < 0 ? -d : d;
        };
        std::stable_sort(faults.begin(), faults.end(),
                         [&](const MafFault& a, const MafFault& b) {
                           return dist(a) < dist(b);
                         });
        break;
      }
    }
  }

  void collect_faults() {
    if (config_.include_address_bus) {
      addr_faults_ = config_.address_faults.value_or(
          xtalk::enumerate_mafs(cpu::kAddrBits, /*bidirectional=*/false));
      apply_order(addr_faults_, config_.order);
    }
    if (config_.include_data_bus) {
      std::vector<MafFault> data = config_.data_faults.value_or(
          xtalk::enumerate_mafs(cpu::kDataBits, config_.data_both_directions));
      if (!config_.data_faults && !config_.data_both_directions) {
        // The default single-direction selection is the read direction
        // (the paper's primary data-bus construction, Section 4.1).
        for (MafFault& f : data) f.direction = BusDirection::kCoreToCpu;
      }
      for (const MafFault& f : data) {
        // core->cpu pairs ride a read; cpu->core pairs ride a write.
        if (f.direction == BusDirection::kCoreToCpu)
          data_read_faults_.push_back(f);
        else
          data_write_faults_.push_back(f);
      }
    }
  }

  void add_protected_zones() {
    for (const MafFault& f : addr_faults_) {
      const VectorPair pair = xtalk::ma_test(cpu::kAddrBits, f);
      const Addr v1 = static_cast<Addr>(pair.v1.bits());
      const Addr v2 = static_cast<Addr>(pair.v2.bits());
      const Addr v2p =
          static_cast<Addr>(xtalk::faulty_v2(f, pair).bits());
      if (xtalk::is_glitch(f.type)) {
        alloc_.add_protected_zone(wrap(v2 - 2u), wrap(v2 + 3u));
        alloc_.add_protected_zone(v1, v1);
      } else {
        alloc_.add_protected_zone(wrap(v1 - 1u), wrap(v1 + 2u));
        alloc_.add_protected_zone(v2, v2);
      }
      alloc_.add_protected_zone(v2p, v2p);
    }
  }

  // ---- piece / chain management -------------------------------------------

  /// Places floating code `bytes` followed by a patchable JMP.
  bool place_floating(const std::vector<std::uint8_t>& bytes, bool with_jmp) {
    const std::size_t len = bytes.size() + (with_jmp ? 2 : 0);
    const auto start = alloc_.find_free_run(len);
    if (!start) return false;
    LayoutAllocator::Txn txn(alloc_);
    Addr a = *start;
    for (std::uint8_t b : bytes) txn.set_code(a++, b);
    Addr jmp = kNoJmp;
    if (with_jmp) {
      jmp = a;
      txn.set_patch(a);
      txn.set_patch(wrap(a + 1u));
    }
    if (!txn.ok()) return false;
    txn.commit();
    pieces_.push_back({*start, jmp});
    return true;
  }

  void place_entry() {
    const bool ok =
        place_floating({cpu::encode_single(cpu::SingleOp::kCla)}, true);
    assert(ok && "empty 4K cannot fail to host the entry piece");
    (void)ok;
  }

  void finish() {
    const bool ok = place_floating({cpu::encode_single(cpu::SingleOp::kHlt)},
                                   false);
    assert(ok && "no room left for HLT");
    (void)ok;
    // Patch the JMP chain: every piece jumps to the next one.
    for (std::size_t i = 0; i + 1 < pieces_.size(); ++i) {
      if (pieces_[i].jmp_b1 == kNoJmp) continue;
      const Addr target = pieces_[i + 1].start;
      alloc_.patch(pieces_[i].jmp_b1,
                   memref_b1(cpu::Opcode::kJmp, page_of(target)));
      alloc_.patch(wrap(pieces_[i].jmp_b1 + 1u), offset_of(target));
    }
    result_.program.image = alloc_.image();
    result_.program.entry = pieces_.front().start;
  }

  // ---- response groups -----------------------------------------------------

  bool open_group() {
    const auto cell = alloc_.find_free_cell();
    if (!cell) return false;
    LayoutAllocator::Txn txn(alloc_);
    txn.claim_response(*cell);
    if (!txn.ok()) return false;
    txn.commit();
    group_id_ = next_group_++;
    group_resp_ = *cell;
    group_fill_ = 0;
    group_resp_index_ = result_.program.response_cells.size();
    result_.program.response_cells.push_back(*cell);
    result_.program.response_watermarks.push_back(0);  // set at close
    return true;
  }

  bool group_open() const { return group_id_ >= 0; }

  /// Stores the group signature and re-clears the accumulator.
  void close_group() {
    if (!group_open()) return;
    const bool ok = place_floating(
        {memref_b1(cpu::Opcode::kSta, page_of(group_resp_)),
         offset_of(group_resp_), cpu::encode_single(cpu::SingleOp::kCla)},
        true);
    assert(ok && "glue placement failed: memory exhausted");
    (void)ok;
    result_.program.response_watermarks[group_resp_index_] =
        result_.program.tests.size();
    group_id_ = -1;
  }

  /// Ensures an open group with room; returns the one-hot pass value slot.
  /// `force_initial` demands a fresh group (glitch fragments rely on
  /// ACC == 0 when their first instruction executes).
  std::optional<std::uint8_t> group_slot(bool force_initial) {
    if (group_open() &&
        (force_initial || group_fill_ >= static_cast<int>(config_.group_size)))
      close_group();
    if (!group_open() && !open_group()) return std::nullopt;
    return static_cast<std::uint8_t>(1u << group_fill_);
  }

  void record_test(soc::BusKind bus, const MafFault& f, const VectorPair& p,
                   Scheme scheme, std::uint8_t pass, Addr response_cell) {
    result_.program.tests.push_back(
        {bus, f, p, scheme, group_id_, response_cell, pass});
  }

  void record_unplaced(soc::BusKind bus, const MafFault& f,
                       std::string reason) {
    result_.unplaced.push_back({bus, f, std::move(reason)});
  }

  // ---- txn-aware free-cell searches ---------------------------------------

  /// Free-cell searches are transaction-aware and take an explicit
  /// exclusion range for fragment bytes that are known but not yet staged.
  static bool in_range(Addr a, Addr ex_start, std::size_t ex_len) {
    for (std::size_t k = 0; k < ex_len; ++k)
      if (a == wrap(ex_start + static_cast<unsigned>(k))) return true;
    return false;
  }

  std::optional<Addr> free_cell_with_offset(const LayoutAllocator::Txn& txn,
                                            std::uint8_t offset,
                                            Addr ex_start = 0,
                                            std::size_t ex_len = 0) const {
    for (int pass = 0; pass < 2; ++pass) {
      for (unsigned page = 0; page < 16; ++page) {
        const Addr a = make_addr(static_cast<std::uint8_t>(page), offset);
        if (txn.use(a) != CellUse::kFree) continue;
        if (in_range(a, ex_start, ex_len)) continue;
        if (pass == 0 && alloc_.is_protected(a)) continue;
        return a;
      }
    }
    return std::nullopt;
  }

  std::optional<Addr> free_cell(const LayoutAllocator::Txn& txn,
                                Addr ex_start = 0,
                                std::size_t ex_len = 0) const {
    for (int pass = 0; pass < 2; ++pass) {
      for (unsigned a = 0; a < cpu::kMemWords; ++a) {
        if (txn.use(static_cast<Addr>(a)) != CellUse::kFree) continue;
        if (in_range(static_cast<Addr>(a), ex_start, ex_len)) continue;
        if (pass == 0 && alloc_.is_protected(static_cast<Addr>(a))) continue;
        return static_cast<Addr>(a);
      }
    }
    return std::nullopt;
  }

  // ---- address-bus fragments ----------------------------------------------

  void place_address_test(const MafFault& f) {
    if (xtalk::is_glitch(f.type))
      place_addr_glitch(f);
    else
      place_addr_delay(f);
  }

  /// Distinguishing requirement shared by the compact JMP schemes: the
  /// byte the memory returns for the corrupted address v2' must differ
  /// from the patched JMP's first byte at v2.  A JMP first byte is always
  /// 0x7p, so any value with a different high nibble is safe; a fresh cell
  /// is claimed with 0xFF (illegal opcode -> the faulty run halts).
  bool require_divergent_fetch(LayoutAllocator::Txn& txn, Addr v2p) {
    switch (txn.use(v2p)) {
      case CellUse::kFree:
        return txn.require_operand(v2p, 0xFF);
      case CellUse::kCode:
      case CellUse::kOperand:
        return (txn.value(v2p) >> 4) !=
               static_cast<unsigned>(cpu::Opcode::kJmp);
      default:
        return false;
    }
  }

  /// One-instruction scheme (Sec. 4.2.1): ADD at v1-1 accessing v2; the
  /// transition fetch2(v1) -> operand(v2) is the MA pair.  Falls back to
  /// the compact scheme where the chaining JMP at v1-1 *is* the accessing
  /// instruction (fetch2(v1) -> target fetch(v2)) and only a 2-byte landing
  /// pad at v2 is needed -- essential for the densely clustered one-hot /
  /// inverted-one-hot placements near the ends of the address space.
  void place_addr_delay(const MafFault& f) {
    const VectorPair pair = xtalk::ma_test(cpu::kAddrBits, f);
    const Addr v1 = static_cast<Addr>(pair.v1.bits());
    const Addr v2 = static_cast<Addr>(pair.v2.bits());
    const Addr v2p = static_cast<Addr>(xtalk::faulty_v2(f, pair).bits());

    // --- primary: ADD scheme with accumulated one-hot response ---
    {
      const auto slot = group_slot(/*force_initial=*/false);
      if (!slot) {
        record_unplaced(soc::BusKind::kAddress, f,
                        "no room for response cell");
        return;
      }
      LayoutAllocator::Txn txn(alloc_);
      const Addr at = wrap(v1 - 1u);
      txn.set_code(at, memref_b1(cpu::Opcode::kAdd, page_of(v2)));
      txn.set_code(v1, offset_of(v2));
      const Addr jmp = wrap(v1 + 1u);
      txn.set_patch(jmp);
      txn.set_patch(wrap(jmp + 1u));
      // Pass cell: a fresh cell gets the one-hot slot value; an existing
      // constant is accepted as-is (the gold run defines the signature).
      std::uint8_t pass = *slot;
      if (txn.use(v2) == CellUse::kFree) {
        txn.require_operand(v2, pass);
      } else if (txn.use(v2) == CellUse::kOperand ||
                 txn.use(v2) == CellUse::kCode) {
        pass = txn.value(v2);
      } else {
        txn.require_operand(v2, pass);  // fails: patch/response/forbidden
      }
      // Fail cell: the operand a delayed access reads must differ.
      txn.require_differs(v2p, pass, pick_differing({pass}));
      if (txn.ok()) {
        txn.commit();
        pieces_.push_back({at, jmp});
        ++group_fill_;
        record_test(soc::BusKind::kAddress, f, pair, Scheme::kAddrDelay, pass,
                    group_resp_);
        return;
      }
    }

    // --- fallback 1: the chain JMP is the test instruction ---
    {
      LayoutAllocator::Txn txn(alloc_);
      const Addr at = wrap(v1 - 1u);
      txn.set_code(at, memref_b1(cpu::Opcode::kJmp, page_of(v2)));
      txn.set_code(v1, offset_of(v2));
      // Landing pad: the patched JMP to the next piece lives at v2.
      txn.set_patch(v2);
      txn.set_patch(wrap(v2 + 1u));
      if (require_divergent_fetch(txn, v2p) && txn.ok()) {
        txn.commit();
        pieces_.push_back({at, v2});
        record_test(soc::BusKind::kAddress, f, pair, Scheme::kAddrDelayJmp, 0,
                    0);
        return;
      }
    }

    // --- fallback 2: two-instruction realisation in the other region ---
    // (like the glitch scheme: AND v1 at v2-2, landing pad at v2; the
    // operand access v1 -> fetch v2 is the same MA transition.  The AND
    // garbles the accumulator, so the open group is flushed first.)
    {
      close_group();
      LayoutAllocator::Txn txn(alloc_);
      const Addr i1 = wrap(v2 - 2u);
      txn.set_code(i1, memref_b1(cpu::Opcode::kAnd, page_of(v1)));
      txn.set_code(wrap(v2 - 1u), offset_of(v1));
      if (txn.use(v1) == CellUse::kFree) txn.require_operand(v1, 0);
      txn.set_patch(v2);
      txn.set_patch(wrap(v2 + 1u));
      if (!require_divergent_fetch(txn, v2p) || !txn.ok()) {
        record_unplaced(soc::BusKind::kAddress, f, "address conflict");
        return;
      }
      txn.commit();
      pieces_.push_back({i1, v2});
      record_test(soc::BusKind::kAddress, f, pair, Scheme::kAddrDelayJmp, 0,
                  0);
    }
  }

  /// Two-instruction scheme: instruction 1 at v2-2 accesses v1 (AND keeps
  /// ACC = 0), instruction 2 at v2; the inter-instruction transition
  /// operand(v1) -> fetch1(v2) is the MA pair.  A glitched fetch reads the
  /// byte at v2' instead of instruction 2's first byte.
  void place_addr_glitch(const MafFault& f) {
    const VectorPair pair = xtalk::ma_test(cpu::kAddrBits, f);
    const Addr v1 = static_cast<Addr>(pair.v1.bits());
    const Addr v2 = static_cast<Addr>(pair.v2.bits());
    const Addr v2p = static_cast<Addr>(xtalk::faulty_v2(f, pair).bits());

    // --- primary: AND + ADD scheme with accumulated response ---
    {
      const auto slot = group_slot(/*force_initial=*/true);
      if (!slot) {
        record_unplaced(soc::BusKind::kAddress, f,
                        "no room for response cell");
        return;
      }
      const std::uint8_t pass = *slot;

      LayoutAllocator::Txn txn(alloc_);
      // Instruction 1: AND v1 (ACC is 0 at group start, so any operand
      // value keeps it 0).
      const Addr i1 = wrap(v2 - 2u);
      txn.set_code(i1, memref_b1(cpu::Opcode::kAnd, page_of(v1)));
      txn.set_code(wrap(v2 - 1u), offset_of(v1));
      // v1's cell only needs to be readable; claim it when free so later
      // placements cannot turn it into something unexpected.
      if (txn.use(v1) == CellUse::kFree) txn.require_operand(v1, 0);
      // Instruction 2: ADD p:F with a fresh operand cell holding the pass
      // value.  Exclude instruction 2's own four bytes, not yet staged.
      const auto opcell = free_cell(txn, v2, 4);
      if (!opcell) {
        record_unplaced(soc::BusKind::kAddress, f, "memory exhausted");
        return;
      }
      txn.set_code(v2, memref_b1(cpu::Opcode::kAdd, page_of(*opcell)));
      txn.set_code(wrap(v2 + 1u), offset_of(*opcell));
      txn.require_operand(*opcell, pass);
      const Addr jmp = wrap(v2 + 2u);
      txn.set_patch(jmp);
      txn.set_patch(wrap(jmp + 1u));

      // Distinguishing requirements on the corrupted fetch target.
      const std::uint8_t b_v2 = memref_b1(cpu::Opcode::kAdd, page_of(*opcell));
      std::uint8_t b_v2p = 0;
      // Prefer an illegal opcode in a fresh cell: guaranteed divergence.
      txn.require_differs(v2p, b_v2, 0xFF, &b_v2p);
      if (txn.ok()) {
        const cpu::Decoded dec = cpu::decode(b_v2p);
        if (dec.kind == cpu::Decoded::Kind::kMemRef &&
            dec.opcode != cpu::Opcode::kSta &&
            dec.opcode != cpu::Opcode::kJmp &&
            dec.opcode != cpu::Opcode::kJsr &&
            dec.opcode != cpu::Opcode::kJmi) {
          // The corrupted instruction becomes <op> q:F; its result must not
          // coincide with the pass accumulator value (pass, since the group
          // just opened with ACC = 0).
          const Addr divergent = make_addr(dec.page, offset_of(*opcell));
          const std::uint8_t neg = static_cast<std::uint8_t>(256u - pass);
          txn.require_differs(divergent, pass, pick_differing({pass, neg}));
          txn.require_differs(divergent, neg, pick_differing({pass, neg}));
        }
      }
      if (txn.ok()) {
        txn.commit();
        pieces_.push_back({i1, jmp});
        ++group_fill_;
        record_test(soc::BusKind::kAddress, f, pair, Scheme::kAddrGlitch,
                    pass, group_resp_);
        return;
      }
    }

    // --- fallback: AND v1, then the landing-pad JMP at v2 is fetched ---
    // (instruction 1's operand access v1 -> instruction 2's fetch v2 is
    // still the MA transition; detection is by control divergence.)
    {
      LayoutAllocator::Txn txn(alloc_);
      const Addr i1 = wrap(v2 - 2u);
      txn.set_code(i1, memref_b1(cpu::Opcode::kAnd, page_of(v1)));
      txn.set_code(wrap(v2 - 1u), offset_of(v1));
      if (txn.use(v1) == CellUse::kFree) txn.require_operand(v1, 0);
      txn.set_patch(v2);
      txn.set_patch(wrap(v2 + 1u));
      if (!require_divergent_fetch(txn, v2p) || !txn.ok()) {
        record_unplaced(soc::BusKind::kAddress, f, "address conflict");
        return;
      }
      txn.commit();
      pieces_.push_back({i1, v2});
      record_test(soc::BusKind::kAddress, f, pair, Scheme::kAddrGlitchJmp, 0,
                  0);
    }
  }

  // ---- data-bus fragments ---------------------------------------------------

  /// ADD p:v1 reading an operand cell that contains v2 (Fig. 4/8).
  void place_data_read_test(const MafFault& f) {
    const VectorPair pair = xtalk::ma_test(cpu::kDataBits, f);
    const std::uint8_t v1 = static_cast<std::uint8_t>(pair.v1.bits());
    const std::uint8_t v2 = static_cast<std::uint8_t>(pair.v2.bits());

    const auto slot = group_slot(/*force_initial=*/false);
    if (!slot) {
      record_unplaced(soc::BusKind::kData, f, "no room for response cell");
      return;
    }
    (void)*slot;  // data reads contribute v2 itself, as in the paper

    const auto run = alloc_.find_free_run(4);
    if (!run) {
      record_unplaced(soc::BusKind::kData, f, "memory exhausted");
      return;
    }
    LayoutAllocator::Txn txn(alloc_);
    const auto opcell = free_cell_with_offset(txn, v1, *run, 4);
    if (!opcell) {
      record_unplaced(soc::BusKind::kData, f, "no cell with required offset");
      return;
    }
    txn.set_code(*run, memref_b1(cpu::Opcode::kAdd, page_of(*opcell)));
    txn.set_code(wrap(*run + 1u), v1);
    const Addr jmp = wrap(*run + 2u);
    txn.set_patch(jmp);
    txn.set_patch(wrap(jmp + 1u));
    txn.require_operand(*opcell, v2);
    if (!txn.ok()) {
      record_unplaced(soc::BusKind::kData, f, "placement conflict");
      return;
    }
    txn.commit();
    if (alloc_.use(*opcell) == CellUse::kOperand)
      read_opcells_.push_back(*opcell);
    pieces_.push_back({*run, jmp});
    ++group_fill_;
    record_test(soc::BusKind::kData, f, pair, Scheme::kDataRead, v2,
                group_resp_);
  }

  /// LDA v2-cell; STA q:v1 drives ACC = v2 onto the data bus towards the
  /// memory; the written target cell is the response (Section 3.1).
  void place_data_write_test(const MafFault& f) {
    const VectorPair pair = xtalk::ma_test(cpu::kDataBits, f);
    const std::uint8_t v1 = static_cast<std::uint8_t>(pair.v1.bits());
    const std::uint8_t v2 = static_cast<std::uint8_t>(pair.v2.bits());

    const auto run = alloc_.find_free_run(6);
    if (!run) {
      record_unplaced(soc::BusKind::kData, f, "memory exhausted");
      return;
    }
    LayoutAllocator::Txn txn(alloc_);
    const auto src = free_cell(txn, *run, 6);
    if (!src) {
      record_unplaced(soc::BusKind::kData, f, "memory exhausted");
      return;
    }
    txn.require_operand(*src, v2);
    // Target cell (q, v1): a fresh cell, or -- since write tests execute
    // last -- a data-read operand cell whose value has already been
    // consumed and may safely be overwritten.
    auto tgt = free_cell_with_offset(txn, v1, *run, 6);
    if (!tgt) {
      for (Addr cand : read_opcells_) {
        if (offset_of(cand) == v1 && txn.use(cand) == CellUse::kOperand &&
            cand != *src) {
          tgt = cand;
          break;
        }
      }
    }
    if (!tgt) {
      record_unplaced(soc::BusKind::kData, f, "no cell with required offset");
      return;
    }
    txn.claim_response_overwrite(*tgt);
    txn.set_code(*run, memref_b1(cpu::Opcode::kLda, page_of(*src)));
    txn.set_code(wrap(*run + 1u), offset_of(*src));
    txn.set_code(wrap(*run + 2u), memref_b1(cpu::Opcode::kSta, page_of(*tgt)));
    txn.set_code(wrap(*run + 3u), v1);
    const Addr jmp = wrap(*run + 4u);
    txn.set_patch(jmp);
    txn.set_patch(wrap(jmp + 1u));
    if (!txn.ok()) {
      record_unplaced(soc::BusKind::kData, f, "placement conflict");
      return;
    }
    txn.commit();
    pieces_.push_back({*run, jmp});
    result_.program.tests.push_back({soc::BusKind::kData, f, pair,
                                     Scheme::kDataWrite, -1, *tgt, v2});
    result_.program.response_cells.push_back(*tgt);
    result_.program.response_watermarks.push_back(
        result_.program.tests.size());
  }

  const GeneratorConfig& config_;
  LayoutAllocator alloc_;
  std::vector<Piece> pieces_;
  GenerationResult result_;

  std::vector<MafFault> addr_faults_;
  std::vector<MafFault> data_read_faults_;
  std::vector<MafFault> data_write_faults_;
  /// Operand cells claimed by data-read tests; their values are consumed
  /// before the write phase and may be overwritten as write targets.
  std::vector<Addr> read_opcells_;

  int next_group_ = 0;
  int group_id_ = -1;
  int group_fill_ = 0;
  Addr group_resp_ = 0;
  std::size_t group_resp_index_ = 0;
};

}  // namespace

std::size_t GenerationResult::placed_count(soc::BusKind bus) const {
  std::size_t n = 0;
  for (const auto& t : program.tests)
    if (t.bus == bus) ++n;
  return n;
}

std::size_t GenerationResult::unplaced_count(soc::BusKind bus) const {
  std::size_t n = 0;
  for (const auto& t : unplaced)
    if (t.bus == bus) ++n;
  return n;
}

GenerationResult TestProgramGenerator::generate() const {
  Builder builder(config_);
  return builder.build();
}

std::vector<GenerationResult> TestProgramGenerator::generate_sessions(
    GeneratorConfig config, int max_sessions) {
  std::vector<GenerationResult> sessions;
  for (int s = 0; s < max_sessions; ++s) {
    TestProgramGenerator gen(config);
    GenerationResult res = gen.generate();
    const std::size_t unplaced = res.unplaced.size();
    const bool progress = !res.program.tests.empty();
    sessions.push_back(std::move(res));
    if (unplaced == 0 || !progress) break;
    // Retry only what is still missing.
    std::vector<xtalk::MafFault> addr, data;
    for (const UnplacedTest& u : sessions.back().unplaced) {
      (u.bus == soc::BusKind::kAddress ? addr : data).push_back(u.fault);
    }
    config.address_faults = std::move(addr);
    config.data_faults = std::move(data);
    config.include_address_bus = !config.address_faults->empty();
    config.include_data_bus = !config.data_faults->empty();
  }
  return sessions;
}

}  // namespace xtest::sbst
