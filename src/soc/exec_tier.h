// Per-system state for the JIT execution tier (see soc/exec_tier.cpp).
//
// Owned by System behind a unique_ptr and allocated lazily on the first
// jit-tier run: the code buffer, the block index for the program the
// buffer currently holds, and a sticky latch that degrades the system to
// the decoded interpreter once the JIT backend proves unavailable
// (unsupported platform, mmap/mprotect failure, injected fault).

#pragma once

#include <cstddef>
#include <unordered_map>

#include "cpu/isa.h"
#include "cpu/jit_buffer.h"

namespace xtest::cpu {
class MicroProgram;
}

namespace xtest::soc {

struct ExecTierJit {
  cpu::JitBuffer buffer;
  /// Program the block index was compiled against; a different program
  /// resets the buffer (blocks bake absolute micro-op addresses).
  const cpu::MicroProgram* compiled_for = nullptr;
  /// Block entry address -> buffer offset.
  std::unordered_map<cpu::Addr, std::size_t> blocks;
  bool unavailable = false;
};

}  // namespace xtest::soc
