// 4K byte-wide instruction/data memory core.

#pragma once

#include <array>

#include "cpu/isa.h"
#include "cpu/memory_image.h"

namespace xtest::soc {

class Memory {
 public:
  Memory() { data_.fill(0); }

  std::uint8_t read(cpu::Addr a) const { return data_[a & cpu::kAddrMask]; }
  void write(cpu::Addr a, std::uint8_t v) { data_[a & cpu::kAddrMask] = v; }

  /// Loads an image the way an external tester would: the full 4K space,
  /// undefined bytes cleared to zero.
  void load(const cpu::MemoryImage& image) { data_ = image.raw(); }

  void clear() { data_.fill(0); }

  const std::array<std::uint8_t, cpu::kMemWords>& raw() const { return data_; }

  /// Reinstates a previously captured raw array (slice restore).
  void restore_raw(const std::array<std::uint8_t, cpu::kMemWords>& raw) {
    data_ = raw;
  }

 private:
  std::array<std::uint8_t, cpu::kMemWords> data_;
};

}  // namespace xtest::soc
