#include "soc/trace.h"

#include <cstdio>
#include <sstream>

namespace xtest::soc {

std::string BusEvent::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "cycle %5llu  %-4s %-9s drive=%s recv=%s%s",
                static_cast<unsigned long long>(cycle),
                soc::to_string(bus).c_str(),
                xtalk::to_string(direction).c_str(),
                driven.to_binary().c_str(), received.to_binary().c_str(),
                corrupted ? "  <corrupt>" : "");
  return buf;
}

std::vector<BusEvent> BusTrace::on_bus(BusKind k) const {
  std::vector<BusEvent> out;
  for (const auto& e : events_)
    if (e.bus == k) out.push_back(e);
  return out;
}

std::string BusTrace::render() const {
  std::ostringstream os;
  for (const auto& e : events_) os << e.to_string() << '\n';
  return os.str();
}

}  // namespace xtest::soc
