#include "soc/online.h"

#include "cpu/assembler.h"

namespace xtest::soc {

OnlineWorkload make_default_workload() {
  // Endless service loop: strobe the heartbeat register with a running
  // counter and touch a small scratch area, so every iteration drives
  // address- and data-bus transitions the way real functional traffic
  // does.  It never halts; functional windows are always budget-bounded.
  static const char kSource[] =
      "start:  cla\n"
      "loop:   inc\n"
      "        sta 0xff0\n"      // heartbeat -> DeadlineDevice
      "        sta 0x381\n"      // scratch store
      "        add 0x382\n"      // scratch load
      "        lda 0x383\n"
      "        lda 0x380\n"
      "        add 0x381\n"
      "        jmp loop\n"
      "        .org 0x380\n"
      "scratch: .byte 0x55, 0x00, 0x0f, 0xa5\n";
  const cpu::AsmResult assembled = cpu::assemble(kSource);
  OnlineWorkload workload;
  workload.image = assembled.image;
  workload.entry = assembled.entry;
  workload.mmio_base = 0xFF0;
  return workload;
}

void InterleavedScheduler::run_functional_window() {
  system_.clear_mmio();
  system_.attach_mmio(workload_->mmio_base, 1, &device_);
  std::uint64_t start_cycles = 0;
  if (!functional_started_) {
    system_.load_and_reset(workload_->image, workload_->entry);
    functional_started_ = true;
  } else {
    system_.restore_slice(functional_state_);
    start_cycles = functional_state_.cpu.cycles;
  }
  // Heartbeat timestamps live on the global clock: the workload context's
  // own cycle counter keeps running across windows, so the device offset
  // is the global time at which this window's counter origin sits.
  device_.begin_window(&system_.processor(), global_cycles_ - start_cycles);
  const RunResult result = system_.run(start_cycles + config_.workload_cycles);
  functional_state_ = system_.save_slice();
  global_cycles_ += result.cycles - start_cycles;
  system_.clear_mmio();
}

}  // namespace xtest::soc
