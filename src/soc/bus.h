// Tri-state system bus with hold-last-value semantics.
//
// The paper's testbed (Section 4.1): "access to busses is controlled by
// tri-state buffers.  When all tri-state buffers are disabled, the signal
// on the bus becomes high impedance ('z').  When 'z' appears, we assume the
// bus holds the last defined value before 'z'."  A TristateBus therefore
// remembers the last driven word; each new transfer forms the transition
// (held, driven), which is what excites crosstalk, and the receiver samples
// the word the error model produces.

#pragma once

#include <optional>

#include "util/bitvec.h"
#include "xtalk/error_model.h"
#include "xtalk/fast_model.h"
#include "xtalk/maf.h"
#include "xtalk/rc_network.h"

namespace xtest::soc {

enum class BusKind : std::uint8_t { kAddress, kData, kControl };

std::string to_string(BusKind k);

class TristateBus {
 public:
  /// A bus powers up holding all zeros (the reset value of its drivers).
  TristateBus(BusKind kind, unsigned width)
      : kind_(kind), width_(width), held_(util::BusWord::zeros(width)) {}

  BusKind kind() const { return kind_; }
  unsigned width() const { return width_; }

  /// Word currently held on the wires.
  util::BusWord held() const { return held_; }

  /// Drives `word` onto the bus and returns what the receiver samples.
  /// `net`/`model` may be null to bypass crosstalk evaluation (ideal bus).
  /// After the transfer the bus holds the *driven* word: the wires settle
  /// to their final values once the glitch/delay transient has passed.
  util::BusWord transfer(util::BusWord word, const xtalk::RcNetwork* net,
                         const xtalk::CrosstalkErrorModel* model);

  /// Hot-path transfer through a precomputed evaluator (bit-identical to
  /// the reference overload on the same network/thresholds).  A quiet bus
  /// (re-driving the held word) skips evaluation entirely when the
  /// evaluator proves the identity -- the most common transfer in real
  /// programs.  `cache` (optional) memoizes (held, driven) -> received per
  /// defect; `eval` may be null or empty for an ideal bus.
  util::BusWord transfer(util::BusWord word, const xtalk::BusEvaluator* eval,
                         xtalk::TransitionCache* cache);

  /// Ideal bus: `transfer(word, nullptr, nullptr)` would be ambiguous
  /// between the two evaluating overloads; both degrade to this.
  util::BusWord transfer(util::BusWord word, std::nullptr_t, std::nullptr_t) {
    return transfer(word, static_cast<const xtalk::RcNetwork*>(nullptr),
                    nullptr);
  }

  /// Resets the held value (e.g. at system reset).
  void reset() { held_ = util::BusWord::zeros(width_); }

  /// Reinstates a previously captured held word (slice restore).  The next
  /// transfer then forms exactly the (held, driven) transition the
  /// uninterrupted run would have formed.
  void restore_held(util::BusWord held) { held_ = held; }

 private:
  BusKind kind_;
  unsigned width_;
  util::BusWord held_;
};

}  // namespace xtest::soc
