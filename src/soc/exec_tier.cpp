// Accelerated execution tiers for System::run (cpu::ExecTier).
//
// The decoded tier fuses the CPU instruction loop with the bus plumbing:
// instead of virtual BusPort dispatch through Cpu::step -> System::read,
// a flat loop walks the pre-decoded micro-op array (cpu/microcode.h) and
// drives each bus transaction directly.  Crucially, every transaction
// still routes through TristateBus::transfer against the same evaluator
// and transition cache the reference path uses, so the bus traffic -- and
// therefore every verdict -- is bit-identical by construction; only the
// interpretation overhead between transfers is removed.
//
// Equivalence is enforced structurally, not hoped for:
//   * A micro-op is used only when the instruction byte that actually
//     arrived over the (possibly corrupted) data bus equals the byte the
//     table was decoded from.  A divergent fetch -- a self-modifying
//     store that rewrote an executed instruction, or a corrupted fetch --
//     finishes the current instruction via the plain decode table (still
//     exact: decode is a pure function of the byte) and then *bails out*:
//     the architectural state is restored into the Cpu and the reference
//     interpreter finishes the run.
//   * Runs the tier cannot cover at all (attached traces, forced MAFs,
//     MMIO windows, the reference receive path) never enter the loop.
//     Mid-program resumes (slice boundaries) ARE covered: the per-fetch
//     byte check above subsumes "the embedder touched memory between
//     slices", so a resumed slice enters the tier like a fresh run.
//
// The JIT tier compiles straight-line micro-op runs into call-threaded
// x86-64 blocks (cpu/jit_buffer.h): one `call` per instruction into a
// step thunk that executes the same fused step.  Any JIT unavailability
// -- non-x86-64 host, mmap/mprotect failure, injected "cpu.jit_map"
// fault, buffer exhaustion -- degrades to the decoded loop, which itself
// degrades to the reference interpreter.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cpu/jit_buffer.h"
#include "cpu/microcode.h"
#include "soc/system.h"

namespace xtest::soc {

namespace {

/// The views a provably-clean control bus always delivers: the received
/// word equals the driven word, and the system only ever drives READ and
/// WRITE.
const ControlView kCleanRead{control_word(/*write=*/false)};
const ControlView kCleanWrite{control_word(/*write=*/true)};

/// The fused per-instruction executor.  Pointers are lifted out of the
/// System once per run; architectural state lives in locals and is
/// written back through Cpu::restore at exit.
struct ExecCtx {
  TristateBus* addr_bus = nullptr;
  TristateBus* data_bus = nullptr;
  TristateBus* ctrl_bus = nullptr;
  const xtalk::BusEvaluator* addr_eval = nullptr;
  const xtalk::BusEvaluator* data_eval = nullptr;
  const xtalk::BusEvaluator* ctrl_eval = nullptr;
  xtalk::TransitionCache* addr_cache = nullptr;
  xtalk::TransitionCache* data_cache = nullptr;
  xtalk::TransitionCache* ctrl_cache = nullptr;
  Memory* memory = nullptr;
  const cpu::MicroProgram* prog = nullptr;
  std::uint64_t max_cycles = 0;
  /// Per-channel identity proofs (BusEvaluator::always_identity), hoisted
  /// once per run: an identity channel's transfer returns the driven word
  /// on every transition, so the loop skips the bus machinery for it.
  bool addr_id = false;
  bool data_id = false;
  bool ctrl_id = false;

  cpu::Addr pc = 0;
  std::uint8_t acc = 0;
  cpu::Flags flags;
  cpu::HaltReason reason = cpu::HaltReason::kRunning;
  std::uint64_t cycles = 0;
  /// Set when a fetched instruction byte diverged from the pre-decoded
  /// image: the rest of the run belongs to the reference interpreter.
  bool bail = false;
  /// Address the memory saw on the most recent transfer (selects the
  /// micro-op for a fetch: the byte came from this location).
  cpu::Addr seen = 0;

  std::uint8_t held_data() const {
    return static_cast<std::uint8_t>(data_bus->held().bits());
  }

  // The identity short-circuits below skip the held-value updates their
  // transfers would have made.  That is safe exactly because of what the
  // held word feeds: an identity channel's own transfers return the
  // driven word regardless of it (including after a bail-out, where the
  // reference interpreter's transfers take the same always_identity
  // exit), and the cross-channel read of the *data* bus's held word --
  // the floating-bus sample under a corrupted control word -- is
  // unreachable while the control channel is identity, so the data bus
  // keeps its held word exact through an ideal transfer when it is not.

  cpu::Addr send_address(cpu::Addr a) {
    if (addr_id) return a;
    return static_cast<cpu::Addr>(
        addr_bus->transfer(util::BusWord(cpu::kAddrBits, a), addr_eval,
                           addr_cache)
            .bits());
  }

  std::uint8_t send_data(std::uint8_t byte) {
    if (data_id) {
      if (!ctrl_id)
        data_bus->transfer(util::BusWord(cpu::kDataBits, byte), nullptr,
                           nullptr);
      return byte;
    }
    return static_cast<std::uint8_t>(
        data_bus->transfer(util::BusWord(cpu::kDataBits, byte), data_eval,
                           data_cache)
            .bits());
  }

  ControlView send_control(bool write) {
    if (ctrl_id) return write ? kCleanWrite : kCleanRead;
    return ControlView(
        ctrl_bus->transfer(control_word(write), ctrl_eval, ctrl_cache));
  }

  // Cpu::bus_read + System::read, fused (no MMIO windows on this path).
  std::uint8_t bus_read(cpu::Addr a) {
    ++cycles;
    seen = send_address(cpu::wrap(a));
    const ControlView ctrl = send_control(/*write=*/false);
    if (!ctrl.cs) return held_data();
    if (ctrl.wr) memory->write(seen, held_data());
    if (!ctrl.rd) return held_data();
    return send_data(memory->read(seen));
  }

  // Cpu::bus_write + System::write, fused.
  void bus_write(cpu::Addr a, std::uint8_t d) {
    ++cycles;
    const cpu::Addr target = send_address(cpu::wrap(a));
    const ControlView ctrl = send_control(/*write=*/true);
    const std::uint8_t byte = send_data(d);
    if (ctrl.cs && ctrl.wr) memory->write(target, byte);
  }

  void internal() { ++cycles; }

  void set_zn(std::uint8_t value) {
    flags.z = value == 0;
    flags.n = (value & 0x80) != 0;
  }

  void exec_memref(const cpu::Decoded& d, std::uint8_t offset_byte) {
    const cpu::Addr ax = cpu::make_addr(d.page, offset_byte);
    switch (d.opcode) {
      case cpu::Opcode::kLda:
        acc = bus_read(ax);
        set_zn(acc);
        break;
      case cpu::Opcode::kAnd:
        acc &= bus_read(ax);
        set_zn(acc);
        break;
      case cpu::Opcode::kAdd: {
        const std::uint8_t m = bus_read(ax);
        const unsigned r = static_cast<unsigned>(acc) + m;
        flags.c = r > 0xFF;
        flags.v = (~(acc ^ m) & (acc ^ r) & 0x80) != 0;
        acc = static_cast<std::uint8_t>(r);
        set_zn(acc);
        break;
      }
      case cpu::Opcode::kSub: {
        const std::uint8_t m = bus_read(ax);
        const unsigned r = static_cast<unsigned>(acc) - m;
        flags.c = acc >= m;  // no borrow
        flags.v = ((acc ^ m) & (acc ^ r) & 0x80) != 0;
        acc = static_cast<std::uint8_t>(r);
        set_zn(acc);
        break;
      }
      case cpu::Opcode::kOra:
        acc |= bus_read(ax);
        set_zn(acc);
        break;
      case cpu::Opcode::kXra:
        acc ^= bus_read(ax);
        set_zn(acc);
        break;
      case cpu::Opcode::kSta:
        bus_write(ax, acc);
        break;
      case cpu::Opcode::kJmp:
        pc = ax;
        break;
      case cpu::Opcode::kJsr:
        bus_write(ax, cpu::offset_of(pc));
        pc = cpu::wrap(ax + 1u);
        break;
      case cpu::Opcode::kJmi: {
        const std::uint8_t t = bus_read(ax);
        pc = cpu::make_addr(cpu::page_of(ax), t);
        break;
      }
      default:
        break;
    }
  }

  void exec_single(cpu::SingleOp op) {
    switch (op) {
      case cpu::SingleOp::kNop:
        break;
      case cpu::SingleOp::kCla:
        acc = 0;
        set_zn(acc);
        break;
      case cpu::SingleOp::kCma:
        acc = static_cast<std::uint8_t>(~acc);
        set_zn(acc);
        break;
      case cpu::SingleOp::kCmc:
        flags.c = !flags.c;
        break;
      case cpu::SingleOp::kStc:
        flags.c = true;
        break;
      case cpu::SingleOp::kAsl: {
        flags.c = (acc & 0x80) != 0;
        const std::uint8_t r = static_cast<std::uint8_t>(acc << 1);
        flags.v = ((acc ^ r) & 0x80) != 0;
        acc = r;
        set_zn(acc);
        break;
      }
      case cpu::SingleOp::kAsr:
        flags.c = (acc & 0x01) != 0;
        acc = static_cast<std::uint8_t>((acc >> 1) | (acc & 0x80));
        set_zn(acc);
        break;
      case cpu::SingleOp::kInc: {
        const unsigned r = static_cast<unsigned>(acc) + 1u;
        flags.c = r > 0xFF;
        flags.v = acc == 0x7F;
        acc = static_cast<std::uint8_t>(r);
        set_zn(acc);
        break;
      }
      case cpu::SingleOp::kHlt:
        reason = cpu::HaltReason::kHltInstruction;
        break;
    }
  }

  /// Exactly Cpu::step against the fused bus plumbing.
  void step_one() {
    const cpu::Addr instr_addr = pc;
    const std::uint8_t b1 = bus_read(pc);
    pc = cpu::wrap(pc + 1u);
    internal();  // decode

    const cpu::MicroOp& u = prog->at(seen);
    const cpu::Decoded* d = &u.d;
    if (b1 != u.byte) {
      // The byte on the wires is not the byte this table was decoded
      // from (self-modified or corrupted fetch).  decode(b1) is still
      // exact, so finish this instruction -- then bail to the reference
      // interpreter for the rest of the run.
      bail = true;
      d = &cpu::MicroProgram::decode_table()[b1];
    }
    if (d->kind == cpu::Decoded::Kind::kIllegal) {
      reason = cpu::HaltReason::kIllegalOpcode;
      return;
    }

    std::uint8_t b2 = 0;
    if (d->two_bytes()) {
      b2 = bus_read(pc);
      pc = cpu::wrap(pc + 1u);
    }

    switch (d->kind) {
      case cpu::Decoded::Kind::kMemRef:
        exec_memref(*d, b2);
        internal();  // execute/write-back
        break;
      case cpu::Decoded::Kind::kBranch:
        if (d->cond_mask & flags.mask())
          pc = cpu::make_addr(cpu::page_of(instr_addr), b2);
        internal();
        break;
      case cpu::Decoded::Kind::kSingle:
        exec_single(d->single);
        internal();
        break;
      case cpu::Decoded::Kind::kIllegal:
        break;  // unreachable
    }
  }

  bool live() const {
    return reason == cpu::HaltReason::kRunning && cycles < max_cycles && !bail;
  }
};

void run_decoded_loop(ExecCtx& ctx) {
  while (ctx.live()) ctx.step_one();
}

// --- JIT tier -----------------------------------------------------------

/// Per-instruction entry point the call-threaded blocks dial into.
/// Executes one fused step when the baked address still matches the live
/// program counter; the return value is "control fell through to the next
/// sequential instruction and the run may continue", i.e. whether the
/// block's next baked call is valid.
bool jit_step_thunk(void* p, std::uint16_t addr_bits) {
  ExecCtx& ctx = *static_cast<ExecCtx*>(p);
  const cpu::Addr addr = static_cast<cpu::Addr>(addr_bits);
  if (!ctx.live() || ctx.pc != addr) return false;
  const bool two = ctx.prog->at(addr).d.two_bytes();
  ctx.step_one();
  if (!ctx.live()) return false;
  return ctx.pc == cpu::wrap(addr + (two ? 2u : 1u));
}

/// Whether control cannot fall through to the next sequential address.
/// (A not-taken branch *does* fall through; the thunk's pc check handles
/// the taken case, so branches do not have to end a block.)
bool ends_block(const cpu::Decoded& d) {
  if (d.kind == cpu::Decoded::Kind::kIllegal) return true;
  if (d.kind == cpu::Decoded::Kind::kSingle)
    return d.single == cpu::SingleOp::kHlt;
  if (d.kind == cpu::Decoded::Kind::kMemRef)
    return d.opcode == cpu::Opcode::kJmp || d.opcode == cpu::Opcode::kJsr ||
           d.opcode == cpu::Opcode::kJmi;
  return false;
}

constexpr std::size_t kJitCapacity = 1u << 16;
constexpr int kMaxBlockLen = 64;
constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

/// Emits one straight-line block starting at `entry`:
///
///   push rbx; mov rbx, rdi            ; rbx = ctx across calls
///   per instruction:
///     mov rdi, rbx
///     mov esi, imm32 (address)
///     mov rax, imm64 (thunk); call rax
///     test al, al; jz epilogue        ; rel32 patched after emission
///   epilogue: pop rbx; ret
///
/// Returns the block's buffer offset, or kNoBlock (with the cursor
/// rewound) on any emission failure.
std::size_t compile_block(cpu::JitBuffer& buf, const cpu::MicroProgram& prog,
                          cpu::Addr entry) {
  if (buf.make_writable() != cpu::JitError::kOk) return kNoBlock;
  const std::size_t start = buf.used();
  const std::uint64_t thunk =
      reinterpret_cast<std::uint64_t>(&jit_step_thunk);
  std::vector<cpu::JitBuffer::Label> exits;
  bool ok = buf.emit8(0x53) &&                                // push rbx
            buf.emit8(0x48) && buf.emit8(0x89) && buf.emit8(0xFB);
  cpu::Addr a = entry;
  for (int n = 0; ok && n < kMaxBlockLen; ++n) {
    ok = buf.emit8(0x48) && buf.emit8(0x89) && buf.emit8(0xDF) &&  // mov rdi, rbx
         buf.emit8(0xBE) && buf.emit32(a) &&                       // mov esi, a
         buf.emit8(0x48) && buf.emit8(0xB8) && buf.emit64(thunk) &&
         buf.emit8(0xFF) && buf.emit8(0xD0) &&                     // call rax
         buf.emit8(0x84) && buf.emit8(0xC0);                       // test al, al
    cpu::JitBuffer::Label l;
    ok = ok && buf.emit8(0x0F) && buf.emit8(0x84) &&               // jz rel32
         buf.emit_rel32_placeholder(&l);
    if (!ok) break;
    exits.push_back(l);
    const cpu::MicroOp& u = prog.at(a);
    if (ends_block(u.d)) break;
    a = cpu::wrap(a + (u.d.two_bytes() ? 2u : 1u));
  }
  const std::size_t epilogue = buf.used();
  ok = ok && buf.emit8(0x5B) && buf.emit8(0xC3);  // pop rbx; ret
  if (!ok) {
    buf.truncate(start);
    return kNoBlock;
  }
  for (const cpu::JitBuffer::Label& l : exits) buf.patch_rel32(l, epilogue);
  return start;
}

}  // namespace

System::~System() = default;

namespace {

/// Finds or compiles the block entered at `pc`; leaves the buffer
/// executable on success.  kNoBlock on any failure (the caller degrades
/// to single-step decoded execution, which is always correct).
std::size_t block_for(ExecTierJit& jit, const cpu::MicroProgram& prog,
                      cpu::Addr pc, TierCounters& tier) {
  auto it = jit.blocks.find(pc);
  if (it == jit.blocks.end()) {
    const std::size_t off = compile_block(jit.buffer, prog, pc);
    if (off == kNoBlock) return kNoBlock;
    it = jit.blocks.emplace(pc, off).first;
    ++tier.jit_blocks;
  }
  if (!jit.buffer.executable() &&
      jit.buffer.make_executable() != cpu::JitError::kOk) {
    jit.unavailable = true;
    return kNoBlock;
  }
  return it->second;
}

void run_jit_loop(ExecTierJit& jit, ExecCtx& ctx, TierCounters& tier) {
  if (jit.compiled_for != ctx.prog) {
    jit.blocks.clear();
    if (jit.buffer.mapped() &&
        jit.buffer.make_writable() == cpu::JitError::kOk)
      jit.buffer.truncate(0);
    jit.compiled_for = ctx.prog;
  }
  using BlockFn = bool (*)(void*);
  while (ctx.live()) {
    const std::size_t off = block_for(jit, *ctx.prog, ctx.pc, tier);
    if (off == kNoBlock || jit.unavailable) {
      ctx.step_one();  // degrade this instruction to the decoded loop
      continue;
    }
    const auto fn = reinterpret_cast<BlockFn>(
        reinterpret_cast<std::uintptr_t>(jit.buffer.entry(off)));
    fn(&ctx);
  }
}

}  // namespace

RunResult System::run_tiered(std::uint64_t max_cycles) {
  // Cases the accelerated tiers leave to the reference interpreter by
  // design (no counter: the tier simply does not apply).
  const bool covered = trace_ == nullptr && !forced_.has_value() &&
                       mmio_.empty() && fast_receive_;
  // A mid-program resume (slice re-entering run() with cycles already on
  // the clock) is fully covered: even if the embedder touched memory
  // between slices, the loop checks every fetched byte against the
  // pre-decoded table and bails to the reference interpreter on the first
  // divergence, the same guard that covers self-modifying stores.  Only a
  // failed/injected pre-decode still forces the reference path.
  if (!covered || cpu_.halted() || micro_ == nullptr) {
    if (covered && !cpu_.halted() && micro_ == nullptr)
      ++tier_.jit_bailouts;
    cpu_.run(max_cycles);
    return {cpu_.cycles(), cpu_.halted(), cpu_.halt_reason()};
  }

  ExecCtx ctx;
  ctx.addr_bus = &addr_bus_;
  ctx.data_bus = &data_bus_;
  ctx.ctrl_bus = &ctrl_bus_;
  ctx.addr_eval = addr_.active_eval();
  ctx.data_eval = data_.active_eval();
  ctx.ctrl_eval = ctrl_.active_eval();
  ctx.addr_cache = active_cache(addr_);
  ctx.data_cache = active_cache(data_);
  ctx.ctrl_cache = active_cache(ctrl_);
  ctx.addr_id = ctx.addr_eval->always_identity();
  ctx.data_id = ctx.data_eval->always_identity();
  ctx.ctrl_id = ctx.ctrl_eval->always_identity();
  ctx.memory = &memory_;
  ctx.prog = micro_.get();
  ctx.max_cycles = max_cycles;
  const cpu::CpuState entry = cpu_.state();
  ctx.pc = entry.pc;
  ctx.acc = entry.acc;
  ctx.flags = entry.flags;
  ctx.reason = entry.reason;
  ctx.cycles = entry.cycles;

  if (exec_tier_ == cpu::ExecTier::kJit) {
    if (jit_ == nullptr) jit_ = std::make_unique<ExecTierJit>();
    if (!jit_->unavailable && !jit_->buffer.mapped()) {
      if (!cpu::jit_backend_available() ||
          jit_->buffer.map(kJitCapacity) != cpu::JitError::kOk) {
        // JIT/mmap unavailable: degrade (once, sticky) to the decoded
        // interpreter -- and ultimately the reference tier -- instead of
        // erroring the run.
        jit_->unavailable = true;
        ++tier_.jit_bailouts;
      }
    }
    if (jit_->unavailable)
      run_decoded_loop(ctx);
    else
      run_jit_loop(*jit_, ctx, tier_);
  } else {
    run_decoded_loop(ctx);
  }

  cpu_.restore({ctx.pc, ctx.acc, ctx.flags, ctx.reason, ctx.cycles});
  if (ctx.bail) {
    ++tier_.jit_bailouts;
    cpu_.run(max_cycles);
  }
  return {cpu_.cycles(), cpu_.halted(), cpu_.halt_reason()};
}

}  // namespace xtest::soc
