#include "soc/waveform.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace xtest::soc {

std::string render_waveform(const BusTrace& trace, BusKind bus,
                            const WaveformOptions& options) {
  std::vector<BusEvent> events = trace.on_bus(bus);
  if (options.max_events != 0 && events.size() > options.max_events)
    events.resize(options.max_events);
  if (events.empty()) return "(no events)\n";

  const unsigned width = events.front().driven.width();
  std::ostringstream os;

  // Header: cycle numbers.
  os << "          ";
  for (const auto& e : events) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "%4llu",
                  static_cast<unsigned long long>(e.cycle));
    os << buf;
  }
  os << '\n';

  for (unsigned wire = width; wire-- > 0;) {
    char name[16];
    std::snprintf(name, sizeof name, "%s[%2u]  ", to_string(bus).c_str(),
                  wire);
    os << name;
    bool prev = false;
    bool have_prev = false;
    for (const auto& e : events) {
      const util::BusWord w = options.received ? e.received : e.driven;
      const bool bit = w.bit(wire);
      char sym;
      if (!have_prev || bit == prev)
        sym = bit ? '#' : '_';
      else
        sym = bit ? '/' : '\\';
      os << "   " << sym;
      prev = bit;
      have_prev = true;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace xtest::soc
