// On-line (in-field) interleaved execution: functional workload windows
// alternating with self-test slices on the same core.
//
// The off-line flow of the paper dedicates the processor to the self-test
// program.  In-field testing cannot: the core owes its functional workload
// service deadlines, so the SBST session is cut into slices
// (sbst/slice.h) and interleaved with functional windows.  The scheduler
// here owns that alternation on one soc::System:
//
//   round := [functional window of workload_cycles] [test slice of
//             slice_cycles]
//
// Both contexts are full SliceState snapshots, so each swap-in replays
// the exact architectural state (memory, registers, bus held words) the
// context last saw; bus transfers stay cycle-accurate through the same
// BusEvaluator/TransitionCache/exec-tier machinery as any off-line run.
// The functional window attaches the DeadlineDevice MMIO window (which
// forces the reference interpreter, as MMIO always does); the test slice
// detaches it, so a traceless slice enters the decoded tier.
//
// Functional interference is measured at the MMIO seam: the workload
// writes a heartbeat register, and the device timestamps every write on
// the *global* interleaved clock.  A heartbeat arriving more than
// deadline_cycles after its predecessor is late; more than twice that is
// missed.  Both counters are pure functions of the schedule and the
// applied defect, so campaigns over them stay bitwise deterministic.

#pragma once

#include <cstdint>

#include "cpu/memory_image.h"
#include "soc/mmio.h"
#include "soc/system.h"

namespace xtest::soc {

/// On-line mode knobs (spec keys `online.*`).  Disabled by default: the
/// paper-baseline scenario is the classic off-line campaign.
struct OnlineConfig {
  bool enabled = false;
  /// Cycle budget of one self-test slice (rounded up to the instruction
  /// boundary, like every Cpu::run cap).
  std::uint64_t slice_cycles = 512;
  /// Cycle budget of one functional workload window.
  std::uint64_t workload_cycles = 256;
  /// Heartbeat service deadline on the global interleaved clock.
  std::uint64_t deadline_cycles = 1024;

  bool operator==(const OnlineConfig&) const = default;
};

/// The functional program a round's window executes: an endless loop that
/// strobes the heartbeat register and generates ordinary load/store bus
/// traffic.  `mmio_base` is where the scheduler maps the DeadlineDevice.
struct OnlineWorkload {
  cpu::MemoryImage image;
  cpu::Addr entry = 0;
  cpu::Addr mmio_base = 0xFF0;
};

/// The built-in heartbeat workload (assembled once per call).
OnlineWorkload make_default_workload();

/// Interference counters of one interleaved run.
struct InterferenceCounters {
  std::uint64_t heartbeats = 0;
  std::uint64_t deadlines_late = 0;    ///< gap in (deadline, 2*deadline]
  std::uint64_t deadlines_missed = 0;  ///< gap beyond 2*deadline
};

/// Heartbeat register with deadline accounting on the global clock.
class DeadlineDevice : public MmioDevice {
 public:
  explicit DeadlineDevice(std::uint64_t deadline_cycles)
      : deadline_cycles_(deadline_cycles) {}

  /// Arms timestamping for one functional window: heartbeat timestamps
  /// are `global_offset + cpu->cycles()` until the next begin_window.
  void begin_window(const cpu::Cpu* cpu, std::uint64_t global_offset) {
    cpu_ = cpu;
    global_offset_ = global_offset;
  }

  std::uint8_t read(cpu::Addr) override { return last_value_; }

  void write(cpu::Addr, std::uint8_t data) override {
    last_value_ = data;
    const std::uint64_t now =
        cpu_ != nullptr ? global_offset_ + cpu_->cycles() : global_offset_;
    account(now);
  }

  /// Accounts the gap from the last heartbeat to `global_now` (end of the
  /// campaign: a workload that died mid-run still shows its starvation).
  void finish(std::uint64_t global_now) { account(global_now); }

  const InterferenceCounters& counters() const { return counters_; }

 private:
  void account(std::uint64_t now) {
    const std::uint64_t gap = now - last_heartbeat_;
    if (deadline_cycles_ > 0) {
      if (gap > 2 * deadline_cycles_)
        ++counters_.deadlines_missed;
      else if (gap > deadline_cycles_)
        ++counters_.deadlines_late;
    }
    ++counters_.heartbeats;
    last_heartbeat_ = now;
  }

  std::uint64_t deadline_cycles_;
  const cpu::Cpu* cpu_ = nullptr;
  std::uint64_t global_offset_ = 0;
  std::uint64_t last_heartbeat_ = 0;
  std::uint8_t last_value_ = 0;
  InterferenceCounters counters_;
};

/// Alternates the functional workload and caller-run test slices on one
/// System.  The caller owns the test context (an sbst::ProgramSlice);
/// this class owns the functional context and the global clock.
class InterleavedScheduler {
 public:
  /// `workload` must outlive the scheduler.
  InterleavedScheduler(System& system, const OnlineConfig& config,
                       const OnlineWorkload& workload)
      : system_(system),
        config_(config),
        workload_(&workload),
        device_(config.deadline_cycles) {}

  /// One functional window: swap in the workload context (deadline device
  /// attached), run workload_cycles, swap out.  Advances the global clock
  /// by the cycles the window actually consumed.
  void run_functional_window();

  /// Prepares the core for a test slice: detaches every MMIO window so a
  /// traceless slice is decoded-tier eligible.  The caller then runs its
  /// ProgramSlice against the system and reports the consumed cycles.
  void begin_test_slice() { system_.clear_mmio(); }
  void end_test_slice(std::uint64_t cycles_consumed) {
    global_cycles_ += cycles_consumed;
    ++rounds_;
  }

  /// Closes the interference accounting (tail gap since the last
  /// heartbeat).  Call once, after the last round.
  void finish() { device_.finish(global_cycles_); }

  std::uint64_t global_cycles() const { return global_cycles_; }
  std::uint64_t rounds() const { return rounds_; }
  const InterferenceCounters& interference() const {
    return device_.counters();
  }

 private:
  System& system_;
  OnlineConfig config_;
  const OnlineWorkload* workload_;
  DeadlineDevice device_;
  SliceState functional_state_;
  bool functional_started_ = false;
  std::uint64_t global_cycles_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace xtest::soc
