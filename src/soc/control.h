// Control-bus modelling.
//
// The paper (Section 3): "The testing of interconnects between the CPU and
// non-memory cores and the testing of control busses are subjects of
// future study."  This module implements that future study for the
// CPU-memory system: a three-wire control bus
//
//   wire 0  RD   memory drives the data bus
//   wire 1  WR   memory captures the data bus
//   wire 2  CS   chip select, asserted on every transaction
//
// carried through the same tri-state/crosstalk machinery as the address
// and data buses.  Corrupted control words have architectural effects:
// a glitched WR during a read performs a destructive spurious write, a
// dropped WR loses a store, a dropped RD leaves the CPU sampling the
// floating (held) data bus.
//
// The punchline the experiments quantify: the only control words the
// system ever drives are READ and WRITE, so *no* control-bus MAF is fully
// excitable in functional mode -- software-based self-test can only catch
// control-bus defects through partial excitation, while hardware BIST's
// full MA set over-tests. This is precisely why the paper defers control
// buses.

#pragma once

#include "util/bitvec.h"

namespace xtest::soc {

inline constexpr unsigned kControlBits = 3;
inline constexpr unsigned kCtrlRd = 0;
inline constexpr unsigned kCtrlWr = 1;
inline constexpr unsigned kCtrlCs = 2;

/// The control word the CPU drives for a transaction.
inline util::BusWord control_word(bool write) {
  return util::BusWord(kControlBits,
                       (write ? (1u << kCtrlWr) : (1u << kCtrlRd)) |
                           (1u << kCtrlCs));
}

/// Decoded view of a (possibly corrupted) received control word.
struct ControlView {
  bool rd = false;
  bool wr = false;
  bool cs = false;

  explicit ControlView(util::BusWord w)
      : rd(w.bit(kCtrlRd)), wr(w.bit(kCtrlWr)), cs(w.bit(kCtrlCs)) {}
};

}  // namespace xtest::soc
