// Memory-mapped non-memory cores.
//
// Section 3 of the paper: "the most common mechanism for a CPU to
// communicate with a core is via memory-mapped I/O, in which certain
// addresses in the memory address space of the CPU are reserved for
// addressing the cores" -- and the proposed method extends to CPU-core
// interconnect testing because of exactly that.  An MmioDevice occupies a
// window of the 4K space; System routes bus transactions inside the window
// to the device instead of the memory core.  The crosstalk error model is
// applied identically, since the same physical buses carry the traffic.

#pragma once

#include <cstdint>
#include <vector>

#include "cpu/isa.h"

namespace xtest::soc {

class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  /// `offset` is relative to the device's window base.
  virtual std::uint8_t read(cpu::Addr offset) = 0;
  virtual void write(cpu::Addr offset, std::uint8_t data) = 0;
};

/// A bank of byte registers -- the simplest peripheral core; reads return
/// the last written value, which makes it a transparent bus-test target.
class RegisterFileDevice : public MmioDevice {
 public:
  explicit RegisterFileDevice(std::size_t size) : regs_(size, 0) {}

  std::uint8_t read(cpu::Addr offset) override {
    return offset < regs_.size() ? regs_[offset] : 0;
  }
  void write(cpu::Addr offset, std::uint8_t data) override {
    if (offset < regs_.size()) regs_[offset] = data;
  }

  std::size_t size() const { return regs_.size(); }

 private:
  std::vector<std::uint8_t> regs_;
};

/// A read-only identification/status core: writes are ignored, reads return
/// a pattern.  Models the "value stored in v2' cannot be easily controlled"
/// discussion of Section 3.2.
class RomDevice : public MmioDevice {
 public:
  explicit RomDevice(std::vector<std::uint8_t> contents)
      : contents_(std::move(contents)) {}

  std::uint8_t read(cpu::Addr offset) override {
    return contents_.empty() ? 0 : contents_[offset % contents_.size()];
  }
  void write(cpu::Addr, std::uint8_t) override {}

 private:
  std::vector<std::uint8_t> contents_;
};

}  // namespace xtest::soc
