// ASCII waveform rendering of bus traces (Fig. 5-style timing diagrams).
//
// Renders each bus wire as one row over the traced cycles:
//
//   addr[0]  ___/########\_____
//
// '_' low, '#' high, '/' '\' transitions, '.' cycles where the bus only
// holds its value ("z" on the real bus).  Intended for terminal output in
// examples and benches; also a debugging aid for generated test programs.

#pragma once

#include <string>

#include "soc/trace.h"

namespace xtest::soc {

struct WaveformOptions {
  /// Render received values instead of driven values.
  bool received = false;
  /// Limit to the first N events on the bus (0 = all).
  std::size_t max_events = 0;
};

/// Multi-line waveform of one bus from a trace.
std::string render_waveform(const BusTrace& trace, BusKind bus,
                            const WaveformOptions& options = {});

}  // namespace xtest::soc
