#include "soc/bus.h"

#include <cassert>

namespace xtest::soc {

std::string to_string(BusKind k) {
  switch (k) {
    case BusKind::kAddress: return "addr";
    case BusKind::kData: return "data";
    case BusKind::kControl: return "ctrl";
  }
  return "?";
}

util::BusWord TristateBus::transfer(util::BusWord word,
                                    const xtalk::RcNetwork* net,
                                    const xtalk::CrosstalkErrorModel* model) {
  assert(word.width() == width_);
  const xtalk::VectorPair pair{held_, word};
  util::BusWord received = word;
  if (net != nullptr && model != nullptr) received = model->receive(*net, pair);
  held_ = word;
  return received;
}

}  // namespace xtest::soc
