#include "soc/bus.h"

#include <cassert>

namespace xtest::soc {

std::string to_string(BusKind k) {
  switch (k) {
    case BusKind::kAddress: return "addr";
    case BusKind::kData: return "data";
    case BusKind::kControl: return "ctrl";
  }
  return "?";
}

util::BusWord TristateBus::transfer(util::BusWord word,
                                    const xtalk::RcNetwork* net,
                                    const xtalk::CrosstalkErrorModel* model) {
  assert(word.width() == width_);
  const xtalk::VectorPair pair{held_, word};
  util::BusWord received = word;
  if (net != nullptr && model != nullptr) received = model->receive(*net, pair);
  held_ = word;
  return received;
}

util::BusWord TristateBus::transfer(util::BusWord word,
                                    const xtalk::BusEvaluator* eval,
                                    xtalk::TransitionCache* cache) {
  assert(word.width() == width_);
  const std::uint64_t held = held_.bits();
  const std::uint64_t driven = word.bits();
  held_ = word;
  if (eval == nullptr || eval->width() == 0) return word;
  // Early exits: an evaluator whose worst case provably never deviates
  // (calibrated nominal networks) samples the driven word on *every*
  // transition, and a quiet bus (no wire toggles) does so whenever the
  // glitch threshold is positive.  Neither case touches the cache.
  if (eval->always_identity()) return word;
  if (held == driven && eval->quiet_is_identity()) return word;
  if (cache != nullptr && cache->enabled()) {
    const std::uint64_t key = (held << width_) | driven;
    std::uint64_t value = 0;
    if (!cache->lookup(key, value)) {
      value = eval->receive(held, driven);
      cache->insert(key, value);
    }
    return {width_, value};
  }
  return {width_, eval->receive(held, driven)};
}

}  // namespace xtest::soc
