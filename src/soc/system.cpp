#include "soc/system.h"

#include <cstring>

#include "util/fault_injector.h"

namespace xtest::soc {

namespace {

/// Pool capacity per bus: comfortably above a campaign shard's defect
/// count; overflow retires the whole pool rather than tracking LRU.
constexpr std::size_t kDefectPoolCap = 256;

/// Per-defect pooled memos are much smaller than the channel default: one
/// defect run touches a few dozen unique transitions, and the allocation
/// is paid per pooled defect, so a compact table keeps cold campaign
/// passes from spending their time first-touching cache pages.
constexpr unsigned kPoolCacheLog2 = 8;

/// Backend-calibrated thresholds with the sampling slack stretched by the
/// clock scale (a slower clock tolerates proportionally slower
/// transitions).
xtalk::ErrorModelConfig scaled_calibration(
    const xtalk::ElectricalConfig& electrical, const xtalk::RcNetwork& nominal,
    double cth, double clock_scale) {
  xtalk::ErrorModelConfig cfg =
      xtalk::calibrate_electrical(electrical, nominal, cth);
  cfg.delay_slack_ns *= clock_scale;
  return cfg;
}

xtalk::TransitionCache make_cache(bool enabled, unsigned width) {
  if (!enabled || !xtalk::TransitionCache::cacheable(width))
    return xtalk::TransitionCache{};
  return xtalk::TransitionCache{width};
}

xtalk::TransitionCache make_pool_cache(bool enabled, unsigned width) {
  if (!enabled || !xtalk::TransitionCache::cacheable(width))
    return xtalk::TransitionCache{};
  return xtalk::TransitionCache{width, kPoolCacheLog2};
}

/// True when this configuration serves defect evaluation from the pool:
/// the per-channel `cache` is then dead weight (defective transfers use
/// the pooled per-defect memo instead), and skipping its allocation keeps
/// simulator construction off the cold-campaign critical path.
bool pools_defects(const SystemConfig& c) {
  return c.exec_tier != cpu::ExecTier::kReference && c.fast_receive &&
         c.transition_cache;
}

}  // namespace

System::System(const SystemConfig& config)
    : nominal_addr_net_(config.address_geometry),
      nominal_data_net_(config.data_geometry),
      nominal_ctrl_net_(config.control_geometry),
      addr_cth_(xtalk::recommended_cth(nominal_addr_net_, config.cth_ratio)),
      data_cth_(xtalk::recommended_cth(nominal_data_net_, config.cth_ratio)),
      ctrl_cth_(xtalk::recommended_cth(nominal_ctrl_net_, config.cth_ratio)),
      addr_model_(scaled_calibration(config.electrical, nominal_addr_net_,
                                     addr_cth_, config.clock_period_scale)),
      data_model_(scaled_calibration(config.electrical, nominal_data_net_,
                                     data_cth_, config.clock_period_scale)),
      ctrl_model_(scaled_calibration(config.electrical, nominal_ctrl_net_,
                                     ctrl_cth_, config.clock_period_scale)),
      fast_receive_(config.fast_receive),
      use_cache_(config.transition_cache),
      nominal_addr_eval_(nominal_addr_net_, addr_model_.config()),
      nominal_data_eval_(nominal_data_net_, data_model_.config()),
      nominal_ctrl_eval_(nominal_ctrl_net_, ctrl_model_.config()),
      // `warm` only earns its allocation when nominal transfers can reach
      // a cache lookup at all -- a provably-identity nominal evaluator
      // early-exits every transfer before the memo.
      addr_{nominal_addr_net_, nominal_addr_eval_,
            make_cache(use_cache_ && !pools_defects(config),
                       nominal_addr_net_.width()),
            make_cache(use_cache_ &&
                           config.exec_tier != cpu::ExecTier::kReference &&
                           !nominal_addr_eval_.always_identity(),
                       nominal_addr_net_.width()),
            true,
            {},
            nullptr},
      data_{nominal_data_net_, nominal_data_eval_,
            make_cache(use_cache_ && !pools_defects(config),
                       nominal_data_net_.width()),
            make_cache(use_cache_ &&
                           config.exec_tier != cpu::ExecTier::kReference &&
                           !nominal_data_eval_.always_identity(),
                       nominal_data_net_.width()),
            true,
            {},
            nullptr},
      ctrl_{nominal_ctrl_net_, nominal_ctrl_eval_,
            make_cache(use_cache_ && !pools_defects(config),
                       nominal_ctrl_net_.width()),
            make_cache(use_cache_ &&
                           config.exec_tier != cpu::ExecTier::kReference &&
                           !nominal_ctrl_eval_.always_identity(),
                       nominal_ctrl_net_.width()),
            true,
            {},
            nullptr},
      exec_tier_(config.exec_tier) {}

// ~System lives in exec_tier.cpp, where the Jit state is a complete type.

void System::set_network(BusChannel& channel,
                         const xtalk::CrosstalkErrorModel& model,
                         xtalk::RcNetwork net) {
  channel.net = std::move(net);
  channel.nominal = false;
  channel.pooled = nullptr;
  if (exec_tier_ != cpu::ExecTier::kReference && fast_receive_ && use_cache_) {
    // Accelerated tiers pool defect state: campaign passes and repeated
    // sessions re-apply the same perturbed networks, and both the
    // evaluator and the memo are pure functions of the capacitances.
    channel.pooled = pool_entry(channel, model);
    if (channel.pooled != nullptr) return;
  }
  channel.eval = xtalk::BusEvaluator(channel.net, model.config());
  channel.cache.invalidate();
  // The warm memo only answers while the channel is nominal, so its
  // entries stay valid across the perturbation -- no invalidation.
}

System::PooledDefect* System::pool_entry(
    BusChannel& channel, const xtalk::CrosstalkErrorModel& model) {
  const xtalk::RcNetwork& net = channel.net;
  const unsigned w = net.width();
  std::vector<double> caps;
  caps.reserve(static_cast<std::size_t>(w) * w + w + 1);
  for (unsigned i = 0; i < w; ++i) {
    for (unsigned j = 0; j < w; ++j) caps.push_back(net.coupling(i, j));
    caps.push_back(net.ground_cap(i));
  }
  caps.push_back(net.driver_resistance());
  // splitmix64-style chained mix, one step per capacitance.  Hash quality
  // only affects speed: correctness rests on the exact `caps` comparison.
  std::uint64_t key = 0x9E3779B97F4A7C15ull;
  for (const double c : caps) {
    std::uint64_t x = 0;
    std::memcpy(&x, &c, sizeof x);
    x += 0x9E3779B97F4A7C15ull + key;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    key = x ^ (x >> 31);
  }
  auto it = channel.pool.find(key);
  if (it != channel.pool.end() && it->second.caps != caps) {
    // Content-hash collision with *different* capacitances: retire the
    // old entry -- a wrong evaluator must never be served.
    retired_.hits += it->second.cache.hits();
    retired_.misses += it->second.cache.misses();
    channel.pool.erase(it);
    it = channel.pool.end();
  }
  if (it == channel.pool.end()) {
    if (channel.pool.size() >= kDefectPoolCap) flush_pool(channel);
    it = channel.pool
             .emplace(key, PooledDefect{std::move(caps),
                                        xtalk::BusEvaluator(net, model.config()),
                                        make_pool_cache(use_cache_, w)})
             .first;
  }
  return &it->second;
}

void System::flush_pool(BusChannel& channel) {
  for (const auto& [key, entry] : channel.pool) {
    retired_.hits += entry.cache.hits();
    retired_.misses += entry.cache.misses();
  }
  channel.pool.clear();
  channel.pooled = nullptr;
}

void System::set_address_network(xtalk::RcNetwork net) {
  set_network(addr_, addr_model_, std::move(net));
}

void System::set_data_network(xtalk::RcNetwork net) {
  set_network(data_, data_model_, std::move(net));
}

void System::set_control_network(xtalk::RcNetwork net) {
  set_network(ctrl_, ctrl_model_, std::move(net));
}

void System::clear_defects() {
  addr_.net = nominal_addr_net_;
  data_.net = nominal_data_net_;
  ctrl_.net = nominal_ctrl_net_;
  addr_.eval = nominal_addr_eval_;
  data_.eval = nominal_data_eval_;
  ctrl_.eval = nominal_ctrl_eval_;
  // Per-defect memos die with the defect; the warm nominal memos survive
  // (their entries only ever came from the nominal evaluators), and
  // pooled defect state merely goes dormant until its defect returns.
  addr_.cache.invalidate();
  data_.cache.invalidate();
  ctrl_.cache.invalidate();
  addr_.pooled = nullptr;
  data_.pooled = nullptr;
  ctrl_.pooled = nullptr;
  addr_.nominal = true;
  data_.nominal = true;
  ctrl_.nominal = true;
}

void System::set_forced_maf(std::optional<ForcedMaf> f) {
  forced_ = f;
  for (BusChannel* ch : {&addr_, &data_, &ctrl_}) {
    ch->cache.invalidate();
    ch->warm.invalidate();
    for (auto& [key, entry] : ch->pool) entry.cache.invalidate();
  }
}

CacheCounters System::transition_cache_counters() const {
  CacheCounters c = retired_;
  for (const BusChannel* ch : {&addr_, &data_, &ctrl_}) {
    c.hits += ch->cache.hits() + ch->warm.hits();
    c.misses += ch->cache.misses() + ch->warm.misses();
    for (const auto& [key, entry] : ch->pool) {
      c.hits += entry.cache.hits();
      c.misses += entry.cache.misses();
    }
  }
  return c;
}

xtalk::TransitionCache* System::active_cache(BusChannel& channel) {
  if (!use_cache_) return nullptr;
  if (channel.pooled != nullptr) return &channel.pooled->cache;
  if (exec_tier_ != cpu::ExecTier::kReference && channel.nominal)
    return &channel.warm;
  return &channel.cache;
}

void System::attach_mmio(cpu::Addr base, cpu::Addr size, MmioDevice* device) {
  mmio_.push_back({base, size, device});
}

void System::load_and_reset(const cpu::MemoryImage& image, cpu::Addr entry) {
  memory_.load(image);
  addr_bus_.reset();
  data_bus_.reset();
  ctrl_bus_.reset();
  cpu_.reset(entry);
  if (exec_tier_ != cpu::ExecTier::kReference) {
    // Pre-decode (or reuse) the micro-op table.  An injected decode
    // failure degrades this system to the reference interpreter for the
    // coming run instead of erroring the defect (site "cpu.decode").
    if (util::FaultInjector::global().fire("cpu.decode")) {
      micro_.reset();
    } else if (prefetched_micro_ != nullptr) {
      // Campaign fast path: the caller pinned the pre-decode for the
      // image it keeps reloading, so skip re-validating all 4K bytes.  A
      // wrong pin is safe -- every fetched byte is checked against the
      // stored micro-op at execution time and a mismatch bails the run
      // out to the reference interpreter -- it only costs speed.
      micro_ = prefetched_micro_;
      ++tier_.decode_cache_hits;
    } else if (micro_ != nullptr && micro_->matches(image)) {
      ++tier_.decode_cache_hits;  // same program as the previous load
    } else {
      bool built = false;
      micro_ = cpu::DecodeCache::global().obtain(image, &built);
      if (built)
        ++tier_.decoded_programs;
      else
        ++tier_.decode_cache_hits;
    }
  }
}

SliceState System::save_slice() const {
  SliceState s;
  s.cpu = cpu_.state();
  s.memory = memory_.raw();
  s.addr_held = addr_bus_.held();
  s.data_held = data_bus_.held();
  s.ctrl_held = ctrl_bus_.held();
  s.micro = micro_;
  return s;
}

void System::restore_slice(const SliceState& state) {
  memory_.restore_raw(state.memory);
  addr_bus_.restore_held(state.addr_held);
  data_bus_.restore_held(state.data_held);
  ctrl_bus_.restore_held(state.ctrl_held);
  cpu_.restore(state.cpu);
  // Re-pin the slice's pre-decode so the resumed run stays decoded-tier
  // eligible.  A stale table is safe: every fetched byte is checked
  // against it at execution time (a mismatch bails to the reference
  // interpreter), exactly as for set_micro_program.
  if (exec_tier_ != cpu::ExecTier::kReference) micro_ = state.micro;
}

RunResult System::run(std::uint64_t max_cycles) {
  if (exec_tier_ != cpu::ExecTier::kReference) return run_tiered(max_cycles);
  cpu_.run(max_cycles);
  return {cpu_.cycles(), cpu_.halted(), cpu_.halt_reason()};
}

util::BusWord System::apply_bus(TristateBus& bus, BusChannel& channel,
                                const xtalk::CrosstalkErrorModel& model,
                                util::BusWord driven,
                                xtalk::BusDirection direction) {
  const xtalk::VectorPair pair{bus.held(), driven};
  util::BusWord received =
      fast_receive_
          ? bus.transfer(driven, channel.active_eval(), active_cache(channel))
          : bus.transfer(driven, &channel.net, &model);
  if (forced_ && forced_->bus == bus.kind() &&
      forced_->fault.direction == direction &&
      xtalk::fully_excites(forced_->fault, pair)) {
    received = xtalk::faulty_v2(forced_->fault, pair);
  }
  if (trace_ != nullptr) {
    trace_->record(BusEvent{cpu_.cycles(), bus.kind(), direction, driven,
                            received, received != driven});
  }
  return received;
}

cpu::Addr System::send_address(cpu::Addr addr) {
  const util::BusWord received =
      apply_bus(addr_bus_, addr_, addr_model_,
                util::BusWord(cpu::kAddrBits, addr),
                xtalk::BusDirection::kCpuToCore);
  return static_cast<cpu::Addr>(received.bits());
}

std::uint8_t System::send_data(std::uint8_t byte,
                               xtalk::BusDirection direction) {
  const util::BusWord received =
      apply_bus(data_bus_, data_, data_model_,
                util::BusWord(cpu::kDataBits, byte), direction);
  return static_cast<std::uint8_t>(received.bits());
}

ControlView System::send_control(bool write) {
  const util::BusWord received =
      apply_bus(ctrl_bus_, ctrl_, ctrl_model_, control_word(write),
                xtalk::BusDirection::kCpuToCore);
  return ControlView(received);
}

System::MmioWindow* System::window_at(cpu::Addr addr) {
  for (auto& w : mmio_)
    if (addr >= w.base && addr < static_cast<cpu::Addr>(w.base + w.size))
      return &w;
  return nullptr;
}

std::uint8_t System::core_read(cpu::Addr addr) {
  if (MmioWindow* w = window_at(addr))
    return w->device->read(static_cast<cpu::Addr>(addr - w->base));
  return memory_.read(addr);
}

void System::core_write(cpu::Addr addr, std::uint8_t data) {
  if (MmioWindow* w = window_at(addr)) {
    w->device->write(static_cast<cpu::Addr>(addr - w->base), data);
    return;
  }
  memory_.write(addr, data);
}

std::uint8_t System::read(cpu::Addr addr) {
  // CPU drives the address and control buses; the addressed core sees the
  // (possibly corrupted) words and answers on the data bus.
  const cpu::Addr seen = send_address(addr);
  const ControlView ctrl = send_control(/*write=*/false);
  if (!ctrl.cs) {
    // No core selected: nothing drives the data bus; the CPU samples the
    // held (floating) word.
    return static_cast<std::uint8_t>(data_bus_.held().bits());
  }
  if (ctrl.wr) {
    // Spurious write: a WR glitch during a read captures whatever the
    // floating data bus holds -- destructive.
    core_write(seen, static_cast<std::uint8_t>(data_bus_.held().bits()));
  }
  if (!ctrl.rd) {
    // Dropped read strobe: the core never drives; floating value sampled.
    return static_cast<std::uint8_t>(data_bus_.held().bits());
  }
  const std::uint8_t byte = core_read(seen);
  return send_data(byte, xtalk::BusDirection::kCoreToCpu);
}

void System::write(cpu::Addr addr, std::uint8_t data) {
  const cpu::Addr seen = send_address(addr);
  const ControlView ctrl = send_control(/*write=*/true);
  // The CPU drives the data bus regardless of what the core received.
  const std::uint8_t byte = send_data(data, xtalk::BusDirection::kCpuToCore);
  // A dropped WR (or CS) loses the store; a spurious RD during a write is
  // a transient bus contention with no architectural effect here.
  if (ctrl.cs && ctrl.wr) core_write(seen, byte);
}

void System::internal_cycle() {
  // Buses hold their last driven values; nothing to evaluate.
}

}  // namespace xtest::soc
