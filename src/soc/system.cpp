#include "soc/system.h"

namespace xtest::soc {

namespace {

/// Calibrated thresholds with the sampling slack stretched by the clock
/// scale (a slower clock tolerates proportionally slower transitions).
xtalk::ErrorModelConfig scaled_calibration(const xtalk::RcNetwork& nominal,
                                           double cth, double clock_scale) {
  xtalk::ErrorModelConfig cfg =
      xtalk::ErrorModelConfig::calibrated(nominal, cth);
  cfg.delay_slack_ns *= clock_scale;
  return cfg;
}

xtalk::TransitionCache make_cache(bool enabled, unsigned width) {
  if (!enabled || !xtalk::TransitionCache::cacheable(width))
    return xtalk::TransitionCache{};
  return xtalk::TransitionCache{width};
}

}  // namespace

System::System(const SystemConfig& config)
    : nominal_addr_net_(config.address_geometry),
      nominal_data_net_(config.data_geometry),
      nominal_ctrl_net_(config.control_geometry),
      addr_cth_(xtalk::recommended_cth(nominal_addr_net_, config.cth_ratio)),
      data_cth_(xtalk::recommended_cth(nominal_data_net_, config.cth_ratio)),
      ctrl_cth_(xtalk::recommended_cth(nominal_ctrl_net_, config.cth_ratio)),
      addr_model_(scaled_calibration(nominal_addr_net_, addr_cth_,
                                     config.clock_period_scale)),
      data_model_(scaled_calibration(nominal_data_net_, data_cth_,
                                     config.clock_period_scale)),
      ctrl_model_(scaled_calibration(nominal_ctrl_net_, ctrl_cth_,
                                     config.clock_period_scale)),
      fast_receive_(config.fast_receive),
      use_cache_(config.transition_cache),
      nominal_addr_eval_(nominal_addr_net_, addr_model_.config()),
      nominal_data_eval_(nominal_data_net_, data_model_.config()),
      nominal_ctrl_eval_(nominal_ctrl_net_, ctrl_model_.config()),
      addr_{nominal_addr_net_, nominal_addr_eval_,
            make_cache(use_cache_, nominal_addr_net_.width())},
      data_{nominal_data_net_, nominal_data_eval_,
            make_cache(use_cache_, nominal_data_net_.width())},
      ctrl_{nominal_ctrl_net_, nominal_ctrl_eval_,
            make_cache(use_cache_, nominal_ctrl_net_.width())} {}

void System::set_network(BusChannel& channel,
                         const xtalk::CrosstalkErrorModel& model,
                         xtalk::RcNetwork net) {
  channel.net = std::move(net);
  channel.eval = xtalk::BusEvaluator(channel.net, model.config());
  channel.cache.invalidate();
}

void System::set_address_network(xtalk::RcNetwork net) {
  set_network(addr_, addr_model_, std::move(net));
}

void System::set_data_network(xtalk::RcNetwork net) {
  set_network(data_, data_model_, std::move(net));
}

void System::set_control_network(xtalk::RcNetwork net) {
  set_network(ctrl_, ctrl_model_, std::move(net));
}

void System::clear_defects() {
  addr_.net = nominal_addr_net_;
  data_.net = nominal_data_net_;
  ctrl_.net = nominal_ctrl_net_;
  addr_.eval = nominal_addr_eval_;
  data_.eval = nominal_data_eval_;
  ctrl_.eval = nominal_ctrl_eval_;
  addr_.cache.invalidate();
  data_.cache.invalidate();
  ctrl_.cache.invalidate();
}

void System::set_forced_maf(std::optional<ForcedMaf> f) {
  forced_ = f;
  addr_.cache.invalidate();
  data_.cache.invalidate();
  ctrl_.cache.invalidate();
}

CacheCounters System::transition_cache_counters() const {
  CacheCounters c;
  for (const BusChannel* ch : {&addr_, &data_, &ctrl_}) {
    c.hits += ch->cache.hits();
    c.misses += ch->cache.misses();
  }
  return c;
}

void System::attach_mmio(cpu::Addr base, cpu::Addr size, MmioDevice* device) {
  mmio_.push_back({base, size, device});
}

void System::load_and_reset(const cpu::MemoryImage& image, cpu::Addr entry) {
  memory_.load(image);
  addr_bus_.reset();
  data_bus_.reset();
  ctrl_bus_.reset();
  cpu_.reset(entry);
}

RunResult System::run(std::uint64_t max_cycles) {
  cpu_.run(max_cycles);
  return {cpu_.cycles(), cpu_.halted(), cpu_.halt_reason()};
}

util::BusWord System::apply_bus(TristateBus& bus, BusChannel& channel,
                                const xtalk::CrosstalkErrorModel& model,
                                util::BusWord driven,
                                xtalk::BusDirection direction) {
  const xtalk::VectorPair pair{bus.held(), driven};
  util::BusWord received =
      fast_receive_
          ? bus.transfer(driven, &channel.eval,
                         use_cache_ ? &channel.cache : nullptr)
          : bus.transfer(driven, &channel.net, &model);
  if (forced_ && forced_->bus == bus.kind() &&
      forced_->fault.direction == direction &&
      xtalk::fully_excites(forced_->fault, pair)) {
    received = xtalk::faulty_v2(forced_->fault, pair);
  }
  if (trace_ != nullptr) {
    trace_->record(BusEvent{cpu_.cycles(), bus.kind(), direction, driven,
                            received, received != driven});
  }
  return received;
}

cpu::Addr System::send_address(cpu::Addr addr) {
  const util::BusWord received =
      apply_bus(addr_bus_, addr_, addr_model_,
                util::BusWord(cpu::kAddrBits, addr),
                xtalk::BusDirection::kCpuToCore);
  return static_cast<cpu::Addr>(received.bits());
}

std::uint8_t System::send_data(std::uint8_t byte,
                               xtalk::BusDirection direction) {
  const util::BusWord received =
      apply_bus(data_bus_, data_, data_model_,
                util::BusWord(cpu::kDataBits, byte), direction);
  return static_cast<std::uint8_t>(received.bits());
}

ControlView System::send_control(bool write) {
  const util::BusWord received =
      apply_bus(ctrl_bus_, ctrl_, ctrl_model_, control_word(write),
                xtalk::BusDirection::kCpuToCore);
  return ControlView(received);
}

System::MmioWindow* System::window_at(cpu::Addr addr) {
  for (auto& w : mmio_)
    if (addr >= w.base && addr < static_cast<cpu::Addr>(w.base + w.size))
      return &w;
  return nullptr;
}

std::uint8_t System::core_read(cpu::Addr addr) {
  if (MmioWindow* w = window_at(addr))
    return w->device->read(static_cast<cpu::Addr>(addr - w->base));
  return memory_.read(addr);
}

void System::core_write(cpu::Addr addr, std::uint8_t data) {
  if (MmioWindow* w = window_at(addr)) {
    w->device->write(static_cast<cpu::Addr>(addr - w->base), data);
    return;
  }
  memory_.write(addr, data);
}

std::uint8_t System::read(cpu::Addr addr) {
  // CPU drives the address and control buses; the addressed core sees the
  // (possibly corrupted) words and answers on the data bus.
  const cpu::Addr seen = send_address(addr);
  const ControlView ctrl = send_control(/*write=*/false);
  if (!ctrl.cs) {
    // No core selected: nothing drives the data bus; the CPU samples the
    // held (floating) word.
    return static_cast<std::uint8_t>(data_bus_.held().bits());
  }
  if (ctrl.wr) {
    // Spurious write: a WR glitch during a read captures whatever the
    // floating data bus holds -- destructive.
    core_write(seen, static_cast<std::uint8_t>(data_bus_.held().bits()));
  }
  if (!ctrl.rd) {
    // Dropped read strobe: the core never drives; floating value sampled.
    return static_cast<std::uint8_t>(data_bus_.held().bits());
  }
  const std::uint8_t byte = core_read(seen);
  return send_data(byte, xtalk::BusDirection::kCoreToCpu);
}

void System::write(cpu::Addr addr, std::uint8_t data) {
  const cpu::Addr seen = send_address(addr);
  const ControlView ctrl = send_control(/*write=*/true);
  // The CPU drives the data bus regardless of what the core received.
  const std::uint8_t byte = send_data(data, xtalk::BusDirection::kCpuToCore);
  // A dropped WR (or CS) loses the store; a spurious RD during a write is
  // a transient bus contention with no architectural effect here.
  if (ctrl.cs && ctrl.wr) core_write(seen, byte);
}

void System::internal_cycle() {
  // Buses hold their last driven values; nothing to evaluate.
}

}  // namespace xtest::soc
