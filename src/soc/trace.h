// Bus transaction tracing.
//
// Records every bus transfer (cycle, bus, direction, driven word, received
// word).  Used to regenerate the paper's Fig. 5 timing diagram, to debug
// test programs, and by tests that assert on exact transition sequences.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soc/bus.h"
#include "util/bitvec.h"
#include "xtalk/maf.h"

namespace xtest::soc {

struct BusEvent {
  std::uint64_t cycle = 0;
  BusKind bus = BusKind::kAddress;
  xtalk::BusDirection direction = xtalk::BusDirection::kCpuToCore;
  util::BusWord driven;
  util::BusWord received;
  bool corrupted = false;  ///< received != driven

  std::string to_string() const;
};

class BusTrace {
 public:
  void record(BusEvent e) { events_.push_back(std::move(e)); }
  void clear() { events_.clear(); }

  const std::vector<BusEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Events on one bus only, in order.
  std::vector<BusEvent> on_bus(BusKind k) const;

  /// Multi-line rendering (one line per event).
  std::string render() const;

 private:
  std::vector<BusEvent> events_;
};

}  // namespace xtest::soc
