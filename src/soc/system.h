// The CPU-memory system of Section 4, with crosstalk-aware buses.
//
// Wires together: the PARWAN-style core, the 4K memory, optional
// memory-mapped peripheral cores, a 12-bit unidirectional address bus, an
// 8-bit bidirectional data bus, and the 3-wire RD/WR/CS control bus (the
// paper's deferred "future study").  Every bus transaction runs through
// the high-level crosstalk error model against the bus's current RC
// network; injecting a defect is replacing a network with its perturbed
// version.
//
// Forced-MAF injection (ideal single-fault behaviour, used to verify that
// a generated test actually observes its target fault) corrupts a transfer
// exactly when the transition fully excites the forced fault -- the MA
// pair is the unique such transition.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include <cstddef>
#include <memory>
#include <unordered_map>

#include "cpu/cpu.h"
#include "cpu/memory_image.h"
#include "cpu/microcode.h"
#include "soc/bus.h"
#include "soc/exec_tier.h"
#include "soc/control.h"
#include "soc/memory.h"
#include "soc/mmio.h"
#include "soc/trace.h"
#include "xtalk/defect.h"
#include "xtalk/electrical.h"
#include "xtalk/error_model.h"
#include "xtalk/maf.h"
#include "xtalk/rc_network.h"

namespace xtest::soc {

struct SystemConfig {
  xtalk::BusGeometry address_geometry{.width = cpu::kAddrBits};
  xtalk::BusGeometry data_geometry{.width = cpu::kDataBits};
  xtalk::BusGeometry control_geometry{.width = kControlBits};
  /// Cth = ratio * max nominal net coupling; calibrates the error-model
  /// thresholds and is the defect-library acceptance threshold.
  double cth_ratio = 1.6;
  /// Clock-period multiplier relative to the rated (at-speed) clock.
  /// 1.0 = normal operational speed; larger values model a slow external
  /// tester clocking the system below speed: the sampling slack grows
  /// proportionally and marginal delay defects stop being observable --
  /// the paper's core argument for at-speed self-test (Section 1).
  double clock_period_scale = 1.0;
  /// Hot-path controls.  Both paths produce bit-identical received words
  /// (tests/test_fastpath.cpp); `false` selects the reference evaluation
  /// for equivalence testing.
  bool fast_receive = true;      ///< precomputed per-defect BusEvaluator
  bool transition_cache = true;  ///< memoize (held, driven) per defect
  /// Execution tier (cpu/microcode.h).  "decoded" pre-decodes the program
  /// into a micro-op array and runs a fused dispatch loop; "jit"
  /// additionally compiles straight-line blocks to native code.  Every
  /// tier produces bitwise-identical results (tests/test_exec_tier.cpp);
  /// runs that an accelerated tier cannot prove equivalent -- corrupted or
  /// self-modified instruction fetches, forced MAFs, traces, MMIO windows
  /// -- fall back to the reference interpreter.  Mid-program resumes from
  /// a SliceState stay decoded: the pre-decoded program travels with the
  /// slice and the per-fetch guard re-validates it.
  cpu::ExecTier exec_tier = cpu::ExecTier::kDecoded;
  /// Electrical backend of every bus receiver (xtalk/electrical.h).  The
  /// default full-swing backend reproduces the paper's calibration
  /// bit-for-bit; low-swing recalibrates the thresholds for a reduced
  /// swing with a level restorer.
  xtalk::ElectricalConfig electrical;

  bool operator==(const SystemConfig&) const = default;
};

/// Transition-cache counters summed over a system's three buses.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Execution-tier counters (all zero on the reference tier).
struct TierCounters {
  std::uint64_t decoded_programs = 0;   ///< pre-decode passes performed
  std::uint64_t decode_cache_hits = 0;  ///< pre-decodes reused from a memo
  std::uint64_t jit_blocks = 0;         ///< straight-line blocks compiled
  std::uint64_t jit_bailouts = 0;       ///< runs degraded to a slower tier
};

struct RunResult {
  std::uint64_t cycles = 0;
  bool halted = false;
  cpu::HaltReason reason = cpu::HaltReason::kRunning;
};

/// Ideal single-MAF fault for test verification.
struct ForcedMaf {
  soc::BusKind bus;
  xtalk::MafFault fault;
};

/// Complete architectural snapshot of a suspended program: CPU registers,
/// the 4K memory, and the held word of each tri-state bus.  restore_slice
/// reinstates all of it, so execution resumed from a SliceState forms
/// exactly the bus transitions the uninterrupted run would have formed --
/// the invariant the slice property tests pin down.  The pre-decoded micro
/// program rides along so a resumed slice stays decoded-tier eligible.
struct SliceState {
  cpu::CpuState cpu;
  std::array<std::uint8_t, cpu::kMemWords> memory{};
  util::BusWord addr_held = util::BusWord::zeros(cpu::kAddrBits);
  util::BusWord data_held = util::BusWord::zeros(cpu::kDataBits);
  util::BusWord ctrl_held = util::BusWord::zeros(kControlBits);
  std::shared_ptr<const cpu::MicroProgram> micro;
};

class System : public cpu::BusPort {
 public:
  explicit System(const SystemConfig& config = {});
  ~System() override;

  // --- configuration -----------------------------------------------------
  const xtalk::RcNetwork& nominal_address_network() const {
    return nominal_addr_net_;
  }
  const xtalk::RcNetwork& nominal_data_network() const {
    return nominal_data_net_;
  }
  const xtalk::RcNetwork& nominal_control_network() const {
    return nominal_ctrl_net_;
  }
  double address_cth() const { return addr_cth_; }
  double data_cth() const { return data_cth_; }
  double control_cth() const { return ctrl_cth_; }
  const xtalk::CrosstalkErrorModel& address_model() const {
    return addr_model_;
  }
  const xtalk::CrosstalkErrorModel& data_model() const { return data_model_; }
  const xtalk::CrosstalkErrorModel& control_model() const {
    return ctrl_model_;
  }

  /// Defect injection: replace a bus's RC network (pass the defect-applied
  /// network).  Rebuilds the bus's fast evaluator and invalidates its
  /// transition cache.  `clear_defects` restores all nominals.
  void set_address_network(xtalk::RcNetwork net);
  void set_data_network(xtalk::RcNetwork net);
  void set_control_network(xtalk::RcNetwork net);
  void clear_defects();

  /// Forcing (or clearing) an ideal MAF invalidates the transition caches:
  /// cached entries hold the *model* result, and belt-and-suspenders
  /// invalidation keeps every cached word derivable from current state.
  void set_forced_maf(std::optional<ForcedMaf> f);

  /// Transition-cache hits/misses accumulated over all three buses since
  /// construction (0/0 when the cache is disabled).
  CacheCounters transition_cache_counters() const;

  cpu::ExecTier exec_tier() const { return exec_tier_; }

  /// Execution-tier counters accumulated since construction.
  TierCounters tier_counters() const { return tier_; }

  /// Pins a pre-decoded micro program for the image this system is about
  /// to keep reloading (a campaign runs one program across every defect).
  /// load_and_reset then reuses it without re-validating the image: a
  /// stale pin is safe -- execution checks every fetched byte and bails
  /// out to the reference interpreter on mismatch -- it only costs speed.
  /// Pass nullptr to restore per-load validation.
  void set_micro_program(std::shared_ptr<const cpu::MicroProgram> p) {
    prefetched_micro_ = std::move(p);
  }

  /// Attach a peripheral core at [base, base+size).  The window shadows
  /// memory for CPU accesses.
  void attach_mmio(cpu::Addr base, cpu::Addr size, MmioDevice* device);

  /// Detaches every MMIO window (the interleaved scheduler swaps windows
  /// between the functional and the test context).  Detaching makes a
  /// traceless run decoded-tier eligible again.
  void clear_mmio() { mmio_.clear(); }

  void set_trace(BusTrace* trace) { trace_ = trace; }

  // --- slicing -------------------------------------------------------------

  /// Captures the architectural state of the (suspended) program: CPU
  /// registers, memory, bus held words, and the current pre-decode.
  SliceState save_slice() const;

  /// Reinstates a captured state.  Execution continued with run() is
  /// bitwise-identical to the run that never stopped: the defect channels,
  /// caches, and counters are deliberately NOT part of the state -- they
  /// belong to the simulator, not to the suspended program.
  void restore_slice(const SliceState& state);

  // --- operation ----------------------------------------------------------
  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  cpu::Cpu& processor() { return cpu_; }
  const cpu::Cpu& processor() const { return cpu_; }

  /// Tester action: load a program image and reset into it.
  void load_and_reset(const cpu::MemoryImage& image, cpu::Addr entry);

  /// Runs until HLT/illegal or the cycle cap.  At-speed self-test phase.
  RunResult run(std::uint64_t max_cycles);

  // --- cpu::BusPort -------------------------------------------------------
  std::uint8_t read(cpu::Addr addr) override;
  void write(cpu::Addr addr, std::uint8_t data) override;
  void internal_cycle() override;

 private:
  struct MmioWindow {
    cpu::Addr base;
    cpu::Addr size;
    MmioDevice* device;
  };

  /// Address-bus transfer (CPU drives); returns address memory receives.
  cpu::Addr send_address(cpu::Addr addr);
  /// Data-bus transfer; returns the byte the receiver samples.
  std::uint8_t send_data(std::uint8_t byte, xtalk::BusDirection direction);
  /// Control-bus transfer (CPU drives); returns the word memory receives.
  ControlView send_control(bool write);

  /// One defect's evaluation state parked for reuse.  Both the evaluator
  /// and the transition memo are pure functions of the perturbed
  /// capacitances, so when a campaign pass (or a later session) re-applies
  /// the same defect, an exact content match revives them with every
  /// cached entry intact.  `caps` holds the raw capacitances for that
  /// exact match -- the pool key is only a content hash.
  struct PooledDefect {
    std::vector<double> caps;
    xtalk::BusEvaluator eval;
    xtalk::TransitionCache cache;
  };

  /// One bus's active evaluation state: the defect-applied network, its
  /// precomputed fast evaluator, and the per-defect transition memo.  On
  /// accelerated tiers `warm` is a second, long-lived memo used only
  /// while the channel is nominal: a campaign perturbs one bus per
  /// defect, so the other two re-evaluate the same nominal transitions on
  /// every run, and clear_defects() deliberately leaves `warm` intact
  /// (its entries are pure functions of the immutable nominal evaluator;
  /// forced-MAF overrides are applied after the transfer, so cached words
  /// never embed them).  `pool` extends the same idea to defect state:
  /// accelerated tiers serve the evaluator and memo of a re-applied
  /// defect from the pool (`pooled` non-null) instead of rebuilding them.
  struct BusChannel {
    xtalk::RcNetwork net;
    xtalk::BusEvaluator eval;
    xtalk::TransitionCache cache;
    xtalk::TransitionCache warm;
    bool nominal = true;
    std::unordered_map<std::uint64_t, PooledDefect> pool;
    PooledDefect* pooled = nullptr;

    const xtalk::BusEvaluator* active_eval() const {
      return pooled != nullptr ? &pooled->eval : &eval;
    }
  };

  util::BusWord apply_bus(TristateBus& bus, BusChannel& channel,
                          const xtalk::CrosstalkErrorModel& model,
                          util::BusWord driven, xtalk::BusDirection direction);

  void set_network(BusChannel& channel, const xtalk::CrosstalkErrorModel& model,
                   xtalk::RcNetwork net);

  std::uint8_t core_read(cpu::Addr addr);
  void core_write(cpu::Addr addr, std::uint8_t data);
  MmioWindow* window_at(cpu::Addr addr);

  /// Finds (exact capacitance match) or creates the pool entry for the
  /// network currently installed in `channel`.
  PooledDefect* pool_entry(BusChannel& channel,
                           const xtalk::CrosstalkErrorModel& model);
  /// Retires every pooled cache's counters into `retired_` and empties
  /// the pool (capacity cap, forced-MAF belt-and-suspenders).
  void flush_pool(BusChannel& channel);

  /// The memo a transfer on `channel` consults: the persistent nominal
  /// memo on accelerated tiers while the channel is nominal, else the
  /// per-defect cache; null when caching is disabled.
  xtalk::TransitionCache* active_cache(BusChannel& channel);

  /// Accelerated executors (soc/exec_tier.cpp).  run_tiered dispatches a
  /// decoded-tier-eligible run to the fused micro-op loop (optionally
  /// through JIT-compiled blocks) and finishes any bailed-out run on the
  /// reference interpreter.
  RunResult run_tiered(std::uint64_t max_cycles);

  xtalk::RcNetwork nominal_addr_net_;
  xtalk::RcNetwork nominal_data_net_;
  xtalk::RcNetwork nominal_ctrl_net_;
  double addr_cth_;
  double data_cth_;
  double ctrl_cth_;
  xtalk::CrosstalkErrorModel addr_model_;
  xtalk::CrosstalkErrorModel data_model_;
  xtalk::CrosstalkErrorModel ctrl_model_;
  bool fast_receive_;
  bool use_cache_;
  // Nominal evaluators, prebuilt so clear_defects (once per defect in a
  // campaign) restores them by copy instead of re-deriving rows.
  xtalk::BusEvaluator nominal_addr_eval_;
  xtalk::BusEvaluator nominal_data_eval_;
  xtalk::BusEvaluator nominal_ctrl_eval_;
  BusChannel addr_;  // active (possibly defect-applied)
  BusChannel data_;
  BusChannel ctrl_;

  TristateBus addr_bus_{BusKind::kAddress, cpu::kAddrBits};
  TristateBus data_bus_{BusKind::kData, cpu::kDataBits};
  TristateBus ctrl_bus_{BusKind::kControl, kControlBits};
  Memory memory_;
  std::vector<MmioWindow> mmio_;
  cpu::Cpu cpu_{*this};
  BusTrace* trace_ = nullptr;
  std::optional<ForcedMaf> forced_;

  cpu::ExecTier exec_tier_;
  CacheCounters retired_;  // counters of evicted pooled caches
  std::shared_ptr<const cpu::MicroProgram> micro_;  // pre-decode of memory_
  std::shared_ptr<const cpu::MicroProgram> prefetched_micro_;  // pinned
  TierCounters tier_;
  std::unique_ptr<ExecTierJit> jit_;
};

}  // namespace xtest::soc
