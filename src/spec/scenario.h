// Declarative scenario layer: one spec to drive system, campaign, bench,
// and CLI.
//
// The paper's experiments are a family of *configurations* -- bus
// geometries, Cth ratio, clock-period scaling, defect-library parameters,
// test-program selection (Sections 4-5) -- and before this layer every
// consumer (CLI subcommands, 18 bench binaries, the examples, dozens of
// tests) rebuilt its configuration by hand.  A ScenarioSpec is the single
// value type that fully describes one experiment; consumers materialize
// the pieces they need (system, defect library, program sessions,
// campaign options) from it instead of hand-assembling them.
//
// Scenarios have a line-oriented `key = value` text format:
//
//   # comment
//   name = paper-baseline
//   bus = addr
//   defects = 1000
//   address.wire_length_um = 2000
//   campaign.threads = 4
//
// Unset keys keep their defaults, so a scenario file only states what it
// changes.  serialize_scenario emits every key and parse round-trips it
// exactly: parse_scenario(serialize_scenario(s)) == s for every valid
// spec.  Malformed input fails loudly with the offending 1-based line
// number; the CLI maps SpecParseError to its usage exit code (2) and
// missing files to its I/O exit code (3), reusing the PR 2 taxonomy.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sbst/generator.h"
#include "sim/campaign.h"
#include "soc/online.h"
#include "soc/system.h"
#include "util/parallel.h"
#include "xtalk/defect.h"

namespace xtest::spec {

/// Malformed scenario text: unknown key, unparsable value, duplicate key.
/// `line` is the offending 1-based line number (0 = whole-document error,
/// e.g. a validation failure).
struct SpecParseError : std::runtime_error {
  SpecParseError(int line_no, const std::string& message)
      : std::runtime_error(line_no > 0 ? "scenario line " +
                                             std::to_string(line_no) + ": " +
                                             message
                                       : "scenario: " + message),
        line(line_no) {}
  int line;
};

/// Scenario file that cannot be read (distinct from malformed content so
/// the CLI can keep its usage-vs-I/O exit-code split).
struct SpecIoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One fully-described experiment.  Field defaults ARE the paper baseline:
/// a default-constructed ScenarioSpec reproduces the hard-coded
/// configuration every consumer used before this layer existed.
struct ScenarioSpec {
  std::string name = "custom";
  std::string description;

  /// Bus under test for the defect campaign.
  soc::BusKind bus = soc::BusKind::kAddress;

  // Defect-library generation (Fig. 10): count, Gaussian sigma, seed.
  // Acceptance happens at the system's calibrated Cth for `bus`.
  std::size_t defect_count = 200;
  std::uint64_t seed = 20010618;
  double sigma_pct = 50.0;

  /// Electrical configuration: geometries, cth_ratio, clock_period_scale,
  /// and the hot-path knobs (fast_receive / transition_cache).
  soc::SystemConfig system;

  /// SBST program selection: bus/test-kind groups, placement order,
  /// compaction group size, usable address space.
  sbst::GeneratorConfig program;

  /// Session splitting (Section 5).  `multi_session = false` runs the
  /// single greedy session only.
  bool multi_session = true;
  int max_sessions = 6;

  // Campaign scheduling and resilience (sim::CampaignOptions).
  std::uint64_t cycle_factor = 16;
  unsigned threads = 0;  ///< 0 = auto ($XTEST_THREADS / hardware)
  bool retry_errors = true;
  bool reuse_gold = true;
  std::size_t checkpoint_every = 32;
  std::uint64_t defect_deadline_ms = 0;
  /// Transition-major batched pre-screening (CampaignOptions::batched /
  /// batch_size): verdicts are bitwise identical with batching on or off,
  /// at any batch size, so these are pure throughput knobs.
  bool batched = true;
  std::size_t batch_size = 64;
  /// Entry cap applied to the process-wide sim::GoldRunCache before the
  /// campaign runs (LRU eviction beyond it).
  std::size_t gold_cache_capacity = 256;
  /// Also run the hardware-BIST baseline over the same library and report
  /// the coverage comparison (the paper's Section 1 argument).
  bool compare_bist = false;
  /// Multi-process execution (campaign.workers): when > 0 the CLI runs
  /// the campaign under a supervisor with this many crash-isolated worker
  /// processes, each owning shard k of `workers` and its own checkpoint;
  /// 0 = in-process (the default).  Mutually exclusive with a non-trivial
  /// `shard_count` -- a worker IS a shard.
  std::size_t workers = 0;
  /// Shard of the defect library this campaign simulates
  /// (campaign.shard = "K/N", sim::ShardSpec): shard K owns every defect
  /// index congruent to K mod N.  The default 0/1 owns everything.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  /// On-line in-field mode (keys `online.*`, soc::OnlineConfig): when
  /// enabled the campaign interleaves self-test slices with a functional
  /// workload and reports detection latency and MMIO interference
  /// (sim/online.h).  Off by default -- the paper baseline is off-line.
  /// Mutually exclusive with `workers` and a non-trivial shard: the
  /// interleaved schedule is one in-field sequence.
  soc::OnlineConfig online;

  bool operator==(const ScenarioSpec&) const = default;

  // --- materializers -----------------------------------------------------

  /// Defect library for `bus` at the system's calibrated Cth.
  xtalk::DefectLibrary make_library() const;

  /// The self-test program sessions this scenario selects (one session
  /// when `multi_session` is off).
  std::vector<sbst::GenerationResult> make_sessions() const;

  /// Campaign options carrying this scenario's scheduling/resilience
  /// fields.  Checkpointing stays per-run (CLI flag), not per-scenario.
  sim::CampaignOptions campaign_options(util::CampaignStats* stats) const;

  /// Sanity checks a spec must pass before a campaign can run on the
  /// embedded CPU: bus widths must match the architecture (the CPU drives
  /// a 12-bit address / 8-bit data / 3-wire control bus), counts must be
  /// non-zero.  Throws SpecParseError (line 0) naming the violation.
  void validate() const;
};

/// Scenario -> text.  Emits every key in a fixed order, full precision
/// (%.17g for doubles), so parse_scenario round-trips exactly.
std::string serialize_scenario(const ScenarioSpec& spec);

/// Text -> scenario.  Unset keys default; unknown keys, duplicate keys and
/// bad values throw SpecParseError with the 1-based line number.
ScenarioSpec parse_scenario(const std::string& text);

/// Names of the built-in scenarios, in display order.
const std::vector<std::string>& builtin_scenario_names();

/// The built-in with that name, or nullopt.
std::optional<ScenarioSpec> find_builtin(const std::string& name);

/// A built-in by name; throws SpecParseError if it does not exist.  Use
/// this when the name is a compile-time constant (benches, examples).
ScenarioSpec builtin_scenario(const std::string& name);

/// Resolves `name_or_file`: a built-in name wins, otherwise the argument
/// is a scenario file path (SpecIoError when unreadable, SpecParseError
/// when malformed).
ScenarioSpec load_scenario(const std::string& name_or_file);

}  // namespace xtest::spec
