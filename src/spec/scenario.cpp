#include "spec/scenario.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>

#include "cpu/isa.h"
#include "cpu/microcode.h"
#include "sim/gold_cache.h"
#include "soc/control.h"

namespace xtest::spec {

namespace {

// --- value codecs ----------------------------------------------------------
// Every codec either parses the whole value or throws std::invalid_argument
// with a human message; parse_scenario attaches the line number.

std::uint64_t u64_value(const std::string& v) {
  try {
    std::size_t used = 0;
    const unsigned long long n = std::stoull(v, &used, 0);
    if (used != v.size()) throw std::invalid_argument(v);
    return n;
  } catch (const std::exception&) {
    throw std::invalid_argument("not a number: '" + v + "'");
  }
}

double double_value(const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    throw std::invalid_argument("not a number: '" + v + "'");
  return d;
}

bool bool_value(const std::string& v) {
  if (v == "true") return true;
  if (v == "false") return false;
  throw std::invalid_argument("expected true or false, got '" + v + "'");
}

std::string double_text(double d) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

std::string u64_text(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string bool_text(bool b) { return b ? "true" : "false"; }

soc::BusKind bus_value(const std::string& v) {
  if (v == "addr") return soc::BusKind::kAddress;
  if (v == "data") return soc::BusKind::kData;
  if (v == "ctrl") return soc::BusKind::kControl;
  throw std::invalid_argument("expected addr, data or ctrl, got '" + v + "'");
}

std::string bus_text(soc::BusKind b) {
  switch (b) {
    case soc::BusKind::kAddress: return "addr";
    case soc::BusKind::kData: return "data";
    case soc::BusKind::kControl: return "ctrl";
  }
  return "addr";
}

sbst::PlacementOrder order_value(const std::string& v) {
  if (v == "victim-major") return sbst::PlacementOrder::kVictimMajor;
  if (v == "delays-first") return sbst::PlacementOrder::kDelaysFirst;
  if (v == "glitches-first") return sbst::PlacementOrder::kGlitchesFirst;
  if (v == "center-out") return sbst::PlacementOrder::kCenterOut;
  throw std::invalid_argument(
      "expected victim-major, delays-first, glitches-first or center-out, "
      "got '" + v + "'");
}

cpu::ExecTier tier_value(const std::string& v) {
  const std::optional<cpu::ExecTier> tier = cpu::parse_exec_tier(v);
  if (!tier)
    throw std::invalid_argument("expected reference, decoded or jit, got '" +
                                v + "'");
  return *tier;
}

xtalk::ElectricalBackend electrical_value(const std::string& v) {
  // parse_electrical_backend throws invalid_argument with the expected
  // values spelled out; parse_scenario prefixes the key name.
  return xtalk::parse_electrical_backend(v);
}

std::string order_text(sbst::PlacementOrder o) {
  switch (o) {
    case sbst::PlacementOrder::kVictimMajor: return "victim-major";
    case sbst::PlacementOrder::kDelaysFirst: return "delays-first";
    case sbst::PlacementOrder::kGlitchesFirst: return "glitches-first";
    case sbst::PlacementOrder::kCenterOut: return "center-out";
  }
  return "victim-major";
}

// --- key table -------------------------------------------------------------
// One row per key: the serializer walks the table in order, the parser
// looks keys up in it.  A flag can therefore never exist in one direction
// only -- the same table IS the format.

struct KeyDef {
  const char* key;
  std::string (*get)(const ScenarioSpec&);
  void (*set)(ScenarioSpec&, const std::string&);
};

// Geometry keys share their six-field shape across the three buses.
#define XTEST_GEOMETRY_KEYS(prefix, member)                                    \
  KeyDef{prefix ".width",                                                      \
         [](const ScenarioSpec& s) {                                           \
           return u64_text(s.system.member.width);                             \
         },                                                                    \
         [](ScenarioSpec& s, const std::string& v) {                           \
           s.system.member.width = static_cast<unsigned>(u64_value(v));        \
         }},                                                                   \
      KeyDef{prefix ".wire_length_um",                                         \
             [](const ScenarioSpec& s) {                                       \
               return double_text(s.system.member.wire_length_um);             \
             },                                                                \
             [](ScenarioSpec& s, const std::string& v) {                       \
               s.system.member.wire_length_um = double_value(v);               \
             }},                                                               \
      KeyDef{prefix ".coupling_fF_per_um",                                     \
             [](const ScenarioSpec& s) {                                       \
               return double_text(s.system.member.coupling_fF_per_um);         \
             },                                                                \
             [](ScenarioSpec& s, const std::string& v) {                       \
               s.system.member.coupling_fF_per_um = double_value(v);           \
             }},                                                               \
      KeyDef{prefix ".ground_fF_per_um",                                       \
             [](const ScenarioSpec& s) {                                       \
               return double_text(s.system.member.ground_fF_per_um);           \
             },                                                                \
             [](ScenarioSpec& s, const std::string& v) {                       \
               s.system.member.ground_fF_per_um = double_value(v);             \
             }},                                                               \
      KeyDef{prefix ".distance_decay_exponent",                                \
             [](const ScenarioSpec& s) {                                       \
               return double_text(s.system.member.distance_decay_exponent);    \
             },                                                                \
             [](ScenarioSpec& s, const std::string& v) {                       \
               s.system.member.distance_decay_exponent = double_value(v);      \
             }},                                                               \
      KeyDef{prefix ".driver_resistance_ohm",                                  \
             [](const ScenarioSpec& s) {                                       \
               return double_text(s.system.member.driver_resistance_ohm);      \
             },                                                                \
             [](ScenarioSpec& s, const std::string& v) {                       \
               s.system.member.driver_resistance_ohm = double_value(v);        \
             }}

const std::vector<KeyDef>& key_table() {
  static const std::vector<KeyDef> table = {
      {"name", [](const ScenarioSpec& s) { return s.name; },
       [](ScenarioSpec& s, const std::string& v) { s.name = v; }},
      {"description", [](const ScenarioSpec& s) { return s.description; },
       [](ScenarioSpec& s, const std::string& v) { s.description = v; }},
      {"bus", [](const ScenarioSpec& s) { return bus_text(s.bus); },
       [](ScenarioSpec& s, const std::string& v) { s.bus = bus_value(v); }},
      {"defects",
       [](const ScenarioSpec& s) { return u64_text(s.defect_count); },
       [](ScenarioSpec& s, const std::string& v) {
         s.defect_count = static_cast<std::size_t>(u64_value(v));
       }},
      {"seed", [](const ScenarioSpec& s) { return u64_text(s.seed); },
       [](ScenarioSpec& s, const std::string& v) { s.seed = u64_value(v); }},
      {"sigma_pct",
       [](const ScenarioSpec& s) { return double_text(s.sigma_pct); },
       [](ScenarioSpec& s, const std::string& v) {
         s.sigma_pct = double_value(v);
       }},
      {"system.cth_ratio",
       [](const ScenarioSpec& s) { return double_text(s.system.cth_ratio); },
       [](ScenarioSpec& s, const std::string& v) {
         s.system.cth_ratio = double_value(v);
       }},
      {"system.clock_period_scale",
       [](const ScenarioSpec& s) {
         return double_text(s.system.clock_period_scale);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.system.clock_period_scale = double_value(v);
       }},
      {"system.fast_receive",
       [](const ScenarioSpec& s) { return bool_text(s.system.fast_receive); },
       [](ScenarioSpec& s, const std::string& v) {
         s.system.fast_receive = bool_value(v);
       }},
      {"system.transition_cache",
       [](const ScenarioSpec& s) {
         return bool_text(s.system.transition_cache);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.system.transition_cache = bool_value(v);
       }},
      {"system.exec_tier",
       [](const ScenarioSpec& s) {
         return cpu::to_string(s.system.exec_tier);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.system.exec_tier = tier_value(v);
       }},
      {"system.electrical",
       [](const ScenarioSpec& s) {
         return xtalk::to_string(s.system.electrical.backend);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.system.electrical.backend = electrical_value(v);
       }},
      {"system.swing_ratio",
       [](const ScenarioSpec& s) {
         return double_text(s.system.electrical.swing_ratio);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.system.electrical.swing_ratio = double_value(v);
       }},
      {"system.restorer_ratio",
       [](const ScenarioSpec& s) {
         return double_text(s.system.electrical.restorer_ratio);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.system.electrical.restorer_ratio = double_value(v);
       }},
      XTEST_GEOMETRY_KEYS("address", address_geometry),
      XTEST_GEOMETRY_KEYS("data", data_geometry),
      XTEST_GEOMETRY_KEYS("control", control_geometry),
      {"program.address_bus",
       [](const ScenarioSpec& s) {
         return bool_text(s.program.include_address_bus);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.program.include_address_bus = bool_value(v);
       }},
      {"program.data_bus",
       [](const ScenarioSpec& s) {
         return bool_text(s.program.include_data_bus);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.program.include_data_bus = bool_value(v);
       }},
      {"program.order",
       [](const ScenarioSpec& s) { return order_text(s.program.order); },
       [](ScenarioSpec& s, const std::string& v) {
         s.program.order = order_value(v);
       }},
      {"program.data_both_directions",
       [](const ScenarioSpec& s) {
         return bool_text(s.program.data_both_directions);
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.program.data_both_directions = bool_value(v);
       }},
      {"program.group_size",
       [](const ScenarioSpec& s) { return u64_text(s.program.group_size); },
       [](ScenarioSpec& s, const std::string& v) {
         s.program.group_size = static_cast<unsigned>(u64_value(v));
       }},
      {"program.usable_limit",
       [](const ScenarioSpec& s) { return u64_text(s.program.usable_limit); },
       [](ScenarioSpec& s, const std::string& v) {
         s.program.usable_limit = static_cast<cpu::Addr>(u64_value(v));
       }},
      {"sessions.multi",
       [](const ScenarioSpec& s) { return bool_text(s.multi_session); },
       [](ScenarioSpec& s, const std::string& v) {
         s.multi_session = bool_value(v);
       }},
      {"sessions.max",
       [](const ScenarioSpec& s) {
         return u64_text(static_cast<std::uint64_t>(s.max_sessions));
       },
       [](ScenarioSpec& s, const std::string& v) {
         s.max_sessions = static_cast<int>(u64_value(v));
       }},
      {"campaign.cycle_factor",
       [](const ScenarioSpec& s) { return u64_text(s.cycle_factor); },
       [](ScenarioSpec& s, const std::string& v) {
         s.cycle_factor = u64_value(v);
       }},
      {"campaign.threads",
       [](const ScenarioSpec& s) { return u64_text(s.threads); },
       [](ScenarioSpec& s, const std::string& v) {
         s.threads = static_cast<unsigned>(u64_value(v));
       }},
      {"campaign.retry_errors",
       [](const ScenarioSpec& s) { return bool_text(s.retry_errors); },
       [](ScenarioSpec& s, const std::string& v) {
         s.retry_errors = bool_value(v);
       }},
      {"campaign.reuse_gold",
       [](const ScenarioSpec& s) { return bool_text(s.reuse_gold); },
       [](ScenarioSpec& s, const std::string& v) {
         s.reuse_gold = bool_value(v);
       }},
      {"campaign.checkpoint_every",
       [](const ScenarioSpec& s) { return u64_text(s.checkpoint_every); },
       [](ScenarioSpec& s, const std::string& v) {
         s.checkpoint_every = static_cast<std::size_t>(u64_value(v));
       }},
      {"campaign.defect_deadline_ms",
       [](const ScenarioSpec& s) { return u64_text(s.defect_deadline_ms); },
       [](ScenarioSpec& s, const std::string& v) {
         s.defect_deadline_ms = u64_value(v);
       }},
      {"campaign.batched",
       [](const ScenarioSpec& s) { return bool_text(s.batched); },
       [](ScenarioSpec& s, const std::string& v) {
         s.batched = bool_value(v);
       }},
      {"campaign.batch_size",
       [](const ScenarioSpec& s) { return u64_text(s.batch_size); },
       [](ScenarioSpec& s, const std::string& v) {
         s.batch_size = static_cast<std::size_t>(u64_value(v));
       }},
      {"campaign.gold_cache_capacity",
       [](const ScenarioSpec& s) { return u64_text(s.gold_cache_capacity); },
       [](ScenarioSpec& s, const std::string& v) {
         s.gold_cache_capacity = static_cast<std::size_t>(u64_value(v));
       }},
      {"campaign.compare_bist",
       [](const ScenarioSpec& s) { return bool_text(s.compare_bist); },
       [](ScenarioSpec& s, const std::string& v) {
         s.compare_bist = bool_value(v);
       }},
      {"campaign.workers",
       [](const ScenarioSpec& s) { return u64_text(s.workers); },
       [](ScenarioSpec& s, const std::string& v) {
         s.workers = static_cast<std::size_t>(u64_value(v));
       }},
      {"campaign.shard",
       [](const ScenarioSpec& s) {
         return u64_text(s.shard_index) + "/" + u64_text(s.shard_count);
       },
       [](ScenarioSpec& s, const std::string& v) {
         const std::size_t slash = v.find('/');
         if (slash == std::string::npos)
           throw std::invalid_argument("expected K/N, got '" + v + "'");
         s.shard_index =
             static_cast<std::size_t>(u64_value(v.substr(0, slash)));
         s.shard_count =
             static_cast<std::size_t>(u64_value(v.substr(slash + 1)));
       }},
      {"online.enabled",
       [](const ScenarioSpec& s) { return bool_text(s.online.enabled); },
       [](ScenarioSpec& s, const std::string& v) {
         s.online.enabled = bool_value(v);
       }},
      {"online.slice_cycles",
       [](const ScenarioSpec& s) { return u64_text(s.online.slice_cycles); },
       [](ScenarioSpec& s, const std::string& v) {
         s.online.slice_cycles = u64_value(v);
       }},
      {"online.workload_cycles",
       [](const ScenarioSpec& s) { return u64_text(s.online.workload_cycles); },
       [](ScenarioSpec& s, const std::string& v) {
         s.online.workload_cycles = u64_value(v);
       }},
      {"online.deadline_cycles",
       [](const ScenarioSpec& s) { return u64_text(s.online.deadline_cycles); },
       [](ScenarioSpec& s, const std::string& v) {
         s.online.deadline_cycles = u64_value(v);
       }},
  };
  return table;
}

#undef XTEST_GEOMETRY_KEYS

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "# xtest scenario (key = value; unset keys keep their defaults)\n";
  for (const KeyDef& k : key_table()) out << k.key << " = " << k.get(spec)
                                          << "\n";
  return out.str();
}

ScenarioSpec parse_scenario(const std::string& text) {
  ScenarioSpec spec;
  std::set<std::string> seen;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos)
      throw SpecParseError(line_no, "expected 'key = value', got '" +
                                        stripped + "'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty()) throw SpecParseError(line_no, "missing key before '='");
    const KeyDef* def = nullptr;
    for (const KeyDef& k : key_table())
      if (key == k.key) {
        def = &k;
        break;
      }
    if (def == nullptr)
      throw SpecParseError(line_no, "unknown key '" + key + "'");
    if (!seen.insert(key).second)
      throw SpecParseError(line_no, "duplicate key '" + key + "'");
    try {
      def->set(spec, value);
    } catch (const std::invalid_argument& e) {
      throw SpecParseError(line_no, key + ": " + e.what());
    }
  }
  return spec;
}

xtalk::DefectLibrary ScenarioSpec::make_library() const {
  return sim::make_defect_library(system, bus, defect_count, seed, sigma_pct);
}

std::vector<sbst::GenerationResult> ScenarioSpec::make_sessions() const {
  if (!multi_session)
    return {sbst::TestProgramGenerator(program).generate()};
  return sbst::TestProgramGenerator::generate_sessions(program, max_sessions);
}

sim::CampaignOptions ScenarioSpec::campaign_options(
    util::CampaignStats* stats) const {
  sim::GoldRunCache::global().set_capacity(gold_cache_capacity);
  sim::CampaignOptions opts;
  opts.cycle_factor = cycle_factor;
  opts.parallel = {threads};
  opts.stats = stats;
  opts.retry_errors = retry_errors;
  opts.reuse_gold = reuse_gold;
  opts.checkpoint_every = checkpoint_every;
  opts.defect_deadline_ms = defect_deadline_ms;
  opts.batched = batched;
  opts.batch_size = batch_size;
  opts.shard = {shard_index, shard_count};
  return opts;
}

void ScenarioSpec::validate() const {
  const auto check_width = [](const char* which, unsigned got,
                              unsigned expected) {
    if (got != expected)
      throw SpecParseError(
          0, std::string(which) + ".width = " + std::to_string(got) +
                 " does not match the embedded CPU architecture (" +
                 std::to_string(expected) +
                 " wires); the processor can only drive its own buses");
  };
  check_width("address", system.address_geometry.width, cpu::kAddrBits);
  check_width("data", system.data_geometry.width, cpu::kDataBits);
  check_width("control", system.control_geometry.width, soc::kControlBits);
  if (defect_count == 0)
    throw SpecParseError(0, "defects must be positive");
  if (sigma_pct <= 0.0)
    throw SpecParseError(0, "sigma_pct must be positive");
  if (system.cth_ratio <= 0.0)
    throw SpecParseError(0, "system.cth_ratio must be positive");
  if (system.clock_period_scale <= 0.0)
    throw SpecParseError(0, "system.clock_period_scale must be positive");
  if (max_sessions < 1)
    throw SpecParseError(0, "sessions.max must be at least 1");
  if (program.group_size == 0 || program.group_size > 8)
    throw SpecParseError(0, "program.group_size must be in 1..8");
  if (!program.include_address_bus && !program.include_data_bus)
    throw SpecParseError(
        0, "program must include at least one bus (program.address_bus / "
           "program.data_bus)");
  if (cycle_factor == 0)
    throw SpecParseError(0, "campaign.cycle_factor must be positive");
  if (batch_size == 0)
    throw SpecParseError(0, "campaign.batch_size must be at least 1");
  if (shard_count == 0)
    throw SpecParseError(0, "campaign.shard count must be at least 1");
  if (shard_index >= shard_count)
    throw SpecParseError(0, "campaign.shard index " +
                                std::to_string(shard_index) +
                                " out of range for " +
                                std::to_string(shard_count) + " shard(s)");
  if (workers > 0 && shard_count > 1)
    throw SpecParseError(
        0, "campaign.workers and campaign.shard are mutually exclusive (a "
           "worker process is a shard)");
  if (system.electrical.swing_ratio <= 0.0 ||
      system.electrical.swing_ratio > 1.0)
    throw SpecParseError(0, "system.swing_ratio must be in (0, 1]");
  if (system.electrical.restorer_ratio <= 0.0 ||
      system.electrical.restorer_ratio >= 1.0)
    throw SpecParseError(0, "system.restorer_ratio must be in (0, 1)");
  if (online.enabled) {
    // The on-line schedule is one in-field sequence on one chip: no
    // multi-process supervisor, no library sharding, and the BIST baseline
    // (a test-mode comparison) has no interleaved equivalent.
    if (workers > 0)
      throw SpecParseError(
          0, "online.enabled and campaign.workers are mutually exclusive");
    if (shard_count > 1)
      throw SpecParseError(
          0, "online.enabled and campaign.shard are mutually exclusive");
    if (compare_bist)
      throw SpecParseError(
          0, "online.enabled and campaign.compare_bist are mutually "
             "exclusive");
    if (online.slice_cycles == 0)
      throw SpecParseError(0, "online.slice_cycles must be positive");
    if (online.workload_cycles == 0)
      throw SpecParseError(0, "online.workload_cycles must be positive");
    if (online.deadline_cycles == 0)
      throw SpecParseError(0, "online.deadline_cycles must be positive");
  }
}

namespace {

std::vector<ScenarioSpec> make_builtins() {
  std::vector<ScenarioSpec> v;

  {
    // The exact configuration every consumer hard-coded before the spec
    // layer: default electrical parameters, full program set, address bus,
    // 200 defects at the DAC-week seed.  `xtest campaign` with no flags IS
    // this scenario.
    ScenarioSpec s;
    s.name = "paper-baseline";
    s.description =
        "Paper Sections 4-5 baseline: 12-bit address bus campaign, default "
        "geometry, 200 defects, multi-session program set";
    v.push_back(s);
  }
  {
    // A wide global-bus routing corridor: 3.2 mm parallel run with denser
    // neighbour coupling, the electrical environment of a wide (32-bit
    // class) system bus.  The architectural widths stay the CPU's own --
    // the processor can only drive its own buses -- but every wire sees
    // the longer, more strongly coupled route.
    ScenarioSpec s;
    s.name = "wide-bus-32";
    s.description =
        "3.2 mm wide-bus corridor: longer run and denser coupling on all "
        "buses (32-bit-class global route electricals)";
    for (auto* g : {&s.system.address_geometry, &s.system.data_geometry,
                    &s.system.control_geometry}) {
      g->wire_length_um = 3200.0;
      g->coupling_fF_per_um = 0.1;
    }
    v.push_back(s);
  }
  {
    // Section 1's core argument: a slow external tester (clock period
    // scaled up 3x) stretches the sampling slack, so marginal delay
    // defects stop being observable and coverage drops below at-speed.
    ScenarioSpec s;
    s.name = "slow-tester";
    s.description =
        "External low-speed tester: clock period scaled 3x, marginal delay "
        "defects escape (Section 1 at-speed argument)";
    s.system.clock_period_scale = 3.0;
    v.push_back(s);
  }
  {
    // The deferred "future study": the RD/WR/CS control bus, where no MAF
    // is fully excitable in functional mode and detection rides on partial
    // (delay) excitation.
    ScenarioSpec s;
    s.name = "control-bus";
    s.description =
        "Control-bus campaign (RD/WR/CS): partial functional excitation "
        "only (the paper's deferred future study)";
    s.bus = soc::BusKind::kControl;
    v.push_back(s);
  }
  {
    // Section 1 comparison on equal footing: the same library swept by
    // SBST and by a test-mode hardware BIST driving the full MA set.
    ScenarioSpec s;
    s.name = "bist-compare";
    s.description =
        "SBST vs hardware BIST over one 500-defect address-bus library "
        "(coverage + over-testing comparison)";
    s.defect_count = 500;
    s.compare_bist = true;
    v.push_back(s);
  }
  {
    // A full-size Fig. 10 library in one sweep; stresses the campaign
    // engine and the gold/transition caches rather than the method.
    ScenarioSpec s;
    s.name = "stress-1k-defects";
    s.description =
        "Stress sweep: the paper's full 1000-defect library through every "
        "session (campaign-engine and cache stress)";
    s.defect_count = 1000;
    v.push_back(s);
  }
  {
    // On-line in-field mode: the same self-test programs, but sliced and
    // interleaved with a functional MMIO workload.  Reports per-defect
    // detection latency (cycles from activation to first divergence) and
    // the interference the test imposes on the workload's deadlines.
    ScenarioSpec s;
    s.name = "online-baseline";
    s.description =
        "On-line in-field testing: sliced SBST interleaved with a "
        "functional MMIO workload, detection-latency and deadline "
        "interference metrics";
    s.defect_count = 64;
    s.online.enabled = true;
    v.push_back(s);
  }
  {
    // Low-swing signalling on the interconnect: reduced voltage swing with
    // a level restorer at the receiver shrinks noise margins, so the same
    // geometric defect library yields a different (typically larger)
    // detected set than the full-swing baseline.
    ScenarioSpec s;
    s.name = "low-swing-bus";
    s.description =
        "Low-swing interconnect signalling: reduced noise margins via the "
        "low-swing electrical backend (off-line campaign)";
    s.system.electrical.backend = xtalk::ElectricalBackend::kLowSwing;
    v.push_back(s);
  }
  return v;
}

const std::vector<ScenarioSpec>& builtins() {
  static const std::vector<ScenarioSpec> specs = make_builtins();
  return specs;
}

}  // namespace

const std::vector<std::string>& builtin_scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const ScenarioSpec& s : builtins()) n.push_back(s.name);
    return n;
  }();
  return names;
}

std::optional<ScenarioSpec> find_builtin(const std::string& name) {
  for (const ScenarioSpec& s : builtins())
    if (s.name == name) return s;
  return std::nullopt;
}

ScenarioSpec builtin_scenario(const std::string& name) {
  if (std::optional<ScenarioSpec> s = find_builtin(name)) return *s;
  throw SpecParseError(0, "unknown built-in scenario '" + name + "'");
}

ScenarioSpec load_scenario(const std::string& name_or_file) {
  if (std::optional<ScenarioSpec> s = find_builtin(name_or_file)) return *s;
  std::ifstream in(name_or_file);
  if (!in)
    throw SpecIoError("cannot open scenario '" + name_or_file +
                      "' (not a built-in name: see `xtest scenarios`)");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_scenario(ss.str());
}

}  // namespace xtest::spec
