#include "cpu/isa.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace xtest::cpu {

Decoded decode(std::uint8_t byte1) {
  Decoded d;
  const unsigned hi = byte1 >> 4;
  const unsigned lo = byte1 & 0xF;
  if (hi <= 0x9) {
    d.kind = Decoded::Kind::kMemRef;
    d.opcode = static_cast<Opcode>(hi);
    d.page = static_cast<std::uint8_t>(lo);
  } else if (hi == 0xE) {
    d.kind = Decoded::Kind::kBranch;
    d.cond_mask = static_cast<std::uint8_t>(lo);
  } else if (hi == 0xF && lo <= static_cast<unsigned>(SingleOp::kHlt)) {
    d.kind = Decoded::Kind::kSingle;
    d.single = static_cast<SingleOp>(lo);
  } else {
    d.kind = Decoded::Kind::kIllegal;
  }
  return d;
}

bool is_two_byte(std::uint8_t byte1) {
  return decode(byte1).two_bytes();
}

namespace {

constexpr const char* kMemRefNames[] = {"lda", "and", "add", "sub", "ora",
                                        "xra", "sta", "jmp", "jsr", "jmi"};
constexpr const char* kSingleNames[] = {"nop", "cla", "cma", "cmc", "stc",
                                        "asl", "asr", "inc", "hlt"};

std::string branch_name(std::uint8_t mask) {
  switch (mask) {
    case kCondV: return "bv";
    case kCondC: return "bc";
    case kCondZ: return "bz";
    case kCondN: return "bn";
    default: {
      char buf[16];
      std::snprintf(buf, sizeof buf, "br#%x", mask);
      return buf;
    }
  }
}

}  // namespace

std::string mnemonic(const Decoded& d) {
  switch (d.kind) {
    case Decoded::Kind::kMemRef:
      return kMemRefNames[static_cast<unsigned>(d.opcode)];
    case Decoded::Kind::kBranch:
      return branch_name(d.cond_mask);
    case Decoded::Kind::kSingle:
      return kSingleNames[static_cast<unsigned>(d.single)];
    case Decoded::Kind::kIllegal:
      return "ill";
  }
  return "ill";
}

std::optional<MnemonicInfo> parse_mnemonic(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (unsigned i = 0; i < 10; ++i) {
    if (n == kMemRefNames[i])
      return MnemonicInfo{Decoded::Kind::kMemRef, static_cast<Opcode>(i), 0,
                          SingleOp::kNop};
  }
  for (unsigned i = 0; i <= static_cast<unsigned>(SingleOp::kHlt); ++i) {
    if (n == kSingleNames[i])
      return MnemonicInfo{Decoded::Kind::kSingle, Opcode::kLda, 0,
                          static_cast<SingleOp>(i)};
  }
  const std::pair<const char*, std::uint8_t> branches[] = {
      {"bv", kCondV}, {"bc", kCondC}, {"bz", kCondZ}, {"bn", kCondN}};
  for (const auto& [bn, mask] : branches) {
    if (n == bn)
      return MnemonicInfo{Decoded::Kind::kBranch, Opcode::kLda, mask,
                          SingleOp::kNop};
  }
  return std::nullopt;
}

std::string disassemble(std::uint8_t byte1, std::uint8_t byte2) {
  const Decoded d = decode(byte1);
  char buf[32];
  switch (d.kind) {
    case Decoded::Kind::kMemRef:
      std::snprintf(buf, sizeof buf, "%s 0x%03x", mnemonic(d).c_str(),
                    make_addr(d.page, byte2));
      return buf;
    case Decoded::Kind::kBranch:
      std::snprintf(buf, sizeof buf, "%s 0x%02x", mnemonic(d).c_str(), byte2);
      return buf;
    case Decoded::Kind::kSingle:
      return mnemonic(d);
    case Decoded::Kind::kIllegal:
      std::snprintf(buf, sizeof buf, "ill 0x%02x", byte1);
      return buf;
  }
  return "ill";
}

}  // namespace xtest::cpu
