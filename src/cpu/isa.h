// Instruction set of the embedded processor core.
//
// The paper's testbed CPU is an 8-bit accumulator-based multi-cycle core
// with 23 instructions and a 12-bit address space (Navabi's PARWAN-class
// processor).  We implement a PARWAN-style ISA with exactly 23 instructions:
//
//   memory-reference, 2 bytes, [oooo pppp][ffffffff] = opcode, page, offset:
//     LDA AND ADD SUB ORA XRA STA JMP JSR JMI            (10)
//   branch, 2 bytes, [1110 nzcv][ffffffff], target = current page : offset:
//     BV BC BZ BN                                        (4)
//   single byte, [1111 ssss]:
//     NOP CLA CMA CMC STC ASL ASR INC HLT                (9)
//
// The LDA layout matches Fig. 4 of the paper exactly: first byte = opcode
// nibble + page number (top 4 address bits), second byte = 8-bit offset.
// Opcode nibbles 0xA-0xD and single-op selectors 9-15 are illegal; fetching
// one halts the core with HaltReason::kIllegalOpcode, which is how a
// crosstalk-corrupted opcode fetch becomes observable.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace xtest::cpu {

/// 12-bit physical address (stored in 16 bits, always masked).
using Addr = std::uint16_t;

inline constexpr unsigned kAddrBits = 12;
inline constexpr unsigned kDataBits = 8;
inline constexpr std::size_t kMemWords = 1u << kAddrBits;  // 4K
inline constexpr Addr kAddrMask = kMemWords - 1;

constexpr Addr wrap(unsigned a) { return static_cast<Addr>(a & kAddrMask); }
constexpr std::uint8_t page_of(Addr a) {
  return static_cast<std::uint8_t>((a >> 8) & 0xF);
}
constexpr std::uint8_t offset_of(Addr a) {
  return static_cast<std::uint8_t>(a & 0xFF);
}
constexpr Addr make_addr(std::uint8_t page, std::uint8_t offset) {
  return static_cast<Addr>(((page & 0xF) << 8) | offset);
}

/// Memory-reference opcode nibbles.
enum class Opcode : std::uint8_t {
  kLda = 0x0,
  kAnd = 0x1,
  kAdd = 0x2,
  kSub = 0x3,
  kOra = 0x4,
  kXra = 0x5,
  kSta = 0x6,
  kJmp = 0x7,
  kJsr = 0x8,
  kJmi = 0x9,
  // 0xA..0xD illegal
  kBranch = 0xE,
  kSingle = 0xF,
};

/// Selectors for single-byte instructions (low nibble under opcode 0xF).
enum class SingleOp : std::uint8_t {
  kNop = 0x0,
  kCla = 0x1,
  kCma = 0x2,
  kCmc = 0x3,
  kStc = 0x4,
  kAsl = 0x5,
  kAsr = 0x6,
  kInc = 0x7,
  kHlt = 0x8,
};

/// Branch-condition mask bits (low nibble under opcode 0xE).  A branch is
/// taken when (mask & flags) != 0.
inline constexpr std::uint8_t kCondV = 0x1;
inline constexpr std::uint8_t kCondC = 0x2;
inline constexpr std::uint8_t kCondZ = 0x4;
inline constexpr std::uint8_t kCondN = 0x8;

/// Encoding helpers.
constexpr std::uint8_t memref_byte1(Opcode op, Addr target) {
  return static_cast<std::uint8_t>((static_cast<unsigned>(op) << 4) |
                                   page_of(target));
}
constexpr std::array<std::uint8_t, 2> encode_memref(Opcode op, Addr target) {
  return {memref_byte1(op, target), offset_of(target)};
}
constexpr std::array<std::uint8_t, 2> encode_branch(std::uint8_t cond_mask,
                                                    std::uint8_t offset) {
  return {static_cast<std::uint8_t>(0xE0 | (cond_mask & 0xF)), offset};
}
constexpr std::uint8_t encode_single(SingleOp op) {
  return static_cast<std::uint8_t>(0xF0 | static_cast<unsigned>(op));
}

/// A decoded instruction.
struct Decoded {
  enum class Kind { kMemRef, kBranch, kSingle, kIllegal };

  Kind kind = Kind::kIllegal;
  Opcode opcode = Opcode::kLda;   // kMemRef
  std::uint8_t page = 0;          // kMemRef: page nibble of byte 1
  std::uint8_t cond_mask = 0;     // kBranch
  SingleOp single = SingleOp::kNop;  // kSingle

  /// Instructions with kind kMemRef or kBranch occupy two bytes.
  bool two_bytes() const { return kind == Kind::kMemRef || kind == Kind::kBranch; }
};

/// Decode the first byte of an instruction.
Decoded decode(std::uint8_t byte1);

/// Whether `byte1` starts a two-byte instruction.
bool is_two_byte(std::uint8_t byte1);

/// Mnemonic for reports/disassembly ("lda", "bz", "cla", ...; "ill" for
/// illegal encodings).
std::string mnemonic(const Decoded& d);

/// Parse a mnemonic.  Returns nullopt for unknown names.
struct MnemonicInfo {
  Decoded::Kind kind;
  Opcode opcode;          // kMemRef
  std::uint8_t cond_mask; // kBranch
  SingleOp single;        // kSingle
};
std::optional<MnemonicInfo> parse_mnemonic(const std::string& name);

/// Disassemble one instruction; `byte2` is ignored for single-byte forms.
std::string disassemble(std::uint8_t byte1, std::uint8_t byte2);

/// Total number of architected instructions (the paper's "23 instructions").
inline constexpr int kInstructionCount = 23;

}  // namespace xtest::cpu
