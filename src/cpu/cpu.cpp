#include "cpu/cpu.h"

namespace xtest::cpu {

void Cpu::reset(Addr entry) {
  pc_ = wrap(entry);
  acc_ = 0;
  flags_ = Flags{};
  reason_ = HaltReason::kRunning;
  cycles_ = 0;
}

std::uint8_t Cpu::bus_read(Addr a) {
  ++cycles_;
  return port_.read(wrap(a));
}

void Cpu::bus_write(Addr a, std::uint8_t d) {
  ++cycles_;
  port_.write(wrap(a), d);
}

void Cpu::internal() {
  ++cycles_;
  port_.internal_cycle();
}

void Cpu::set_zn(std::uint8_t value) {
  flags_.z = value == 0;
  flags_.n = (value & 0x80) != 0;
}

void Cpu::step() {
  if (halted()) return;

  const Addr instr_addr = pc_;
  const std::uint8_t b1 = bus_read(pc_);
  pc_ = wrap(pc_ + 1u);
  internal();  // decode

  const Decoded d = decode(b1);
  if (d.kind == Decoded::Kind::kIllegal) {
    reason_ = HaltReason::kIllegalOpcode;
    return;
  }

  std::uint8_t b2 = 0;
  if (d.two_bytes()) {
    b2 = bus_read(pc_);
    pc_ = wrap(pc_ + 1u);
  }

  switch (d.kind) {
    case Decoded::Kind::kMemRef:
      exec_memref(d, b2);
      internal();  // execute/write-back
      break;
    case Decoded::Kind::kBranch:
      if (d.cond_mask & flags_.mask())
        pc_ = make_addr(page_of(instr_addr), b2);
      internal();
      break;
    case Decoded::Kind::kSingle:
      exec_single(d.single);
      internal();
      break;
    case Decoded::Kind::kIllegal:
      break;  // unreachable
  }
}

void Cpu::exec_memref(const Decoded& d, std::uint8_t offset_byte) {
  const Addr ax = make_addr(d.page, offset_byte);
  switch (d.opcode) {
    case Opcode::kLda: {
      acc_ = bus_read(ax);
      set_zn(acc_);
      break;
    }
    case Opcode::kAnd: {
      acc_ &= bus_read(ax);
      set_zn(acc_);
      break;
    }
    case Opcode::kAdd: {
      const std::uint8_t m = bus_read(ax);
      const unsigned r = static_cast<unsigned>(acc_) + m;
      flags_.c = r > 0xFF;
      flags_.v = (~(acc_ ^ m) & (acc_ ^ r) & 0x80) != 0;
      acc_ = static_cast<std::uint8_t>(r);
      set_zn(acc_);
      break;
    }
    case Opcode::kSub: {
      const std::uint8_t m = bus_read(ax);
      const unsigned r = static_cast<unsigned>(acc_) - m;
      flags_.c = acc_ >= m;  // no borrow
      flags_.v = ((acc_ ^ m) & (acc_ ^ r) & 0x80) != 0;
      acc_ = static_cast<std::uint8_t>(r);
      set_zn(acc_);
      break;
    }
    case Opcode::kOra: {
      acc_ |= bus_read(ax);
      set_zn(acc_);
      break;
    }
    case Opcode::kXra: {
      acc_ ^= bus_read(ax);
      set_zn(acc_);
      break;
    }
    case Opcode::kSta:
      bus_write(ax, acc_);
      break;
    case Opcode::kJmp:
      pc_ = ax;
      break;
    case Opcode::kJsr:
      // PARWAN convention: return offset stored at the target, execution
      // continues at target+1; JMI through the target returns.
      bus_write(ax, offset_of(pc_));
      pc_ = wrap(ax + 1u);
      break;
    case Opcode::kJmi: {
      const std::uint8_t t = bus_read(ax);
      pc_ = make_addr(page_of(ax), t);
      break;
    }
    default:
      break;
  }
}

void Cpu::exec_single(SingleOp op) {
  switch (op) {
    case SingleOp::kNop:
      break;
    case SingleOp::kCla:
      acc_ = 0;
      set_zn(acc_);
      break;
    case SingleOp::kCma:
      acc_ = static_cast<std::uint8_t>(~acc_);
      set_zn(acc_);
      break;
    case SingleOp::kCmc:
      flags_.c = !flags_.c;
      break;
    case SingleOp::kStc:
      flags_.c = true;
      break;
    case SingleOp::kAsl: {
      flags_.c = (acc_ & 0x80) != 0;
      const std::uint8_t r = static_cast<std::uint8_t>(acc_ << 1);
      flags_.v = ((acc_ ^ r) & 0x80) != 0;
      acc_ = r;
      set_zn(acc_);
      break;
    }
    case SingleOp::kAsr: {
      flags_.c = (acc_ & 0x01) != 0;
      acc_ = static_cast<std::uint8_t>((acc_ >> 1) | (acc_ & 0x80));
      set_zn(acc_);
      break;
    }
    case SingleOp::kInc: {
      const unsigned r = static_cast<unsigned>(acc_) + 1u;
      flags_.c = r > 0xFF;
      flags_.v = acc_ == 0x7F;
      acc_ = static_cast<std::uint8_t>(r);
      set_zn(acc_);
      break;
    }
    case SingleOp::kHlt:
      reason_ = HaltReason::kHltInstruction;
      break;
  }
}

bool Cpu::run(std::uint64_t max_cycles) {
  while (!halted() && cycles_ < max_cycles) step();
  return halted();
}

}  // namespace xtest::cpu
