#include "cpu/microcode.h"

namespace xtest::cpu {

std::string to_string(ExecTier tier) {
  switch (tier) {
    case ExecTier::kReference:
      return "reference";
    case ExecTier::kDecoded:
      return "decoded";
    case ExecTier::kJit:
      return "jit";
  }
  return "reference";
}

std::optional<ExecTier> parse_exec_tier(const std::string& name) {
  if (name == "reference") return ExecTier::kReference;
  if (name == "decoded") return ExecTier::kDecoded;
  if (name == "jit") return ExecTier::kJit;
  return std::nullopt;
}

namespace {

std::uint64_t fnv1a_image(const MemoryImage& image) {
  std::uint64_t h = 1469598103934665603ull;
  const std::uint8_t* raw = image.raw().data();
  for (std::size_t i = 0; i < kMemWords; ++i) {
    h ^= raw[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::array<Decoded, 256> build_decode_table() {
  std::array<Decoded, 256> t;
  for (unsigned b = 0; b < 256; ++b) t[b] = decode(static_cast<std::uint8_t>(b));
  return t;
}

}  // namespace

const std::array<Decoded, 256>& MicroProgram::decode_table() {
  static const std::array<Decoded, 256> table = build_decode_table();
  return table;
}

MicroProgram::MicroProgram(const MemoryImage& image)
    : key_(fnv1a_image(image)) {
  const std::array<Decoded, 256>& table = decode_table();
  const std::uint8_t* raw = image.raw().data();
  for (std::size_t a = 0; a < kMemWords; ++a) {
    ops_[a].byte = raw[a];
    ops_[a].d = table[raw[a]];
  }
}

bool MicroProgram::matches(const MemoryImage& image) const {
  const std::uint8_t* raw = image.raw().data();
  for (std::size_t a = 0; a < kMemWords; ++a)
    if (ops_[a].byte != raw[a]) return false;
  return true;
}

DecodeCache& DecodeCache::global() {
  static DecodeCache cache;
  return cache;
}

std::shared_ptr<const MicroProgram> DecodeCache::obtain(
    const MemoryImage& image, bool* built) {
  const std::uint64_t key = fnv1a_image(image);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end() && it->second->matches(image)) {
      if (built != nullptr) *built = false;
      return it->second;
    }
  }
  // Decode outside the lock; a racing build of the same program is benign
  // (last writer wins, both tables are identical and self-validating).
  auto fresh = std::make_shared<const MicroProgram>(image);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (map_.size() >= kCapacity) map_.clear();
    map_[key] = fresh;
  }
  if (built != nullptr) *built = true;
  return fresh;
}

void DecodeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::size_t DecodeCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace xtest::cpu
