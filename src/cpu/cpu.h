// Cycle-level model of the PARWAN-style embedded processor core.
//
// The SBST method depends only on the *bus transaction sequence* each
// instruction produces (Fig. 5 of the paper), so the core is modelled at
// the granularity of clock cycles that either carry one bus transaction or
// are internal.  For a two-byte memory-reference instruction the sequence
// is exactly the paper's:
//
//   cycle 1  fetch byte 1      addr bus <- Ai,     data bus <- M[Ai]
//   cycle 2  decode            buses hold ("z" keeps the last driven value)
//   cycle 3  fetch byte 2      addr bus <- Ai+1,   data bus <- M[Ai+1]
//   cycle 4  operand access    addr bus <- Ax,     data bus <- M[Ax] or ACC
//   cycle 5  execute           buses hold
//
// All bus traffic goes through a BusPort implemented by the SoC, which
// applies the crosstalk error model; the core consumes whatever (possibly
// corrupted) bytes come back, so defect effects propagate through real
// instruction semantics -- including derailed control flow on corrupted
// fetches, which is what makes whole-program fault simulation meaningful.

#pragma once

#include <cstdint>

#include "cpu/isa.h"

namespace xtest::cpu {

/// Why the core stopped.
enum class HaltReason : std::uint8_t {
  kRunning,
  kHltInstruction,
  kIllegalOpcode,
};

/// Processor status flags.
struct Flags {
  bool v = false;  ///< signed overflow
  bool c = false;  ///< carry / no-borrow
  bool z = false;  ///< zero
  bool n = false;  ///< negative (bit 7)

  /// Packed into the branch-condition nibble layout (N Z C V).
  std::uint8_t mask() const {
    return static_cast<std::uint8_t>((n ? kCondN : 0) | (z ? kCondZ : 0) |
                                     (c ? kCondC : 0) | (v ? kCondV : 0));
  }
};

/// The SoC side of the processor's bus interface.  Every call is one clock
/// cycle; read/write carry a bus transaction, internal_cycle holds buses.
class BusPort {
 public:
  virtual ~BusPort() = default;
  virtual std::uint8_t read(Addr addr) = 0;
  virtual void write(Addr addr, std::uint8_t data) = 0;
  virtual void internal_cycle() = 0;
};

/// Complete architectural state of the core, used as the handoff between
/// execution tiers: an accelerated executor (soc/exec_tier.cpp) lifts the
/// state out with state(), runs instructions against the same BusPort
/// semantics, and writes the result back with restore() -- after which the
/// reference interpreter can continue the run as if it had executed every
/// instruction itself (the bail-out path).
struct CpuState {
  Addr pc = 0;
  std::uint8_t acc = 0;
  Flags flags;
  HaltReason reason = HaltReason::kHltInstruction;
  std::uint64_t cycles = 0;
};

class Cpu {
 public:
  explicit Cpu(BusPort& port) : port_(port) {}

  void reset(Addr entry);

  /// Executes one instruction (multiple cycles).  No-op when halted.
  void step();

  /// Steps until halt or until the cycle counter reaches `max_cycles`.
  /// Returns true when the core halted by itself.
  bool run(std::uint64_t max_cycles);

  bool halted() const { return reason_ != HaltReason::kRunning; }
  HaltReason halt_reason() const { return reason_; }

  Addr pc() const { return pc_; }
  std::uint8_t acc() const { return acc_; }
  Flags flags() const { return flags_; }
  std::uint64_t cycles() const { return cycles_; }

  /// Test hooks.
  void set_acc(std::uint8_t a) { acc_ = a; }
  void set_flags(Flags f) { flags_ = f; }

  /// Execution-tier handoff (see CpuState).
  CpuState state() const { return {pc_, acc_, flags_, reason_, cycles_}; }
  void restore(const CpuState& s) {
    pc_ = s.pc;
    acc_ = s.acc;
    flags_ = s.flags;
    reason_ = s.reason;
    cycles_ = s.cycles;
  }

 private:
  std::uint8_t bus_read(Addr a);
  void bus_write(Addr a, std::uint8_t d);
  void internal();

  void set_zn(std::uint8_t value);
  void exec_memref(const Decoded& d, std::uint8_t offset_byte);
  void exec_single(SingleOp op);

  BusPort& port_;
  Addr pc_ = 0;
  std::uint8_t acc_ = 0;
  Flags flags_;
  HaltReason reason_ = HaltReason::kHltInstruction;  // not started
  std::uint64_t cycles_ = 0;
};

}  // namespace xtest::cpu
