// Minimal runtime assembler buffer for the optional template JIT tier.
//
// A JitBuffer is an mmap'd code region with an append cursor, a W^X
// protection toggle (the buffer is writable XOR executable, never both),
// and rel32 label patching for forward branches.  It deliberately knows
// nothing about the PARWAN core: the exec-tier block compiler (soc side)
// emits call-threaded x86-64 code through the raw emit primitives.
//
// Every operation reports a JitError instead of throwing: JIT is an
// opportunistic acceleration and every failure -- unsupported platform,
// mmap/mprotect refusal, buffer exhaustion, injected fault -- must degrade
// gracefully to the decoded (and ultimately reference) interpreter rather
// than erroring the defect being simulated.
//
// The build flag XTEST_ENABLE_JIT (CMake option, default ON) compiles the
// mmap backend in; without it, or on non-POSIX platforms, map() reports
// kUnsupported and the callers fall back.  Code *generation* additionally
// requires x86-64 (jit_backend_available()).

#pragma once

#include <cstddef>
#include <cstdint>

namespace xtest::cpu {

enum class JitError : std::uint8_t {
  kOk,
  kUnsupported,    ///< no mmap backend compiled in / platform lacks it
  kMapFailed,      ///< mmap refused the allocation
  kProtectFailed,  ///< mprotect refused a W^X toggle
  kBufferFull,     ///< emission would exceed the mapped capacity
  kInjected,       ///< fault site "cpu.jit_map" fired (chaos coverage)
};

const char* to_string(JitError e);

class JitBuffer {
 public:
  JitBuffer() = default;
  ~JitBuffer();
  JitBuffer(const JitBuffer&) = delete;
  JitBuffer& operator=(const JitBuffer&) = delete;

  /// Whether this build can map code buffers at all (mmap backend).
  static bool platform_supported();

  /// Maps `capacity` bytes RW (rounded up to the page size).  Consults
  /// fault-injection site "cpu.jit_map" so chaos runs can exercise the
  /// degradation path deterministically.
  JitError map(std::size_t capacity);
  void unmap();
  bool mapped() const { return base_ != nullptr; }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  bool executable() const { return executable_; }

  /// W^X toggle.  Emission requires writable; running requires executable.
  JitError make_writable();
  JitError make_executable();

  /// Appends at the cursor.  False (and no partial write) when full or
  /// when the buffer is not writable.
  bool emit8(std::uint8_t b);
  bool emit32(std::uint32_t v);
  bool emit64(std::uint64_t v);

  /// A patchable site: the buffer offset of a 4-byte rel32 placeholder.
  struct Label {
    std::size_t pos = 0;
  };

  /// Emits a 4-byte placeholder and records its position for patching.
  bool emit_rel32_placeholder(Label* out);

  /// Patches the placeholder at `site` to reach buffer offset `target`
  /// (rel32 is relative to the end of the placeholder, x86 convention).
  void patch_rel32(Label site, std::size_t target);

  /// Truncates the cursor back to `offset` (block cache invalidation).
  void truncate(std::size_t offset);

  /// Entry pointer for a finished block.  Only meaningful while
  /// executable() is true.
  const void* entry(std::size_t offset) const { return base_ + offset; }

 private:
  std::uint8_t* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  bool executable_ = false;
};

/// Whether the template JIT can generate code here: a mappable buffer
/// plus the x86-64 call-threaded emitter.  When false, exec tier "jit"
/// silently runs the decoded interpreter instead.
bool jit_backend_available();

}  // namespace xtest::cpu
