// Two-pass assembler for the PARWAN-style ISA.
//
// Used by the examples and tests to write hand-crafted bus-exercising
// programs the way the paper's authors wrote theirs (Section 4), and by the
// quickstart to stay readable.  The SBST generator emits machine code
// directly (its placements are address-constrained), but its output can be
// round-tripped through the disassembler.
//
// Syntax (one statement per line, ';' starts a comment):
//
//   start:  cla                 ; labels end with ':'
//           lda 0x3ff           ; memory-reference, 12-bit operand
//           add data+1          ; label arithmetic
//           sta 15:0xef         ; page:offset operand form (paper notation)
//           bz  done            ; branch target must lie in the same page
//           jmp start
//   done:   hlt
//           .org 0x300          ; set location counter
//   data:   .byte 0x01, 2, 0b11 ; literal bytes
//           .res 4              ; reserve 4 zero bytes
//
// Numeric literals: 0x hex, 0b binary, decimal.

#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "cpu/isa.h"
#include "cpu/memory_image.h"

namespace xtest::cpu {

/// Assembly failure; message contains the 1-based source line.
class AsmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct AsmResult {
  MemoryImage image;
  /// Label name -> address.
  std::map<std::string, Addr> symbols;
  /// Address of the first instruction assembled (or 0 if none).
  Addr entry = 0;
};

/// Assembles `source`; throws AsmError on any syntax or range problem.
AsmResult assemble(const std::string& source);

/// Disassembles the defined ranges of an image into listing lines
/// ("0x010: 2f 07   add 0xf07").  Purely for diagnostics.
std::string disassemble_image(const MemoryImage& image);

}  // namespace xtest::cpu
