// A 4K memory image with per-byte "defined" tracking.
//
// Test-program generation needs to distinguish bytes that are part of the
// program (code, operand cells, response cells) from untouched memory; the
// allocator and the assembler both produce images, and the SoC memory loads
// them (undefined bytes default to zero, like a tester writing a full 4K).

#pragma once

#include <array>
#include <bitset>
#include <cstdint>

#include "cpu/isa.h"

namespace xtest::cpu {

class MemoryImage {
 public:
  MemoryImage() { bytes_.fill(0); }

  std::uint8_t at(Addr a) const { return bytes_[a & kAddrMask]; }
  bool defined(Addr a) const { return defined_[a & kAddrMask]; }

  void set(Addr a, std::uint8_t v) {
    bytes_[a & kAddrMask] = v;
    defined_[a & kAddrMask] = true;
  }

  std::size_t defined_count() const { return defined_.count(); }

  /// Overlays `other`'s defined bytes onto this image.
  void merge(const MemoryImage& other) {
    for (std::size_t a = 0; a < kMemWords; ++a)
      if (other.defined_[a]) set(static_cast<Addr>(a), other.bytes_[a]);
  }

  const std::array<std::uint8_t, kMemWords>& raw() const { return bytes_; }

 private:
  std::array<std::uint8_t, kMemWords> bytes_;
  std::bitset<kMemWords> defined_;
};

}  // namespace xtest::cpu
