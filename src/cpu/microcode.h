// Pre-decoded micro-op execution tier for the PARWAN core.
//
// The campaign inner loop runs the same SBST program for every defect, yet
// the reference interpreter re-decodes each instruction byte on every
// fetch of every run.  A MicroProgram is the one-time pre-decode pass: a
// flat per-address array of micro-ops (the image byte plus its fully
// decoded form), built once per program and shared -- like GoldRunCache --
// across the defects, threads, and worker systems of a campaign through
// the process-wide DecodeCache.
//
// Correctness does not depend on the table being fresh.  `decode()` is a
// pure function of the fetched byte, and every micro-op stores the byte it
// was decoded from, so an executor may use a micro-op exactly when the
// byte that actually arrived over the (possibly corrupted) data bus equals
// the stored byte -- and must fall back to plain decode otherwise.  That
// single byte comparison subsumes self-modifying-store tracking and even
// makes DecodeCache hash collisions harmless: a stale or mismatched table
// can cause a slow path, never a wrong result.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cpu/isa.h"
#include "cpu/memory_image.h"

namespace xtest::cpu {

/// Which executor drives System::run.
///
///   reference  per-cycle fetch/decode interpreter (Cpu::step), the
///              semantics every other tier must match bitwise
///   decoded    pre-decoded micro-op array + fused threaded dispatch loop
///   jit        decoded, plus straight-line blocks compiled to native code
///              (falls back to decoded when the JIT backend is unavailable)
///
/// Every tier routes each bus transaction through TristateBus::transfer,
/// so bus traffic -- and therefore verdicts -- are identical across tiers.
enum class ExecTier : std::uint8_t { kReference, kDecoded, kJit };

/// Scenario/CLI spelling: "reference", "decoded", "jit".
std::string to_string(ExecTier tier);

/// Parses a tier name; nullopt for unknown spellings.
std::optional<ExecTier> parse_exec_tier(const std::string& name);

/// One pre-decoded memory word: the image byte and its decoded form.
struct MicroOp {
  std::uint8_t byte = 0;
  Decoded d;
};

/// Immutable pre-decode of a full 4K memory image.  Thread-safe to share.
class MicroProgram {
 public:
  explicit MicroProgram(const MemoryImage& image);

  const MicroOp& at(Addr a) const { return ops_[a & kAddrMask]; }

  /// Whether `image` holds exactly the bytes this table was decoded from
  /// (memcmp -- the per-System fast path in front of the hashed cache).
  bool matches(const MemoryImage& image) const;

  /// FNV-1a-64 over the raw image bytes; the DecodeCache key.
  std::uint64_t key() const { return key_; }

  /// Decode memo indexed by raw byte value, for fetches that diverge from
  /// the pre-decoded image (bit-identical to cpu::decode by construction).
  static const std::array<Decoded, 256>& decode_table();

 private:
  std::array<MicroOp, kMemWords> ops_;
  std::uint64_t key_ = 0;
};

/// Process-wide memo of pre-decoded programs, keyed by image content.
/// Campaigns pre-decode once and share across defects and worker systems.
class DecodeCache {
 public:
  static DecodeCache& global();

  /// Returns the pre-decode of `image`, building it on first sight.
  /// `built` (optional) reports whether this call performed the decode
  /// pass (the caller's `decoded_programs` / `decode_cache_hits` split).
  std::shared_ptr<const MicroProgram> obtain(const MemoryImage& image,
                                             bool* built = nullptr);

  void clear();
  std::size_t size() const;

 private:
  /// Bound on distinct programs kept; the map is dropped wholesale when
  /// full (same policy as the campaign transition memo).
  static constexpr std::size_t kCapacity = 256;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const MicroProgram>> map_;
};

}  // namespace xtest::cpu
