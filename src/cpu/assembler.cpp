#include "cpu/assembler.h"

#include <cctype>
#include <cstdio>
#include <optional>
#include <sstream>
#include <vector>

namespace xtest::cpu {

namespace {

struct Token {
  std::string text;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw AsmError("line " + std::to_string(line) + ": " + msg);
}

std::string strip(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::optional<long> parse_number(const std::string& t) {
  if (t.empty()) return std::nullopt;
  std::size_t pos = 0;
  int base = 10;
  std::string body = t;
  if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    base = 16;
    body = t.substr(2);
  } else if (t.size() > 2 && t[0] == '0' && (t[1] == 'b' || t[1] == 'B')) {
    base = 2;
    body = t.substr(2);
  }
  try {
    long v = std::stol(body, &pos, base);
    if (pos != body.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

/// One source statement after label stripping.
struct Statement {
  int line = 0;
  std::string label;     // may be empty
  std::string op;        // mnemonic or directive, may be empty
  std::string operands;  // raw operand text
};

std::vector<Statement> parse_lines(const std::string& source) {
  std::vector<Statement> out;
  std::istringstream is(source);
  std::string raw;
  int line = 0;
  while (std::getline(is, raw)) {
    ++line;
    const std::size_t sc = raw.find(';');
    if (sc != std::string::npos) raw.resize(sc);
    std::string s = strip(raw);
    if (s.empty()) continue;
    Statement st;
    st.line = line;
    const std::size_t colon = s.find(':');
    // A ':' introduces a label only if everything before it is an
    // identifier; "sta 15:0xef" has ':' inside the operand.
    if (colon != std::string::npos) {
      std::string maybe = strip(s.substr(0, colon));
      bool ident = !maybe.empty() && is_ident_start(maybe[0]);
      for (char c : maybe) ident = ident && is_ident_char(c);
      if (ident) {
        st.label = maybe;
        s = strip(s.substr(colon + 1));
      }
    }
    if (!s.empty()) {
      const std::size_t sp = s.find_first_of(" \t");
      if (sp == std::string::npos) {
        st.op = s;
      } else {
        st.op = s.substr(0, sp);
        st.operands = strip(s.substr(sp + 1));
      }
    }
    if (!st.label.empty() || !st.op.empty()) out.push_back(std::move(st));
  }
  return out;
}

/// Evaluates an operand expression: number | page:offset | label[+/-number].
class Evaluator {
 public:
  explicit Evaluator(const std::map<std::string, Addr>* symbols)
      : symbols_(symbols) {}

  /// Returns value; in pass 1 (symbols_ == nullptr) unresolved labels
  /// evaluate to 0.
  long eval(const std::string& expr, int line) const {
    std::string t = strip(expr);
    if (t.empty()) fail(line, "missing operand");
    // page:offset
    const std::size_t colon = t.find(':');
    if (colon != std::string::npos) {
      auto p = parse_number(strip(t.substr(0, colon)));
      auto o = parse_number(strip(t.substr(colon + 1)));
      if (!p || !o) fail(line, "bad page:offset operand '" + t + "'");
      if (*p < 0 || *p > 15) fail(line, "page out of range in '" + t + "'");
      if (*o < 0 || *o > 255) fail(line, "offset out of range in '" + t + "'");
      return make_addr(static_cast<std::uint8_t>(*p),
                       static_cast<std::uint8_t>(*o));
    }
    // label +/- number
    if (is_ident_start(t[0])) {
      std::size_t i = 1;
      while (i < t.size() && is_ident_char(t[i])) ++i;
      const std::string name = t.substr(0, i);
      std::string rest = strip(t.substr(i));
      long base = 0;
      if (symbols_) {
        auto it = symbols_->find(name);
        if (it == symbols_->end()) fail(line, "unknown label '" + name + "'");
        base = it->second;
      }
      if (rest.empty()) return base;
      if (rest[0] != '+' && rest[0] != '-')
        fail(line, "bad operand '" + t + "'");
      const char sign = rest[0];
      auto n = parse_number(strip(rest.substr(1)));
      if (!n) fail(line, "bad operand '" + t + "'");
      return sign == '+' ? base + *n : base - *n;
    }
    auto n = parse_number(t);
    if (!n) fail(line, "bad operand '" + t + "'");
    return *n;
  }

 private:
  const std::map<std::string, Addr>* symbols_;  // null during pass 1
};

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t c = s.find(',', start);
    if (c == std::string::npos) {
      out.push_back(strip(s.substr(start)));
      break;
    }
    out.push_back(strip(s.substr(start, c - start)));
    start = c + 1;
  }
  return out;
}

/// Size in bytes of a statement's emission (0 for pure labels).
std::size_t statement_size(const Statement& st) {
  if (st.op.empty()) return 0;
  if (st.op == ".org") return 0;
  if (st.op == ".byte") return split_commas(st.operands).size();
  if (st.op == ".res") {
    auto n = parse_number(strip(st.operands));
    if (!n || *n < 0) fail(st.line, ".res needs a non-negative count");
    return static_cast<std::size_t>(*n);
  }
  auto info = parse_mnemonic(st.op);
  if (!info) fail(st.line, "unknown mnemonic '" + st.op + "'");
  return info->kind == Decoded::Kind::kSingle ? 1 : 2;
}

}  // namespace

AsmResult assemble(const std::string& source) {
  const std::vector<Statement> stmts = parse_lines(source);
  AsmResult result;

  // Pass 1: location counting and symbol collection.
  {
    Evaluator ev(nullptr);
    long lc = 0;
    for (const Statement& st : stmts) {
      if (!st.label.empty()) {
        if (result.symbols.count(st.label))
          fail(st.line, "duplicate label '" + st.label + "'");
        result.symbols[st.label] = wrap(static_cast<unsigned>(lc));
      }
      if (st.op == ".org") {
        lc = ev.eval(st.operands, st.line);
        if (lc < 0 || lc >= static_cast<long>(kMemWords))
          fail(st.line, ".org out of range");
        continue;
      }
      lc += static_cast<long>(statement_size(st));
      if (lc > static_cast<long>(kMemWords))
        fail(st.line, "assembly overflows 4K memory");
    }
  }

  // Pass 2: emission.
  Evaluator ev(&result.symbols);
  long lc = 0;
  bool entry_set = false;
  for (const Statement& st : stmts) {
    if (st.op.empty()) continue;
    if (st.op == ".org") {
      lc = ev.eval(st.operands, st.line);
      continue;
    }
    if (st.op == ".byte") {
      for (const std::string& b : split_commas(st.operands)) {
        long v = ev.eval(b, st.line);
        if (v < -128 || v > 255) fail(st.line, "byte out of range");
        result.image.set(wrap(static_cast<unsigned>(lc++)),
                         static_cast<std::uint8_t>(v & 0xFF));
      }
      continue;
    }
    if (st.op == ".res") {
      long n = *parse_number(strip(st.operands));
      for (long i = 0; i < n; ++i)
        result.image.set(wrap(static_cast<unsigned>(lc++)), 0);
      continue;
    }
    const auto info = *parse_mnemonic(st.op);
    const Addr here = wrap(static_cast<unsigned>(lc));
    if (!entry_set) {
      result.entry = here;
      entry_set = true;
    }
    switch (info.kind) {
      case Decoded::Kind::kMemRef: {
        long v = ev.eval(st.operands, st.line);
        if (v < 0 || v >= static_cast<long>(kMemWords))
          fail(st.line, "address operand out of range");
        const auto enc = encode_memref(info.opcode, static_cast<Addr>(v));
        result.image.set(here, enc[0]);
        result.image.set(wrap(lc + 1u), enc[1]);
        lc += 2;
        break;
      }
      case Decoded::Kind::kBranch: {
        long v = ev.eval(st.operands, st.line);
        if (v < 0 || v >= static_cast<long>(kMemWords))
          fail(st.line, "branch target out of range");
        // Branch targets resolve within the branch's own page.
        if (v > 0xFF && page_of(static_cast<Addr>(v)) != page_of(here))
          fail(st.line, "branch target not in the branch's page");
        const auto enc =
            encode_branch(info.cond_mask, offset_of(static_cast<Addr>(v)));
        result.image.set(here, enc[0]);
        result.image.set(wrap(lc + 1u), enc[1]);
        lc += 2;
        break;
      }
      case Decoded::Kind::kSingle:
        result.image.set(here, encode_single(info.single));
        lc += 1;
        break;
      case Decoded::Kind::kIllegal:
        fail(st.line, "unknown mnemonic");
    }
  }
  return result;
}

std::string disassemble_image(const MemoryImage& image) {
  std::ostringstream os;
  for (std::size_t a = 0; a < kMemWords;) {
    if (!image.defined(static_cast<Addr>(a))) {
      ++a;
      continue;
    }
    const std::uint8_t b1 = image.at(static_cast<Addr>(a));
    const bool two = is_two_byte(b1) && a + 1 < kMemWords &&
                     image.defined(static_cast<Addr>(a + 1));
    const std::uint8_t b2 = two ? image.at(static_cast<Addr>(a + 1)) : 0;
    char head[32];
    if (two) {
      std::snprintf(head, sizeof head, "0x%03zx: %02x %02x   ", a, b1, b2);
    } else {
      std::snprintf(head, sizeof head, "0x%03zx: %02x      ", a, b1);
    }
    os << head << disassemble(b1, b2) << '\n';
    a += two ? 2 : 1;
  }
  return os.str();
}

}  // namespace xtest::cpu
