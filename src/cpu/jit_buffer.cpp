#include "cpu/jit_buffer.h"

#include <cstring>

#include "util/fault_injector.h"

#if defined(XTEST_ENABLE_JIT) && defined(__unix__)
#define XTEST_JIT_MMAP 1
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace xtest::cpu {

const char* to_string(JitError e) {
  switch (e) {
    case JitError::kOk:
      return "ok";
    case JitError::kUnsupported:
      return "unsupported";
    case JitError::kMapFailed:
      return "map_failed";
    case JitError::kProtectFailed:
      return "protect_failed";
    case JitError::kBufferFull:
      return "buffer_full";
    case JitError::kInjected:
      return "injected";
  }
  return "unsupported";
}

bool JitBuffer::platform_supported() {
#ifdef XTEST_JIT_MMAP
  return true;
#else
  return false;
#endif
}

bool jit_backend_available() {
#if defined(XTEST_JIT_MMAP) && defined(__x86_64__)
  return true;
#else
  return false;
#endif
}

JitBuffer::~JitBuffer() { unmap(); }

JitError JitBuffer::map(std::size_t capacity) {
#ifdef XTEST_JIT_MMAP
  if (mapped()) return JitError::kOk;
  if (util::FaultInjector::global().fire("cpu.jit_map"))
    return JitError::kInjected;
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t align = page > 0 ? static_cast<std::size_t>(page) : 4096;
  const std::size_t bytes = (capacity + align - 1) / align * align;
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return JitError::kMapFailed;
  base_ = static_cast<std::uint8_t*>(p);
  capacity_ = bytes;
  used_ = 0;
  executable_ = false;
  return JitError::kOk;
#else
  (void)capacity;
  return JitError::kUnsupported;
#endif
}

void JitBuffer::unmap() {
#ifdef XTEST_JIT_MMAP
  if (base_ != nullptr) ::munmap(base_, capacity_);
#endif
  base_ = nullptr;
  capacity_ = 0;
  used_ = 0;
  executable_ = false;
}

JitError JitBuffer::make_writable() {
#ifdef XTEST_JIT_MMAP
  if (!mapped()) return JitError::kUnsupported;
  if (!executable_) return JitError::kOk;
  if (::mprotect(base_, capacity_, PROT_READ | PROT_WRITE) != 0)
    return JitError::kProtectFailed;
  executable_ = false;
  return JitError::kOk;
#else
  return JitError::kUnsupported;
#endif
}

JitError JitBuffer::make_executable() {
#ifdef XTEST_JIT_MMAP
  if (!mapped()) return JitError::kUnsupported;
  if (executable_) return JitError::kOk;
  if (::mprotect(base_, capacity_, PROT_READ | PROT_EXEC) != 0)
    return JitError::kProtectFailed;
  executable_ = true;
  return JitError::kOk;
#else
  return JitError::kUnsupported;
#endif
}

bool JitBuffer::emit8(std::uint8_t b) {
  if (!mapped() || executable_ || used_ + 1 > capacity_) return false;
  base_[used_++] = b;
  return true;
}

bool JitBuffer::emit32(std::uint32_t v) {
  if (!mapped() || executable_ || used_ + 4 > capacity_) return false;
  std::memcpy(base_ + used_, &v, 4);
  used_ += 4;
  return true;
}

bool JitBuffer::emit64(std::uint64_t v) {
  if (!mapped() || executable_ || used_ + 8 > capacity_) return false;
  std::memcpy(base_ + used_, &v, 8);
  used_ += 8;
  return true;
}

bool JitBuffer::emit_rel32_placeholder(Label* out) {
  if (out != nullptr) out->pos = used_;
  return emit32(0);
}

void JitBuffer::patch_rel32(Label site, std::size_t target) {
  if (!mapped() || executable_ || site.pos + 4 > used_) return;
  const std::int32_t rel =
      static_cast<std::int32_t>(static_cast<std::int64_t>(target) -
                                static_cast<std::int64_t>(site.pos + 4));
  std::memcpy(base_ + site.pos, &rel, 4);
}

void JitBuffer::truncate(std::size_t offset) {
  if (offset <= used_) used_ = offset;
}

}  // namespace xtest::cpu
