#include "sim/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/retry.h"

namespace xtest::sim {

namespace {

constexpr const char* kMagicV1 = "xtest-checkpoint v1";
constexpr const char* kMagicV2 = "xtest-checkpoint v2";

[[noreturn]] void malformed(const std::string& path, const std::string& why) {
  throw std::runtime_error("checkpoint " + path + ": " + why);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

bool parse_crc_line(const std::string& line, std::uint32_t& out) {
  if (line.size() != 12 || line.rfind("crc ", 0) != 0) return false;
  out = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    const char c = line[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    else
      return false;
    out = (out << 4) | digit;
  }
  return true;
}

std::string crc_line(const std::string& covered) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "crc %08x", util::crc32(covered));
  return buf;
}

bool parse_section_header(const std::string& line, std::string& name,
                          std::size_t& count) {
  std::istringstream hs(line);
  std::string word;
  if (!(hs >> word >> name >> count) || word != "section") return false;
  return true;
}

bool valid_slots(const std::string& slots) {
  Verdict v;
  for (const char c : slots)
    if (c != '.' && !verdict_from_char(c, v)) return false;
  return true;
}

/// A line that looks like a section slot line: only verdict chars and '.'.
bool slot_like(const std::string& line) {
  return !line.empty() && valid_slots(line);
}

}  // namespace

CampaignCheckpoint::CampaignCheckpoint(std::string path, std::string key,
                                       std::size_t flush_every,
                                       std::string tag)
    : path_(std::move(path)),
      key_(std::move(key)),
      tag_(std::move(tag)),
      flush_every_(flush_every == 0 ? 1 : flush_every) {
  cleanup_stale_tmps();
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;  // fresh campaign, nothing to resume
  std::string text;
  char buf[4096];
  while (in.read(buf, sizeof buf)) text.append(buf, sizeof buf);
  text.append(buf, static_cast<std::size_t>(in.gcount()));
  // A half-read file must not be mistaken for a short checkpoint: a
  // stream-level read error is I/O trouble, not campaign state.
  if (in.bad())
    malformed(path_, "read error: " + std::string(std::strerror(errno)));
  if (text.empty()) return;  // e.g. crashed during the very first create
  load(text);
}

void CampaignCheckpoint::load(const std::string& text) {
  const std::vector<std::string> lines = split_lines(text);
  if (lines.empty()) return;
  if (lines[0] == kMagicV2) {
    load_v2(lines);
    return;
  }
  if (lines[0] == kMagicV1) {
    load_v1(lines);
    return;
  }
  // A truncation can cut the file anywhere, including inside the magic
  // line; a strict prefix of either magic is corruption to recover from,
  // anything else is some other file we must refuse to overwrite.
  if (lines.size() == 1 &&
      (std::string(kMagicV2).rfind(lines[0], 0) == 0 ||
       std::string(kMagicV1).rfind(lines[0], 0) == 0)) {
    salvage_.salvaged = true;
    return;
  }
  malformed(path_, "not a checkpoint file (bad magic line)");
}

void CampaignCheckpoint::load_v2(const std::vector<std::string>& lines) {
  std::uint32_t stored = 0;
  if (lines.size() < 3 || lines[1].rfind("key ", 0) != 0 ||
      !parse_crc_line(lines[2], stored) ||
      util::crc32(lines[0] + '\n' + lines[1] + '\n') != stored) {
    // Header unverifiable: the whole file is untrustworthy.  Restart
    // cleanly rather than resume from (or mis-reject on) a corrupt key.
    drop_tail(lines, 1);
    return;
  }
  const std::string stored_key = lines[1].substr(4);
  if (stored_key != key_)
    malformed(path_, "key mismatch: file was written for '" + stored_key +
                         "' but this campaign is '" + key_ +
                         "' (delete the file to start over)");
  std::size_t i = 3;
  while (i < lines.size()) {
    std::string name;
    std::size_t count = 0;
    std::uint32_t crc = 0;
    if (!parse_section_header(lines[i], name, count) ||
        i + 2 >= lines.size() || lines[i + 1].size() != count ||
        !valid_slots(lines[i + 1]) || !parse_crc_line(lines[i + 2], crc) ||
        util::crc32(lines[i] + '\n' + lines[i + 1] + '\n') != crc) {
      drop_tail(lines, i);
      return;
    }
    sections_.emplace_back(
        name, std::vector<char>(lines[i + 1].begin(), lines[i + 1].end()));
    ++salvage_.sections_kept;
    i += 3;
  }
}

void CampaignCheckpoint::load_v1(const std::vector<std::string>& lines) {
  if (lines.size() < 2 || lines[1].rfind("key ", 0) != 0) {
    drop_tail(lines, 1);
    return;
  }
  const std::string stored_key = lines[1].substr(4);
  if (stored_key != key_)
    malformed(path_, "key mismatch: file was written for '" + stored_key +
                         "' but this campaign is '" + key_ +
                         "' (delete the file to start over)");
  std::size_t i = 2;
  while (i < lines.size()) {
    if (lines[i].empty()) {
      ++i;
      continue;
    }
    std::string name;
    std::size_t count = 0;
    if (!parse_section_header(lines[i], name, count) ||
        i + 1 >= lines.size() || lines[i + 1].size() != count ||
        !valid_slots(lines[i + 1])) {
      drop_tail(lines, i);
      return;
    }
    sections_.emplace_back(
        name, std::vector<char>(lines[i + 1].begin(), lines[i + 1].end()));
    ++salvage_.sections_kept;
    i += 2;
  }
}

void CampaignCheckpoint::drop_tail(const std::vector<std::string>& lines,
                                   std::size_t from) {
  salvage_.salvaged = true;
  for (std::size_t j = from; j < lines.size(); ++j) {
    if (lines[j].rfind("section ", 0) == 0) {
      ++salvage_.sections_dropped;
    } else if (slot_like(lines[j])) {
      for (const char c : lines[j]) salvage_.dropped_slots += c != '.';
    }
  }
}

void CampaignCheckpoint::cleanup_stale_tmps() const {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p(path_);
  const fs::path dir = p.parent_path().empty() ? fs::path(".")
                                               : p.parent_path();
  // Only THIS checkpoint's stale tmps are fair game: the name must be
  // "<file>.tmp.<our tag>.<pid>" (or "<file>.tmp.<pid>" for an untagged
  // instance -- a digits-only suffix, so an untagged cleanup can never
  // swallow a tagged shard's in-flight tmp sharing the same path).
  const std::string prefix =
      p.filename().string() + ".tmp." + (tag_.empty() ? "" : tag_ + ".");
  fs::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string pid_part = name.substr(prefix.size());
    if (pid_part.empty() ||
        pid_part.find_first_not_of("0123456789") != std::string::npos)
      continue;
    fs::remove(entry.path(), ec);
  }
}

std::vector<char>* CampaignCheckpoint::find_locked(const std::string& section) {
  for (auto& [name, slots] : sections_)
    if (name == section) return &slots;
  return nullptr;
}

std::vector<std::optional<Verdict>> CampaignCheckpoint::restore(
    const std::string& section, std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<char>* slots = find_locked(section);
  if (slots == nullptr) {
    sections_.emplace_back(section, std::vector<char>(count, '.'));
    return std::vector<std::optional<Verdict>>(count);
  }
  if (slots->size() != count)
    malformed(path_, "section '" + section + "' has " +
                         std::to_string(slots->size()) +
                         " slots but the campaign needs " +
                         std::to_string(count) +
                         " (different library?)");
  std::vector<std::optional<Verdict>> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    Verdict v;
    if (verdict_from_char((*slots)[i], v)) out[i] = v;
  }
  return out;
}

void CampaignCheckpoint::record(const std::string& section, std::size_t index,
                                Verdict v) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<char>* slots = find_locked(section);
  if (slots == nullptr || index >= slots->size())
    throw std::logic_error("CampaignCheckpoint::record: unknown slot " +
                           section + "[" + std::to_string(index) + "]");
  (*slots)[index] = to_char(v);
  if (++dirty_ >= flush_every_) {
    try {
      flush_locked();
    } catch (const std::exception&) {
      // A failed periodic flush costs durability, not correctness: keep
      // the in-memory verdicts, retry after another flush_every_ records.
      ++flush_failures_;
      dirty_ = 0;
    }
  }
}

void CampaignCheckpoint::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

std::size_t CampaignCheckpoint::flush_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flush_failures_;
}

std::size_t CampaignCheckpoint::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, slots] : sections_)
    for (char c : slots) n += c != '.';
  return n;
}

std::string CampaignCheckpoint::render_locked() const {
  std::ostringstream os;
  const std::string header =
      std::string(kMagicV2) + '\n' + "key " + key_ + '\n';
  os << header << crc_line(header) << '\n';
  for (const auto& [name, slots] : sections_) {
    std::string group = "section " + name + ' ' +
                        std::to_string(slots.size()) + '\n';
    group.append(slots.data(), slots.size());
    group += '\n';
    os << group << crc_line(group) << '\n';
  }
  return os.str();
}

void CampaignCheckpoint::flush_locked() {
  util::FaultInjector& inj = util::FaultInjector::global();
  const std::string data = render_locked();
  const std::string tmp = path_ + ".tmp." +
                          (tag_.empty() ? "" : tag_ + ".") +
                          std::to_string(static_cast<long>(::getpid()));
  int fd = -1;
  try {
    inj.maybe_fail("checkpoint.open");
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
      throw std::runtime_error("checkpoint: cannot open " + tmp + ": " +
                               std::strerror(errno));
    inj.maybe_fail("checkpoint.write");
    if (!util::write_full(fd, data.data(), data.size()))
      throw std::runtime_error("checkpoint: write failed for " + tmp + ": " +
                               std::strerror(errno));
    // The rename below publishes the file; without this fsync a crash
    // could publish a name whose *contents* never reached the disk.
    inj.maybe_fail("checkpoint.fsync");
    if (::fsync(fd) != 0)
      throw std::runtime_error("checkpoint: fsync failed for " + tmp + ": " +
                               std::strerror(errno));
    if (::close(fd) != 0) {
      fd = -1;
      throw std::runtime_error("checkpoint: close failed for " + tmp + ": " +
                               std::strerror(errno));
    }
    fd = -1;
    inj.maybe_fail("checkpoint.rename");
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
      throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                               path_ + ": " + std::strerror(errno));
  } catch (...) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  // Make the rename itself durable (best effort -- some filesystems
  // refuse to open a directory for fsync).
  const std::filesystem::path parent = std::filesystem::path(path_).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  dirty_ = 0;
}

}  // namespace xtest::sim
