#include "sim/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xtest::sim {

namespace {

constexpr const char* kMagic = "xtest-checkpoint v1";

[[noreturn]] void malformed(const std::string& path, const std::string& why) {
  throw std::runtime_error("checkpoint " + path + ": " + why);
}

}  // namespace

CampaignCheckpoint::CampaignCheckpoint(std::string path, std::string key,
                                       std::size_t flush_every)
    : path_(std::move(path)),
      key_(std::move(key)),
      flush_every_(flush_every == 0 ? 1 : flush_every) {
  std::ifstream in(path_);
  if (!in) return;  // fresh campaign, nothing to resume
  std::ostringstream ss;
  ss << in.rdbuf();
  load(ss.str());
}

void CampaignCheckpoint::load(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kMagic)
    malformed(path_, "not a checkpoint file (bad magic line)");
  if (!std::getline(is, line) || line.rfind("key ", 0) != 0)
    malformed(path_, "missing key line");
  const std::string stored_key = line.substr(4);
  if (stored_key != key_)
    malformed(path_, "key mismatch: file was written for '" + stored_key +
                         "' but this campaign is '" + key_ +
                         "' (delete the file to start over)");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream hs(line);
    std::string word, name;
    std::size_t count = 0;
    if (!(hs >> word >> name >> count) || word != "section")
      malformed(path_, "expected 'section <name> <count>', got '" + line + "'");
    std::string slots;
    if (!std::getline(is, slots) || slots.size() != count)
      malformed(path_, "section '" + name + "' slot line has " +
                           std::to_string(slots.size()) + " chars, expected " +
                           std::to_string(count));
    Verdict v;
    for (char c : slots)
      if (c != '.' && !verdict_from_char(c, v))
        malformed(path_, "section '" + name + "' has unknown verdict code '" +
                             std::string(1, c) + "'");
    sections_.emplace_back(name, std::vector<char>(slots.begin(), slots.end()));
  }
}

std::vector<char>* CampaignCheckpoint::find_locked(const std::string& section) {
  for (auto& [name, slots] : sections_)
    if (name == section) return &slots;
  return nullptr;
}

std::vector<std::optional<Verdict>> CampaignCheckpoint::restore(
    const std::string& section, std::size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<char>* slots = find_locked(section);
  if (slots == nullptr) {
    sections_.emplace_back(section, std::vector<char>(count, '.'));
    return std::vector<std::optional<Verdict>>(count);
  }
  if (slots->size() != count)
    malformed(path_, "section '" + section + "' has " +
                         std::to_string(slots->size()) +
                         " slots but the campaign needs " +
                         std::to_string(count) +
                         " (different library?)");
  std::vector<std::optional<Verdict>> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    Verdict v;
    if (verdict_from_char((*slots)[i], v)) out[i] = v;
  }
  return out;
}

void CampaignCheckpoint::record(const std::string& section, std::size_t index,
                                Verdict v) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<char>* slots = find_locked(section);
  if (slots == nullptr || index >= slots->size())
    throw std::logic_error("CampaignCheckpoint::record: unknown slot " +
                           section + "[" + std::to_string(index) + "]");
  (*slots)[index] = to_char(v);
  if (++dirty_ >= flush_every_) flush_locked();
}

void CampaignCheckpoint::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

std::size_t CampaignCheckpoint::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, slots] : sections_)
    for (char c : slots) n += c != '.';
  return n;
}

std::string CampaignCheckpoint::render_locked() const {
  std::ostringstream os;
  os << kMagic << '\n' << "key " << key_ << '\n';
  for (const auto& [name, slots] : sections_) {
    os << "section " << name << ' ' << slots.size() << '\n';
    os.write(slots.data(), static_cast<std::streamsize>(slots.size()));
    os << '\n';
  }
  return os.str();
}

void CampaignCheckpoint::flush_locked() {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot write " + tmp);
    out << render_locked();
    out.flush();
    if (!out) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw std::runtime_error("checkpoint: cannot rename " + tmp + " to " +
                             path_);
  dirty_ = 0;
}

}  // namespace xtest::sim
