#include "sim/signature.h"

#include <chrono>

#include "sbst/slice.h"
#include "util/fault_injector.h"

namespace xtest::sim {

namespace {

ResponseSnapshot capture(soc::System& system,
                         const sbst::TestProgram& program,
                         const soc::RunResult& rr) {
  util::FaultInjector::global().maybe_fail("signature.capture");
  ResponseSnapshot snap;
  snap.completed =
      rr.halted && rr.reason == cpu::HaltReason::kHltInstruction;
  snap.reason = rr.reason;
  snap.cycles = rr.cycles;
  snap.values.reserve(program.response_cells.size());
  for (cpu::Addr a : program.response_cells)
    snap.values.push_back(system.memory().read(a));
  return snap;
}

}  // namespace

ResponseSnapshot run_and_capture(soc::System& system,
                                 const sbst::TestProgram& program,
                                 std::uint64_t max_cycles) {
  system.load_and_reset(program.image, program.entry);
  const soc::RunResult rr = system.run(max_cycles);
  return capture(system, program, rr);
}

ResponseSnapshot run_and_capture(soc::System& system,
                                 const sbst::TestProgram& program,
                                 std::uint64_t max_cycles,
                                 std::uint64_t deadline_ms) {
  if (deadline_ms == 0) return run_and_capture(system, program, max_cycles);
  using Clock = std::chrono::steady_clock;
  // The watchdog is a ProgramSlice consumer: run one budget-bounded slice
  // at a time and check the wall clock between slices.  Slicing is
  // bitwise-exact (sbst/slice.h), so the captured snapshot is identical
  // to the unwatched run's.  Budgets are coarse enough that the time
  // check is noise, fine enough that a wedged simulation is caught within
  // a few slices.
  constexpr std::uint64_t kSliceCycles = 4096;
  const auto start = Clock::now();
  sbst::ProgramSlice slice(program);
  soc::RunResult rr;
  for (;;) {
    const std::uint64_t budget =
        std::min<std::uint64_t>(kSliceCycles, max_cycles - slice.cycles());
    rr = slice.run(system, budget);
    if (rr.halted || rr.cycles >= max_cycles) break;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             Clock::now() - start)
                             .count();
    if (static_cast<std::uint64_t>(elapsed) >= deadline_ms ||
        util::FaultInjector::global().fire("campaign.deadline"))
      throw DeadlineExceeded(
          "defect deadline: simulation still running after " +
          std::to_string(rr.cycles) + " cycles (deadline " +
          std::to_string(deadline_ms) + " ms)");
  }
  return capture(system, program, rr);
}

}  // namespace xtest::sim
