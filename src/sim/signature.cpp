#include "sim/signature.h"

namespace xtest::sim {

ResponseSnapshot run_and_capture(soc::System& system,
                                 const sbst::TestProgram& program,
                                 std::uint64_t max_cycles) {
  system.load_and_reset(program.image, program.entry);
  const soc::RunResult rr = system.run(max_cycles);
  ResponseSnapshot snap;
  snap.completed =
      rr.halted && rr.reason == cpu::HaltReason::kHltInstruction;
  snap.reason = rr.reason;
  snap.cycles = rr.cycles;
  snap.values.reserve(program.response_cells.size());
  for (cpu::Addr a : program.response_cells)
    snap.values.push_back(system.memory().read(a));
  return snap;
}

}  // namespace xtest::sim
