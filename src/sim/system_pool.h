// Process-wide pool of reusable simulators.
//
// An accelerated-tier System accumulates state that is expensive to
// rebuild and pure with respect to its configuration: the warm nominal
// transition memos, and the pooled per-defect evaluator/memo pairs
// (soc::System::PooledDefect).  Campaign passes, per-line sweeps, session
// sweeps and checkpoint resumes construct simulators with the *same*
// SystemConfig over and over; leasing them from this pool instead lets a
// later pass revive every memo the earlier pass filled -- the simulators
// are exact, so reuse changes throughput, never verdicts.
//
// Reference-tier simulators are deliberately not pooled: the reference
// interpreter is the semantic baseline and keeps the seed's
// construct-per-campaign behaviour.  An armed fault injector also
// bypasses the pool, so chaos runs see the exact per-run state their
// fault scripts were written against.
//
// Counters: a leased System's transition-cache and tier counters carry
// history from earlier leases.  Callers that aggregate per-campaign stats
// must therefore absorb *deltas*; Lease snapshots both counter sets at
// acquisition for exactly that.

#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "soc/system.h"

namespace xtest::sim {

class SystemPool {
 public:
  /// Exclusive RAII checkout of a simulator.  Destruction returns the
  /// simulator to the pool (after clearing defects and the micro-program
  /// pin) -- or simply destroys it when pooling is bypassed.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    soc::System& operator*() { return *system_; }
    soc::System* operator->() { return system_.get(); }
    const soc::System& operator*() const { return *system_; }
    const soc::System* operator->() const { return system_.get(); }
    explicit operator bool() const { return system_ != nullptr; }

    /// Counter values at acquisition; subtract to get this lease's own
    /// traffic.
    soc::CacheCounters cache_at_acquire() const { return cache0_; }
    soc::TierCounters tiers_at_acquire() const { return tiers0_; }
    soc::CacheCounters cache_delta() const;
    soc::TierCounters tier_delta() const;

   private:
    friend class SystemPool;
    std::unique_ptr<soc::System> system_;
    SystemPool* home_ = nullptr;  // null: bypassed, destroy on release
    soc::SystemConfig config_;
    soc::CacheCounters cache0_;
    soc::TierCounters tiers0_;
  };

  /// Leases an idle simulator built with `config`, constructing one when
  /// none is parked.  Bypasses pooling (fresh construct, destroy on
  /// release) for the reference tier and under an armed fault injector.
  Lease acquire(const soc::SystemConfig& config);

  /// Destroys every parked simulator (tests; memory pressure).
  void clear();

  /// Parked simulators across all configurations (tests).
  std::size_t idle_count() const;

  static SystemPool& global();

 private:
  struct Entry {
    soc::SystemConfig config;
    std::vector<std::unique_ptr<soc::System>> idle;
  };

  void release(std::unique_ptr<soc::System> system,
               const soc::SystemConfig& config);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace xtest::sim
