// On-line (in-field) defect-detection campaigns.
//
// The off-line campaign of sim/campaign.h owns the processor for the whole
// self-test program; in the field the core must keep serving its
// functional workload, so the on-line mode interleaves them
// (soc/online.h): every round runs one functional window and one self-test
// slice, and the tester-visible response cells are compared against the
// defect-free schedule at every slice boundary.  Two metrics fall out that
// the off-line flow cannot express:
//
//   * detection latency -- global-clock cycles from defect activation
//     (cycle 0: a field defect is present from power-on of the schedule)
//     to the first slice boundary where the responses diverge from gold;
//   * functional interference -- heartbeat deadlines the workload missed
//     because the self-test held the core (and, under a defect, because
//     the defect corrupted the workload's own traffic).
//
// Every per-defect outcome is a pure function of (config, online config,
// program, bus, defect), so results are bitwise identical at any thread
// count and across checkpoint interrupt/resume -- the same contract as the
// off-line campaign, enforced by tests/test_online.cpp.

#pragma once

#include <cstdint>
#include <vector>

#include "sbst/generator.h"
#include "sbst/program.h"
#include "sim/campaign.h"
#include "sim/verdict.h"
#include "soc/online.h"
#include "soc/system.h"
#include "util/parallel.h"
#include "xtalk/defect.h"

namespace xtest::sim {

/// Per-defect outcome of an on-line campaign round sequence.
struct OnlineOutcome {
  Verdict verdict = Verdict::kUndetected;
  /// Global-clock cycles from activation to the first diverging slice
  /// boundary; 0 for an undetected defect.
  std::uint64_t detection_latency_cycles = 0;
  /// Interleaved rounds this defect's schedule executed.
  std::uint64_t rounds = 0;
  /// Functional-interference counters of this defect's schedule.
  std::uint64_t heartbeats = 0;
  std::uint64_t deadlines_late = 0;
  std::uint64_t deadlines_missed = 0;

  bool operator==(const OnlineOutcome&) const = default;
};

/// Result of one on-line campaign: verdicts (same taxonomy as off-line)
/// plus the per-defect outcomes and the defect-free baseline schedule.
struct OnlineResult {
  std::vector<Verdict> verdicts;
  std::vector<OnlineOutcome> outcomes;
  /// The gold (defect-free) schedule: its interference counters are the
  /// scheduling cost of the self-test itself, before any defect.
  OnlineOutcome gold;
};

/// Runs `program` under every defect of `library` applied to `bus`, on the
/// interleaved schedule of `online`.  Supported CampaignOptions: parallel,
/// stats, retry_errors, cancel, progress, defect_deadline_ms, and the
/// checkpoint_* knobs (the on-line checkpoint persists each completed
/// outcome -- verdict, latency, and interference -- so a resumed campaign
/// reports exactly the uninterrupted stats).  Batching, gold/run memo
/// reuse, and sharding do not apply on-line and are ignored; ShardSpec
/// other than {0,1} throws.
OnlineResult run_online_detection(const soc::SystemConfig& config,
                                  const soc::OnlineConfig& online,
                                  const sbst::TestProgram& program,
                                  soc::BusKind bus,
                                  const xtalk::DefectLibrary& library,
                                  const CampaignOptions& options);

/// Multi-session on-line campaign: sessions are scheduled one after the
/// other (the field rotates through its self-test set).  Verdicts merge
/// with merge_verdicts; a defect's latency is the first detecting
/// session's latency; rounds and interference counters sum over sessions.
OnlineResult run_online_detection_sessions(
    const soc::SystemConfig& config, const soc::OnlineConfig& online,
    const std::vector<sbst::GenerationResult>& sessions, soc::BusKind bus,
    const xtalk::DefectLibrary& library, const CampaignOptions& options);

/// Checkpoint identity for an on-line campaign: the off-line key plus the
/// interleaving knobs and (when not the default full-swing backend) the
/// electrical calibration, so a resumed campaign with a different schedule
/// or backend is rejected instead of silently mixing outcomes.
std::string online_checkpoint_key(soc::BusKind bus,
                                  const xtalk::DefectLibrary& library,
                                  const soc::OnlineConfig& online,
                                  const xtalk::ElectricalConfig& electrical);

}  // namespace xtest::sim
