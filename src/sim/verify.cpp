#include "sim/verify.h"

namespace xtest::sim {

VerificationResult verify_program(const sbst::TestProgram& program,
                                  const soc::SystemConfig& config,
                                  std::uint64_t cycle_factor) {
  soc::System system(config);
  VerificationResult result;
  // Generous first budget: the gold run must complete on its own.
  result.gold = run_and_capture(system, program, 1'000'000);
  result.max_cycles = result.gold.cycles * cycle_factor + 1000;

  result.verdicts.reserve(program.tests.size());
  for (std::size_t i = 0; i < program.tests.size(); ++i) {
    const sbst::PlannedTest& t = program.tests[i];
    system.set_forced_maf(soc::ForcedMaf{t.bus, t.fault});
    const ResponseSnapshot snap =
        run_and_capture(system, program, result.max_cycles);
    const Verdict v = classify(result.gold, snap);
    result.verdicts.push_back(v);
    if (!is_detected(v)) result.ineffective.push_back(i);
    system.set_forced_maf(std::nullopt);
  }
  return result;
}

}  // namespace xtest::sim
