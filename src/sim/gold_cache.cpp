#include "sim/gold_cache.h"

#include <cstring>
#include <mutex>
#include <unordered_map>

namespace xtest::sim {

namespace {

constexpr std::size_t kDefaultCapacity = 256;

struct Fnv1a {
  std::uint64_t h = 0xCBF29CE484222325ull;

  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

void hash_geometry(Fnv1a& h, const xtalk::BusGeometry& g) {
  h.u64(g.width);
  h.f64(g.wire_length_um);
  h.f64(g.coupling_fF_per_um);
  h.f64(g.ground_fF_per_um);
  h.f64(g.distance_decay_exponent);
  h.f64(g.driver_resistance_ohm);
}

}  // namespace

std::uint64_t gold_run_key(const soc::SystemConfig& config,
                           const sbst::TestProgram& program,
                           std::uint64_t max_cycles) {
  Fnv1a h;
  hash_geometry(h, config.address_geometry);
  hash_geometry(h, config.data_geometry);
  hash_geometry(h, config.control_geometry);
  h.f64(config.cth_ratio);
  h.f64(config.clock_period_scale);
  // Tiers are bitwise-equivalent by contract, but a cached snapshot must
  // never cross tiers: an accelerated-tier bug must not contaminate
  // reference-tier verdicts through the memo (DESIGN.md).
  h.u64(static_cast<std::uint64_t>(config.exec_tier));
  // The electrical backend recalibrates every receiver threshold, so a
  // snapshot from one backend must never answer for another.
  h.u64(static_cast<std::uint64_t>(config.electrical.backend));
  h.f64(config.electrical.swing_ratio);
  h.f64(config.electrical.restorer_ratio);
  // Program identity: every defined byte (address + value) plus the entry
  // point and the cells the tester unloads.
  for (std::size_t a = 0; a < cpu::kMemWords; ++a) {
    const auto addr = static_cast<cpu::Addr>(a);
    if (!program.image.defined(addr)) continue;
    h.u64(a);
    h.bytes(&program.image.raw()[a], 1);
  }
  h.u64(program.entry);
  h.u64(program.response_cells.size());
  for (cpu::Addr cell : program.response_cells) h.u64(cell);
  h.u64(max_cycles);
  return h.h;
}

struct GoldRunCache::Impl {
  struct Entry {
    ResponseSnapshot snapshot;
    std::uint64_t last_use = 0;
  };

  std::mutex mutex;
  std::unordered_map<std::uint64_t, Entry> map;
  std::uint64_t clock = 0;  // recency ticks; bumped on find-hit and store
  std::size_t capacity = kDefaultCapacity;
  std::uint64_t evictions = 0;

  /// Drops least-recently-used entries until size fits `capacity`.
  /// Linear scan per eviction: the cap is small (hundreds) and eviction
  /// is rare next to the thousands of hits an entry serves.
  std::size_t evict_to_capacity() {
    std::size_t evicted = 0;
    while (map.size() > capacity) {
      auto lru = map.begin();
      for (auto it = map.begin(); it != map.end(); ++it)
        if (it->second.last_use < lru->second.last_use) lru = it;
      map.erase(lru);
      ++evicted;
    }
    evictions += evicted;
    return evicted;
  }
};

GoldRunCache::Impl& GoldRunCache::impl() {
  static Impl instance;
  return instance;
}

GoldRunCache& GoldRunCache::global() {
  static GoldRunCache cache;
  return cache;
}

bool GoldRunCache::find(std::uint64_t key, ResponseSnapshot& out) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  const auto it = im.map.find(key);
  if (it == im.map.end()) return false;
  it->second.last_use = ++im.clock;
  out = it->second.snapshot;
  return true;
}

std::size_t GoldRunCache::store(std::uint64_t key,
                                const ResponseSnapshot& snapshot) {
  if (!snapshot.completed) return 0;
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  Impl::Entry& e = im.map[key];
  e.snapshot = snapshot;
  e.last_use = ++im.clock;
  return im.evict_to_capacity();
}

void GoldRunCache::set_capacity(std::size_t entries) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.capacity = entries > 0 ? entries : 1;
  im.evict_to_capacity();
}

std::size_t GoldRunCache::capacity() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  return im.capacity;
}

std::uint64_t GoldRunCache::evictions() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  return im.evictions;
}

void GoldRunCache::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.map.clear();
  im.evictions = 0;
}

std::size_t GoldRunCache::size() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  return im.map.size();
}

std::uint64_t defect_run_key(std::uint64_t gold_key, soc::BusKind bus,
                             std::uint64_t budget,
                             const xtalk::Defect& defect) {
  Fnv1a h;
  h.u64(gold_key);
  h.u64(static_cast<std::uint64_t>(bus));
  h.u64(budget);
  h.u64(defect.width());
  for (unsigned i = 0; i < defect.width(); ++i)
    for (unsigned j = i + 1; j < defect.width(); ++j)
      h.f64(defect.factor(i, j));
  return h.h;
}

struct DefectRunCache::Impl {
  struct Outcome {
    Verdict verdict;
    std::uint64_t cycles;
  };

  // A single defect-library pass stores one entry per defect; the cap
  // covers hundreds of full libraries before the table is dropped.
  static constexpr std::size_t kCapacity = 1u << 16;

  std::mutex mutex;
  std::unordered_map<std::uint64_t, Outcome> map;
};

DefectRunCache::Impl& DefectRunCache::impl() {
  static Impl* instance = new Impl;
  return *instance;
}

DefectRunCache& DefectRunCache::global() {
  static DefectRunCache cache;
  return cache;
}

bool DefectRunCache::find(std::uint64_t key, Verdict& verdict,
                          std::uint64_t& cycles) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  const auto it = im.map.find(key);
  if (it == im.map.end()) return false;
  verdict = it->second.verdict;
  cycles = it->second.cycles;
  return true;
}

void DefectRunCache::store(std::uint64_t key, Verdict verdict,
                           std::uint64_t cycles) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  if (im.map.size() >= Impl::kCapacity) im.map.clear();
  im.map[key] = Impl::Outcome{verdict, cycles};
}

void DefectRunCache::clear() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  im.map.clear();
}

std::size_t DefectRunCache::size() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  return im.map.size();
}

}  // namespace xtest::sim
