// Test-response capture.
//
// After a self-test run the external tester unloads the program's response
// cells and compares them with the expected (gold) values; it also notices
// when the chip fails to signal completion within the test-time budget.
// A ResponseSnapshot is exactly what the tester sees.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cpu/cpu.h"
#include "sbst/program.h"
#include "sim/verdict.h"
#include "soc/system.h"

namespace xtest::sim {

/// Thrown by the deadline-guarded run_and_capture overload when one
/// defect simulation exceeds its wall-clock budget.  Derives from
/// runtime_error so the campaign quarantine path treats a wedged
/// simulation exactly like any other SimError.
struct DeadlineExceeded : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct ResponseSnapshot {
  /// Response bytes, parallel to TestProgram::response_cells.
  std::vector<std::uint8_t> values;
  /// Whether the program reached HLT within the cycle budget.
  bool completed = false;

  /// Not part of detection (a tester only sees responses + timeout):
  cpu::HaltReason reason = cpu::HaltReason::kRunning;
  std::uint64_t cycles = 0;

  /// Detection = any response byte differs or completion status differs.
  bool matches(const ResponseSnapshot& o) const {
    return completed == o.completed && values == o.values;
  }
};

/// Loads the program, runs it (at most `max_cycles`), and captures the
/// responses from memory.  The response unload consults fault-injection
/// site "signature.capture".
ResponseSnapshot run_and_capture(soc::System& system,
                                 const sbst::TestProgram& program,
                                 std::uint64_t max_cycles);

/// Watchdog variant: the run is sliced so the wall clock is checked every
/// few thousand simulated cycles, and a simulation still going after
/// `deadline_ms` milliseconds throws DeadlineExceeded instead of hanging
/// its worker until the cycle budget drains.  `deadline_ms` = 0 disables
/// the watchdog (identical to the plain overload).  The deadline check
/// also consults fault-injection site "campaign.deadline" so tests can
/// trip the timeout path deterministically.
ResponseSnapshot run_and_capture(soc::System& system,
                                 const sbst::TestProgram& program,
                                 std::uint64_t max_cycles,
                                 std::uint64_t deadline_ms);

/// Tester-visible verdict for one faulty run against the gold run: a run
/// that never signals completion is a timeout detection (the paper's
/// control-derailment case), a completed run with differing response bytes
/// is a plain detection, and a matching run is undetected.
inline Verdict classify(const ResponseSnapshot& gold,
                        const ResponseSnapshot& observed) {
  if (observed.matches(gold)) return Verdict::kUndetected;
  if (!observed.completed) return Verdict::kDetectedByTimeout;
  return Verdict::kDetected;
}

}  // namespace xtest::sim
