// Test-response capture.
//
// After a self-test run the external tester unloads the program's response
// cells and compares them with the expected (gold) values; it also notices
// when the chip fails to signal completion within the test-time budget.
// A ResponseSnapshot is exactly what the tester sees.

#pragma once

#include <cstdint>
#include <vector>

#include "cpu/cpu.h"
#include "sbst/program.h"
#include "sim/verdict.h"
#include "soc/system.h"

namespace xtest::sim {

struct ResponseSnapshot {
  /// Response bytes, parallel to TestProgram::response_cells.
  std::vector<std::uint8_t> values;
  /// Whether the program reached HLT within the cycle budget.
  bool completed = false;

  /// Not part of detection (a tester only sees responses + timeout):
  cpu::HaltReason reason = cpu::HaltReason::kRunning;
  std::uint64_t cycles = 0;

  /// Detection = any response byte differs or completion status differs.
  bool matches(const ResponseSnapshot& o) const {
    return completed == o.completed && values == o.values;
  }
};

/// Loads the program, runs it (at most `max_cycles`), and captures the
/// responses from memory.
ResponseSnapshot run_and_capture(soc::System& system,
                                 const sbst::TestProgram& program,
                                 std::uint64_t max_cycles);

/// Tester-visible verdict for one faulty run against the gold run: a run
/// that never signals completion is a timeout detection (the paper's
/// control-derailment case), a completed run with differing response bytes
/// is a plain detection, and a matching run is undetected.
inline Verdict classify(const ResponseSnapshot& gold,
                        const ResponseSnapshot& observed) {
  if (observed.matches(gold)) return Verdict::kUndetected;
  if (!observed.completed) return Verdict::kDetectedByTimeout;
  return Verdict::kDetected;
}

}  // namespace xtest::sim
