// Campaign checkpoint/resume.
//
// Long campaigns (the production target is millions of defect simulations)
// must survive interruption: a killed run restarts from its last flushed
// checkpoint instead of from zero, and -- because every verdict is a pure
// function of (system config, program, bus, defect) -- the resumed run is
// bitwise identical to an uninterrupted one at any thread count.
//
// The file is plain text, diffable, and crash-durable: the full state is
// written to a pid-unique "<path>.tmp.<pid>" ("<path>.tmp.<tag>.<pid>"
// when the checkpoint carries a tag, e.g. a campaign shard index),
// fsync'd, renamed over <path>, and the directory entry is fsync'd, so a
// crash at any point leaves either the previous or the new complete
// checkpoint -- never a torn one.  Stale tmp files from a previous crash
// are removed on open; cleanup is tag-aware, so per-shard checkpoints of
// one campaign sharing a directory (or even a path) can never delete each
// other's in-flight tmp files.
//
//   xtest-checkpoint v2
//   key <free-form campaign identity line>
//   crc <8 hex digits over the two lines above>
//   section <name> <count>
//   <count verdict chars: U D T E, '.' = pending>
//   crc <8 hex digits over the section header + slot line>
//
// Every line group carries a CRC-32 trailer, which makes the file
// *salvageable*: a load that finds a truncated or corrupted tail keeps the
// longest valid prefix of sections (dropping only the damaged suffix,
// reported via salvage()) instead of throwing the whole run away.  A
// legacy v1 file (no CRCs) still loads; the next flush rewrites it as v2.
//
// Sections let one file cover a multi-session campaign (one section per
// session program).  The key line guards against resuming with the wrong
// library/bus/seed: a *CRC-valid* mismatching key throws instead of
// silently mixing results (a corrupt key line is salvage, not mismatch).

#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/verdict.h"

namespace xtest::sim {

/// What a salvage load recovered and what it had to drop.
struct SalvageReport {
  /// True when the file was damaged and a prefix (possibly empty) was
  /// recovered instead of loading cleanly.
  bool salvaged = false;
  /// Sections recovered intact (the valid prefix).
  std::size_t sections_kept = 0;
  /// Section headers seen in the dropped tail (damaged or unverifiable).
  std::size_t sections_dropped = 0;
  /// Completed verdict chars visible in the dropped tail: work lost to
  /// the corruption that the resumed campaign re-simulates.
  std::size_t dropped_slots = 0;
};

class CampaignCheckpoint {
 public:
  /// Opens `path`: removes stale tmp files from a previous crash, then
  /// loads the existing checkpoint when the file exists.  A damaged file
  /// is salvaged (see salvage()); std::runtime_error is thrown only for a
  /// file that is not a checkpoint at all, an unreadable file, or a
  /// CRC-valid key mismatch.  `flush_every` is the number of record()
  /// calls between automatic atomic flushes.  `tag` (e.g. "s3" for shard
  /// 3) namespaces the tmp files: this instance writes
  /// "<path>.tmp.<tag>.<pid>" and its stale-tmp cleanup removes only tmps
  /// carrying the same tag, so concurrent worker processes with their own
  /// tags cannot delete each other's in-flight writes.  An untagged
  /// checkpoint writes "<path>.tmp.<pid>" and cleans only untagged tmps.
  CampaignCheckpoint(std::string path, std::string key,
                     std::size_t flush_every = 32, std::string tag = "");

  const std::string& path() const { return path_; }
  const std::string& key() const { return key_; }
  const std::string& tag() const { return tag_; }

  /// Result of the constructor's load: clean, fresh, or salvaged.
  const SalvageReport& salvage() const { return salvage_; }

  /// Returns the previously completed verdicts of `section` (nullopt =
  /// still pending), registering the section at `count` slots if it is
  /// new.  Throws if the stored section has a different slot count.
  std::vector<std::optional<Verdict>> restore(const std::string& section,
                                              std::size_t count);

  /// Records one completed verdict.  Thread-safe; flushes the whole state
  /// atomically every `flush_every` records.  A *periodic* flush that
  /// fails (ENOSPC, injected fault) is swallowed and counted in
  /// flush_failures() -- the campaign's in-memory verdicts outrank one
  /// missed flush, and the next flush retries.  The section must have
  /// been registered via restore().
  void record(const std::string& section, std::size_t index, Verdict v);

  /// Durable write: tmp + fsync + rename (+ directory fsync).  Throws on
  /// failure.  Thread-safe.
  void flush();

  /// Periodic flushes from record() that failed and were deferred.
  std::size_t flush_failures() const;

  /// Completed slots across all sections (for reporting).
  std::size_t completed() const;

 private:
  void load(const std::string& text);
  void load_v2(const std::vector<std::string>& lines);
  void load_v1(const std::vector<std::string>& lines);
  void drop_tail(const std::vector<std::string>& lines, std::size_t from);
  void cleanup_stale_tmps() const;
  void flush_locked();
  std::string render_locked() const;
  std::vector<char>* find_locked(const std::string& section);

  std::string path_;
  std::string key_;
  std::string tag_;
  std::size_t flush_every_;
  std::size_t dirty_ = 0;
  std::size_t flush_failures_ = 0;
  SalvageReport salvage_;
  mutable std::mutex mu_;
  /// Insertion-ordered sections; slot chars as in the file format.
  std::vector<std::pair<std::string, std::vector<char>>> sections_;
};

}  // namespace xtest::sim
