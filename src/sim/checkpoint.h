// Campaign checkpoint/resume.
//
// Long campaigns (the production target is millions of defect simulations)
// must survive interruption: a killed run restarts from its last flushed
// checkpoint instead of from zero, and -- because every verdict is a pure
// function of (system config, program, bus, defect) -- the resumed run is
// bitwise identical to an uninterrupted one at any thread count.
//
// The file is plain text, diffable, and written atomically (write the full
// state to "<path>.tmp", then rename over <path>), so a crash mid-flush
// leaves the previous consistent checkpoint in place:
//
//   xtest-checkpoint v1
//   key <free-form campaign identity line>
//   section <name> <count>
//   <count verdict chars: U D T E, '.' = pending>
//
// Sections let one file cover a multi-session campaign (one section per
// session program).  The key line guards against resuming with the wrong
// library/bus/seed: a mismatch throws instead of silently mixing results.

#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/verdict.h"

namespace xtest::sim {

class CampaignCheckpoint {
 public:
  /// Opens `path`: loads the existing checkpoint when the file exists
  /// (throwing std::runtime_error on a malformed file or a key mismatch),
  /// starts empty otherwise.  `flush_every` is the number of record()
  /// calls between automatic atomic flushes.
  CampaignCheckpoint(std::string path, std::string key,
                     std::size_t flush_every = 32);

  const std::string& path() const { return path_; }
  const std::string& key() const { return key_; }

  /// Returns the previously completed verdicts of `section` (nullopt =
  /// still pending), registering the section at `count` slots if it is
  /// new.  Throws if the stored section has a different slot count.
  std::vector<std::optional<Verdict>> restore(const std::string& section,
                                              std::size_t count);

  /// Records one completed verdict.  Thread-safe; flushes the whole state
  /// atomically every `flush_every` records.  The section must have been
  /// registered via restore().
  void record(const std::string& section, std::size_t index, Verdict v);

  /// Atomic write-tmp-then-rename of the full state.  Thread-safe.
  void flush();

  /// Completed slots across all sections (for reporting).
  std::size_t completed() const;

 private:
  void load(const std::string& text);
  void flush_locked();
  std::string render_locked() const;
  std::vector<char>* find_locked(const std::string& section);

  std::string path_;
  std::string key_;
  std::size_t flush_every_;
  std::size_t dirty_ = 0;
  mutable std::mutex mu_;
  /// Insertion-ordered sections; slot chars as in the file format.
  std::vector<std::pair<std::string, std::vector<char>>> sections_;
};

}  // namespace xtest::sim
