// Defect-simulation campaigns (Fig. 9 of the paper).
//
// A campaign takes a defect library for one bus, applies each defect to the
// system, executes a self-test program at speed, and compares the
// tester-visible responses against the gold run.  Because the *whole*
// program executes under the defect, fault masking and incidental
// activations are accounted for, exactly as the paper argues.

#pragma once

#include <cstdint>
#include <vector>

#include "sbst/generator.h"
#include "sbst/program.h"
#include "sim/signature.h"
#include "soc/system.h"
#include "util/parallel.h"
#include "xtalk/defect.h"

namespace xtest::sim {

/// Builds the paper's defect library for one of the system's buses:
/// Gaussian perturbation with `sigma_pct`, acceptance at the system's
/// calibrated Cth for that bus.
xtalk::DefectLibrary make_defect_library(const soc::SystemConfig& config,
                                         soc::BusKind bus, std::size_t count,
                                         std::uint64_t seed,
                                         double sigma_pct = 50.0);

/// Runs `program` under every defect of `library` applied to `bus`.
/// Returns one detected/undetected flag per defect.
///
/// Defects fan out across `parallel.resolve(library.size())` workers,
/// each owning its own soc::System; verdicts are written by defect index,
/// so the result is bitwise identical for every thread count (threads = 1
/// is the exact serial path).  When `stats` is non-null the campaign's
/// counters are *added* onto it (sessions/sweeps accumulate).
std::vector<bool> run_detection(const soc::SystemConfig& config,
                                const sbst::TestProgram& program,
                                soc::BusKind bus,
                                const xtalk::DefectLibrary& library,
                                std::uint64_t cycle_factor = 16,
                                const util::ParallelConfig& parallel = {},
                                util::CampaignStats* stats = nullptr);

/// Detection by a *set* of programs (multi-session): a defect is detected
/// when any session detects it.
std::vector<bool> run_detection_sessions(
    const soc::SystemConfig& config,
    const std::vector<sbst::GenerationResult>& sessions, soc::BusKind bus,
    const xtalk::DefectLibrary& library, std::uint64_t cycle_factor = 16,
    const util::ParallelConfig& parallel = {},
    util::CampaignStats* stats = nullptr);

/// Fig. 11: individual and cumulative defect coverage of the MA tests for
/// each interconnect of a bus.  "The MA test for interconnect i" is the
/// mini-program applying line i's MAF set (4 per direction); individual
/// coverage is its detection rate over the library, cumulative is the
/// union over lines 1..i, `overall` is the full single-session program.
struct PerLineCoverage {
  std::vector<double> individual;
  std::vector<double> cumulative;
  /// Number of line-i MA tests actually placed (0 placed => 0 coverage).
  std::vector<std::size_t> tests_placed;
  double overall = 0.0;
  std::size_t library_size = 0;
};

PerLineCoverage per_line_coverage(const soc::SystemConfig& config,
                                  soc::BusKind bus,
                                  const xtalk::DefectLibrary& library,
                                  const sbst::GeneratorConfig& base_config,
                                  std::uint64_t cycle_factor = 16,
                                  const util::ParallelConfig& parallel = {},
                                  util::CampaignStats* stats = nullptr);

inline double coverage(const std::vector<bool>& detected) {
  if (detected.empty()) return 0.0;
  std::size_t n = 0;
  for (bool d : detected) n += d;
  return static_cast<double>(n) / static_cast<double>(detected.size());
}

}  // namespace xtest::sim
