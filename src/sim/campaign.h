// Defect-simulation campaigns (Fig. 9 of the paper).
//
// A campaign takes a defect library for one bus, applies each defect to the
// system, executes a self-test program at speed, and compares the
// tester-visible responses against the gold run.  Because the *whole*
// program executes under the defect, fault masking and incidental
// activations are accounted for, exactly as the paper argues.
//
// Campaigns are resilient: per-defect verdicts carry the full taxonomy of
// sim/verdict.h, a defect whose simulation throws is quarantined as
// kSimError (optionally retried once serially) instead of aborting the
// sweep, and a checkpoint file lets an interrupted campaign resume with
// bitwise-identical results at any thread count.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sbst/generator.h"
#include "sbst/program.h"
#include "sim/signature.h"
#include "sim/verdict.h"
#include "soc/system.h"
#include "util/parallel.h"
#include "xtalk/defect.h"

namespace xtest::sim {

/// Builds the paper's defect library for one of the system's buses:
/// Gaussian perturbation with `sigma_pct`, acceptance at the system's
/// calibrated Cth for that bus.
xtalk::DefectLibrary make_defect_library(const soc::SystemConfig& config,
                                         soc::BusKind bus, std::size_t count,
                                         std::uint64_t seed,
                                         double sigma_pct = 50.0);

/// Thrown when a campaign is cancelled cooperatively (operator SIGINT /
/// SIGTERM via CampaignOptions::cancel, or fault-injection site
/// "campaign.kill" / "campaign.crash").  On the graceful path the final
/// checkpoint has already been flushed when this escapes, so the run is
/// resumable; the CLI maps it to its own exit code so wrappers can tell
/// "interrupted, resumable" from failure.
struct CampaignInterrupted : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One slice of a sharded campaign: shard `index` of `count` owns every
/// defect whose library index is congruent to it modulo `count`.  The
/// assignment is a pure function of (defect index, count) -- independent
/// of thread count, batch size, and checkpoint schedule -- so any process
/// can compute which slots any shard owns, and merge_shard_results can
/// recombine per-shard verdict vectors into exactly the single-process
/// result.  The default {0, 1} owns everything (an unsharded campaign).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool owns(std::size_t defect_index) const {
    return count <= 1 || defect_index % count == index;
  }
  /// Number of defects this shard owns out of a library of `n`.
  std::size_t owned_of(std::size_t n) const {
    if (count <= 1) return n;
    return n / count + (index < n % count ? 1 : 0);
  }
  bool operator==(const ShardSpec&) const = default;
};

/// Resilience and scheduling knobs for one campaign call.
struct CampaignOptions {
  /// Faulty-run cycle budget = gold cycles * cycle_factor + 1000; a run
  /// exhausting it is a tester timeout (kDetectedByTimeout).
  std::uint64_t cycle_factor = 16;
  util::ParallelConfig parallel;
  /// When non-null the campaign's counters are *added* onto it (sessions
  /// and sweeps accumulate).
  util::CampaignStats* stats = nullptr;
  /// Retry a quarantined defect once, serially on the calling thread,
  /// before recording kSimError.
  bool retry_errors = true;
  /// Non-empty enables checkpointing: completed verdicts are periodically
  /// flushed to this file (atomic write-tmp-then-rename) and restored on
  /// the next run with the same file.
  std::string checkpoint_path;
  /// Completed verdicts between automatic checkpoint flushes.
  std::size_t checkpoint_every = 32;
  /// Campaign identity guard stored in the checkpoint; resuming with a
  /// different key throws.  Empty = derived from the bus and library.
  std::string checkpoint_key;
  /// Section name inside the checkpoint file (multi-session campaigns use
  /// one section per session).
  std::string checkpoint_section = "campaign";
  /// Cooperative cancellation: when non-null and set, workers stop picking
  /// up new defects, the checkpoint is flushed, and the campaign throws
  /// CampaignInterrupted.  Wire a signal handler's flag here for graceful
  /// SIGINT/SIGTERM shutdown.
  const std::atomic<bool>* cancel = nullptr;
  /// Per-defect wall-clock watchdog in milliseconds (0 = off): a single
  /// defect simulation exceeding this is quarantined as kSimError instead
  /// of wedging its worker for the whole cycle budget.
  std::uint64_t defect_deadline_ms = 0;
  /// Reuse gold snapshots from the process-wide GoldRunCache (keyed by a
  /// hash of the system config + program) instead of re-simulating
  /// identical gold programs per session/line/resume.  Automatically
  /// bypassed while the fault injector is armed, so injected faults hit
  /// the same runs they would without the memo.
  bool reuse_gold = true;
  /// Transition-major batched pre-screening: before the per-defect loop,
  /// gather the library into DefectBatch windows of `batch_size` lanes and
  /// score every unique (held, driven) transition of the gold run against
  /// the whole window at once.  A defect whose received word matches the
  /// gold word on every transition provably runs identically to gold (the
  /// other buses stay nominal, so while execution matches gold the faulty
  /// run sees exactly gold's transitions) and is recorded kUndetected
  /// without simulation; diverging defects may still be masked later, so
  /// they fall through to the unchanged whole-program simulation.
  /// Verdicts are therefore bitwise identical with batching on or off, at
  /// any batch size -- enforced by tests/test_batch_equivalence.cpp.
  /// Screening runs serially before the worker fan-out and is recomputed
  /// on resume, so any checkpoint boundary is batch-safe.
  bool batched = true;
  /// Defects gathered per DefectBatch window (>= 1).
  std::size_t batch_size = 64;
  /// Shard of the library this call simulates (default: all of it).
  /// Non-owned slots are never simulated, screened, checkpointed, or
  /// tallied into stats; they stay kUndetected placeholders in the
  /// returned vector, and merge_shard_results recombines the slices.
  ShardSpec shard;
  /// When non-null, called after every newly completed verdict (screened,
  /// simulated, or retried) -- the worker-process heartbeat hook.  May be
  /// invoked concurrently from several worker threads; must not throw.
  std::function<void()> progress;
};

/// Runs `program` under every defect of `library` applied to `bus`.
/// Returns one Verdict per defect.
///
/// Defects fan out across `options.parallel.resolve(library.size())`
/// workers, each owning its own soc::System; verdicts are written by
/// defect index, so the result is bitwise identical for every thread
/// count (threads = 1 is the exact serial path) and for any
/// interrupt/resume schedule.
std::vector<Verdict> run_detection(const soc::SystemConfig& config,
                                   const sbst::TestProgram& program,
                                   soc::BusKind bus,
                                   const xtalk::DefectLibrary& library,
                                   const CampaignOptions& options);

/// Positional convenience overload (pre-resilience call sites).
std::vector<Verdict> run_detection(const soc::SystemConfig& config,
                                   const sbst::TestProgram& program,
                                   soc::BusKind bus,
                                   const xtalk::DefectLibrary& library,
                                   std::uint64_t cycle_factor = 16,
                                   const util::ParallelConfig& parallel = {},
                                   util::CampaignStats* stats = nullptr);

/// Detection by a *set* of programs (multi-session): per-session verdicts
/// are merged with merge_verdicts (a defect is detected when any session
/// detects it).  With checkpointing enabled each session gets its own
/// section ("session<i>") in the same file.
std::vector<Verdict> run_detection_sessions(
    const soc::SystemConfig& config,
    const std::vector<sbst::GenerationResult>& sessions, soc::BusKind bus,
    const xtalk::DefectLibrary& library, const CampaignOptions& options);

std::vector<Verdict> run_detection_sessions(
    const soc::SystemConfig& config,
    const std::vector<sbst::GenerationResult>& sessions, soc::BusKind bus,
    const xtalk::DefectLibrary& library, std::uint64_t cycle_factor = 16,
    const util::ParallelConfig& parallel = {},
    util::CampaignStats* stats = nullptr);

/// Default checkpoint identity for a (bus, library) pair; a campaign
/// resumed against a different bus, size, seed, sigma, or Cth is rejected.
std::string default_checkpoint_key(soc::BusKind bus,
                                   const xtalk::DefectLibrary& library);

/// One shard's slice of a campaign: the spec it ran under, its full-size
/// verdict vector (non-owned slots are placeholders and ignored by the
/// merge), and its stats.
struct ShardResult {
  ShardSpec shard;
  std::vector<Verdict> verdicts;
  util::CampaignStats stats;
};

/// Recombines per-shard campaign results into the single-process result:
/// verdict i is taken from the shard that owns i, so the merged vector is
/// bitwise identical to an unsharded run of the same campaign; the merged
/// stats are the raw-counter sums (CampaignStats::merge_from), from which
/// every derived ratio recomputes correctly.  Requires a complete,
/// consistent partition -- all shards agreeing on `count` and vector
/// size, with every shard index 0..count-1 present exactly once -- and
/// throws std::invalid_argument naming the violation otherwise.
std::vector<Verdict> merge_shard_results(const std::vector<ShardResult>& shards,
                                         util::CampaignStats* stats = nullptr);

/// Fig. 11: individual and cumulative defect coverage of the MA tests for
/// each interconnect of a bus.  "The MA test for interconnect i" is the
/// mini-program applying line i's MAF set (4 per direction); individual
/// coverage is its detection rate over the library, cumulative is the
/// union over lines 1..i, `overall` is the full single-session program.
struct PerLineCoverage {
  std::vector<double> individual;
  std::vector<double> cumulative;
  /// Number of line-i MA tests actually placed (0 placed => 0 coverage).
  std::vector<std::size_t> tests_placed;
  double overall = 0.0;
  std::size_t library_size = 0;
};

PerLineCoverage per_line_coverage(const soc::SystemConfig& config,
                                  soc::BusKind bus,
                                  const xtalk::DefectLibrary& library,
                                  const sbst::GeneratorConfig& base_config,
                                  std::uint64_t cycle_factor = 16,
                                  const util::ParallelConfig& parallel = {},
                                  util::CampaignStats* stats = nullptr);

}  // namespace xtest::sim
