// Text serialisation for reproducibility artefacts.
//
// Campaigns are deterministic given a seed, but real tester flows archive
// the exact program image and defect library that produced a result.
// These formats are plain text, diffable, and round-trip exactly:
//
//   memory image:   "<addr-hex>: <byte-hex>" per defined byte
//   defect library: header line, then one CSV row of factors per defect

#pragma once

#include <string>

#include "cpu/memory_image.h"
#include "xtalk/defect.h"

namespace xtest::sim {

/// Image -> text ("0x010: 2f\n...").  Only defined bytes are emitted.
std::string image_to_text(const cpu::MemoryImage& image);

/// Text -> image.  Throws std::runtime_error on malformed input, naming
/// the offending line (out-of-range addresses and wide bytes included).
cpu::MemoryImage image_from_text(const std::string& text);

/// Library -> CSV ("width,sigma_pct,cth_fF,count,seed" header then one
/// factor row per defect).
std::string library_to_csv(const xtalk::DefectLibrary& library,
                           unsigned width);

/// CSV -> defects (the config line is restored into the returned pair).
/// Throws std::runtime_error naming the offending row for NaN/inf/negative
/// coupling factors, wrong row widths, and corrupt headers.
struct LoadedLibrary {
  xtalk::DefectConfig config;
  std::vector<xtalk::Defect> defects;
};
LoadedLibrary library_from_csv(const std::string& csv);

}  // namespace xtest::sim
