// Crash-isolated sharded campaign execution.
//
// A Supervisor runs one campaign as N worker *processes*, each owning the
// shard of the defect library congruent to its index mod N
// (sim::ShardSpec), each writing its own v2 CRC-checkpoint.  Workers are
// re-executions of this very binary ("<xtest> campaign --scenario <job>
// --shard k/N --checkpoint <per-shard path> --stats-json
// --heartbeat-fd 3"), so the job description travels as a scenario file
// -- the same wire format `xtest scenarios --dump` emits.
//
// The parent monitors a pipe-based heartbeat per worker (one byte per
// completed verdict, plus one on startup) on top of the worker's own
// per-defect wall-clock deadline.  A worker that exits nonzero, dies on a
// signal, or goes silent past the heartbeat timeout is SIGKILLed (if
// needed) and respawned with exponential backoff; durable progress --
// the shard checkpoint's content changing between failures -- resets the
// retry budget, so a worker that keeps moving is never quarantined no
// matter how often it is killed.  A shard that exhausts its retries
// *without* durable progress is quarantined: its completed verdicts are
// salvaged from the checkpoint, its unfinished defects are reported as
// kSimError with an error_log entry, and the campaign still completes
// (graceful degradation; the CLI maps this to its own exit code).
//
// Because every shard resumes from its own checkpoint and the shard
// assignment is a pure function of the defect index, the merged verdicts
// are bitwise identical to a single-process run for ANY kill schedule
// that does not end in quarantine -- the property the chaos worker-kill
// soak enforces.  Fault-injection sites "supervisor.spawn" (spawn
// attempt fails), "supervisor.heartbeat" (a worker's heartbeat is
// treated as lost) and, in the worker, "worker.exit" (abrupt _Exit mid
// campaign) make the retry/backoff/salvage paths deterministically
// testable.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/verdict.h"
#include "util/parallel.h"

namespace xtest::sim {

/// The campaign one supervisor run executes, described entirely by data
/// a worker process can reconstruct: the scenario file is the job's wire
/// format, the checkpoint key/sections pin the resume identity.
struct SupervisorJob {
  /// Worker executable (normally util::current_executable()).
  std::string binary;
  /// Scenario file handed to every worker via --scenario.  Must describe
  /// the campaign with workers = 0 and shard = 0/1 -- the supervisor
  /// overrides the shard per worker on the command line.
  std::string scenario_path;
  /// Size of the defect library the scenario generates.
  std::size_t defect_count = 0;
  /// Checkpoint sections the campaign writes, in session order
  /// ("session0", "session2", ...): exactly the non-empty sessions the
  /// scenario materializes.
  std::vector<std::string> sections;
  /// Campaign identity (sim::default_checkpoint_key) shared by all
  /// shards; guards every per-shard file against the wrong library.
  std::string checkpoint_key;
  /// Per-shard checkpoint files are "<checkpoint_base>.shard<k>".
  std::string checkpoint_base;
  /// Fault-injection spec forwarded verbatim to every worker's --faults
  /// (empty = none).  Worker sites (worker.exit, campaign.*,
  /// checkpoint.*) fire in the workers; supervisor.* sites fire here.
  std::string fault_spec;
};

struct SupervisorOptions {
  /// Worker processes = shard count.
  std::size_t workers = 2;
  /// Respawns granted to a shard between durable-progress events; a
  /// failure with progress since the last one refills the budget.
  std::size_t worker_retries = 3;
  /// Initial respawn backoff; doubles per progress-less failure, capped
  /// at 5 s.
  std::uint64_t worker_backoff_ms = 50;
  /// A worker silent (no heartbeat byte) for longer is declared wedged
  /// and SIGKILLed.  The in-worker per-defect deadline
  /// (campaign.defect_deadline_ms) bounds a single stuck simulation;
  /// this bounds everything else.
  std::uint64_t heartbeat_timeout_ms = 30000;
  /// Chaos mode: when > 0, SIGKILL a random live worker roughly every
  /// this many milliseconds (seeded by chaos_seed, capped at
  /// chaos_max_kills).  Chaos kills are supervisor-inflicted and never
  /// consume the victim's retry budget.
  std::uint64_t chaos_kill_ms = 0;
  std::uint64_t chaos_seed = 0;
  /// 0 = 3 kills per worker.
  std::size_t chaos_max_kills = 0;
  /// Cooperative cancellation (SIGINT/SIGTERM): workers get SIGTERM,
  /// flush their checkpoints, and the run throws CampaignInterrupted --
  /// resumable exactly like a single-process campaign.  The flag is also
  /// honoured *inside* respawn-backoff windows: a cancel during a backoff
  /// wait aborts promptly instead of sleeping the window out.
  const std::atomic<bool>* cancel = nullptr;
  /// When non-null, called from the monitor loop with the number of new
  /// worker heartbeats just drained (i.e. verdicts completed since the
  /// last call).  This is how the serve daemon streams live progress for
  /// a supervised job; must not throw.
  std::function<void(std::size_t)> on_progress;
  /// Supervisor event log (spawns, kills, backoff, quarantine); null =
  /// silent.
  std::ostream* log = nullptr;
};

/// Where one shard ended up, for reporting.
struct ShardOutcome {
  std::size_t shard = 0;
  std::size_t spawns = 0;
  bool quarantined = false;
  /// Last exit description ("exit 0", "signal 9 (SIGKILL)", ...).
  std::string last_status;
};

struct SupervisorResult {
  /// Merged verdicts, bitwise identical to a single-process run when no
  /// shard was quarantined.
  std::vector<Verdict> verdicts;
  /// Raw-counter merge of the final attempt of every completed shard
  /// (killed attempts die with their counters); quarantined shards
  /// contribute their salvaged verdict breakdown plus one error_log
  /// entry per shard and kSimError for every unrecovered defect.
  util::CampaignStats stats;
  std::vector<ShardOutcome> shards;
  std::size_t respawns = 0;
  std::size_t chaos_kills = 0;
  std::size_t heartbeats = 0;

  std::vector<std::size_t> quarantined() const {
    std::vector<std::size_t> q;
    for (const ShardOutcome& s : shards)
      if (s.quarantined) q.push_back(s.shard);
    return q;
  }
  bool degraded() const {
    for (const ShardOutcome& s : shards)
      if (s.quarantined) return true;
    return false;
  }
};

class Supervisor {
 public:
  Supervisor(SupervisorJob job, SupervisorOptions options);

  /// Runs the supervised campaign to completion (or quarantine) and
  /// merges the per-shard checkpoints.  Throws CampaignInterrupted on
  /// operator cancellation, std::runtime_error on an unusable job.
  SupervisorResult run();

  /// "<base>.shard<k>" -- the per-shard checkpoint naming contract,
  /// shared with tests and docs.
  static std::string shard_checkpoint_path(const std::string& base,
                                           std::size_t shard);

 private:
  SupervisorJob job_;
  SupervisorOptions opt_;
};

}  // namespace xtest::sim
