// Diagnosis from compacted test responses.
//
// Section 4.3: "If all tests pass ... the final test response is 11111111.
// Otherwise, at least one bit in the test response vector is 0.  The
// position of the '0' bit tells which test failed."  This module inverts a
// faulty response snapshot back to candidate failing MA tests:
//
//  * a differing group-signature byte implicates the group's tests whose
//    one-hot pass value overlaps the flipped bits;
//  * a differing data-bus write target implicates its write test directly;
//  * an incomplete run (or a run whose early responses are missing)
//    implicates the control-divergence tests (the compact JMP schemes)
//    executed near the truncation point.

#pragma once

#include <string>
#include <vector>

#include "sbst/program.h"
#include "sim/signature.h"

namespace xtest::sim {

struct DiagnosisCandidate {
  std::size_t test_index;  ///< into TestProgram::tests
  xtalk::MafFault fault;
  std::string evidence;    ///< human-readable justification
};

/// Candidate failing tests explaining `observed` against `gold`.
/// Empty when the responses match (no fault to diagnose).
std::vector<DiagnosisCandidate> diagnose(const sbst::TestProgram& program,
                                         const ResponseSnapshot& gold,
                                         const ResponseSnapshot& observed);

}  // namespace xtest::sim
