#include "sim/online.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cpu/microcode.h"
#include "sbst/slice.h"
#include "sim/signature.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/retry.h"

namespace xtest::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

const xtalk::RcNetwork& nominal_net(const soc::System& system,
                                    soc::BusKind bus) {
  switch (bus) {
    case soc::BusKind::kAddress: return system.nominal_address_network();
    case soc::BusKind::kData: return system.nominal_data_network();
    case soc::BusKind::kControl: return system.nominal_control_network();
  }
  return system.nominal_address_network();
}

void apply_defect(soc::System& system, soc::BusKind bus,
                  const xtalk::Defect& defect) {
  const xtalk::RcNetwork net = defect.apply(nominal_net(system, bus));
  switch (bus) {
    case soc::BusKind::kAddress: system.set_address_network(net); break;
    case soc::BusKind::kData: system.set_data_network(net); break;
    case soc::BusKind::kControl: system.set_control_network(net); break;
  }
}

/// What the tester sees at one slice boundary: the response cells unloaded
/// from the *suspended* slice memory, the completion status, and the
/// global-clock stamp of the boundary.
struct RoundSnap {
  std::vector<std::uint8_t> values;
  bool halted = false;
  cpu::HaltReason reason = cpu::HaltReason::kRunning;
  std::uint64_t global_cycles = 0;
};

RoundSnap snap_round(const sbst::ProgramSlice& slice,
                     const sbst::TestProgram& program,
                     std::uint64_t global_cycles) {
  RoundSnap snap;
  snap.values.reserve(program.response_cells.size());
  for (cpu::Addr a : program.response_cells)
    snap.values.push_back(slice.memory_at(a));
  snap.halted = slice.halted();
  snap.reason = slice.reason();
  snap.global_cycles = global_cycles;
  return snap;
}

/// The gold schedule may not exceed the same absolute budget as the
/// off-line gold run.
constexpr std::uint64_t kGoldBudget = 1'000'000;

void fill_interference(const soc::InterleavedScheduler& sched,
                       OnlineOutcome& out) {
  out.rounds = sched.rounds();
  const soc::InterferenceCounters& c = sched.interference();
  out.heartbeats = c.heartbeats;
  out.deadlines_late = c.deadlines_late;
  out.deadlines_missed = c.deadlines_missed;
}

/// Defect-free schedule: runs rounds until the self-test program halts,
/// recording every slice-boundary snapshot.  Throws when the program does
/// not complete (same contract as the off-line gold run).
std::vector<RoundSnap> run_gold_schedule(soc::System& system,
                                         const soc::OnlineConfig& online,
                                         const soc::OnlineWorkload& workload,
                                         const sbst::TestProgram& program,
                                         OnlineOutcome& out,
                                         std::uint64_t& global_cycles) {
  soc::InterleavedScheduler sched(system, online, workload);
  sbst::ProgramSlice slice(program);
  std::vector<RoundSnap> rounds;
  for (;;) {
    sched.run_functional_window();
    sched.begin_test_slice();
    const std::uint64_t before = slice.cycles();
    const soc::RunResult rr = slice.run(system, online.slice_cycles);
    sched.end_test_slice(rr.cycles - before);
    rounds.push_back(snap_round(slice, program, sched.global_cycles()));
    if (slice.halted()) break;
    if (slice.cycles() >= kGoldBudget) {
      system.clear_mmio();
      throw std::runtime_error(
          "gold on-line run did not complete; bad program");
    }
  }
  if (slice.reason() != cpu::HaltReason::kHltInstruction) {
    system.clear_mmio();
    throw std::runtime_error(
        "gold on-line run halted abnormally; bad program");
  }
  sched.finish();
  fill_interference(sched, out);
  global_cycles = sched.global_cycles();
  return rounds;
}

/// One whole-schedule defect simulation: the defect is live during both
/// the functional windows and the test slices (a field defect does not
/// care who owns the bus).  Detection is the first slice boundary whose
/// snapshot diverges from the gold boundary.
OnlineOutcome simulate_one_online(soc::System& system,
                                  const soc::OnlineConfig& online,
                                  const soc::OnlineWorkload& workload,
                                  const sbst::TestProgram& program,
                                  soc::BusKind bus,
                                  const xtalk::Defect& defect,
                                  const std::vector<RoundSnap>& gold,
                                  std::uint64_t deadline_ms,
                                  std::uint64_t& global_cycles) {
  apply_defect(system, bus, defect);
  try {
    soc::InterleavedScheduler sched(system, online, workload);
    sbst::ProgramSlice slice(program);
    OnlineOutcome out;
    const auto start = Clock::now();
    for (std::size_t r = 0; r < gold.size(); ++r) {
      sched.run_functional_window();
      sched.begin_test_slice();
      const std::uint64_t before = slice.cycles();
      const soc::RunResult rr = slice.run(system, online.slice_cycles);
      sched.end_test_slice(rr.cycles - before);
      const RoundSnap snap = snap_round(slice, program, sched.global_cycles());
      const RoundSnap& g = gold[r];
      const bool value_div = snap.values != g.values;
      const bool halt_div =
          snap.halted != g.halted ||
          (snap.halted && g.halted && snap.reason != g.reason);
      if (value_div || halt_div) {
        // A schedule still running after the gold schedule completed with
        // matching responses is the on-line tester timeout; everything
        // else pins the defect to a response or completion mismatch.
        out.verdict = !snap.halted && g.halted && !value_div
                          ? Verdict::kDetectedByTimeout
                          : Verdict::kDetected;
        out.detection_latency_cycles = snap.global_cycles;
        break;
      }
      if (snap.halted) break;  // matched gold to completion: undetected
      if (deadline_ms > 0) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - start)
                .count();
        if (static_cast<std::uint64_t>(elapsed) >= deadline_ms ||
            util::FaultInjector::global().fire("campaign.deadline"))
          throw DeadlineExceeded(
              "defect deadline: on-line schedule still running after " +
              std::to_string(sched.global_cycles()) + " cycles (deadline " +
              std::to_string(deadline_ms) + " ms)");
      }
    }
    sched.finish();
    fill_interference(sched, out);
    global_cycles = sched.global_cycles();
    system.clear_defects();
    return out;
  } catch (...) {
    system.clear_mmio();
    system.clear_defects();  // keep the worker's simulator reusable
    throw;
  }
}

// ---------------------------------------------------------------------------
// On-line checkpoint: one line per completed defect carrying the full
// outcome (verdict char, latency, rounds, interference), each protected by
// its own CRC-32 trailer.  A damaged or truncated tail drops only the
// lines from the first bad one on (prefix salvage); the atomic
// tmp+fsync+rename write pattern and the fault-injection sites match
// sim/checkpoint.cpp, so the existing chaos machinery exercises this
// format too.
//
//   xtest-online-checkpoint v1
//   key <free-form campaign identity line>
//   crc <8 hex digits over the two lines above>
//   slot <section> <index> <V> <latency> <rounds> <hb> <late> <missed> \
//       <8 hex digits over the line prefix>

constexpr const char* kOnlineMagic = "xtest-online-checkpoint v1";

std::string crc_hex(const std::string& text) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x",
                util::crc32(text.data(), text.size()));
  return buf;
}

class OnlineCheckpoint {
 public:
  OnlineCheckpoint(std::string path, std::string key, std::size_t flush_every)
      : path_(std::move(path)),
        key_(std::move(key)),
        flush_every_(flush_every > 0 ? flush_every : 1) {
    load();
  }

  bool salvaged() const { return salvaged_; }
  std::size_t dropped_slots() const { return dropped_; }
  std::size_t flush_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flush_failures_;
  }

  /// Previously completed outcomes of `section` (nullopt = pending).
  std::vector<std::optional<OnlineOutcome>> restore(
      const std::string& section, std::size_t count) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::optional<OnlineOutcome>> out(count);
    for (const auto& [where, outcome] : slots_) {
      if (where.first != section || where.second >= count) continue;
      out[where.second] = outcome;
    }
    return out;
  }

  /// Records one completed outcome; flushes every `flush_every` records
  /// (a failed periodic flush is deferred, like the off-line checkpoint).
  void record(const std::string& section, std::size_t index,
              const OnlineOutcome& outcome) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[{section, index}] = outcome;
    if (++dirty_ >= flush_every_) {
      try {
        flush_locked();
      } catch (const std::exception&) {
        ++flush_failures_;
      }
    }
  }

  void flush() {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked();
  }

 private:
  static std::string slot_prefix(const std::string& section,
                                 std::size_t index,
                                 const OnlineOutcome& o) {
    std::ostringstream os;
    os << "slot " << section << ' ' << index << ' ' << to_char(o.verdict)
       << ' ' << o.detection_latency_cycles << ' ' << o.rounds << ' '
       << o.heartbeats << ' ' << o.deadlines_late << ' '
       << o.deadlines_missed;
    return os.str();
  }

  void load() {
    std::ifstream in(path_);
    if (!in.is_open()) return;  // fresh campaign
    std::string line;
    if (!std::getline(in, line) || line != kOnlineMagic)
      throw std::runtime_error("online checkpoint " + path_ +
                               ": not an online checkpoint file");
    std::string key_line;
    if (!std::getline(in, key_line) || key_line.rfind("key ", 0) != 0)
      throw std::runtime_error("online checkpoint " + path_ +
                               ": missing key line");
    std::string crc_line;
    if (!std::getline(in, crc_line) ||
        crc_line != "crc " + crc_hex(std::string(kOnlineMagic) + '\n' +
                                     key_line + '\n')) {
      // Damaged header: the whole file is untrusted; start fresh.
      salvaged_ = true;
      return;
    }
    const std::string stored_key = key_line.substr(4);
    if (stored_key != key_)
      throw std::runtime_error(
          "online checkpoint " + path_ + ": key mismatch\n  stored:  " +
          stored_key + "\n  current: " + key_);
    while (std::getline(in, line)) {
      // "<prefix> <hex8>": split the trailer off and verify it.
      const std::size_t cut = line.find_last_of(' ');
      if (cut == std::string::npos || line.size() - cut != 9 ||
          line.rfind("slot ", 0) != 0 ||
          line.substr(cut + 1) != crc_hex(line.substr(0, cut))) {
        salvaged_ = true;
        ++dropped_;
        while (std::getline(in, line)) ++dropped_;  // drop the rest
        break;
      }
      std::istringstream is(line.substr(5, cut - 5));
      std::string section;
      std::size_t index = 0;
      char vc = '?';
      OnlineOutcome o;
      is >> section >> index >> vc >> o.detection_latency_cycles >>
          o.rounds >> o.heartbeats >> o.deadlines_late >> o.deadlines_missed;
      Verdict v;
      if (!is || !verdict_from_char(vc, v)) {
        salvaged_ = true;
        ++dropped_;
        while (std::getline(in, line)) ++dropped_;
        break;
      }
      o.verdict = v;
      slots_[{section, index}] = o;
    }
  }

  std::string render_locked() const {
    std::ostringstream os;
    const std::string header =
        std::string(kOnlineMagic) + '\n' + "key " + key_ + '\n';
    os << header << "crc " << crc_hex(header) << '\n';
    for (const auto& [where, outcome] : slots_) {
      const std::string prefix =
          slot_prefix(where.first, where.second, outcome);
      os << prefix << ' ' << crc_hex(prefix) << '\n';
    }
    return os.str();
  }

  void flush_locked() {
    util::FaultInjector& inj = util::FaultInjector::global();
    const std::string data = render_locked();
    const std::string tmp =
        path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    int fd = -1;
    try {
      inj.maybe_fail("checkpoint.open");
      fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
      if (fd < 0)
        throw std::runtime_error("online checkpoint: cannot open " + tmp +
                                 ": " + std::strerror(errno));
      inj.maybe_fail("checkpoint.write");
      if (!util::write_full(fd, data.data(), data.size()))
        throw std::runtime_error("online checkpoint: write failed for " +
                                 tmp + ": " + std::strerror(errno));
      inj.maybe_fail("checkpoint.fsync");
      if (::fsync(fd) != 0)
        throw std::runtime_error("online checkpoint: fsync failed for " +
                                 tmp + ": " + std::strerror(errno));
      if (::close(fd) != 0) {
        fd = -1;
        throw std::runtime_error("online checkpoint: close failed for " +
                                 tmp + ": " + std::strerror(errno));
      }
      fd = -1;
      inj.maybe_fail("checkpoint.rename");
      if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        throw std::runtime_error("online checkpoint: cannot rename " + tmp +
                                 " to " + path_ + ": " +
                                 std::strerror(errno));
    } catch (...) {
      if (fd >= 0) ::close(fd);
      ::unlink(tmp.c_str());
      throw;
    }
    const std::filesystem::path parent =
        std::filesystem::path(path_).parent_path();
    const std::string dir = parent.empty() ? "." : parent.string();
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
    dirty_ = 0;
  }

  std::string path_;
  std::string key_;
  std::size_t flush_every_;
  std::size_t dirty_ = 0;
  std::size_t flush_failures_ = 0;
  bool salvaged_ = false;
  std::size_t dropped_ = 0;
  mutable std::mutex mu_;
  /// Keyed and rendered in (section, index) order, so the file is
  /// deterministic for a given completed set.
  std::map<std::pair<std::string, std::size_t>, OnlineOutcome> slots_;
};

void absorb_system(const soc::System& system, soc::CacheCounters& cache,
                   soc::TierCounters& tier) {
  const soc::CacheCounters c = system.transition_cache_counters();
  cache.hits += c.hits;
  cache.misses += c.misses;
  const soc::TierCounters t = system.tier_counters();
  tier.decoded_programs += t.decoded_programs;
  tier.decode_cache_hits += t.decode_cache_hits;
  tier.jit_blocks += t.jit_blocks;
  tier.jit_bailouts += t.jit_bailouts;
}

}  // namespace

std::string online_checkpoint_key(soc::BusKind bus,
                                  const xtalk::DefectLibrary& library,
                                  const soc::OnlineConfig& online,
                                  const xtalk::ElectricalConfig& electrical) {
  std::string key = default_checkpoint_key(bus, library);
  char buf[192];
  std::snprintf(buf, sizeof buf,
                " online slice=%llu workload=%llu deadline=%llu",
                static_cast<unsigned long long>(online.slice_cycles),
                static_cast<unsigned long long>(online.workload_cycles),
                static_cast<unsigned long long>(online.deadline_cycles));
  key += buf;
  if (electrical.backend != xtalk::ElectricalBackend::kFullSwing) {
    std::snprintf(buf, sizeof buf, " electrical=%s swing=%.17g restorer=%.17g",
                  xtalk::to_string(electrical.backend).c_str(),
                  electrical.swing_ratio, electrical.restorer_ratio);
    key += buf;
  }
  return key;
}

OnlineResult run_online_detection(const soc::SystemConfig& config,
                                  const soc::OnlineConfig& online,
                                  const sbst::TestProgram& program,
                                  soc::BusKind bus,
                                  const xtalk::DefectLibrary& library,
                                  const CampaignOptions& options) {
  const auto start = Clock::now();
  if (options.shard.count > 1)
    throw std::invalid_argument(
        "on-line campaigns do not shard: the interleaved schedule is one "
        "in-field sequence");
  if (online.slice_cycles == 0 || online.workload_cycles == 0)
    throw std::invalid_argument(
        "on-line campaign: slice_cycles and workload_cycles must be > 0");
  const std::size_t n = library.size();
  const soc::OnlineWorkload workload = soc::make_default_workload();
  const auto notify_progress = [&options] {
    if (options.progress) options.progress();
  };

  soc::CacheCounters xfer_counters;
  soc::TierCounters tier_counters;
  // The test program is fixed across defects: pre-decode once and pin on
  // every simulator (same policy and injector exemption as off-line).
  std::shared_ptr<const cpu::MicroProgram> micro;
  if (config.exec_tier != cpu::ExecTier::kReference &&
      !util::FaultInjector::global().armed()) {
    bool built = false;
    micro = cpu::DecodeCache::global().obtain(program.image, &built);
    if (built)
      ++tier_counters.decoded_programs;
    else
      ++tier_counters.decode_cache_hits;
  }

  OnlineResult result;
  result.outcomes.assign(n, OnlineOutcome{});
  std::vector<std::uint64_t> run_cycles(n, 0);
  std::uint64_t gold_cycles = 0;
  std::vector<RoundSnap> gold_rounds;
  {
    soc::System gold_system(config);
    gold_system.set_micro_program(micro);
    gold_rounds = run_gold_schedule(gold_system, online, workload, program,
                                    result.gold, gold_cycles);
    absorb_system(gold_system, xfer_counters, tier_counters);
  }

  std::vector<std::uint8_t> restored(n, 0);
  std::size_t restored_count = 0;
  std::unique_ptr<OnlineCheckpoint> checkpoint;
  if (!options.checkpoint_path.empty()) {
    checkpoint = std::make_unique<OnlineCheckpoint>(
        options.checkpoint_path,
        options.checkpoint_key.empty()
            ? online_checkpoint_key(bus, library, online, config.electrical)
            : options.checkpoint_key,
        options.checkpoint_every);
    if (checkpoint->salvaged() && options.stats != nullptr) {
      options.stats->salvaged_sections += 1;
      options.stats->dropped_slots += checkpoint->dropped_slots();
      options.stats->error_log.push_back(
          "online checkpoint " + options.checkpoint_path +
          ": dropped " + std::to_string(checkpoint->dropped_slots()) +
          " completed slot(s) from a corrupt tail");
    }
    const auto slots = checkpoint->restore(options.checkpoint_section, n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!slots[i]) continue;
      result.outcomes[i] = *slots[i];
      restored[i] = 1;
      ++restored_count;
    }
  }

  std::atomic<bool> killed{false};
  std::atomic<bool> crashed{false};
  const auto cancelled = [&] {
    return killed.load(std::memory_order_relaxed) ||
           (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed));
  };
  std::atomic<std::size_t> simulated{0};

  const unsigned workers = options.parallel.resolve(n);
  std::vector<std::unique_ptr<soc::System>> systems(workers);
  const std::vector<util::ItemError> errors = util::parallel_for_items(
      n, options.parallel, [&](std::size_t i, unsigned w) {
        if (restored[i] || cancelled()) return;
        if (!systems[w]) {
          systems[w] = std::make_unique<soc::System>(config);
          systems[w]->set_micro_program(micro);
        }
        result.outcomes[i] = simulate_one_online(
            *systems[w], online, workload, program, bus, library[i],
            gold_rounds, options.defect_deadline_ms, run_cycles[i]);
        simulated.fetch_add(1, std::memory_order_relaxed);
        if (checkpoint)
          checkpoint->record(options.checkpoint_section, i,
                             result.outcomes[i]);
        notify_progress();
        util::FaultInjector& inj = util::FaultInjector::global();
        if (inj.fire("campaign.kill")) killed.store(true);
        if (inj.fire("campaign.crash")) {
          crashed.store(true);
          killed.store(true);
        }
      });

  for (const std::unique_ptr<soc::System>& s : systems) {
    if (!s) continue;
    absorb_system(*s, xfer_counters, tier_counters);
  }

  // Quarantine: one serial retry on a fresh simulator, then kSimError.
  std::size_t retries = 0;
  for (const util::ItemError& e : errors) {
    if (cancelled()) break;
    if (restored[e.index]) continue;
    std::string message = e.message;
    bool recovered = false;
    if (options.retry_errors) {
      ++retries;
      soc::System system(config);
      system.set_micro_program(micro);
      try {
        result.outcomes[e.index] = simulate_one_online(
            system, online, workload, program, bus, library[e.index],
            gold_rounds, options.defect_deadline_ms, run_cycles[e.index]);
        recovered = true;
      } catch (const std::exception& retry_error) {
        message = retry_error.what();
      } catch (...) {
        message = "unknown exception";
      }
      absorb_system(system, xfer_counters, tier_counters);
    }
    if (!recovered) {
      result.outcomes[e.index] = OnlineOutcome{};
      result.outcomes[e.index].verdict = Verdict::kSimError;
      run_cycles[e.index] = 0;
      if (options.stats != nullptr)
        options.stats->error_log.push_back(
            "defect " + std::to_string(e.index) + ": " + message);
    }
    if (checkpoint)
      checkpoint->record(options.checkpoint_section, e.index,
                         result.outcomes[e.index]);
    simulated.fetch_add(1, std::memory_order_relaxed);
    notify_progress();
  }

  const bool interrupted = cancelled();
  if (checkpoint && !crashed.load()) {
    try {
      checkpoint->flush();
    } catch (const std::exception& e) {
      if (options.stats != nullptr)
        options.stats->error_log.push_back(
            std::string("online checkpoint final flush failed: ") +
            e.what());
    }
  }

  result.verdicts.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    result.verdicts[i] = result.outcomes[i].verdict;

  if (options.stats != nullptr) {
    util::CampaignStats& stats = *options.stats;
    stats.threads = workers;
    stats.defects_simulated += simulated.load();
    stats.restored_from_checkpoint += restored_count;
    stats.retries += retries;
    stats.simulated_cycles += gold_cycles;
    for (std::uint64_t c : run_cycles) stats.simulated_cycles += c;
    if (checkpoint) stats.flush_failures += checkpoint->flush_failures();
    stats.cache_hits += xfer_counters.hits;
    stats.cache_misses += xfer_counters.misses;
    stats.decoded_programs += tier_counters.decoded_programs;
    stats.decode_cache_hits += tier_counters.decode_cache_hits;
    stats.jit_blocks += tier_counters.jit_blocks;
    stats.jit_bailouts += tier_counters.jit_bailouts;
    // The on-line aggregates are sums over the complete outcome vector
    // (restored slots included), so an interrupted-then-resumed campaign
    // reports exactly the uninterrupted numbers.
    if (!interrupted) {
      tally_verdicts(result.verdicts, stats);
      stats.online_rounds += result.gold.rounds;
      stats.online_mmio_heartbeats += result.gold.heartbeats;
      stats.online_deadlines_late += result.gold.deadlines_late;
      stats.online_deadlines_missed += result.gold.deadlines_missed;
      for (const OnlineOutcome& o : result.outcomes) {
        stats.online_rounds += o.rounds;
        stats.online_mmio_heartbeats += o.heartbeats;
        stats.online_deadlines_late += o.deadlines_late;
        stats.online_deadlines_missed += o.deadlines_missed;
        if (is_detected(o.verdict)) {
          stats.online_detection_latency_cycles += o.detection_latency_cycles;
          ++stats.online_latency_samples;
        }
      }
    }
    stats.wall_seconds += seconds_since(start);
  }
  if (interrupted)
    throw CampaignInterrupted(
        "on-line campaign interrupted after " +
        std::to_string(simulated.load()) + " new outcome(s)" +
        (checkpoint ? (crashed.load()
                           ? "; simulated crash, last periodic checkpoint "
                             "flush survives"
                           : "; checkpoint flushed to " +
                                 options.checkpoint_path)
                    : "; no checkpoint configured") +
        " -- rerun the same command to resume");
  return result;
}

OnlineResult run_online_detection_sessions(
    const soc::SystemConfig& config, const soc::OnlineConfig& online,
    const std::vector<sbst::GenerationResult>& sessions, soc::BusKind bus,
    const xtalk::DefectLibrary& library, const CampaignOptions& options) {
  OnlineResult merged;
  merged.verdicts.assign(library.size(), Verdict::kUndetected);
  merged.outcomes.assign(library.size(), OnlineOutcome{});
  bool any = false;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    if (sessions[s].program.tests.empty()) continue;
    CampaignOptions session_options = options;
    if (!options.checkpoint_path.empty())
      session_options.checkpoint_section = "session" + std::to_string(s);
    const OnlineResult one = run_online_detection(
        config, online, sessions[s].program, bus, library, session_options);
    merged.gold.rounds += one.gold.rounds;
    merged.gold.heartbeats += one.gold.heartbeats;
    merged.gold.deadlines_late += one.gold.deadlines_late;
    merged.gold.deadlines_missed += one.gold.deadlines_missed;
    for (std::size_t i = 0; i < merged.outcomes.size(); ++i) {
      OnlineOutcome& m = merged.outcomes[i];
      const OnlineOutcome& o = one.outcomes[i];
      // First detecting session wins the latency (the field notices the
      // defect on its first diverging slice boundary).
      if (!is_detected(m.verdict) && is_detected(o.verdict))
        m.detection_latency_cycles = o.detection_latency_cycles;
      m.verdict = merge_verdicts(m.verdict, o.verdict);
      m.rounds += o.rounds;
      m.heartbeats += o.heartbeats;
      m.deadlines_late += o.deadlines_late;
      m.deadlines_missed += o.deadlines_missed;
      merged.verdicts[i] = m.verdict;
    }
    any = true;
  }
  if (!any)
    throw std::runtime_error(
        "on-line campaign: no session carries any test");
  return merged;
}

}  // namespace xtest::sim
