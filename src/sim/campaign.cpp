#include "sim/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "cpu/microcode.h"
#include "sim/checkpoint.h"
#include "sim/gold_cache.h"
#include "sim/system_pool.h"
#include "util/fault_injector.h"
#include "xtalk/batch.h"

namespace xtest::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

const xtalk::RcNetwork& nominal_net(const soc::System& system,
                                    soc::BusKind bus) {
  switch (bus) {
    case soc::BusKind::kAddress: return system.nominal_address_network();
    case soc::BusKind::kData: return system.nominal_data_network();
    case soc::BusKind::kControl: return system.nominal_control_network();
  }
  return system.nominal_address_network();
}

void apply_defect(soc::System& system, soc::BusKind bus,
                  const xtalk::Defect& defect) {
  const xtalk::RcNetwork net = defect.apply(nominal_net(system, bus));
  switch (bus) {
    case soc::BusKind::kAddress: system.set_address_network(net); break;
    case soc::BusKind::kData: system.set_data_network(net); break;
    case soc::BusKind::kControl: system.set_control_network(net); break;
  }
}

const xtalk::CrosstalkErrorModel& bus_model(const soc::System& system,
                                            soc::BusKind bus) {
  switch (bus) {
    case soc::BusKind::kAddress: return system.address_model();
    case soc::BusKind::kData: return system.data_model();
    case soc::BusKind::kControl: return system.control_model();
  }
  return system.address_model();
}

/// The unique (held, driven) transitions one gold run drives on one bus,
/// with the word the gold receiver sampled -- the input of the
/// transition-major batched screen.  `held` reconstructs the tristate
/// bus's kept word: zeros after load_and_reset, then the previously
/// *driven* word after every transfer (soc::TristateBus semantics).
struct GoldTransitions {
  std::vector<std::uint64_t> held;
  std::vector<std::uint64_t> driven;
  std::vector<std::uint64_t> expected;
};

std::shared_ptr<const GoldTransitions> collect_transitions(
    const soc::BusTrace& trace, soc::BusKind bus) {
  auto out = std::make_shared<GoldTransitions>();
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t held = 0;
  for (const soc::BusEvent& e : trace.events()) {
    if (e.bus != bus) continue;
    const std::uint64_t driven = e.driven.bits();
    // Exact dedup key: every system bus is at most 12 wires wide
    // (ScenarioSpec::validate pins the widths to the CPU architecture),
    // so (held, driven) packs collision-free.
    const std::uint64_t key = (held << 32) | driven;
    if (seen.insert(key).second) {
      out->held.push_back(held);
      out->driven.push_back(driven);
      out->expected.push_back(e.received.bits());
    }
    held = driven;
  }
  return out;
}

// Process-wide memo of gold transition streams, the batched-path sibling
// of GoldRunCache: keyed by the gold-run content hash (plus the bus), so
// entries can never go stale -- the stream is a pure function of the key.
// Bounded like the snapshot memo; a full table is simply dropped.
std::uint64_t transitions_key(std::uint64_t gold_key, soc::BusKind bus) {
  return gold_key ^ ((static_cast<std::uint64_t>(bus) + 1) *
                     0x9E3779B97F4A7C15ull);
}

struct TransitionsMemo {
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<const GoldTransitions>>
      map;
};

TransitionsMemo& transitions_memo() {
  static TransitionsMemo* m = new TransitionsMemo;
  return *m;
}

std::shared_ptr<const GoldTransitions> transitions_find(std::uint64_t key) {
  TransitionsMemo& m = transitions_memo();
  const std::lock_guard<std::mutex> lock(m.mu);
  const auto it = m.map.find(key);
  return it == m.map.end() ? nullptr : it->second;
}

void transitions_store(std::uint64_t key,
                       std::shared_ptr<const GoldTransitions> value) {
  TransitionsMemo& m = transitions_memo();
  const std::lock_guard<std::mutex> lock(m.mu);
  if (m.map.size() >= 256) m.map.clear();
  m.map[key] = std::move(value);
}

/// One whole-program defect simulation: apply, run, classify, restore.
Verdict simulate_one(soc::System& system, soc::BusKind bus,
                     const xtalk::Defect& defect,
                     const sbst::TestProgram& program,
                     const ResponseSnapshot& gold, std::uint64_t budget,
                     std::uint64_t deadline_ms, std::uint64_t& cycles) {
  apply_defect(system, bus, defect);
  ResponseSnapshot snap;
  try {
    snap = run_and_capture(system, program, budget, deadline_ms);
  } catch (...) {
    system.clear_defects();  // keep the worker's simulator reusable
    throw;
  }
  cycles = snap.cycles;
  system.clear_defects();
  return classify(gold, snap);
}

}  // namespace

xtalk::DefectLibrary make_defect_library(const soc::SystemConfig& config,
                                         soc::BusKind bus, std::size_t count,
                                         std::uint64_t seed,
                                         double sigma_pct) {
  const soc::System system(config);
  xtalk::DefectConfig dc;
  dc.sigma_pct = sigma_pct;
  switch (bus) {
    case soc::BusKind::kAddress: dc.cth_fF = system.address_cth(); break;
    case soc::BusKind::kData: dc.cth_fF = system.data_cth(); break;
    case soc::BusKind::kControl: dc.cth_fF = system.control_cth(); break;
  }
  dc.count = count;
  dc.seed = seed;
  return xtalk::DefectLibrary::generate(nominal_net(system, bus), dc);
}

std::string default_checkpoint_key(soc::BusKind bus,
                                   const xtalk::DefectLibrary& library) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "bus=%s count=%zu seed=%llu sigma=%.17g cth=%.17g",
                soc::to_string(bus).c_str(), library.size(),
                static_cast<unsigned long long>(library.config().seed),
                library.config().sigma_pct, library.config().cth_fF);
  return buf;
}

std::vector<Verdict> run_detection(const soc::SystemConfig& config,
                                   const sbst::TestProgram& program,
                                   soc::BusKind bus,
                                   const xtalk::DefectLibrary& library,
                                   const CampaignOptions& options) {
  const auto start = Clock::now();
  const std::size_t n = library.size();
  const ShardSpec shard = options.shard;
  if (shard.count == 0 || (shard.count > 1 && shard.index >= shard.count))
    throw std::invalid_argument(
        "campaign shard " + std::to_string(shard.index) + "/" +
        std::to_string(shard.count) + ": index must be < count");
  const bool batching = options.batched && options.batch_size >= 1 && n > 0;
  // One completed-verdict notification (checkpoint already updated); the
  // worker-process heartbeat and the deterministic worker.exit chaos site
  // hang off this.
  const auto notify_progress = [&options] {
    if (options.progress) options.progress();
  };
  // Gold-run reuse: the snapshot is a pure function of (config, program,
  // budget), so identical gold programs across sessions, per-line sweeps,
  // and checkpoint resumes are answered from the process-wide memo.  An
  // armed fault injector bypasses the memo (see gold_cache.h).
  soc::CacheCounters xfer_counters;
  soc::TierCounters tier_counters;
  // Simulators come from the process-wide pool (system_pool.h) and carry
  // counter history from earlier leases, so stats absorb per-lease deltas.
  const auto absorb = [&xfer_counters,
                       &tier_counters](const SystemPool::Lease& lease) {
    const soc::CacheCounters c = lease.cache_delta();
    xfer_counters.hits += c.hits;
    xfer_counters.misses += c.misses;
    const soc::TierCounters t = lease.tier_delta();
    tier_counters.decoded_programs += t.decoded_programs;
    tier_counters.decode_cache_hits += t.decode_cache_hits;
    tier_counters.jit_blocks += t.jit_blocks;
    tier_counters.jit_bailouts += t.jit_bailouts;
  };
  // The program never changes across defects: pre-decode it once and pin
  // the result on every simulator (gold, workers, retry), so no System
  // re-validates the image per load.  Skipped under an armed injector so
  // the cpu.decode fault site keeps its per-load decision.
  std::shared_ptr<const cpu::MicroProgram> micro;
  if (config.exec_tier != cpu::ExecTier::kReference &&
      !util::FaultInjector::global().armed()) {
    bool built = false;
    micro = cpu::DecodeCache::global().obtain(program.image, &built);
    if (built)
      ++tier_counters.decoded_programs;
    else
      ++tier_counters.decode_cache_hits;
  }
  ResponseSnapshot gold;
  bool gold_reused = false;
  std::size_t gold_evicted = 0;
  const bool gold_cacheable =
      options.reuse_gold && !util::FaultInjector::global().armed();
  std::uint64_t gold_key = 0;
  std::shared_ptr<const GoldTransitions> transitions;
  if (gold_cacheable) {
    gold_key = gold_run_key(config, program, 1'000'000);
    gold_reused = GoldRunCache::global().find(gold_key, gold);
    if (gold_reused && batching) {
      transitions = transitions_find(transitions_key(gold_key, bus));
      // A snapshot hit without its transition stream still costs a traced
      // gold re-run; count it as a miss so the accounting stays honest.
      if (transitions == nullptr) gold_reused = false;
    }
  }
  if (!gold_reused) {
    SystemPool::Lease gold_system = SystemPool::global().acquire(config);
    gold_system->set_micro_program(micro);
    soc::BusTrace trace;
    if (batching) gold_system->set_trace(&trace);
    gold = run_and_capture(*gold_system, program, 1'000'000);
    gold_system->set_trace(nullptr);
    absorb(gold_system);
    if (batching) transitions = collect_transitions(trace, bus);
    if (gold_cacheable) {
      gold_evicted = GoldRunCache::global().store(gold_key, gold);
      if (batching)
        transitions_store(transitions_key(gold_key, bus), transitions);
    }
  }
  if (!gold.completed)
    throw std::runtime_error("gold run did not complete; bad program");
  const std::uint64_t budget = gold.cycles * options.cycle_factor + 1000;

  std::vector<Verdict> verdicts(n, Verdict::kUndetected);
  std::vector<std::uint64_t> run_cycles(n, 0);
  // Slots already carrying a verdict from a previous (interrupted) run.
  std::vector<std::uint8_t> restored(n, 0);
  std::size_t restored_count = 0;

  std::unique_ptr<CampaignCheckpoint> checkpoint;
  if (!options.checkpoint_path.empty()) {
    checkpoint = std::make_unique<CampaignCheckpoint>(
        options.checkpoint_path,
        options.checkpoint_key.empty() ? default_checkpoint_key(bus, library)
                                       : options.checkpoint_key,
        options.checkpoint_every,
        shard.count > 1 ? "s" + std::to_string(shard.index) : "");
    const SalvageReport& sr = checkpoint->salvage();
    if (sr.salvaged && options.stats != nullptr) {
      options.stats->salvaged_sections += sr.sections_kept;
      options.stats->dropped_slots += sr.dropped_slots;
      options.stats->error_log.push_back(
          "checkpoint " + options.checkpoint_path + ": salvaged " +
          std::to_string(sr.sections_kept) + " section(s), dropped " +
          std::to_string(sr.dropped_slots) +
          " completed slot(s) from a corrupt tail");
    }
    const auto slots = checkpoint->restore(options.checkpoint_section, n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!slots[i]) continue;
      verdicts[i] = *slots[i];
      restored[i] = 1;
      ++restored_count;
    }
  }

  // Cooperative cancellation: set by the operator (options.cancel, wired
  // to a SIGINT/SIGTERM flag) or by the chaos-soak injection sites.
  // "campaign.kill" is a graceful kill (final flush happens, resumable
  // from every completed verdict); "campaign.crash" models a hard kill
  // (no final flush -- only periodically flushed state survives, exactly
  // like a real SIGKILL mid-campaign).
  std::atomic<bool> killed{false};
  std::atomic<bool> crashed{false};
  const auto cancelled = [&] {
    return killed.load(std::memory_order_relaxed) ||
           (options.cancel != nullptr &&
            options.cancel->load(std::memory_order_relaxed));
  };

  std::atomic<std::size_t> simulated{0};

  // Whole-run reuse (gold_cache.h): on accelerated tiers a defect's
  // (verdict, cycles) outcome is a pure function of (gold key, bus,
  // budget, defect factors), so repeated passes over the same library --
  // bench reruns, per-line sweeps, resumed sessions -- replay from the
  // process-wide memo instead of re-simulating.  Reference-tier campaigns
  // keep the seed's simulate-every-defect behaviour, and gold_cacheable
  // already excludes armed-injector runs (chaos faults must be able to
  // hit every simulation).
  const bool memo_runs =
      gold_cacheable && config.exec_tier != cpu::ExecTier::kReference;
  std::atomic<std::size_t> run_reuses{0};

  // Transition-major batched pre-screen (the defect-batched fast path):
  // the screen runs serially *before* the worker fan-out, so the screened
  // set is a pure function of the inputs -- identical at every thread
  // count, and recomputed identically on any resume (restored slots are
  // simply not gathered), which makes every checkpoint boundary
  // batch-safe.  A lane whose received word matches the gold word on
  // every unique gold transition provably executes the gold run verbatim
  // (only the bus under test is perturbed; while execution matches gold
  // the faulty run sees exactly gold's (held, driven) pairs), so it is
  // recorded kUndetected after gold.cycles without being simulated --
  // exactly the verdict and cycle count the full simulation would
  // produce.  Diverging lanes may still be masked, so they fall through
  // to the unchanged per-defect simulation below.
  std::vector<std::uint8_t> screened(n, 0);
  std::uint64_t screen_transitions = 0;
  std::size_t screen_lanes = 0;
  std::size_t screen_capacity = 0;
  std::size_t screened_count = 0;
  if (batching) {
    const SystemPool::Lease probe = SystemPool::global().acquire(config);
    const xtalk::RcNetwork& nominal = nominal_net(*probe, bus);
    const xtalk::ErrorModelConfig model_config =
        bus_model(*probe, bus).config();
    // Width-mismatched defects (e.g. poisoned CSV reloads) are not
    // gathered; they hit apply() in the worker and take the ordinary
    // quarantine path.
    std::vector<std::size_t> candidates;
    candidates.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      if (!restored[i] && shard.owns(i) &&
          library[i].width() == nominal.width())
        candidates.push_back(i);
    std::vector<std::size_t> window;
    for (std::size_t begin = 0; begin < candidates.size() && !cancelled();
         begin += options.batch_size) {
      const std::size_t end =
          std::min(begin + options.batch_size, candidates.size());
      window.assign(candidates.begin() + begin, candidates.begin() + end);
      const xtalk::DefectBatch batch(nominal, library, window);
      xtalk::BatchEvaluator evaluator(batch, model_config);
      std::vector<std::uint8_t> live(window.size(), 1);
      std::size_t alive = window.size();
      for (std::size_t t = 0; t < transitions->held.size() && alive > 0;
           ++t) {
        ++screen_transitions;
        alive = evaluator.screen(transitions->held[t], transitions->driven[t],
                                 xtalk::BusDirection::kCpuToCore,
                                 transitions->expected[t], live.data());
      }
      screen_lanes += window.size();
      screen_capacity += options.batch_size;
      for (std::size_t l = 0; l < window.size(); ++l) {
        if (!live[l]) continue;
        if (cancelled()) break;
        const std::size_t i = window[l];
        verdicts[i] = Verdict::kUndetected;
        run_cycles[i] = gold.cycles;
        screened[i] = 1;
        ++screened_count;
        simulated.fetch_add(1, std::memory_order_relaxed);
        if (checkpoint)
          checkpoint->record(options.checkpoint_section, i, verdicts[i]);
        notify_progress();
        util::FaultInjector& inj = util::FaultInjector::global();
        if (inj.fire("campaign.kill")) killed.store(true);
        if (inj.fire("campaign.crash")) {
          crashed.store(true);
          killed.store(true);
        }
      }
    }
  }

  // Each worker lazily owns its private simulator; verdict slots are
  // written by defect index, so the result is independent of the worker
  // count and of any interleaving.
  const unsigned workers = options.parallel.resolve(n);
  std::vector<SystemPool::Lease> systems(workers);
  const std::vector<util::ItemError> errors = util::parallel_for_items(
      n, options.parallel, [&](std::size_t i, unsigned w) {
        if (restored[i] || screened[i] || !shard.owns(i) || cancelled())
          return;
        std::uint64_t run_key = 0;
        bool run_reused = false;
        if (memo_runs) {
          run_key = defect_run_key(gold_key, bus, budget, library[i]);
          run_reused = DefectRunCache::global().find(run_key, verdicts[i],
                                                     run_cycles[i]);
        }
        if (run_reused) {
          run_reuses.fetch_add(1, std::memory_order_relaxed);
        } else {
          if (!systems[w]) {
            systems[w] = SystemPool::global().acquire(config);
            systems[w]->set_micro_program(micro);
          }
          verdicts[i] =
              simulate_one(*systems[w], bus, library[i], program, gold,
                           budget, options.defect_deadline_ms, run_cycles[i]);
          if (memo_runs)
            DefectRunCache::global().store(run_key, verdicts[i],
                                           run_cycles[i]);
        }
        simulated.fetch_add(1, std::memory_order_relaxed);
        if (checkpoint)
          checkpoint->record(options.checkpoint_section, i, verdicts[i]);
        notify_progress();
        util::FaultInjector& inj = util::FaultInjector::global();
        if (inj.fire("campaign.kill")) killed.store(true);
        if (inj.fire("campaign.crash")) {
          crashed.store(true);
          killed.store(true);
        }
      });

  for (const SystemPool::Lease& s : systems) {
    if (!s) continue;
    absorb(s);
  }

  // Quarantine: each failed defect is retried once serially on a fresh
  // simulator (a transient poisoned-worker state cannot recur there); a
  // second failure is recorded as kSimError and the campaign still
  // completes with every other verdict intact.
  std::size_t retries = 0;
  for (const util::ItemError& e : errors) {
    if (cancelled()) break;  // unrecorded items re-run on resume
    // The parallel.item injection site fires for every index of the
    // range, including slots this shard never simulates; those are not
    // this shard's work and must not leak into its verdicts or stats.
    if (!shard.owns(e.index) || restored[e.index] || screened[e.index])
      continue;
    std::string message = e.message;
    bool recovered = false;
    if (options.retry_errors) {
      ++retries;
      // Deliberately not leased from the pool: the quarantine guarantee
      // is a *fresh* simulator, where a transient poisoned-worker state
      // cannot recur.
      soc::System system(config);
      system.set_micro_program(micro);
      try {
        verdicts[e.index] =
            simulate_one(system, bus, library[e.index], program, gold, budget,
                         options.defect_deadline_ms, run_cycles[e.index]);
        recovered = true;
      } catch (const std::exception& retry_error) {
        message = retry_error.what();
      } catch (...) {
        message = "unknown exception";
      }
      const soc::CacheCounters c = system.transition_cache_counters();
      xfer_counters.hits += c.hits;
      xfer_counters.misses += c.misses;
      const soc::TierCounters t = system.tier_counters();
      tier_counters.decoded_programs += t.decoded_programs;
      tier_counters.decode_cache_hits += t.decode_cache_hits;
      tier_counters.jit_blocks += t.jit_blocks;
      tier_counters.jit_bailouts += t.jit_bailouts;
    }
    if (!recovered) {
      verdicts[e.index] = Verdict::kSimError;
      run_cycles[e.index] = 0;
      if (options.stats != nullptr)
        options.stats->error_log.push_back(
            "defect " + std::to_string(e.index) + ": " + message);
    }
    if (checkpoint)
      checkpoint->record(options.checkpoint_section, e.index,
                         verdicts[e.index]);
    simulated.fetch_add(1, std::memory_order_relaxed);
    notify_progress();
  }

  const bool interrupted = cancelled();
  if (checkpoint && !crashed.load()) {
    // The final flush is best-effort: the in-memory verdicts are the
    // campaign result, a full disk must not turn them into a failure.
    try {
      checkpoint->flush();
    } catch (const std::exception& e) {
      if (options.stats != nullptr)
        options.stats->error_log.push_back(
            std::string("checkpoint final flush failed: ") + e.what());
    }
  }

  if (options.stats != nullptr) {
    util::CampaignStats& stats = *options.stats;
    stats.threads = workers;
    stats.defects_simulated += simulated.load();
    stats.restored_from_checkpoint += restored_count;
    stats.retries += retries;
    stats.simulated_cycles += gold.cycles;
    for (std::uint64_t c : run_cycles) stats.simulated_cycles += c;
    if (checkpoint) stats.flush_failures += checkpoint->flush_failures();
    stats.cache_hits += xfer_counters.hits;
    stats.cache_misses += xfer_counters.misses;
    stats.gold_reuses += gold_reused ? 1 : 0;
    stats.gold_evictions += gold_evicted;
    stats.run_reuses += run_reuses.load();
    stats.batch_screened += screened_count;
    stats.batched_transitions += screen_transitions;
    stats.batch_lanes += screen_lanes;
    stats.batch_capacity += screen_capacity;
    stats.decoded_programs += tier_counters.decoded_programs;
    stats.decode_cache_hits += tier_counters.decode_cache_hits;
    stats.jit_blocks += tier_counters.jit_blocks;
    stats.jit_bailouts += tier_counters.jit_bailouts;
    // A sharded run tallies only the slots it owns, so per-shard verdict
    // breakdowns sum to exactly the unsharded breakdown under
    // merge_shard_results.
    if (!interrupted) {
      if (shard.count <= 1) {
        tally_verdicts(verdicts, stats);
      } else {
        std::vector<Verdict> owned;
        owned.reserve(shard.owned_of(n));
        for (std::size_t i = shard.index; i < n; i += shard.count)
          owned.push_back(verdicts[i]);
        tally_verdicts(owned, stats);
      }
    }
    stats.wall_seconds += seconds_since(start);
  }
  if (interrupted)
    throw CampaignInterrupted(
        "campaign interrupted after " + std::to_string(simulated.load()) +
        " new verdict(s)" +
        (checkpoint ? (crashed.load()
                           ? "; simulated crash, last periodic checkpoint "
                             "flush survives"
                           : "; checkpoint flushed to " +
                                 options.checkpoint_path)
                    : "; no checkpoint configured") +
        " -- rerun the same command to resume");
  return verdicts;
}

std::vector<Verdict> merge_shard_results(const std::vector<ShardResult>& shards,
                                         util::CampaignStats* stats) {
  if (shards.empty())
    throw std::invalid_argument("merge_shard_results: no shards");
  const std::size_t count = shards.front().shard.count;
  const std::size_t n = shards.front().verdicts.size();
  if (shards.size() != count)
    throw std::invalid_argument(
        "merge_shard_results: got " + std::to_string(shards.size()) +
        " shard result(s) for a " + std::to_string(count) + "-way split");
  std::vector<std::uint8_t> seen(count, 0);
  for (const ShardResult& s : shards) {
    if (s.shard.count != count)
      throw std::invalid_argument(
          "merge_shard_results: shard " + std::to_string(s.shard.index) +
          " was run as 1 of " + std::to_string(s.shard.count) +
          ", not 1 of " + std::to_string(count));
    if (s.shard.index >= count || seen[s.shard.index])
      throw std::invalid_argument(
          "merge_shard_results: shard index " +
          std::to_string(s.shard.index) +
          (s.shard.index >= count ? " out of range" : " appears twice"));
    if (s.verdicts.size() != n)
      throw std::invalid_argument(
          "merge_shard_results: shard " + std::to_string(s.shard.index) +
          " carries " + std::to_string(s.verdicts.size()) +
          " verdict(s), expected " + std::to_string(n));
    seen[s.shard.index] = 1;
  }
  std::vector<Verdict> merged(n, Verdict::kUndetected);
  for (const ShardResult& s : shards) {
    for (std::size_t i = s.shard.index; i < n; i += count)
      merged[i] = s.verdicts[i];
    if (stats != nullptr) stats->merge_from(s.stats);
  }
  return merged;
}

std::vector<Verdict> run_detection(const soc::SystemConfig& config,
                                   const sbst::TestProgram& program,
                                   soc::BusKind bus,
                                   const xtalk::DefectLibrary& library,
                                   std::uint64_t cycle_factor,
                                   const util::ParallelConfig& parallel,
                                   util::CampaignStats* stats) {
  CampaignOptions options;
  options.cycle_factor = cycle_factor;
  options.parallel = parallel;
  options.stats = stats;
  return run_detection(config, program, bus, library, options);
}

std::vector<Verdict> run_detection_sessions(
    const soc::SystemConfig& config,
    const std::vector<sbst::GenerationResult>& sessions, soc::BusKind bus,
    const xtalk::DefectLibrary& library, const CampaignOptions& options) {
  std::vector<Verdict> merged(library.size(), Verdict::kUndetected);
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    if (sessions[s].program.tests.empty()) continue;
    CampaignOptions session_options = options;
    if (!options.checkpoint_path.empty())
      session_options.checkpoint_section = "session" + std::to_string(s);
    const std::vector<Verdict> det = run_detection(
        config, sessions[s].program, bus, library, session_options);
    for (std::size_t i = 0; i < merged.size(); ++i)
      merged[i] = merge_verdicts(merged[i], det[i]);
  }
  return merged;
}

std::vector<Verdict> run_detection_sessions(
    const soc::SystemConfig& config,
    const std::vector<sbst::GenerationResult>& sessions, soc::BusKind bus,
    const xtalk::DefectLibrary& library, std::uint64_t cycle_factor,
    const util::ParallelConfig& parallel, util::CampaignStats* stats) {
  CampaignOptions options;
  options.cycle_factor = cycle_factor;
  options.parallel = parallel;
  options.stats = stats;
  return run_detection_sessions(config, sessions, bus, library, options);
}

PerLineCoverage per_line_coverage(const soc::SystemConfig& config,
                                  soc::BusKind bus,
                                  const xtalk::DefectLibrary& library,
                                  const sbst::GeneratorConfig& base_config,
                                  std::uint64_t cycle_factor,
                                  const util::ParallelConfig& parallel,
                                  util::CampaignStats* stats) {
  const soc::System probe(config);
  const unsigned width = nominal_net(probe, bus).width();
  PerLineCoverage out;
  out.library_size = library.size();
  out.individual.resize(width, 0.0);
  out.cumulative.resize(width, 0.0);
  out.tests_placed.resize(width, 0);

  std::vector<Verdict> cum(library.size(), Verdict::kUndetected);
  for (unsigned line = 0; line < width; ++line) {
    // The MA tests for interconnect `line`: all MAF types, both directions
    // for the data bus.
    std::vector<xtalk::MafFault> faults;
    const bool bidir =
        bus == soc::BusKind::kData && base_config.data_both_directions;
    for (const xtalk::MafFault& f :
         xtalk::enumerate_mafs(width, bidir))
      if (f.victim == line) faults.push_back(f);

    sbst::GeneratorConfig cfg = base_config;
    cfg.include_address_bus = bus == soc::BusKind::kAddress;
    cfg.include_data_bus = bus == soc::BusKind::kData;
    if (bus == soc::BusKind::kAddress)
      cfg.address_faults = faults;
    else
      cfg.data_faults = faults;

    // Multi-session realisation of this line's MA tests, so conflicts
    // between the line's own four schemes do not hide any of them.
    const std::vector<sbst::GenerationResult> minis =
        sbst::TestProgramGenerator::generate_sessions(cfg);
    for (const auto& s : minis) out.tests_placed[line] += s.program.tests.size();
    const std::vector<Verdict> det = run_detection_sessions(
        config, minis, bus, library, cycle_factor, parallel, stats);
    out.individual[line] = coverage(det);
    for (std::size_t i = 0; i < cum.size(); ++i)
      cum[i] = merge_verdicts(cum[i], det[i]);
    out.cumulative[line] = coverage(cum);
  }

  // The complete program set over all lines (multi-session, Section 5).
  sbst::GeneratorConfig full = base_config;
  full.include_address_bus = bus == soc::BusKind::kAddress;
  full.include_data_bus = bus == soc::BusKind::kData;
  const std::vector<sbst::GenerationResult> all =
      sbst::TestProgramGenerator::generate_sessions(full);
  out.overall = coverage(run_detection_sessions(config, all, bus, library,
                                                cycle_factor, parallel,
                                                stats));
  return out;
}

}  // namespace xtest::sim
