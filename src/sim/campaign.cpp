#include "sim/campaign.h"

#include <chrono>
#include <stdexcept>

namespace xtest::sim {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

const xtalk::RcNetwork& nominal_net(const soc::System& system,
                                    soc::BusKind bus) {
  switch (bus) {
    case soc::BusKind::kAddress: return system.nominal_address_network();
    case soc::BusKind::kData: return system.nominal_data_network();
    case soc::BusKind::kControl: return system.nominal_control_network();
  }
  return system.nominal_address_network();
}

void apply_defect(soc::System& system, soc::BusKind bus,
                  const xtalk::Defect& defect) {
  const xtalk::RcNetwork net = defect.apply(nominal_net(system, bus));
  switch (bus) {
    case soc::BusKind::kAddress: system.set_address_network(net); break;
    case soc::BusKind::kData: system.set_data_network(net); break;
    case soc::BusKind::kControl: system.set_control_network(net); break;
  }
}

}  // namespace

xtalk::DefectLibrary make_defect_library(const soc::SystemConfig& config,
                                         soc::BusKind bus, std::size_t count,
                                         std::uint64_t seed,
                                         double sigma_pct) {
  const soc::System system(config);
  xtalk::DefectConfig dc;
  dc.sigma_pct = sigma_pct;
  switch (bus) {
    case soc::BusKind::kAddress: dc.cth_fF = system.address_cth(); break;
    case soc::BusKind::kData: dc.cth_fF = system.data_cth(); break;
    case soc::BusKind::kControl: dc.cth_fF = system.control_cth(); break;
  }
  dc.count = count;
  dc.seed = seed;
  return xtalk::DefectLibrary::generate(nominal_net(system, bus), dc);
}

std::vector<bool> run_detection(const soc::SystemConfig& config,
                                const sbst::TestProgram& program,
                                soc::BusKind bus,
                                const xtalk::DefectLibrary& library,
                                std::uint64_t cycle_factor,
                                const util::ParallelConfig& parallel,
                                util::CampaignStats* stats) {
  const auto start = Clock::now();
  soc::System gold_system(config);
  const ResponseSnapshot gold =
      run_and_capture(gold_system, program, 1'000'000);
  if (!gold.completed)
    throw std::runtime_error("gold run did not complete; bad program");
  const std::uint64_t budget = gold.cycles * cycle_factor + 1000;

  // Per-defect slots (std::vector<bool> packs bits and cannot be written
  // concurrently); workers fill disjoint index ranges, so the result is
  // independent of the worker count and of any interleaving.
  const std::size_t n = library.size();
  std::vector<std::uint8_t> verdicts(n, 0);
  std::vector<std::uint64_t> run_cycles(n, 0);
  util::parallel_for_chunks(
      n, parallel, [&](std::size_t begin, std::size_t end, unsigned) {
        soc::System system(config);  // each worker owns its simulator
        for (std::size_t i = begin; i < end; ++i) {
          apply_defect(system, bus, library[i]);
          const ResponseSnapshot snap =
              run_and_capture(system, program, budget);
          verdicts[i] = snap.matches(gold) ? 0 : 1;
          run_cycles[i] = snap.cycles;
          system.clear_defects();
        }
      });

  std::vector<bool> detected(n);
  for (std::size_t i = 0; i < n; ++i) detected[i] = verdicts[i] != 0;
  if (stats != nullptr) {
    stats->threads = parallel.resolve(n);
    stats->defects_simulated += n;
    stats->simulated_cycles += gold.cycles;
    for (std::uint64_t c : run_cycles) stats->simulated_cycles += c;
    stats->wall_seconds += seconds_since(start);
  }
  return detected;
}

std::vector<bool> run_detection_sessions(
    const soc::SystemConfig& config,
    const std::vector<sbst::GenerationResult>& sessions, soc::BusKind bus,
    const xtalk::DefectLibrary& library, std::uint64_t cycle_factor,
    const util::ParallelConfig& parallel, util::CampaignStats* stats) {
  std::vector<bool> any(library.size(), false);
  for (const sbst::GenerationResult& s : sessions) {
    if (s.program.tests.empty()) continue;
    const std::vector<bool> det = run_detection(
        config, s.program, bus, library, cycle_factor, parallel, stats);
    for (std::size_t i = 0; i < any.size(); ++i)
      any[i] = any[i] || det[i];
  }
  return any;
}

PerLineCoverage per_line_coverage(const soc::SystemConfig& config,
                                  soc::BusKind bus,
                                  const xtalk::DefectLibrary& library,
                                  const sbst::GeneratorConfig& base_config,
                                  std::uint64_t cycle_factor,
                                  const util::ParallelConfig& parallel,
                                  util::CampaignStats* stats) {
  const soc::System probe(config);
  const unsigned width = nominal_net(probe, bus).width();
  PerLineCoverage out;
  out.library_size = library.size();
  out.individual.resize(width, 0.0);
  out.cumulative.resize(width, 0.0);
  out.tests_placed.resize(width, 0);

  std::vector<bool> cum(library.size(), false);
  for (unsigned line = 0; line < width; ++line) {
    // The MA tests for interconnect `line`: all MAF types, both directions
    // for the data bus.
    std::vector<xtalk::MafFault> faults;
    const bool bidir =
        bus == soc::BusKind::kData && base_config.data_both_directions;
    for (const xtalk::MafFault& f :
         xtalk::enumerate_mafs(width, bidir))
      if (f.victim == line) faults.push_back(f);

    sbst::GeneratorConfig cfg = base_config;
    cfg.include_address_bus = bus == soc::BusKind::kAddress;
    cfg.include_data_bus = bus == soc::BusKind::kData;
    if (bus == soc::BusKind::kAddress)
      cfg.address_faults = faults;
    else
      cfg.data_faults = faults;

    // Multi-session realisation of this line's MA tests, so conflicts
    // between the line's own four schemes do not hide any of them.
    const std::vector<sbst::GenerationResult> minis =
        sbst::TestProgramGenerator::generate_sessions(cfg);
    for (const auto& s : minis) out.tests_placed[line] += s.program.tests.size();
    const std::vector<bool> det = run_detection_sessions(
        config, minis, bus, library, cycle_factor, parallel, stats);
    out.individual[line] = coverage(det);
    for (std::size_t i = 0; i < cum.size(); ++i) cum[i] = cum[i] || det[i];
    out.cumulative[line] = coverage(cum);
  }

  // The complete program set over all lines (multi-session, Section 5).
  sbst::GeneratorConfig full = base_config;
  full.include_address_bus = bus == soc::BusKind::kAddress;
  full.include_data_bus = bus == soc::BusKind::kData;
  const std::vector<sbst::GenerationResult> all =
      sbst::TestProgramGenerator::generate_sessions(full);
  out.overall = coverage(run_detection_sessions(config, all, bus, library,
                                                cycle_factor, parallel,
                                                stats));
  return out;
}

}  // namespace xtest::sim
