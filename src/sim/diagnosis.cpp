#include "sim/diagnosis.h"

#include <algorithm>
#include <cstdio>

namespace xtest::sim {

namespace {

std::string hex_byte(std::uint8_t b) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%02x", b);
  return buf;
}

std::uint8_t value_at(const ResponseSnapshot& s, std::size_t k) {
  return k < s.values.size() ? s.values[k] : 0;
}

}  // namespace

std::vector<DiagnosisCandidate> diagnose(const sbst::TestProgram& program,
                                         const ResponseSnapshot& gold,
                                         const ResponseSnapshot& observed) {
  std::vector<DiagnosisCandidate> out;
  if (observed.matches(gold)) return out;

  const std::size_t cells = program.response_cells.size();
  const bool have_marks = program.response_watermarks.size() == cells;

  // For a truncated run, only the *earliest* broken response carries
  // information: later cells were simply never written.  Matching cells
  // give no lower bound -- a derailed CPU executing wild code can rewrite
  // earlier response cells with accidentally matching values -- so the
  // window is [0, hi) with hi at the earliest unwritten group.
  std::size_t hi = program.tests.size();
  if (!observed.completed && have_marks) {
    for (std::size_t k = 0; k < cells; ++k) {
      if (value_at(gold, k) != value_at(observed, k))
        hi = std::min(hi, program.response_watermarks[k]);
    }
  }

  for (std::size_t k = 0; k < cells; ++k) {
    const std::uint8_t g = value_at(gold, k);
    const std::uint8_t o = value_at(observed, k);
    if (g == o) continue;
    // Skip uninformative post-truncation cells.
    if (!observed.completed && have_marks &&
        program.response_watermarks[k] > hi)
      continue;
    const std::uint8_t flipped = static_cast<std::uint8_t>(g ^ o);
    const cpu::Addr cell = program.response_cells[k];

    for (std::size_t i = 0; i < program.tests.size(); ++i) {
      const sbst::PlannedTest& t = program.tests[i];
      if (t.response_cell != cell) continue;
      if (t.scheme == sbst::Scheme::kDataWrite) {
        out.push_back({i, t.fault,
                       "write target " + hex_byte(o) + " != expected " +
                           hex_byte(g)});
      } else if (t.pass_value != 0 && (flipped & t.pass_value) != 0) {
        out.push_back({i, t.fault,
                       "group signature bit " + hex_byte(t.pass_value) +
                           " flipped (" + hex_byte(g) + " -> " + hex_byte(o) +
                           ")"});
      }
    }
  }

  if (!observed.completed) {
    // Control divergence: the compact JMP-scheme tests detect by derailing
    // execution; implicate the ones inside the truncation window.
    for (std::size_t i = 0; i < hi; ++i) {
      const sbst::PlannedTest& t = program.tests[i];
      if (t.scheme == sbst::Scheme::kAddrDelayJmp ||
          t.scheme == sbst::Scheme::kAddrGlitchJmp) {
        out.push_back({i, t.fault,
                       "program did not complete (control-divergence "
                       "scheme in the truncation window)"});
      }
    }
  }

  // A mismatch with no attributable candidate still deserves a record:
  // blame every test sharing the first mismatching cell.
  if (out.empty()) {
    for (std::size_t k = 0; k < cells; ++k) {
      const std::uint8_t g = value_at(gold, k);
      const std::uint8_t o = value_at(observed, k);
      if (g == o) continue;
      for (std::size_t i = 0; i < program.tests.size(); ++i)
        if (program.tests[i].response_cell == program.response_cells[k])
          out.push_back({i, program.tests[i].fault,
                         "response cell mismatch without one-hot signature"});
      break;
    }
  }
  return out;
}

}  // namespace xtest::sim
