// Verdict taxonomy for defect-simulation campaigns.
//
// The paper's detection model has two distinct mechanisms: a response cell
// holding the wrong value when the tester unloads it, and the chip failing
// to signal completion within the test-time budget (a crosstalk defect that
// derails control flow never reaches HLT and is "detected" by the tester
// timeout).  Collapsing both into one bool loses exactly the information an
// in-field test flow needs, and leaves no room to account for a simulation
// that failed outright.  A Verdict keeps the cases apart:
//
//   kUndetected         faulty run matched the gold response
//   kDetected           tester-visible response mismatch, program completed
//   kDetectedByTimeout  program did not reach HLT within the cycle budget
//   kSimError           the simulation itself failed (quarantined defect)
//
// coverage() counts both detected kinds, so existing campaign call sites
// keep their meaning.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/parallel.h"

namespace xtest::sim {

enum class Verdict : std::uint8_t {
  kUndetected = 0,
  kDetected = 1,
  kDetectedByTimeout = 2,
  kSimError = 3,
};

/// Both detection mechanisms count as detected; a SimError does not (the
/// defect's behaviour is unknown, claiming coverage for it would be wrong).
inline bool is_detected(Verdict v) {
  return v == Verdict::kDetected || v == Verdict::kDetectedByTimeout;
}

inline const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kUndetected: return "undetected";
    case Verdict::kDetected: return "detected";
    case Verdict::kDetectedByTimeout: return "detected-by-timeout";
    case Verdict::kSimError: return "sim-error";
  }
  return "?";
}

/// One-character codes for the checkpoint file format.
inline char to_char(Verdict v) {
  switch (v) {
    case Verdict::kUndetected: return 'U';
    case Verdict::kDetected: return 'D';
    case Verdict::kDetectedByTimeout: return 'T';
    case Verdict::kSimError: return 'E';
  }
  return '?';
}

/// Inverse of to_char; returns false for unknown codes.
inline bool verdict_from_char(char c, Verdict& out) {
  switch (c) {
    case 'U': out = Verdict::kUndetected; return true;
    case 'D': out = Verdict::kDetected; return true;
    case 'T': out = Verdict::kDetectedByTimeout; return true;
    case 'E': out = Verdict::kSimError; return true;
  }
  return false;
}

/// Session union: a defect's verdict over a program *set* is the strongest
/// evidence any session produced.  A response mismatch outranks a timeout
/// (it pins the failure to specific cells), a timeout outranks an error,
/// and an error outranks undetected -- a defect whose only session failed
/// to simulate must not be reported as a clean pass.
inline Verdict merge_verdicts(Verdict a, Verdict b) {
  auto rank = [](Verdict v) {
    switch (v) {
      case Verdict::kDetected: return 3;
      case Verdict::kDetectedByTimeout: return 2;
      case Verdict::kSimError: return 1;
      case Verdict::kUndetected: return 0;
    }
    return 0;
  };
  return rank(a) >= rank(b) ? a : b;
}

struct VerdictCounts {
  std::size_t detected = 0;
  std::size_t detected_by_timeout = 0;
  std::size_t undetected = 0;
  std::size_t sim_errors = 0;

  std::size_t total() const {
    return detected + detected_by_timeout + undetected + sim_errors;
  }
  std::size_t detected_total() const { return detected + detected_by_timeout; }
};

inline VerdictCounts count_verdicts(const std::vector<Verdict>& verdicts) {
  VerdictCounts c;
  for (Verdict v : verdicts) {
    switch (v) {
      case Verdict::kUndetected: ++c.undetected; break;
      case Verdict::kDetected: ++c.detected; break;
      case Verdict::kDetectedByTimeout: ++c.detected_by_timeout; break;
      case Verdict::kSimError: ++c.sim_errors; break;
    }
  }
  return c;
}

/// Adds a campaign's verdict breakdown onto accumulated stats.
inline void tally_verdicts(const std::vector<Verdict>& verdicts,
                           util::CampaignStats& stats) {
  const VerdictCounts c = count_verdicts(verdicts);
  stats.detected += c.detected;
  stats.detected_by_timeout += c.detected_by_timeout;
  stats.undetected += c.undetected;
  stats.sim_errors += c.sim_errors;
}

/// Fraction of the library that is detected (either kind).  Empty input is
/// 0 coverage.
inline double coverage(const std::vector<Verdict>& verdicts) {
  if (verdicts.empty()) return 0.0;
  return static_cast<double>(count_verdicts(verdicts).detected_total()) /
         static_cast<double>(verdicts.size());
}

/// Legacy overload for plain detected/undetected flag vectors (hand-built
/// verdicts in benches and tests).
inline double coverage(const std::vector<bool>& detected) {
  if (detected.empty()) return 0.0;
  std::size_t n = 0;
  for (bool d : detected) n += d;
  return static_cast<double>(n) / static_cast<double>(detected.size());
}

}  // namespace xtest::sim
