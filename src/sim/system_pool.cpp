#include "sim/system_pool.h"

#include "util/fault_injector.h"

namespace xtest::sim {

namespace {
/// Idle simulators kept per configuration: enough for a worker fan-out
/// plus the gold/lead simulator; beyond that, released ones are dropped.
constexpr std::size_t kMaxIdlePerConfig = 8;
}  // namespace

SystemPool::Lease::~Lease() {
  if (system_ == nullptr || home_ == nullptr) return;
  home_->release(std::move(system_), config_);
}

soc::CacheCounters SystemPool::Lease::cache_delta() const {
  const soc::CacheCounters now = system_->transition_cache_counters();
  return {now.hits - cache0_.hits, now.misses - cache0_.misses};
}

soc::TierCounters SystemPool::Lease::tier_delta() const {
  const soc::TierCounters now = system_->tier_counters();
  return {now.decoded_programs - tiers0_.decoded_programs,
          now.decode_cache_hits - tiers0_.decode_cache_hits,
          now.jit_blocks - tiers0_.jit_blocks,
          now.jit_bailouts - tiers0_.jit_bailouts};
}

SystemPool::Lease SystemPool::acquire(const soc::SystemConfig& config) {
  Lease lease;
  lease.config_ = config;
  const bool pooled = config.exec_tier != cpu::ExecTier::kReference &&
                      !util::FaultInjector::global().armed();
  if (pooled) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : entries_) {
      if (!(e.config == config) || e.idle.empty()) continue;
      lease.system_ = std::move(e.idle.back());
      e.idle.pop_back();
      break;
    }
  }
  if (lease.system_ == nullptr)
    lease.system_ = std::make_unique<soc::System>(config);
  lease.home_ = pooled ? this : nullptr;
  lease.cache0_ = lease.system_->transition_cache_counters();
  lease.tiers0_ = lease.system_->tier_counters();
  return lease;
}

void SystemPool::release(std::unique_ptr<soc::System> system,
                         const soc::SystemConfig& config) {
  // Return the simulator defect-free, unpinned and untraced; its memos
  // (warm, pooled defects, decode memo) are what the next lease is for.
  system->clear_defects();
  system->set_micro_program(nullptr);
  system->set_trace(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (!(e.config == config)) continue;
    if (e.idle.size() < kMaxIdlePerConfig)
      e.idle.push_back(std::move(system));
    return;
  }
  entries_.push_back(Entry{config, {}});
  entries_.back().idle.push_back(std::move(system));
}

void SystemPool::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::size_t SystemPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.idle.size();
  return n;
}

SystemPool& SystemPool::global() {
  static SystemPool* pool = new SystemPool;
  return *pool;
}

}  // namespace xtest::sim
