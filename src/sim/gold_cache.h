// Gold-run snapshot reuse.
//
// Every campaign call re-simulates the gold (defect-free) run of its test
// program before sweeping the library, and multi-session / per-line /
// chaos-resume flows hand the *same* program to run_detection over and
// over.  The gold response is a pure function of (system configuration,
// program image, entry, response cells, cycle budget) -- the system is
// deterministic and defect-free -- so a process-wide memo keyed by a hash
// of exactly those inputs eliminates the repeats.
//
// The hash deliberately excludes the SystemConfig hot-path knobs
// (fast_receive / transition_cache): both evaluation paths produce
// bit-identical words (the fast-path equivalence guarantee), so the gold
// snapshot is the same either way and the cache stays shared across them.
//
// Reuse is bypassed while the fault injector is armed: an injected
// "signature.capture" fault must hit the same runs it would hit without
// the cache, so armed campaigns re-simulate gold exactly like the seed.

#pragma once

#include <cstdint>

#include "sbst/program.h"
#include "sim/signature.h"
#include "sim/verdict.h"
#include "soc/system.h"
#include "xtalk/defect.h"

namespace xtest::sim {

/// Identity of one gold run: FNV-1a-64 over the system's electrical
/// configuration and the program bytes the run consumes.
std::uint64_t gold_run_key(const soc::SystemConfig& config,
                           const sbst::TestProgram& program,
                           std::uint64_t max_cycles);

/// Process-wide bounded memo of completed gold snapshots.  Thread-safe;
/// campaigns running concurrently share it.  Growth is bounded by a
/// configurable entry cap with LRU eviction, so long scenario sweeps
/// cannot grow the process-wide memo without limit.
class GoldRunCache {
 public:
  static GoldRunCache& global();

  /// Copies the cached snapshot into `out` and returns true on a hit.
  /// A hit refreshes the entry's recency.
  bool find(std::uint64_t key, ResponseSnapshot& out);

  /// Records a *completed* gold snapshot (incomplete golds abort the
  /// campaign anyway).  When the table is at capacity the least-recently
  /// used entry is evicted first.  Returns the number of entries evicted
  /// by this call (0 or 1), so campaigns can account evictions in their
  /// stats.
  std::size_t store(std::uint64_t key, const ResponseSnapshot& snapshot);

  /// Entry cap (minimum 1).  Shrinking below the current size evicts the
  /// least-recently-used entries immediately; those evictions also count.
  void set_capacity(std::size_t entries);
  std::size_t capacity() const;

  /// Entries evicted by the cap since process start (clear() resets it).
  std::uint64_t evictions() const;

  void clear();
  std::size_t size() const;

 private:
  GoldRunCache() = default;
  struct Impl;
  static Impl& impl();
};

/// Identity of one defect run: the gold-run key (which already pins the
/// system configuration, execution tier, program bytes, response cells
/// and gold cycle cap) extended with the bus under test, the run's cycle
/// budget, and the defect's full perturbation-factor triangle.
std::uint64_t defect_run_key(std::uint64_t gold_key, soc::BusKind bus,
                             std::uint64_t budget,
                             const xtalk::Defect& defect);

/// Process-wide bounded memo of completed defect-run outcomes, the
/// per-defect sibling of GoldRunCache: the simulator is deterministic, so
/// (verdict, cycle count) is a pure function of the run key and a hit
/// replays exactly what re-simulation would produce.  Campaigns consult
/// it only on accelerated tiers (the reference interpreter keeps the
/// seed's simulate-every-defect behaviour) and never while the fault
/// injector is armed.  Thread-safe; a full table is simply dropped.
class DefectRunCache {
 public:
  static DefectRunCache& global();

  /// Copies the memoed outcome into `verdict` / `cycles` on a hit.
  bool find(std::uint64_t key, Verdict& verdict, std::uint64_t& cycles);

  /// Records a *completed* (non-throwing) defect run.
  void store(std::uint64_t key, Verdict verdict, std::uint64_t cycles);

  void clear();
  std::size_t size() const;

 private:
  DefectRunCache() = default;
  struct Impl;
  static Impl& impl();
};

}  // namespace xtest::sim
