// Gold-run snapshot reuse.
//
// Every campaign call re-simulates the gold (defect-free) run of its test
// program before sweeping the library, and multi-session / per-line /
// chaos-resume flows hand the *same* program to run_detection over and
// over.  The gold response is a pure function of (system configuration,
// program image, entry, response cells, cycle budget) -- the system is
// deterministic and defect-free -- so a process-wide memo keyed by a hash
// of exactly those inputs eliminates the repeats.
//
// The hash deliberately excludes the SystemConfig hot-path knobs
// (fast_receive / transition_cache): both evaluation paths produce
// bit-identical words (the fast-path equivalence guarantee), so the gold
// snapshot is the same either way and the cache stays shared across them.
//
// Reuse is bypassed while the fault injector is armed: an injected
// "signature.capture" fault must hit the same runs it would hit without
// the cache, so armed campaigns re-simulate gold exactly like the seed.

#pragma once

#include <cstdint>

#include "sbst/program.h"
#include "sim/signature.h"
#include "soc/system.h"

namespace xtest::sim {

/// Identity of one gold run: FNV-1a-64 over the system's electrical
/// configuration and the program bytes the run consumes.
std::uint64_t gold_run_key(const soc::SystemConfig& config,
                           const sbst::TestProgram& program,
                           std::uint64_t max_cycles);

/// Process-wide bounded memo of completed gold snapshots.  Thread-safe;
/// campaigns running concurrently share it.  Growth is bounded by a
/// configurable entry cap with LRU eviction, so long scenario sweeps
/// cannot grow the process-wide memo without limit.
class GoldRunCache {
 public:
  static GoldRunCache& global();

  /// Copies the cached snapshot into `out` and returns true on a hit.
  /// A hit refreshes the entry's recency.
  bool find(std::uint64_t key, ResponseSnapshot& out);

  /// Records a *completed* gold snapshot (incomplete golds abort the
  /// campaign anyway).  When the table is at capacity the least-recently
  /// used entry is evicted first.  Returns the number of entries evicted
  /// by this call (0 or 1), so campaigns can account evictions in their
  /// stats.
  std::size_t store(std::uint64_t key, const ResponseSnapshot& snapshot);

  /// Entry cap (minimum 1).  Shrinking below the current size evicts the
  /// least-recently-used entries immediately; those evictions also count.
  void set_capacity(std::size_t entries);
  std::size_t capacity() const;

  /// Entries evicted by the cap since process start (clear() resets it).
  std::uint64_t evictions() const;

  void clear();
  std::size_t size() const;

 private:
  GoldRunCache() = default;
  struct Impl;
  static Impl& impl();
};

}  // namespace xtest::sim
