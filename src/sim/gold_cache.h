// Gold-run snapshot reuse.
//
// Every campaign call re-simulates the gold (defect-free) run of its test
// program before sweeping the library, and multi-session / per-line /
// chaos-resume flows hand the *same* program to run_detection over and
// over.  The gold response is a pure function of (system configuration,
// program image, entry, response cells, cycle budget) -- the system is
// deterministic and defect-free -- so a process-wide memo keyed by a hash
// of exactly those inputs eliminates the repeats.
//
// The hash deliberately excludes the SystemConfig hot-path knobs
// (fast_receive / transition_cache): both evaluation paths produce
// bit-identical words (the fast-path equivalence guarantee), so the gold
// snapshot is the same either way and the cache stays shared across them.
//
// Reuse is bypassed while the fault injector is armed: an injected
// "signature.capture" fault must hit the same runs it would hit without
// the cache, so armed campaigns re-simulate gold exactly like the seed.

#pragma once

#include <cstdint>

#include "sbst/program.h"
#include "sim/signature.h"
#include "soc/system.h"

namespace xtest::sim {

/// Identity of one gold run: FNV-1a-64 over the system's electrical
/// configuration and the program bytes the run consumes.
std::uint64_t gold_run_key(const soc::SystemConfig& config,
                           const sbst::TestProgram& program,
                           std::uint64_t max_cycles);

/// Process-wide bounded memo of completed gold snapshots.  Thread-safe;
/// campaigns running concurrently share it.
class GoldRunCache {
 public:
  static GoldRunCache& global();

  /// Copies the cached snapshot into `out` and returns true on a hit.
  bool find(std::uint64_t key, ResponseSnapshot& out);

  /// Records a *completed* gold snapshot (incomplete golds abort the
  /// campaign anyway).  When the table is full the whole memo is dropped
  /// first -- gold snapshots are cheap to rebuild and the common case is a
  /// handful of distinct programs hit thousands of times.
  void store(std::uint64_t key, const ResponseSnapshot& snapshot);

  void clear();
  std::size_t size() const;

 private:
  GoldRunCache() = default;
  struct Impl;
  static Impl& impl();
};

}  // namespace xtest::sim
