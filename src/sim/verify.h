// Functional verification of generated test programs.
//
// The generator's placement rules are structural; some accepted placements
// could still be unobservable in corner cases (e.g. a corrupted fetch that
// happens to converge to the pass behaviour).  Verification closes the
// loop: for every planned test, the program runs against an *ideal* forced
// MAF -- a defect excited exactly and only by that test's MA transition --
// and the test is effective iff the tester-visible response diverges from
// the gold run.  This mirrors the paper's own validation philosophy
// ("experimental results show that a self-test program ... is able to
// achieve its projected defect coverage") and also certifies that response
// compaction does not alias the fault away.

#pragma once

#include <cstdint>
#include <vector>

#include "sbst/program.h"
#include "sim/signature.h"
#include "soc/system.h"

namespace xtest::sim {

struct VerificationResult {
  ResponseSnapshot gold;
  std::uint64_t max_cycles = 0;
  /// Per-test verdict of the forced-MAF run, parallel to program.tests:
  /// kDetected when the fault showed up in a response cell, and
  /// kDetectedByTimeout when it derailed control flow so the program never
  /// reached HLT (the tester-timeout mechanism of the paper).
  std::vector<Verdict> verdicts;
  /// Indices into program.tests whose forced fault was NOT observed.
  std::vector<std::size_t> ineffective;

  bool all_effective() const { return ineffective.empty(); }
};

/// Verifies every planned test of `program` on a fresh system built from
/// `config`.  The cycle budget is gold cycles * `cycle_factor` (a hung
/// faulty run counts as detected -- the tester times out).
VerificationResult verify_program(const sbst::TestProgram& program,
                                  const soc::SystemConfig& config = {},
                                  std::uint64_t cycle_factor = 16);

}  // namespace xtest::sim
