#include "sim/serialize.h"

#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace xtest::sim {

std::string image_to_text(const cpu::MemoryImage& image) {
  std::ostringstream os;
  for (std::size_t a = 0; a < cpu::kMemWords; ++a) {
    if (!image.defined(static_cast<cpu::Addr>(a))) continue;
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%03zx: %02x\n", a,
                  image.at(static_cast<cpu::Addr>(a)));
    os << buf;
  }
  return os.str();
}

cpu::MemoryImage image_from_text(const std::string& text) {
  cpu::MemoryImage image;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    unsigned addr = 0, byte = 0;
    if (std::sscanf(line.c_str(), "0x%x: %x", &addr, &byte) != 2 ||
        addr >= cpu::kMemWords || byte > 0xFF)
      throw std::runtime_error("image_from_text: bad line '" + line + "'");
    image.set(static_cast<cpu::Addr>(addr),
              static_cast<std::uint8_t>(byte));
  }
  return image;
}

std::string library_to_csv(const xtalk::DefectLibrary& library,
                           unsigned width) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << width << ',' << library.config().sigma_pct << ','
     << library.config().cth_fF << ',' << library.size() << ','
     << library.config().seed << '\n';
  for (const xtalk::Defect& d : library.defects()) {
    bool first = true;
    for (unsigned i = 0; i < width; ++i)
      for (unsigned j = i + 1; j < width; ++j) {
        if (!first) os << ',';
        os << d.factor(i, j);
        first = false;
      }
    os << '\n';
  }
  return os.str();
}

LoadedLibrary library_from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("library_from_csv: empty input");

  LoadedLibrary out;
  unsigned width = 0;
  std::size_t count = 0;
  {
    std::istringstream hs(line);
    char comma;
    if (!(hs >> width >> comma >> out.config.sigma_pct >> comma >>
          out.config.cth_fF >> comma >> count >> comma >> out.config.seed))
      throw std::runtime_error("library_from_csv: bad header");
    out.config.count = count;
  }
  const std::size_t npairs =
      static_cast<std::size_t>(width) * (width - 1) / 2;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<double> factors;
    factors.reserve(npairs);
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) factors.push_back(std::stod(cell));
    if (factors.size() != npairs)
      throw std::runtime_error("library_from_csv: bad row width");
    out.defects.emplace_back(width, std::move(factors));
  }
  if (out.defects.size() != count)
    throw std::runtime_error("library_from_csv: row count mismatch");
  return out;
}

}  // namespace xtest::sim
