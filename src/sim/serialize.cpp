#include "sim/serialize.h"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/fault_injector.h"

namespace xtest::sim {

std::string image_to_text(const cpu::MemoryImage& image) {
  std::ostringstream os;
  for (std::size_t a = 0; a < cpu::kMemWords; ++a) {
    if (!image.defined(static_cast<cpu::Addr>(a))) continue;
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%03zx: %02x\n", a,
                  image.at(static_cast<cpu::Addr>(a)));
    os << buf;
  }
  return os.str();
}

cpu::MemoryImage image_from_text(const std::string& text) {
  util::FaultInjector::global().maybe_fail("serialize.image");
  cpu::MemoryImage image;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    unsigned addr = 0, byte = 0;
    if (std::sscanf(line.c_str(), "0x%x: %x", &addr, &byte) != 2)
      throw std::runtime_error("image_from_text: line " +
                               std::to_string(lineno) + ": bad line '" +
                               line + "'");
    if (addr >= cpu::kMemWords) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "image_from_text: line %zu: address 0x%x outside the "
                    "%u-bit address space",
                    lineno, addr, cpu::kAddrBits);
      throw std::runtime_error(buf);
    }
    if (byte > 0xFF)
      throw std::runtime_error("image_from_text: line " +
                               std::to_string(lineno) +
                               ": byte value wider than 8 bits in '" + line +
                               "'");
    image.set(static_cast<cpu::Addr>(addr),
              static_cast<std::uint8_t>(byte));
  }
  return image;
}

std::string library_to_csv(const xtalk::DefectLibrary& library,
                           unsigned width) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << width << ',' << library.config().sigma_pct << ','
     << library.config().cth_fF << ',' << library.size() << ','
     << library.config().seed << '\n';
  for (const xtalk::Defect& d : library.defects()) {
    bool first = true;
    for (unsigned i = 0; i < width; ++i)
      for (unsigned j = i + 1; j < width; ++j) {
        if (!first) os << ',';
        os << d.factor(i, j);
        first = false;
      }
    os << '\n';
  }
  return os.str();
}

LoadedLibrary library_from_csv(const std::string& csv) {
  util::FaultInjector::global().maybe_fail("serialize.library");
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("library_from_csv: empty input");

  LoadedLibrary out;
  unsigned width = 0;
  std::size_t count = 0;
  {
    std::istringstream hs(line);
    char comma;
    if (!(hs >> width >> comma >> out.config.sigma_pct >> comma >>
          out.config.cth_fF >> comma >> count >> comma >> out.config.seed))
      throw std::runtime_error("library_from_csv: bad header");
    out.config.count = count;
  }
  // An archived library that fails these is corrupt, not merely odd: a
  // zero/one-wire bus has no coupling pairs, and non-finite calibration
  // values poison every downstream comparison.
  if (width < 2 || width > 64)
    throw std::runtime_error("library_from_csv: header width " +
                             std::to_string(width) +
                             " outside the supported 2..64 line range");
  if (!std::isfinite(out.config.sigma_pct) || out.config.sigma_pct < 0.0)
    throw std::runtime_error(
        "library_from_csv: header sigma_pct is negative or non-finite");
  if (!std::isfinite(out.config.cth_fF) || out.config.cth_fF <= 0.0)
    throw std::runtime_error(
        "library_from_csv: header cth_fF must be finite and positive");

  const std::size_t npairs =
      static_cast<std::size_t>(width) * (width - 1) / 2;
  std::size_t row = 1;  // header is row 1; defect rows start at 2
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    std::vector<double> factors;
    factors.reserve(npairs);
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) {
      double f = 0.0;
      try {
        std::size_t used = 0;
        f = std::stod(cell, &used);
        if (used != cell.size())
          throw std::invalid_argument("trailing garbage");
      } catch (const std::exception&) {
        throw std::runtime_error("library_from_csv: row " +
                                 std::to_string(row) + ": bad value '" +
                                 cell + "'");
      }
      if (!std::isfinite(f) || f < 0.0)
        throw std::runtime_error(
            "library_from_csv: row " + std::to_string(row) + ": column " +
            std::to_string(factors.size() + 1) +
            ": coupling factor is NaN/inf/negative ('" + cell + "')");
      factors.push_back(f);
    }
    if (factors.size() != npairs)
      throw std::runtime_error(
          "library_from_csv: row " + std::to_string(row) + ": " +
          std::to_string(factors.size()) + " factors, expected " +
          std::to_string(npairs) + " for width " + std::to_string(width));
    out.defects.emplace_back(width, std::move(factors));
  }
  if (out.defects.size() != count)
    throw std::runtime_error(
        "library_from_csv: header promises " + std::to_string(count) +
        " defects but " + std::to_string(out.defects.size()) +
        " rows were read");
  return out;
}

}  // namespace xtest::sim
