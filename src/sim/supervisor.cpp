#include "sim/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "sim/campaign.h"
#include "sim/checkpoint.h"
#include "util/fault_injector.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/subprocess.h"

namespace xtest::sim {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kBackoffCapMs = 5000;
/// Keep only this much tail of a worker's captured output (enough for the
/// stats JSON line and the last error messages).
constexpr std::size_t kOutputTailCap = 64 * 1024;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One worker slot: the shard it owns plus the lifecycle of its current
/// (or next) process incarnation.
struct Worker {
  std::size_t shard = 0;
  std::string checkpoint_path;

  util::ChildProcess child;
  int hb_fd = -1;
  int out_fd = -1;
  std::string output;
  bool running = false;
  bool done = false;
  bool quarantined = false;
  /// The current incarnation was SIGKILLed by chaos mode; its death must
  /// not consume the retry budget.
  bool chaos_victim = false;
  /// The current incarnation was killed for a heartbeat timeout.
  bool timed_out = false;

  std::size_t spawns = 0;
  std::size_t retries_left = 0;
  std::uint64_t backoff_ms = 0;
  Clock::time_point next_spawn;
  Clock::time_point hb_deadline;
  /// Shard checkpoint bytes at the last failure; a change since then is
  /// durable progress and refills the retry budget.
  std::string last_snapshot;
  std::string last_status;
};

void append_capped(std::string& buf, const char* data, std::size_t n) {
  buf.append(data, n);
  if (buf.size() > kOutputTailCap)
    buf.erase(0, buf.size() - kOutputTailCap);
}

/// Drains a non-blocking fd; returns bytes read this call (0 on EAGAIN or
/// EOF -- the reap path distinguishes those, the drain loop does not need
/// to).  EINTR is retried inside the read (util::retry_eintr): a signal
/// landing mid-drain must not end the pass early, or heartbeat bytes
/// already in the pipe would be counted a poll cycle late under a signal
/// storm.
std::size_t drain(int fd, std::string* into) {
  if (fd < 0) return 0;
  std::size_t total = 0;
  char buf[4096];
  for (;;) {
    const ssize_t n =
        util::retry_eintr([&] { return ::read(fd, buf, sizeof buf); });
    if (n > 0) {
      if (into != nullptr) append_capped(*into, buf, std::size_t(n));
      total += std::size_t(n);
      continue;
    }
    break;  // 0 = EOF, -1 = EAGAIN; both end this drain pass
  }
  return total;
}

/// Sleeps until `until`, waking every few milliseconds to honour the
/// cooperative cancel flag.  Returns false the moment the flag is seen, so
/// a SIGTERM during a multi-second respawn-backoff window aborts promptly
/// instead of sleeping the window out.
bool wait_until_cancellable(Clock::time_point until,
                            const std::atomic<bool>* cancel) {
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
      return false;
    const Clock::time_point now = Clock::now();
    if (now >= until) return true;
    std::this_thread::sleep_for(
        std::min<Clock::duration>(until - now, std::chrono::milliseconds(5)));
  }
}

}  // namespace

Supervisor::Supervisor(SupervisorJob job, SupervisorOptions options)
    : job_(std::move(job)), opt_(std::move(options)) {}

std::string Supervisor::shard_checkpoint_path(const std::string& base,
                                              std::size_t shard) {
  return base + ".shard" + std::to_string(shard);
}

SupervisorResult Supervisor::run() {
  if (opt_.workers == 0)
    throw std::runtime_error("supervisor: workers must be >= 1");
  if (job_.binary.empty())
    throw std::runtime_error("supervisor: no worker binary");
  if (job_.scenario_path.empty())
    throw std::runtime_error("supervisor: no job scenario");
  if (job_.checkpoint_base.empty())
    throw std::runtime_error("supervisor: no checkpoint base path");
  if (job_.sections.empty())
    throw std::runtime_error("supervisor: no checkpoint sections");

  util::FaultInjector& inj = util::FaultInjector::global();
  SupervisorResult result;
  result.shards.resize(opt_.workers);

  std::vector<Worker> workers(opt_.workers);
  const Clock::time_point start = Clock::now();
  for (std::size_t k = 0; k < opt_.workers; ++k) {
    Worker& w = workers[k];
    w.shard = k;
    w.checkpoint_path = shard_checkpoint_path(job_.checkpoint_base, k);
    w.retries_left = opt_.worker_retries;
    w.backoff_ms = opt_.worker_backoff_ms;
    w.next_spawn = start;
    // A shard that crashed in a previous supervised run resumes from its
    // surviving checkpoint; its bytes are the progress baseline.
    w.last_snapshot = read_file(w.checkpoint_path);
    result.shards[k].shard = k;
  }

  const std::size_t chaos_cap =
      opt_.chaos_max_kills > 0 ? opt_.chaos_max_kills : opt_.workers * 3;
  util::Rng chaos_rng(opt_.chaos_seed);
  Clock::time_point next_chaos =
      start + std::chrono::milliseconds(opt_.chaos_kill_ms);

  auto log = [&](const std::string& line) {
    if (opt_.log != nullptr) *opt_.log << "[supervisor] " << line << "\n";
  };
  auto shard_name = [&](const Worker& w) {
    return "shard " + std::to_string(w.shard) + "/" +
           std::to_string(opt_.workers);
  };

  auto close_worker_fds = [](Worker& w) {
    util::close_fd(w.hb_fd);
    util::close_fd(w.out_fd);
  };

  auto quarantine = [&](Worker& w, const std::string& why) {
    w.quarantined = true;
    w.running = false;
    close_worker_fds(w);
    ShardOutcome& o = result.shards[w.shard];
    o.quarantined = true;
    o.last_status = w.last_status;
    log(shard_name(w) + ": QUARANTINED after " + std::to_string(w.spawns) +
        " spawn(s): " + why);
  };

  /// The current attempt ended without completing the shard.  Durable
  /// progress (checkpoint bytes changed) refills the retry budget; a
  /// chaos kill is supervisor-inflicted and never charges it.
  auto fail_attempt = [&](Worker& w, const std::string& why) {
    w.running = false;
    close_worker_fds(w);
    ++result.respawns;
    std::string snap = read_file(w.checkpoint_path);
    const bool progressed = snap != w.last_snapshot;
    w.last_snapshot = std::move(snap);
    const bool chaos = w.chaos_victim;
    w.chaos_victim = false;
    w.timed_out = false;
    if (chaos) {
      // Respawn immediately: the kill was ours, the worker owes nothing.
      w.next_spawn = Clock::now();
      log(shard_name(w) + ": chaos-killed (" + why + "), respawning");
      return;
    }
    if (progressed) {
      w.retries_left = opt_.worker_retries;
      w.backoff_ms = opt_.worker_backoff_ms;
    }
    if (w.retries_left == 0) {
      quarantine(w, why + "; retries exhausted without progress");
      return;
    }
    --w.retries_left;
    w.next_spawn = Clock::now() + std::chrono::milliseconds(w.backoff_ms);
    log(shard_name(w) + ": " + why + (progressed ? " (progressed)" : "") +
        ", respawn in " + std::to_string(w.backoff_ms) + " ms (" +
        std::to_string(w.retries_left) + " retries left)");
    w.backoff_ms = std::min<std::uint64_t>(w.backoff_ms * 2, kBackoffCapMs);
  };

  auto spawn_worker = [&](Worker& w) {
    if (inj.fire("supervisor.spawn")) {
      w.last_status = "injected spawn failure";
      ++w.spawns;
      result.shards[w.shard].spawns = w.spawns;
      fail_attempt(w, "injected spawn failure");
      return;
    }
    util::Pipe hb{}, out{};
    try {
      hb = util::make_pipe();
      out = util::make_pipe();
      util::SpawnSpec spec;
      spec.argv = {job_.binary,
                   "campaign",
                   "--scenario",
                   job_.scenario_path,
                   "--shard",
                   std::to_string(w.shard) + "/" +
                       std::to_string(opt_.workers),
                   "--checkpoint",
                   w.checkpoint_path,
                   "--stats-json",
                   "--heartbeat-fd",
                   "3"};
      if (!job_.fault_spec.empty()) {
        spec.argv.push_back("--faults");
        spec.argv.push_back(job_.fault_spec);
      }
      spec.pass_fds = {{3, hb.write_fd}};
      spec.stdout_fd = out.write_fd;
      spec.stderr_fd = out.write_fd;
      w.child = util::ChildProcess::spawn(spec);
    } catch (const std::exception& e) {
      util::close_fd(hb.read_fd);
      util::close_fd(hb.write_fd);
      util::close_fd(out.read_fd);
      util::close_fd(out.write_fd);
      w.last_status = e.what();
      ++w.spawns;
      result.shards[w.shard].spawns = w.spawns;
      fail_attempt(w, std::string("spawn failed: ") + e.what());
      return;
    }
    // Parent keeps only the read ends; the child's copies came from the
    // dup2 rewiring and the CLOEXEC originals vanished at exec.
    util::close_fd(hb.write_fd);
    util::close_fd(out.write_fd);
    util::set_nonblocking(hb.read_fd);
    util::set_nonblocking(out.read_fd);
    w.hb_fd = hb.read_fd;
    w.out_fd = out.read_fd;
    w.output.clear();
    w.running = true;
    w.timed_out = false;
    w.chaos_victim = false;
    ++w.spawns;
    result.shards[w.shard].spawns = w.spawns;
    w.hb_deadline =
        Clock::now() + std::chrono::milliseconds(opt_.heartbeat_timeout_ms);
    log(shard_name(w) + ": spawned pid " + std::to_string(w.child.pid()) +
        " (attempt " + std::to_string(w.spawns) + ")");
  };

  auto terminate_all = [&](int sig) {
    for (Worker& w : workers)
      if (w.running) w.child.kill(sig);
    for (Worker& w : workers) {
      if (!w.running) continue;
      w.child.wait();
      drain(w.out_fd, &w.output);
      w.running = false;
      close_worker_fds(w);
    }
  };

  // ---- monitor loop -----------------------------------------------------
  for (;;) {
    bool all_settled = true;
    for (const Worker& w : workers)
      if (!w.done && !w.quarantined) all_settled = false;
    if (all_settled) break;

    if (opt_.cancel != nullptr &&
        opt_.cancel->load(std::memory_order_relaxed)) {
      log("cancelled; stopping workers");
      terminate_all(SIGTERM);
      throw CampaignInterrupted(
          "supervised campaign interrupted; per-shard checkpoints retained, "
          "rerun to resume");
    }

    const Clock::time_point now = Clock::now();
    for (Worker& w : workers)
      if (!w.running && !w.done && !w.quarantined && now >= w.next_spawn)
        spawn_worker(w);

    // Wait for heartbeat/output traffic (or just pace the loop while
    // everyone is in backoff).
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_owner;
    for (std::size_t k = 0; k < workers.size(); ++k) {
      const Worker& w = workers[k];
      if (!w.running) continue;
      for (int fd : {w.hb_fd, w.out_fd}) {
        if (fd < 0) continue;
        fds.push_back(pollfd{fd, POLLIN, 0});
        fd_owner.push_back(k);
      }
    }
    if (fds.empty()) {
      // Everyone alive is waiting out a respawn backoff: sleep until the
      // earliest next_spawn (capped so chaos/new work stays responsive),
      // but wake immediately on cancel -- a SIGTERM during a backoff
      // window must not sleep out the rest of the budget.
      Clock::time_point until = now + std::chrono::milliseconds(50);
      for (const Worker& w : workers)
        if (!w.running && !w.done && !w.quarantined)
          until = std::min(until, w.next_spawn);
      wait_until_cancellable(std::max(until, now), opt_.cancel);
    } else {
      util::retry_eintr(
          [&] { return ::poll(fds.data(), nfds_t(fds.size()), 25); });
    }

    std::size_t new_beats = 0;
    for (Worker& w : workers) {
      if (!w.running) continue;
      drain(w.out_fd, &w.output);
      const std::size_t beats = drain(w.hb_fd, nullptr);
      if (beats > 0) {
        result.heartbeats += beats;
        new_beats += beats;
        if (inj.fire("supervisor.heartbeat")) {
          // Injected monitoring failure: the heartbeat is "lost", the
          // deadline lapses immediately and the wedged-worker path runs
          // against a perfectly healthy worker.
          w.hb_deadline = Clock::now() - std::chrono::milliseconds(1);
          log(shard_name(w) + ": injected heartbeat loss");
        } else {
          w.hb_deadline = Clock::now() + std::chrono::milliseconds(
                                             opt_.heartbeat_timeout_ms);
        }
      }
    }
    if (new_beats > 0 && opt_.on_progress) opt_.on_progress(new_beats);

    // Wedged workers: silent past the deadline -> SIGKILL.  The reap
    // below decides the outcome from the *actual* exit status, so a
    // worker whose normal exit races the timeout is still counted as the
    // clean completion it was.
    for (Worker& w : workers) {
      if (!w.running || w.timed_out || w.chaos_victim) continue;
      if (Clock::now() > w.hb_deadline) {
        w.timed_out = true;
        w.child.kill(SIGKILL);
        log(shard_name(w) + ": heartbeat timeout, SIGKILL pid " +
            std::to_string(w.child.pid()));
      }
    }

    // Chaos mode: SIGKILL a random live worker on the configured cadence.
    if (opt_.chaos_kill_ms > 0 && result.chaos_kills < chaos_cap &&
        Clock::now() >= next_chaos) {
      std::vector<std::size_t> live;
      for (std::size_t k = 0; k < workers.size(); ++k)
        if (workers[k].running && !workers[k].chaos_victim) live.push_back(k);
      if (!live.empty()) {
        Worker& victim = workers[live[std::size_t(
            chaos_rng.below(std::uint64_t(live.size())))]];
        victim.chaos_victim = true;
        victim.child.kill(SIGKILL);
        ++result.chaos_kills;
        log(shard_name(victim) + ": chaos SIGKILL pid " +
            std::to_string(victim.child.pid()) + " (" +
            std::to_string(result.chaos_kills) + "/" +
            std::to_string(chaos_cap) + ")");
      }
      next_chaos = Clock::now() + std::chrono::milliseconds(opt_.chaos_kill_ms);
    }

    // Reap.
    for (Worker& w : workers) {
      if (!w.running) continue;
      const util::ExitStatus st = w.child.poll_status();
      if (st.running()) continue;
      drain(w.out_fd, &w.output);
      w.last_status = st.describe();
      result.shards[w.shard].last_status = w.last_status;
      if (st.exited && st.code == 0) {
        w.running = false;
        close_worker_fds(w);
        w.done = true;
        // The final attempt's stats cover the whole shard: restored
        // verdicts are tallied like fresh ones by the campaign.
        util::CampaignStats shard_stats;
        bool parsed = false;
        std::istringstream lines(w.output);
        for (std::string line; std::getline(lines, line);) {
          // A worker SIGKILLed mid-printf (or racing its own crash) can
          // leave a torn stats line in the capture; damage is a skipped
          // line, never a supervisor failure or silently-wrong counters.
          try {
            if (util::parse_stats_json(line, shard_stats)) parsed = true;
          } catch (const util::StatsJsonError&) {
          }
        }
        if (parsed) result.stats.merge_from(shard_stats);
        log(shard_name(w) + ": completed (" + w.last_status + ", " +
            std::to_string(w.spawns) + " spawn(s))");
      } else if (st.exited && (st.code == 2 || st.code == 3)) {
        // Usage / I-O errors are configuration problems a respawn cannot
        // fix; burning the backoff schedule on them only delays the
        // verdict.
        w.running = false;
        close_worker_fds(w);
        quarantine(w, "non-retryable " + w.last_status);
      } else {
        fail_attempt(w, w.last_status +
                            (w.timed_out ? " (heartbeat timeout)" : ""));
      }
    }
  }

  // ---- merge ------------------------------------------------------------
  // Per-shard checkpoints are the result transport: restore every section
  // and fold sessions exactly like run_detection_sessions does.
  const std::size_t n = job_.defect_count;
  result.verdicts.assign(n, Verdict::kUndetected);
  for (Worker& w : workers) {
    std::vector<std::vector<std::optional<Verdict>>> sections;
    std::string read_error;
    try {
      CampaignCheckpoint cp(w.checkpoint_path, job_.checkpoint_key);
      for (const std::string& s : job_.sections)
        sections.push_back(cp.restore(s, n));
    } catch (const std::exception& e) {
      sections.clear();
      read_error = e.what();
    }
    const ShardSpec spec{w.shard, opt_.workers};
    std::size_t missing = 0;
    for (std::size_t i = spec.index; i < n; i += opt_.workers) {
      Verdict merged = Verdict::kUndetected;
      bool first = true;
      for (const auto& slots : sections) {
        const Verdict v = slots[i].value_or(Verdict::kSimError);
        if (!slots[i].has_value()) ++missing;
        merged = first ? v : merge_verdicts(merged, v);
        first = false;
      }
      if (sections.empty()) {
        merged = Verdict::kSimError;
        missing += job_.sections.size();
      }
      result.verdicts[i] = merged;
    }
    if (w.quarantined) {
      // Salvaged verdicts still count; unrecovered session slots are
      // sim errors, mirroring the per-session tally of a serial run.
      for (std::size_t s = 0; s < job_.sections.size(); ++s) {
        for (std::size_t i = spec.index; i < n; i += opt_.workers) {
          Verdict v = Verdict::kSimError;
          if (s < sections.size() && sections[s][i].has_value())
            v = *sections[s][i];
          switch (v) {
            case Verdict::kDetected: ++result.stats.detected; break;
            case Verdict::kDetectedByTimeout:
              ++result.stats.detected_by_timeout;
              break;
            case Verdict::kUndetected: ++result.stats.undetected; break;
            case Verdict::kSimError: ++result.stats.sim_errors; break;
          }
        }
      }
      std::string entry =
          "shard " + std::to_string(w.shard) + "/" +
          std::to_string(opt_.workers) + " quarantined after " +
          std::to_string(w.spawns) + " spawn(s) (" + w.last_status + "): " +
          std::to_string(missing) + " of " +
          std::to_string(spec.owned_of(n) * job_.sections.size()) +
          " owned session verdict(s) unrecovered";
      if (!read_error.empty()) entry += "; checkpoint: " + read_error;
      result.stats.error_log.push_back(std::move(entry));
    } else if (!read_error.empty()) {
      // A completed worker whose checkpoint cannot be read back is a
      // supervisor-side failure; report it rather than inventing verdicts.
      result.stats.error_log.push_back(
          "shard " + std::to_string(w.shard) + "/" +
          std::to_string(opt_.workers) +
          " completed but its checkpoint was unreadable: " + read_error);
      result.shards[w.shard].quarantined = true;
    }
  }
  return result;
}

}  // namespace xtest::sim
