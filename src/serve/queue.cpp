#include "serve/queue.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/retry.h"

namespace xtest::serve {

namespace {

constexpr const char* kMagic = "xtest-serve-queue v1";

// The scenario text is multi-line free-form, so records carry explicit
// byte lengths instead of line structure:
//
//   xtest-serve-queue v1
//   next <id>
//   crc <8 hex>                        (over the two lines above)
//   job <id> <prio> <state> <attempts> <exit> <degraded> \
//       <scn-len> <verdict-len> <stats-len> <err-len>
//   <scn bytes><verdict bytes><stats bytes><err bytes>\n
//   crc <8 hex>                        (over header line + payload + '\n')
//   ... more job records ...

std::string crc_line(const std::string& covered) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "crc %08x", util::crc32(covered));
  return buf;
}

bool parse_crc_line(const std::string& line, std::uint32_t& out) {
  if (line.size() != 12 || line.rfind("crc ", 0) != 0) return false;
  out = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    const char c = line[i];
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint32_t>(c - 'a' + 10);
    else
      return false;
    out = (out << 4) | digit;
  }
  return true;
}

/// Takes the next '\n'-terminated line starting at `pos` (newline consumed,
/// not returned).  False when the text ends before a newline.
bool take_line(const std::string& text, std::size_t& pos, std::string& line) {
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string::npos) return false;
  line.assign(text, pos, nl - pos);
  pos = nl + 1;
  return true;
}

std::string render_job(const Job& j) {
  std::ostringstream os;
  os << "job " << j.id << ' ' << j.priority << ' '
     << static_cast<unsigned>(static_cast<std::uint8_t>(j.state)) << ' '
     << j.attempts << ' ' << j.exit_code << ' ' << (j.degraded ? 1 : 0) << ' '
     << j.scenario.size() << ' ' << j.verdicts.size() << ' '
     << j.stats_json.size() << ' ' << j.error.size() << '\n';
  std::string record = os.str();
  record += j.scenario;
  record += j.verdicts;
  record += j.stats_json;
  record += j.error;
  record += '\n';
  return record + crc_line(record) + '\n';
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

JobQueue::JobQueue(std::string path) : path_(std::move(path)) {}

std::size_t JobQueue::load() {
  jobs_.clear();
  salvage_dropped_ = 0;
  next_id_ = 1;
  if (path_.empty()) return 0;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;  // fresh daemon, nothing to resume
  std::string text;
  char buf[4096];
  while (in.read(buf, sizeof buf)) text.append(buf, sizeof buf);
  text.append(buf, static_cast<std::size_t>(in.gcount()));
  if (in.bad())
    throw std::runtime_error("serve queue " + path_ + ": read error: " +
                             std::strerror(errno));
  if (text.empty()) return 0;

  std::size_t pos = 0;
  std::string magic, next_line, crc;
  std::uint32_t stored = 0;
  if (!take_line(text, pos, magic)) {
    // The first line never finished: a torn header, not a foreign file
    // (truncation eats the newline first).  Start empty.
    ++salvage_dropped_;
    return 0;
  }
  if (magic != kMagic)
    throw std::runtime_error("serve queue " + path_ +
                             ": not a queue file (bad magic line)");
  if (!take_line(text, pos, next_line) || next_line.rfind("next ", 0) != 0 ||
      !take_line(text, pos, crc) || !parse_crc_line(crc, stored) ||
      util::crc32(magic + '\n' + next_line + '\n') != stored) {
    // Header unverifiable: treat as an empty queue rather than resume
    // from an untrustworthy id counter (ids would collide with clients'
    // memory of past jobs otherwise, so count it as salvage).
    ++salvage_dropped_;
    return 0;
  }
  {
    std::istringstream ns(next_line.substr(5));
    if (!(ns >> next_id_) || next_id_ == 0) {
      ++salvage_dropped_;
      next_id_ = 1;
      return 0;
    }
  }

  // Records: keep the longest valid prefix, drop the torn tail.
  while (pos < text.size()) {
    const std::size_t record_start = pos;
    std::string header;
    Job j;
    unsigned state = 0, degraded = 0;
    std::size_t scn = 0, ver = 0, sta = 0, err = 0;
    bool ok = take_line(text, pos, header);
    if (ok) {
      std::istringstream hs(header);
      std::string word;
      ok = static_cast<bool>(hs >> word >> j.id >> j.priority >> state >>
                             j.attempts >> j.exit_code >> degraded >> scn >>
                             ver >> sta >> err) &&
           word == "job" && state <= 3 && j.priority >= 0 && j.priority <= 9;
    }
    const std::size_t payload = scn + ver + sta + err;
    ok = ok && pos + payload + 1 <= text.size() &&
         text[pos + payload] == '\n';
    std::uint32_t want = 0;
    std::string crc2;
    if (ok) {
      const std::string covered =
          text.substr(record_start, pos + payload + 1 - record_start);
      std::size_t after = pos + payload + 1;
      ok = take_line(text, after, crc2) && parse_crc_line(crc2, want) &&
           util::crc32(covered) == want;
      if (ok) {
        j.state = static_cast<JobState>(state);
        j.degraded = degraded != 0;
        j.scenario.assign(text, pos, scn);
        j.verdicts.assign(text, pos + scn, ver);
        j.stats_json.assign(text, pos + scn + ver, sta);
        j.error.assign(text, pos + scn + ver + sta, err);
        pos = after;
      }
    }
    if (!ok) {
      // Torn tail: count every remaining record header for the report.
      std::size_t scan = record_start;
      std::string line;
      while (take_line(text, scan, line))
        salvage_dropped_ += line.rfind("job ", 0) == 0;
      salvage_dropped_ = std::max<std::size_t>(salvage_dropped_, 1);
      break;
    }
    // A job interrupted mid-run resumes from its shard checkpoints.
    if (j.state == JobState::kRunning) j.state = JobState::kQueued;
    if (j.id >= next_id_) next_id_ = j.id + 1;
    jobs_.push_back(std::move(j));
  }
  return jobs_.size();
}

std::uint64_t JobQueue::enqueue(std::string scenario, int priority) {
  Job j;
  j.id = next_id_++;
  j.priority = std::clamp(priority, 0, 9);
  j.scenario = std::move(scenario);
  jobs_.push_back(std::move(j));
  try {
    persist();
  } catch (...) {
    // A submit is only accepted once it is durable: roll the job back so
    // memory and disk agree, and let the caller report the rejection.
    jobs_.pop_back();
    --next_id_;
    throw;
  }
  return jobs_.back().id;
}

Job* JobQueue::next_queued() {
  Job* best = nullptr;
  for (Job& j : jobs_) {
    if (j.state != JobState::kQueued) continue;
    if (best == nullptr || j.priority > best->priority) best = &j;
    // FIFO within a band falls out of scan order: ids are ascending.
  }
  return best;
}

Job* JobQueue::find(std::uint64_t id) {
  for (Job& j : jobs_)
    if (j.id == id) return &j;
  return nullptr;
}

std::size_t JobQueue::pending() const {
  std::size_t n = 0;
  for (const Job& j : jobs_)
    n += j.state == JobState::kQueued || j.state == JobState::kRunning;
  return n;
}

void JobQueue::persist() {
  if (path_.empty()) return;
  util::FaultInjector& inj = util::FaultInjector::global();
  std::string data;
  {
    const std::string header =
        std::string(kMagic) + '\n' + "next " + std::to_string(next_id_) + '\n';
    data = header + crc_line(header) + '\n';
    for (const Job& j : jobs_) data += render_job(j);
  }
  const std::string tmp =
      path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = -1;
  try {
    inj.maybe_fail("serve.enqueue");
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
      throw std::runtime_error("serve queue: cannot open " + tmp + ": " +
                               std::strerror(errno));
    if (!util::write_full(fd, data.data(), data.size()))
      throw std::runtime_error("serve queue: write failed for " + tmp + ": " +
                               std::strerror(errno));
    if (::fsync(fd) != 0)
      throw std::runtime_error("serve queue: fsync failed for " + tmp + ": " +
                               std::strerror(errno));
    if (::close(fd) != 0) {
      fd = -1;
      throw std::runtime_error("serve queue: close failed for " + tmp + ": " +
                               std::strerror(errno));
    }
    fd = -1;
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
      throw std::runtime_error("serve queue: cannot rename " + tmp + " to " +
                               path_ + ": " + std::strerror(errno));
  } catch (...) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace xtest::serve
