#include "serve/client.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/net.h"
#include "util/retry.h"
#include "util/subprocess.h"

namespace xtest::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ms_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0)
          .count());
}

}  // namespace

Client::Client(ClientOptions opt) : opt_(std::move(opt)) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  util::close_fd(fd_);
  dec_ = FrameDecoder();  // a fresh connection starts a fresh stream
}

void Client::kill_connection() {
  // No shutdown(), no goodbye frame: from the daemon's side this is a
  // peer that vanished mid-stream.
  disconnect();
}

bool Client::ensure_connected() {
  if (fd_ >= 0) return true;
  fd_ = opt_.socket_path.empty() ? util::connect_tcp(opt_.tcp_port)
                                 : util::connect_unix(opt_.socket_path);
  if (fd_ < 0) return false;
  dec_ = FrameDecoder();
  return true;
}

bool Client::reconnect_with_backoff() {
  std::uint64_t backoff = opt_.reconnect_backoff_ms;
  for (std::size_t attempt = 0; attempt < opt_.reconnect_retries; ++attempt) {
    if (ensure_connected()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min<std::uint64_t>(backoff * 2, 2000);
  }
  return false;
}

bool Client::send_frame(const Frame& f) {
  if (fd_ < 0) return false;
  const std::string bytes = encode_frame(f);
  if (!util::send_full(fd_, bytes.data(), bytes.size())) {
    disconnect();
    return false;
  }
  return true;
}

std::optional<Frame> Client::read_frame(std::uint64_t timeout_ms) {
  const Clock::time_point t0 = Clock::now();
  for (;;) {
    if (auto f = dec_.next()) return f;
    if (dec_.poisoned()) {
      // A daemon speaking garbage is a broken connection to recover from.
      disconnect();
      return std::nullopt;
    }
    if (fd_ < 0) return std::nullopt;
    const std::uint64_t spent = ms_since(t0);
    if (spent >= timeout_ms) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = util::retry_eintr(
        [&] { return ::poll(&pfd, 1, static_cast<int>(timeout_ms - spent)); });
    if (rc < 0) {
      disconnect();
      return std::nullopt;
    }
    if (rc == 0) return std::nullopt;  // timeout
    char buf[4096];
    const ssize_t n =
        util::retry_eintr([&] { return ::read(fd_, buf, sizeof buf); });
    if (n <= 0) {
      disconnect();
      return std::nullopt;
    }
    dec_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::uint64_t Client::submit(const std::string& scenario_text, int priority) {
  Frame f;
  f.type = FrameType::kSubmit;
  f.seq = next_seq_++;
  f.payload.push_back(static_cast<char>(
      static_cast<std::uint8_t>(priority < 0 ? 0 : priority > 9 ? 9 : priority)));
  f.payload += scenario_text;

  std::string last_error = "daemon unreachable";
  for (std::size_t attempt = 0; attempt <= opt_.submit_retries; ++attempt) {
    if (fd_ < 0 && !reconnect_with_backoff())
      throw std::runtime_error("submit: cannot connect to the daemon");
    // Retransmit with the SAME seq: the daemon replays its cached ack if
    // it already accepted this submit and only the ack was lost.
    if (!send_frame(f)) continue;
    const Clock::time_point t0 = Clock::now();
    while (ms_since(t0) < opt_.ack_timeout_ms) {
      auto r = read_frame(opt_.ack_timeout_ms - ms_since(t0));
      if (!r) break;
      if (r->type == FrameType::kSubmitAck) {
        std::size_t pos = 0;
        std::uint32_t echoed = 0;
        std::uint64_t job = 0;
        if (get_u32(r->payload, pos, echoed) &&
            get_u64(r->payload, pos, job) && echoed == f.seq)
          return job;
        continue;  // ack for some other in-flight submit
      }
      if (r->type == FrameType::kError && r->seq == f.seq)
        throw std::runtime_error("submit rejected: " + r->payload);
      // Events for other jobs etc. are fine to skip here; wait() resumes
      // from its durable cursor regardless.
    }
    last_error = "ack timeout";
    if (opt_.log != nullptr)
      *opt_.log << "client: submit attempt " << attempt + 1
                << " unacked, retransmitting\n";
  }
  throw std::runtime_error("submit: no ack after " +
                           std::to_string(opt_.submit_retries + 1) +
                           " attempts (" + last_error + ")");
}

JobResult Client::wait(std::uint64_t job,
                       const std::function<bool(const JobEvent&)>& observer) {
  JobResult result;
  result.job = job;
  bool need_resume = true;
  for (;;) {
    if (fd_ < 0) {
      if (!reconnect_with_backoff())
        throw std::runtime_error("wait: daemon unreachable for job " +
                                 std::to_string(job));
      need_resume = true;
    }
    if (need_resume) {
      Frame f;
      f.type = FrameType::kResume;
      f.seq = next_seq_++;
      put_u64(f.payload, job);
      put_u32(f.payload, last_seen_[job]);
      if (!send_frame(f)) continue;
      need_resume = false;
    }
    auto r = read_frame(1000);
    if (!r) {
      if (fd_ < 0) continue;  // connection lost: reconnect + resume
      // Plain timeout: ping so the idle reaper knows we are alive.
      Frame ping;
      ping.type = FrameType::kPing;
      ping.seq = next_seq_++;
      send_frame(ping);
      continue;
    }
    if (r->type == FrameType::kShutdown) {
      // Daemon draining; it (or its successor) still owes us the job.
      disconnect();
      continue;
    }
    if (r->type == FrameType::kError) {
      throw std::runtime_error("wait: daemon error: " + r->payload);
    }
    if (r->type != FrameType::kEvent) continue;  // pong, acks, banners

    std::size_t pos = 0;
    std::uint64_t ev_job = 0;
    std::uint32_t seq = 0;
    if (!get_u64(r->payload, pos, ev_job) || !get_u32(r->payload, pos, seq) ||
        pos >= r->payload.size())
      continue;  // short event payload; ignore
    if (ev_job != job) continue;
    const auto kind =
        static_cast<EventKind>(static_cast<std::uint8_t>(r->payload[pos]));
    const std::string text = r->payload.substr(pos + 1);

    if (seq != 0) {
      if (seq <= last_seen_[job]) continue;  // replayed overlap
      last_seen_[job] = seq;
      Frame ack;
      ack.type = FrameType::kAck;
      put_u64(ack.payload, job);
      put_u32(ack.payload, seq);
      send_frame(ack);
    }
    if (observer) {
      JobEvent ev{job, seq, kind, text};
      if (!observer(ev)) {
        result.aborted = true;
        return result;
      }
    }
    if (kind == EventKind::kChunk) {
      std::istringstream is(text);
      std::size_t off = 0;
      std::string chars;
      if (!(is >> off)) continue;
      is.get();  // the separating space
      std::getline(is, chars);
      if (result.verdicts.size() < off + chars.size())
        result.verdicts.resize(off + chars.size(), '.');
      result.verdicts.replace(off, chars.size(), chars);
    } else if (kind == EventKind::kDone) {
      const std::size_t nl = text.find('\n');
      std::istringstream is(text.substr(0, nl));
      int degraded = 0;
      std::size_t count = 0;
      if (is >> result.exit_code >> degraded >> count) {
        result.degraded = degraded != 0;
        result.failed = result.exit_code != 0 && !result.degraded;
        const std::string tail =
            nl == std::string::npos ? std::string() : text.substr(nl + 1);
        if (result.failed)
          result.error = tail;
        else
          result.stats_json = tail;
      }
      return result;
    }
  }
}

std::string Client::status() {
  if (fd_ < 0 && !reconnect_with_backoff())
    throw std::runtime_error("status: cannot connect to the daemon");
  Frame f;
  f.type = FrameType::kStatus;
  f.seq = next_seq_++;
  if (!send_frame(f)) throw std::runtime_error("status: connection lost");
  const Clock::time_point t0 = Clock::now();
  while (ms_since(t0) < 5000) {
    auto r = read_frame(5000 - ms_since(t0));
    if (!r) break;
    if (r->type == FrameType::kStatusReply) return r->payload;
  }
  throw std::runtime_error("status: no reply from the daemon");
}

void Client::request_shutdown() {
  if (fd_ < 0 && !reconnect_with_backoff())
    throw std::runtime_error("shutdown: cannot connect to the daemon");
  Frame f;
  f.type = FrameType::kShutdown;
  f.seq = next_seq_++;
  if (!send_frame(f)) throw std::runtime_error("shutdown: connection lost");
}

}  // namespace xtest::serve
