// The campaign service daemon (`xtest serve`).
//
// One poll-driven network thread owns the listening socket and every
// client connection; one runner thread executes queued jobs through
// sim::Supervisor (so every job inherits the crash-isolated worker
// processes, per-shard checkpoints, and quarantine semantics of PR 7).
// The two sides share the JobQueue and the per-job event streams under
// one mutex and wake each other through a self-pipe.
//
// Robustness contract (the point of this subsystem):
//   * A malformed, oversized, truncated, or CRC-damaged frame poisons
//     exactly that connection's decoder; the server sends a best-effort
//     kError and drops the connection.  The process never crashes on
//     client bytes.
//   * Idle and half-open connections (no complete frame, no ping) are
//     reaped after `idle_timeout_ms`.
//   * Slow readers get a bounded send buffer: durable events are pulled
//     from the per-job history only while the buffer has room, so a
//     stalled client costs O(cap) memory, not O(campaign).  Transient
//     progress events are simply dropped for laggards.
//   * Everything a client must not lose is durable: Submit is persisted
//     to the queue file BEFORE the SubmitAck goes out, and durable events
//     (verdict chunks, completion) carry per-job sequence numbers a
//     reconnecting client replays from with kResume.
//   * A job attempt that fails is retried with exponential backoff (the
//     supervisor's own quarantine path reports graceful degradation
//     in-band as exit-6 semantics instead); a job interrupted by daemon
//     death resumes from its shard checkpoints on restart because the
//     queue file and the checkpoint base names survive.
//   * Cancellation (SIGTERM) drains: stop accepting, notify clients with
//     kShutdown, cancel the running supervisor (workers checkpoint), mark
//     the job queued again, persist the queue, exit.
//
// Fault-injection sites: serve.accept (accepted connection dropped),
// serve.read / serve.write (connection I/O fails), serve.enqueue (queue
// persistence fails; the submit is rejected with kError and rolled back).

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace xtest::serve {

struct ServerOptions {
  /// Unix-domain socket path; when empty, listen on loopback TCP instead.
  std::string socket_path;
  /// TCP port when `socket_path` is empty (0 = ephemeral; see
  /// Server::bound_port()).
  std::uint16_t tcp_port = 0;
  /// Queue persistence file; also the stem for per-job checkpoint bases
  /// ("<queue>.job<id>.ckpt").  Empty = in-memory queue (tests only; no
  /// restart-resume).
  std::string queue_path;
  /// Job-level retry: attempts granted to a job whose supervisor run
  /// throws (spawn storms, unreadable scenario file, ...).  Quarantine is
  /// NOT a failure -- it completes the job degraded.
  std::size_t job_retries = 2;
  /// Initial job retry backoff; doubles per failure, capped at 5 s, and
  /// interrupted promptly by cancellation.
  std::uint64_t job_backoff_ms = 100;
  /// Connections silent for longer are reaped (half-open peers included).
  std::uint64_t idle_timeout_ms = 30000;
  /// Send-buffer cap per connection (backpressure threshold).
  std::size_t send_buffer_cap = 256 * 1024;
  // Supervisor knobs forwarded to every job run.
  std::size_t worker_retries = 3;
  std::uint64_t worker_backoff_ms = 50;
  std::uint64_t heartbeat_timeout_ms = 30000;
  /// Fault spec forwarded verbatim to job workers (serve.* sites fire in
  /// the daemon itself via the process-global injector).
  std::string fault_spec;
  /// Cooperative shutdown flag (the CLI wires SIGTERM/SIGINT here).  A
  /// client kShutdown frame triggers the same drain.
  const std::atomic<bool>* cancel = nullptr;
  std::ostream* log = nullptr;
};

/// Daemon counters, for the shutdown report and tests.
struct ServerStats {
  std::size_t connections_accepted = 0;
  std::size_t connections_dropped = 0;  ///< protocol errors + I/O failures
  std::size_t frames_rejected = 0;      ///< poisoned decoders
  std::size_t idle_reaped = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_failed = 0;
  std::size_t jobs_degraded = 0;
  std::size_t job_retries = 0;
  std::size_t events_streamed = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the endpoint and loads the queue file.  Separate from run() so
  /// an embedding test can learn bound_port() before clients connect.
  /// Throws std::runtime_error when the endpoint cannot be bound.
  void start();

  /// Serves until cancellation (flag or client kShutdown), then drains.
  /// Returns the number of jobs still pending (queued or interrupted) --
  /// 0 means the daemon retired everything it accepted.
  std::size_t run();

  /// TCP port actually bound (after start(); 0 for Unix sockets).
  std::uint16_t bound_port() const { return bound_port_; }
  const ServerStats& stats() const { return stats_; }

 private:
  struct Impl;
  ServerOptions opt_;
  std::uint16_t bound_port_ = 0;
  ServerStats stats_;
  Impl* impl_;  ///< last member: constructed against the settled options
};

}  // namespace xtest::serve
