#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "serve/frame.h"
#include "serve/queue.h"
#include "sim/campaign.h"
#include "sim/supervisor.h"
#include "spec/scenario.h"
#include "util/fault_injector.h"
#include "util/net.h"
#include "util/retry.h"
#include "util/subprocess.h"

namespace xtest::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Verdict characters per kChunk event.  Part of the replay contract: a
/// restarted daemon re-synthesizes a finished job's event stream with the
/// SAME sequence numbering only because this is a constant.
constexpr std::size_t kChunkChars = 512;

struct Event {
  std::uint32_t seq = 0;
  EventKind kind = EventKind::kProgress;
  std::string text;
};

/// Per-job durable event history plus the live transient progress counter.
struct JobStream {
  std::vector<Event> events;  ///< durable, seq = index + 1
  std::size_t progress = 0;   ///< total worker heartbeats so far
};

/// What one connection still owes about one job.
struct Subscription {
  std::uint32_t next = 1;       ///< first durable event seq not yet sent
  std::size_t progress_sent = 0;
};

struct Conn {
  int fd = -1;
  FrameDecoder dec;
  std::string outbuf;
  std::map<std::uint64_t, Subscription> subs;
  /// Submit-seq -> cached encoded kSubmitAck, so a retransmitted Submit
  /// (ack lost, client resent) is answered without enqueueing twice.
  std::map<std::uint32_t, std::string> submit_acks;
  Clock::time_point last_activity = Clock::now();
  bool dead = false;
};

std::string event_payload(std::uint64_t job, std::uint32_t seq, EventKind kind,
                          const std::string& text) {
  std::string p;
  put_u64(p, job);
  put_u32(p, seq);
  p.push_back(char(static_cast<std::uint8_t>(kind)));
  p += text;
  return p;
}

}  // namespace

struct Server::Impl {
  explicit Impl(const ServerOptions& opt, ServerStats* stats)
      : opt(opt), stats(stats), queue(opt.queue_path) {}

  const ServerOptions& opt;
  ServerStats* stats;

  int listen_fd = -1;
  util::Pipe wake;  ///< runner -> poll loop
  std::vector<std::unique_ptr<Conn>> conns;

  // Shared between the poll loop and the runner thread.
  std::mutex mu;
  std::condition_variable cv;
  JobQueue queue;
  std::map<std::uint64_t, JobStream> streams;
  bool runner_stop = false;  ///< under mu
  std::atomic<bool> run_cancel{false};  ///< cancels the in-flight supervisor
  std::atomic<bool> runner_done{false};
  std::thread runner;

  bool shutdown_requested = false;  ///< poll-loop only (client kShutdown)
  bool draining = false;

  // --- small helpers -------------------------------------------------------

  void logln(const std::string& line) {
    if (opt.log != nullptr) *opt.log << "serve: " << line << '\n';
  }

  bool cancelled() const {
    return (opt.cancel != nullptr &&
            opt.cancel->load(std::memory_order_relaxed)) ||
           shutdown_requested;
  }

  void wake_poll() {
    const char b = '!';
    // Nonblocking; a full pipe already means a wakeup is pending.
    (void)util::retry_eintr([&] { return ::write(wake.write_fd, &b, 1); });
  }

  std::string job_checkpoint_base(std::uint64_t id) const {
    if (!opt.queue_path.empty())
      return opt.queue_path + ".job" + std::to_string(id) + ".ckpt";
    return (std::filesystem::temp_directory_path() /
            ("xtest_serve_" + std::to_string(static_cast<long>(::getpid())) +
             "_job" + std::to_string(id) + ".ckpt"))
        .string();
  }

  void persist_quietly() {
    try {
      queue.persist();
    } catch (const std::exception& e) {
      // Losing durability must not kill the daemon mid-drain; the queue
      // state is still correct in memory and the next persist retries.
      logln(std::string("warning: queue persist failed: ") + e.what());
    }
  }

  // --- job event posting (runner thread, under mu) -------------------------

  /// Appends the durable completion events for a finished job.  Also used
  /// by the poll thread to lazily rebuild the stream of a job that
  /// finished in a previous daemon incarnation -- the constant chunking
  /// makes the regenerated sequence numbers identical.
  void post_completion_events_locked(const Job& j) {
    JobStream& st = streams[j.id];
    for (std::size_t off = 0; off < j.verdicts.size(); off += kChunkChars) {
      Event e;
      e.seq = static_cast<std::uint32_t>(st.events.size() + 1);
      e.kind = EventKind::kChunk;
      e.text = std::to_string(off) + ' ' +
               j.verdicts.substr(off, kChunkChars);
      st.events.push_back(std::move(e));
    }
    Event done;
    done.seq = static_cast<std::uint32_t>(st.events.size() + 1);
    done.kind = EventKind::kDone;
    done.text = std::to_string(j.exit_code) + ' ' + (j.degraded ? "1" : "0") +
                ' ' + std::to_string(j.verdicts.size()) + '\n' +
                (j.state == JobState::kFailed ? j.error : j.stats_json);
    st.events.push_back(std::move(done));
  }

  // --- runner thread -------------------------------------------------------

  void runner_loop() {
    for (;;) {
      Job job_copy;
      {
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
          if (runner_stop) {
            runner_done.store(true);
            wake_poll();
            return;
          }
          Job* j = queue.next_queued();
          if (j != nullptr) {
            j->state = JobState::kRunning;
            ++j->attempts;
            job_copy = *j;
            break;
          }
          cv.wait_for(lk, std::chrono::milliseconds(50));
        }
        persist_quietly();
      }
      run_one(job_copy);
    }
  }

  void run_one(const Job& job) {
    try {
      const sim::SupervisorResult r = run_supervised(job);
      std::string verdicts;
      verdicts.reserve(r.verdicts.size());
      for (const sim::Verdict v : r.verdicts) verdicts.push_back(sim::to_char(v));
      {
        std::lock_guard<std::mutex> lk(mu);
        Job* j = queue.find(job.id);
        if (j == nullptr) return;
        j->state = JobState::kDone;
        j->verdicts = std::move(verdicts);
        j->stats_json = r.stats.json("campaign");
        j->degraded = r.degraded();
        j->exit_code = r.degraded() ? 6 : 0;
        persist_quietly();
        post_completion_events_locked(*j);
        ++stats->jobs_completed;
        if (j->degraded) ++stats->jobs_degraded;
      }
      wake_poll();
      cleanup_job_files(job, /*keep_checkpoints=*/false);
    } catch (const sim::CampaignInterrupted&) {
      // Drain: the workers flushed their checkpoints; hand the job back.
      std::lock_guard<std::mutex> lk(mu);
      Job* j = queue.find(job.id);
      if (j != nullptr && j->state == JobState::kRunning)
        j->state = JobState::kQueued;
      persist_quietly();
      cleanup_job_files(job, /*keep_checkpoints=*/true);
    } catch (const std::exception& e) {
      bool retry = false;
      {
        std::lock_guard<std::mutex> lk(mu);
        Job* j = queue.find(job.id);
        if (j == nullptr) return;
        if (j->attempts <= opt.job_retries) {
          j->state = JobState::kQueued;
          retry = true;
          ++stats->job_retries;
          logln("job " + std::to_string(job.id) + " attempt " +
                std::to_string(j->attempts) + " failed (" + e.what() +
                "), retrying");
        } else {
          j->state = JobState::kFailed;
          j->exit_code = 4;
          j->error = e.what();
          post_completion_events_locked(*j);
          ++stats->jobs_failed;
          logln("job " + std::to_string(job.id) + " failed permanently: " +
                e.what());
        }
        persist_quietly();
      }
      wake_poll();
      cleanup_job_files(job, /*keep_checkpoints=*/retry);
      if (retry) backoff_wait(job.attempts);
    }
  }

  /// Exponential job-level backoff, interrupted promptly by cancellation.
  void backoff_wait(std::size_t attempt) {
    std::uint64_t ms = opt.job_backoff_ms;
    for (std::size_t i = 1; i < attempt; ++i) ms = std::min<std::uint64_t>(ms * 2, 5000);
    const Clock::time_point until = Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < until) {
      if (run_cancel.load(std::memory_order_relaxed)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  sim::SupervisorResult run_supervised(const Job& job) {
    spec::ScenarioSpec s = spec::parse_scenario(job.scenario);
    s.validate();
    // Every served job runs crash-isolated even when the scenario did not
    // ask for workers: the daemon must survive anything a campaign does.
    if (s.workers == 0) s.workers = 2;

    const auto lib = s.make_library();
    const auto sessions = s.make_sessions();

    sim::SupervisorJob sup_job;
    const char* worker_bin = std::getenv("XTEST_WORKER_BINARY");
    sup_job.binary = worker_bin != nullptr && *worker_bin != '\0'
                         ? worker_bin
                         : util::current_executable();
    if (sup_job.binary.empty())
      throw std::runtime_error("serve: cannot resolve worker binary");
    sup_job.defect_count = lib.size();
    for (std::size_t i = 0; i < sessions.size(); ++i)
      if (!sessions[i].program.tests.empty())
        sup_job.sections.push_back("session" + std::to_string(i));
    sup_job.checkpoint_key = sim::default_checkpoint_key(s.bus, lib);
    sup_job.checkpoint_base = job_checkpoint_base(job.id);
    sup_job.fault_spec = opt.fault_spec;

    spec::ScenarioSpec worker_spec = s;
    worker_spec.workers = 0;
    sup_job.scenario_path = sup_job.checkpoint_base + ".job.scn";
    {
      std::ofstream out(sup_job.scenario_path);
      if (!out)
        throw std::runtime_error("serve: cannot write " + sup_job.scenario_path);
      out << spec::serialize_scenario(worker_spec);
    }

    sim::SupervisorOptions sup;
    sup.workers = s.workers;
    sup.worker_retries = opt.worker_retries;
    sup.worker_backoff_ms = opt.worker_backoff_ms;
    sup.heartbeat_timeout_ms = opt.heartbeat_timeout_ms;
    sup.cancel = &run_cancel;
    sup.log = opt.log;
    const std::uint64_t id = job.id;
    sup.on_progress = [this, id](std::size_t beats) {
      {
        std::lock_guard<std::mutex> lk(mu);
        streams[id].progress += beats;
      }
      wake_poll();
    };
    return sim::Supervisor(sup_job, sup).run();
  }

  void cleanup_job_files(const Job& job, bool keep_checkpoints) {
    const std::string base = job_checkpoint_base(job.id);
    std::remove((base + ".job.scn").c_str());
    if (keep_checkpoints) return;
    // Shard count is bounded by what any scenario could have asked for;
    // sweep a generous range so a retried-with-different-workers job
    // leaves nothing behind.
    for (std::size_t k = 0; k < 64; ++k)
      std::remove(sim::Supervisor::shard_checkpoint_path(base, k).c_str());
  }

  // --- poll loop -----------------------------------------------------------

  void append_frame(Conn& c, const Frame& f) {
    c.outbuf += encode_frame(f);
  }

  void drop_conn(Conn& c, const char* why) {
    if (c.dead) return;
    c.dead = true;
    ++stats->connections_dropped;
    logln(std::string("dropping connection: ") + why);
  }

  void handle_frame(Conn& c, Frame&& f) {
    switch (f.type) {
      case FrameType::kHello: {
        Frame r;
        r.type = FrameType::kHelloAck;
        r.seq = f.seq;
        r.payload = "xtest-serve 1";
        append_frame(c, r);
        break;
      }
      case FrameType::kSubmit:
        handle_submit(c, f);
        break;
      case FrameType::kResume:
        handle_resume(c, f);
        break;
      case FrameType::kAck:
        break;  // activity refresh happened at read time
      case FrameType::kPing: {
        Frame r;
        r.type = FrameType::kPong;
        r.seq = f.seq;
        append_frame(c, r);
        break;
      }
      case FrameType::kStatus: {
        Frame r;
        r.type = FrameType::kStatusReply;
        r.seq = f.seq;
        r.payload = render_status();
        append_frame(c, r);
        break;
      }
      case FrameType::kShutdown:
        logln("shutdown requested by client");
        shutdown_requested = true;
        break;
      default:
        // Server-to-client types arriving here are harmless noise from a
        // confused-but-well-framed peer; ignore rather than escalate.
        break;
    }
  }

  void send_error(Conn& c, std::uint32_t seq, const std::string& text) {
    Frame e;
    e.type = FrameType::kError;
    e.seq = seq;
    e.payload = text;
    append_frame(c, e);
  }

  void handle_submit(Conn& c, const Frame& f) {
    if (f.seq != 0) {
      const auto it = c.submit_acks.find(f.seq);
      if (it != c.submit_acks.end()) {
        // Retransmit of a submit we already accepted: replay the ack.
        c.outbuf += it->second;
        return;
      }
    }
    if (f.payload.empty()) {
      send_error(c, f.seq, "submit: empty payload");
      return;
    }
    const int priority = static_cast<std::uint8_t>(f.payload[0]);
    const std::string scenario = f.payload.substr(1);
    try {
      spec::parse_scenario(scenario).validate();
    } catch (const std::exception& e) {
      send_error(c, f.seq, std::string("submit: ") + e.what());
      return;
    }
    std::uint64_t id = 0;
    try {
      std::lock_guard<std::mutex> lk(mu);
      id = queue.enqueue(scenario, priority);
    } catch (const std::exception& e) {
      // serve.enqueue / disk failure: the job was rolled back, tell the
      // client so it can retry against a healthier daemon.
      send_error(c, f.seq, std::string("submit: enqueue failed: ") + e.what());
      return;
    }
    cv.notify_all();
    Frame ack;
    ack.type = FrameType::kSubmitAck;
    put_u32(ack.payload, f.seq);
    put_u64(ack.payload, id);
    const std::string encoded = encode_frame(ack);
    if (f.seq != 0) c.submit_acks[f.seq] = encoded;
    c.outbuf += encoded;
    // The submitter implicitly follows its own job.
    c.subs.emplace(id, Subscription{});
    logln("job " + std::to_string(id) + " queued (priority " +
          std::to_string(priority) + ")");
  }

  void handle_resume(Conn& c, const Frame& f) {
    std::size_t pos = 0;
    std::uint64_t id = 0;
    std::uint32_t last = 0;
    if (!get_u64(f.payload, pos, id) || !get_u32(f.payload, pos, last)) {
      send_error(c, f.seq, "resume: short payload");
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      Job* j = queue.find(id);
      if (j == nullptr) {
        send_error(c, f.seq, "resume: unknown job " + std::to_string(id));
        return;
      }
      // A job that finished in a previous daemon incarnation has no live
      // stream yet; rebuild it so replay works across restarts.
      if ((j->state == JobState::kDone || j->state == JobState::kFailed) &&
          streams[id].events.empty())
        post_completion_events_locked(*j);
    }
    Subscription sub;
    sub.next = last + 1;
    c.subs[id] = sub;
  }

  std::string render_status() {
    std::ostringstream os;
    std::lock_guard<std::mutex> lk(mu);
    for (const Job& j : queue.jobs())
      os << "job " << j.id << " prio=" << j.priority << " state="
         << to_string(j.state) << " attempts=" << j.attempts << " exit="
         << j.exit_code << " verdicts=" << j.verdicts.size() << '\n';
    return os.str();
  }

  /// Pulls pending durable events (and at most one fresh progress tick)
  /// into every connection's bounded send buffer.  This is the
  /// backpressure point: a laggard whose buffer is full simply stops
  /// consuming history here and resumes when its buffer drains.
  void fill_send_buffers() {
    std::lock_guard<std::mutex> lk(mu);
    for (auto& cp : conns) {
      Conn& c = *cp;
      if (c.dead) continue;
      for (auto& [id, sub] : c.subs) {
        const auto it = streams.find(id);
        if (it == streams.end()) continue;
        JobStream& st = it->second;
        while (sub.next <= st.events.size() &&
               c.outbuf.size() < opt.send_buffer_cap) {
          const Event& e = st.events[sub.next - 1];
          Frame f;
          f.type = FrameType::kEvent;
          f.payload = event_payload(id, e.seq, e.kind, e.text);
          append_frame(c, f);
          ++sub.next;
          ++stats->events_streamed;
        }
        if (sub.progress_sent != st.progress &&
            c.outbuf.size() < opt.send_buffer_cap &&
            sub.next > st.events.size()) {
          Frame f;
          f.type = FrameType::kEvent;
          f.payload = event_payload(id, 0, EventKind::kProgress,
                                    std::to_string(st.progress));
          append_frame(c, f);
          sub.progress_sent = st.progress;
        }
      }
    }
  }

  void read_conn(Conn& c) {
    util::FaultInjector& inj = util::FaultInjector::global();
    char buf[4096];
    for (;;) {
      if (inj.fire("serve.read")) {
        drop_conn(c, "injected read fault");
        return;
      }
      const ssize_t n =
          util::retry_eintr([&] { return ::read(c.fd, buf, sizeof buf); });
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        drop_conn(c, "read error");
        return;
      }
      if (n == 0) {
        drop_conn(c, "peer closed");
        return;
      }
      c.last_activity = Clock::now();
      if (!c.dec.feed(buf, static_cast<std::size_t>(n))) {
        // Protocol violation: reject the stream, never the process.
        ++stats->frames_rejected;
        send_error(c, 0, std::string("protocol error: ") +
                             to_string(c.dec.error()));
        flush_conn(c);  // best effort before the drop
        drop_conn(c, to_string(c.dec.error()));
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) break;
    }
    while (auto f = c.dec.next()) handle_frame(c, std::move(*f));
  }

  void flush_conn(Conn& c) {
    if (c.dead || c.outbuf.empty()) return;
    util::FaultInjector& inj = util::FaultInjector::global();
    if (inj.fire("serve.write")) {
      drop_conn(c, "injected write fault");
      return;
    }
    // MSG_NOSIGNAL: a peer that vanished mid-stream must surface as EPIPE
    // (drop this conn), never as a process-killing SIGPIPE.
    const ssize_t n = util::retry_eintr([&] {
      return ::send(c.fd, c.outbuf.data(), c.outbuf.size(), MSG_NOSIGNAL);
    });
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      drop_conn(c, "write error");
      return;
    }
    c.outbuf.erase(0, static_cast<std::size_t>(n));
    c.last_activity = Clock::now();
  }

  void accept_pending() {
    util::FaultInjector& inj = util::FaultInjector::global();
    for (;;) {
      const int fd = util::accept_connection(listen_fd);
      if (fd < 0) return;
      ++stats->connections_accepted;
      if (inj.fire("serve.accept")) {
        ::close(fd);
        ++stats->connections_dropped;
        continue;
      }
      util::set_nonblocking(fd);
      auto c = std::make_unique<Conn>();
      c->fd = fd;
      conns.push_back(std::move(c));
    }
  }

  void reap_idle() {
    const Clock::time_point now = Clock::now();
    for (auto& cp : conns) {
      if (cp->dead) continue;
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now - cp->last_activity)
                            .count();
      if (idle >= 0 &&
          static_cast<std::uint64_t>(idle) > opt.idle_timeout_ms) {
        ++stats->idle_reaped;
        drop_conn(*cp, "idle deadline");
      }
    }
  }

  void close_dead() {
    for (auto& cp : conns)
      if (cp->dead && cp->fd >= 0) util::close_fd(cp->fd);
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::unique_ptr<Conn>& c) {
                                 return c->dead;
                               }),
                conns.end());
  }

  void begin_drain() {
    draining = true;
    logln("draining: closing listener, cancelling running job");
    util::close_fd(listen_fd);
    run_cancel.store(true);
    {
      std::lock_guard<std::mutex> lk(mu);
      runner_stop = true;
    }
    cv.notify_all();
    Frame bye;
    bye.type = FrameType::kShutdown;
    bye.payload = "draining";
    for (auto& cp : conns)
      if (!cp->dead) append_frame(*cp, bye);
  }
};

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)), impl_(new Impl(opt_, &stats_)) {}

Server::~Server() {
  if (impl_ != nullptr) {
    if (impl_->runner.joinable()) {
      {
        std::lock_guard<std::mutex> lk(impl_->mu);
        impl_->runner_stop = true;
      }
      impl_->run_cancel.store(true);
      impl_->cv.notify_all();
      impl_->runner.join();
    }
    util::close_fd(impl_->listen_fd);
    util::close_fd(impl_->wake.read_fd);
    util::close_fd(impl_->wake.write_fd);
    for (auto& c : impl_->conns) util::close_fd(c->fd);
    delete impl_;
  }
}

void Server::start() {
  if (!opt_.socket_path.empty()) {
    impl_->listen_fd = util::listen_unix(opt_.socket_path);
  } else {
    impl_->listen_fd = util::listen_tcp(opt_.tcp_port, &bound_port_);
  }
  util::set_nonblocking(impl_->listen_fd);
  impl_->wake = util::make_pipe();
  util::set_nonblocking(impl_->wake.read_fd);
  util::set_nonblocking(impl_->wake.write_fd);
  const std::size_t recovered = impl_->queue.load();
  if (recovered > 0)
    impl_->logln("recovered " + std::to_string(recovered) +
                 " job(s) from " + opt_.queue_path +
                 (impl_->queue.salvage_dropped() > 0
                      ? " (" + std::to_string(impl_->queue.salvage_dropped()) +
                            " torn record(s) dropped)"
                      : ""));
  impl_->runner = std::thread([this] { impl_->runner_loop(); });
}

std::size_t Server::run() {
  Impl& im = *impl_;
  const Clock::time_point start = Clock::now();
  Clock::time_point drain_deadline{};
  for (;;) {
    if (!im.draining && im.cancelled()) {
      im.begin_drain();
      drain_deadline = Clock::now() + std::chrono::seconds(10);
    }
    if (im.draining) {
      bool flushed = true;
      for (const auto& c : im.conns)
        if (!c->dead && !c->outbuf.empty()) flushed = false;
      if ((im.runner_done.load() && flushed) || Clock::now() > drain_deadline)
        break;
    }

    std::vector<pollfd> fds;
    fds.reserve(im.conns.size() + 2);
    std::size_t listen_slot = SIZE_MAX, wake_slot = SIZE_MAX;
    if (im.listen_fd >= 0) {
      listen_slot = fds.size();
      fds.push_back({im.listen_fd, POLLIN, 0});
    }
    wake_slot = fds.size();
    fds.push_back({im.wake.read_fd, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    for (const auto& c : im.conns) {
      short ev = POLLIN;
      if (!c->outbuf.empty()) ev |= POLLOUT;
      fds.push_back({c->fd, ev, 0});
    }

    const int rc = util::retry_eintr(
        [&] { return ::poll(fds.data(), nfds_t(fds.size()), 100); });
    if (rc < 0) {
      im.logln(std::string("poll failed: ") + std::strerror(errno));
      break;
    }

    if (listen_slot != SIZE_MAX && (fds[listen_slot].revents & POLLIN) != 0)
      im.accept_pending();
    if ((fds[wake_slot].revents & POLLIN) != 0) {
      char buf[64];
      while (util::retry_eintr(
                 [&] { return ::read(im.wake.read_fd, buf, sizeof buf); }) > 0)
        ;
    }
    // accept_pending() above may have appended fresh conns that have no
    // pollfd entry this cycle; only walk the ones that were polled.
    const std::size_t polled_conns = fds.size() - conn_base;
    for (std::size_t i = 0; i < polled_conns; ++i) {
      Conn& c = *im.conns[i];
      const short rev = fds[conn_base + i].revents;
      if ((rev & (POLLERR | POLLNVAL)) != 0) {
        im.drop_conn(c, "poll error");
        continue;
      }
      if ((rev & POLLIN) != 0) im.read_conn(c);
      // POLLHUP can accompany final readable bytes; read_conn above saw
      // EOF if the peer is truly gone.
      if (!c.dead && (rev & POLLOUT) != 0) im.flush_conn(c);
    }

    im.fill_send_buffers();
    // New frames queued by handle_frame/fill are flushed opportunistically
    // so a responsive client never waits a poll cycle for its ack.
    for (auto& c : im.conns)
      if (!c->dead && !c->outbuf.empty()) im.flush_conn(*c);
    if (!im.draining) im.reap_idle();
    im.close_dead();
  }

  // Final teardown: runner joined by the caller via destructor or here.
  {
    std::lock_guard<std::mutex> lk(im.mu);
    im.runner_stop = true;
  }
  im.run_cancel.store(true);
  im.cv.notify_all();
  if (im.runner.joinable()) im.runner.join();
  {
    std::lock_guard<std::mutex> lk(im.mu);
    im.persist_quietly();
  }
  for (auto& c : im.conns) {
    im.flush_conn(*c);
    util::close_fd(c->fd);
  }
  im.conns.clear();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::lock_guard<std::mutex> lk(im.mu);
  im.logln("drained (up " + std::to_string(secs) + "s); " +
           std::to_string(im.queue.pending()) + " job(s) pending");
  return im.queue.pending();
}

}  // namespace xtest::serve
