// Priority job queue with crash-durable disk persistence.
//
// A job is one campaign described by a spec::ScenarioSpec wire payload
// (the same `key = value` text `xtest scenarios --dump` emits).  The queue
// orders by (priority desc, id asc) -- FIFO within a priority band -- and
// survives any daemon death: every mutation rewrites the queue file
// atomically (write-tmp, fsync, rename -- the checkpoint discipline) with
// a CRC-32 trailer per record, so a restarted daemon reloads exactly the
// accepted jobs.  A job found `running` on load was interrupted mid-run
// and goes back to `queued`; its campaign resumes from its own shard
// checkpoints, so no completed verdict is ever recomputed.  Completed
// jobs persist WITH their verdict string and stats line: a client that
// reconnects after a daemon restart can still fetch the result of a job
// that finished in a previous incarnation.
//
// Load is salvage-tolerant like the checkpoint loader: a torn tail (the
// daemon died mid-rename is impossible, but a corrupt disk is not) keeps
// the longest valid prefix of records instead of refusing to start.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xtest::serve {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
};

const char* to_string(JobState s);

struct Job {
  std::uint64_t id = 0;
  int priority = 5;  ///< 0 (idle) .. 9 (urgent)
  JobState state = JobState::kQueued;
  std::string scenario;  ///< ScenarioSpec text (the wire payload)

  // Filled when the job completes (kDone / kFailed).
  std::string verdicts;    ///< one to_char per defect (U D T E)
  std::string stats_json;  ///< CampaignStats::json line ("" until done)
  bool degraded = false;   ///< a worker shard was quarantined (exit-6 land)
  int exit_code = 0;       ///< in-band CLI exit semantics: 0, 4, or 6
  std::string error;       ///< last failure message (kFailed)
  std::size_t attempts = 0;  ///< job-level run attempts consumed
};

class JobQueue {
 public:
  /// `path` is the persistence file; empty = in-memory only (tests).
  explicit JobQueue(std::string path);

  /// Loads the queue file if it exists (salvage-tolerant); jobs that were
  /// `running` when the previous daemon died become `queued` again.
  /// Returns the number of records recovered.
  std::size_t load();

  /// Accepts a job and persists.  Returns the assigned id.
  std::uint64_t enqueue(std::string scenario, int priority);

  /// Highest-priority queued job (FIFO within a priority), or nullptr.
  Job* next_queued();

  Job* find(std::uint64_t id);

  /// Atomic rewrite of the queue file (no-op when path is empty).  Called
  /// by every mutator; public so the server can persist after editing a
  /// job in place.  Throws std::runtime_error on I/O failure.
  void persist();

  const std::vector<Job>& jobs() const { return jobs_; }
  /// Jobs still queued or running.
  std::size_t pending() const;
  /// Records dropped by the salvage loader (for counters/logs).
  std::size_t salvage_dropped() const { return salvage_dropped_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t next_id_ = 1;
  std::vector<Job> jobs_;
  std::size_t salvage_dropped_ = 0;
};

}  // namespace xtest::serve
