#include "serve/frame.h"

#include <cstring>

#include "util/crc32.h"

namespace xtest::serve {

namespace {

constexpr std::uint8_t kMaxFrameType =
    static_cast<std::uint8_t>(FrameType::kShutdown);

std::uint32_t load_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return std::uint32_t(b[0]) | std::uint32_t(b[1]) << 8 |
         std::uint32_t(b[2]) << 16 | std::uint32_t(b[3]) << 24;
}

}  // namespace

const char* to_string(FrameError e) {
  switch (e) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad magic";
    case FrameError::kBadVersion: return "unsupported version";
    case FrameError::kBadType: return "unknown frame type";
    case FrameError::kBadReserved: return "nonzero reserved bits";
    case FrameError::kOversize: return "oversized payload";
    case FrameError::kBadCrc: return "crc mismatch";
  }
  return "?";
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(char(v & 0xFF));
  out.push_back(char(v >> 8 & 0xFF));
  out.push_back(char(v >> 16 & 0xFF));
  out.push_back(char(v >> 24 & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, std::uint32_t(v & 0xFFFFFFFFu));
  put_u32(out, std::uint32_t(v >> 32));
}

bool get_u32(std::string_view in, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = load_u32(in.data() + pos);
  pos += 4;
  return true;
}

bool get_u64(std::string_view in, std::size_t& pos, std::uint64_t& v) {
  std::uint32_t lo = 0, hi = 0;
  if (!get_u32(in, pos, lo) || !get_u32(in, pos, hi)) return false;
  v = std::uint64_t(lo) | std::uint64_t(hi) << 32;
  return true;
}

std::string encode_frame(const Frame& frame) {
  std::string out;
  out.reserve(kHeaderSize + frame.payload.size() + kTrailerSize);
  out.append(kMagic, sizeof kMagic);
  out.push_back(char(kProtocolVersion));
  out.push_back(char(static_cast<std::uint8_t>(frame.type)));
  out.push_back('\0');
  out.push_back('\0');
  put_u32(out, frame.seq);
  put_u32(out, std::uint32_t(frame.payload.size()));
  out += frame.payload;
  put_u32(out, util::crc32(out.data(), out.size()));
  return out;
}

bool FrameDecoder::feed(const char* data, std::size_t n) {
  if (poisoned()) return false;
  buf_.append(data, n);
  parse();
  return !poisoned();
}

std::optional<Frame> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

void FrameDecoder::parse() {
  while (!poisoned() && buf_.size() >= kHeaderSize) {
    // Header sanity first, so a hostile length field is rejected before a
    // single payload byte is buffered on its behalf.
    if (std::memcmp(buf_.data(), kMagic, sizeof kMagic) != 0) {
      error_ = FrameError::kBadMagic;
      return;
    }
    const auto version = std::uint8_t(buf_[4]);
    const auto type = std::uint8_t(buf_[5]);
    if (version != kProtocolVersion) {
      error_ = FrameError::kBadVersion;
      return;
    }
    if (type == 0 || type > kMaxFrameType) {
      error_ = FrameError::kBadType;
      return;
    }
    if (buf_[6] != '\0' || buf_[7] != '\0') {
      error_ = FrameError::kBadReserved;
      return;
    }
    const std::uint32_t seq = load_u32(buf_.data() + 8);
    const std::uint32_t len = load_u32(buf_.data() + 12);
    if (len > max_payload_) {
      error_ = FrameError::kOversize;
      return;
    }
    const std::size_t total = kHeaderSize + std::size_t(len) + kTrailerSize;
    if (buf_.size() < total) return;  // truncated so far: wait for more
    const std::uint32_t want = load_u32(buf_.data() + kHeaderSize + len);
    const std::uint32_t got = util::crc32(buf_.data(), kHeaderSize + len);
    if (want != got) {
      error_ = FrameError::kBadCrc;
      return;
    }
    Frame f;
    f.type = static_cast<FrameType>(type);
    f.seq = seq;
    f.payload.assign(buf_, kHeaderSize, len);
    ready_.push_back(std::move(f));
    ++frames_decoded_;
    buf_.erase(0, total);
  }
}

}  // namespace xtest::serve
