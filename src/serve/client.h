// Client side of the campaign service protocol.
//
// A Client owns one connection (re-established on demand) and implements
// the delivery discipline the daemon expects:
//   * submit() retransmits the kSubmit frame -- same sequence number --
//     until the kSubmitAck arrives, so a lost ack never double-enqueues
//     (the daemon dedupes per-connection by submit seq) and a lost submit
//     never silently vanishes.  The ack implies the job is DURABLE: the
//     daemon persists before acking.
//   * wait() streams kEvent frames, acking durable ones, and survives any
//     connection loss -- client-side kill, daemon restart, injected
//     socket fault -- by reconnecting with backoff and sending kResume
//     with the last durable event sequence it saw; the daemon replays
//     from there.  Verdict chunks carry explicit offsets, so replayed
//     overlap is idempotent.
//
// Everything here is synchronous and single-threaded by design: the CLI
// and the chaos soak drive one Client per actor.

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>

#include "serve/frame.h"

namespace xtest::serve {

struct ClientOptions {
  /// Unix-domain socket path; when empty, connect to 127.0.0.1:tcp_port.
  std::string socket_path;
  std::uint16_t tcp_port = 0;
  /// Submit retransmit interval and attempt budget.
  std::uint64_t ack_timeout_ms = 1000;
  std::size_t submit_retries = 10;
  /// Reconnect backoff (doubles, capped at 2 s) and attempt budget; sized
  /// to ride out a daemon SIGKILL + restart.
  std::uint64_t reconnect_backoff_ms = 100;
  std::size_t reconnect_retries = 50;
  std::ostream* log = nullptr;
};

/// Terminal outcome of one job as seen by a client.
struct JobResult {
  std::uint64_t job = 0;
  std::string verdicts;    ///< UDTE chars, one per defect
  std::string stats_json;  ///< stats line ("" for failed jobs)
  int exit_code = 0;       ///< 0 ok, 4 failed, 6 degraded
  bool degraded = false;
  bool failed = false;     ///< the daemon gave up on the job
  std::string error;       ///< failure text when failed
  bool aborted = false;    ///< wait() was stopped by the observer callback
};

/// One event as surfaced to a wait() observer.
struct JobEvent {
  std::uint64_t job = 0;
  std::uint32_t seq = 0;  ///< 0 = transient progress
  EventKind kind = EventKind::kProgress;
  std::string text;
};

class Client {
 public:
  explicit Client(ClientOptions opt);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Submits a scenario (wire text) with retransmit-until-acked.  Returns
  /// the daemon-assigned job id; throws std::runtime_error when the
  /// daemon rejects the scenario or stays unreachable.
  std::uint64_t submit(const std::string& scenario_text, int priority = 5);

  /// Blocks until `job` completes, reconnect-and-resume on any failure.
  /// `observer` (optional) sees every event; returning false aborts the
  /// wait (JobResult::aborted) while leaving the job running server-side.
  JobResult wait(std::uint64_t job,
                 const std::function<bool(const JobEvent&)>& observer = {});

  /// One-shot queries.
  std::string status();
  void request_shutdown();

  /// Drops the connection WITHOUT any protocol goodbye -- the chaos soak
  /// uses this to model a client killed mid-stream.
  void kill_connection();

 private:
  bool ensure_connected();
  void disconnect();
  bool send_frame(const Frame& f);
  /// Pumps the socket for up to `timeout_ms`; returns the next decoded
  /// frame or nullopt on timeout/connection loss (conn loss disconnects).
  std::optional<Frame> read_frame(std::uint64_t timeout_ms);
  bool reconnect_with_backoff();

  ClientOptions opt_;
  int fd_ = -1;
  FrameDecoder dec_;
  std::uint32_t next_seq_ = 1;
  /// Last durable event seq seen per job (the kResume cursor).
  std::map<std::uint64_t, std::uint32_t> last_seen_;
};

}  // namespace xtest::serve
