// Length-prefixed binary frame protocol for the campaign service.
//
// Every message between an xtest client and the serve daemon is one frame:
//
//   offset  size  field
//   0       4     magic "XTSV"
//   4       1     protocol version (1)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be 0
//   8       4     sequence number, little-endian (per sender, per
//                 connection, starting at 1; 0 = unsequenced)
//   12      4     payload length N, little-endian (<= max_payload)
//   16      N     payload
//   16+N    4     CRC-32 over bytes [0, 16+N), little-endian -- the same
//                 IEEE CRC-32 the checkpoint format uses (util/crc32.h)
//
// The decoder is incremental and hostile-input-proof: bytes arrive in any
// fragmentation, and the FIRST malformed thing -- wrong magic, unknown
// version or type, nonzero reserved bits, oversized length, CRC mismatch
// -- poisons the stream with a typed FrameError.  A poisoned decoder never
// resynchronizes: the server drops exactly that connection (never the
// process) and the client reconnects.  Truncation is not an error, just
// an incomplete frame waiting for more bytes; the connection deadline
// reaps peers that stall mid-frame (half-open connections).
//
// Ack/retransmit discipline rides on the seq field; see README.md
// ("Serve frame protocol") for the per-type payload layouts and the
// delivery contract.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace xtest::serve {

inline constexpr char kMagic[4] = {'X', 'T', 'S', 'V'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kTrailerSize = 4;
/// Default payload cap: a 1 MiB scenario or verdict chunk is already far
/// beyond anything the protocol emits; anything larger is a hostile or
/// corrupt length field and is rejected before buffering.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,       ///< client -> server: optional greeting (payload: name)
  kHelloAck = 2,    ///< server -> client: banner text
  kSubmit = 3,      ///< u8 priority + scenario text; acked by kSubmitAck
  kSubmitAck = 4,   ///< u32 echoed submit seq + u64 job id
  kEvent = 5,       ///< u64 job + u32 event seq (0 = transient) + u8 kind + text
  kAck = 6,         ///< u64 job + u32 event seq received through
  kResume = 7,      ///< u64 job + u32 last event seq seen (replay after)
  kError = 8,       ///< human-readable error text
  kPing = 9,        ///< liveness / idle-deadline refresh
  kPong = 10,       ///< reply to kPing
  kStatus = 11,     ///< request the job table
  kStatusReply = 12,///< job table text
  kShutdown = 13,   ///< server -> client: daemon is draining, reconnect later
};

/// Job-event kinds carried inside kEvent payloads.
enum class EventKind : std::uint8_t {
  kProgress = 1,  ///< transient (seq 0): "<completed heartbeats>"
  kChunk = 2,     ///< durable: "<offset> <verdict chars (UDTE)>"
  kDone = 3,      ///< durable: "<exit> <degraded> <verdict count>\n<stats json>"
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint32_t seq = 0;
  std::string payload;
};

/// What poisoned a decoder.  kNone means the stream is still healthy.
enum class FrameError : std::uint8_t {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadReserved,
  kOversize,
  kBadCrc,
};

const char* to_string(FrameError e);

/// Serializes one frame (header + payload + CRC trailer).
std::string encode_frame(const Frame& frame);

/// Incremental, allocation-bounded frame parser.  feed() bytes as they
/// arrive; next() yields completed frames in order.  The first protocol
/// violation latches error() and makes feed()/next() inert -- the caller
/// must drop the connection.  Never throws on any input.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_payload = kMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes; returns false once the stream is poisoned.
  bool feed(const char* data, std::size_t n);
  bool feed(std::string_view bytes) { return feed(bytes.data(), bytes.size()); }

  /// Next completed frame, or nullopt when more bytes are needed (or the
  /// stream is poisoned).
  std::optional<Frame> next();

  FrameError error() const { return error_; }
  bool poisoned() const { return error_ != FrameError::kNone; }
  std::size_t frames_decoded() const { return frames_decoded_; }
  /// Bytes buffered waiting for the rest of a frame (half-open peers hold
  /// this below header+max_payload+trailer by construction).
  std::size_t buffered() const { return buf_.size(); }

 private:
  void parse();

  std::uint32_t max_payload_;
  std::string buf_;
  std::deque<Frame> ready_;
  FrameError error_ = FrameError::kNone;
  std::size_t frames_decoded_ = 0;
};

// --- payload encoding helpers ---------------------------------------------
// Little-endian, bounds-checked; get_* return false instead of reading out
// of range so a short payload can never walk off the buffer.

void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
bool get_u32(std::string_view in, std::size_t& pos, std::uint32_t& v);
bool get_u64(std::string_view in, std::size_t& pos, std::uint64_t& v);

}  // namespace xtest::serve
