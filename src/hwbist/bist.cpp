#include "hwbist/bist.h"

#include <chrono>

namespace xtest::hwbist {

bool HardwareBist::pattern_fails(const xtalk::RcNetwork& net,
                                 const xtalk::CrosstalkErrorModel& model,
                                 const xtalk::MafFault& f) const {
  const xtalk::VectorPair pair = xtalk::ma_test(width_, f);
  return model.corrupts(net, pair);
}

bool HardwareBist::detects(const xtalk::RcNetwork& net,
                           const xtalk::CrosstalkErrorModel& model) const {
  for (const xtalk::MafFault& f : faults_)
    if (pattern_fails(net, model, f)) return true;
  return false;
}

std::vector<bool> HardwareBist::run_library(
    const xtalk::RcNetwork& nominal, const xtalk::CrosstalkErrorModel& model,
    const xtalk::DefectLibrary& library, const util::ParallelConfig& parallel,
    util::CampaignStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = library.size();
  std::vector<std::uint8_t> verdicts(n, 0);
  util::parallel_for_chunks(
      n, parallel, [&](std::size_t begin, std::size_t end, unsigned) {
        for (std::size_t i = begin; i < end; ++i)
          verdicts[i] = detects(library[i].apply(nominal), model) ? 1 : 0;
      });
  std::vector<bool> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = verdicts[i] != 0;
  if (stats != nullptr) {
    stats->threads = parallel.resolve(n);
    stats->defects_simulated += n;
    stats->wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return out;
}

}  // namespace xtest::hwbist
