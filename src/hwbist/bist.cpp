#include "hwbist/bist.h"

namespace xtest::hwbist {

bool HardwareBist::pattern_fails(const xtalk::RcNetwork& net,
                                 const xtalk::CrosstalkErrorModel& model,
                                 const xtalk::MafFault& f) const {
  const xtalk::VectorPair pair = xtalk::ma_test(width_, f);
  return model.corrupts(net, pair);
}

bool HardwareBist::detects(const xtalk::RcNetwork& net,
                           const xtalk::CrosstalkErrorModel& model) const {
  for (const xtalk::MafFault& f : faults_)
    if (pattern_fails(net, model, f)) return true;
  return false;
}

std::vector<bool> HardwareBist::run_library(
    const xtalk::RcNetwork& nominal, const xtalk::CrosstalkErrorModel& model,
    const xtalk::DefectLibrary& library) const {
  std::vector<bool> out;
  out.reserve(library.size());
  for (const xtalk::Defect& d : library.defects())
    out.push_back(detects(d.apply(nominal), model));
  return out;
}

}  // namespace xtest::hwbist
