#include "hwbist/bist.h"

#include <chrono>

namespace xtest::hwbist {

bool HardwareBist::pattern_fails(const xtalk::RcNetwork& net,
                                 const xtalk::CrosstalkErrorModel& model,
                                 const xtalk::MafFault& f) const {
  const xtalk::VectorPair pair = xtalk::ma_test(width_, f);
  return model.corrupts(net, pair);
}

bool HardwareBist::detects(const xtalk::RcNetwork& net,
                           const xtalk::CrosstalkErrorModel& model) const {
  for (const xtalk::MafFault& f : faults_)
    if (pattern_fails(net, model, f)) return true;
  return false;
}

std::vector<sim::Verdict> HardwareBist::run_library(
    const xtalk::RcNetwork& nominal, const xtalk::CrosstalkErrorModel& model,
    const xtalk::DefectLibrary& library, const util::ParallelConfig& parallel,
    util::CampaignStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = library.size();
  std::vector<sim::Verdict> out(n, sim::Verdict::kUndetected);
  const std::vector<util::ItemError> errors = util::parallel_for_items(
      n, parallel, [&](std::size_t i, unsigned) {
        out[i] = detects(library[i].apply(nominal), model)
                     ? sim::Verdict::kDetected
                     : sim::Verdict::kUndetected;
      });
  for (const util::ItemError& e : errors) {
    out[e.index] = sim::Verdict::kSimError;
    if (stats != nullptr)
      stats->error_log.push_back("defect " + std::to_string(e.index) + ": " +
                                 e.message);
  }
  if (stats != nullptr) {
    stats->threads = parallel.resolve(n);
    stats->defects_simulated += n;
    sim::tally_verdicts(out, *stats);
    stats->wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return out;
}

}  // namespace xtest::hwbist
