// Area-overhead model for the hardware-BIST baseline.
//
// The paper's motivation: "for small systems, the amount of relative area
// overhead may be unacceptable" while SBST has "no area or delay
// overhead".  This parametric gate-count model makes that comparison
// concrete.  Structural assumptions (documented, deliberately simple):
//
//   pattern generator per bus:
//     victim counter            ceil(log2 N) flip-flops
//     fault-type FSM            2 flip-flops
//     vector register           N flip-flops
//     victim decode + muxing    ~4 gates per wire
//   error detector per bus:
//     expected-vector XORs      N gates
//     OR reduction tree         N - 1 gates
//     sticky fail flag          1 flip-flop
//   controller (shared)         ~30 gates
//
// with a flip-flop costed at `gates_per_ff` NAND-equivalents.  SBST costs
// zero gates; its costs are memory footprint and tester time, reported by
// the generator instead.

#pragma once

#include <cmath>

namespace xtest::hwbist {

struct BistAreaModel {
  unsigned bus_width = 8;
  bool bidirectional = false;  ///< bidirectional buses need both-end logic
  double gates_per_ff = 6.0;

  double generator_gates() const {
    const double counter = std::ceil(std::log2(std::max(2u, bus_width)));
    const double ffs = counter + 2.0 + bus_width;
    return ffs * gates_per_ff + 4.0 * bus_width;
  }

  double detector_gates() const {
    return static_cast<double>(bus_width) + (bus_width - 1) + gates_per_ff;
  }

  double controller_gates() const { return 30.0; }

  double total_gates() const {
    const double ends = bidirectional ? 2.0 : 1.0;
    return ends * (generator_gates() + detector_gates()) +
           controller_gates();
  }

  /// Relative overhead against an SoC of `soc_gates` NAND-equivalents.
  double overhead_fraction(double soc_gates) const {
    return total_gates() / soc_gates;
  }
};

}  // namespace xtest::hwbist
