// Hardware-BIST baseline (Bai-Dey-Rajski, DAC 2000).
//
// The paper's Section 1 contrasts the proposed SBST method with a
// hardware built-in self-test scheme: dedicated on-chip pattern generators
// drive every MA vector pair directly onto the interconnect in a special
// test mode, and on-chip detectors compare the received second vector with
// its expected value.  This module models that scheme on the same RC
// network / error model so coverage, over-testing, and area overhead can
// be compared with SBST on equal footing.

#pragma once

#include <vector>

#include "sim/verdict.h"
#include "util/parallel.h"
#include "xtalk/defect.h"
#include "xtalk/error_model.h"
#include "xtalk/maf.h"
#include "xtalk/rc_network.h"

namespace xtest::hwbist {

class HardwareBist {
 public:
  /// `bidirectional` doubles the pattern set, as for a data bus.
  HardwareBist(unsigned width, bool bidirectional)
      : width_(width),
        faults_(xtalk::enumerate_mafs(width, bidirectional)) {}

  unsigned width() const { return width_; }
  const std::vector<xtalk::MafFault>& patterns() const { return faults_; }

  /// Whether applying fault `f`'s MA pair on `net` produces a receiver
  /// error (the detector flags the chip).
  bool pattern_fails(const xtalk::RcNetwork& net,
                     const xtalk::CrosstalkErrorModel& model,
                     const xtalk::MafFault& f) const;

  /// Whether any MA pattern fails -- the BIST verdict for one defect.
  bool detects(const xtalk::RcNetwork& net,
               const xtalk::CrosstalkErrorModel& model) const;

  /// BIST verdict over a whole library applied to `nominal`.  Defects fan
  /// out across workers (verdicts written by index: bitwise identical for
  /// every thread count); a defect whose evaluation throws is quarantined
  /// as kSimError instead of aborting the sweep; `stats` accumulates when
  /// non-null.  BIST has no timeout mechanism, so verdicts are only
  /// kDetected / kUndetected / kSimError.
  std::vector<sim::Verdict> run_library(
      const xtalk::RcNetwork& nominal,
      const xtalk::CrosstalkErrorModel& model,
      const xtalk::DefectLibrary& library,
      const util::ParallelConfig& parallel = {},
      util::CampaignStats* stats = nullptr) const;

 private:
  unsigned width_;
  std::vector<xtalk::MafFault> faults_;
};

}  // namespace xtest::hwbist
