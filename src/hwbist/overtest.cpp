#include "hwbist/overtest.h"

#include "sim/campaign.h"

namespace xtest::hwbist {

OverTestResult analyze_overtest(const soc::SystemConfig& system_config,
                                soc::BusKind bus,
                                const xtalk::DefectLibrary& library,
                                const sbst::GeneratorConfig& generator_config,
                                int max_sessions,
                                const util::ParallelConfig& parallel,
                                util::CampaignStats* stats) {
  const soc::System system(system_config);
  const bool bidirectional = bus == soc::BusKind::kData;
  const unsigned width =
      bus == soc::BusKind::kAddress ? cpu::kAddrBits : cpu::kDataBits;
  const HardwareBist bist(width, bidirectional);
  const xtalk::RcNetwork& nominal = bus == soc::BusKind::kAddress
                                        ? system.nominal_address_network()
                                        : system.nominal_data_network();
  const xtalk::CrosstalkErrorModel& model = bus == soc::BusKind::kAddress
                                                ? system.address_model()
                                                : system.data_model();
  const std::vector<sim::Verdict> by_bist =
      bist.run_library(nominal, model, library, parallel, stats);

  sbst::GeneratorConfig gen = generator_config;
  gen.include_address_bus = bus == soc::BusKind::kAddress;
  gen.include_data_bus = bus == soc::BusKind::kData;
  const std::vector<sbst::GenerationResult> sessions =
      sbst::TestProgramGenerator::generate_sessions(gen, max_sessions);
  const std::vector<sim::Verdict> by_sbst = sim::run_detection_sessions(
      system_config, sessions, bus, library, 16, parallel, stats);

  OverTestResult r;
  r.library_size = library.size();
  for (std::size_t i = 0; i < library.size(); ++i) {
    if (by_bist[i] == sim::Verdict::kSimError ||
        by_sbst[i] == sim::Verdict::kSimError) {
      ++r.sim_errors;
      continue;
    }
    const bool b = sim::is_detected(by_bist[i]);
    const bool f = sim::is_detected(by_sbst[i]);
    r.bist_detected += b;
    r.functional_detected += f;
    r.overtest_only += b && !f;
    r.functional_only += f && !b;
  }
  return r;
}

}  // namespace xtest::hwbist
