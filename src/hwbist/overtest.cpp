#include "hwbist/overtest.h"

#include "sim/campaign.h"

namespace xtest::hwbist {

OverTestResult analyze_overtest(const soc::SystemConfig& system_config,
                                soc::BusKind bus,
                                const xtalk::DefectLibrary& library,
                                const sbst::GeneratorConfig& generator_config,
                                int max_sessions,
                                const util::ParallelConfig& parallel,
                                util::CampaignStats* stats) {
  const soc::System system(system_config);
  const bool bidirectional = bus == soc::BusKind::kData;
  const unsigned width =
      bus == soc::BusKind::kAddress ? cpu::kAddrBits : cpu::kDataBits;
  const HardwareBist bist(width, bidirectional);
  const xtalk::RcNetwork& nominal = bus == soc::BusKind::kAddress
                                        ? system.nominal_address_network()
                                        : system.nominal_data_network();
  const xtalk::CrosstalkErrorModel& model = bus == soc::BusKind::kAddress
                                                ? system.address_model()
                                                : system.data_model();
  const std::vector<bool> by_bist =
      bist.run_library(nominal, model, library, parallel, stats);

  sbst::GeneratorConfig gen = generator_config;
  gen.include_address_bus = bus == soc::BusKind::kAddress;
  gen.include_data_bus = bus == soc::BusKind::kData;
  const std::vector<sbst::GenerationResult> sessions =
      sbst::TestProgramGenerator::generate_sessions(gen, max_sessions);
  const std::vector<bool> by_sbst = sim::run_detection_sessions(
      system_config, sessions, bus, library, 16, parallel, stats);

  OverTestResult r;
  r.library_size = library.size();
  for (std::size_t i = 0; i < library.size(); ++i) {
    r.bist_detected += by_bist[i];
    r.functional_detected += by_sbst[i];
    r.overtest_only += by_bist[i] && !by_sbst[i];
    r.functional_only += by_sbst[i] && !by_bist[i];
  }
  return r;
}

}  // namespace xtest::hwbist
