#include "hwbist/random_patterns.h"

#include <chrono>

namespace xtest::hwbist {

RandomPatternBist::RandomPatternBist(unsigned width,
                                     std::size_t pattern_count,
                                     std::uint64_t seed)
    : width_(width) {
  util::Rng rng(seed);
  patterns_.reserve(pattern_count);
  const std::uint64_t space = std::uint64_t{1} << width;
  for (std::size_t i = 0; i < pattern_count; ++i) {
    patterns_.push_back({util::BusWord(width, rng.below(space)),
                         util::BusWord(width, rng.below(space))});
  }
}

bool RandomPatternBist::detects(const xtalk::RcNetwork& net,
                                const xtalk::CrosstalkErrorModel& model) const {
  for (const auto& p : patterns_)
    if (model.corrupts(net, p)) return true;
  return false;
}

std::vector<sim::Verdict> RandomPatternBist::run_library(
    const xtalk::RcNetwork& nominal, const xtalk::CrosstalkErrorModel& model,
    const xtalk::DefectLibrary& library, const util::ParallelConfig& parallel,
    util::CampaignStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = library.size();
  std::vector<sim::Verdict> out(n, sim::Verdict::kUndetected);
  const std::vector<util::ItemError> errors = util::parallel_for_items(
      n, parallel, [&](std::size_t i, unsigned) {
        out[i] = detects(library[i].apply(nominal), model)
                     ? sim::Verdict::kDetected
                     : sim::Verdict::kUndetected;
      });
  for (const util::ItemError& e : errors) {
    out[e.index] = sim::Verdict::kSimError;
    if (stats != nullptr)
      stats->error_log.push_back("defect " + std::to_string(e.index) + ": " +
                                 e.message);
  }
  if (stats != nullptr) {
    stats->threads = parallel.resolve(n);
    stats->defects_simulated += n;
    sim::tally_verdicts(out, *stats);
    stats->wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  }
  return out;
}

}  // namespace xtest::hwbist
