#include "hwbist/random_patterns.h"

namespace xtest::hwbist {

RandomPatternBist::RandomPatternBist(unsigned width,
                                     std::size_t pattern_count,
                                     std::uint64_t seed)
    : width_(width) {
  util::Rng rng(seed);
  patterns_.reserve(pattern_count);
  const std::uint64_t space = std::uint64_t{1} << width;
  for (std::size_t i = 0; i < pattern_count; ++i) {
    patterns_.push_back({util::BusWord(width, rng.below(space)),
                         util::BusWord(width, rng.below(space))});
  }
}

bool RandomPatternBist::detects(const xtalk::RcNetwork& net,
                                const xtalk::CrosstalkErrorModel& model) const {
  for (const auto& p : patterns_)
    if (model.corrupts(net, p)) return true;
  return false;
}

std::vector<bool> RandomPatternBist::run_library(
    const xtalk::RcNetwork& nominal, const xtalk::CrosstalkErrorModel& model,
    const xtalk::DefectLibrary& library) const {
  std::vector<bool> out;
  out.reserve(library.size());
  for (const xtalk::Defect& d : library.defects())
    out.push_back(detects(d.apply(nominal), model));
  return out;
}

}  // namespace xtest::hwbist
