// Over-testing analysis: BIST vs software-based self-test.
//
// Hardware BIST applies every MA pair in a dedicated test mode, including
// pairs that can never occur in the normal operational mode of the system.
// The paper (Section 1): "crosstalk cases that cannot be excited in the
// normal operational mode do not affect the correct functionality of the
// system.  Thus, the rejection of a chip due to a failure response in
// these cases causes unnecessary yield loss."
//
// Here the functional-mode oracle is the multi-session SBST program set:
// a defect detectable by BIST but by no functionally-applicable test is an
// over-test rejection (yield loss on a functionally healthy chip).

#pragma once

#include <cstddef>
#include <vector>

#include "hwbist/bist.h"
#include "sbst/generator.h"
#include "soc/system.h"
#include "xtalk/defect.h"

namespace xtest::hwbist {

struct OverTestResult {
  std::size_t library_size = 0;
  std::size_t bist_detected = 0;
  std::size_t functional_detected = 0;
  /// Detected by BIST but functionally benign: over-tested chips.
  std::size_t overtest_only = 0;
  /// Detected functionally but missed by BIST (should be 0: BIST applies
  /// the complete MA set).
  std::size_t functional_only = 0;
  /// Defects quarantined as kSimError on either side; excluded from the
  /// over-test comparison (their behaviour is unknown).
  std::size_t sim_errors = 0;

  double overtest_fraction() const {
    return bist_detected == 0
               ? 0.0
               : static_cast<double>(overtest_only) /
                     static_cast<double>(bist_detected);
  }
};

/// Compares BIST and multi-session SBST detection over one bus's library.
/// `generator_config` controls the functional side (e.g. usable_limit
/// models a partially reachable address map, where over-testing appears).
/// Both sides fan defects out per `parallel`; `stats` accumulates when
/// non-null.
OverTestResult analyze_overtest(const soc::SystemConfig& system_config,
                                soc::BusKind bus,
                                const xtalk::DefectLibrary& library,
                                const sbst::GeneratorConfig& generator_config,
                                int max_sessions = 6,
                                const util::ParallelConfig& parallel = {},
                                util::CampaignStats* stats = nullptr);

}  // namespace xtest::hwbist
