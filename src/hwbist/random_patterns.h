// Random-pattern BIST baseline.
//
// Classic hardware BIST generators (LFSR-based) drive pseudo-random vector
// pairs rather than the deterministic MA set.  This baseline quantifies
// what the MAF theory predicts: random pairs rarely assemble the
// worst-case aggressor alignment, so their crosstalk coverage trails the
// 4N MA tests badly until the pattern count gets very large.  Used by the
// random-baseline bench as the second comparison axis next to E7.

#pragma once

#include <vector>

#include "sim/verdict.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "xtalk/defect.h"
#include "xtalk/error_model.h"
#include "xtalk/maf.h"
#include "xtalk/rc_network.h"

namespace xtest::hwbist {

class RandomPatternBist {
 public:
  RandomPatternBist(unsigned width, std::size_t pattern_count,
                    std::uint64_t seed);

  const std::vector<xtalk::VectorPair>& patterns() const { return patterns_; }

  /// True when any random pair produces a receiver error on `net`.
  bool detects(const xtalk::RcNetwork& net,
               const xtalk::CrosstalkErrorModel& model) const;

  /// Verdicts over a library applied to `nominal`.  Defects fan out
  /// across workers, verdicts written by index (bitwise identical for
  /// every thread count); throwing defects are quarantined as kSimError;
  /// `stats` accumulates when non-null.
  std::vector<sim::Verdict> run_library(
      const xtalk::RcNetwork& nominal,
      const xtalk::CrosstalkErrorModel& model,
      const xtalk::DefectLibrary& library,
      const util::ParallelConfig& parallel = {},
      util::CampaignStats* stats = nullptr) const;

 private:
  unsigned width_;
  std::vector<xtalk::VectorPair> patterns_;
};

}  // namespace xtest::hwbist
