// E6 -- Section 4.3's scaling claim:
//
//   "For a CPU-memory system with N interconnects, the number of MA faults
//    is 4N.  Thus, the size of the test program is proportional to N.
//    This corresponds to the size of the memory required for storing the
//    test program, the tester time ... as well as the test application
//    time."
//
// The bus widths of the testbed are architectural (12/8), so the sweep
// parameter is the number of interconnects *under test*: lines 1..k of
// each bus.  Program bytes, response cells and executed cycles must grow
// linearly in the number of MA tests.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sbst/generator.h"
#include "sim/verify.h"
#include "util/table.h"

using namespace xtest;

namespace {

void print_scaling(soc::BusKind bus) {
  const unsigned width =
      bus == soc::BusKind::kAddress ? cpu::kAddrBits : cpu::kDataBits;
  util::Table t({"lines under test", "MA tests placed", "program bytes",
                 "cycles", "bytes per test"});
  for (unsigned k = 2; k <= width; k += 2) {
    std::vector<xtalk::MafFault> faults;
    for (const auto& f :
         xtalk::enumerate_mafs(width, bus == soc::BusKind::kData))
      if (f.victim < k) faults.push_back(f);
    sbst::GeneratorConfig cfg;
    cfg.include_address_bus = bus == soc::BusKind::kAddress;
    cfg.include_data_bus = bus == soc::BusKind::kData;
    if (bus == soc::BusKind::kAddress)
      cfg.address_faults = faults;
    else
      cfg.data_faults = faults;

    const auto sessions = sbst::TestProgramGenerator::generate_sessions(cfg);
    std::size_t tests = 0, bytes = 0;
    std::uint64_t cycles = 0;
    for (const auto& s : sessions) {
      if (s.program.tests.empty()) continue;
      tests += s.program.tests.size();
      bytes += s.program.program_bytes();
      cycles += sim::verify_program(s.program).gold.cycles;
    }
    t.add_row({std::to_string(k), std::to_string(tests),
               std::to_string(bytes), std::to_string(cycles),
               tests ? util::Table::num(static_cast<double>(bytes) /
                                        static_cast<double>(tests), 1)
                     : "-"});
  }
  std::printf("\n%s bus:\n%s",
              bus == soc::BusKind::kAddress ? "address" : "data",
              t.render().c_str());
}

void BM_GenerationVsLineCount(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  std::vector<xtalk::MafFault> faults;
  for (const auto& f : xtalk::enumerate_mafs(cpu::kAddrBits, false))
    if (f.victim < k) faults.push_back(f);
  sbst::GeneratorConfig cfg;
  cfg.include_data_bus = false;
  cfg.address_faults = faults;
  for (auto _ : state)
    benchmark::DoNotOptimize(sbst::TestProgramGenerator(cfg).generate());
}
BENCHMARK(BM_GenerationVsLineCount)->Arg(2)->Arg(6)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  return bench::scenario_main(
      argc, argv, "E6: test program size scaling",
      "Section 4.3 (program size and test time proportional to N)",
      spec::builtin_scenario("paper-baseline"), [] {
        print_scaling(soc::BusKind::kAddress);
        print_scaling(soc::BusKind::kData);
        std::printf("\nExpected: bytes and cycles grow ~linearly with the "
                    "number of MA tests; bytes-per-test roughly constant.\n");
      });
}
