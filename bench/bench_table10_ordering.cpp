// E15 (extension) -- ablation of the greedy placement order (design
// decision D6's neighbourhood).
//
// Placement is greedy, so the order in which address-bus MAFs are
// attempted decides who wins the contested cells around the one-hot /
// inverted-one-hot clusters.  This bench compares orderings by
// single-session density, sessions needed to place everything placeable,
// and total program size -- the tester-time trade-off the paper's
// multi-session remark leaves open.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sbst/generator.h"
#include "sim/verify.h"
#include "util/table.h"

using namespace xtest;

namespace {

const char* order_name(sbst::PlacementOrder o) {
  switch (o) {
    case sbst::PlacementOrder::kVictimMajor: return "victim-major (default)";
    case sbst::PlacementOrder::kDelaysFirst: return "delays first";
    case sbst::PlacementOrder::kGlitchesFirst: return "glitches first";
    case sbst::PlacementOrder::kCenterOut: return "center-out";
  }
  return "?";
}

void print_ordering_ablation() {
  util::Table t({"order", "session-0 addr tests", "sessions", "total addr",
                 "total bytes", "total cycles"});
  for (sbst::PlacementOrder order :
       {sbst::PlacementOrder::kVictimMajor,
        sbst::PlacementOrder::kDelaysFirst,
        sbst::PlacementOrder::kGlitchesFirst,
        sbst::PlacementOrder::kCenterOut}) {
    sbst::GeneratorConfig cfg = bench::active_spec().program;
    cfg.order = order;
    const auto sessions =
        sbst::TestProgramGenerator::generate_sessions(cfg);
    std::size_t total = 0, bytes = 0, nonempty = 0;
    std::uint64_t cycles = 0;
    for (const auto& s : sessions) {
      if (s.program.tests.empty()) continue;
      ++nonempty;
      total += s.placed_count(soc::BusKind::kAddress);
      bytes += s.program.program_bytes();
      cycles += sim::verify_program(s.program).gold.cycles;
    }
    t.add_row({order_name(order),
               std::to_string(
                   sessions[0].placed_count(soc::BusKind::kAddress)),
               std::to_string(nonempty), std::to_string(total),
               std::to_string(bytes), std::to_string(cycles)});
  }
  std::printf("\n%s", t.render().c_str());
  std::printf("\nGreedy placement is order-sensitive: totals land within a "
              "couple of tests of the 47/48 optimum, and the orderings "
              "trade single-session density against total program bytes "
              "and cycles (tester time).\n");
}

void BM_SessionsByOrder(benchmark::State& state) {
  sbst::GeneratorConfig cfg = bench::active_spec().program;
  cfg.order = static_cast<sbst::PlacementOrder>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sbst::TestProgramGenerator::generate_sessions(cfg));
}
BENCHMARK(BM_SessionsByOrder)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  return bench::scenario_main(
      argc, argv, "E15 (extension): placement-order ablation",
      "greedy order vs session count / tester time",
      spec::builtin_scenario("paper-baseline"), print_ordering_ablation);
}
