// E3 -- Section 5 summary numbers (the paper's in-text results table):
//
//   "we were able to apply 64 of 64 MA tests for the databus and 41 out of
//    48 tests for the address bus.  Some of the tests cannot be applied
//    due to address conflicts ... which can be executed in different
//    sessions.  The total execution time of the programs is 1720 processor
//    cycles."
//
// Prints the per-session and total placement/size/cycle summary of our
// generator, then times program generation and functional verification.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sbst/generator.h"
#include "sim/verify.h"
#include "util/table.h"

using namespace xtest;

namespace {

void print_summary() {
  const auto sessions = bench::active_spec().make_sessions();
  util::Table t({"session", "addr tests", "data tests", "bytes",
                 "response cells", "cycles", "all effective"});
  std::size_t tot_addr = 0, tot_data = 0, tot_bytes = 0;
  std::uint64_t tot_cycles = 0;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const auto& r = sessions[s];
    if (r.program.tests.empty()) continue;
    const sim::VerificationResult ver = sim::verify_program(r.program);
    t.add_row({std::to_string(s),
               std::to_string(r.placed_count(soc::BusKind::kAddress)),
               std::to_string(r.placed_count(soc::BusKind::kData)),
               std::to_string(r.program.program_bytes()),
               std::to_string(r.program.response_cells.size()),
               std::to_string(ver.gold.cycles),
               ver.all_effective() ? "yes" : "NO"});
    tot_addr += r.placed_count(soc::BusKind::kAddress);
    tot_data += r.placed_count(soc::BusKind::kData);
    tot_bytes += r.program.program_bytes();
    tot_cycles += ver.gold.cycles;
  }
  t.add_row({"total", std::to_string(tot_addr), std::to_string(tot_data),
             std::to_string(tot_bytes), "", std::to_string(tot_cycles), ""});
  std::printf("\n%s", t.render().c_str());

  std::printf("\npaper vs measured:\n");
  std::printf("  data-bus MA tests applied    paper 64/64   ours %zu/64\n",
              tot_data);
  std::printf("  address-bus MA tests applied paper 41/48   ours %zu/48 "
              "(across sessions)\n",
              tot_addr);
  std::printf("  total execution time         paper 1720    ours %llu "
              "processor cycles\n",
              static_cast<unsigned long long>(tot_cycles));
  if (!sessions.empty() && !sessions.back().unplaced.empty()) {
    std::printf("  never-placeable tests:");
    for (const auto& u : sessions.back().unplaced)
      std::printf(" %s", u.fault.label().c_str());
    std::printf("\n");
  }
}

void BM_GenerateSingleSession(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate());
  }
}
BENCHMARK(BM_GenerateSingleSession);

void BM_GenerateAllSessions(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{}));
  }
}
BENCHMARK(BM_GenerateAllSessions);

void BM_VerifyProgram(benchmark::State& state) {
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::verify_program(gen.program));
  }
}
BENCHMARK(BM_VerifyProgram);

}  // namespace

int main(int argc, char** argv) {
  return bench::scenario_main(
      argc, argv, "E3: test application summary",
      "Section 5 in-text results (tests applied, program cycles)",
      spec::builtin_scenario("paper-baseline"), print_summary);
}
