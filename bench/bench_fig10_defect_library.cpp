// E9 -- Fig. 10: generation of the defect library, plus the library
// statistics that explain Fig. 11's shape.
//
//   "we used a Gaussian distribution to model the defect distribution in
//    terms of the variation of capacitance values (in %).  A 3-delta point
//    of 150% was chosen.  A total number of 1000 defects were generated
//    for each bus."
//
// Prints the defective-wire histogram (why side lines get no coverage:
// their nominal net coupling is too small for the distribution to push
// them over Cth) and times library generation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

void print_library_stats(soc::BusKind bus) {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const soc::System sys(cfg);
  const auto& nominal = bus == soc::BusKind::kAddress
                            ? sys.nominal_address_network()
                            : sys.nominal_data_network();
  const auto lib =
      sim::make_defect_library(cfg, bus, scn.defect_count, scn.seed,
                               scn.sigma_pct);
  const auto hist = lib.defective_wire_histogram(nominal);

  std::printf("\n%s bus: %zu defects from %zu candidates "
              "(yield %.2f%%), Cth = %.1f fF\n",
              soc::to_string(bus).c_str(), scn.defect_count, lib.attempts(),
              100.0 * static_cast<double>(lib.size()) /
                  static_cast<double>(lib.attempts()),
              lib.config().cth_fF);

  util::Table t({"wire", "nominal net C (fF)", "defective in library", ""});
  std::size_t multi = 0;
  for (unsigned i = 0; i < nominal.width(); ++i) {
    t.add_row({std::to_string(i + 1),
               util::Table::num(nominal.net_coupling(i), 1),
               std::to_string(hist[i]),
               bench::bar(static_cast<double>(hist[i]) /
                          (static_cast<double>(scn.defect_count) / 4.0))});
  }
  for (const auto& d : lib.defects())
    multi += d.defective_wires(nominal, lib.config().cth_fF).size() > 1;
  std::printf("%s", t.render().c_str());
  std::printf("defects touching more than one wire: %zu/%zu (the overlap "
              "that lets 47 placed tests cover all defects)\n", multi,
              lib.size());
}

void BM_LibraryGeneration(benchmark::State& state) {
  const soc::SystemConfig cfg;
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = kSeed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::make_defect_library(
        cfg, soc::BusKind::kAddress, count, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_LibraryGeneration)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
  def.defect_count = 1000;  // the paper's full Fig. 10 library
  return bench::scenario_main(
      argc, argv, "E9: defect library generation",
      "Fig. 10 (Gaussian perturbation, 3-sigma = 150%, Cth gate)", def, [] {
        print_library_stats(soc::BusKind::kAddress);
        print_library_stats(soc::BusKind::kData);
      });
}
