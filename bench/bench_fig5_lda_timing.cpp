// E2 -- Fig. 5: bus-transaction timing of the load instruction.
//
// Reconstructs the paper's LDA timing diagram from a live trace of the
// CPU-memory system, then times raw instruction execution.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cpu/assembler.h"
#include "soc/system.h"
#include "soc/waveform.h"
#include "util/table.h"

using namespace xtest;

namespace {

void print_lda_trace() {
  soc::System sys(bench::active_spec().system);
  soc::BusTrace trace;
  sys.set_trace(&trace);
  // The Fig. 4/5 scenario: lda Ax at Ai, operand at Ax.
  const cpu::AsmResult prog = cpu::assemble(R"(
        .org 0x010      ; Ai
        lda 0xe00       ; Ax = 1110:00000000
        hlt
        .org 0xe00
        .byte 0xf7      ; M[Ax]
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(100);

  util::Table t({"cycle", "bus", "direction", "driven", "received"});
  for (const auto& e : trace.events()) {
    t.add_row({std::to_string(e.cycle), soc::to_string(e.bus),
               xtalk::to_string(e.direction), e.driven.to_page_offset(),
               e.received.to_page_offset()});
  }
  std::printf("\nBus transactions of `lda 0xe00` at 0x010 (idle cycles hold "
              "the bus, Section 4.1):\n%s",
              t.render().c_str());
  std::printf("\nExpected sequence (Fig. 5): addr Ai, Ai+1, Ax; "
              "data M[Ai], M[Ai+1], M[Ax].\n");
  std::printf("Total cycles for lda + hlt: %llu\n",
              static_cast<unsigned long long>(sys.processor().cycles()));

  std::printf("\nAddress-bus waveform (one column per transaction):\n%s",
              soc::render_waveform(trace, soc::BusKind::kAddress).c_str());
  std::printf("\nData-bus waveform:\n%s",
              soc::render_waveform(trace, soc::BusKind::kData).c_str());
}

void BM_InstructionExecution(benchmark::State& state) {
  soc::System sys(bench::active_spec().system);
  const cpu::AsmResult prog = cpu::assemble(R"(
start:  lda 0x300
        add 0x301
        sta 0x302
        jmp start
        .org 0x300
        .byte 0x11, 0x22
  )");
  sys.load_and_reset(prog.image, prog.entry);
  for (auto _ : state) {
    sys.processor().step();
    if (sys.processor().halted()) state.SkipWithError("unexpected halt");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstructionExecution);

void BM_FullBusTransfer(benchmark::State& state) {
  // One crosstalk-evaluated read: address transfer + data transfer.
  soc::System sys(bench::active_spec().system);
  cpu::MemoryImage img;
  img.set(0x300, 0x5A);
  sys.load_and_reset(img, 0);
  std::uint16_t a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.read(static_cast<cpu::Addr>(a)));
    a = (a + 0x123) & 0xFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullBusTransfer);

}  // namespace

int main(int argc, char** argv) {
  return bench::scenario_main(argc, argv, "E2: LDA bus-transaction timing",
                              "Fig. 5 (load instruction timing diagram)",
                              spec::builtin_scenario("paper-baseline"),
                              print_lda_trace);
}
