// E5 -- Section 5: data-bus defect coverage.
//
//   "using our defect library, the defect coverage of the test program is
//    100% on both address and data busses"
//
// Reproduces the data-bus half: a 1000-defect library on the 8-bit
// bidirectional data bus, per-line and overall coverage, split by
// direction to show both halves of the 64-test set pull their weight.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

void print_data_coverage() {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kData, scn.defect_count,
                               scn.seed, scn.sigma_pct);
  std::printf("\ndefect library: %zu defects (from %zu candidates), "
              "Cth = %.1f fF\n",
              lib.size(), lib.attempts(), lib.config().cth_fF);

  const util::ParallelConfig par{scn.threads};
  util::CampaignStats stats;
  const sim::PerLineCoverage cov =
      sim::per_line_coverage(cfg, soc::BusKind::kData, lib, scn.program,
                             scn.cycle_factor, par, &stats);

  util::Table t({"line", "MA tests", "individual", "cumulative", ""});
  for (unsigned i = 0; i < 8; ++i)
    t.add_row({std::to_string(i + 1), std::to_string(cov.tests_placed[i]),
               util::Table::pct(cov.individual[i]),
               util::Table::pct(cov.cumulative[i]),
               bench::bar(cov.individual[i] * 2.0)});
  std::printf("\n%s", t.render().c_str());
  std::printf("\noverall data-bus coverage: %s (paper: 100%%)\n",
              util::Table::pct(cov.overall).c_str());

  // Direction split: read-only vs write-only programs.
  for (const bool write_dir : {false, true}) {
    std::vector<xtalk::MafFault> faults;
    for (const auto& f : xtalk::enumerate_mafs(8, true))
      if ((f.direction == xtalk::BusDirection::kCpuToCore) == write_dir)
        faults.push_back(f);
    sbst::GeneratorConfig gc;
    gc.include_address_bus = false;
    gc.data_faults = faults;
    const auto sessions = sbst::TestProgramGenerator::generate_sessions(gc);
    const auto det = sim::run_detection_sessions(
        cfg, sessions, soc::BusKind::kData, lib, scn.cycle_factor, par,
        &stats);
    std::printf("  %s-direction tests alone: %s coverage\n",
                write_dir ? "cpu->core (write)" : "core->cpu (read)",
                util::Table::pct(sim::coverage(det)).c_str());
  }
  bench::print_campaign_stats("table2_data_coverage", stats);
}

void BM_DataDetection(benchmark::State& state) {
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kData, 64, kSeed);
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::run_detection(cfg, gen.program, soc::BusKind::kData, lib));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lib.size()));
}
BENCHMARK(BM_DataDetection);

}  // namespace

int main(int argc, char** argv) {
  spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
  def.bus = soc::BusKind::kData;
  def.defect_count = 1000;  // the paper's full data-bus library
  return bench::scenario_main(
      argc, argv, "E5: data-bus defect coverage",
      "Section 5 (100% coverage on the data bus, both directions)", def,
      print_data_coverage);
}
