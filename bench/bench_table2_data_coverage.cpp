// E5 -- Section 5: data-bus defect coverage.
//
//   "using our defect library, the defect coverage of the test program is
//    100% on both address and data busses"
//
// Reproduces the data-bus half: a 1000-defect library on the 8-bit
// bidirectional data bus, per-line and overall coverage, split by
// direction to show both halves of the 64-test set pull their weight.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::size_t kLibrarySize = 1000;
constexpr std::uint64_t kSeed = 20010618;

void print_data_coverage() {
  const soc::SystemConfig cfg;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kData, kLibrarySize, kSeed);
  std::printf("\ndefect library: %zu defects (from %zu candidates), "
              "Cth = %.1f fF\n",
              lib.size(), lib.attempts(), lib.config().cth_fF);

  const util::ParallelConfig par = util::ParallelConfig::from_env();
  util::CampaignStats stats;
  const sim::PerLineCoverage cov =
      sim::per_line_coverage(cfg, soc::BusKind::kData, lib,
                             sbst::GeneratorConfig{}, 16, par, &stats);

  util::Table t({"line", "MA tests", "individual", "cumulative", ""});
  for (unsigned i = 0; i < 8; ++i)
    t.add_row({std::to_string(i + 1), std::to_string(cov.tests_placed[i]),
               util::Table::pct(cov.individual[i]),
               util::Table::pct(cov.cumulative[i]),
               bench::bar(cov.individual[i] * 2.0)});
  std::printf("\n%s", t.render().c_str());
  std::printf("\noverall data-bus coverage: %s (paper: 100%%)\n",
              util::Table::pct(cov.overall).c_str());

  // Direction split: read-only vs write-only programs.
  for (const bool write_dir : {false, true}) {
    std::vector<xtalk::MafFault> faults;
    for (const auto& f : xtalk::enumerate_mafs(8, true))
      if ((f.direction == xtalk::BusDirection::kCpuToCore) == write_dir)
        faults.push_back(f);
    sbst::GeneratorConfig gc;
    gc.include_address_bus = false;
    gc.data_faults = faults;
    const auto sessions = sbst::TestProgramGenerator::generate_sessions(gc);
    const auto det = sim::run_detection_sessions(
        cfg, sessions, soc::BusKind::kData, lib, 16, par, &stats);
    std::printf("  %s-direction tests alone: %s coverage\n",
                write_dir ? "cpu->core (write)" : "core->cpu (read)",
                util::Table::pct(sim::coverage(det)).c_str());
  }
  bench::print_campaign_stats("table2_data_coverage", stats);
}

void BM_DataDetection(benchmark::State& state) {
  const soc::SystemConfig cfg;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kData, 64, kSeed);
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::run_detection(cfg, gen.program, soc::BusKind::kData, lib));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lib.size()));
}
BENCHMARK(BM_DataDetection);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E5: data-bus defect coverage",
                "Section 5 (100% coverage on the data bus, both directions)");
  print_data_coverage();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
