// E17 (extension) -- why testing must happen at speed.
//
// Section 1: "Due to its timing nature, testing for crosstalk effect need
// to be conducted at the operational speed of the circuit-under-test.
// At-speed testing for GHz systems, however, is prohibitively expensive
// with external testers."  The SBST method's whole point is getting
// at-speed stimulus without an at-speed tester.
//
// This experiment quantifies the claim: clocking the system below its
// rated speed (clock_period_scale > 1) stretches the sampling slack, so
// marginal slow transitions pass.  Same-bus coupling defects remain
// covered (their glitch effect is speed-independent in the MAF model),
// but the delay-only class -- cross-bus load defects (E14) -- escapes
// progressively until a 4x-slow clock sees none of them.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/campaign.h"
#include "util/rng.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::size_t kLoadDefects = 150;
constexpr std::uint64_t kSeed = 20010618;

struct LoadDefect {
  unsigned wire;
  double extra_fF;
};

/// Delay-only defects: quiet cross-bus load just above the at-speed
/// delay-detectability threshold (see E14).
std::vector<LoadDefect> make_load_library(const soc::System& sys) {
  util::Rng rng(bench::active_spec().seed);
  std::vector<LoadDefect> out;
  const auto& nom = sys.nominal_address_network();
  while (out.size() < kLoadDefects) {
    const unsigned wire = static_cast<unsigned>(rng.below(12));
    const double threshold =
        2.0 * (sys.address_cth() - nom.net_coupling(wire));
    const double load = std::abs(rng.gaussian(1.5 * threshold));
    if (load > threshold) out.push_back({wire, load});
  }
  return out;
}

void print_speed_sweep() {
  // Libraries are built against the *at-speed* system: these are the
  // defects a correct test must reject.
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& rated = scn.system;
  const soc::System probe(rated);
  const auto coupling_lib = sim::make_defect_library(
      rated, soc::BusKind::kAddress, scn.defect_count, scn.seed);
  const auto load_lib = make_load_library(probe);
  const auto sessions = scn.make_sessions();

  const util::ParallelConfig par{scn.threads};
  util::CampaignStats stats;
  util::Table t({"clock", "coupling defects", "delay-only defects", ""});
  for (const double scale : {1.0, 1.25, 1.5, 2.0, 4.0}) {
    soc::SystemConfig cfg = scn.system;
    cfg.clock_period_scale = scale;

    const double coupling_cov = sim::coverage(sim::run_detection_sessions(
        cfg, sessions, soc::BusKind::kAddress, coupling_lib,
        scn.cycle_factor, par, &stats));

    // Delay-only library: run per defect with the load applied.
    soc::System sys(cfg);
    std::vector<bool> det(load_lib.size(), false);
    for (const auto& s : sessions) {
      if (s.program.tests.empty()) continue;
      sys.clear_defects();
      const auto gold = sim::run_and_capture(sys, s.program, 1'000'000);
      for (std::size_t i = 0; i < load_lib.size(); ++i) {
        xtalk::RcNetwork bad = sys.nominal_address_network();
        bad.add_ground_load(load_lib[i].wire, load_lib[i].extra_fF);
        sys.set_address_network(bad);
        const auto faulty =
            sim::run_and_capture(sys, s.program, gold.cycles * 16);
        det[i] = det[i] || !faulty.matches(gold);
        sys.clear_defects();
      }
    }
    const double load_cov = sim::coverage(det);

    char label[32];
    std::snprintf(label, sizeof label, "%.2fx period", scale);
    t.add_row({scale == 1.0 ? "at-speed (rated)" : label,
               util::Table::pct(coupling_cov), util::Table::pct(load_cov),
               bench::bar(load_cov)});
  }
  std::printf("\naddress bus, %zu coupling defects + %zu delay-only "
              "(cross-load) defects:\n%s",
              coupling_lib.size(), load_lib.size(), t.render().c_str());
  bench::print_campaign_stats("table12_atspeed", stats);
}

void BM_SlowClockDetection(benchmark::State& state) {
  soc::SystemConfig cfg = bench::active_spec().system;
  cfg.clock_period_scale = 2.0;
  const auto lib =
      sim::make_defect_library(bench::active_spec().system,
                               soc::BusKind::kAddress, 40, kSeed);
  const auto gen =
      sbst::TestProgramGenerator(bench::active_spec().program).generate();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::run_detection(cfg, gen.program, soc::BusKind::kAddress, lib));
}
BENCHMARK(BM_SlowClockDetection);

}  // namespace

void print_table12() {
  print_speed_sweep();
  std::printf("\nReading: same-bus coupling defects stay covered at any "
              "clock in the MAF model (the speed-independent glitch effect "
              "fires whenever C > Cth), but the delay-only class -- here "
              "the cross-load defects of E14 -- escapes as the clock "
              "slows: exactly the faults a low-speed external tester "
              "cannot see.  Self-test runs at the rated clock by "
              "construction, so it always operates in the top row.\n");
}

int main(int argc, char** argv) {
  spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
  def.defect_count = 400;
  return bench::scenario_main(
      argc, argv, "E17 (extension): at-speed vs slow-clock testing",
      "Section 1's core motivation, quantified", def, print_table12);
}
