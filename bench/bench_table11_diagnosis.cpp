// E16 (extension) -- diagnostic resolution of the compacted responses.
//
// Section 4.3: "we compact the test responses into as few bytes as
// possible without losing any diagnostic information ... The position of
// the '0' bit tells which test failed."  This bench measures that claim
// end to end over the defect library: after each defective run, the
// diagnosis engine inverts the tester-visible responses back to candidate
// failing MA tests, and we score whether a candidate's victim wire really
// is one of the defect's over-threshold wires.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/campaign.h"
#include "sim/diagnosis.h"
#include "sim/verify.h"
#include "util/table.h"

using namespace xtest;

namespace {

void print_diagnosis_accuracy() {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const soc::System probe(cfg);
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kAddress,
                                            scn.defect_count, scn.seed);
  const auto gen =
      sbst::TestProgramGenerator(scn.program).generate();
  const sim::VerificationResult ver = sim::verify_program(gen.program);

  soc::System sys(cfg);
  std::size_t detected = 0, diagnosed = 0, correct_wire = 0;
  std::size_t total_candidates = 0;
  for (const auto& defect : lib.defects()) {
    sys.set_address_network(defect.apply(probe.nominal_address_network()));
    const sim::ResponseSnapshot snap =
        sim::run_and_capture(sys, gen.program, ver.max_cycles);
    sys.clear_defects();
    if (snap.matches(ver.gold)) continue;
    ++detected;
    const auto candidates = sim::diagnose(gen.program, ver.gold, snap);
    if (candidates.empty()) continue;
    ++diagnosed;
    total_candidates += candidates.size();
    const auto bad_wires =
        defect.defective_wires(probe.nominal_address_network(),
                               probe.address_cth());
    bool hit = false;
    for (const auto& c : candidates)
      for (unsigned w : bad_wires) hit = hit || c.fault.victim == w;
    correct_wire += hit;
  }

  util::Table t({"metric", "value"});
  t.add_row({"defects detected (single session)",
             std::to_string(detected) + "/" + std::to_string(lib.size())});
  t.add_row({"detections yielding candidates",
             std::to_string(diagnosed) + "/" + std::to_string(detected)});
  t.add_row({"candidate set touches a truly defective wire",
             util::Table::pct(detected ? static_cast<double>(correct_wire) /
                                             static_cast<double>(diagnosed)
                                       : 0.0)});
  t.add_row({"mean candidates per diagnosis",
             util::Table::num(diagnosed ? static_cast<double>(
                                              total_candidates) /
                                              static_cast<double>(diagnosed)
                                        : 0.0,
                              1)});
  std::printf("\n%s", t.render().c_str());
  std::printf("\nNote: real defects perturb many couplings at once, so a "
              "candidate *set* (rather than a single test) is the best a "
              "one-byte-per-group compaction can deliver -- exactly the "
              "paper's 'without losing any diagnostic information' "
              "granularity.\n");
}

void BM_Diagnose(benchmark::State& state) {
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const auto gen =
      sbst::TestProgramGenerator(bench::active_spec().program).generate();
  const sim::VerificationResult ver = sim::verify_program(gen.program);
  soc::System sys(cfg);
  sys.set_forced_maf(
      soc::ForcedMaf{gen.program.tests[0].bus, gen.program.tests[0].fault});
  const sim::ResponseSnapshot snap =
      sim::run_and_capture(sys, gen.program, ver.max_cycles);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::diagnose(gen.program, ver.gold, snap));
}
BENCHMARK(BM_Diagnose);

}  // namespace

int main(int argc, char** argv) {
  spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
  def.defect_count = 300;
  return bench::scenario_main(
      argc, argv,
      "E16 (extension): diagnostic resolution of compacted responses",
      "Section 4.3's diagnosability claim, measured", def,
      print_diagnosis_accuracy);
}
