// E7 -- Section 1's motivating comparison: hardware BIST vs software-based
// self-test.
//
//   "Built-in self-test, while eliminating the need for a high-speed
//    tester, may lead to excessive test overhead as well as overly
//    aggressive testing."
//
// Three aspects on equal footing:
//   1. coverage over the same defect library,
//   2. over-testing (defects only detectable by functionally-impossible
//      patterns -> unnecessary yield loss), on a full and on a partially
//      reachable address map,
//   3. area overhead (gate-count model) vs SBST's zero hardware cost.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hwbist/area_model.h"
#include "hwbist/bist.h"
#include "hwbist/overtest.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

void print_coverage_and_overtest() {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kAddress,
                                            scn.defect_count, scn.seed,
                                            scn.sigma_pct);

  const util::ParallelConfig par{scn.threads};
  util::CampaignStats stats;
  util::Table t({"address map", "BIST detects", "SBST detects",
                 "over-test only", "over-test rate"});
  for (const cpu::Addr limit : {cpu::Addr(cpu::kMemWords), cpu::Addr(0xC00),
                                cpu::Addr(0x800)}) {
    sbst::GeneratorConfig gen;
    gen.usable_limit = limit;
    const hwbist::OverTestResult r = hwbist::analyze_overtest(
        cfg, soc::BusKind::kAddress, lib, gen, 6, par, &stats);
    char label[32];
    std::snprintf(label, sizeof label, "%.0f%% reachable",
                  100.0 * limit / cpu::kMemWords);
    t.add_row({label,
               std::to_string(r.bist_detected) + "/" +
                   std::to_string(r.library_size),
               std::to_string(r.functional_detected) + "/" +
                   std::to_string(r.library_size),
               std::to_string(r.overtest_only),
               util::Table::pct(r.overtest_fraction())});
  }
  std::printf("\nCoverage and over-testing (address bus, %zu defects):\n%s",
              scn.defect_count, t.render().c_str());
  std::printf("\nExpected: with the full map SBST matches BIST (no over-"
              "testing); constraining the functional address space leaves "
              "BIST rejecting chips whose defects can never corrupt real "
              "operation.\n");
  bench::print_campaign_stats("table3_bist_vs_sbst", stats);
}

void print_area_model() {
  util::Table t({"bus", "width", "BIST gates", "vs 50k-gate SoC",
                 "vs 5M-gate SoC", "SBST gates"});
  const struct {
    const char* name;
    unsigned width;
    bool bidir;
  } rows[] = {{"address", 12, false},
              {"data", 8, true},
              {"both buses", 20, true}};
  for (const auto& r : rows) {
    hwbist::BistAreaModel m{.bus_width = r.width, .bidirectional = r.bidir};
    t.add_row({r.name, std::to_string(r.width),
               util::Table::num(m.total_gates(), 0),
               util::Table::pct(m.overhead_fraction(50'000), 2),
               util::Table::pct(m.overhead_fraction(5'000'000), 4), "0"});
  }
  std::printf("\nArea overhead (structural gate-count model):\n%s",
              t.render().c_str());
  std::printf("\nSBST costs no gates; its costs are program memory (see E3) "
              "and tester load time.\n");
}

void BM_BistLibraryRun(benchmark::State& state) {
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const soc::System sys(cfg);
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 100, kSeed);
  const hwbist::HardwareBist bist(12, false);
  for (auto _ : state)
    benchmark::DoNotOptimize(bist.run_library(
        sys.nominal_address_network(), sys.address_model(), lib));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lib.size()));
}
BENCHMARK(BM_BistLibraryRun);

}  // namespace

int main(int argc, char** argv) {
  // The bist-compare built-in IS this experiment's configuration.
  return bench::scenario_main(
      argc, argv, "E7: hardware BIST vs software-based self-test",
      "Section 1 (over-testing and area-overhead motivation)",
      spec::builtin_scenario("bist-compare"), [] {
        print_coverage_and_overtest();
        print_area_model();
      });
}
