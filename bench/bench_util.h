// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one table/figure of the paper: it prints
// the reproduction through util::Table first, then runs google-benchmark
// timings for the underlying kernel so performance regressions in the
// simulator itself are visible.

#pragma once

#include <cstdio>
#include <string>

#include "util/fault_injector.h"
#include "util/parallel.h"

namespace xtest::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Simple horizontal ASCII bar for figure-like output.
inline std::string bar(double fraction, int width = 40) {
  const int n = static_cast<int>(fraction * width + 0.5);
  std::string s(static_cast<std::size_t>(n), '#');
  s.resize(static_cast<std::size_t>(width), ' ');
  return s;
}

/// Human-readable campaign throughput line plus the machine-readable JSON
/// record the perf trajectory scrapes ($XTEST_THREADS controls the worker
/// count; results are bitwise identical at any setting).
inline void print_campaign_stats(const std::string& name,
                                 const util::CampaignStats& s) {
  // A failed stats emit (fault-injection site "bench.emit" stands in for
  // a broken pipe / full disk on the scrape path) must not take down the
  // bench: the reproduction tables already printed.
  try {
    util::FaultInjector::global().maybe_fail("bench.emit");
  } catch (const util::InjectedFault& e) {
    std::fprintf(stderr, "warning: campaign stats emit skipped: %s\n",
                 e.what());
    return;
  }
  std::printf("\ncampaign stats: %zu defect simulations, %llu simulated "
              "cycles, %.3f s wall, %.0f defects/sec, %u threads\n",
              s.defects_simulated,
              static_cast<unsigned long long>(s.simulated_cycles),
              s.wall_seconds, s.defects_per_second(), s.threads);
  if (s.sim_errors || s.retries || s.restored_from_checkpoint ||
      s.salvaged_sections || s.dropped_slots || s.flush_failures)
    std::printf("campaign health: %zu sim errors, %zu retries, %zu verdicts "
                "restored from checkpoint, %zu sections salvaged, %zu "
                "completed slots dropped, %zu deferred flushes\n",
                s.sim_errors, s.retries, s.restored_from_checkpoint,
                s.salvaged_sections, s.dropped_slots, s.flush_failures);
  std::printf("%s\n", s.json(name).c_str());
}

}  // namespace xtest::bench
