// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one table/figure of the paper: it prints
// the reproduction through util::Table first, then runs google-benchmark
// timings for the underlying kernel so performance regressions in the
// simulator itself are visible.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "spec/scenario.h"
#include "util/fault_injector.h"
#include "util/parallel.h"

namespace xtest::bench {

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

/// Simple horizontal ASCII bar for figure-like output.
inline std::string bar(double fraction, int width = 40) {
  const int n = static_cast<int>(fraction * width + 0.5);
  std::string s(static_cast<std::size_t>(n), '#');
  s.resize(static_cast<std::size_t>(width), ' ');
  return s;
}

/// Human-readable campaign throughput line plus the machine-readable JSON
/// record the perf trajectory scrapes ($XTEST_THREADS controls the worker
/// count; results are bitwise identical at any setting).
inline void print_campaign_stats(const std::string& name,
                                 const util::CampaignStats& s) {
  // A failed stats emit (fault-injection site "bench.emit" stands in for
  // a broken pipe / full disk on the scrape path) must not take down the
  // bench: the reproduction tables already printed.
  try {
    util::FaultInjector::global().maybe_fail("bench.emit");
  } catch (const util::InjectedFault& e) {
    std::fprintf(stderr, "warning: campaign stats emit skipped: %s\n",
                 e.what());
    return;
  }
  std::printf("\ncampaign stats: %zu defect simulations, %llu simulated "
              "cycles, %.3f s wall, %.0f defects/sec, %u threads\n",
              s.defects_simulated,
              static_cast<unsigned long long>(s.simulated_cycles),
              s.wall_seconds, s.defects_per_second(), s.threads);
  if (s.sim_errors || s.retries || s.restored_from_checkpoint ||
      s.salvaged_sections || s.dropped_slots || s.flush_failures)
    std::printf("campaign health: %zu sim errors, %zu retries, %zu verdicts "
                "restored from checkpoint, %zu sections salvaged, %zu "
                "completed slots dropped, %zu deferred flushes\n",
                s.sim_errors, s.retries, s.restored_from_checkpoint,
                s.salvaged_sections, s.dropped_slots, s.flush_failures);
  std::printf("%s\n", s.json(name).c_str());
}

/// The scenario this bench process runs under.  scenario_main() fills it
/// before the reproduction body or any BM_ function executes; bodies read
/// their system / library / program configuration from here instead of
/// hard-coding it.
inline spec::ScenarioSpec& active_spec_slot() {
  static spec::ScenarioSpec s;
  return s;
}
inline const spec::ScenarioSpec& active_spec() { return active_spec_slot(); }

/// Scenario-driven bench entry point shared by every bench binary:
///
///   int main(int argc, char** argv) {
///     spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
///     def.defect_count = 1000;  // this bench's library size
///     return bench::scenario_main(argc, argv, "E4: ...", "Fig. 11 (...)",
///                                 def, print_fig11);
///   }
///
/// `--scenario NAME|FILE` (also `--scenario=...`) is parsed and stripped
/// before google-benchmark sees argv; without it the bench's own default
/// spec applies and the output is byte-identical to the pre-scenario
/// binaries.  Bad scenario input exits with the CLI's usage code (2).
inline int scenario_main(int argc, char** argv, const std::string& title,
                         const std::string& paper_ref,
                         spec::ScenarioSpec default_spec,
                         const std::function<void()>& body,
                         bool run_benchmarks = true) {
  std::vector<char*> keep;
  std::optional<std::string> scenario;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--scenario" && i + 1 < argc) {
      scenario = argv[++i];
    } else if (a.rfind("--scenario=", 0) == 0) {
      scenario = a.substr(std::string("--scenario=").size());
    } else {
      keep.push_back(argv[i]);
    }
  }
  try {
    active_spec_slot() =
        scenario ? spec::load_scenario(*scenario) : std::move(default_spec);
    active_spec_slot().validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  banner(title, paper_ref);
  if (scenario)
    std::printf("scenario: %s (%s)\n", active_spec().name.c_str(),
                active_spec().description.c_str());
  body();
  if (run_benchmarks) {
    int kept = static_cast<int>(keep.size());
    keep.push_back(nullptr);
    benchmark::Initialize(&kept, keep.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}

}  // namespace xtest::bench
