// E12 (extension) -- deterministic MA tests vs pseudo-random pattern BIST.
//
// A classic LFSR-style BIST drives random vector pairs.  The MAF theory
// says the 4N MA pairs are necessary and sufficient; random pairs rarely
// align every aggressor against the victim, so their coverage of
// threshold-level defects trails badly at equal pattern counts.  This
// quantifies the advantage of the deterministic MA set that both the
// paper's SBST method and the hardware-BIST baseline [2] apply.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hwbist/bist.h"
#include "hwbist/random_patterns.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

void print_comparison() {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const soc::System sys(cfg);
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kAddress,
                                            scn.defect_count, scn.seed,
                                            scn.sigma_pct);
  const auto& nom = sys.nominal_address_network();
  const auto& model = sys.address_model();

  const util::ParallelConfig par{scn.threads};
  util::CampaignStats stats;
  util::Table t({"pattern set", "pairs", "coverage", ""});
  const hwbist::HardwareBist ma(12, false);
  const double ma_cov =
      sim::coverage(ma.run_library(nom, model, lib, par, &stats));
  t.add_row({"MA tests (deterministic)", "48", util::Table::pct(ma_cov),
             bench::bar(ma_cov)});
  for (std::size_t count : {48u, 480u, 4800u, 48000u}) {
    const hwbist::RandomPatternBist rnd(12, count, scn.seed);
    const double cov =
        sim::coverage(rnd.run_library(nom, model, lib, par, &stats));
    t.add_row({"random pairs", std::to_string(count), util::Table::pct(cov),
               bench::bar(cov)});
  }
  std::printf("\nAddress-bus defect coverage, %zu threshold-level "
              "defects:\n%s", scn.defect_count, t.render().c_str());
  std::printf("\nExpected: 48 MA pairs reach 100%%; random pairs need "
              "orders of magnitude more patterns and still trail on "
              "defects just above Cth.\n");
  bench::print_campaign_stats("table7_random_baseline", stats);
}

void BM_RandomPatternRun(benchmark::State& state) {
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const soc::System sys(cfg);
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 50, kSeed);
  const hwbist::RandomPatternBist rnd(
      12, static_cast<std::size_t>(state.range(0)), kSeed);
  for (auto _ : state)
    benchmark::DoNotOptimize(rnd.run_library(
        sys.nominal_address_network(), sys.address_model(), lib));
}
BENCHMARK(BM_RandomPatternRun)->Arg(48)->Arg(480);

}  // namespace

int main(int argc, char** argv) {
  spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
  def.defect_count = 500;
  return bench::scenario_main(
      argc, argv, "E12 (extension): MA tests vs random-pattern BIST",
      "quantifies the MAF model's deterministic-pattern advantage", def,
      print_comparison);
}
