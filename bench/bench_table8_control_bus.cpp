// E13 (extension) -- control-bus crosstalk: why the paper defers it.
//
// Section 3: "The testing of ... control busses are subjects of future
// study."  With the control bus implemented, the reason becomes
// quantitative: the system only ever drives READ/WRITE control words, so
// no control MAF is fully excitable in functional mode.  Software-based
// self-test catches control defects only through *partial* excitation
// (delay effects on the RD/WR wires during read-write traffic), while a
// hardware BIST that drives the full MA set in test mode detects them all
// -- at the price of over-testing defects that can never fire in real
// operation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hwbist/bist.h"
#include "sim/campaign.h"
#include "soc/control.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

void print_excitability() {
  const xtalk::VectorPair rw{soc::control_word(false),
                             soc::control_word(true)};
  const xtalk::VectorPair wr{soc::control_word(true),
                             soc::control_word(false)};
  util::Table t({"control MAF", "MA pair v1->v2", "excited by R->W",
                 "excited by W->R"});
  for (const auto& f : xtalk::enumerate_mafs(soc::kControlBits, false)) {
    const xtalk::VectorPair ma = xtalk::ma_test(soc::kControlBits, f);
    t.add_row({f.label(),
               ma.v1.to_binary() + " -> " + ma.v2.to_binary(),
               xtalk::fully_excites(f, rw) ? "yes" : "no",
               xtalk::fully_excites(f, wr) ? "yes" : "no"});
  }
  std::printf("\nFunctional excitability of the 12 control-bus MAFs\n"
              "(functional control words: READ=%s WRITE=%s; wire order "
              "CS,WR,RD):\n%s",
              soc::control_word(false).to_binary().c_str(),
              soc::control_word(true).to_binary().c_str(),
              t.render().c_str());
}

void print_coverage() {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const soc::System sys(cfg);
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kControl,
                                            scn.defect_count, scn.seed,
                                            scn.sigma_pct);

  const util::ParallelConfig par{scn.threads};
  util::CampaignStats stats;
  const auto sessions = scn.make_sessions();
  const auto sbst_det = sim::run_detection_sessions(
      cfg, sessions, soc::BusKind::kControl, lib, scn.cycle_factor, par,
      &stats);

  const hwbist::HardwareBist bist(soc::kControlBits, false);
  const auto bist_det =
      bist.run_library(sys.nominal_control_network(), sys.control_model(),
                       lib, par, &stats);

  std::size_t overtest = 0;
  for (std::size_t i = 0; i < lib.size(); ++i)
    overtest += sim::is_detected(bist_det[i]) && !sim::is_detected(sbst_det[i]);

  util::Table t({"method", "coverage", "notes"});
  t.add_row({"SBST (functional mode)",
             util::Table::pct(sim::coverage(sbst_det)),
             "partial excitation via R->W / W->R traffic only"});
  t.add_row({"hardware BIST (test mode)",
             util::Table::pct(sim::coverage(bist_det)),
             "full MA set, incl. patterns impossible functionally"});
  std::printf("\nControl-bus defect coverage (%zu defects at Cth %.1f "
              "fF):\n%s", lib.size(), sys.control_cth(),
              t.render().c_str());
  std::printf("\nBIST-only detections (over-testing candidates): %zu "
              "(%.1f%% of BIST rejects)\n",
              overtest,
              100.0 * static_cast<double>(overtest) /
                  static_cast<double>(lib.size()));

  const auto hist = lib.defective_wire_histogram(sys.nominal_control_network());
  std::printf("\ndefective-wire histogram (RD, WR, CS): %zu %zu %zu -- "
              "physically likely defects sit on the center wire (WR), "
              "whose R->W delay effect IS functionally excitable; that is "
              "why SBST coverage stays high despite zero fully-excitable "
              "MAFs.\n",
              hist[soc::kCtrlRd], hist[soc::kCtrlWr], hist[soc::kCtrlCs]);
  bench::print_campaign_stats("table8_control_bus", stats);
}

void print_escape_corner() {
  // The defect class only the full MA set can catch: a symmetric blow-up
  // of both CS couplings.  Functional R->W traffic has one rising and one
  // falling aggressor, so the injected charge on CS cancels; the gp/gn MA
  // patterns align both aggressors and fire.
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const soc::System sys(cfg);
  xtalk::RcNetwork bad = sys.nominal_control_network();
  const double f = 1.2 * sys.control_cth() /
                   sys.nominal_control_network().net_coupling(soc::kCtrlCs);
  bad.scale_coupling(soc::kCtrlCs, soc::kCtrlRd, f);
  bad.scale_coupling(soc::kCtrlCs, soc::kCtrlWr, f);

  const hwbist::HardwareBist bist(soc::kControlBits, false);
  const xtalk::VectorPair rw{soc::control_word(false),
                             soc::control_word(true)};
  std::printf("\nEscape corner: symmetric CS-coupling defect at 1.2 x Cth\n");
  std::printf("  full MA set detects:        %s\n",
              bist.detects(bad, sys.control_model()) ? "yes" : "no");
  std::printf("  functional R->W transition: %s (aggressors cancel on CS)\n",
              sys.control_model().corrupts(bad, rw) ? "corrupts"
                                                    : "no error");
  std::printf("\nConclusion matching the paper: common control-bus defects "
              "fall out of ordinary traffic, but full MAF coverage needs "
              "test-mode patterns -- 'subjects of future study'.\n");
}

void BM_ControlDetection(benchmark::State& state) {
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kControl, 40, kSeed);
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::run_detection(cfg, gen.program, soc::BusKind::kControl, lib));
}
BENCHMARK(BM_ControlDetection);

}  // namespace

int main(int argc, char** argv) {
  // The control-bus built-in, at this bench's historical library size.
  spec::ScenarioSpec def = spec::builtin_scenario("control-bus");
  def.defect_count = 500;
  return bench::scenario_main(argc, argv,
                              "E13 (extension): control-bus crosstalk",
                              "Section 3's deferred 'future study', "
                              "implemented",
                              def, [] {
                                print_excitability();
                                print_coverage();
                                print_escape_corner();
                              });
}
