// E1 -- Fig. 1: Maximum aggressor tests for victim Yi.
//
// Prints the MA vector pairs for every victim/fault type of the 8-bit data
// bus and the 12-bit address bus, then times MA-test generation.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "util/table.h"
#include "xtalk/maf.h"

using namespace xtest;

namespace {

void print_ma_table(unsigned width, const char* name) {
  util::Table t({"victim", "fault", "v1", "v2", "faulty v2"});
  for (unsigned v = 0; v < width; ++v) {
    for (xtalk::MafType type : xtalk::kAllMafTypes) {
      const xtalk::MafFault f{v, type, xtalk::BusDirection::kCpuToCore};
      const xtalk::VectorPair p = xtalk::ma_test(width, f);
      t.add_row({std::to_string(v + 1), xtalk::to_string(type),
                 p.v1.to_page_offset(), p.v2.to_page_offset(),
                 xtalk::faulty_v2(f, p).to_page_offset()});
    }
  }
  std::printf("\nMA tests, %s (%u wires, %zu faults):\n%s", name, width,
              static_cast<std::size_t>(4) * width, t.render().c_str());
}

void BM_MaTestGeneration(benchmark::State& state) {
  const unsigned width = static_cast<unsigned>(state.range(0));
  const auto faults = xtalk::enumerate_mafs(width, true);
  for (auto _ : state) {
    for (const auto& f : faults)
      benchmark::DoNotOptimize(xtalk::ma_test(width, f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()));
}
BENCHMARK(BM_MaTestGeneration)->Arg(8)->Arg(12)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return bench::scenario_main(
      argc, argv, "E1: MA test vector pairs",
      "Fig. 1 (maximum aggressor tests for victim Yi)",
      spec::builtin_scenario("paper-baseline"), [] {
        print_ma_table(8, "data bus");
        print_ma_table(12, "address bus");
        std::printf("\nFault counts: data bus bidirectional = %zu (paper: "
                    "64), address bus = %zu (paper: 48)\n",
                    xtalk::enumerate_mafs(8, true).size(),
                    xtalk::enumerate_mafs(12, false).size());
      });
}
