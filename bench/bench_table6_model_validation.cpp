// E11 (extension) -- validation of the analytical crosstalk error model
// against the numerical coupled-RC transient reference.
//
// The MAF theory (and the paper's Fig. 10 defect criterion) rests on
// glitch height and delay growing monotonically with net coupling C.  This
// bench sweeps C through the threshold and compares, per fault type:
//   * analytical prediction (charge-share / Elmore-Miller closed forms),
//   * transient measurement (trapezoidal integration of the full network),
// and reports where each model places the detectability boundary.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "util/table.h"
#include "xtalk/defect.h"
#include "xtalk/transient.h"

using namespace xtest;
using namespace xtest::xtalk;

namespace {

RcNetwork scaled(const RcNetwork& nom, unsigned victim, double target) {
  RcNetwork net = nom;
  const double f = target / nom.net_coupling(victim);
  for (unsigned j = 0; j < net.width(); ++j)
    if (j != victim) net.scale_coupling(victim, j, f);
  return net;
}

void print_sweep() {
  BusGeometry g;
  g.width = 8;
  const RcNetwork nom(g);
  const double cth = recommended_cth(nom, 1.6);
  const unsigned victim = 4;
  const TransientSimulator sim;
  const CrosstalkErrorModel analytic(ErrorModelConfig::calibrated(nom, cth));

  const VectorPair gp = ma_test(
      8, {victim, MafType::kPositiveGlitch, BusDirection::kCoreToCpu});
  const VectorPair dr = ma_test(
      8, {victim, MafType::kRisingDelay, BusDirection::kCoreToCpu});

  util::Table t({"C / Cth", "glitch analytic (V)", "glitch transient (V)",
                 "delay analytic (ns)", "delay transient (ns)"});
  for (double r = 0.6; r <= 2.01; r += 0.2) {
    const RcNetwork net = scaled(nom, victim, r * cth);
    t.add_row({util::Table::num(r, 1),
               util::Table::num(analytic.glitch_amplitude(net, gp, victim), 3),
               util::Table::num(
                   sim.simulate(net, gp)[victim].peak_excursion_v, 3),
               util::Table::num(analytic.transition_delay(net, dr, victim), 3),
               util::Table::num(
                   sim.simulate(net, dr)[victim].crossing_time_ns, 3)});
  }
  std::printf("\nMA excitation sweep on data-bus wire 5 "
              "(Cth = %.1f fF):\n%s", cth, t.render().c_str());

  // Where does each model put the detectability boundary?
  const ErrorModelConfig a = ErrorModelConfig::calibrated(nom, cth);
  const ErrorModelConfig tr = transient_calibrated(nom, cth, sim);
  std::printf("\nthresholds at the Cth boundary:\n");
  std::printf("  glitch: analytic %.3f V   transient %.3f V "
              "(closed form is the conservative charge-share bound)\n",
              a.glitch_threshold_v, tr.glitch_threshold_v);
  std::printf("  delay:  analytic %.3f ns  transient %.3f ns "
              "(Elmore-Miller vs measured 50%% crossing)\n",
              a.delay_slack_ns, tr.delay_slack_ns);

  // Boundary agreement: verdicts of the two receivers across the sweep.
  int agree = 0, total = 0;
  for (double r = 0.5; r <= 2.5; r += 0.1) {
    const RcNetwork net = scaled(nom, victim, r * cth);
    for (const VectorPair& p : {gp, dr}) {
      const bool av = analytic.receive(net, p) != p.v2;
      const bool tv = sim.receive(net, p, tr) != p.v2;
      agree += av == tv;
      ++total;
    }
  }
  std::printf("\nverdict agreement across C in [0.5, 2.5] x Cth: %d/%d "
              "(each model calibrated to its own boundary)\n", agree, total);
}

void BM_TransientSimulation(benchmark::State& state) {
  BusGeometry g;
  g.width = static_cast<unsigned>(state.range(0));
  const RcNetwork nom(g);
  const TransientSimulator sim;
  const VectorPair gp = ma_test(
      g.width, {g.width / 2, MafType::kPositiveGlitch,
                BusDirection::kCoreToCpu});
  for (auto _ : state) benchmark::DoNotOptimize(sim.simulate(nom, gp));
}
BENCHMARK(BM_TransientSimulation)->Arg(8)->Arg(12)->Arg(32);

void BM_AnalyticReceive(benchmark::State& state) {
  BusGeometry g;
  g.width = static_cast<unsigned>(state.range(0));
  const RcNetwork nom(g);
  const CrosstalkErrorModel model(
      ErrorModelConfig::calibrated(nom, recommended_cth(nom, 1.6)));
  const VectorPair gp = ma_test(
      g.width, {g.width / 2, MafType::kPositiveGlitch,
                BusDirection::kCoreToCpu});
  for (auto _ : state) benchmark::DoNotOptimize(model.receive(nom, gp));
}
BENCHMARK(BM_AnalyticReceive)->Arg(8)->Arg(12)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  return bench::scenario_main(
      argc, argv,
      "E11 (extension): analytical model vs RC transient reference",
      "validates the monotonicity the MAF/Cth criterion rests on",
      spec::builtin_scenario("paper-baseline"), print_sweep);
}
