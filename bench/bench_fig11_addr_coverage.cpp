// E4 -- Fig. 11: crosstalk defect coverage of the MA test programs on the
// address bus.
//
// 1000-defect library (Gaussian capacitance variation, 3-sigma = 150%,
// acceptance at Cth), individual and cumulative coverage per interconnect.
// Expected shape (paper): side lines (1, 2, 11, 12) at/near zero
// individual coverage, center lines highest, cumulative reaching 100%.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::size_t kLibrarySize = 1000;
constexpr std::uint64_t kSeed = 20010618;

void print_fig11() {
  const soc::SystemConfig cfg;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, kLibrarySize, kSeed);
  std::printf("\ndefect library: %zu defects (from %zu candidates), "
              "sigma = %.0f%%, Cth = %.1f fF\n",
              lib.size(), lib.attempts(), lib.config().sigma_pct,
              lib.config().cth_fF);

  const util::ParallelConfig par = util::ParallelConfig::from_env();
  util::CampaignStats stats;
  const sim::PerLineCoverage cov =
      sim::per_line_coverage(cfg, soc::BusKind::kAddress, lib,
                             sbst::GeneratorConfig{}, 16, par, &stats);

  util::Table t({"line", "MA tests", "individual", "cumulative", ""});
  for (unsigned i = 0; i < 12; ++i) {
    t.add_row({std::to_string(i + 1), std::to_string(cov.tests_placed[i]),
               util::Table::pct(cov.individual[i]),
               util::Table::pct(cov.cumulative[i]),
               bench::bar(cov.individual[i] * 4.0)});
  }
  std::printf("\n%s", t.render().c_str());
  std::printf("\noverall coverage of the complete program set: %s "
              "(paper: 100%%)\n",
              util::Table::pct(cov.overall).c_str());
  std::printf("shape checks: line1=%s line12=%s (paper: 0%%), center "
              "(line 6/7) = %s/%s\n",
              util::Table::pct(cov.individual[0]).c_str(),
              util::Table::pct(cov.individual[11]).c_str(),
              util::Table::pct(cov.individual[5]).c_str(),
              util::Table::pct(cov.individual[6]).c_str());
  bench::print_campaign_stats("fig11_addr_coverage", stats);
}

void BM_DefectSimulationPerDefect(benchmark::State& state) {
  const soc::SystemConfig cfg;
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kAddress,
                                            64, kSeed);
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_detection(cfg, gen.program, soc::BusKind::kAddress, lib));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lib.size()));
}
BENCHMARK(BM_DefectSimulationPerDefect);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E4: address-bus defect coverage per MA test",
                "Fig. 11 (individual + cumulative coverage, 1000 defects)");
  print_fig11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
