// E4 -- Fig. 11: crosstalk defect coverage of the MA test programs on the
// address bus.
//
// 1000-defect library (Gaussian capacitance variation, 3-sigma = 150%,
// acceptance at Cth), individual and cumulative coverage per interconnect.
// Expected shape (paper): side lines (1, 2, 11, 12) at/near zero
// individual coverage, center lines highest, cumulative reaching 100%.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

void print_fig11() {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, scn.defect_count,
                               scn.seed, scn.sigma_pct);
  std::printf("\ndefect library: %zu defects (from %zu candidates), "
              "sigma = %.0f%%, Cth = %.1f fF\n",
              lib.size(), lib.attempts(), lib.config().sigma_pct,
              lib.config().cth_fF);

  const util::ParallelConfig par{scn.threads};
  util::CampaignStats stats;
  const sim::PerLineCoverage cov =
      sim::per_line_coverage(cfg, soc::BusKind::kAddress, lib, scn.program,
                             scn.cycle_factor, par, &stats);

  util::Table t({"line", "MA tests", "individual", "cumulative", ""});
  for (unsigned i = 0; i < 12; ++i) {
    t.add_row({std::to_string(i + 1), std::to_string(cov.tests_placed[i]),
               util::Table::pct(cov.individual[i]),
               util::Table::pct(cov.cumulative[i]),
               bench::bar(cov.individual[i] * 4.0)});
  }
  std::printf("\n%s", t.render().c_str());
  std::printf("\noverall coverage of the complete program set: %s "
              "(paper: 100%%)\n",
              util::Table::pct(cov.overall).c_str());
  std::printf("shape checks: line1=%s line12=%s (paper: 0%%), center "
              "(line 6/7) = %s/%s\n",
              util::Table::pct(cov.individual[0]).c_str(),
              util::Table::pct(cov.individual[11]).c_str(),
              util::Table::pct(cov.individual[5]).c_str(),
              util::Table::pct(cov.individual[6]).c_str());
  bench::print_campaign_stats("fig11_addr_coverage", stats);
}

void BM_DefectSimulationPerDefect(benchmark::State& state) {
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kAddress,
                                            64, kSeed);
  const auto gen =
      sbst::TestProgramGenerator(bench::active_spec().program).generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::run_detection(cfg, gen.program, soc::BusKind::kAddress, lib));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lib.size()));
}
BENCHMARK(BM_DefectSimulationPerDefect);

}  // namespace

int main(int argc, char** argv) {
  spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
  def.defect_count = 1000;  // the paper's full Fig. 11 library
  return bench::scenario_main(
      argc, argv, "E4: address-bus defect coverage per MA test",
      "Fig. 11 (individual + cumulative coverage, 1000 defects)", def,
      print_fig11);
}
