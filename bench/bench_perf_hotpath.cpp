// Perf baseline for the hot-path overhaul: cached bus-transition
// evaluation, the precomputed fast receive path, and gold-run reuse.
//
// Emits BENCH_PERF.json (in the working directory) with:
//   * repeated-transfer throughput, transition cache on vs off, and the
//     resulting speedup (the acceptance gate is >= 3x on this microbench);
//   * single-call receive latency, fast BusEvaluator vs the reference
//     CrosstalkErrorModel;
//   * campaign wall time and throughput at 1 and 4 threads (reference
//     execution tier, comparable with the historical trajectory), plus the
//     same single-thread campaign on the pre-decoded tier and the
//     resulting exec_tier_speedup.  Every campaign point starts from cold
//     process-wide memos (gold snapshots, defect-run outcomes, pooled
//     simulators) and times five identical passes, so the reference
//     numbers are five cold passes while the decoded numbers blend one
//     cold pass with the warm reruns its memos exist for -- the
//     repeated-campaign shape of per-line sweeps, session sweeps and
//     checkpoint resumes.
//
// All timed paths are bitwise-equivalent to the reference evaluation
// (tests/test_fastpath.cpp), so these numbers measure pure speed.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sbst/generator.h"
#include "sim/campaign.h"
#include "sim/gold_cache.h"
#include "sim/online.h"
#include "sim/system_pool.h"
#include "soc/bus.h"
#include "soc/system.h"
#include "util/parallel.h"
#include "xtalk/defect.h"
#include "xtalk/error_model.h"
#include "xtalk/fast_model.h"

using namespace xtest;

namespace {

struct Timed {
  double seconds = 0.0;
  std::uint64_t calls = 0;

  double per_call_ns() const {
    return calls > 0 ? seconds * 1e9 / static_cast<double>(calls) : 0.0;
  }
  double per_sec() const {
    return seconds > 0.0 ? static_cast<double>(calls) / seconds : 0.0;
  }
};

/// Repeats `body` (which performs `batch_calls` calls) until `min_seconds`
/// of wall clock have elapsed.
template <typename Body>
Timed measure(double min_seconds, std::uint64_t batch_calls, Body&& body) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  Timed t;
  do {
    body();
    t.calls += batch_calls;
    t.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  } while (t.seconds < min_seconds);
  return t;
}

/// Fetch-loop style traffic: a short cyclic address sequence, exactly the
/// shape that dominates a self-test program (the same transitions repeat
/// thousands of times per run).
std::vector<util::BusWord> fetch_sequence(unsigned width) {
  std::vector<util::BusWord> seq;
  for (unsigned i = 0; i < 16; ++i)
    seq.emplace_back(width, (0x100u + i * 37u) & util::BusWord::mask(width));
  return seq;
}

double transfers_per_sec(const xtalk::BusEvaluator& eval, bool use_cache) {
  soc::TristateBus bus(soc::BusKind::kAddress, eval.width());
  xtalk::TransitionCache cache(eval.width());
  xtalk::TransitionCache* cache_ptr = use_cache ? &cache : nullptr;
  const std::vector<util::BusWord> seq = fetch_sequence(eval.width());
  std::uint64_t sink = 0;
  const Timed t = measure(0.25, seq.size() * 64, [&] {
    for (int rep = 0; rep < 64; ++rep)
      for (const util::BusWord& w : seq)
        sink ^= bus.transfer(w, &eval, cache_ptr).bits();
  });
  benchmark::DoNotOptimize(sink);
  return t.per_sec();
}

double receive_ns_fast(const xtalk::BusEvaluator& eval,
                       const std::vector<xtalk::VectorPair>& pairs) {
  std::uint64_t sink = 0;
  const Timed t = measure(0.25, pairs.size(), [&] {
    for (const xtalk::VectorPair& p : pairs)
      sink ^= eval.receive(p.v1.bits(), p.v2.bits());
  });
  benchmark::DoNotOptimize(sink);
  return t.per_call_ns();
}

double receive_ns_reference(const xtalk::RcNetwork& net,
                            const xtalk::CrosstalkErrorModel& model,
                            const std::vector<xtalk::VectorPair>& pairs) {
  std::uint64_t sink = 0;
  const Timed t = measure(0.25, pairs.size(), [&] {
    for (const xtalk::VectorPair& p : pairs)
      sink ^= model.receive(net, p).bits();
  });
  benchmark::DoNotOptimize(sink);
  return t.per_call_ns();
}

struct CampaignPoint {
  double wall_seconds = 0.0;
  double defects_per_second = 0.0;
  double cache_hit_rate = 0.0;
  std::size_t gold_reuses = 0;
  std::size_t run_reuses = 0;
};

/// Runs the same single-program campaign five times from cold
/// process-wide state and reports the accumulated stats.  Pass 1 pays
/// full construction and simulation; passes 2-3 reuse whatever the tier
/// is allowed to keep (gold snapshots everywhere; pooled simulators and
/// memoed defect runs on accelerated tiers only), exactly like per-line
/// sweeps and resumed sessions rerun the same library.  The batch screen
/// is off so every tier simulates the identical per-defect workload (the
/// screen is tier-independent and has its own bench points below).  The
/// tier is pinned explicitly so the historical threads1/threads4 points
/// keep measuring the reference interpreter while the decoded point
/// measures the pre-decoded tier on the same workload.
CampaignPoint campaign_point(unsigned threads, cpu::ExecTier tier) {
  sim::GoldRunCache::global().clear();
  sim::DefectRunCache::global().clear();
  sim::SystemPool::global().clear();
  soc::SystemConfig cfg = bench::active_spec().system;
  cfg.exec_tier = tier;
  const auto prog =
      sbst::TestProgramGenerator(bench::active_spec().program).generate();
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kAddress, 48,
                                            bench::active_spec().seed);
  util::CampaignStats stats;
  sim::CampaignOptions opts;
  opts.parallel.threads = threads;
  opts.stats = &stats;
  opts.batched = false;
  for (int pass = 0; pass < 5; ++pass)
    sim::run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, opts);
  return {stats.wall_seconds, stats.defects_per_second(),
          stats.cache_hit_rate(), stats.gold_reuses, stats.run_reuses};
}

struct BatchPoint {
  double defects_per_second = 0.0;
  std::size_t batch_screened = 0;
  double batch_fill = 0.0;
};

/// One serial multi-session campaign with the transition-major screen on
/// or off, on the slow-tester electricals (clock period scaled 3x):
/// marginal delay defects diverge in at most one session there, so most
/// (defect, session) slots screen clean -- the workload the batched path
/// exists for.  Verdicts are bitwise identical either way; the two points
/// measure pure speed.  Pinned to the reference tier: the screen's value
/// is replacing *slow* per-defect simulations with a vectorized
/// transition sweep, and the reference interpreter is where simulations
/// are slow -- on accelerated tiers the pooled memos already answer
/// repeat runs faster than the screen can score them.
BatchPoint batch_point(bool batched) {
  // Cold memos, like campaign_point, so the two points stay comparable.
  sim::GoldRunCache::global().clear();
  sim::DefectRunCache::global().clear();
  sim::SystemPool::global().clear();
  spec::ScenarioSpec s = spec::builtin_scenario("slow-tester");
  s.system.exec_tier = cpu::ExecTier::kReference;
  s.batched = batched;
  s.defect_count = 96;
  const auto sessions = s.make_sessions();
  const auto lib = s.make_library();
  util::CampaignStats stats;
  sim::CampaignOptions opts = s.campaign_options(&stats);
  opts.parallel.threads = 1;
  sim::run_detection_sessions(s.system, sessions, s.bus, lib, opts);
  return {stats.defects_per_second(), stats.batch_screened,
          stats.batch_fill()};
}

struct OnlinePoint {
  double defects_per_second = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t latency_cycles = 0;
  std::size_t latency_samples = 0;
  std::uint64_t deadlines_late = 0;
  std::uint64_t deadlines_missed = 0;
};

/// One serial on-line campaign on the online-baseline scenario (32
/// defects): the wall cost of interleaving self-test slices with the
/// functional workload, plus the detection-latency aggregate the perf
/// gate tracks (the off-line flow has no such number).
OnlinePoint online_point() {
  sim::GoldRunCache::global().clear();
  sim::DefectRunCache::global().clear();
  sim::SystemPool::global().clear();
  spec::ScenarioSpec s = spec::builtin_scenario("online-baseline");
  s.defect_count = 32;
  const auto sessions = s.make_sessions();
  const auto lib = s.make_library();
  util::CampaignStats stats;
  sim::CampaignOptions opts = s.campaign_options(&stats);
  opts.parallel.threads = 1;
  sim::run_online_detection_sessions(s.system, s.online, sessions, s.bus,
                                     lib, opts);
  return {stats.defects_per_second(),  stats.online_rounds,
          stats.online_detection_latency_cycles, stats.online_latency_samples,
          stats.online_deadlines_late, stats.online_deadlines_missed};
}

void print_perf_baseline() {
  const xtalk::BusGeometry g = bench::active_spec().system.address_geometry;
  const xtalk::RcNetwork nominal(g);
  const xtalk::ErrorModelConfig thresholds = xtalk::ErrorModelConfig::calibrated(
      nominal, xtalk::recommended_cth(nominal));
  // The microbenches run on a *defective* bus: the calibrated nominal bus
  // is provably excursion-free, so its evaluator answers with an identity
  // early-exit that touches neither the cache nor the analytic path --
  // only a perturbed network still exercises what these points measure.
  xtalk::DefectConfig dc;
  dc.cth_fF = xtalk::recommended_cth(nominal);
  dc.count = 1;
  const xtalk::RcNetwork net =
      xtalk::DefectLibrary::generate(nominal, dc)[0].apply(nominal);
  const xtalk::BusEvaluator eval(net, thresholds);
  const xtalk::CrosstalkErrorModel reference(thresholds);

  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::uint64_t> word(0,
                                                    util::BusWord::mask(12));
  std::vector<xtalk::VectorPair> pairs;
  for (int i = 0; i < 1024; ++i)
    pairs.push_back({util::BusWord(12, word(rng)),
                     util::BusWord(12, word(rng))});

  const double xfer_on = transfers_per_sec(eval, true);
  const double xfer_off = transfers_per_sec(eval, false);
  const double xfer_speedup = xfer_off > 0.0 ? xfer_on / xfer_off : 0.0;
  const double ns_fast = receive_ns_fast(eval, pairs);
  const double ns_ref = receive_ns_reference(net, reference, pairs);
  const double recv_speedup = ns_fast > 0.0 ? ns_ref / ns_fast : 0.0;

  std::printf("\nrepeated transfers (12-wire defective bus, 16-word fetch "
              "loop):\n"
              "  cache on : %12.0f transfers/sec\n"
              "  cache off: %12.0f transfers/sec\n"
              "  speedup  : %.2fx\n",
              xfer_on, xfer_off, xfer_speedup);
  std::printf("\nsingle receive (defective bus, random 12-wire "
              "transitions):\n"
              "  fast evaluator : %8.1f ns/call\n"
              "  reference model: %8.1f ns/call\n"
              "  speedup        : %.2fx\n",
              ns_fast, ns_ref, recv_speedup);

  const CampaignPoint t1 = campaign_point(1, cpu::ExecTier::kReference);
  const CampaignPoint t4 = campaign_point(4, cpu::ExecTier::kReference);
  const CampaignPoint dec = campaign_point(1, cpu::ExecTier::kDecoded);
  const double tier_speedup = t1.defects_per_second > 0.0
                                  ? dec.defects_per_second /
                                        t1.defects_per_second
                                  : 0.0;
  std::printf("\ncampaign (48 address defects, 5 passes from cold memos, "
              "batch screen off):\n"
              "  threads=1: %.3f s wall, %.0f defects/sec, hit rate %.1f%%, "
              "%zu gold reuse(s)\n"
              "  threads=4: %.3f s wall, %.0f defects/sec, hit rate %.1f%%, "
              "%zu gold reuse(s)\n"
              "  decoded  : %.3f s wall, %.0f defects/sec, %zu run reuse(s) "
              "(%.2fx over the reference tier at threads=1)\n",
              t1.wall_seconds, t1.defects_per_second,
              100.0 * t1.cache_hit_rate, t1.gold_reuses, t4.wall_seconds,
              t4.defects_per_second, 100.0 * t4.cache_hit_rate,
              t4.gold_reuses, dec.wall_seconds, dec.defects_per_second,
              dec.run_reuses, tier_speedup);

  const BatchPoint unbatched = batch_point(false);
  const BatchPoint batched = batch_point(true);
  const double batch_speedup =
      unbatched.defects_per_second > 0.0
          ? batched.defects_per_second / unbatched.defects_per_second
          : 0.0;
  std::printf("\ncampaign, transition-major batch screen (96 slow-tester "
              "defects, all sessions, serial, reference tier):\n"
              "  batch off: %8.0f defects/sec\n"
              "  batch on : %8.0f defects/sec (%zu screened, fill %.1f%%)\n"
              "  speedup  : %.2fx\n",
              unbatched.defects_per_second, batched.defects_per_second,
              batched.batch_screened, 100.0 * batched.batch_fill,
              batch_speedup);

  const OnlinePoint online = online_point();
  std::printf("\non-line campaign (32 defects, online-baseline schedule, "
              "serial):\n"
              "  %8.0f defects/sec, %llu rounds\n"
              "  detection latency: %llu cycles over %zu sample(s)\n"
              "  deadlines: %llu late, %llu missed\n",
              online.defects_per_second,
              static_cast<unsigned long long>(online.rounds),
              static_cast<unsigned long long>(online.latency_cycles),
              online.latency_samples,
              static_cast<unsigned long long>(online.deadlines_late),
              static_cast<unsigned long long>(online.deadlines_missed));

  char json[2048];
  std::snprintf(
      json, sizeof json,
      "{\"bench\":\"perf_hotpath\","
      "\"transfers_per_sec_cache_on\":%.0f,"
      "\"transfers_per_sec_cache_off\":%.0f,"
      "\"repeated_transfer_speedup\":%.3f,"
      "\"receive_ns_fast\":%.2f,"
      "\"receive_ns_reference\":%.2f,"
      "\"receive_speedup\":%.3f,"
      "\"campaign_wall_s_threads1\":%.4f,"
      "\"campaign_wall_s_threads4\":%.4f,"
      "\"campaign_defects_per_sec_threads1\":%.1f,"
      "\"campaign_defects_per_sec_threads4\":%.1f,"
      "\"campaign_defects_per_sec_decoded\":%.1f,"
      "\"exec_tier_speedup\":%.3f,"
      "\"run_reuses\":%zu,"
      "\"cache_hit_rate\":%.4f,"
      "\"gold_reuses\":%zu,"
      "\"campaign_defects_per_sec\":%.1f,"
      "\"campaign_defects_per_sec_batched\":%.1f,"
      "\"batch_speedup\":%.3f,"
      "\"batch_screened\":%zu,"
      "\"batch_fill\":%.4f,"
      "\"online_defects_per_sec\":%.1f,"
      "\"online_rounds\":%llu,"
      "\"online_detection_latency_cycles\":%llu,"
      "\"online_latency_samples\":%zu,"
      "\"online_deadlines_late\":%llu,"
      "\"online_deadlines_missed\":%llu,"
      "\"threads\":[1,4],"
      "\"hardware_concurrency\":%u,"
      "\"cpus_detected\":%u,"
      "\"build_type\":\"%s\"}",
      xfer_on, xfer_off, xfer_speedup, ns_fast, ns_ref, recv_speedup,
      t1.wall_seconds, t4.wall_seconds, t1.defects_per_second,
      t4.defects_per_second, dec.defects_per_second, tier_speedup,
      dec.run_reuses, t1.cache_hit_rate, t1.gold_reuses + t4.gold_reuses,
      unbatched.defects_per_second, batched.defects_per_second, batch_speedup,
      batched.batch_screened, batched.batch_fill,
      online.defects_per_second,
      static_cast<unsigned long long>(online.rounds),
      static_cast<unsigned long long>(online.latency_cycles),
      online.latency_samples,
      static_cast<unsigned long long>(online.deadlines_late),
      static_cast<unsigned long long>(online.deadlines_missed),
      std::thread::hardware_concurrency(),
      std::thread::hardware_concurrency(), util::build_type());
  std::printf("\n%s\n", json);

  std::FILE* out = std::fopen("BENCH_PERF.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "%s\n", json);
    std::fclose(out);
    std::printf("wrote BENCH_PERF.json\n");
  } else {
    std::fprintf(stderr, "warning: cannot write BENCH_PERF.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  return bench::scenario_main(
      argc, argv, "Perf: hot-path baseline",
      "simulator throughput (no paper figure; perf trajectory)",
      spec::builtin_scenario("paper-baseline"), print_perf_baseline,
      /*run_benchmarks=*/false);
}
