// E8 -- ablation of design decision D1 (DESIGN.md): whole-program fault
// excitation vs isolated per-pair application.
//
// Section 5: "with this high-level crosstalk error model, we are able to
// take into account the effect of fault masking when evaluating defect
// coverage, since a crosstalk defect on the bus is indeed activated many
// times as the CPU executes the test program."
//
// The ablation compares, over the same library:
//   isolated:       each placed MA pair applied directly at the bus (no
//                   surrounding program) -- the classic pair-by-pair view;
//   whole-program:  the self-test program executed under the defect, all
//                   incidental activations included.
// Differences in either direction are masking (isolated detects, program
// misses) or serendipity (program-only detection through incidental
// transitions / control-flow derailment).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hwbist/bist.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

void print_ablation(soc::BusKind bus, util::CampaignStats& stats) {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const soc::System sys(cfg);
  const unsigned width =
      bus == soc::BusKind::kAddress ? cpu::kAddrBits : cpu::kDataBits;
  const auto lib = sim::make_defect_library(cfg, bus, scn.defect_count,
                                            scn.seed, scn.sigma_pct);
  const auto& nominal = bus == soc::BusKind::kAddress
                            ? sys.nominal_address_network()
                            : sys.nominal_data_network();
  const auto& model = bus == soc::BusKind::kAddress ? sys.address_model()
                                                    : sys.data_model();

  const auto sessions = scn.make_sessions();

  // Isolated application of exactly the placed pairs.
  std::vector<xtalk::MafFault> placed;
  for (const auto& s : sessions)
    for (const auto& t : s.program.tests)
      if (t.bus == bus) placed.push_back(t.fault);

  std::vector<bool> isolated(lib.size(), false);
  for (std::size_t i = 0; i < lib.size(); ++i) {
    const xtalk::RcNetwork net = lib[i].apply(nominal);
    for (const auto& f : placed)
      if (model.corrupts(net, xtalk::ma_test(width, f))) {
        isolated[i] = true;
        break;
      }
  }

  const std::vector<sim::Verdict> verdicts = sim::run_detection_sessions(
      cfg, sessions, bus, lib, scn.cycle_factor,
      util::ParallelConfig{scn.threads}, &stats);
  std::vector<bool> program(lib.size(), false);
  for (std::size_t i = 0; i < lib.size(); ++i)
    program[i] = sim::is_detected(verdicts[i]);

  std::size_t both = 0, only_isolated = 0, only_program = 0, neither = 0;
  for (std::size_t i = 0; i < lib.size(); ++i) {
    both += isolated[i] && program[i];
    only_isolated += isolated[i] && !program[i];  // masked in the program
    only_program += !isolated[i] && program[i];   // incidental detection
    neither += !isolated[i] && !program[i];
  }

  util::Table t({"bus", "both", "isolated-only (masked)",
                 "program-only (incidental)", "neither", "isolated cov",
                 "program cov"});
  t.add_row({soc::to_string(bus), std::to_string(both),
             std::to_string(only_isolated), std::to_string(only_program),
             std::to_string(neither),
             util::Table::pct(sim::coverage(isolated)),
             util::Table::pct(sim::coverage(program))});
  std::printf("\n%s", t.render().c_str());
}

void BM_WholeProgramRun(benchmark::State& state) {
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 32, kSeed);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim::run_detection(cfg, gen.program, soc::BusKind::kAddress, lib));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lib.size()));
}
BENCHMARK(BM_WholeProgramRun);

}  // namespace

int main(int argc, char** argv) {
  spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
  def.defect_count = 500;
  return bench::scenario_main(
      argc, argv, "E8: fault-masking ablation",
      "Section 5 (whole-program excitation vs isolated pairs)", def, [] {
        util::CampaignStats stats;
        print_ablation(soc::BusKind::kAddress, stats);
        print_ablation(soc::BusKind::kData, stats);
        std::printf("\nExpected: program coverage >= isolated coverage on "
                    "the placed pairs (incidental activations and derailment "
                    "add detections; masking, if any, shows in "
                    "isolated-only).\n");
        bench::print_campaign_stats("table4_masking_ablation", stats);
      });
}
