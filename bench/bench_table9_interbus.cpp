// E14 (extension) -- inter-bus coupling defects.
//
// Section 5: "In this paper, we only consider crosstalk within the same
// bus when injecting defects.  It is possible to inject defects causing
// crosstalk between two busses by treating them as one bus."  We model the
// other bus's wires as quiet capacitive load: a cross-bus coupling defect
// never injects charge (the neighbour is quiet during this bus's
// transfers) but loads the victim, so it manifests purely as *delay* --
// glitch amplitudes actually shrink.  The experiment shows the delay MA
// tests carry this entire defect class and the glitch tests contribute
// nothing, an attribution invisible in the paper's single-bus libraries.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/campaign.h"
#include "util/rng.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

struct LoadDefect {
  unsigned wire;
  double extra_fF;
};

/// Gaussian cross-bus load defects, accepted when delay-detectable
/// (L > 2*(Cth - Cnet(wire)), the MA-delay criterion).
std::vector<LoadDefect> make_load_library(const soc::System& sys) {
  util::Rng rng(bench::active_spec().seed);
  std::vector<LoadDefect> out;
  const auto& nom = sys.nominal_address_network();
  while (out.size() < bench::active_spec().defect_count) {
    const unsigned wire = static_cast<unsigned>(rng.below(12));
    const double threshold =
        2.0 * (sys.address_cth() - nom.net_coupling(wire));
    const double load = std::abs(rng.gaussian(1.5 * threshold));
    if (load > threshold) out.push_back({wire, load});
  }
  return out;
}

std::vector<bool> detect_with_faults(
    const std::vector<LoadDefect>& defects,
    const std::optional<std::vector<xtalk::MafFault>>& addr_faults) {
  sbst::GeneratorConfig cfg;
  cfg.include_data_bus = false;
  cfg.address_faults = addr_faults;
  const auto sessions = sbst::TestProgramGenerator::generate_sessions(cfg);

  soc::System sys(bench::active_spec().system);
  std::vector<bool> detected(defects.size(), false);
  for (const auto& s : sessions) {
    if (s.program.tests.empty()) continue;
    sys.clear_defects();
    const auto gold = sim::run_and_capture(sys, s.program, 1'000'000);
    for (std::size_t i = 0; i < defects.size(); ++i) {
      xtalk::RcNetwork bad = sys.nominal_address_network();
      bad.add_ground_load(defects[i].wire, defects[i].extra_fF);
      sys.set_address_network(bad);
      const auto faulty =
          sim::run_and_capture(sys, s.program, gold.cycles * 16);
      detected[i] = detected[i] || !faulty.matches(gold);
      sys.clear_defects();
    }
  }
  return detected;
}

void print_interbus() {
  const soc::System sys{bench::active_spec().system};
  const auto defects = make_load_library(sys);
  std::printf("\n%zu cross-bus load defects on the address bus "
              "(delay-detectable by construction)\n", defects.size());

  std::vector<xtalk::MafFault> delays, glitches;
  for (const auto& f : xtalk::enumerate_mafs(12, false))
    (xtalk::is_glitch(f.type) ? glitches : delays).push_back(f);

  // Direct MA-pattern application (no surrounding program), per class.
  auto direct = [&](const std::vector<xtalk::MafFault>& faults) {
    std::size_t hit = 0;
    for (const auto& d : defects) {
      xtalk::RcNetwork bad = sys.nominal_address_network();
      bad.add_ground_load(d.wire, d.extra_fF);
      bool det = false;
      for (const auto& f : faults)
        det = det || sys.address_model().corrupts(bad, xtalk::ma_test(12, f));
      hit += det;
    }
    return static_cast<double>(hit) / static_cast<double>(defects.size());
  };

  util::Table t({"test set", "as SBST program", "MA patterns alone"});
  t.add_row({"all 48 address MA tests",
             util::Table::pct(sim::coverage(
                 detect_with_faults(defects, std::nullopt))),
             util::Table::pct(direct(xtalk::enumerate_mafs(12, false)))});
  t.add_row({"delay tests only (dr/df)",
             util::Table::pct(
                 sim::coverage(detect_with_faults(defects, delays))),
             util::Table::pct(direct(delays))});
  t.add_row({"glitch tests only (gp/gn)",
             util::Table::pct(
                 sim::coverage(detect_with_faults(defects, glitches))),
             util::Table::pct(direct(glitches))});
  std::printf("\n%s", t.render().c_str());
  std::printf("\nExpected: the delay MA patterns carry the class (glitch "
              "patterns alone catch 0%% -- quiet load shrinks glitches).  "
              "The glitch-test *programs* still detect most defects "
              "because their own fetch traffic incidentally excites the "
              "delay effect: whole-program realism at work.\n");
}

void BM_LoadDefectDetection(benchmark::State& state) {
  const soc::System sys{bench::active_spec().system};
  const auto defects = make_load_library(sys);
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  soc::System dut;
  const auto gold = sim::run_and_capture(dut, gen.program, 1'000'000);
  std::size_t i = 0;
  for (auto _ : state) {
    xtalk::RcNetwork bad = dut.nominal_address_network();
    bad.add_ground_load(defects[i % defects.size()].wire,
                        defects[i % defects.size()].extra_fF);
    dut.set_address_network(bad);
    benchmark::DoNotOptimize(
        sim::run_and_capture(dut, gen.program, gold.cycles * 16));
    dut.clear_defects();
    ++i;
  }
}
BENCHMARK(BM_LoadDefectDetection);

}  // namespace

int main(int argc, char** argv) {
  return bench::scenario_main(
      argc, argv, "E14 (extension): inter-bus coupling defects",
      "Section 5's 'treating them as one bus' remark",
      spec::builtin_scenario("paper-baseline"), print_interbus);
}
