// E10 -- Section 5's closing observation about the unapplied tests:
//
//   "Since the MA tests are necessary for detecting all detectable
//    defects, in theory, some of the defects can only be detected by the
//    missing tests.  However, using our defect library, the defect
//    coverage of the test program is 100% ... This is because a large
//    overlap exists among the defect sets detected by different MA tests.
//    Of all the defects detectable by one MA test, only a tiny fraction
//    cannot be detected by any other MA tests."
//
// Quantifies that overlap: per MA test, the fraction of its detected
// defects that no other MA test detects (the "unique" fraction), and the
// library-wide impact of the never-placed tests.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "hwbist/bist.h"
#include "sim/campaign.h"
#include "util/table.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kSeed = 20010618;

void print_overlap() {
  const spec::ScenarioSpec& scn = bench::active_spec();
  const soc::SystemConfig& cfg = scn.system;
  const soc::System sys(cfg);
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, scn.defect_count,
                               scn.seed, scn.sigma_pct);
  const auto& nominal = sys.nominal_address_network();
  const auto& model = sys.address_model();
  const auto faults = xtalk::enumerate_mafs(cpu::kAddrBits, false);

  // Detection matrix: per MA test, per defect.
  std::vector<std::vector<bool>> det(faults.size(),
                                     std::vector<bool>(lib.size(), false));
  for (std::size_t d = 0; d < lib.size(); ++d) {
    const xtalk::RcNetwork net = lib[d].apply(nominal);
    for (std::size_t f = 0; f < faults.size(); ++f)
      det[f][d] = model.corrupts(net, xtalk::ma_test(cpu::kAddrBits,
                                                     faults[f]));
  }

  // Unique fraction per test.
  double worst_unique = 0.0;
  std::size_t total_detected = 0, total_unique = 0;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    std::size_t mine = 0, unique = 0;
    for (std::size_t d = 0; d < lib.size(); ++d) {
      if (!det[f][d]) continue;
      ++mine;
      bool other = false;
      for (std::size_t g = 0; g < faults.size() && !other; ++g)
        other = g != f && det[g][d];
      unique += !other;
    }
    total_detected += mine;
    total_unique += unique;
    if (mine)
      worst_unique = std::max(
          worst_unique, static_cast<double>(unique) / static_cast<double>(mine));
  }
  std::printf("\nOverlap among the 48 address-bus MA tests over %zu "
              "defects:\n", lib.size());
  std::printf("  detections summed over tests: %zu;  unique-to-one-test: "
              "%zu (%.2f%%)\n",
              total_detected, total_unique,
              total_detected ? 100.0 * static_cast<double>(total_unique) /
                                   static_cast<double>(total_detected)
                             : 0.0);
  std::printf("  worst per-test unique fraction: %.2f%% "
              "(paper: 'only a tiny fraction')\n", 100.0 * worst_unique);

  // Impact of the never-placed tests.
  const auto sessions = scn.make_sessions();
  std::set<std::string> placed;
  for (const auto& s : sessions)
    for (const auto& t : s.program.tests)
      if (t.bus == soc::BusKind::kAddress) placed.insert(t.fault.label());

  util::Table t({"never-placed test", "defects it detects",
                 "detectable only by it"});
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (placed.count(faults[f].label())) continue;
    std::size_t mine = 0, only = 0;
    for (std::size_t d = 0; d < lib.size(); ++d) {
      if (!det[f][d]) continue;
      ++mine;
      bool covered = false;
      for (std::size_t g = 0; g < faults.size() && !covered; ++g)
        covered = g != f && placed.count(faults[g].label()) && det[g][d];
      only += !covered;
    }
    t.add_row({faults[f].label(), std::to_string(mine),
               std::to_string(only)});
  }
  std::printf("\n%s", t.render().c_str());
  std::printf("\nExpected: the missing tests' defects are (almost) all "
              "covered by neighbours' tests -> 100%% program coverage "
              "despite the conflicts.\n");
}

void BM_DetectionMatrix(benchmark::State& state) {
  const soc::SystemConfig& cfg = bench::active_spec().system;
  const soc::System sys(cfg);
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 100, kSeed);
  const auto faults = xtalk::enumerate_mafs(cpu::kAddrBits, false);
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& defect : lib.defects()) {
      const xtalk::RcNetwork net = defect.apply(sys.nominal_address_network());
      for (const auto& f : faults)
        hits += sys.address_model().corrupts(net,
                                             xtalk::ma_test(cpu::kAddrBits, f));
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lib.size() *
                                                    faults.size()));
}
BENCHMARK(BM_DetectionMatrix);

}  // namespace

int main(int argc, char** argv) {
  spec::ScenarioSpec def = spec::builtin_scenario("paper-baseline");
  def.defect_count = 1000;
  return bench::scenario_main(argc, argv,
                              "E10: missing tests and MA-test overlap",
                              "Section 5 (tiny unique-detection fraction)",
                              def, print_overlap);
}
