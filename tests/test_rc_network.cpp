#include "xtalk/rc_network.h"

#include <gtest/gtest.h>

namespace xtest::xtalk {
namespace {

BusGeometry geo(unsigned width) {
  BusGeometry g;
  g.width = width;
  return g;
}

TEST(RcNetwork, NominalCouplingFromGeometry) {
  const BusGeometry g = geo(8);
  const RcNetwork net(g);
  const double c1 = g.coupling_fF_per_um * g.wire_length_um;
  EXPECT_DOUBLE_EQ(net.coupling(0, 1), c1);
  EXPECT_DOUBLE_EQ(net.coupling(3, 4), c1);
  // 1/d^2 decay.
  EXPECT_DOUBLE_EQ(net.coupling(0, 2), c1 / 4.0);
  EXPECT_DOUBLE_EQ(net.coupling(0, 4), c1 / 16.0);
}

TEST(RcNetwork, CouplingIsSymmetricWithZeroDiagonal) {
  const RcNetwork net(geo(12));
  for (unsigned i = 0; i < 12; ++i) {
    EXPECT_EQ(net.coupling(i, i), 0.0);
    for (unsigned j = 0; j < 12; ++j)
      EXPECT_DOUBLE_EQ(net.coupling(i, j), net.coupling(j, i));
  }
}

TEST(RcNetwork, GroundCapUniform) {
  const BusGeometry g = geo(8);
  const RcNetwork net(g);
  for (unsigned i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(net.ground_cap(i),
                     g.ground_fF_per_um * g.wire_length_um);
}

TEST(RcNetwork, NetCouplingPeaksAtCenterWires) {
  // The root cause of Fig. 11's shape: center wires have more neighbours,
  // hence more net coupling, hence a higher chance of becoming defective.
  const RcNetwork net(geo(12));
  const double edge = net.net_coupling(0);
  const double second = net.net_coupling(1);
  const double center = net.net_coupling(5);
  EXPECT_LT(edge, second);
  EXPECT_LT(second, center);
  EXPECT_DOUBLE_EQ(net.max_net_coupling(), net.net_coupling(5));
  // Symmetry.
  EXPECT_DOUBLE_EQ(net.net_coupling(0), net.net_coupling(11));
  EXPECT_DOUBLE_EQ(net.net_coupling(1), net.net_coupling(10));
}

TEST(RcNetwork, ScaleCouplingAffectsBothWires) {
  RcNetwork net(geo(8));
  const double before3 = net.net_coupling(3);
  const double before4 = net.net_coupling(4);
  const double c34 = net.coupling(3, 4);
  net.scale_coupling(3, 4, 2.0);
  EXPECT_DOUBLE_EQ(net.coupling(3, 4), 2.0 * c34);
  EXPECT_DOUBLE_EQ(net.coupling(4, 3), 2.0 * c34);
  EXPECT_DOUBLE_EQ(net.net_coupling(3), before3 + c34);
  EXPECT_DOUBLE_EQ(net.net_coupling(4), before4 + c34);
  // Other wires only see their own couplings to 3/4 unchanged.
  EXPECT_DOUBLE_EQ(net.net_coupling(0),
                   RcNetwork(geo(8)).net_coupling(0));
}

TEST(RcNetwork, SetCoupling) {
  RcNetwork net(geo(4));
  net.set_coupling(0, 3, 123.0);
  EXPECT_DOUBLE_EQ(net.coupling(3, 0), 123.0);
}

TEST(RcNetwork, LongerWiresCoupleMore) {
  BusGeometry a = geo(8);
  BusGeometry b = geo(8);
  b.wire_length_um = 2.0 * a.wire_length_um;
  EXPECT_DOUBLE_EQ(RcNetwork(b).coupling(0, 1),
                   2.0 * RcNetwork(a).coupling(0, 1));
}

TEST(RcNetwork, DecayExponentControlsFarCoupling) {
  BusGeometry g = geo(8);
  g.distance_decay_exponent = 1.0;
  const RcNetwork slow(g);
  g.distance_decay_exponent = 3.0;
  const RcNetwork fast(g);
  EXPECT_GT(slow.coupling(0, 4), fast.coupling(0, 4));
  EXPECT_DOUBLE_EQ(slow.coupling(0, 1), fast.coupling(0, 1));
}

class RcNetworkWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(RcNetworkWidths, MaxNetCouplingGrowsWithWidthThenSaturates) {
  const unsigned w = GetParam();
  const RcNetwork net(geo(w));
  // Every wire's net coupling is at most the theoretical two-sided sum.
  const double c1 = net.coupling(0, 1);
  for (unsigned i = 0; i < w; ++i) {
    EXPECT_GT(net.net_coupling(i), 0.0);
    EXPECT_LT(net.net_coupling(i), 2.0 * c1 * 1.6449341);  // 2 * zeta(2)
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RcNetworkWidths,
                         ::testing::Values(2u, 4u, 8u, 12u, 16u, 32u, 64u));

}  // namespace
}  // namespace xtest::xtalk
