#include "xtalk/error_model.h"

#include <gtest/gtest.h>

#include "xtalk/defect.h"

namespace xtest::xtalk {
namespace {

RcNetwork nominal(unsigned width = 8) {
  BusGeometry g;
  g.width = width;
  return RcNetwork(g);
}

/// A network whose victim wire has net coupling scaled to `target` fF by
/// uniformly scaling all of the victim's pair couplings.
RcNetwork with_net_coupling(unsigned victim, double target,
                            unsigned width = 8) {
  RcNetwork net = nominal(width);
  const double factor = target / net.net_coupling(victim);
  for (unsigned j = 0; j < width; ++j)
    if (j != victim) net.scale_coupling(victim, j, factor);
  return net;
}

struct Calibrated {
  RcNetwork nom;
  double cth;
  CrosstalkErrorModel model;

  Calibrated()
      : nom(nominal()),
        cth(recommended_cth(nom, 1.6)),
        model(ErrorModelConfig::calibrated(nom, cth)) {}
};

TEST(ErrorModel, NominalBusIsBenign) {
  // The defect-free system must never corrupt a transfer, or gold runs
  // would be meaningless.
  Calibrated c;
  for (unsigned v = 0; v < 8; ++v)
    for (MafType t : kAllMafTypes) {
      const VectorPair p = ma_test(8, {v, t, BusDirection::kCoreToCpu});
      EXPECT_FALSE(c.model.corrupts(c.nom, p)) << to_string(t) << v;
    }
}

// The calibration contract: under the MA excitation, every fault type errs
// exactly when the victim's net coupling exceeds Cth.
class CalibrationBoundary : public ::testing::TestWithParam<MafType> {};

TEST_P(CalibrationBoundary, ErrorIffNetCouplingAboveCth) {
  Calibrated c;
  const MafType t = GetParam();
  for (unsigned victim : {0u, 3u, 7u}) {
    const MafFault f{victim, t, BusDirection::kCoreToCpu};
    const VectorPair p = ma_test(8, f);

    const RcNetwork below = with_net_coupling(victim, c.cth * 0.98);
    EXPECT_FALSE(c.model.corrupts(below, p)) << to_string(t) << victim;

    const RcNetwork above = with_net_coupling(victim, c.cth * 1.02);
    EXPECT_TRUE(c.model.corrupts(above, p)) << to_string(t) << victim;
    // And the corruption is exactly the modelled fault effect.
    EXPECT_EQ(c.model.receive(above, p), faulty_v2(f, p));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, CalibrationBoundary,
                         ::testing::ValuesIn(kAllMafTypes));

TEST(ErrorModel, GlitchAmplitudeSignFollowsAggressors) {
  Calibrated c;
  // Rising aggressors inject positive charge onto a quiet victim.
  const VectorPair rising{util::BusWord(8, 0x00), util::BusWord(8, 0xFE)};
  EXPECT_GT(c.model.glitch_amplitude(c.nom, rising, 0), 0.0);
  const VectorPair falling{util::BusWord(8, 0xFF), util::BusWord(8, 0x01)};
  EXPECT_LT(c.model.glitch_amplitude(c.nom, falling, 0), 0.0);
}

TEST(ErrorModel, MixedAggressorsCancel) {
  Calibrated c;
  // Neighbours of wire 4 switching in opposite directions nearly cancel.
  const VectorPair mixed{util::BusWord(8, 0b00100000),
                         util::BusWord(8, 0b00001000)};
  const VectorPair aligned{util::BusWord(8, 0x00),
                           util::BusWord(8, 0b00101000)};
  EXPECT_LT(std::abs(c.model.glitch_amplitude(c.nom, mixed, 4)),
            std::abs(c.model.glitch_amplitude(c.nom, aligned, 4)));
}

TEST(ErrorModel, PartialExcitationIsWeaker) {
  // Fewer switching aggressors -> smaller glitch.  This is why non-MA
  // transitions during program execution only catch stronger defects.
  Calibrated c;
  const VectorPair full = ma_test(8, {4, MafType::kPositiveGlitch,
                                      BusDirection::kCoreToCpu});
  const VectorPair partial{util::BusWord(8, 0x00), util::BusWord(8, 0x03)};
  EXPECT_GT(c.model.glitch_amplitude(c.nom, full, 4),
            c.model.glitch_amplitude(c.nom, partial, 4));
}

TEST(ErrorModel, DelayMillerFactors) {
  Calibrated c;
  const unsigned v = 4;
  // Opposite-switching aggressors (MA delay test) give the largest delay,
  // quiet aggressors the middle, same-direction the smallest.
  const VectorPair opposite = ma_test(8, {v, MafType::kRisingDelay,
                                          BusDirection::kCoreToCpu});
  const VectorPair quiet{util::BusWord(8, 0x00), util::BusWord(8, 1u << v)};
  const VectorPair same{util::BusWord(8, 0x00), util::BusWord(8, 0xFF)};
  const double d_opp = c.model.transition_delay(c.nom, opposite, v);
  const double d_quiet = c.model.transition_delay(c.nom, quiet, v);
  const double d_same = c.model.transition_delay(c.nom, same, v);
  EXPECT_GT(d_opp, d_quiet);
  EXPECT_GT(d_quiet, d_same);
}

TEST(ErrorModel, GlitchMonotoneInCoupling) {
  Calibrated c;
  const VectorPair p = ma_test(8, {3, MafType::kPositiveGlitch,
                                   BusDirection::kCoreToCpu});
  double prev = 0.0;
  for (double s = 1.0; s < 3.0; s += 0.25) {
    const RcNetwork net = with_net_coupling(3, s * c.nom.net_coupling(3));
    const double amp = c.model.glitch_amplitude(net, p, 3);
    EXPECT_GT(amp, prev);
    prev = amp;
  }
}

TEST(ErrorModel, OnlyVictimWireCorrupted) {
  Calibrated c;
  const RcNetwork bad = with_net_coupling(5, c.cth * 1.5);
  const VectorPair p = ma_test(8, {5, MafType::kNegativeGlitch,
                                   BusDirection::kCoreToCpu});
  const util::BusWord got = c.model.receive(bad, p);
  EXPECT_EQ(got.hamming_distance(p.v2), 1u);
  EXPECT_NE(got.bit(5), p.v2.bit(5));
}

TEST(ErrorModel, CalibrationScalesWithGeometry) {
  // A physically different bus gets consistent thresholds: the boundary
  // property must hold for the 12-wire address bus too.
  BusGeometry g;
  g.width = 12;
  const RcNetwork nom(g);
  const double cth = recommended_cth(nom, 1.6);
  const CrosstalkErrorModel model(ErrorModelConfig::calibrated(nom, cth));
  const MafFault f{6, MafType::kFallingDelay, BusDirection::kCpuToCore};
  const VectorPair p = ma_test(12, f);
  const RcNetwork above = with_net_coupling(6, cth * 1.02, 12);
  const RcNetwork below = with_net_coupling(6, cth * 0.98, 12);
  EXPECT_TRUE(model.corrupts(above, p));
  EXPECT_FALSE(model.corrupts(below, p));
}

TEST(ErrorModel, StableBusTransferNeverCorrupts) {
  // No transition, no crosstalk.
  Calibrated c;
  const RcNetwork bad = with_net_coupling(3, c.cth * 4.0);
  const VectorPair p{util::BusWord(8, 0x5A), util::BusWord(8, 0x5A)};
  EXPECT_FALSE(c.model.corrupts(bad, p));
}

}  // namespace
}  // namespace xtest::xtalk
