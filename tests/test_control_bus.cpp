// Control-bus crosstalk: the paper's deferred "future study", implemented.

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "hwbist/bist.h"
#include "sim/campaign.h"
#include "soc/control.h"
#include "soc/system.h"

namespace xtest::soc {
namespace {

TEST(ControlWord, Encodings) {
  const util::BusWord rd = control_word(false);
  EXPECT_TRUE(rd.bit(kCtrlRd));
  EXPECT_FALSE(rd.bit(kCtrlWr));
  EXPECT_TRUE(rd.bit(kCtrlCs));
  const util::BusWord wr = control_word(true);
  EXPECT_FALSE(wr.bit(kCtrlRd));
  EXPECT_TRUE(wr.bit(kCtrlWr));
  EXPECT_TRUE(wr.bit(kCtrlCs));
}

TEST(ControlBus, NominalSystemUnaffected) {
  System sys;
  const auto prog = cpu::assemble(R"(
        lda v
        sta 0x200
        hlt
        .org 0x80
v:      .byte 0x42
  )");
  sys.load_and_reset(prog.image, prog.entry);
  const RunResult r = sys.run(1000);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(sys.memory().read(0x200), 0x42);
}

TEST(ControlBus, TraceShowsControlTransactions) {
  System sys;
  BusTrace trace;
  sys.set_trace(&trace);
  const auto prog = cpu::assemble("lda 0x80\n hlt\n .org 0x80\n .byte 1\n");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  const auto ctrl = trace.on_bus(BusKind::kControl);
  ASSERT_GE(ctrl.size(), 3u);  // one control word per bus transaction
  for (const auto& e : ctrl) {
    EXPECT_EQ(e.driven.width(), kControlBits);
    EXPECT_TRUE(e.driven.bit(kCtrlCs));
  }
}

TEST(ControlBus, WrGlitchMafNeverExcitedFunctionally) {
  // A forced gp@WR would turn reads into destructive spurious writes --
  // but its MA pair requires CS to rise, which functional traffic never
  // does, so the forced-ideal injector stays silent over a whole program.
  System sys;
  sys.set_forced_maf(ForcedMaf{
      BusKind::kControl,
      {kCtrlWr, xtalk::MafType::kPositiveGlitch,
       xtalk::BusDirection::kCpuToCore}});
  // The W->R transition (WR falls, RD rises, CS stable) is the gp@WR MA
  // pair only if CS also rises -- it never does.  fully_excites therefore
  // never fires on functional traffic:
  const auto prog = cpu::assemble(R"(
        lda v
        sta 0x200
        lda v      ; read after write: W->R control transition
        hlt
        .org 0x80
v:      .byte 0x42
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x200), 0x42);  // unharmed: never excited
}

TEST(ControlBus, InjectedDefectCausesRealErrors) {
  // A gross control-bus defect excited by partial (functional) transitions
  // must corrupt behaviour: blow up the WR wire's couplings so the W->R /
  // R->W traffic glitches or delays it.
  System sys;
  xtalk::RcNetwork bad = sys.nominal_control_network();
  for (unsigned j = 0; j < kControlBits; ++j)
    if (j != kCtrlWr) bad.scale_coupling(kCtrlWr, j, 8.0);

  const auto prog = cpu::assemble(R"(
        lda v
        sta 0x200
        lda 0x200
        sta 0x201
        hlt
        .org 0x80
v:      .byte 0x42
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  const std::uint8_t gold200 = sys.memory().read(0x200);
  const std::uint8_t gold201 = sys.memory().read(0x201);
  EXPECT_EQ(gold200, 0x42);
  EXPECT_EQ(gold201, 0x42);

  sys.set_control_network(bad);
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  const bool corrupted = sys.memory().read(0x200) != gold200 ||
                         sys.memory().read(0x201) != gold201;
  EXPECT_TRUE(corrupted);
}

TEST(ControlBus, NoControlMafIsFunctionallyExcitable) {
  // The reason the paper defers control buses: the system only ever drives
  // READ and WRITE words, and neither the R->W nor the W->R transition
  // fully excites any of the 12 control MAFs (CS never toggles, and RD/WR
  // always move in opposite directions).
  const xtalk::VectorPair rw{control_word(false), control_word(true)};
  const xtalk::VectorPair wr{control_word(true), control_word(false)};
  for (const auto& f : xtalk::enumerate_mafs(kControlBits, false)) {
    EXPECT_FALSE(xtalk::fully_excites(f, rw)) << f.label();
    EXPECT_FALSE(xtalk::fully_excites(f, wr)) << f.label();
  }
}

TEST(ControlBus, DefectLibraryGenerates) {
  const SystemConfig cfg;
  const auto lib =
      sim::make_defect_library(cfg, BusKind::kControl, 30, 77);
  EXPECT_EQ(lib.size(), 30u);
  const System sys(cfg);
  for (const auto& d : lib.defects())
    EXPECT_GT(d.apply(sys.nominal_control_network()).max_net_coupling(),
              sys.control_cth());
}

TEST(ControlBus, FunctionalCoverageThroughPartialExcitation) {
  // Even though no control MAF is fully excitable functionally, the
  // standard SBST program catches control defects through *partial*
  // excitation: physically likely defects sit on the center wire (WR),
  // whose R->W / W->R delay effect crosses threshold exactly at the
  // library's Cth.  Functional coverage is therefore high, and never
  // exceeds the full-MA-set BIST.
  const SystemConfig cfg;
  const System sys(cfg);
  const auto lib = sim::make_defect_library(cfg, BusKind::kControl, 40, 7);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  const auto det =
      sim::run_detection_sessions(cfg, sessions, BusKind::kControl, lib);
  const double cov = sim::coverage(det);
  EXPECT_GT(cov, 0.5);

  const hwbist::HardwareBist bist(kControlBits, false);
  const double bist_cov = sim::coverage(bist.run_library(
      sys.nominal_control_network(), sys.control_model(), lib));
  EXPECT_LE(cov, bist_cov);
  EXPECT_DOUBLE_EQ(bist_cov, 1.0);
}

TEST(ControlBus, SymmetricCsDefectEscapesFunctionalTraffic) {
  // The over-testing corner the full MA set covers and functional traffic
  // cannot: a *symmetric* blow-up of both CS couplings.  During R->W one
  // aggressor rises and one falls, so the injected charge on CS cancels;
  // the gp/gn MA patterns (both aggressors aligned) would catch it.
  System sys;
  xtalk::RcNetwork bad = sys.nominal_control_network();
  const double f = 1.2 * sys.control_cth() /
                   sys.nominal_control_network().net_coupling(kCtrlCs);
  bad.scale_coupling(kCtrlCs, kCtrlRd, f);
  bad.scale_coupling(kCtrlCs, kCtrlWr, f);
  ASSERT_GT(bad.net_coupling(kCtrlCs), sys.control_cth());

  // Detected by the full MA set...
  const hwbist::HardwareBist bist(kControlBits, false);
  EXPECT_TRUE(bist.detects(bad, sys.control_model()));

  // ...but invisible to functional read/write traffic.
  const auto prog = cpu::assemble(R"(
        lda v
        sta 0x200
        lda 0x200
        sta 0x201
        hlt
        .org 0x80
v:      .byte 0x42
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  const std::uint8_t g200 = sys.memory().read(0x200);
  const std::uint8_t g201 = sys.memory().read(0x201);
  sys.set_control_network(bad);
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x200), g200);
  EXPECT_EQ(sys.memory().read(0x201), g201);
}

}  // namespace
}  // namespace xtest::soc
