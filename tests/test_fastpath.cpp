// Equivalence and unit tests for the hot-path machinery: the precomputed
// BusEvaluator must be bit-identical to CrosstalkErrorModel::receive, the
// TransitionCache and GoldRunCache must never change a verdict, and every
// invalidation edge (defect injection, clear, forced MAF) must keep the
// fast system in lockstep with the reference evaluation path.

#include "xtalk/fast_model.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sbst/generator.h"
#include "sim/campaign.h"
#include "sim/gold_cache.h"
#include "soc/bus.h"
#include "soc/system.h"
#include "xtalk/defect.h"
#include "xtalk/error_model.h"
#include "xtalk/transient.h"

namespace xtest {
namespace {

using util::BusWord;
using xtalk::BusEvaluator;
using xtalk::CrosstalkErrorModel;
using xtalk::ErrorModelConfig;
using xtalk::RcNetwork;
using xtalk::TransitionCache;
using xtalk::VectorPair;

/// Nominal bus of `width` wires with every coupling and ground cap randomly
/// perturbed -- a stand-in for an arbitrary defect-applied network.
RcNetwork perturbed_network(unsigned width, std::mt19937_64& rng) {
  xtalk::BusGeometry g;
  g.width = width;
  RcNetwork net(g);
  std::uniform_real_distribution<double> factor(0.1, 3.0);
  for (unsigned i = 0; i < width; ++i)
    for (unsigned j = i + 1; j < width; ++j)
      net.scale_coupling(i, j, factor(rng));
  std::uniform_real_distribution<double> load(0.0, 50.0);
  for (unsigned i = 0; i < width; ++i) net.add_ground_load(i, load(rng));
  return net;
}

TEST(FastModel, ReceiveMatchesReferenceOnRandomNetworks) {
  std::mt19937_64 rng(20010618);
  for (const unsigned width : {2u, 3u, 8u, 12u, 16u}) {
    xtalk::BusGeometry g;
    g.width = width;
    const RcNetwork nominal(g);
    const ErrorModelConfig thresholds =
        ErrorModelConfig::calibrated(nominal, xtalk::recommended_cth(nominal));
    const CrosstalkErrorModel reference(thresholds);
    for (int defect = 0; defect < 8; ++defect) {
      const RcNetwork net = perturbed_network(width, rng);
      const BusEvaluator fast(net, thresholds);
      // Every MA test, both directions ...
      for (const xtalk::MafFault& f : xtalk::enumerate_mafs(width, true)) {
        const VectorPair pair = xtalk::ma_test(width, f);
        EXPECT_EQ(fast.receive(pair.v1.bits(), pair.v2.bits()),
                  reference.receive(net, pair).bits())
            << "width " << width << " fault " << f.label();
      }
      // ... plus random transitions (including quiet v1 == v2 draws).
      std::uniform_int_distribution<std::uint64_t> word(0,
                                                        BusWord::mask(width));
      for (int t = 0; t < 200; ++t) {
        const BusWord v1(width, word(rng));
        const BusWord v2(width, word(rng));
        EXPECT_EQ(fast.receive(v1.bits(), v2.bits()),
                  reference.receive(net, {v1, v2}).bits())
            << "width " << width << " " << v1.to_binary() << " -> "
            << v2.to_binary();
      }
    }
  }
}

TEST(FastModel, ZeroGlitchThresholdStillMatchesReference) {
  // With glitch_threshold_v == 0 the reference flips stable wires on a
  // +0.0 excursion, so the quiet-transfer shortcut must be disabled.
  xtalk::BusGeometry g;
  g.width = 8;
  const RcNetwork net(g);
  ErrorModelConfig t;
  t.glitch_threshold_v = 0.0;
  t.delay_slack_ns = 0.0;
  const BusEvaluator fast(net, t);
  EXPECT_FALSE(fast.quiet_is_identity());
  const CrosstalkErrorModel reference(t);
  for (std::uint64_t v = 0; v < 256; ++v) {
    const BusWord w(8, v);
    EXPECT_EQ(fast.receive(v, v), reference.receive(net, {w, w}).bits()) << v;
  }
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint64_t> word(0, 255);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v1 = word(rng);
    const std::uint64_t v2 = word(rng);
    EXPECT_EQ(fast.receive(v1, v2),
              reference.receive(net, {BusWord(8, v1), BusWord(8, v2)}).bits());
  }
}

TEST(TransitionCache, LookupInsertInvalidateAndCounters) {
  TransitionCache cache(8);
  ASSERT_TRUE(cache.enabled());
  std::uint64_t v = 0;
  EXPECT_FALSE(cache.lookup(42, v));
  cache.insert(42, 7);
  EXPECT_TRUE(cache.lookup(42, v));
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  cache.invalidate();
  EXPECT_FALSE(cache.lookup(42, v));  // O(1) invalidate drops every entry
  cache.insert(42, 9);
  EXPECT_TRUE(cache.lookup(42, v));
  EXPECT_EQ(v, 9u);

  TransitionCache off;  // default = disabled
  EXPECT_FALSE(off.enabled());
  off.insert(1, 2);
  EXPECT_FALSE(off.lookup(1, v));
  EXPECT_EQ(off.hits(), 0u);
  EXPECT_EQ(off.misses(), 0u);

  EXPECT_TRUE(TransitionCache::cacheable(1));
  EXPECT_TRUE(TransitionCache::cacheable(16));
  EXPECT_FALSE(TransitionCache::cacheable(0));
  EXPECT_FALSE(TransitionCache::cacheable(17));
}

TEST(FastPath, QuietBusTransferSkipsEvaluation) {
  xtalk::BusGeometry g;
  g.width = 8;
  const RcNetwork net(g);
  const ErrorModelConfig thresholds =
      ErrorModelConfig::calibrated(net, xtalk::recommended_cth(net));
  const BusEvaluator eval(net, thresholds);
  ASSERT_TRUE(eval.quiet_is_identity());
  TransitionCache cache(8);
  soc::TristateBus bus(soc::BusKind::kData, 8);
  const BusWord w(8, 0xA5);
  bus.transfer(w, &eval, &cache);  // 0x00 -> 0xA5 is a real transition
  const std::uint64_t misses = cache.misses();
  EXPECT_EQ(bus.transfer(w, &eval, &cache), w);  // quiet: early-exit
  EXPECT_EQ(cache.misses(), misses);             // ... before the cache
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(FastPath, IdealBusBypassesEvaluation) {
  soc::TristateBus bus(soc::BusKind::kData, 8);
  const BusWord w(8, 0x5A);
  EXPECT_EQ(bus.transfer(w, nullptr, nullptr), w);
  const BusEvaluator empty;
  EXPECT_EQ(bus.transfer(BusWord(8, 0x81), &empty, nullptr), BusWord(8, 0x81));
}

TEST(FastPath, CampaignVerdictsMatchReferencePath) {
  // The acceptance property: full campaign verdicts with the fast receive
  // path and transition cache on are identical to the seed evaluation
  // path, on all three buses, at 1 and 4 threads.
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  soc::SystemConfig fast_cfg;  // defaults: fast_receive + transition_cache
  soc::SystemConfig ref_cfg;
  ref_cfg.fast_receive = false;
  ref_cfg.transition_cache = false;
  soc::SystemConfig nocache_cfg;
  nocache_cfg.transition_cache = false;
  for (const soc::BusKind bus :
       {soc::BusKind::kAddress, soc::BusKind::kData, soc::BusKind::kControl}) {
    const auto lib = sim::make_defect_library(fast_cfg, bus, 12, 99);
    for (const unsigned threads : {1u, 4u}) {
      const util::ParallelConfig par{threads};
      const auto fast =
          sim::run_detection(fast_cfg, prog.program, bus, lib, 16, par);
      const auto reference =
          sim::run_detection(ref_cfg, prog.program, bus, lib, 16, par);
      EXPECT_EQ(fast, reference)
          << soc::to_string(bus) << " threads=" << threads;
      const auto nocache =
          sim::run_detection(nocache_cfg, prog.program, bus, lib, 16, par);
      EXPECT_EQ(fast, nocache)
          << soc::to_string(bus) << " threads=" << threads;
    }
  }
}

TEST(FastPath, ForcedMafKeepsFastSystemInLockstep) {
  // Forcing / clearing an ideal MAF invalidates the transition caches; the
  // fast system must agree with the reference system across the change,
  // including on the exact MA transition that excites the forced fault.
  soc::SystemConfig ref_cfg;
  ref_cfg.fast_receive = false;
  ref_cfg.transition_cache = false;
  soc::System fast_sys{soc::SystemConfig{}};
  soc::System ref_sys{ref_cfg};

  const xtalk::MafFault fault{5, xtalk::MafType::kPositiveGlitch,
                              xtalk::BusDirection::kCpuToCore};
  const VectorPair pair = xtalk::ma_test(12, fault);
  const auto a1 = static_cast<cpu::Addr>(pair.v1.bits());
  const auto a2 = static_cast<cpu::Addr>(pair.v2.bits());
  const std::vector<cpu::Addr> probe{0x000, a1, a2, 0xfff, a1, a2, 0x123};

  const auto compare_traffic = [&] {
    for (const cpu::Addr a : probe)
      ASSERT_EQ(fast_sys.read(a), ref_sys.read(a)) << a;
  };
  compare_traffic();  // warm the memo with plain traffic
  fast_sys.set_forced_maf(soc::ForcedMaf{soc::BusKind::kAddress, fault});
  ref_sys.set_forced_maf(soc::ForcedMaf{soc::BusKind::kAddress, fault});
  compare_traffic();  // memoized words must not leak past the change
  fast_sys.set_forced_maf(std::nullopt);
  ref_sys.set_forced_maf(std::nullopt);
  compare_traffic();
}

TEST(FastPath, DefectInjectionInvalidatesTransitionCache) {
  soc::SystemConfig ref_cfg;
  ref_cfg.fast_receive = false;
  ref_cfg.transition_cache = false;
  soc::System fast_sys{soc::SystemConfig{}};
  soc::System ref_sys{ref_cfg};

  const auto compare_traffic = [&] {
    for (const std::uint8_t d : {0x00, 0xff, 0xa5, 0x5a, 0x0f}) {
      fast_sys.write(0x200, d);
      ref_sys.write(0x200, d);
      ASSERT_EQ(fast_sys.read(0x200), ref_sys.read(0x200)) << unsigned{d};
    }
  };
  compare_traffic();  // populate the data-bus memo on the nominal net

  RcNetwork net = fast_sys.nominal_data_network();
  for (unsigned j = 0; j < net.width(); ++j)
    if (j != 4) net.scale_coupling(4, j, 4.0);
  fast_sys.set_data_network(net);
  ref_sys.set_data_network(net);
  compare_traffic();  // defect applied: memoized nominal words must be gone
  fast_sys.clear_defects();
  ref_sys.clear_defects();
  compare_traffic();  // restored nominal
}

TEST(GoldCache, KeyCoversConfigAndProgramButNotPerfKnobs) {
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const soc::SystemConfig base;
  EXPECT_EQ(sim::gold_run_key(base, prog.program, 1'000'000),
            sim::gold_run_key(base, prog.program, 1'000'000));
  soc::SystemConfig electrical = base;
  electrical.cth_ratio = 1.7;
  EXPECT_NE(sim::gold_run_key(base, prog.program, 1'000'000),
            sim::gold_run_key(electrical, prog.program, 1'000'000));
  soc::SystemConfig slow = base;
  slow.clock_period_scale = 3.0;
  EXPECT_NE(sim::gold_run_key(base, prog.program, 1'000'000),
            sim::gold_run_key(slow, prog.program, 1'000'000));
  EXPECT_NE(sim::gold_run_key(base, prog.program, 1'000'000),
            sim::gold_run_key(base, prog.program, 2'000'000));
  // Both evaluation paths produce the same gold run, so the knobs are
  // deliberately outside the key and the memo is shared across them.
  soc::SystemConfig knobs = base;
  knobs.fast_receive = false;
  knobs.transition_cache = false;
  EXPECT_EQ(sim::gold_run_key(base, prog.program, 1'000'000),
            sim::gold_run_key(knobs, prog.program, 1'000'000));
}

TEST(GoldCache, ReuseProducesIdenticalVerdicts) {
  sim::GoldRunCache::global().clear();
  const soc::SystemConfig cfg;
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kData, 8, 123);

  util::CampaignStats stats1;
  sim::CampaignOptions o1;
  o1.stats = &stats1;
  const auto first =
      sim::run_detection(cfg, prog.program, soc::BusKind::kData, lib, o1);
  EXPECT_EQ(stats1.gold_reuses, 0u);  // cold memo: gold was simulated
  EXPECT_EQ(sim::GoldRunCache::global().size(), 1u);

  util::CampaignStats stats2;
  sim::CampaignOptions o2;
  o2.stats = &stats2;
  const auto second =
      sim::run_detection(cfg, prog.program, soc::BusKind::kData, lib, o2);
  EXPECT_EQ(stats2.gold_reuses, 1u);
  EXPECT_EQ(first, second);

  util::CampaignStats stats3;
  sim::CampaignOptions o3;
  o3.stats = &stats3;
  o3.reuse_gold = false;
  const auto third =
      sim::run_detection(cfg, prog.program, soc::BusKind::kData, lib, o3);
  EXPECT_EQ(stats3.gold_reuses, 0u);
  EXPECT_EQ(first, third);
}

TEST(GoldCache, CapacityBoundsEntriesWithLruEviction) {
  auto& cache = sim::GoldRunCache::global();
  cache.clear();
  cache.set_capacity(3);
  EXPECT_EQ(cache.capacity(), 3u);

  auto snap = [](std::uint8_t v) {
    sim::ResponseSnapshot s;
    s.values = {v};
    s.completed = true;
    return s;
  };
  EXPECT_EQ(cache.store(1, snap(1)), 0u);
  EXPECT_EQ(cache.store(2, snap(2)), 0u);
  EXPECT_EQ(cache.store(3, snap(3)), 0u);
  EXPECT_EQ(cache.size(), 3u);

  // Touch key 1 so key 2 becomes the least recently used.
  sim::ResponseSnapshot out;
  EXPECT_TRUE(cache.find(1, out));
  EXPECT_EQ(cache.store(4, snap(4)), 1u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.find(2, out));  // the LRU entry was evicted
  EXPECT_TRUE(cache.find(1, out));
  EXPECT_EQ(out.values, std::vector<std::uint8_t>{1});
  EXPECT_TRUE(cache.find(3, out));
  EXPECT_TRUE(cache.find(4, out));

  // Re-storing an existing key never evicts a different entry.
  EXPECT_EQ(cache.store(4, snap(44)), 0u);
  EXPECT_EQ(cache.size(), 3u);

  // Shrinking evicts immediately, oldest first.
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 3u);
  EXPECT_TRUE(cache.find(4, out));  // most recently used survives
  EXPECT_EQ(out.values, std::vector<std::uint8_t>{44});

  cache.set_capacity(0);  // clamped to 1: a cap of 0 would disable reuse
  EXPECT_EQ(cache.capacity(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  cache.clear();
  EXPECT_EQ(cache.evictions(), 0u);
  cache.set_capacity(256);  // restore the default for later tests
}

TEST(CampaignStats, JsonCarriesHotPathCounters) {
  util::CampaignStats stats;
  stats.cache_hits = 30;
  stats.cache_misses = 10;
  stats.gold_reuses = 2;
  stats.gold_evictions = 3;
  const std::string j = stats.json("hotpath");
  EXPECT_NE(j.find("\"cache_hits\":30"), std::string::npos) << j;
  EXPECT_NE(j.find("\"cache_misses\":10"), std::string::npos) << j;
  EXPECT_NE(j.find("\"cache_hit_rate\":0.7500"), std::string::npos) << j;
  EXPECT_NE(j.find("\"gold_reuses\":2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"gold_evictions\":3"), std::string::npos) << j;
  // Environment provenance: worker count, the machine's concurrency, and
  // the build type all land in the record.
  EXPECT_NE(j.find("\"hardware_concurrency\":"), std::string::npos) << j;
  EXPECT_NE(j.find("\"build_type\":\""), std::string::npos) << j;
  EXPECT_NE(std::string(util::build_type()), "") << "build_type is never empty";
  EXPECT_DOUBLE_EQ(stats.cache_hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(util::CampaignStats{}.cache_hit_rate(), 0.0);
}

TEST(FastPath, CampaignCountsCacheTraffic) {
  const soc::SystemConfig cfg;  // cache on by default
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const auto lib = sim::make_defect_library(cfg, soc::BusKind::kData, 6, 5);
  util::CampaignStats stats;
  sim::CampaignOptions o;
  o.stats = &stats;
  sim::run_detection(cfg, prog.program, soc::BusKind::kData, lib, o);
  // Instruction-fetch loops repeat transitions constantly: the memo must
  // see real traffic and mostly hit.
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_hit_rate(), 0.5);

  soc::SystemConfig off = cfg;
  off.transition_cache = false;
  util::CampaignStats stats_off;
  sim::CampaignOptions o_off;
  o_off.stats = &stats_off;
  sim::run_detection(off, prog.program, soc::BusKind::kData, lib, o_off);
  EXPECT_EQ(stats_off.cache_hits, 0u);
  EXPECT_EQ(stats_off.cache_misses, 0u);
}

TEST(LuSolver, ScratchOverloadMatchesAllocatingSolve) {
  const std::vector<double> a{4.0, 1.0, 0.5, 1.0, 5.0, 1.5,
                              0.5, 1.5, 6.0};
  const xtalk::LuSolver solver(a, 3);
  std::vector<double> b1{1.0, 2.0, 3.0};
  std::vector<double> b2 = b1;
  solver.solve(b1);
  std::vector<double> scratch;
  solver.solve(b2, scratch);
  EXPECT_EQ(b1, b2);  // identical operation order, bitwise-equal result
  // Scratch is reusable across calls.
  std::vector<double> b3{9.0, -1.0, 0.25};
  std::vector<double> b4 = b3;
  solver.solve(b3);
  solver.solve(b4, scratch);
  EXPECT_EQ(b3, b4);
}

TEST(TransientPlan, FusedStepMatchesReferenceIntegrator) {
  xtalk::BusGeometry g;
  g.width = 6;
  const RcNetwork net(g);
  xtalk::TransientConfig fused_cfg;
  fused_cfg.fused_step = true;
  xtalk::TransientConfig ref_cfg = fused_cfg;
  ref_cfg.fused_step = false;
  const xtalk::TransientSimulator fused(fused_cfg);
  const xtalk::TransientSimulator reference(ref_cfg);
  for (const xtalk::MafType type : xtalk::kAllMafTypes) {
    const VectorPair pair = xtalk::ma_test(
        6, {3, type, xtalk::BusDirection::kCpuToCore});
    const auto a = fused.simulate(net, pair);
    const auto b = reference.simulate(net, pair);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].peak_excursion_v, b[i].peak_excursion_v, 1e-6)
          << to_string(type) << " wire " << i;
      EXPECT_NEAR(a[i].crossing_time_ns, b[i].crossing_time_ns, 1e-6)
          << to_string(type) << " wire " << i;
    }
  }
}

TEST(TransientPlan, PlanInvalidatesOnNetworkMutation) {
  xtalk::BusGeometry g;
  g.width = 4;
  RcNetwork net(g);
  const xtalk::TransientSimulator sim;
  const VectorPair pair = xtalk::ma_test(
      4, {1, xtalk::MafType::kPositiveGlitch, xtalk::BusDirection::kCpuToCore});
  const double before = sim.simulate(net, pair)[1].peak_excursion_v;
  net.scale_coupling(1, 2, 5.0);  // bumps the network revision
  const double after = sim.simulate(net, pair)[1].peak_excursion_v;
  EXPECT_NE(before, after);  // a stale cached plan would reproduce `before`

  // A fresh simulator against the mutated network agrees exactly.
  const xtalk::TransientSimulator fresh;
  EXPECT_DOUBLE_EQ(fresh.simulate(net, pair)[1].peak_excursion_v, after);
}

TEST(TransientPlan, CopiedNetworkSharesPlanSafely) {
  // A copied, unmodified network keeps its revision; the plan is reused.
  // Modifying the copy re-keys it without touching the original.
  xtalk::BusGeometry g;
  g.width = 4;
  const RcNetwork original(g);
  RcNetwork copy = original;
  EXPECT_EQ(copy.revision(), original.revision());
  copy.add_ground_load(0, 10.0);
  EXPECT_NE(copy.revision(), original.revision());

  const xtalk::TransientSimulator sim;
  const VectorPair pair = xtalk::ma_test(
      4, {1, xtalk::MafType::kPositiveGlitch, xtalk::BusDirection::kCpuToCore});
  const double a = sim.simulate(original, pair)[1].peak_excursion_v;
  const double b = sim.simulate(copy, pair)[1].peak_excursion_v;
  const double a_again = sim.simulate(original, pair)[1].peak_excursion_v;
  EXPECT_EQ(a, a_again);
  EXPECT_NE(a, b);  // the loaded copy damps the glitch
}

}  // namespace
}  // namespace xtest
