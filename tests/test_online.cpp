// On-line campaign contract (src/sim/online.h): bitwise determinism
// across thread counts, kill/resume through the on-line checkpoint,
// electrical-backend self-consistency, interference accounting, and the
// schedule/backend-keyed checkpoint identity.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "sim/online.h"
#include "sim/campaign.h"
#include "spec/scenario.h"
#include "util/fault_injector.h"
#include "util/parallel.h"
#include "xtalk/electrical.h"

using namespace xtest;

namespace {

struct Fixture {
  soc::SystemConfig config;
  soc::OnlineConfig online;
  sbst::TestProgram program;
  xtalk::DefectLibrary library;
};

Fixture make_fixture(std::size_t defects = 24) {
  spec::ScenarioSpec scn;
  scn.multi_session = false;
  scn.defect_count = defects;
  Fixture f{scn.system, {}, scn.make_sessions()[0].program,
            scn.make_library()};
  f.online.enabled = true;
  return f;
}

std::string temp_checkpoint(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("xtest_online_") + tag + ".ckpt"))
      .string();
}

struct InjectorGuard {
  ~InjectorGuard() { util::FaultInjector::global().disarm(); }
};

TEST(OnlineCampaign, ThreadCountInvariant) {
  const Fixture s = make_fixture();
  sim::CampaignOptions serial;
  serial.parallel = {1};
  const sim::OnlineResult one = sim::run_online_detection(
      s.config, s.online, s.program, soc::BusKind::kAddress, s.library,
      serial);
  sim::CampaignOptions four;
  four.parallel = {4};
  const sim::OnlineResult many = sim::run_online_detection(
      s.config, s.online, s.program, soc::BusKind::kAddress, s.library,
      four);
  EXPECT_EQ(one.verdicts, many.verdicts);
  EXPECT_EQ(one.outcomes, many.outcomes);
  EXPECT_EQ(one.gold, many.gold);
}

TEST(OnlineCampaign, DetectedDefectsCarryLatency) {
  const Fixture s = make_fixture();
  sim::CampaignOptions opts;
  opts.parallel = {1};
  const sim::OnlineResult r = sim::run_online_detection(
      s.config, s.online, s.program, soc::BusKind::kAddress, s.library,
      opts);
  std::size_t detected = 0;
  for (const sim::OnlineOutcome& o : r.outcomes) {
    if (sim::is_detected(o.verdict)) {
      ++detected;
      EXPECT_GT(o.detection_latency_cycles, 0u);
    } else {
      EXPECT_EQ(o.detection_latency_cycles, 0u);
    }
    EXPECT_GT(o.rounds, 0u);
  }
  EXPECT_GT(detected, 0u);          // the library is not all-benign
  EXPECT_GT(r.gold.rounds, 1u);     // the schedule really interleaves
  EXPECT_GT(r.gold.heartbeats, 0u); // the workload really runs
}

TEST(OnlineCampaign, KillResumeMatchesUninterrupted) {
  const Fixture s = make_fixture();
  util::CampaignStats ref_stats;
  sim::CampaignOptions ref_opts;
  ref_opts.parallel = {1};
  ref_opts.stats = &ref_stats;
  const sim::OnlineResult ref = sim::run_online_detection(
      s.config, s.online, s.program, soc::BusKind::kAddress, s.library,
      ref_opts);

  const std::string ckpt = temp_checkpoint("kill_resume");
  std::remove(ckpt.c_str());
  util::CampaignStats stats;
  sim::CampaignOptions opts;
  opts.parallel = {2};
  opts.stats = &stats;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 2;

  InjectorGuard guard;
  util::FaultInjector::global().configure("campaign.kill@5");
  EXPECT_THROW(sim::run_online_detection(s.config, s.online, s.program,
                                         soc::BusKind::kAddress, s.library,
                                         opts),
               sim::CampaignInterrupted);
  util::FaultInjector::global().disarm();

  const sim::OnlineResult resumed = sim::run_online_detection(
      s.config, s.online, s.program, soc::BusKind::kAddress, s.library,
      opts);
  std::remove(ckpt.c_str());
  EXPECT_EQ(resumed.verdicts, ref.verdicts);
  EXPECT_EQ(resumed.outcomes, ref.outcomes);
  EXPECT_GT(stats.restored_from_checkpoint, 0u);
  // The resumed run reports exactly the uninterrupted aggregates: the
  // interrupted attempt contributed nothing to the on-line sums.
  EXPECT_EQ(stats.online_rounds, ref_stats.online_rounds);
  EXPECT_EQ(stats.online_mmio_heartbeats, ref_stats.online_mmio_heartbeats);
  EXPECT_EQ(stats.online_deadlines_late, ref_stats.online_deadlines_late);
  EXPECT_EQ(stats.online_deadlines_missed,
            ref_stats.online_deadlines_missed);
  EXPECT_EQ(stats.online_detection_latency_cycles,
            ref_stats.online_detection_latency_cycles);
  EXPECT_EQ(stats.online_latency_samples, ref_stats.online_latency_samples);
  EXPECT_EQ(stats.detected, ref_stats.detected);
  EXPECT_EQ(stats.undetected, ref_stats.undetected);
}

TEST(OnlineCampaign, ScheduleChangeRejectsStaleCheckpoint) {
  const Fixture s = make_fixture(6);
  const std::string ckpt = temp_checkpoint("key_mismatch");
  std::remove(ckpt.c_str());
  sim::CampaignOptions opts;
  opts.parallel = {1};
  opts.checkpoint_path = ckpt;
  sim::run_online_detection(s.config, s.online, s.program,
                            soc::BusKind::kAddress, s.library, opts);
  soc::OnlineConfig other = s.online;
  other.slice_cycles += 128;  // a different interleaving schedule
  try {
    sim::run_online_detection(s.config, other, s.program,
                              soc::BusKind::kAddress, s.library, opts);
    FAIL() << "stale checkpoint accepted across a schedule change";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("key mismatch"), std::string::npos);
  }
  std::remove(ckpt.c_str());
}

TEST(OnlineCampaign, CheckpointKeyCoversScheduleAndBackend) {
  const Fixture s = make_fixture(4);
  xtalk::ElectricalConfig full;  // default full-swing
  xtalk::ElectricalConfig low;
  low.backend = xtalk::ElectricalBackend::kLowSwing;
  const std::string base = sim::online_checkpoint_key(
      soc::BusKind::kAddress, s.library, s.online, full);
  soc::OnlineConfig other = s.online;
  other.workload_cycles += 1;
  EXPECT_NE(base, sim::online_checkpoint_key(soc::BusKind::kAddress,
                                             s.library, other, full));
  EXPECT_NE(base, sim::online_checkpoint_key(soc::BusKind::kAddress,
                                             s.library, s.online, low));
}

TEST(OnlineCampaign, ElectricalBackendsSelfConsistent) {
  for (const xtalk::ElectricalBackend backend :
       {xtalk::ElectricalBackend::kFullSwing,
        xtalk::ElectricalBackend::kLowSwing}) {
    Fixture s = make_fixture(12);
    s.config.electrical.backend = backend;
    // The library is generated against the same electricals the campaign
    // simulates, like ScenarioSpec::make_library does.
    spec::ScenarioSpec scn;
    scn.multi_session = false;
    scn.defect_count = 12;
    scn.system.electrical.backend = backend;
    s.library = scn.make_library();
    sim::CampaignOptions opts;
    opts.parallel = {1};
    const sim::OnlineResult a = sim::run_online_detection(
        s.config, s.online, s.program, soc::BusKind::kAddress, s.library,
        opts);
    opts.parallel = {4};
    const sim::OnlineResult b = sim::run_online_detection(
        s.config, s.online, s.program, soc::BusKind::kAddress, s.library,
        opts);
    EXPECT_EQ(a.outcomes, b.outcomes)
        << "backend " << xtalk::to_string(backend);
  }
}

TEST(OnlineCampaign, TightDeadlineShowsInterference) {
  const Fixture s = make_fixture(1);
  soc::OnlineConfig tight = s.online;
  tight.slice_cycles = 512;
  tight.workload_cycles = 64;
  tight.deadline_cycles = 16;  // every test slice blows the deadline
  sim::CampaignOptions opts;
  opts.parallel = {1};
  const sim::OnlineResult r = sim::run_online_detection(
      s.config, tight, s.program, soc::BusKind::kAddress, s.library, opts);
  EXPECT_GT(r.gold.deadlines_late + r.gold.deadlines_missed, 0u);
}

TEST(OnlineCampaign, ShardingRejected) {
  const Fixture s = make_fixture(2);
  sim::CampaignOptions opts;
  opts.parallel = {1};
  opts.shard = {0, 2};
  EXPECT_THROW(sim::run_online_detection(s.config, s.online, s.program,
                                         soc::BusKind::kAddress, s.library,
                                         opts),
               std::invalid_argument);
}

TEST(OnlineCampaign, SessionsMergeFirstDetectionWins) {
  spec::ScenarioSpec scn;
  scn.defect_count = 12;
  const auto sessions = scn.make_sessions();
  const auto lib = scn.make_library();
  soc::OnlineConfig online;
  sim::CampaignOptions opts;
  opts.parallel = {1};
  const sim::OnlineResult merged = sim::run_online_detection_sessions(
      scn.system, online, sessions, scn.bus, lib, opts);
  ASSERT_EQ(merged.verdicts.size(), lib.size());
  std::uint64_t single_gold_rounds = 0;
  std::size_t live = 0;
  for (const auto& sess : sessions) {
    if (sess.program.tests.empty()) continue;
    ++live;
    sim::OnlineResult one = sim::run_online_detection(
        scn.system, online, sess.program, scn.bus, lib, opts);
    single_gold_rounds += one.gold.rounds;
  }
  ASSERT_GT(live, 1u);
  EXPECT_EQ(merged.gold.rounds, single_gold_rounds);
  for (const sim::OnlineOutcome& o : merged.outcomes)
    if (sim::is_detected(o.verdict))
      EXPECT_GT(o.detection_latency_cycles, 0u);
}

TEST(OnlineCampaign, EmptySessionSetRejected) {
  spec::ScenarioSpec scn;
  scn.defect_count = 2;
  const auto lib = scn.make_library();
  std::vector<sbst::GenerationResult> none(1);  // a session with no tests
  sim::CampaignOptions opts;
  opts.parallel = {1};
  EXPECT_THROW(sim::run_online_detection_sessions(scn.system, {}, none,
                                                  scn.bus, lib, opts),
               std::runtime_error);
}

TEST(OnlineCampaign, StatsJsonRoundTripsOnlineCounters) {
  util::CampaignStats stats;
  stats.online_rounds = 7;
  stats.online_mmio_heartbeats = 42;
  stats.online_deadlines_late = 3;
  stats.online_deadlines_missed = 1;
  stats.online_detection_latency_cycles = 12345;
  stats.online_latency_samples = 9;
  util::CampaignStats parsed;
  ASSERT_TRUE(util::parse_stats_json(stats.json("campaign"), parsed));
  EXPECT_EQ(parsed.online_rounds, stats.online_rounds);
  EXPECT_EQ(parsed.online_mmio_heartbeats, stats.online_mmio_heartbeats);
  EXPECT_EQ(parsed.online_deadlines_late, stats.online_deadlines_late);
  EXPECT_EQ(parsed.online_deadlines_missed, stats.online_deadlines_missed);
  EXPECT_EQ(parsed.online_detection_latency_cycles,
            stats.online_detection_latency_cycles);
  EXPECT_EQ(parsed.online_latency_samples, stats.online_latency_samples);
}

}  // namespace
