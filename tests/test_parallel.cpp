// Unit tests for the deterministic work pool (util/parallel).

#include "util/parallel.h"

#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xtest::util {
namespace {

// ---------------------------------------------------------------------------
// Static range partitioning.

TEST(PartitionRange, CoversEveryIndexExactlyOnce) {
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                            std::size_t{7}, std::size_t{16}, std::size_t{97},
                            std::size_t{1000}}) {
    for (unsigned chunks : {1u, 2u, 3u, 4u, 8u, 16u, 100u}) {
      const auto parts = partition_range(count, chunks);
      ASSERT_EQ(parts.size(), chunks);
      std::vector<int> seen(count, 0);
      std::size_t expect_begin = 0;
      for (const auto& [begin, end] : parts) {
        // Contiguous, ascending, within range.
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LE(begin, end);
        EXPECT_LE(end, count);
        for (std::size_t i = begin; i < end; ++i) ++seen[i];
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, count) << count << "/" << chunks;
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(seen[i], 1) << "index " << i << " with " << count << "/"
                              << chunks;
    }
  }
}

TEST(PartitionRange, ChunkSizesDifferByAtMostOne) {
  for (std::size_t count : {std::size_t{10}, std::size_t{13},
                            std::size_t{64}, std::size_t{1001}}) {
    for (unsigned chunks : {2u, 3u, 7u, 8u, 12u}) {
      const auto parts = partition_range(count, chunks);
      std::size_t lo = count, hi = 0;
      for (const auto& [begin, end] : parts) {
        lo = std::min(lo, end - begin);
        hi = std::max(hi, end - begin);
      }
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

TEST(PartitionRange, RangeSmallerThanChunkCountLeavesTrailingEmpty) {
  const auto parts = partition_range(3, 8);
  ASSERT_EQ(parts.size(), 8u);
  for (unsigned w = 0; w < 3; ++w) {
    EXPECT_EQ(parts[w].first, w);
    EXPECT_EQ(parts[w].second, w + 1);
  }
  for (unsigned w = 3; w < 8; ++w)
    EXPECT_EQ(parts[w].first, parts[w].second);
}

TEST(PartitionRange, EmptyRangeIsAllEmptyChunks) {
  for (unsigned chunks : {1u, 4u, 9u}) {
    const auto parts = partition_range(0, chunks);
    ASSERT_EQ(parts.size(), chunks);
    for (const auto& [begin, end] : parts) EXPECT_EQ(begin, end);
  }
}

TEST(PartitionRange, ZeroChunksClampsToOne) {
  const auto parts = partition_range(5, 0);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].first, 0u);
  EXPECT_EQ(parts[0].second, 5u);
}

// ---------------------------------------------------------------------------
// The pool itself.

TEST(ParallelFor, EveryIndexVisitedExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{64}, std::size_t{1000}}) {
      std::vector<int> visits(count, 0);
      parallel_for_chunks(count, {threads},
                          [&](std::size_t begin, std::size_t end, unsigned) {
                            // Chunks are disjoint, so these writes race-
                            // freely touch distinct elements.
                            for (std::size_t i = begin; i < end; ++i)
                              ++visits[i];
                          });
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(visits[i], 1) << "threads=" << threads << " count=" << count
                                << " index=" << i;
    }
  }
}

TEST(ParallelFor, SingleThreadRunsInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id body_thread;
  unsigned body_worker = 99;
  parallel_for_chunks(10, {1},
                      [&](std::size_t begin, std::size_t end, unsigned w) {
                        EXPECT_EQ(begin, 0u);
                        EXPECT_EQ(end, 10u);
                        body_thread = std::this_thread::get_id();
                        body_worker = w;
                      });
  EXPECT_EQ(body_thread, caller);
  EXPECT_EQ(body_worker, 0u);
}

TEST(ParallelFor, WorkerExceptionPropagatesWithoutDeadlock) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    EXPECT_THROW(
        parallel_for_chunks(
            16, {threads},
            [&](std::size_t begin, std::size_t end, unsigned) {
              for (std::size_t i = begin; i < end; ++i)
                if (i == 11) throw std::runtime_error("defect 11 exploded");
            }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelFor, AllWorkersThrowingStillJoinsAndRethrows) {
  EXPECT_THROW(parallel_for_chunks(
                   8, {4},
                   [](std::size_t, std::size_t, unsigned) {
                     throw std::runtime_error("every worker fails");
                   }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Per-item fault containment.

TEST(ParallelForItems, ExceptionQuarantinesOnlyTheOffendingItem) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::vector<int> visits(64, 0);
    const auto errors =
        parallel_for_items(64, {threads}, [&](std::size_t i, unsigned) {
          if (i == 11) throw std::runtime_error("defect 11 exploded");
          ++visits[i];
        });
    ASSERT_EQ(errors.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(errors[0].index, 11u);
    EXPECT_EQ(errors[0].message, "defect 11 exploded");
    for (std::size_t i = 0; i < visits.size(); ++i)
      EXPECT_EQ(visits[i], i == 11 ? 0 : 1) << i;
  }
}

TEST(ParallelForItems, ErrorsComeBackInAscendingIndexOrder) {
  for (unsigned threads : {1u, 3u, 8u}) {
    const auto errors =
        parallel_for_items(100, {threads}, [&](std::size_t i, unsigned) {
          if (i % 7 == 0) throw std::runtime_error("boom");
        });
    ASSERT_EQ(errors.size(), 15u);
    for (std::size_t k = 1; k < errors.size(); ++k)
      EXPECT_LT(errors[k - 1].index, errors[k].index);
  }
}

TEST(ParallelForItems, NonStdExceptionIsCapturedToo) {
  const auto errors =
      parallel_for_items(4, {2}, [&](std::size_t i, unsigned) {
        if (i == 2) throw 42;  // not derived from std::exception
      });
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].index, 2u);
  EXPECT_FALSE(errors[0].message.empty());
}

TEST(ParallelForItems, CleanRunReturnsNoErrors) {
  std::vector<int> visits(37, 0);
  const auto errors = parallel_for_items(
      37, {4}, [&](std::size_t i, unsigned) { ++visits[i]; });
  EXPECT_TRUE(errors.empty());
  for (int v : visits) EXPECT_EQ(v, 1);
}

// ---------------------------------------------------------------------------
// Configuration resolution.

TEST(ParallelConfigTest, ExplicitThreadsWinAndClampToItems) {
  const ParallelConfig four{4};
  EXPECT_EQ(four.resolve(100), 4u);
  EXPECT_EQ(four.resolve(2), 2u);   // never more workers than items
  EXPECT_EQ(four.resolve(0), 1u);   // empty range still resolves
  const ParallelConfig one{1};
  EXPECT_EQ(one.resolve(100), 1u);
}

TEST(ParallelConfigTest, AutoReadsEnvironment) {
  const char* saved = std::getenv("XTEST_THREADS");
  const std::string saved_value = saved ? saved : "";

  ::setenv("XTEST_THREADS", "3", 1);
  EXPECT_EQ(ParallelConfig::from_env().threads, 3u);
  EXPECT_EQ(ParallelConfig{}.resolve(100), 3u);

  ::setenv("XTEST_THREADS", "garbage", 1);
  EXPECT_EQ(ParallelConfig::from_env().threads, 0u);  // invalid -> auto

  ::unsetenv("XTEST_THREADS");
  EXPECT_EQ(ParallelConfig::from_env().threads, 0u);
  EXPECT_GE(ParallelConfig{}.resolve(100), 1u);  // hardware fallback

  if (saved)
    ::setenv("XTEST_THREADS", saved_value.c_str(), 1);
  else
    ::unsetenv("XTEST_THREADS");
}

TEST(CampaignStatsTest, ThroughputAndJson) {
  CampaignStats s;
  EXPECT_EQ(s.defects_per_second(), 0.0);  // no division by zero
  s.defects_simulated = 500;
  s.simulated_cycles = 123456;
  s.wall_seconds = 2.0;
  s.threads = 4;
  EXPECT_DOUBLE_EQ(s.defects_per_second(), 250.0);
  s.detected = 490;
  s.sim_errors = 2;
  s.retries = 1;
  const std::string j = s.json("unit");
  EXPECT_NE(j.find("\"campaign\":\"unit\""), std::string::npos);
  EXPECT_NE(j.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(j.find("\"defects\":500"), std::string::npos);
  EXPECT_NE(j.find("\"simulated_cycles\":123456"), std::string::npos);
  EXPECT_NE(j.find("\"defects_per_second\":250.0"), std::string::npos);
  EXPECT_NE(j.find("\"detected\":490"), std::string::npos);
  EXPECT_NE(j.find("\"sim_errors\":2"), std::string::npos);
  EXPECT_NE(j.find("\"retries\":1"), std::string::npos);
}

}  // namespace
}  // namespace xtest::util
