// The differential gate of the transition-major batched campaign: batched
// and per-defect evaluation must be *bitwise* interchangeable.
//
// Three layers, matching the three claims batch.h makes:
//   * DefectBatch gather/scatter is exact (original factors, not the
//     derived couplings, so no division rounding);
//   * BatchEvaluator::receive / screen are bit-identical to running
//     BusEvaluator on each lane's scattered defect alone, forced MAFs
//     included;
//   * whole campaigns -- every built-in scenario, at 1 and 4 threads, at
//     batch sizes 1 / 7 / 64 / whole-library, across library seeds --
//     produce verdict vectors and CampaignStats verdict counts identical
//     to the unbatched per-defect loop.

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/campaign.h"
#include "sim/verdict.h"
#include "soc/system.h"
#include "spec/scenario.h"
#include "util/bitvec.h"
#include "util/parallel.h"
#include "xtalk/batch.h"
#include "xtalk/defect.h"
#include "xtalk/error_model.h"
#include "xtalk/fast_model.h"
#include "xtalk/maf.h"
#include "xtalk/rc_network.h"

namespace xtest {
namespace {

constexpr std::uint64_t kSeed = 20010618;

// ---------------------------------------------------------------------------
// SoA gather/scatter exactness.

xtalk::DefectLibrary random_library(std::mt19937_64& rng, unsigned width,
                                    std::size_t count, double sigma_pct) {
  std::uniform_real_distribution<double> factor(0.0, 3.0);
  const std::size_t npairs = static_cast<std::size_t>(width) *
                             (width - 1) / 2;
  std::vector<xtalk::Defect> defects;
  for (std::size_t d = 0; d < count; ++d) {
    std::vector<double> factors(npairs);
    for (double& f : factors) f = factor(rng);
    defects.emplace_back(width, std::move(factors));
  }
  xtalk::DefectConfig cfg;
  cfg.sigma_pct = sigma_pct;
  cfg.count = count;
  return xtalk::DefectLibrary::from_defects(cfg, defects);
}

xtalk::BusGeometry geometry_for(unsigned width) {
  xtalk::BusGeometry g;
  g.width = width;
  return g;
}

xtalk::MafFault random_fault(std::mt19937_64& rng, unsigned width) {
  const xtalk::MafType types[] = {
      xtalk::MafType::kPositiveGlitch, xtalk::MafType::kNegativeGlitch,
      xtalk::MafType::kRisingDelay, xtalk::MafType::kFallingDelay};
  return {static_cast<unsigned>(rng() % width), types[rng() % 4],
          rng() % 2 == 0 ? xtalk::BusDirection::kCpuToCore
                         : xtalk::BusDirection::kCoreToCpu};
}

TEST(DefectBatchSoA, GatherScatterRoundTripsEveryFieldExactly) {
  std::mt19937_64 rng(0xBA7C4);
  for (int trial = 0; trial < 24; ++trial) {
    const unsigned width = 2 + static_cast<unsigned>(rng() % 15);  // 2..16
    // Degenerate library sizes first: the empty and one-defect batches
    // must construct and round-trip like any other.
    const std::size_t count =
        trial == 0 ? 0 : trial == 1 ? 1 : 1 + rng() % 24;
    const double sigma = 5.0 + static_cast<double>(rng() % 100);
    const auto lib = random_library(rng, width, count, sigma);
    const xtalk::RcNetwork nominal(geometry_for(width));

    // Forced-MAF mix: roughly a third of the lanes pin an ideal MAF.
    std::vector<std::optional<xtalk::MafFault>> forced(count);
    for (std::size_t l = 0; l < count; ++l)
      if (rng() % 3 == 0) forced[l] = random_fault(rng, width);

    const xtalk::DefectBatch batch(nominal, lib, forced);
    ASSERT_EQ(batch.width(), width);
    ASSERT_EQ(batch.lanes(), count);
    for (std::size_t l = 0; l < count; ++l) {
      EXPECT_EQ(batch.source_index(l), l);
      const xtalk::Defect back = batch.scatter(l);
      ASSERT_EQ(back.width(), width);
      for (unsigned i = 0; i < width; ++i)
        for (unsigned j = i + 1; j < width; ++j)
          EXPECT_EQ(back.factor(i, j), lib[l].factor(i, j))
              << "trial=" << trial << " lane=" << l << " pair=(" << i << ","
              << j << ")";
      ASSERT_EQ(batch.forced(l).has_value(), forced[l].has_value());
      if (forced[l]) EXPECT_EQ(*batch.forced(l), *forced[l]);
    }
  }
}

TEST(DefectBatchSoA, SubsetGatherKeepsSourceIndices) {
  std::mt19937_64 rng(7);
  const unsigned width = 8;
  const auto lib = random_library(rng, width, 16, 50.0);
  const xtalk::RcNetwork nominal(geometry_for(width));
  const std::vector<std::size_t> indices = {13, 2, 7, 2};  // dups allowed
  const xtalk::DefectBatch batch(nominal, lib, indices);
  ASSERT_EQ(batch.lanes(), indices.size());
  for (std::size_t l = 0; l < indices.size(); ++l) {
    EXPECT_EQ(batch.source_index(l), indices[l]);
    const xtalk::Defect back = batch.scatter(l);
    for (unsigned i = 0; i < width; ++i)
      for (unsigned j = i + 1; j < width; ++j)
        EXPECT_EQ(back.factor(i, j), lib[indices[l]].factor(i, j));
  }
}

TEST(DefectBatchSoA, WidthMismatchThrowsNamingTheDefect) {
  const unsigned width = 6;
  std::mt19937_64 rng(11);
  auto defects = random_library(rng, width, 3, 50.0).defects();
  defects[1] = xtalk::Defect(4, std::vector<double>(6, 1.0));
  const auto lib =
      xtalk::DefectLibrary::from_defects(xtalk::DefectConfig{}, defects);
  const xtalk::RcNetwork nominal(geometry_for(width));
  try {
    const xtalk::DefectBatch batch(nominal, lib, {0, 1, 2});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("defect 1"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// BatchEvaluator vs BusEvaluator, per lane, bit for bit.

TEST(BatchEvaluatorBits, ReceiveMatchesPerDefectBusEvaluator) {
  std::mt19937_64 rng(0xFA57);
  for (const unsigned width : {3u, 8u, 12u}) {
    const xtalk::RcNetwork nominal(geometry_for(width));
    const xtalk::ErrorModelConfig config = xtalk::ErrorModelConfig::calibrated(
        nominal, xtalk::recommended_cth(nominal));
    const auto lib = random_library(rng, width, 24, 50.0);
    const xtalk::DefectBatch batch(nominal, lib);
    const xtalk::BatchEvaluator eval(batch, config);

    const std::uint64_t mask = util::BusWord::mask(width);
    for (std::size_t lane = 0; lane < lib.size(); ++lane) {
      const xtalk::BusEvaluator reference(lib[lane].apply(nominal), config);
      for (int t = 0; t < 64; ++t) {
        const std::uint64_t v1 = rng() & mask;
        const std::uint64_t v2 = rng() & mask;
        EXPECT_EQ(eval.receive(lane, v1, v2), reference.receive(v1, v2))
            << "width=" << width << " lane=" << lane << " v1=" << v1
            << " v2=" << v2;
      }
    }
  }
}

TEST(BatchEvaluatorBits, ScreenAgreesWithReceiveOnEveryLane) {
  std::mt19937_64 rng(0x5C12EE);
  const unsigned width = 12;
  const xtalk::RcNetwork nominal(geometry_for(width));
  const xtalk::ErrorModelConfig config = xtalk::ErrorModelConfig::calibrated(
      nominal, xtalk::recommended_cth(nominal));
  const auto lib = random_library(rng, width, 33, 50.0);
  const xtalk::DefectBatch batch(nominal, lib);
  xtalk::BatchEvaluator eval(batch, config);
  const xtalk::BusEvaluator gold(nominal, config);

  const std::uint64_t mask = util::BusWord::mask(width);
  for (int t = 0; t < 128; ++t) {
    const std::uint64_t v1 = rng() & mask;
    // Every eighth transition is quiet (v1 == v2): the screen's shortcut
    // path must agree with receive too.
    const std::uint64_t v2 = t % 8 == 0 ? v1 : rng() & mask;
    const std::uint64_t expected = gold.receive(v1, v2);
    std::vector<std::uint8_t> live(lib.size(), 1);
    const std::size_t alive =
        eval.screen(v1, v2, xtalk::BusDirection::kCpuToCore, expected,
                    live.data());
    std::size_t check = 0;
    for (std::size_t lane = 0; lane < lib.size(); ++lane) {
      const bool matches = eval.receive(lane, v1, v2) == expected;
      EXPECT_EQ(live[lane] != 0, matches) << "lane=" << lane << " t=" << t;
      check += matches;
    }
    EXPECT_EQ(alive, check);
  }
}

TEST(BatchEvaluatorBits, ForcedMafOverridesExactlyItsMaTest) {
  std::mt19937_64 rng(0xF0CED);
  const unsigned width = 12;
  const xtalk::RcNetwork nominal(geometry_for(width));
  const xtalk::ErrorModelConfig config = xtalk::ErrorModelConfig::calibrated(
      nominal, xtalk::recommended_cth(nominal));
  const auto lib = random_library(rng, width, 6, 50.0);

  const xtalk::MafFault fault{5, xtalk::MafType::kRisingDelay,
                              xtalk::BusDirection::kCpuToCore};
  std::vector<std::optional<xtalk::MafFault>> forced(lib.size());
  forced[2] = fault;
  const xtalk::DefectBatch plain(nominal, lib);
  const xtalk::DefectBatch pinned(nominal, lib, forced);
  const xtalk::BatchEvaluator plain_eval(plain, config);
  const xtalk::BatchEvaluator pinned_eval(pinned, config);

  const xtalk::VectorPair ma = xtalk::ma_test(width, fault);
  const std::uint64_t v1 = ma.v1.bits(), v2 = ma.v2.bits();

  // On the MA pair in the fault's direction, the pinned lane samples the
  // ideal faulty word; the wrong direction and every other lane fall back
  // to the electrical model.
  EXPECT_EQ(pinned_eval.receive(2, v1, v2, fault.direction),
            xtalk::faulty_v2(fault, ma).bits());
  EXPECT_EQ(pinned_eval.receive(2, v1, v2, xtalk::BusDirection::kCoreToCpu),
            plain_eval.receive(2, v1, v2, xtalk::BusDirection::kCoreToCpu));
  EXPECT_EQ(pinned_eval.receive(1, v1, v2, fault.direction),
            plain_eval.receive(1, v1, v2, fault.direction));
  // A non-MA transition never triggers the override.
  const std::uint64_t mask = util::BusWord::mask(width);
  for (int t = 0; t < 32; ++t) {
    const std::uint64_t a = rng() & mask, b = rng() & mask;
    if (a == v1 && b == v2) continue;
    EXPECT_EQ(pinned_eval.receive(2, a, b, fault.direction),
              plain_eval.receive(2, a, b, fault.direction));
  }
}

// ---------------------------------------------------------------------------
// Whole-campaign differential equivalence: the acceptance gate.

struct VerdictCounts4 {
  std::size_t detected, timeout, undetected, sim_errors;
  bool operator==(const VerdictCounts4&) const = default;
};

VerdictCounts4 counts_of(const util::CampaignStats& s) {
  return {s.detected, s.detected_by_timeout, s.undetected, s.sim_errors};
}

TEST(BatchEquivalence, EveryBuiltinScenarioMatchesPerDefectVerdictsExactly) {
  for (const std::string& name : spec::builtin_scenario_names()) {
    spec::ScenarioSpec base = spec::builtin_scenario(name);
    base.defect_count = 12;  // keep 6 scenarios x 3 seeds x 8 runs fast
    for (const std::uint64_t seed : {kSeed, kSeed + 7, std::uint64_t{424242}}) {
      base.seed = seed;
      const auto sessions = base.make_sessions();
      const auto lib = base.make_library();

      spec::ScenarioSpec ref = base;
      ref.batched = false;
      util::CampaignStats ref_stats;
      sim::CampaignOptions ref_opts = ref.campaign_options(&ref_stats);
      ref_opts.parallel = {1};
      const std::vector<sim::Verdict> reference = sim::run_detection_sessions(
          base.system, sessions, base.bus, lib, ref_opts);

      for (const unsigned threads : {1u, 4u}) {
        for (const std::size_t batch :
             {std::size_t{1}, std::size_t{7}, std::size_t{64}, lib.size()}) {
          spec::ScenarioSpec b = base;
          b.batched = true;
          b.batch_size = batch;
          util::CampaignStats stats;
          sim::CampaignOptions opts = b.campaign_options(&stats);
          opts.parallel = {threads};
          const std::vector<sim::Verdict> det = sim::run_detection_sessions(
              base.system, sessions, base.bus, lib, opts);
          EXPECT_EQ(det, reference)
              << name << " seed=" << seed << " threads=" << threads
              << " batch=" << batch;
          EXPECT_EQ(counts_of(stats), counts_of(ref_stats))
              << name << " seed=" << seed << " threads=" << threads
              << " batch=" << batch;
          // Screening replaces simulations one for one: the slot count and
          // the simulated-cycle total stay pure functions of the inputs.
          EXPECT_EQ(stats.defects_simulated, ref_stats.defects_simulated);
          EXPECT_EQ(stats.simulated_cycles, ref_stats.simulated_cycles);
        }
      }
    }
  }
}

TEST(BatchEquivalence, ScreenedDefectsAreCountedAndNeverChangeCoverage) {
  // slow-tester is the screen's best case (most delay defects escape in
  // most sessions): the batched run must report substantial screening AND
  // the exact unbatched verdicts.
  spec::ScenarioSpec s = spec::builtin_scenario("slow-tester");
  s.defect_count = 24;
  const auto sessions = s.make_sessions();
  const auto lib = s.make_library();

  spec::ScenarioSpec ref = s;
  ref.batched = false;
  util::CampaignStats ref_stats;
  sim::CampaignOptions ref_opts = ref.campaign_options(&ref_stats);
  ref_opts.parallel = {1};
  const auto reference =
      sim::run_detection_sessions(s.system, sessions, s.bus, lib, ref_opts);
  EXPECT_EQ(ref_stats.batch_screened, 0u);
  EXPECT_EQ(ref_stats.batch_capacity, 0u);

  util::CampaignStats stats;
  sim::CampaignOptions opts = s.campaign_options(&stats);
  opts.parallel = {1};
  const auto det =
      sim::run_detection_sessions(s.system, sessions, s.bus, lib, opts);
  EXPECT_EQ(det, reference);
  EXPECT_GT(stats.batch_screened, 0u);
  EXPECT_GT(stats.batched_transitions, 0u);
  EXPECT_GT(stats.batch_fill(), 0.0);
  EXPECT_LE(stats.batch_fill(), 1.0);
  EXPECT_LE(stats.batch_screened, stats.batch_lanes);
}

}  // namespace
}  // namespace xtest
