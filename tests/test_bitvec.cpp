#include "util/bitvec.h"

#include <gtest/gtest.h>

namespace xtest::util {
namespace {

TEST(BusWord, ZerosAndOnes) {
  EXPECT_EQ(BusWord::zeros(8).bits(), 0u);
  EXPECT_EQ(BusWord::ones(8).bits(), 0xFFu);
  EXPECT_EQ(BusWord::ones(12).bits(), 0xFFFu);
  EXPECT_EQ(BusWord::ones(64).bits(), ~std::uint64_t{0});
}

TEST(BusWord, MasksConstructionBits) {
  EXPECT_EQ(BusWord(8, 0x1FF).bits(), 0xFFu);
  EXPECT_EQ(BusWord(12, 0xFFFFF).bits(), 0xFFFu);
}

TEST(BusWord, OneHot) {
  for (unsigned i = 0; i < 12; ++i) {
    const BusWord w = BusWord::one_hot(12, i);
    EXPECT_EQ(w.bits(), 1u << i);
    for (unsigned j = 0; j < 12; ++j) EXPECT_EQ(w.bit(j), i == j);
  }
}

TEST(BusWord, WithBit) {
  BusWord w = BusWord::zeros(8);
  w = w.with_bit(3, true);
  EXPECT_EQ(w.bits(), 0x08u);
  w = w.with_bit(3, false);
  EXPECT_EQ(w.bits(), 0x00u);
  // Setting an already-set bit is idempotent.
  w = BusWord::ones(8).with_bit(5, true);
  EXPECT_EQ(w.bits(), 0xFFu);
}

TEST(BusWord, Inverted) {
  EXPECT_EQ(BusWord(8, 0xF0).inverted().bits(), 0x0Fu);
  EXPECT_EQ(BusWord(12, 0).inverted().bits(), 0xFFFu);
  EXPECT_EQ(BusWord(64, 0).inverted().bits(), ~std::uint64_t{0});
}

TEST(BusWord, Xor) {
  EXPECT_EQ((BusWord(8, 0xAA) ^ BusWord(8, 0xFF)).bits(), 0x55u);
}

TEST(BusWord, HammingDistance) {
  EXPECT_EQ(BusWord(8, 0x00).hamming_distance(BusWord(8, 0xFF)), 8u);
  EXPECT_EQ(BusWord(8, 0xA5).hamming_distance(BusWord(8, 0xA5)), 0u);
  EXPECT_EQ(BusWord(12, 0x800).hamming_distance(BusWord(12, 0x000)), 1u);
}

TEST(BusWord, ToBinaryIsMsbFirst) {
  EXPECT_EQ(BusWord(4, 0b0010).to_binary(), "0010");
  EXPECT_EQ(BusWord(8, 0x80).to_binary(), "10000000");
}

TEST(BusWord, ToPageOffsetMatchesPaperNotation) {
  // The paper writes 12-bit addresses as page:offset.
  EXPECT_EQ(BusWord(12, 0xFEF).to_page_offset(), "1111:11101111");
  EXPECT_EQ(BusWord(12, 0x010).to_page_offset(), "0000:00010000");
  // Other widths fall back to plain binary.
  EXPECT_EQ(BusWord(8, 0xF7).to_page_offset(), "11110111");
}

TEST(BusWord, Equality) {
  EXPECT_EQ(BusWord(8, 5), BusWord(8, 5));
  EXPECT_NE(BusWord(8, 5), BusWord(8, 6));
  EXPECT_NE(BusWord(8, 5), BusWord(12, 5));
}

class BusWordWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(BusWordWidths, InversionIsInvolution) {
  const unsigned w = GetParam();
  const BusWord x(w, 0x5A5A5A5A5A5A5A5Aull);
  EXPECT_EQ(x.inverted().inverted(), x);
}

TEST_P(BusWordWidths, OnesHasFullHammingFromZeros) {
  const unsigned w = GetParam();
  EXPECT_EQ(BusWord::zeros(w).hamming_distance(BusWord::ones(w)), w);
}

TEST_P(BusWordWidths, BinaryLengthEqualsWidth) {
  const unsigned w = GetParam();
  EXPECT_EQ(BusWord::ones(w).to_binary().size(), w);
}

INSTANTIATE_TEST_SUITE_P(Widths, BusWordWidths,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u, 16u, 32u,
                                           63u, 64u));

}  // namespace
}  // namespace xtest::util
