#include "soc/waveform.h"

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "soc/system.h"

namespace xtest::soc {
namespace {

BusTrace trace_lda() {
  System sys;
  BusTrace trace;
  sys.set_trace(&trace);
  const cpu::AsmResult prog = cpu::assemble(R"(
        .org 0x010
        lda 0xe00
        hlt
        .org 0xe00
        .byte 0xf7
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(100);
  return trace;
}

TEST(Waveform, RendersOneRowPerWire) {
  const BusTrace t = trace_lda();
  const std::string addr = render_waveform(t, BusKind::kAddress);
  const std::string data = render_waveform(t, BusKind::kData);
  // 12 address rows + header, 8 data rows + header.
  EXPECT_EQ(std::count(addr.begin(), addr.end(), '\n'), 13);
  EXPECT_EQ(std::count(data.begin(), data.end(), '\n'), 9);
  EXPECT_NE(addr.find("addr[11]"), std::string::npos);
  EXPECT_NE(data.find("data[ 0]"), std::string::npos);
}

TEST(Waveform, ShowsTransitions) {
  const BusTrace t = trace_lda();
  const std::string addr = render_waveform(t, BusKind::kAddress);
  // The operand access 0x010/0x011 -> 0xe00 raises high address bits.
  EXPECT_NE(addr.find('/'), std::string::npos);
  EXPECT_NE(addr.find('_'), std::string::npos);
}

TEST(Waveform, EmptyTrace) {
  BusTrace t;
  EXPECT_EQ(render_waveform(t, BusKind::kData), "(no events)\n");
}

TEST(Waveform, MaxEventsLimits) {
  const BusTrace t = trace_lda();
  WaveformOptions opt;
  opt.max_events = 2;
  const std::string s = render_waveform(t, BusKind::kAddress, opt);
  // Header row contains exactly two cycle labels worth of columns:
  const std::string full = render_waveform(t, BusKind::kAddress);
  EXPECT_LT(s.size(), full.size());
}

TEST(Waveform, ReceivedViewDiffersUnderFault) {
  System sys;
  BusTrace trace;
  sys.set_trace(&trace);
  sys.set_forced_maf(ForcedMaf{
      BusKind::kData,
      {3, xtalk::MafType::kPositiveGlitch, xtalk::BusDirection::kCoreToCpu}});
  const cpu::AsmResult prog = cpu::assemble(R"(
        .org 0x010
        lda 0xe00
        hlt
        .org 0xe00
        .byte 0xf7
  )");
  sys.load_and_reset(prog.image, prog.entry);
  sys.run(100);
  WaveformOptions recv;
  recv.received = true;
  EXPECT_NE(render_waveform(trace, BusKind::kData, recv),
            render_waveform(trace, BusKind::kData));
}

}  // namespace
}  // namespace xtest::soc
