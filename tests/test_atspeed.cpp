// Clock-speed dependence of delay-fault observability (Section 1).

#include <gtest/gtest.h>

#include "sim/campaign.h"
#include "soc/system.h"

namespace xtest {
namespace {

TEST(AtSpeed, SlowClockStretchesSlack) {
  soc::SystemConfig rated;
  soc::SystemConfig slow;
  slow.clock_period_scale = 2.0;
  const soc::System a(rated), b(slow);
  EXPECT_NEAR(b.address_model().config().delay_slack_ns,
              2.0 * a.address_model().config().delay_slack_ns, 1e-12);
  // Glitch thresholds are speed-independent.
  EXPECT_DOUBLE_EQ(b.address_model().config().glitch_threshold_v,
                   a.address_model().config().glitch_threshold_v);
}

TEST(AtSpeed, MarginalDelayDefectEscapesSlowClock) {
  // A defect just above Cth errs at speed but passes at half speed.
  soc::SystemConfig rated;
  const soc::System sys(rated);
  const unsigned victim = 5;
  xtalk::RcNetwork bad = sys.nominal_address_network();
  const double f = 1.1 * sys.address_cth() /
                   sys.nominal_address_network().net_coupling(victim);
  for (unsigned j = 0; j < 12; ++j)
    if (j != victim) bad.scale_coupling(victim, j, f);

  const auto dr = xtalk::ma_test(
      12, {victim, xtalk::MafType::kRisingDelay,
           xtalk::BusDirection::kCpuToCore});
  EXPECT_TRUE(sys.address_model().corrupts(bad, dr));

  soc::SystemConfig slowcfg;
  slowcfg.clock_period_scale = 2.0;
  const soc::System slow(slowcfg);
  EXPECT_FALSE(slow.address_model().corrupts(bad, dr));
}

TEST(AtSpeed, GlitchDefectVisibleAtAnySpeed) {
  soc::SystemConfig slowcfg;
  slowcfg.clock_period_scale = 4.0;
  const soc::System slow(slowcfg);
  const unsigned victim = 5;
  xtalk::RcNetwork bad = slow.nominal_address_network();
  const double f = 1.5 * slow.address_cth() /
                   slow.nominal_address_network().net_coupling(victim);
  for (unsigned j = 0; j < 12; ++j)
    if (j != victim) bad.scale_coupling(victim, j, f);
  const auto gp = xtalk::ma_test(
      12, {victim, xtalk::MafType::kPositiveGlitch,
           xtalk::BusDirection::kCpuToCore});
  EXPECT_TRUE(slow.address_model().corrupts(bad, gp));
}

TEST(AtSpeed, CoverageDegradesMonotonically) {
  const auto lib = sim::make_defect_library(
      soc::SystemConfig{}, soc::BusKind::kAddress, 40, 7);
  const auto gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  double prev = 2.0;
  for (const double scale : {1.0, 2.0, 4.0}) {
    soc::SystemConfig cfg;
    cfg.clock_period_scale = scale;
    const double cov = sim::coverage(
        sim::run_detection(cfg, gen.program, soc::BusKind::kAddress, lib));
    EXPECT_LE(cov, prev) << scale;
    prev = cov;
  }
  EXPECT_LT(prev, 1.0);  // the slowest clock misses delay defects
}

}  // namespace
}  // namespace xtest
