#include "sim/verify.h"

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "sbst/generator.h"

namespace xtest::sim {
namespace {

TEST(Verify, GeneratedProgramFullyEffective) {
  // Every structurally placed test must actually observe its fault: this
  // is the library's core soundness guarantee.
  const sbst::GenerationResult r =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const VerificationResult v = verify_program(r.program);
  EXPECT_TRUE(v.gold.completed);
  EXPECT_TRUE(v.all_effective())
      << v.ineffective.size() << " ineffective tests";
}

TEST(Verify, AllSessionsFullyEffective) {
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  for (const auto& s : sessions) {
    if (s.program.tests.empty()) continue;
    EXPECT_TRUE(verify_program(s.program).all_effective());
  }
}

TEST(Verify, DetectsAnUnobservableTest) {
  // Hand-build a "test" whose fault is never excited: the program applies
  // pair (0x00 -> 0x55) but the planned test claims the gp MA pair
  // (0x00 -> 0xFE).  Verification must flag it ineffective.
  const cpu::AsmResult a = cpu::assemble(R"(
        .org 0x010
        cla
        add 3:0x00
        sta 0x200
        hlt
        .org 0x300
        .byte 0x55
  )");
  sbst::TestProgram prog;
  prog.image = a.image;
  prog.entry = a.entry;
  prog.response_cells = {0x200};
  sbst::PlannedTest t;
  t.bus = soc::BusKind::kData;
  t.fault = {0, xtalk::MafType::kPositiveGlitch,
             xtalk::BusDirection::kCoreToCpu};
  t.pair = xtalk::ma_test(8, t.fault);
  t.scheme = sbst::Scheme::kDataRead;
  prog.tests = {t};
  const VerificationResult v = verify_program(prog);
  EXPECT_TRUE(v.gold.completed);
  ASSERT_EQ(v.ineffective.size(), 1u);
  EXPECT_EQ(v.ineffective[0], 0u);
}

TEST(Verify, EffectiveHandWrittenTest) {
  // The same program with the operand cell holding the real MA vector v2
  // is effective: the forced glitch flips the read value.
  const cpu::AsmResult a = cpu::assemble(R"(
        .org 0x010
        cla
        add 3:0x00
        sta 0x200
        hlt
        .org 0x300
        .byte 0xfe     ; v2 of gp@1: aggressors rise, victim stable 0
  )");
  sbst::TestProgram prog;
  prog.image = a.image;
  prog.entry = a.entry;
  prog.response_cells = {0x200};
  sbst::PlannedTest t;
  t.bus = soc::BusKind::kData;
  t.fault = {0, xtalk::MafType::kPositiveGlitch,
             xtalk::BusDirection::kCoreToCpu};
  t.pair = xtalk::ma_test(8, t.fault);
  t.scheme = sbst::Scheme::kDataRead;
  prog.tests = {t};
  const VerificationResult v = verify_program(prog);
  EXPECT_TRUE(v.all_effective());
}

TEST(Verify, BudgetScalesWithGoldRun) {
  const sbst::GenerationResult r =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const VerificationResult v = verify_program(r.program, {}, 4);
  EXPECT_EQ(v.max_cycles, v.gold.cycles * 4 + 1000);
}

TEST(Snapshot, MatchingSemantics) {
  ResponseSnapshot a, b;
  a.values = {1, 2};
  a.completed = true;
  b = a;
  EXPECT_TRUE(a.matches(b));
  b.values[1] = 3;
  EXPECT_FALSE(a.matches(b));
  b = a;
  b.completed = false;
  EXPECT_FALSE(a.matches(b));
  // Cycle count and halt reason are not tester-visible.
  b = a;
  b.cycles = 999;
  b.reason = cpu::HaltReason::kIllegalOpcode;
  EXPECT_TRUE(a.matches(b));
}

}  // namespace
}  // namespace xtest::sim
