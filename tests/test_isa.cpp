#include "cpu/isa.h"

#include <gtest/gtest.h>

namespace xtest::cpu {
namespace {

TEST(Addressing, PageOffsetSplit) {
  EXPECT_EQ(page_of(0xFEF), 0xF);
  EXPECT_EQ(offset_of(0xFEF), 0xEF);
  EXPECT_EQ(make_addr(0xF, 0xEF), 0xFEF);
  EXPECT_EQ(wrap(0x1000), 0x000);
  EXPECT_EQ(wrap(0xFFF + 1), 0x000);
}

TEST(Encoding, MemRefLayoutMatchesFig4) {
  // Fig. 4: first byte = opcode nibble + page, second byte = offset.
  const auto enc = encode_memref(Opcode::kLda, 0xE00);
  EXPECT_EQ(enc[0], 0x0E);
  EXPECT_EQ(enc[1], 0x00);
  const auto add = encode_memref(Opcode::kAdd, 0x37F);
  EXPECT_EQ(add[0], 0x23);
  EXPECT_EQ(add[1], 0x7F);
}

TEST(Encoding, SingleAndBranch) {
  EXPECT_EQ(encode_single(SingleOp::kHlt), 0xF8);
  EXPECT_EQ(encode_single(SingleOp::kNop), 0xF0);
  const auto bz = encode_branch(kCondZ, 0x42);
  EXPECT_EQ(bz[0], 0xE4);
  EXPECT_EQ(bz[1], 0x42);
}

TEST(Decode, AllMemRefOpcodes) {
  const Opcode ops[] = {Opcode::kLda, Opcode::kAnd, Opcode::kAdd,
                        Opcode::kSub, Opcode::kOra, Opcode::kXra,
                        Opcode::kSta, Opcode::kJmp, Opcode::kJsr,
                        Opcode::kJmi};
  for (Opcode op : ops)
    for (unsigned page = 0; page < 16; ++page) {
      const Decoded d =
          decode(static_cast<std::uint8_t>((static_cast<unsigned>(op) << 4) |
                                           page));
      EXPECT_EQ(d.kind, Decoded::Kind::kMemRef);
      EXPECT_EQ(d.opcode, op);
      EXPECT_EQ(d.page, page);
      EXPECT_TRUE(d.two_bytes());
    }
}

TEST(Decode, IllegalRanges) {
  // Opcode nibbles 0xA-0xD and single-op selectors above HLT are illegal.
  for (unsigned hi = 0xA; hi <= 0xD; ++hi)
    for (unsigned lo = 0; lo < 16; ++lo)
      EXPECT_EQ(decode(static_cast<std::uint8_t>((hi << 4) | lo)).kind,
                Decoded::Kind::kIllegal);
  for (unsigned lo = 9; lo < 16; ++lo)
    EXPECT_EQ(decode(static_cast<std::uint8_t>(0xF0 | lo)).kind,
              Decoded::Kind::kIllegal);
  EXPECT_EQ(decode(0xFF).kind, Decoded::Kind::kIllegal);
}

TEST(Decode, BranchAndSingle) {
  EXPECT_EQ(decode(0xE4).kind, Decoded::Kind::kBranch);
  EXPECT_EQ(decode(0xE4).cond_mask, kCondZ);
  EXPECT_TRUE(decode(0xE4).two_bytes());
  EXPECT_EQ(decode(0xF1).kind, Decoded::Kind::kSingle);
  EXPECT_EQ(decode(0xF1).single, SingleOp::kCla);
  EXPECT_FALSE(decode(0xF1).two_bytes());
}

TEST(InstructionSet, HasExactly23Instructions) {
  // 10 memory-reference + 4 branches + 9 single-byte = 23, the paper's
  // "8-bit accumulator-based multi-cycle processor core with 23
  // instructions".
  int count = 0;
  const char* memref[] = {"lda", "and", "add", "sub", "ora",
                          "xra", "sta", "jmp", "jsr", "jmi"};
  const char* branch[] = {"bv", "bc", "bz", "bn"};
  const char* single[] = {"nop", "cla", "cma", "cmc", "stc",
                          "asl", "asr", "inc", "hlt"};
  for (const char* m : memref) count += parse_mnemonic(m).has_value();
  for (const char* m : branch) count += parse_mnemonic(m).has_value();
  for (const char* m : single) count += parse_mnemonic(m).has_value();
  EXPECT_EQ(count, kInstructionCount);
}

TEST(Mnemonics, RoundTrip) {
  for (unsigned b = 0; b < 256; ++b) {
    const Decoded d = decode(static_cast<std::uint8_t>(b));
    if (d.kind == Decoded::Kind::kIllegal) continue;
    const std::string name = mnemonic(d);
    if (name.rfind("br#", 0) == 0) continue;  // multi-condition branches
    const auto info = parse_mnemonic(name);
    ASSERT_TRUE(info.has_value()) << name;
    EXPECT_EQ(info->kind, d.kind);
    if (d.kind == Decoded::Kind::kMemRef) {
      EXPECT_EQ(info->opcode, d.opcode);
    }
    if (d.kind == Decoded::Kind::kSingle) {
      EXPECT_EQ(info->single, d.single);
    }
    if (d.kind == Decoded::Kind::kBranch) {
      EXPECT_EQ(info->cond_mask, d.cond_mask);
    }
  }
}

TEST(Mnemonics, CaseInsensitive) {
  EXPECT_TRUE(parse_mnemonic("LDA").has_value());
  EXPECT_TRUE(parse_mnemonic("Hlt").has_value());
  EXPECT_FALSE(parse_mnemonic("mov").has_value());
}

TEST(Disassemble, Formats) {
  EXPECT_EQ(disassemble(0x2F, 0x07), "add 0xf07");
  EXPECT_EQ(disassemble(0xF8, 0x00), "hlt");
  EXPECT_EQ(disassemble(0xE4, 0x10), "bz 0x10");
  EXPECT_EQ(disassemble(0xA0, 0x00), "ill 0xa0");
}

TEST(IsTwoByte, MatchesDecodedKind) {
  for (unsigned b = 0; b < 256; ++b) {
    const Decoded d = decode(static_cast<std::uint8_t>(b));
    EXPECT_EQ(is_two_byte(static_cast<std::uint8_t>(b)), d.two_bytes());
  }
}

}  // namespace
}  // namespace xtest::cpu
