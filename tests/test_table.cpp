#include "util/table.h"

#include <gtest/gtest.h>

namespace xtest::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"line", "coverage"});
  t.add_row({"1", "0.0%"});
  t.add_row({"6", "17.3%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| line | coverage |"), std::string::npos);
  EXPECT_NE(out.find("| 6    | 17.3%    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string out = t.render();
  // Three columns rendered even though the row had one cell.
  EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.render_csv(), "x,y\n1,2\n3,4\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::pct(0.173, 1), "17.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, AlignmentGrowsWithWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| h                 |"), std::string::npos);
}

}  // namespace
}  // namespace xtest::util
