// Equivalence and unit tests for the pre-decoded execution tiers: every
// tier must produce bitwise-identical run results, signatures and campaign
// verdicts to the reference interpreter, and every path an accelerated
// tier cannot prove equivalent -- self-modified fetches, watchdog-slice
// resumes, injected decode/jit failures -- must bail out to the reference
// interpreter instead of diverging.

#include "cpu/microcode.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cpu/jit_buffer.h"
#include "sbst/generator.h"
#include "sim/campaign.h"
#include "sim/gold_cache.h"
#include "sim/system_pool.h"
#include "soc/system.h"
#include "spec/scenario.h"
#include "util/fault_injector.h"
#include "util/parallel.h"
#include "xtalk/defect.h"

namespace xtest {
namespace {

using cpu::ExecTier;

soc::SystemConfig tier_config(ExecTier tier) {
  soc::SystemConfig c;
  c.exec_tier = tier;
  if (tier == ExecTier::kReference) {
    // The reference configuration is the seed evaluation path end to end.
    c.fast_receive = false;
    c.transition_cache = false;
  }
  return c;
}

/// Loads `image` into a fresh system of `tier` and runs it to the budget.
struct TierRun {
  soc::RunResult result;
  cpu::Addr pc;
  std::uint8_t acc;
  std::array<std::uint8_t, cpu::kMemWords> memory;
  soc::TierCounters tiers;
};

TierRun run_on_tier(ExecTier tier, const cpu::MemoryImage& image,
                    cpu::Addr entry, std::uint64_t budget) {
  soc::System sys{tier_config(tier)};
  sys.load_and_reset(image, entry);
  const soc::RunResult r = sys.run(budget);
  return {r, sys.processor().pc(), sys.processor().acc(), sys.memory().raw(),
          sys.tier_counters()};
}

void expect_same_run(const TierRun& a, const TierRun& b,
                     const std::string& label) {
  EXPECT_EQ(a.result.cycles, b.result.cycles) << label;
  EXPECT_EQ(a.result.halted, b.result.halted) << label;
  EXPECT_EQ(a.result.reason, b.result.reason) << label;
  EXPECT_EQ(a.pc, b.pc) << label;
  EXPECT_EQ(a.acc, b.acc) << label;
  EXPECT_EQ(a.memory, b.memory) << label;
}

TEST(ExecTier, NamesRoundTripAndUnknownSpellingsAreRejected) {
  for (const ExecTier t :
       {ExecTier::kReference, ExecTier::kDecoded, ExecTier::kJit}) {
    const auto parsed = cpu::parse_exec_tier(cpu::to_string(t));
    ASSERT_TRUE(parsed.has_value()) << cpu::to_string(t);
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(cpu::parse_exec_tier("interpreted").has_value());
  EXPECT_FALSE(cpu::parse_exec_tier("Decoded").has_value());
  EXPECT_FALSE(cpu::parse_exec_tier("").has_value());
}

TEST(MicroProgram, DecodeTableAndPreDecodeMatchPureDecode) {
  // decode() is a pure function of the byte; the memo table and every
  // pre-decoded micro-op must agree with it exactly.
  const auto& table = cpu::MicroProgram::decode_table();
  for (unsigned b = 0; b < 256; ++b) {
    const cpu::Decoded ref = cpu::decode(static_cast<std::uint8_t>(b));
    EXPECT_EQ(table[b].kind, ref.kind) << b;
    EXPECT_EQ(table[b].opcode, ref.opcode) << b;
    EXPECT_EQ(table[b].page, ref.page) << b;
    EXPECT_EQ(table[b].cond_mask, ref.cond_mask) << b;
    EXPECT_EQ(table[b].single, ref.single) << b;
  }

  std::mt19937_64 rng(2001);
  cpu::MemoryImage image;
  std::uniform_int_distribution<unsigned> byte(0, 255);
  for (unsigned a = 0; a < cpu::kMemWords; ++a)
    image.set(static_cast<cpu::Addr>(a), static_cast<std::uint8_t>(byte(rng)));
  const cpu::MicroProgram prog(image);
  EXPECT_TRUE(prog.matches(image));
  for (unsigned a = 0; a < cpu::kMemWords; ++a) {
    const auto addr = static_cast<cpu::Addr>(a);
    EXPECT_EQ(prog.at(addr).byte, image.at(addr)) << a;
    EXPECT_EQ(prog.at(addr).d.kind, cpu::decode(image.at(addr)).kind) << a;
  }
  cpu::MemoryImage other = image;
  other.set(0x123, static_cast<std::uint8_t>(image.at(0x123) ^ 0xFF));
  EXPECT_FALSE(prog.matches(other));
}

TEST(DecodeCache, SharesPreDecodesByImageContent) {
  auto& cache = cpu::DecodeCache::global();
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cpu::MemoryImage image;
  image.set(0x020, cpu::encode_single(cpu::SingleOp::kHlt));

  bool built = false;
  const auto first = cache.obtain(image, &built);
  EXPECT_TRUE(built);
  EXPECT_EQ(cache.size(), 1u);
  const auto second = cache.obtain(image, &built);
  EXPECT_FALSE(built);              // content-identical image: reused
  EXPECT_EQ(first.get(), second.get());

  image.set(0x021, cpu::encode_single(cpu::SingleOp::kNop));
  const auto third = cache.obtain(image, &built);
  EXPECT_TRUE(built);               // any byte change is a new program
  EXPECT_NE(first.get(), third.get());
  cache.clear();
}

TEST(ExecTier, RandomImagesRunIdenticallyAcrossAllTiers) {
  // Arbitrary byte soup exercises every decode path -- including illegal
  // opcodes, wild jumps and accidental self-stores -- and all three tiers
  // must agree on the full architectural outcome.
  std::mt19937_64 rng(20010618);
  std::uniform_int_distribution<unsigned> byte(0, 255);
  std::uniform_int_distribution<unsigned> addr(0, cpu::kMemWords - 1);
  for (int trial = 0; trial < 12; ++trial) {
    cpu::MemoryImage image;
    for (unsigned a = 0; a < cpu::kMemWords; ++a)
      image.set(static_cast<cpu::Addr>(a),
                static_cast<std::uint8_t>(byte(rng)));
    const auto entry = static_cast<cpu::Addr>(addr(rng));
    const TierRun reference =
        run_on_tier(ExecTier::kReference, image, entry, 4000);
    const TierRun decoded = run_on_tier(ExecTier::kDecoded, image, entry, 4000);
    const TierRun jit = run_on_tier(ExecTier::kJit, image, entry, 4000);
    expect_same_run(decoded, reference, "decoded trial " +
                                            std::to_string(trial));
    expect_same_run(jit, reference, "jit trial " + std::to_string(trial));
  }
}

TEST(ExecTier, GeneratedProgramSignaturesMatchReference) {
  // The paper's own SBST program: every response cell (group signatures
  // plus data-bus write targets) must read back identically on every tier,
  // and an available JIT backend must actually have compiled blocks.
  const auto gen = sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const sbst::TestProgram& prog = gen.program;
  const TierRun reference =
      run_on_tier(ExecTier::kReference, prog.image, prog.entry, 1'000'000);
  const TierRun decoded =
      run_on_tier(ExecTier::kDecoded, prog.image, prog.entry, 1'000'000);
  const TierRun jit =
      run_on_tier(ExecTier::kJit, prog.image, prog.entry, 1'000'000);
  ASSERT_TRUE(reference.result.halted);
  expect_same_run(decoded, reference, "decoded");
  expect_same_run(jit, reference, "jit");
  for (const cpu::Addr cell : prog.response_cells) {
    EXPECT_EQ(decoded.memory[cell], reference.memory[cell]) << cell;
    EXPECT_EQ(jit.memory[cell], reference.memory[cell]) << cell;
  }
  EXPECT_GT(decoded.tiers.decoded_programs + decoded.tiers.decode_cache_hits,
            0u);
  EXPECT_EQ(reference.tiers.decoded_programs, 0u);
  EXPECT_EQ(reference.tiers.jit_bailouts, 0u);
  if (cpu::jit_backend_available()) {
    EXPECT_GT(jit.tiers.jit_blocks, 0u);
  }
}

TEST(ExecTier, CampaignVerdictsMatchReferenceOnEveryBuiltinScenario) {
  // The acceptance property: for each built-in scenario (shrunk to a
  // test-sized library), decoded campaign verdicts are bitwise equal to
  // the reference tier at 1 and 4 threads.
  sim::DefectRunCache::global().clear();
  for (const std::string& name : spec::builtin_scenario_names()) {
    spec::ScenarioSpec scn = spec::builtin_scenario(name);
    scn.defect_count = 4;
    const auto sessions = scn.make_sessions();
    const auto lib = scn.make_library();
    soc::SystemConfig ref_cfg = scn.system;
    ref_cfg.exec_tier = ExecTier::kReference;
    ref_cfg.fast_receive = false;
    ref_cfg.transition_cache = false;
    soc::SystemConfig dec_cfg = scn.system;
    dec_cfg.exec_tier = ExecTier::kDecoded;
    for (const unsigned threads : {1u, 4u}) {
      const util::ParallelConfig par{threads};
      const auto reference = sim::run_detection_sessions(
          ref_cfg, sessions, scn.bus, lib, scn.cycle_factor, par);
      const auto decoded = sim::run_detection_sessions(
          dec_cfg, sessions, scn.bus, lib, scn.cycle_factor, par);
      EXPECT_EQ(decoded, reference) << name << " threads=" << threads;
    }
  }
}

TEST(ExecTier, SelfModifyingStoreBailsOutToReference) {
  // The program rewrites a not-yet-executed NOP into HLT.  The decoded
  // tier's fetched-byte check sees the divergence, finishes the run on
  // the reference interpreter, and still matches it exactly.
  cpu::MemoryImage image;
  const auto lda = cpu::encode_memref(cpu::Opcode::kLda, 0x0A0);
  const auto sta = cpu::encode_memref(cpu::Opcode::kSta, 0x026);
  image.set(0x020, lda[0]);
  image.set(0x021, lda[1]);
  image.set(0x022, sta[0]);
  image.set(0x023, sta[1]);
  image.set(0x024, cpu::encode_single(cpu::SingleOp::kNop));
  image.set(0x025, cpu::encode_single(cpu::SingleOp::kNop));
  image.set(0x026, cpu::encode_single(cpu::SingleOp::kNop));  // becomes HLT
  image.set(0x027, cpu::encode_single(cpu::SingleOp::kHlt));
  image.set(0x0A0, cpu::encode_single(cpu::SingleOp::kHlt));  // stored byte

  const TierRun reference =
      run_on_tier(ExecTier::kReference, image, 0x020, 1000);
  ASSERT_TRUE(reference.result.halted);
  ASSERT_EQ(reference.pc, 0x027);  // halted at the rewritten cell
  for (const ExecTier tier : {ExecTier::kDecoded, ExecTier::kJit}) {
    const TierRun accel = run_on_tier(tier, image, 0x020, 1000);
    expect_same_run(accel, reference, cpu::to_string(tier));
    EXPECT_GE(accel.tiers.jit_bailouts, 1u) << cpu::to_string(tier);
  }
}

TEST(ExecTier, WatchdogSliceResumesStayDecoded) {
  // A mid-program resume (cycles already on the clock) is decoded-tier
  // eligible: the per-fetch byte check already bails on any divergence
  // between the pre-decode and memory, so budget-sliced resumes need no
  // blanket reference fallback.  Slicing the same program identically on
  // both tiers must agree at every step, and the clean resumes must not
  // count a single bailout.
  cpu::MemoryImage image;
  for (cpu::Addr a = 0x020; a < 0x0A0; ++a)
    image.set(a, cpu::encode_single(cpu::SingleOp::kInc));
  image.set(0x0A0, cpu::encode_single(cpu::SingleOp::kHlt));

  soc::System dec{tier_config(ExecTier::kDecoded)};
  soc::System ref{tier_config(ExecTier::kReference)};
  dec.load_and_reset(image, 0x020);
  ref.load_and_reset(image, 0x020);
  bool halted = false;
  for (std::uint64_t budget = 30; !halted; budget += 30) {
    const soc::RunResult d = dec.run(budget);
    const soc::RunResult r = ref.run(budget);
    ASSERT_EQ(d.cycles, r.cycles) << budget;
    ASSERT_EQ(d.halted, r.halted) << budget;
    ASSERT_EQ(dec.processor().acc(), ref.processor().acc()) << budget;
    halted = r.halted;
  }
  EXPECT_EQ(dec.tier_counters().jit_bailouts, 0u);
  EXPECT_GE(dec.tier_counters().decoded_programs, 1u);
  EXPECT_EQ(dec.processor().pc(), ref.processor().pc());
}

TEST(ExecTier, InjectedDecodeFaultDegradesToReference) {
  // Chaos site "cpu.decode": a failed pre-decode must degrade the system
  // to the reference interpreter for that run, never error the defect.
  struct Disarm {
    ~Disarm() { util::FaultInjector::global().disarm(); }
  } disarm_on_exit;
  cpu::MemoryImage image;
  image.set(0x020, cpu::encode_single(cpu::SingleOp::kInc));
  image.set(0x021, cpu::encode_single(cpu::SingleOp::kHlt));
  const TierRun reference =
      run_on_tier(ExecTier::kReference, image, 0x020, 1000);

  util::FaultInjector::global().configure("cpu.decode@1");
  soc::System sys{tier_config(ExecTier::kDecoded)};
  sys.load_and_reset(image, 0x020);  // pre-decode fails here
  const soc::RunResult r = sys.run(1000);
  EXPECT_EQ(r.cycles, reference.result.cycles);
  EXPECT_EQ(r.halted, reference.result.halted);
  EXPECT_EQ(sys.processor().acc(), reference.acc);
  EXPECT_GE(sys.tier_counters().jit_bailouts, 1u);

  // The very next load succeeds (the site fired once) and runs decoded.
  util::FaultInjector::global().disarm();
  sys.load_and_reset(image, 0x020);
  const soc::RunResult again = sys.run(1000);
  EXPECT_EQ(again.cycles, reference.result.cycles);
  EXPECT_GT(sys.tier_counters().decoded_programs +
                sys.tier_counters().decode_cache_hits,
            0u);
}

TEST(ExecTier, InjectedJitMapFaultDegradesToDecoded) {
  if (!cpu::JitBuffer::platform_supported())
    GTEST_SKIP() << "no mmap backend compiled in";
  struct Disarm {
    ~Disarm() { util::FaultInjector::global().disarm(); }
  } disarm_on_exit;
  cpu::MemoryImage image;
  image.set(0x020, cpu::encode_single(cpu::SingleOp::kInc));
  image.set(0x021, cpu::encode_single(cpu::SingleOp::kHlt));
  const TierRun reference =
      run_on_tier(ExecTier::kReference, image, 0x020, 1000);

  util::FaultInjector::global().configure("cpu.jit_map@1");
  const TierRun jit = run_on_tier(ExecTier::kJit, image, 0x020, 1000);
  expect_same_run(jit, reference, "jit with injected map fault");
  EXPECT_GE(jit.tiers.jit_bailouts, 1u);
  EXPECT_EQ(jit.tiers.jit_blocks, 0u);  // sticky degrade: nothing compiled
}

TEST(JitBuffer, LifecycleHonorsWxAndCapacity) {
  if (!cpu::JitBuffer::platform_supported())
    GTEST_SKIP() << "no mmap backend compiled in";
  cpu::JitBuffer b;
  EXPECT_FALSE(b.mapped());
  EXPECT_FALSE(b.emit8(0x90));  // unmapped: nothing to write into
  ASSERT_EQ(b.map(64), cpu::JitError::kOk);
  EXPECT_TRUE(b.mapped());
  EXPECT_GE(b.capacity(), 64u);  // rounded up to the page size
  EXPECT_FALSE(b.executable());

  EXPECT_TRUE(b.emit8(0xC3));
  cpu::JitBuffer::Label site;
  EXPECT_TRUE(b.emit_rel32_placeholder(&site));
  b.patch_rel32(site, 0);
  EXPECT_EQ(b.used(), 5u);

  ASSERT_EQ(b.make_executable(), cpu::JitError::kOk);
  EXPECT_TRUE(b.executable());
  EXPECT_FALSE(b.emit8(0x90));  // W^X: executable is never writable
  EXPECT_EQ(b.used(), 5u);
  ASSERT_EQ(b.make_writable(), cpu::JitError::kOk);
  EXPECT_FALSE(b.executable());

  b.truncate(1);
  EXPECT_EQ(b.used(), 1u);
  while (b.emit8(0x90)) {
  }
  EXPECT_EQ(b.used(), b.capacity());  // kBufferFull: no partial writes
  EXPECT_FALSE(b.emit32(0));
  b.unmap();
  EXPECT_FALSE(b.mapped());
  EXPECT_EQ(b.used(), 0u);
}

TEST(JitBuffer, MapConsultsTheJitMapFaultSite) {
  if (!cpu::JitBuffer::platform_supported())
    GTEST_SKIP() << "no mmap backend compiled in";
  struct Disarm {
    ~Disarm() { util::FaultInjector::global().disarm(); }
  } disarm_on_exit;
  util::FaultInjector::global().configure("cpu.jit_map@1");
  cpu::JitBuffer b;
  EXPECT_EQ(b.map(4096), cpu::JitError::kInjected);
  EXPECT_FALSE(b.mapped());
  util::FaultInjector::global().disarm();
  EXPECT_EQ(b.map(4096), cpu::JitError::kOk);
  EXPECT_STREQ(cpu::to_string(cpu::JitError::kInjected), "injected");
}

TEST(DefectRunCache, MemoizesWholeRunsForAcceleratedTiersOnly) {
  sim::DefectRunCache::global().clear();
  sim::GoldRunCache::global().clear();
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const soc::SystemConfig decoded;  // default tier: decoded
  const auto lib =
      sim::make_defect_library(decoded, soc::BusKind::kData, 6, 321);

  util::CampaignStats stats1;
  sim::CampaignOptions o1;
  o1.stats = &stats1;
  o1.batched = false;
  const auto first =
      sim::run_detection(decoded, prog.program, soc::BusKind::kData, lib, o1);
  EXPECT_EQ(stats1.run_reuses, 0u);  // cold memo: everything simulated

  util::CampaignStats stats2;
  sim::CampaignOptions o2 = o1;
  o2.stats = &stats2;
  const auto second =
      sim::run_detection(decoded, prog.program, soc::BusKind::kData, lib, o2);
  EXPECT_EQ(stats2.run_reuses, lib.size());  // warm memo: nothing simulated
  EXPECT_EQ(second, first);

  // The reference tier never consults the memo: it keeps the seed's
  // simulate-everything behaviour.
  soc::SystemConfig reference = decoded;
  reference.exec_tier = ExecTier::kReference;
  util::CampaignStats stats3;
  sim::CampaignOptions o3 = o1;
  o3.stats = &stats3;
  const auto third = sim::run_detection(reference, prog.program,
                                        soc::BusKind::kData, lib, o3);
  EXPECT_EQ(stats3.run_reuses, 0u);
  EXPECT_EQ(third, first);

  // An armed fault injector also disables the memo (chaos runs must
  // really re-simulate the runs their fault scripts target).
  util::FaultInjector::global().configure("never.fires@1000000");
  util::CampaignStats stats4;
  sim::CampaignOptions o4 = o1;
  o4.stats = &stats4;
  const auto fourth =
      sim::run_detection(decoded, prog.program, soc::BusKind::kData, lib, o4);
  util::FaultInjector::global().disarm();
  EXPECT_EQ(stats4.run_reuses, 0u);
  EXPECT_EQ(fourth, first);
  sim::DefectRunCache::global().clear();
  EXPECT_EQ(sim::DefectRunCache::global().size(), 0u);
}

TEST(SystemPool, PoolsAcceleratedSystemsAndBypassesReference) {
  auto& pool = sim::SystemPool::global();
  pool.clear();
  const soc::SystemConfig decoded;  // default tier: decoded
  {
    auto lease = pool.acquire(decoded);
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease->exec_tier(), ExecTier::kDecoded);
  }
  EXPECT_EQ(pool.idle_count(), 1u);  // parked on release
  {
    auto lease = pool.acquire(decoded);
    EXPECT_EQ(pool.idle_count(), 0u);  // the parked simulator was revived
  }
  EXPECT_EQ(pool.idle_count(), 1u);

  soc::SystemConfig reference = decoded;
  reference.exec_tier = ExecTier::kReference;
  {
    auto lease = pool.acquire(reference);
    ASSERT_TRUE(lease);
  }
  EXPECT_EQ(pool.idle_count(), 1u);  // reference lease was not parked

  util::FaultInjector::global().configure("never.fires@1000000");
  {
    auto lease = pool.acquire(decoded);
    ASSERT_TRUE(lease);
  }
  util::FaultInjector::global().disarm();
  EXPECT_EQ(pool.idle_count(), 1u);  // armed injector bypasses pooling

  pool.clear();
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(CampaignStats, JsonCarriesTierAndRunMemoCounters) {
  util::CampaignStats stats;
  stats.decoded_programs = 2;
  stats.decode_cache_hits = 5;
  stats.jit_blocks = 3;
  stats.jit_bailouts = 1;
  stats.run_reuses = 7;
  const std::string j = stats.json("tier");
  EXPECT_NE(j.find("\"decoded_programs\":2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"decode_cache_hits\":5"), std::string::npos) << j;
  EXPECT_NE(j.find("\"jit_blocks\":3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"jit_bailouts\":1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"run_reuses\":7"), std::string::npos) << j;

  util::CampaignStats merged;
  merged.merge_from(stats);
  merged.merge_from(stats);
  EXPECT_EQ(merged.decoded_programs, 4u);
  EXPECT_EQ(merged.jit_bailouts, 2u);
  EXPECT_EQ(merged.run_reuses, 14u);
}

TEST(ExecTier, CampaignAccountsDecodeTraffic) {
  const soc::SystemConfig decoded;  // default tier: decoded
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const auto lib =
      sim::make_defect_library(decoded, soc::BusKind::kAddress, 5, 77);
  sim::DefectRunCache::global().clear();
  util::CampaignStats stats;
  sim::CampaignOptions o;
  o.stats = &stats;
  o.batched = false;
  sim::run_detection(decoded, prog.program, soc::BusKind::kAddress, lib, o);
  // One pre-decode for the campaign's program; every per-defect reload
  // reuses it through the pinned micro-program or the decode cache.
  EXPECT_GT(stats.decoded_programs + stats.decode_cache_hits, 0u);

  soc::SystemConfig reference = decoded;
  reference.exec_tier = ExecTier::kReference;
  reference.fast_receive = false;
  reference.transition_cache = false;
  util::CampaignStats ref_stats;
  sim::CampaignOptions ro;
  ro.stats = &ref_stats;
  ro.batched = false;
  sim::run_detection(reference, prog.program, soc::BusKind::kAddress, lib, ro);
  EXPECT_EQ(ref_stats.decoded_programs, 0u);
  EXPECT_EQ(ref_stats.decode_cache_hits, 0u);
  EXPECT_EQ(ref_stats.jit_bailouts, 0u);
  EXPECT_EQ(ref_stats.run_reuses, 0u);
}

}  // namespace
}  // namespace xtest
