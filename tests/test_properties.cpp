// Cross-module property and exhaustive tests.

#include <map>

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "cpu/cpu.h"
#include "sbst/generator.h"
#include "sim/serialize.h"
#include "sim/verify.h"
#include "soc/system.h"

namespace xtest {
namespace {

// ---------------------------------------------------------------------------
// Exhaustive ALU semantics against an independent reference.

class AluPort : public cpu::BusPort {
 public:
  std::uint8_t read(cpu::Addr a) override { return mem[a]; }
  void write(cpu::Addr a, std::uint8_t d) override { mem[a] = d; }
  void internal_cycle() override {}
  std::array<std::uint8_t, cpu::kMemWords> mem{};
};

struct AluResult {
  std::uint8_t acc;
  bool c, v, z, n;
};

AluResult run_binop(cpu::Opcode op, std::uint8_t a, std::uint8_t m) {
  AluPort port;
  // lda A; <op> M; hlt
  port.mem[0x000] = 0x03;  // lda page 3
  port.mem[0x001] = 0x00;
  port.mem[0x002] =
      static_cast<std::uint8_t>((static_cast<unsigned>(op) << 4) | 0x3);
  port.mem[0x003] = 0x01;
  port.mem[0x004] = 0xF8;  // hlt
  port.mem[0x300] = a;
  port.mem[0x301] = m;
  cpu::Cpu core(port);
  core.reset(0);
  core.run(1000);
  const cpu::Flags f = core.flags();
  return {core.acc(), f.c, f.v, f.z, f.n};
}

TEST(ExhaustiveAlu, AddMatchesReferenceForAllOperands) {
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned m = 0; m < 256; m += 7) {
      const AluResult r = run_binop(cpu::Opcode::kAdd,
                                    static_cast<std::uint8_t>(a),
                                    static_cast<std::uint8_t>(m));
      const unsigned sum = a + m;
      ASSERT_EQ(r.acc, sum & 0xFF) << a << "+" << m;
      ASSERT_EQ(r.c, sum > 0xFF);
      const bool v = (~(a ^ m) & (a ^ sum) & 0x80) != 0;
      ASSERT_EQ(r.v, v);
      ASSERT_EQ(r.z, (sum & 0xFF) == 0);
      ASSERT_EQ(r.n, (sum & 0x80) != 0);
    }
  }
}

TEST(ExhaustiveAlu, SubMatchesReferenceForAllOperands) {
  for (unsigned a = 0; a < 256; a += 5) {
    for (unsigned m = 0; m < 256; m += 11) {
      const AluResult r = run_binop(cpu::Opcode::kSub,
                                    static_cast<std::uint8_t>(a),
                                    static_cast<std::uint8_t>(m));
      const unsigned diff = a - m;
      ASSERT_EQ(r.acc, diff & 0xFF);
      ASSERT_EQ(r.c, a >= m);  // no borrow
      const bool v = ((a ^ m) & (a ^ diff) & 0x80) != 0;
      ASSERT_EQ(r.v, v);
    }
  }
}

TEST(ExhaustiveAlu, LogicOpsMatchReference) {
  for (unsigned a = 0; a < 256; a += 17) {
    for (unsigned m = 0; m < 256; m += 13) {
      ASSERT_EQ(run_binop(cpu::Opcode::kAnd, a, m).acc, a & m);
      ASSERT_EQ(run_binop(cpu::Opcode::kOra, a, m).acc, a | m);
      ASSERT_EQ(run_binop(cpu::Opcode::kXra, a, m).acc, a ^ m);
    }
  }
}

// ---------------------------------------------------------------------------
// Shift identities.

TEST(ShiftProperties, AslIsAddToSelf) {
  for (unsigned a = 0; a < 256; ++a) {
    AluPort port;
    port.mem[0x000] = 0x03;
    port.mem[0x001] = 0x00;
    port.mem[0x002] = 0xF5;  // asl
    port.mem[0x003] = 0xF8;  // hlt
    port.mem[0x300] = static_cast<std::uint8_t>(a);
    cpu::Cpu core(port);
    core.reset(0);
    core.run(1000);
    ASSERT_EQ(core.acc(), (a << 1) & 0xFF);
    ASSERT_EQ(core.flags().c, (a & 0x80) != 0);
  }
}

TEST(ShiftProperties, AsrPreservesSign) {
  for (unsigned a = 0; a < 256; ++a) {
    AluPort port;
    port.mem[0x000] = 0x03;
    port.mem[0x001] = 0x00;
    port.mem[0x002] = 0xF6;  // asr
    port.mem[0x003] = 0xF8;
    port.mem[0x300] = static_cast<std::uint8_t>(a);
    cpu::Cpu core(port);
    core.reset(0);
    core.run(1000);
    const unsigned expect = (a >> 1) | (a & 0x80);
    ASSERT_EQ(core.acc(), expect);
  }
}

// ---------------------------------------------------------------------------
// MA-test structural properties across widths and victims.

class MaProperties
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(MaProperties, GlitchPairsAreComplementaryAcrossTypes) {
  const auto [width, victim] = GetParam();
  if (victim >= width) GTEST_SKIP();
  const auto gp = xtalk::ma_test(
      width, {victim, xtalk::MafType::kPositiveGlitch,
              xtalk::BusDirection::kCpuToCore});
  const auto gn = xtalk::ma_test(
      width, {victim, xtalk::MafType::kNegativeGlitch,
              xtalk::BusDirection::kCpuToCore});
  EXPECT_EQ(gp.v1.inverted(), gn.v1);
  EXPECT_EQ(gp.v2.inverted(), gn.v2);
  const auto dr = xtalk::ma_test(
      width, {victim, xtalk::MafType::kRisingDelay,
              xtalk::BusDirection::kCpuToCore});
  const auto df = xtalk::ma_test(
      width, {victim, xtalk::MafType::kFallingDelay,
              xtalk::BusDirection::kCpuToCore});
  EXPECT_EQ(dr.v1, df.v2);
  EXPECT_EQ(dr.v2, df.v1);
}

TEST_P(MaProperties, FaultyV2DiffersInExactlyTheVictim) {
  const auto [width, victim] = GetParam();
  if (victim >= width) GTEST_SKIP();
  for (xtalk::MafType t : xtalk::kAllMafTypes) {
    const xtalk::MafFault f{victim, t, xtalk::BusDirection::kCpuToCore};
    const auto pair = xtalk::ma_test(width, f);
    const auto bad = xtalk::faulty_v2(f, pair);
    EXPECT_EQ(bad.hamming_distance(pair.v2), 1u);
    EXPECT_NE(bad.bit(victim), pair.v2.bit(victim));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaProperties,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 12u, 16u),
                       ::testing::Values(0u, 1u, 5u, 11u, 15u)));

// ---------------------------------------------------------------------------
// Generated programs round-trip through serialisation and still verify.

TEST(ProgramProperties, SerialisedProgramStillFullyEffective) {
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  sbst::TestProgram copy = gen.program;
  copy.image = sim::image_from_text(sim::image_to_text(gen.program.image));
  const sim::VerificationResult ver = sim::verify_program(copy);
  EXPECT_TRUE(ver.all_effective());
}

TEST(ProgramProperties, DisassemblyListsEveryChainJmp) {
  // Every piece of the chain ends in a JMP; the disassembly of the image
  // must contain at least as many jmps as response groups.
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::string listing = cpu::disassemble_image(gen.program.image);
  std::size_t jmps = 0;
  for (std::size_t pos = 0; (pos = listing.find("jmp ", pos)) !=
                            std::string::npos;
       ++pos)
    ++jmps;
  EXPECT_GE(jmps, gen.program.response_cells.size() / 2);
}

// ---------------------------------------------------------------------------
// Whole-system determinism.

TEST(SystemProperties, RunsAreBitExactAcrossSystems) {
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  soc::System a, b;
  const auto ra = sim::run_and_capture(a, gen.program, 1'000'000);
  const auto rb = sim::run_and_capture(b, gen.program, 1'000'000);
  EXPECT_TRUE(ra.matches(rb));
  EXPECT_EQ(ra.cycles, rb.cycles);
}

TEST(SystemProperties, GroupSignaturesAreAccumulatedSums) {
  // For every fully one-hot compacted group, the gold signature equals the
  // modular sum of its members' pass values (Fig. 8's arithmetic).
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const sim::VerificationResult ver = sim::verify_program(gen.program);

  std::map<int, unsigned> sums;
  std::map<int, bool> pure;  // group contains only fresh one-hot passes
  for (const auto& t : gen.program.tests) {
    if (t.group < 0) continue;
    sums[t.group] += t.pass_value;
    const bool one_hot =
        t.pass_value != 0 && (t.pass_value & (t.pass_value - 1)) == 0;
    if (!pure.count(t.group)) pure[t.group] = true;
    pure[t.group] = pure[t.group] && one_hot &&
                    (t.scheme == sbst::Scheme::kAddrDelay ||
                     t.scheme == sbst::Scheme::kAddrGlitch);
  }
  int checked = 0;
  for (const auto& [group, sum] : sums) {
    if (!pure[group]) continue;
    // Locate the group's response cell via any member test.
    for (std::size_t i = 0; i < gen.program.tests.size(); ++i) {
      if (gen.program.tests[i].group != group) continue;
      const cpu::Addr cell = gen.program.tests[i].response_cell;
      for (std::size_t k = 0; k < gen.program.response_cells.size(); ++k)
        if (gen.program.response_cells[k] == cell) {
          EXPECT_EQ(ver.gold.values[k], sum & 0xFF) << "group " << group;
          ++checked;
        }
      break;
    }
  }
  EXPECT_GT(checked, 0);
}

// ---------------------------------------------------------------------------
// Signature-compaction properties (Sec. 4.3).
//
// A response group accumulates up to 8 one-hot pass values with ADD into a
// single signature byte.  The diagnosis code relies on two arithmetic
// facts: distinct one-hot contributions sum without carries (so the gold
// signature is their OR, and a missing contribution flips exactly its own
// bit), and the detection guarantee that any single wrong contribution
// changes the byte.  Beyond 8 members the one-hot space is exhausted and
// wrap-around aliasing becomes possible -- which is exactly why
// GeneratorConfig::group_size must stay <= 8.

TEST(SignatureCompaction, SingleFlippedPassValueAlwaysChangesSignature) {
  // For every group size 1..8, every failing member, and every wrong
  // contribution byte, the ADD signature differs from gold.
  for (unsigned size = 1; size <= 8; ++size) {
    std::uint8_t gold = 0;
    for (unsigned k = 0; k < size; ++k)
      gold = static_cast<std::uint8_t>(gold + (1u << k));
    for (unsigned fail = 0; fail < size; ++fail) {
      const std::uint8_t pass = static_cast<std::uint8_t>(1u << fail);
      for (unsigned wrong = 0; wrong < 256; ++wrong) {
        if (wrong == pass) continue;
        const std::uint8_t observed =
            static_cast<std::uint8_t>(gold - pass + wrong);
        ASSERT_NE(observed, gold)
            << "size " << size << " member " << fail << " wrong " << wrong;
      }
    }
  }
}

TEST(SignatureCompaction, MissingContributionFlipsExactlyItsOwnBit) {
  // Distinct one-hot values sum carry-free, so a test that never ran
  // (contribution 0) flips precisely its one-hot bit: the XOR-overlap rule
  // diagnose() uses implicates the failing test uniquely.
  for (unsigned size = 1; size <= 8; ++size) {
    std::uint8_t gold = 0;
    for (unsigned k = 0; k < size; ++k)
      gold = static_cast<std::uint8_t>(gold + (1u << k));
    for (unsigned fail = 0; fail < size; ++fail) {
      const std::uint8_t pass = static_cast<std::uint8_t>(1u << fail);
      const std::uint8_t observed = static_cast<std::uint8_t>(gold - pass);
      EXPECT_EQ(static_cast<std::uint8_t>(gold ^ observed), pass);
      // No other member's one-hot value overlaps the flipped bits.
      for (unsigned other = 0; other < size; ++other)
        if (other != fail)
          EXPECT_EQ((gold ^ observed) & (1u << other), 0u);
    }
  }
}

TEST(SignatureCompaction, NinthMemberWrapsAndAliases) {
  // Pigeonhole: a 9th member must reuse a one-hot value, and the ADD
  // accumulation then carries -- two different failing tests become
  // indistinguishable (alias), so over-full groups lose diagnosability.
  std::uint8_t gold = 0;
  for (unsigned k = 0; k < 8; ++k)
    gold = static_cast<std::uint8_t>(gold + (1u << k));
  const std::uint8_t dup = 0x01;  // 9th member reuses bit 0
  gold = static_cast<std::uint8_t>(gold + dup);  // 0xFF + 1 wraps to 0x00
  EXPECT_EQ(gold, 0x00);  // the wrap itself: signature no longer the OR
  // Member 0 failing (contributing 0) and the duplicate failing alias:
  const std::uint8_t member0_fails = static_cast<std::uint8_t>(gold - 0x01);
  const std::uint8_t dup_fails = static_cast<std::uint8_t>(gold - dup);
  EXPECT_EQ(member0_fails, dup_fails);
}

TEST(SignatureCompaction, GeneratedGroupsStayWithinCapacity) {
  // Generator invariant guarding the wrap hazard above: no response group
  // ever accumulates more than group_size (8) contributions, so a fully
  // one-hot group can never exhaust the 8 distinct slots and wrap.
  const std::vector<sbst::GenerationResult> sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  std::size_t groups_checked = 0;
  for (const auto& s : sessions) {
    std::map<int, unsigned> counts;
    for (const auto& t : s.program.tests)
      if (t.group >= 0) ++counts[t.group];
    for (const auto& [group, n] : counts) {
      EXPECT_LE(n, 8u) << "group " << group << " over one-hot capacity";
      ++groups_checked;
    }
  }
  EXPECT_GT(groups_checked, 0u);
}

TEST(SignatureCompaction, GeneratedPureOneHotGroupsNeverAliasOrWrap) {
  // For the Fig. 8 groups built entirely from fresh one-hot slots (the
  // allocator's value-sharing fallback can also adopt an existing cell's
  // arbitrary byte as a pass value; those groups are excluded exactly as
  // in GroupSignaturesAreAccumulatedSums above), the slots must be
  // distinct and sum carry-free: signature == OR, so a single missing
  // contribution flips precisely its own bit and diagnosis stays sound.
  const std::vector<sbst::GenerationResult> sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  std::size_t groups_checked = 0;
  for (const auto& s : sessions) {
    std::map<int, unsigned> sums, ors;
    std::map<int, bool> pure;
    for (const auto& t : s.program.tests) {
      if (t.group < 0) continue;
      const std::uint8_t p = t.pass_value;
      const bool one_hot = p != 0 && (p & (p - 1)) == 0;
      if (!pure.count(t.group)) pure[t.group] = true;
      pure[t.group] = pure[t.group] && one_hot &&
                      (t.scheme == sbst::Scheme::kAddrDelay ||
                       t.scheme == sbst::Scheme::kAddrGlitch);
      sums[t.group] += p;
      ors[t.group] |= p;
    }
    for (const auto& [group, is_pure] : pure) {
      if (!is_pure) continue;
      EXPECT_LE(sums[group], 0xFFu) << "group " << group << " wrapped";
      EXPECT_EQ(sums[group], ors[group])
          << "group " << group << " has duplicate one-hot slots";
      ++groups_checked;
    }
  }
  EXPECT_GT(groups_checked, 0u);
}

}  // namespace
}  // namespace xtest
