// Cross-module property and exhaustive tests.

#include <map>

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "cpu/cpu.h"
#include "sbst/generator.h"
#include "sim/serialize.h"
#include "sim/verify.h"
#include "soc/system.h"

namespace xtest {
namespace {

// ---------------------------------------------------------------------------
// Exhaustive ALU semantics against an independent reference.

class AluPort : public cpu::BusPort {
 public:
  std::uint8_t read(cpu::Addr a) override { return mem[a]; }
  void write(cpu::Addr a, std::uint8_t d) override { mem[a] = d; }
  void internal_cycle() override {}
  std::array<std::uint8_t, cpu::kMemWords> mem{};
};

struct AluResult {
  std::uint8_t acc;
  bool c, v, z, n;
};

AluResult run_binop(cpu::Opcode op, std::uint8_t a, std::uint8_t m) {
  AluPort port;
  // lda A; <op> M; hlt
  port.mem[0x000] = 0x03;  // lda page 3
  port.mem[0x001] = 0x00;
  port.mem[0x002] =
      static_cast<std::uint8_t>((static_cast<unsigned>(op) << 4) | 0x3);
  port.mem[0x003] = 0x01;
  port.mem[0x004] = 0xF8;  // hlt
  port.mem[0x300] = a;
  port.mem[0x301] = m;
  cpu::Cpu core(port);
  core.reset(0);
  core.run(1000);
  const cpu::Flags f = core.flags();
  return {core.acc(), f.c, f.v, f.z, f.n};
}

TEST(ExhaustiveAlu, AddMatchesReferenceForAllOperands) {
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned m = 0; m < 256; m += 7) {
      const AluResult r = run_binop(cpu::Opcode::kAdd,
                                    static_cast<std::uint8_t>(a),
                                    static_cast<std::uint8_t>(m));
      const unsigned sum = a + m;
      ASSERT_EQ(r.acc, sum & 0xFF) << a << "+" << m;
      ASSERT_EQ(r.c, sum > 0xFF);
      const bool v = (~(a ^ m) & (a ^ sum) & 0x80) != 0;
      ASSERT_EQ(r.v, v);
      ASSERT_EQ(r.z, (sum & 0xFF) == 0);
      ASSERT_EQ(r.n, (sum & 0x80) != 0);
    }
  }
}

TEST(ExhaustiveAlu, SubMatchesReferenceForAllOperands) {
  for (unsigned a = 0; a < 256; a += 5) {
    for (unsigned m = 0; m < 256; m += 11) {
      const AluResult r = run_binop(cpu::Opcode::kSub,
                                    static_cast<std::uint8_t>(a),
                                    static_cast<std::uint8_t>(m));
      const unsigned diff = a - m;
      ASSERT_EQ(r.acc, diff & 0xFF);
      ASSERT_EQ(r.c, a >= m);  // no borrow
      const bool v = ((a ^ m) & (a ^ diff) & 0x80) != 0;
      ASSERT_EQ(r.v, v);
    }
  }
}

TEST(ExhaustiveAlu, LogicOpsMatchReference) {
  for (unsigned a = 0; a < 256; a += 17) {
    for (unsigned m = 0; m < 256; m += 13) {
      ASSERT_EQ(run_binop(cpu::Opcode::kAnd, a, m).acc, a & m);
      ASSERT_EQ(run_binop(cpu::Opcode::kOra, a, m).acc, a | m);
      ASSERT_EQ(run_binop(cpu::Opcode::kXra, a, m).acc, a ^ m);
    }
  }
}

// ---------------------------------------------------------------------------
// Shift identities.

TEST(ShiftProperties, AslIsAddToSelf) {
  for (unsigned a = 0; a < 256; ++a) {
    AluPort port;
    port.mem[0x000] = 0x03;
    port.mem[0x001] = 0x00;
    port.mem[0x002] = 0xF5;  // asl
    port.mem[0x003] = 0xF8;  // hlt
    port.mem[0x300] = static_cast<std::uint8_t>(a);
    cpu::Cpu core(port);
    core.reset(0);
    core.run(1000);
    ASSERT_EQ(core.acc(), (a << 1) & 0xFF);
    ASSERT_EQ(core.flags().c, (a & 0x80) != 0);
  }
}

TEST(ShiftProperties, AsrPreservesSign) {
  for (unsigned a = 0; a < 256; ++a) {
    AluPort port;
    port.mem[0x000] = 0x03;
    port.mem[0x001] = 0x00;
    port.mem[0x002] = 0xF6;  // asr
    port.mem[0x003] = 0xF8;
    port.mem[0x300] = static_cast<std::uint8_t>(a);
    cpu::Cpu core(port);
    core.reset(0);
    core.run(1000);
    const unsigned expect = (a >> 1) | (a & 0x80);
    ASSERT_EQ(core.acc(), expect);
  }
}

// ---------------------------------------------------------------------------
// MA-test structural properties across widths and victims.

class MaProperties
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(MaProperties, GlitchPairsAreComplementaryAcrossTypes) {
  const auto [width, victim] = GetParam();
  if (victim >= width) GTEST_SKIP();
  const auto gp = xtalk::ma_test(
      width, {victim, xtalk::MafType::kPositiveGlitch,
              xtalk::BusDirection::kCpuToCore});
  const auto gn = xtalk::ma_test(
      width, {victim, xtalk::MafType::kNegativeGlitch,
              xtalk::BusDirection::kCpuToCore});
  EXPECT_EQ(gp.v1.inverted(), gn.v1);
  EXPECT_EQ(gp.v2.inverted(), gn.v2);
  const auto dr = xtalk::ma_test(
      width, {victim, xtalk::MafType::kRisingDelay,
              xtalk::BusDirection::kCpuToCore});
  const auto df = xtalk::ma_test(
      width, {victim, xtalk::MafType::kFallingDelay,
              xtalk::BusDirection::kCpuToCore});
  EXPECT_EQ(dr.v1, df.v2);
  EXPECT_EQ(dr.v2, df.v1);
}

TEST_P(MaProperties, FaultyV2DiffersInExactlyTheVictim) {
  const auto [width, victim] = GetParam();
  if (victim >= width) GTEST_SKIP();
  for (xtalk::MafType t : xtalk::kAllMafTypes) {
    const xtalk::MafFault f{victim, t, xtalk::BusDirection::kCpuToCore};
    const auto pair = xtalk::ma_test(width, f);
    const auto bad = xtalk::faulty_v2(f, pair);
    EXPECT_EQ(bad.hamming_distance(pair.v2), 1u);
    EXPECT_NE(bad.bit(victim), pair.v2.bit(victim));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaProperties,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 12u, 16u),
                       ::testing::Values(0u, 1u, 5u, 11u, 15u)));

// ---------------------------------------------------------------------------
// Generated programs round-trip through serialisation and still verify.

TEST(ProgramProperties, SerialisedProgramStillFullyEffective) {
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  sbst::TestProgram copy = gen.program;
  copy.image = sim::image_from_text(sim::image_to_text(gen.program.image));
  const sim::VerificationResult ver = sim::verify_program(copy);
  EXPECT_TRUE(ver.all_effective());
}

TEST(ProgramProperties, DisassemblyListsEveryChainJmp) {
  // Every piece of the chain ends in a JMP; the disassembly of the image
  // must contain at least as many jmps as response groups.
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::string listing = cpu::disassemble_image(gen.program.image);
  std::size_t jmps = 0;
  for (std::size_t pos = 0; (pos = listing.find("jmp ", pos)) !=
                            std::string::npos;
       ++pos)
    ++jmps;
  EXPECT_GE(jmps, gen.program.response_cells.size() / 2);
}

// ---------------------------------------------------------------------------
// Whole-system determinism.

TEST(SystemProperties, RunsAreBitExactAcrossSystems) {
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  soc::System a, b;
  const auto ra = sim::run_and_capture(a, gen.program, 1'000'000);
  const auto rb = sim::run_and_capture(b, gen.program, 1'000'000);
  EXPECT_TRUE(ra.matches(rb));
  EXPECT_EQ(ra.cycles, rb.cycles);
}

TEST(SystemProperties, GroupSignaturesAreAccumulatedSums) {
  // For every fully one-hot compacted group, the gold signature equals the
  // modular sum of its members' pass values (Fig. 8's arithmetic).
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const sim::VerificationResult ver = sim::verify_program(gen.program);

  std::map<int, unsigned> sums;
  std::map<int, bool> pure;  // group contains only fresh one-hot passes
  for (const auto& t : gen.program.tests) {
    if (t.group < 0) continue;
    sums[t.group] += t.pass_value;
    const bool one_hot =
        t.pass_value != 0 && (t.pass_value & (t.pass_value - 1)) == 0;
    if (!pure.count(t.group)) pure[t.group] = true;
    pure[t.group] = pure[t.group] && one_hot &&
                    (t.scheme == sbst::Scheme::kAddrDelay ||
                     t.scheme == sbst::Scheme::kAddrGlitch);
  }
  int checked = 0;
  for (const auto& [group, sum] : sums) {
    if (!pure[group]) continue;
    // Locate the group's response cell via any member test.
    for (std::size_t i = 0; i < gen.program.tests.size(); ++i) {
      if (gen.program.tests[i].group != group) continue;
      const cpu::Addr cell = gen.program.tests[i].response_cell;
      for (std::size_t k = 0; k < gen.program.response_cells.size(); ++k)
        if (gen.program.response_cells[k] == cell) {
          EXPECT_EQ(ver.gold.values[k], sum & 0xFF) << "group " << group;
          ++checked;
        }
      break;
    }
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace xtest
