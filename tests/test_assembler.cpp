#include "cpu/assembler.h"

#include <gtest/gtest.h>

namespace xtest::cpu {
namespace {

TEST(Assembler, MinimalProgram) {
  const AsmResult r = assemble(R"(
        cla
        hlt
  )");
  EXPECT_EQ(r.entry, 0x000);
  EXPECT_EQ(r.image.at(0x000), 0xF1);
  EXPECT_EQ(r.image.at(0x001), 0xF8);
  EXPECT_EQ(r.image.defined_count(), 2u);
}

TEST(Assembler, MemRefOperandForms) {
  const AsmResult r = assemble(R"(
        .org 0x100
        lda 0xfef        ; hex absolute
        add 15:0xef      ; page:offset (paper notation)
        sta 4079         ; decimal
  )");
  EXPECT_EQ(r.image.at(0x100), 0x0F);
  EXPECT_EQ(r.image.at(0x101), 0xEF);
  EXPECT_EQ(r.image.at(0x102), 0x2F);
  EXPECT_EQ(r.image.at(0x103), 0xEF);
  EXPECT_EQ(r.image.at(0x104), 0x6F);
  EXPECT_EQ(r.image.at(0x105), 0xEF);
}

TEST(Assembler, LabelsAndArithmetic) {
  const AsmResult r = assemble(R"(
start:  lda data
        add data+1
        jmp start
        .org 0x300
data:   .byte 0x11, 0x22
  )");
  EXPECT_EQ(r.symbols.at("start"), 0x000);
  EXPECT_EQ(r.symbols.at("data"), 0x300);
  EXPECT_EQ(r.image.at(0x000), 0x03);  // lda page 3
  EXPECT_EQ(r.image.at(0x001), 0x00);
  EXPECT_EQ(r.image.at(0x003), 0x01);  // data+1 offset
  EXPECT_EQ(r.image.at(0x300), 0x11);
  EXPECT_EQ(r.image.at(0x301), 0x22);
}

TEST(Assembler, ForwardReferences) {
  const AsmResult r = assemble(R"(
        jmp later
        .org 0x050
later:  hlt
  )");
  EXPECT_EQ(r.image.at(0x001), 0x50);
}

TEST(Assembler, BranchWithinPage) {
  const AsmResult r = assemble(R"(
        .org 0x210
loop:   inc
        bz  loop
  )");
  EXPECT_EQ(r.image.at(0x211), 0xE4);
  EXPECT_EQ(r.image.at(0x212), 0x10);  // offset of loop within page 2
}

TEST(Assembler, BranchOutOfPageFails) {
  EXPECT_THROW(assemble(R"(
        .org 0x2f0
        bz target
        .org 0x300
target: hlt
  )"),
               AsmError);
}

TEST(Assembler, ResAndByteDirectives) {
  const AsmResult r = assemble(R"(
        .org 0x010
buf:    .res 3
vals:   .byte 1, 0b10, 0x3
  )");
  EXPECT_EQ(r.symbols.at("vals"), 0x013);
  EXPECT_EQ(r.image.at(0x010), 0x00);
  EXPECT_TRUE(r.image.defined(0x012));
  EXPECT_EQ(r.image.at(0x014), 0x02);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("  cla\n  bogus 1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Assembler, RejectsDuplicateLabel) {
  EXPECT_THROW(assemble("x: nop\nx: nop\n"), AsmError);
}

TEST(Assembler, RejectsUnknownLabel) {
  EXPECT_THROW(assemble("jmp nowhere\n"), AsmError);
}

TEST(Assembler, RejectsOutOfRangeOperand) {
  EXPECT_THROW(assemble("lda 0x1000\n"), AsmError);
  EXPECT_THROW(assemble(".byte 300\n"), AsmError);
  EXPECT_THROW(assemble(".org 0x1000\n"), AsmError);
}

TEST(Assembler, CommentsAndBlankLines) {
  const AsmResult r = assemble(R"(
  ; a full-line comment

        nop   ; trailing comment
  )");
  EXPECT_EQ(r.image.defined_count(), 1u);
}

TEST(Assembler, EntryIsFirstInstruction) {
  const AsmResult r = assemble(R"(
        .org 0x020
data:   .byte 1
        .org 0x100
        cla
        hlt
  )");
  EXPECT_EQ(r.entry, 0x100);
}

TEST(Disassembler, ListsDefinedInstructions) {
  const AsmResult r = assemble(R"(
        .org 0x010
        add 0xf07
        hlt
  )");
  const std::string listing = disassemble_image(r.image);
  EXPECT_NE(listing.find("0x010: 2f 07   add 0xf07"), std::string::npos);
  EXPECT_NE(listing.find("hlt"), std::string::npos);
}

TEST(MemoryImage, MergeOverlays) {
  MemoryImage a, b;
  a.set(0x10, 1);
  b.set(0x20, 2);
  b.set(0x10, 3);
  a.merge(b);
  EXPECT_EQ(a.at(0x10), 3);
  EXPECT_EQ(a.at(0x20), 2);
  EXPECT_EQ(a.defined_count(), 2u);
}

}  // namespace
}  // namespace xtest::cpu
