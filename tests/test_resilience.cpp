// Campaign resilience: verdict taxonomy, defect quarantine, and
// checkpoint/resume equivalence.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/campaign.h"
#include "sim/checkpoint.h"
#include "sim/signature.h"
#include "sim/verdict.h"
#include "util/fault_injector.h"

namespace xtest::sim {
namespace {

constexpr std::uint64_t kSeed = 20010618;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---------------------------------------------------------------------------
// Verdict taxonomy.

TEST(Verdicts, ClassifyCoversAllThreeTesterOutcomes) {
  ResponseSnapshot gold;
  gold.completed = true;
  gold.values = {0x42, 0x17};

  ResponseSnapshot same = gold;
  EXPECT_EQ(classify(gold, same), Verdict::kUndetected);

  ResponseSnapshot mismatch = gold;
  mismatch.values[1] = 0x18;
  EXPECT_EQ(classify(gold, mismatch), Verdict::kDetected);

  // Never reached HLT: the tester times out -- even if the response cells
  // happen to hold the expected values.
  ResponseSnapshot hung = gold;
  hung.completed = false;
  EXPECT_EQ(classify(gold, hung), Verdict::kDetectedByTimeout);
}

TEST(Verdicts, CharCodesRoundTrip) {
  for (const Verdict v : {Verdict::kUndetected, Verdict::kDetected,
                          Verdict::kDetectedByTimeout, Verdict::kSimError}) {
    Verdict back = Verdict::kUndetected;
    ASSERT_TRUE(verdict_from_char(to_char(v), back));
    EXPECT_EQ(back, v);
  }
  Verdict unused;
  EXPECT_FALSE(verdict_from_char('x', unused));
  EXPECT_FALSE(verdict_from_char('.', unused));
}

TEST(Verdicts, MergePrefersStrongerEvidence) {
  using V = Verdict;
  EXPECT_EQ(merge_verdicts(V::kUndetected, V::kDetected), V::kDetected);
  EXPECT_EQ(merge_verdicts(V::kDetected, V::kDetectedByTimeout),
            V::kDetected);
  EXPECT_EQ(merge_verdicts(V::kUndetected, V::kDetectedByTimeout),
            V::kDetectedByTimeout);
  // A failed simulation must not be laundered into a clean pass.
  EXPECT_EQ(merge_verdicts(V::kSimError, V::kUndetected), V::kSimError);
  EXPECT_EQ(merge_verdicts(V::kSimError, V::kDetected), V::kDetected);
}

TEST(Verdicts, SimErrorIsNotCountedAsCoverage) {
  EXPECT_FALSE(is_detected(Verdict::kSimError));
  EXPECT_FALSE(is_detected(Verdict::kUndetected));
  EXPECT_TRUE(is_detected(Verdict::kDetected));
  EXPECT_TRUE(is_detected(Verdict::kDetectedByTimeout));
}

// ---------------------------------------------------------------------------
// Control-flow derailment is a timeout detection.

TEST(Resilience, DerailedJumpClassifiesAsDetectedByTimeout) {
  // A two-instruction program: JMP to a HLT.  The JMP's byte-2 fetch at v1
  // followed by the target fetch at v2 is exactly the MA test of a rising
  // delay on address line 5, so forcing that MAF corrupts the target
  // address: the victim bit stays low and the fetch lands at 0x000 in
  // undefined memory.  Undefined bytes read 0x00 = LDA, so the derailed
  // core executes an endless load sled and never reaches HLT -- the tester
  // sees a timeout, not a response mismatch.
  const xtalk::MafFault fault{5, xtalk::MafType::kRisingDelay,
                              xtalk::BusDirection::kCpuToCore};
  const xtalk::VectorPair pair = ma_test(cpu::kAddrBits, fault);
  const auto v1 = static_cast<cpu::Addr>(pair.v1.bits());
  const auto v2 = static_cast<cpu::Addr>(pair.v2.bits());

  sbst::TestProgram prog;
  prog.entry = static_cast<cpu::Addr>(v1 - 1);
  const auto jmp = cpu::encode_memref(cpu::Opcode::kJmp, v2);
  prog.image.set(prog.entry, jmp[0]);
  prog.image.set(v1, jmp[1]);
  prog.image.set(v2, cpu::encode_single(cpu::SingleOp::kHlt));
  prog.image.set(0x080, 0x42);
  prog.response_cells = {0x080};

  soc::System sys;
  const ResponseSnapshot gold = run_and_capture(sys, prog, 10'000);
  ASSERT_TRUE(gold.completed);
  ASSERT_EQ(gold.reason, cpu::HaltReason::kHltInstruction);

  sys.set_forced_maf(soc::ForcedMaf{soc::BusKind::kAddress, fault});
  const ResponseSnapshot hung =
      run_and_capture(sys, prog, gold.cycles * 16 + 1000);
  EXPECT_FALSE(hung.completed);
  EXPECT_EQ(hung.reason, cpu::HaltReason::kRunning);
  EXPECT_EQ(classify(gold, hung), Verdict::kDetectedByTimeout);
}

// ---------------------------------------------------------------------------
// Fault containment: a throwing defect is quarantined, not fatal.

xtalk::DefectLibrary poisoned_library(const xtalk::DefectLibrary& clean,
                                      std::size_t bad_index) {
  // A defect of the wrong bus width: constructible (4 wires, 6 factors),
  // but apply() on the 12-wire address bus throws -- deterministically, on
  // the first attempt and on the retry.
  std::vector<xtalk::Defect> defects = clean.defects();
  defects[bad_index] =
      xtalk::Defect(4, std::vector<double>(6, 1.0));
  return xtalk::DefectLibrary::from_defects(clean.config(), defects);
}

TEST(Resilience, ThrowingDefectIsQuarantinedAsSimError) {
  const soc::SystemConfig cfg;
  const auto clean_lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 12, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::vector<Verdict> clean =
      run_detection(cfg, prog.program, soc::BusKind::kAddress, clean_lib);

  constexpr std::size_t kBad = 5;
  const auto lib = poisoned_library(clean_lib, kBad);

  for (const unsigned threads : {1u, 4u}) {
    util::CampaignStats stats;
    CampaignOptions options;
    options.parallel = {threads};
    options.stats = &stats;
    const std::vector<Verdict> det =
        run_detection(cfg, prog.program, soc::BusKind::kAddress, lib,
                      options);

    // The campaign completed with exactly one quarantined defect; every
    // other verdict is untouched by its neighbour's failure.
    ASSERT_EQ(det.size(), lib.size());
    EXPECT_EQ(count_verdicts(det).sim_errors, 1u) << "threads=" << threads;
    EXPECT_EQ(det[kBad], Verdict::kSimError);
    for (std::size_t i = 0; i < det.size(); ++i)
      if (i != kBad) EXPECT_EQ(det[i], clean[i]) << i;

    EXPECT_EQ(stats.retries, 1u);     // retried once, serially
    EXPECT_EQ(stats.sim_errors, 1u);  // ...and still failed
    ASSERT_EQ(stats.error_log.size(), 1u);
    EXPECT_NE(stats.error_log[0].find("defect 5"), std::string::npos)
        << stats.error_log[0];
  }
}

TEST(Resilience, NoRetrySkipsTheSecondAttempt) {
  const soc::SystemConfig cfg;
  const auto clean_lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 8, kSeed);
  const auto lib = poisoned_library(clean_lib, 2);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();

  util::CampaignStats stats;
  CampaignOptions options;
  options.stats = &stats;
  options.retry_errors = false;
  const std::vector<Verdict> det =
      run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, options);
  EXPECT_EQ(det[2], Verdict::kSimError);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.error_log.size(), 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume.

TEST(Checkpoint, RecordsRestoreAndSurviveReopen) {
  const std::string path = temp_path("ckpt_roundtrip");
  std::remove(path.c_str());
  {
    CampaignCheckpoint ck(path, "unit-test-key", /*flush_every=*/2);
    auto slots = ck.restore("campaign", 4);
    ASSERT_EQ(slots.size(), 4u);
    for (const auto& s : slots) EXPECT_FALSE(s.has_value());
    ck.record("campaign", 1, Verdict::kDetected);
    ck.record("campaign", 3, Verdict::kDetectedByTimeout);
    ck.flush();
    EXPECT_EQ(ck.completed(), 2u);
  }
  {
    CampaignCheckpoint ck(path, "unit-test-key");
    const auto slots = ck.restore("campaign", 4);
    EXPECT_FALSE(slots[0].has_value());
    EXPECT_EQ(slots[1], Verdict::kDetected);
    EXPECT_FALSE(slots[2].has_value());
    EXPECT_EQ(slots[3], Verdict::kDetectedByTimeout);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsKeyMismatchAndGarbage) {
  const std::string path = temp_path("ckpt_mismatch");
  std::remove(path.c_str());
  {
    CampaignCheckpoint ck(path, "bus=addr count=10 seed=1");
    ck.restore("campaign", 10);
    ck.flush();
  }
  EXPECT_THROW(CampaignCheckpoint(path, "bus=data count=10 seed=1"),
               std::runtime_error);
  {
    std::ofstream f(path);
    f << "not a checkpoint at all\n";
  }
  EXPECT_THROW(CampaignCheckpoint(path, "bus=addr count=10 seed=1"),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Resilience, ResumedCampaignIsBitwiseIdenticalToUninterrupted) {
  // Simulate a campaign killed halfway: the checkpoint holds the first
  // half of the verdicts, then a fresh run resumes from the file.  The
  // resumed verdict vector must be bitwise identical to an uninterrupted
  // run -- for every bus and at every thread count.
  const soc::SystemConfig cfg;
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();

  for (const soc::BusKind bus : {soc::BusKind::kAddress, soc::BusKind::kData,
                                 soc::BusKind::kControl}) {
    const auto lib = make_defect_library(cfg, bus, 10, kSeed);
    const std::vector<Verdict> uninterrupted =
        run_detection(cfg, prog.program, bus, lib);

    for (const unsigned threads : {1u, 4u}) {
      const std::string path =
          temp_path("ckpt_resume_" + soc::to_string(bus) + "_" +
                    std::to_string(threads));
      std::remove(path.c_str());
      {
        CampaignCheckpoint half(path, default_checkpoint_key(bus, lib));
        half.restore("campaign", lib.size());
        for (std::size_t i = 0; i < lib.size() / 2; ++i)
          half.record("campaign", i, uninterrupted[i]);
        half.flush();
      }

      util::CampaignStats stats;
      CampaignOptions options;
      options.parallel = {threads};
      options.stats = &stats;
      options.checkpoint_path = path;
      const std::vector<Verdict> resumed =
          run_detection(cfg, prog.program, bus, lib, options);

      EXPECT_EQ(resumed, uninterrupted)
          << soc::to_string(bus) << " threads=" << threads;
      EXPECT_EQ(stats.restored_from_checkpoint, lib.size() / 2);
      EXPECT_EQ(stats.defects_simulated, lib.size() - lib.size() / 2);

      // The finished checkpoint restores every slot.
      CampaignCheckpoint done(path, default_checkpoint_key(bus, lib));
      const auto slots = done.restore("campaign", lib.size());
      for (std::size_t i = 0; i < lib.size(); ++i)
        EXPECT_EQ(slots[i], uninterrupted[i]) << i;
      std::remove(path.c_str());
    }
  }
}

TEST(Resilience, SessionCampaignResumesWithPerSessionSections) {
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 8, kSeed);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  const std::vector<Verdict> uninterrupted =
      run_detection_sessions(cfg, sessions, soc::BusKind::kData, lib);

  const std::string path = temp_path("ckpt_sessions");
  std::remove(path.c_str());
  for (const unsigned threads : {1u, 4u}) {
    util::CampaignStats stats;
    CampaignOptions options;
    options.parallel = {threads};
    options.stats = &stats;
    options.checkpoint_path = path;
    const std::vector<Verdict> det = run_detection_sessions(
        cfg, sessions, soc::BusKind::kData, lib, options);
    EXPECT_EQ(det, uninterrupted) << "threads=" << threads;
  }
  // The second loop iteration restored every session section of the first.
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint corruption matrix: every damaged file either salvages a valid
// prefix or restarts cleanly -- never an unhandled exception, and never a
// wrong verdict.

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good()) << path;
}

TEST(Checkpoint, TruncatedMidSectionSalvagesLongestValidPrefix) {
  const std::string path = temp_path("ckpt_truncate_mid");
  std::remove(path.c_str());
  {
    CampaignCheckpoint ck(path, "k");
    for (const char* s : {"s0", "s1", "s2"}) ck.restore(s, 4);
    for (std::size_t i = 0; i < 4; ++i) {
      ck.record("s0", i, Verdict::kDetected);
      ck.record("s1", i, Verdict::kUndetected);
      ck.record("s2", i, Verdict::kDetectedByTimeout);
    }
    ck.flush();
  }
  const std::string full = read_file(path);
  const std::size_t cut = full.find("section s2");
  ASSERT_NE(cut, std::string::npos);
  write_file(path, full.substr(0, cut + 5));  // mid "section s2" header

  CampaignCheckpoint ck(path, "k");
  EXPECT_TRUE(ck.salvage().salvaged);
  EXPECT_EQ(ck.salvage().sections_kept, 2u);
  const auto s0 = ck.restore("s0", 4);
  const auto s2 = ck.restore("s2", 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s0[i], Verdict::kDetected) << i;
    EXPECT_FALSE(s2[i].has_value()) << i;  // lost tail re-simulates
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, FlippedVerdictCharFailsTheSectionCrc) {
  const std::string path = temp_path("ckpt_bitflip");
  std::remove(path.c_str());
  {
    CampaignCheckpoint ck(path, "k");
    ck.restore("campaign", 6);
    for (std::size_t i = 0; i < 6; ++i)
      ck.record("campaign", i, Verdict::kDetected);
    ck.flush();
  }
  // Flip one verdict char to another *valid* char: only the CRC can tell.
  std::string text = read_file(path);
  const std::size_t crc2 = text.rfind("crc ");
  ASSERT_NE(crc2, std::string::npos);
  const std::size_t slot0 = crc2 - 7;  // 6 slot chars + newline before it
  ASSERT_EQ(text[slot0], 'D');
  text[slot0] = 'U';
  write_file(path, text);

  CampaignCheckpoint ck(path, "k");
  EXPECT_TRUE(ck.salvage().salvaged);
  EXPECT_EQ(ck.salvage().sections_kept, 0u);
  // Every completed verdict in the damaged tail is counted as lost work.
  EXPECT_EQ(ck.salvage().dropped_slots, 6u);
  for (const auto& slot : ck.restore("campaign", 6))
    EXPECT_FALSE(slot.has_value());
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptHeaderRestartsCleanlyInsteadOfMisreportingTheKey) {
  const std::string path = temp_path("ckpt_badheader");
  std::remove(path.c_str());
  {
    CampaignCheckpoint ck(path, "key-one");
    ck.restore("campaign", 4);
    ck.record("campaign", 0, Verdict::kDetected);
    ck.flush();
  }
  std::string text = read_file(path);
  const std::size_t crc_digit = text.find("\ncrc ") + 5;
  text[crc_digit] = text[crc_digit] == '0' ? '1' : '0';
  write_file(path, text);

  // A corrupt header means the stored key is unverifiable: even a
  // *different* campaign key must restart cleanly, not throw "mismatch"
  // against garbage.
  for (const char* key : {"key-one", "key-two"}) {
    CampaignCheckpoint ck(path, key);
    EXPECT_TRUE(ck.salvage().salvaged) << key;
    EXPECT_EQ(ck.salvage().sections_kept, 0u) << key;
    EXPECT_EQ(ck.completed(), 0u) << key;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, EmptyFileStartsFresh) {
  const std::string path = temp_path("ckpt_empty");
  write_file(path, "");
  CampaignCheckpoint ck(path, "k");
  EXPECT_FALSE(ck.salvage().salvaged);
  EXPECT_EQ(ck.completed(), 0u);
  for (const auto& slot : ck.restore("campaign", 3))
    EXPECT_FALSE(slot.has_value());
  std::remove(path.c_str());
}

TEST(Checkpoint, LegacyV1FileLoadsAndTheNextFlushUpgradesToV2) {
  const std::string path = temp_path("ckpt_v1");
  write_file(path,
             "xtest-checkpoint v1\n"
             "key k\n"
             "section campaign 4\n"
             "UD..\n");
  {
    CampaignCheckpoint ck(path, "k");
    EXPECT_FALSE(ck.salvage().salvaged);
    const auto slots = ck.restore("campaign", 4);
    EXPECT_EQ(slots[0], Verdict::kUndetected);
    EXPECT_EQ(slots[1], Verdict::kDetected);
    EXPECT_FALSE(slots[2].has_value());
    ck.flush();
  }
  const std::string text = read_file(path);
  EXPECT_EQ(text.rfind("xtest-checkpoint v2\n", 0), 0u) << text;
  {
    CampaignCheckpoint ck(path, "k");
    const auto slots = ck.restore("campaign", 4);
    EXPECT_EQ(slots[1], Verdict::kDetected);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, V1KeyMismatchStillThrows) {
  const std::string path = temp_path("ckpt_v1_mismatch");
  write_file(path, "xtest-checkpoint v1\nkey k\n");
  EXPECT_THROW(CampaignCheckpoint(path, "other"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncationAtEveryByteOffsetSalvagesOrRestartsNeverThrows) {
  // The acceptance bar of the resilience layer: cut a valid v2 file at
  // *any* byte offset and reopening must yield a usable checkpoint whose
  // every restored verdict matches what was recorded -- a slot is allowed
  // to be forgotten (re-simulated on resume), never wrong.
  const std::string path = temp_path("ckpt_everyoffset_src");
  std::remove(path.c_str());
  const Verdict v[4] = {Verdict::kDetected, Verdict::kUndetected,
                        Verdict::kDetectedByTimeout, Verdict::kSimError};
  {
    CampaignCheckpoint ck(path, "k");
    ck.restore("alpha", 4);
    ck.restore("beta", 4);
    for (std::size_t i = 0; i < 4; ++i) {
      ck.record("alpha", i, v[i]);
      ck.record("beta", i, v[3 - i]);
    }
    ck.flush();
  }
  const std::string full = read_file(path);
  ASSERT_GT(full.size(), 40u);

  const std::string cut_path = temp_path("ckpt_everyoffset_cut");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    write_file(cut_path, full.substr(0, len));
    try {
      CampaignCheckpoint ck(cut_path, "k");
      const auto alpha = ck.restore("alpha", 4);
      const auto beta = ck.restore("beta", 4);
      for (std::size_t i = 0; i < 4; ++i) {
        if (alpha[i]) {
          EXPECT_EQ(*alpha[i], v[i]) << "len=" << len;
        }
        if (beta[i]) {
          EXPECT_EQ(*beta[i], v[3 - i]) << "len=" << len;
        }
      }
      if (len + 1 < full.size()) {
        // A real truncation (more than the trailing newline) always cuts
        // the last group's CRC line: something is salvaged or dropped.
        EXPECT_TRUE(ck.salvage().salvaged || ck.completed() < 8u)
            << "len=" << len;
      }
    } catch (const std::exception& e) {
      ADD_FAILURE() << "truncation at byte " << len
                    << " threw: " << e.what();
    }
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(Checkpoint, ConcurrentRecordsAndFlushesStaySerializable) {
  const std::string path = temp_path("ckpt_concurrent");
  std::remove(path.c_str());
  constexpr std::size_t kSlots = 64;
  {
    CampaignCheckpoint ck(path, "k", /*flush_every=*/5);
    ck.restore("a", kSlots);
    ck.restore("b", kSlots);
    // Two recorders plus a flusher hammering the same file -- the model of
    // a signal-triggered final flush racing in-flight workers.
    std::thread ra([&] {
      for (std::size_t i = 0; i < kSlots; ++i)
        ck.record("a", i, Verdict::kDetected);
    });
    std::thread rb([&] {
      for (std::size_t i = 0; i < kSlots; ++i)
        ck.record("b", i, Verdict::kUndetected);
    });
    std::thread fl([&] {
      for (int i = 0; i < 25; ++i) ck.flush();
    });
    ra.join();
    rb.join();
    fl.join();
    ck.flush();
    EXPECT_EQ(ck.completed(), 2 * kSlots);
  }
  CampaignCheckpoint ck(path, "k");
  EXPECT_FALSE(ck.salvage().salvaged);
  const auto a = ck.restore("a", kSlots);
  const auto b = ck.restore("b", kSlots);
  for (std::size_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(a[i], Verdict::kDetected) << i;
    EXPECT_EQ(b[i], Verdict::kUndetected) << i;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Deterministic fault injection through the campaign layers.

/// Disarms the process-wide injector even when a test fails mid-way:
/// leaked injector state would poison every later test in this binary.
struct GlobalInjectorGuard {
  ~GlobalInjectorGuard() { util::FaultInjector::global().disarm(); }
};

TEST(Resilience, InjectedWorkerFaultIsRetriedAndRecovers) {
  GlobalInjectorGuard guard;
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 8, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::vector<Verdict> clean =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib);

  // The 5th simulation body throws once; the serial retry on a fresh
  // simulator must absorb it without a trace in the verdicts.
  util::FaultInjector::global().configure("parallel.item@5");
  util::CampaignStats stats;
  CampaignOptions options;
  options.parallel = {1u};
  options.stats = &stats;
  const std::vector<Verdict> det =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib, options);
  EXPECT_EQ(det, clean);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.sim_errors, 0u);
  EXPECT_TRUE(stats.error_log.empty());
}

TEST(Resilience, InjectedFaultWithoutRetryQuarantinesAsSimError) {
  GlobalInjectorGuard guard;
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 6, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();

  util::FaultInjector::global().configure("parallel.item@2");
  util::CampaignStats stats;
  CampaignOptions options;
  options.parallel = {1u};
  options.stats = &stats;
  options.retry_errors = false;
  const std::vector<Verdict> det =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib, options);
  EXPECT_EQ(det[1], Verdict::kSimError);
  ASSERT_EQ(stats.error_log.size(), 1u);
  EXPECT_NE(stats.error_log[0].find("injected fault at parallel.item"),
            std::string::npos)
      << stats.error_log[0];
}

TEST(Resilience, GracefulKillFlushesACheckpointAndResumeMatches) {
  GlobalInjectorGuard guard;
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 10, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::vector<Verdict> reference =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib);

  const std::string path = temp_path("ckpt_graceful_kill");
  std::remove(path.c_str());
  CampaignOptions options;
  options.parallel = {1u};
  options.checkpoint_path = path;

  util::FaultInjector::global().configure("campaign.kill@3");
  try {
    run_detection(cfg, prog.program, soc::BusKind::kData, lib, options);
    FAIL() << "expected CampaignInterrupted";
  } catch (const CampaignInterrupted& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint flushed"),
              std::string::npos)
        << e.what();
  }
  util::FaultInjector::global().disarm();

  util::CampaignStats stats;
  options.stats = &stats;
  const std::vector<Verdict> resumed =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib, options);
  EXPECT_EQ(resumed, reference);
  EXPECT_EQ(stats.restored_from_checkpoint, 3u);
  std::remove(path.c_str());
}

TEST(Resilience, HardCrashKeepsOnlyPeriodicallyFlushedVerdicts) {
  GlobalInjectorGuard guard;
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 10, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::vector<Verdict> reference =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib);

  const std::string path = temp_path("ckpt_hard_crash");
  std::remove(path.c_str());
  CampaignOptions options;
  options.parallel = {1u};
  options.checkpoint_path = path;
  options.checkpoint_every = 2;

  // Crash after the 5th new verdict: records 1-4 were flushed in pairs,
  // record 5 lived only in memory and dies with the "process".
  util::FaultInjector::global().configure("campaign.crash@5");
  try {
    run_detection(cfg, prog.program, soc::BusKind::kData, lib, options);
    FAIL() << "expected CampaignInterrupted";
  } catch (const CampaignInterrupted& e) {
    EXPECT_NE(std::string(e.what()).find("simulated crash"),
              std::string::npos)
        << e.what();
  }
  util::FaultInjector::global().disarm();

  util::CampaignStats stats;
  options.stats = &stats;
  const std::vector<Verdict> resumed =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib, options);
  EXPECT_EQ(resumed, reference);
  EXPECT_EQ(stats.restored_from_checkpoint, 4u);
  std::remove(path.c_str());
}

TEST(Resilience, BatchedKillAndCrashResumeBitwiseIdenticalAtOddBatchSize) {
  // The batched screen must stay kill/crash/resume safe at a batch size
  // that does not divide the library (7 into 20): a checkpoint can land
  // mid-window, and the resumed campaign re-screens from scratch.  Both
  // the interrupted chains and the final verdicts must equal the
  // *unbatched* uninterrupted run -- the full differential contract under
  // interruption.
  GlobalInjectorGuard guard;
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kAddress, 20, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();

  CampaignOptions unbatched;
  unbatched.batched = false;
  const std::vector<Verdict> reference =
      run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, unbatched);

  const std::string path = temp_path("ckpt_batched_chain");
  std::remove(path.c_str());
  CampaignOptions options;
  options.parallel = {1u};
  options.batch_size = 7;
  options.checkpoint_path = path;
  options.checkpoint_every = 2;

  // Graceful kill mid-window (4th new verdict of a 7-lane batch), resume,
  // hard crash past the first window, resume again, then drain.
  for (const char* site : {"campaign.kill@4", "campaign.crash@9"}) {
    util::FaultInjector::global().configure(site);
    EXPECT_THROW(
        run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, options),
        CampaignInterrupted)
        << site;
    util::FaultInjector::global().disarm();
  }

  util::CampaignStats stats;
  options.stats = &stats;
  const std::vector<Verdict> resumed =
      run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, options);
  EXPECT_EQ(resumed, reference);
  EXPECT_GT(stats.restored_from_checkpoint, 0u);
  std::remove(path.c_str());
}

TEST(Resilience, CancelFlagStopsTheCampaignBeforeNewWork) {
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 6, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();

  std::atomic<bool> cancel{true};
  util::CampaignStats stats;
  CampaignOptions options;
  options.stats = &stats;
  options.cancel = &cancel;
  EXPECT_THROW(
      run_detection(cfg, prog.program, soc::BusKind::kData, lib, options),
      CampaignInterrupted);
  EXPECT_EQ(stats.defects_simulated, 0u);
}

TEST(Resilience, SalvagedCheckpointResumeIsBitwiseIdentical) {
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 8, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::vector<Verdict> reference =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib);

  const std::string path = temp_path("ckpt_salvage_resume");
  std::remove(path.c_str());
  CampaignOptions options;
  options.checkpoint_path = path;
  run_detection(cfg, prog.program, soc::BusKind::kData, lib, options);

  // Chop the tail off the finished checkpoint: the resumed campaign must
  // notice, report the loss, re-simulate the dropped slots, and land on
  // the exact same verdicts.
  const std::string full = read_file(path);
  write_file(path, full.substr(0, full.size() - 4));

  util::CampaignStats stats;
  options.stats = &stats;
  const std::vector<Verdict> resumed =
      run_detection(cfg, prog.program, soc::BusKind::kData, lib, options);
  EXPECT_EQ(resumed, reference);
  EXPECT_GT(stats.dropped_slots, 0u);
  ASSERT_FALSE(stats.error_log.empty());
  EXPECT_NE(stats.error_log[0].find("salvaged"), std::string::npos)
      << stats.error_log[0];
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Per-defect watchdog.

sbst::TestProgram endless_program() {
  // JMP to self: never reaches HLT no matter the cycle budget.
  sbst::TestProgram prog;
  prog.entry = 0x010;
  const auto jmp = cpu::encode_memref(cpu::Opcode::kJmp, prog.entry);
  prog.image.set(prog.entry, jmp[0]);
  prog.image.set(static_cast<cpu::Addr>(prog.entry + 1), jmp[1]);
  prog.image.set(0x080, 0x42);
  prog.response_cells = {0x080};
  return prog;
}

TEST(Resilience, WatchdogDeadlineSiteFiresDeterministically) {
  GlobalInjectorGuard guard;
  util::FaultInjector::global().configure("campaign.deadline@1");
  soc::System sys;
  // Huge wall-clock budget: only the injection site can trip the check,
  // at the first slice boundary.
  EXPECT_THROW(run_and_capture(sys, endless_program(), 1'000'000, 10'000),
               DeadlineExceeded);
}

TEST(Resilience, WatchdogConvertsAWedgedSimulationIntoAnException) {
  soc::System sys;
  EXPECT_THROW(run_and_capture(sys, endless_program(), 200'000'000, 1),
               DeadlineExceeded);
}

TEST(Resilience, ZeroDeadlineDisablesTheWatchdog) {
  soc::System sys;
  const ResponseSnapshot snap =
      run_and_capture(sys, endless_program(), 10'000, 0);
  EXPECT_FALSE(snap.completed);
  EXPECT_GE(snap.cycles, 10'000u);
}

TEST(Resilience, CampaignDeadlineOptionPreservesVerdicts) {
  // The sliced runner must be cycle-for-cycle identical to the plain one
  // when nothing times out.
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kAddress, 8, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::vector<Verdict> plain =
      run_detection(cfg, prog.program, soc::BusKind::kAddress, lib);

  CampaignOptions options;
  options.defect_deadline_ms = 100'000;
  const std::vector<Verdict> guarded =
      run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, options);
  EXPECT_EQ(guarded, plain);
}

// ---------------------------------------------------------------------------
// FaultEnv: tolerant checks CI runs with $XTEST_FAULTS exported (ambient
// probabilistic injection, plus ASan/UBSan).  They assert survival
// invariants -- no crash, no wrong verdict, bounded retries -- rather than
// exact outcomes, so they pass under any injected-fault schedule and
// trivially when the injector is disarmed.

TEST(FaultEnv, CampaignCompletesUnderAmbientInjection) {
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 12, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();

  const std::string path = temp_path("ckpt_faultenv");
  std::remove(path.c_str());
  util::CampaignStats stats;
  CampaignOptions options;
  options.stats = &stats;
  options.checkpoint_path = path;
  options.checkpoint_every = 4;

  std::vector<Verdict> det;
  bool completed = false;
  for (int attempt = 0; attempt < 50 && !completed; ++attempt) {
    try {
      det = run_detection(cfg, prog.program, soc::BusKind::kData, lib,
                          options);
      completed = true;
    } catch (const CampaignInterrupted&) {
      // ambient campaign.kill/crash: resume from the checkpoint
    } catch (const util::InjectedFault&) {
      // ambient fault outside the quarantine (e.g. the gold run): retry
    }
  }
  ASSERT_TRUE(completed) << "campaign never completed in 50 attempts";
  ASSERT_EQ(det.size(), lib.size());
  for (const Verdict v : det) {
    Verdict roundtrip;
    EXPECT_TRUE(verdict_from_char(to_char(v), roundtrip));
  }
  std::remove(path.c_str());
}

TEST(FaultEnv, CheckpointNeverRestoresAWrongVerdictUnderInjection) {
  const std::string path = temp_path("ckpt_faultenv_record");
  std::remove(path.c_str());
  constexpr std::size_t kSlots = 24;
  {
    CampaignCheckpoint ck(path, "k", /*flush_every=*/1);
    ck.restore("campaign", kSlots);
    for (std::size_t i = 0; i < kSlots; ++i)
      ck.record("campaign", i, Verdict::kDetected);  // failed flushes defer
    try {
      ck.flush();
    } catch (const std::exception&) {
      // an injected flush failure loses durability, nothing else
    }
    EXPECT_EQ(ck.completed(), kSlots);  // in-memory state is never lost
  }
  // Whatever subset of flushes survived, a restored slot is either still
  // pending or holds exactly the recorded verdict.
  std::ifstream exists(path);
  if (!exists.good()) return;  // every flush failed: a fresh start is fine
  CampaignCheckpoint ck(path, "k");
  for (const auto& slot : ck.restore("campaign", kSlots)) {
    if (slot) {
      EXPECT_EQ(*slot, Verdict::kDetected);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtest::sim
