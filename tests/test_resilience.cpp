// Campaign resilience: verdict taxonomy, defect quarantine, and
// checkpoint/resume equivalence.

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/campaign.h"
#include "sim/checkpoint.h"
#include "sim/signature.h"
#include "sim/verdict.h"

namespace xtest::sim {
namespace {

constexpr std::uint64_t kSeed = 20010618;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---------------------------------------------------------------------------
// Verdict taxonomy.

TEST(Verdicts, ClassifyCoversAllThreeTesterOutcomes) {
  ResponseSnapshot gold;
  gold.completed = true;
  gold.values = {0x42, 0x17};

  ResponseSnapshot same = gold;
  EXPECT_EQ(classify(gold, same), Verdict::kUndetected);

  ResponseSnapshot mismatch = gold;
  mismatch.values[1] = 0x18;
  EXPECT_EQ(classify(gold, mismatch), Verdict::kDetected);

  // Never reached HLT: the tester times out -- even if the response cells
  // happen to hold the expected values.
  ResponseSnapshot hung = gold;
  hung.completed = false;
  EXPECT_EQ(classify(gold, hung), Verdict::kDetectedByTimeout);
}

TEST(Verdicts, CharCodesRoundTrip) {
  for (const Verdict v : {Verdict::kUndetected, Verdict::kDetected,
                          Verdict::kDetectedByTimeout, Verdict::kSimError}) {
    Verdict back = Verdict::kUndetected;
    ASSERT_TRUE(verdict_from_char(to_char(v), back));
    EXPECT_EQ(back, v);
  }
  Verdict unused;
  EXPECT_FALSE(verdict_from_char('x', unused));
  EXPECT_FALSE(verdict_from_char('.', unused));
}

TEST(Verdicts, MergePrefersStrongerEvidence) {
  using V = Verdict;
  EXPECT_EQ(merge_verdicts(V::kUndetected, V::kDetected), V::kDetected);
  EXPECT_EQ(merge_verdicts(V::kDetected, V::kDetectedByTimeout),
            V::kDetected);
  EXPECT_EQ(merge_verdicts(V::kUndetected, V::kDetectedByTimeout),
            V::kDetectedByTimeout);
  // A failed simulation must not be laundered into a clean pass.
  EXPECT_EQ(merge_verdicts(V::kSimError, V::kUndetected), V::kSimError);
  EXPECT_EQ(merge_verdicts(V::kSimError, V::kDetected), V::kDetected);
}

TEST(Verdicts, SimErrorIsNotCountedAsCoverage) {
  EXPECT_FALSE(is_detected(Verdict::kSimError));
  EXPECT_FALSE(is_detected(Verdict::kUndetected));
  EXPECT_TRUE(is_detected(Verdict::kDetected));
  EXPECT_TRUE(is_detected(Verdict::kDetectedByTimeout));
}

// ---------------------------------------------------------------------------
// Control-flow derailment is a timeout detection.

TEST(Resilience, DerailedJumpClassifiesAsDetectedByTimeout) {
  // A two-instruction program: JMP to a HLT.  The JMP's byte-2 fetch at v1
  // followed by the target fetch at v2 is exactly the MA test of a rising
  // delay on address line 5, so forcing that MAF corrupts the target
  // address: the victim bit stays low and the fetch lands at 0x000 in
  // undefined memory.  Undefined bytes read 0x00 = LDA, so the derailed
  // core executes an endless load sled and never reaches HLT -- the tester
  // sees a timeout, not a response mismatch.
  const xtalk::MafFault fault{5, xtalk::MafType::kRisingDelay,
                              xtalk::BusDirection::kCpuToCore};
  const xtalk::VectorPair pair = ma_test(cpu::kAddrBits, fault);
  const auto v1 = static_cast<cpu::Addr>(pair.v1.bits());
  const auto v2 = static_cast<cpu::Addr>(pair.v2.bits());

  sbst::TestProgram prog;
  prog.entry = static_cast<cpu::Addr>(v1 - 1);
  const auto jmp = cpu::encode_memref(cpu::Opcode::kJmp, v2);
  prog.image.set(prog.entry, jmp[0]);
  prog.image.set(v1, jmp[1]);
  prog.image.set(v2, cpu::encode_single(cpu::SingleOp::kHlt));
  prog.image.set(0x080, 0x42);
  prog.response_cells = {0x080};

  soc::System sys;
  const ResponseSnapshot gold = run_and_capture(sys, prog, 10'000);
  ASSERT_TRUE(gold.completed);
  ASSERT_EQ(gold.reason, cpu::HaltReason::kHltInstruction);

  sys.set_forced_maf(soc::ForcedMaf{soc::BusKind::kAddress, fault});
  const ResponseSnapshot hung =
      run_and_capture(sys, prog, gold.cycles * 16 + 1000);
  EXPECT_FALSE(hung.completed);
  EXPECT_EQ(hung.reason, cpu::HaltReason::kRunning);
  EXPECT_EQ(classify(gold, hung), Verdict::kDetectedByTimeout);
}

// ---------------------------------------------------------------------------
// Fault containment: a throwing defect is quarantined, not fatal.

xtalk::DefectLibrary poisoned_library(const xtalk::DefectLibrary& clean,
                                      std::size_t bad_index) {
  // A defect of the wrong bus width: constructible (4 wires, 6 factors),
  // but apply() on the 12-wire address bus throws -- deterministically, on
  // the first attempt and on the retry.
  std::vector<xtalk::Defect> defects = clean.defects();
  defects[bad_index] =
      xtalk::Defect(4, std::vector<double>(6, 1.0));
  return xtalk::DefectLibrary::from_defects(clean.config(), defects);
}

TEST(Resilience, ThrowingDefectIsQuarantinedAsSimError) {
  const soc::SystemConfig cfg;
  const auto clean_lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 12, kSeed);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();
  const std::vector<Verdict> clean =
      run_detection(cfg, prog.program, soc::BusKind::kAddress, clean_lib);

  constexpr std::size_t kBad = 5;
  const auto lib = poisoned_library(clean_lib, kBad);

  for (const unsigned threads : {1u, 4u}) {
    util::CampaignStats stats;
    CampaignOptions options;
    options.parallel = {threads};
    options.stats = &stats;
    const std::vector<Verdict> det =
        run_detection(cfg, prog.program, soc::BusKind::kAddress, lib,
                      options);

    // The campaign completed with exactly one quarantined defect; every
    // other verdict is untouched by its neighbour's failure.
    ASSERT_EQ(det.size(), lib.size());
    EXPECT_EQ(count_verdicts(det).sim_errors, 1u) << "threads=" << threads;
    EXPECT_EQ(det[kBad], Verdict::kSimError);
    for (std::size_t i = 0; i < det.size(); ++i)
      if (i != kBad) EXPECT_EQ(det[i], clean[i]) << i;

    EXPECT_EQ(stats.retries, 1u);     // retried once, serially
    EXPECT_EQ(stats.sim_errors, 1u);  // ...and still failed
    ASSERT_EQ(stats.error_log.size(), 1u);
    EXPECT_NE(stats.error_log[0].find("defect 5"), std::string::npos)
        << stats.error_log[0];
  }
}

TEST(Resilience, NoRetrySkipsTheSecondAttempt) {
  const soc::SystemConfig cfg;
  const auto clean_lib =
      make_defect_library(cfg, soc::BusKind::kAddress, 8, kSeed);
  const auto lib = poisoned_library(clean_lib, 2);
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();

  util::CampaignStats stats;
  CampaignOptions options;
  options.stats = &stats;
  options.retry_errors = false;
  const std::vector<Verdict> det =
      run_detection(cfg, prog.program, soc::BusKind::kAddress, lib, options);
  EXPECT_EQ(det[2], Verdict::kSimError);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.error_log.size(), 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint/resume.

TEST(Checkpoint, RecordsRestoreAndSurviveReopen) {
  const std::string path = temp_path("ckpt_roundtrip");
  std::remove(path.c_str());
  {
    CampaignCheckpoint ck(path, "unit-test-key", /*flush_every=*/2);
    auto slots = ck.restore("campaign", 4);
    ASSERT_EQ(slots.size(), 4u);
    for (const auto& s : slots) EXPECT_FALSE(s.has_value());
    ck.record("campaign", 1, Verdict::kDetected);
    ck.record("campaign", 3, Verdict::kDetectedByTimeout);
    ck.flush();
    EXPECT_EQ(ck.completed(), 2u);
  }
  {
    CampaignCheckpoint ck(path, "unit-test-key");
    const auto slots = ck.restore("campaign", 4);
    EXPECT_FALSE(slots[0].has_value());
    EXPECT_EQ(slots[1], Verdict::kDetected);
    EXPECT_FALSE(slots[2].has_value());
    EXPECT_EQ(slots[3], Verdict::kDetectedByTimeout);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsKeyMismatchAndGarbage) {
  const std::string path = temp_path("ckpt_mismatch");
  std::remove(path.c_str());
  {
    CampaignCheckpoint ck(path, "bus=addr count=10 seed=1");
    ck.restore("campaign", 10);
    ck.flush();
  }
  EXPECT_THROW(CampaignCheckpoint(path, "bus=data count=10 seed=1"),
               std::runtime_error);
  {
    std::ofstream f(path);
    f << "not a checkpoint at all\n";
  }
  EXPECT_THROW(CampaignCheckpoint(path, "bus=addr count=10 seed=1"),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Resilience, ResumedCampaignIsBitwiseIdenticalToUninterrupted) {
  // Simulate a campaign killed halfway: the checkpoint holds the first
  // half of the verdicts, then a fresh run resumes from the file.  The
  // resumed verdict vector must be bitwise identical to an uninterrupted
  // run -- for every bus and at every thread count.
  const soc::SystemConfig cfg;
  const auto prog =
      sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate();

  for (const soc::BusKind bus : {soc::BusKind::kAddress, soc::BusKind::kData,
                                 soc::BusKind::kControl}) {
    const auto lib = make_defect_library(cfg, bus, 10, kSeed);
    const std::vector<Verdict> uninterrupted =
        run_detection(cfg, prog.program, bus, lib);

    for (const unsigned threads : {1u, 4u}) {
      const std::string path =
          temp_path("ckpt_resume_" + soc::to_string(bus) + "_" +
                    std::to_string(threads));
      std::remove(path.c_str());
      {
        CampaignCheckpoint half(path, default_checkpoint_key(bus, lib));
        half.restore("campaign", lib.size());
        for (std::size_t i = 0; i < lib.size() / 2; ++i)
          half.record("campaign", i, uninterrupted[i]);
        half.flush();
      }

      util::CampaignStats stats;
      CampaignOptions options;
      options.parallel = {threads};
      options.stats = &stats;
      options.checkpoint_path = path;
      const std::vector<Verdict> resumed =
          run_detection(cfg, prog.program, bus, lib, options);

      EXPECT_EQ(resumed, uninterrupted)
          << soc::to_string(bus) << " threads=" << threads;
      EXPECT_EQ(stats.restored_from_checkpoint, lib.size() / 2);
      EXPECT_EQ(stats.defects_simulated, lib.size() - lib.size() / 2);

      // The finished checkpoint restores every slot.
      CampaignCheckpoint done(path, default_checkpoint_key(bus, lib));
      const auto slots = done.restore("campaign", lib.size());
      for (std::size_t i = 0; i < lib.size(); ++i)
        EXPECT_EQ(slots[i], uninterrupted[i]) << i;
      std::remove(path.c_str());
    }
  }
}

TEST(Resilience, SessionCampaignResumesWithPerSessionSections) {
  const soc::SystemConfig cfg;
  const auto lib = make_defect_library(cfg, soc::BusKind::kData, 8, kSeed);
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  const std::vector<Verdict> uninterrupted =
      run_detection_sessions(cfg, sessions, soc::BusKind::kData, lib);

  const std::string path = temp_path("ckpt_sessions");
  std::remove(path.c_str());
  for (const unsigned threads : {1u, 4u}) {
    util::CampaignStats stats;
    CampaignOptions options;
    options.parallel = {threads};
    options.stats = &stats;
    options.checkpoint_path = path;
    const std::vector<Verdict> det = run_detection_sessions(
        cfg, sessions, soc::BusKind::kData, lib, options);
    EXPECT_EQ(det, uninterrupted) << "threads=" << threads;
  }
  // The second loop iteration restored every session section of the first.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtest::sim
