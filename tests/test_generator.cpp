#include "sbst/generator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "sim/signature.h"
#include "soc/system.h"

namespace xtest::sbst {
namespace {

using xtalk::BusDirection;
using xtalk::MafFault;
using xtalk::MafType;

GenerationResult generate_default() {
  return TestProgramGenerator(GeneratorConfig{}).generate();
}

TEST(Generator, EveryFaultIsPlacedOrReported) {
  const GenerationResult r = generate_default();
  // 48 address + 64 data MAFs, each accounted for exactly once.
  EXPECT_EQ(r.program.tests.size() + r.unplaced.size(), 48u + 64u);
  EXPECT_EQ(r.placed_count(soc::BusKind::kData) +
                r.unplaced_count(soc::BusKind::kData),
            64u);
  EXPECT_EQ(r.placed_count(soc::BusKind::kAddress) +
                r.unplaced_count(soc::BusKind::kAddress),
            48u);
}

TEST(Generator, AllDataBusTestsPlacedInOneSession) {
  // The paper applies 64/64 data-bus tests in its program.
  const GenerationResult r = generate_default();
  EXPECT_EQ(r.placed_count(soc::BusKind::kData), 64u);
}

TEST(Generator, PlacedFaultsAreUnique) {
  const GenerationResult r = generate_default();
  std::set<std::string> seen;
  for (const PlannedTest& t : r.program.tests)
    EXPECT_TRUE(seen.insert(t.fault.label() + to_string(t.bus)).second);
}

TEST(Generator, PairsAreTheCanonicalMaTests) {
  const GenerationResult r = generate_default();
  for (const PlannedTest& t : r.program.tests) {
    const unsigned width =
        t.bus == soc::BusKind::kAddress ? cpu::kAddrBits : cpu::kDataBits;
    EXPECT_EQ(t.pair, xtalk::ma_test(width, t.fault)) << t.fault.label();
  }
}

TEST(Generator, SchemesMatchFaultClasses) {
  const GenerationResult r = generate_default();
  for (const PlannedTest& t : r.program.tests) {
    switch (t.scheme) {
      case Scheme::kAddrDelay:
      case Scheme::kAddrDelayJmp:
        EXPECT_EQ(t.bus, soc::BusKind::kAddress);
        EXPECT_FALSE(xtalk::is_glitch(t.fault.type));
        break;
      case Scheme::kAddrGlitch:
      case Scheme::kAddrGlitchJmp:
        EXPECT_EQ(t.bus, soc::BusKind::kAddress);
        EXPECT_TRUE(xtalk::is_glitch(t.fault.type));
        break;
      case Scheme::kDataRead:
        EXPECT_EQ(t.fault.direction, BusDirection::kCoreToCpu);
        break;
      case Scheme::kDataWrite:
        EXPECT_EQ(t.fault.direction, BusDirection::kCpuToCore);
        break;
    }
  }
}

TEST(Generator, ProgramRunsToCompletion) {
  const GenerationResult r = generate_default();
  soc::System sys;
  const sim::ResponseSnapshot gold =
      sim::run_and_capture(sys, r.program, 1'000'000);
  EXPECT_TRUE(gold.completed);
  EXPECT_EQ(gold.values.size(), r.program.response_cells.size());
}

TEST(Generator, ExecutionTimeInPaperBallpark) {
  // The paper's program set runs 1720 processor cycles; ours must be the
  // same order of magnitude (some hundreds to a few thousand cycles).
  const GenerationResult r = generate_default();
  soc::System sys;
  const sim::ResponseSnapshot gold =
      sim::run_and_capture(sys, r.program, 1'000'000);
  EXPECT_GT(gold.cycles, 300u);
  EXPECT_LT(gold.cycles, 10'000u);
}

TEST(Generator, ProgramSizeProportionalToTestCount) {
  // Section 4.3: "the size of the test program is proportional to N".
  // Sweep the number of address lines under test and check the byte count
  // grows linearly (ratio of extremes close to the count ratio).
  std::vector<std::size_t> bytes;
  for (unsigned lines = 2; lines <= 12; lines += 5) {
    std::vector<MafFault> faults;
    for (const MafFault& f : xtalk::enumerate_mafs(cpu::kAddrBits, false))
      if (f.victim < lines) faults.push_back(f);
    GeneratorConfig cfg;
    cfg.include_data_bus = false;
    cfg.address_faults = faults;
    const GenerationResult r = TestProgramGenerator(cfg).generate();
    bytes.push_back(r.program.program_bytes());
  }
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_GT(bytes[1], bytes[0]);
  EXPECT_GT(bytes[2], bytes[1]);
}

TEST(Generator, ResponseCellsAreDistinct) {
  const GenerationResult r = generate_default();
  std::set<cpu::Addr> cells(r.program.response_cells.begin(),
                            r.program.response_cells.end());
  EXPECT_EQ(cells.size(), r.program.response_cells.size());
  EXPECT_FALSE(cells.empty());
}

TEST(Generator, GroupSizeRespected) {
  const GenerationResult r = generate_default();
  std::map<int, int> group_counts;
  for (const PlannedTest& t : r.program.tests)
    if (t.group >= 0) ++group_counts[t.group];
  for (const auto& [g, n] : group_counts) EXPECT_LE(n, 8) << "group " << g;
}

TEST(Generator, CompactedPassValuesOneHotWithinGroup) {
  // Section 4.3: within a group, fresh pass values are one-hot so the
  // signature byte identifies the failing test.  (Tests that adopted an
  // existing cell's constant are exempt.)
  const GenerationResult r = generate_default();
  std::map<int, std::uint8_t> group_bits;
  for (const PlannedTest& t : r.program.tests) {
    if (t.group < 0 || t.scheme == Scheme::kDataRead ||
        t.scheme == Scheme::kDataWrite)
      continue;
    if (t.pass_value == 0) continue;
    if ((t.pass_value & (t.pass_value - 1)) != 0) continue;  // adopted cell
    EXPECT_EQ(group_bits[t.group] & t.pass_value, 0)
        << "duplicate one-hot in group " << t.group;
    group_bits[t.group] |= t.pass_value;
  }
}

TEST(Generator, UsableLimitConstrainsPlacement) {
  GeneratorConfig cfg;
  cfg.usable_limit = 0xC00;  // top quarter of the map unreachable
  const GenerationResult r = TestProgramGenerator(cfg).generate();
  for (const PlannedTest& t : r.program.tests)
    if (t.bus == soc::BusKind::kAddress) {
      EXPECT_LT(t.pair.v2.bits(), 0xC00u) << t.fault.label();
    }
  // Constraining the map must cost address tests.
  const GenerationResult full = generate_default();
  EXPECT_LT(r.placed_count(soc::BusKind::kAddress),
            full.placed_count(soc::BusKind::kAddress) + 1);
  EXPECT_GT(r.unplaced_count(soc::BusKind::kAddress), 10u);
}

TEST(Generator, AddressFaultFilter) {
  GeneratorConfig cfg;
  cfg.include_data_bus = false;
  cfg.address_faults = std::vector<MafFault>{
      {5, MafType::kRisingDelay, BusDirection::kCpuToCore}};
  const GenerationResult r = TestProgramGenerator(cfg).generate();
  ASSERT_EQ(r.program.tests.size() + r.unplaced.size(), 1u);
  if (!r.program.tests.empty()) {
    EXPECT_EQ(r.program.tests[0].fault.victim, 5u);
  }
}

TEST(MultiSession, RecoversConflictingTests) {
  // Section 5: conflicting tests are separated into multiple programs run
  // in different sessions.  Together the sessions must cover (nearly) all
  // 48+64 MAFs -- strictly more than any single session.
  const auto sessions =
      TestProgramGenerator::generate_sessions(GeneratorConfig{});
  ASSERT_GE(sessions.size(), 2u);
  std::size_t total_addr = 0;
  for (const auto& s : sessions)
    total_addr += s.placed_count(soc::BusKind::kAddress);
  EXPECT_GT(total_addr, sessions[0].placed_count(soc::BusKind::kAddress));
  EXPECT_GE(total_addr, 45u);  // paper: 41/48; ours recovers at least 45
  // No fault placed twice across sessions.
  std::set<std::string> seen;
  for (const auto& s : sessions)
    for (const PlannedTest& t : s.program.tests)
      EXPECT_TRUE(seen.insert(t.fault.label() + to_string(t.bus)).second);
}

TEST(MultiSession, EachSessionProgramCompletes) {
  const auto sessions =
      TestProgramGenerator::generate_sessions(GeneratorConfig{});
  soc::System sys;
  for (const auto& s : sessions) {
    if (s.program.tests.empty()) continue;
    const sim::ResponseSnapshot gold =
        sim::run_and_capture(sys, s.program, 1'000'000);
    EXPECT_TRUE(gold.completed);
  }
}

TEST(Generator, Deterministic) {
  const GenerationResult a = generate_default();
  const GenerationResult b = generate_default();
  EXPECT_EQ(a.program.tests.size(), b.program.tests.size());
  EXPECT_EQ(a.program.entry, b.program.entry);
  EXPECT_EQ(a.program.image.raw(), b.program.image.raw());
}

}  // namespace
}  // namespace xtest::sbst
