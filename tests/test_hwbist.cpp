#include "hwbist/bist.h"

#include <gtest/gtest.h>

#include "hwbist/area_model.h"
#include "hwbist/overtest.h"
#include "sim/campaign.h"

namespace xtest::hwbist {
namespace {

using xtalk::BusGeometry;
using xtalk::CrosstalkErrorModel;
using xtalk::ErrorModelConfig;
using xtalk::RcNetwork;

struct Fixture {
  RcNetwork nom;
  double cth;
  CrosstalkErrorModel model;

  explicit Fixture(unsigned width = 12)
      : nom(BusGeometry{.width = width}),
        cth(xtalk::recommended_cth(nom, 1.6)),
        model(ErrorModelConfig::calibrated(nom, cth)) {}
};

TEST(HardwareBist, PatternSetSizes) {
  EXPECT_EQ(HardwareBist(12, false).patterns().size(), 48u);
  EXPECT_EQ(HardwareBist(8, true).patterns().size(), 64u);
}

TEST(HardwareBist, CleanBusPasses) {
  Fixture f;
  const HardwareBist bist(12, false);
  EXPECT_FALSE(bist.detects(f.nom, f.model));
}

TEST(HardwareBist, DetectsExactlyAboveCthDefects) {
  // BIST applies the complete MA set, so its verdict coincides with the
  // ICCAD'99 detectability criterion: some wire's net coupling > Cth.
  Fixture f;
  const HardwareBist bist(12, false);
  for (unsigned victim : {1u, 5u, 10u}) {
    RcNetwork just_below = f.nom;
    RcNetwork just_above = f.nom;
    const double scale_to = [&](double target) {
      return target / f.nom.net_coupling(victim);
    }(f.cth);
    for (unsigned j = 0; j < 12; ++j) {
      if (j == victim) continue;
      just_below.scale_coupling(victim, j, 0.98 * scale_to);
      just_above.scale_coupling(victim, j, 1.02 * scale_to);
    }
    EXPECT_FALSE(bist.detects(just_below, f.model)) << victim;
    EXPECT_TRUE(bist.detects(just_above, f.model)) << victim;
  }
}

TEST(HardwareBist, LibraryCoverageIsComplete) {
  // Every library defect exceeds Cth somewhere by construction, so the
  // full-MA-set BIST detects all of them.
  const soc::SystemConfig cfg;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 40, 7);
  const soc::System sys(cfg);
  const HardwareBist bist(12, false);
  const auto det = bist.run_library(sys.nominal_address_network(),
                                    sys.address_model(), lib);
  for (const sim::Verdict v : det) EXPECT_EQ(v, sim::Verdict::kDetected);
}

TEST(HardwareBist, PatternFailsIdentifiesVictim) {
  Fixture f;
  const HardwareBist bist(12, false);
  RcNetwork bad = f.nom;
  for (unsigned j = 0; j < 12; ++j)
    if (j != 6) bad.scale_coupling(6, j, 3.0);
  ASSERT_GT(bad.net_coupling(6), f.cth);
  // MA patterns for victim 6 fail; far-away victims pass.
  int fails_v6 = 0;
  for (const auto& p : bist.patterns()) {
    const bool fail = bist.pattern_fails(bad, f.model, p);
    if (p.victim == 6) fails_v6 += fail;
    if (p.victim == 0 || p.victim == 11) {
      EXPECT_FALSE(fail) << p.label();
    }
  }
  EXPECT_EQ(fails_v6, 4);
}

TEST(AreaModel, GrowsWithWidth) {
  BistAreaModel w8{.bus_width = 8};
  BistAreaModel w32{.bus_width = 32};
  EXPECT_GT(w32.total_gates(), w8.total_gates());
  EXPECT_GT(w8.total_gates(), 0.0);
}

TEST(AreaModel, BidirectionalDoubles) {
  BistAreaModel uni{.bus_width = 8, .bidirectional = false};
  BistAreaModel bi{.bus_width = 8, .bidirectional = true};
  EXPECT_NEAR(bi.total_gates() - bi.controller_gates(),
              2.0 * (uni.total_gates() - uni.controller_gates()), 1e-9);
}

TEST(AreaModel, OverheadShrinksWithSocSize) {
  // The paper's motivation: overhead may be unacceptable for small
  // systems, amortised for large ones.
  BistAreaModel m{.bus_width = 12};
  EXPECT_GT(m.overhead_fraction(50'000), m.overhead_fraction(5'000'000));
  EXPECT_GT(m.overhead_fraction(50'000), 0.001);
}

TEST(OverTest, FunctionalOracleNeverBeatsBist) {
  // BIST applies the complete MA set; anything SBST detects, BIST detects.
  const soc::SystemConfig cfg;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 30, 11);
  const OverTestResult r = analyze_overtest(
      cfg, soc::BusKind::kAddress, lib, sbst::GeneratorConfig{});
  EXPECT_EQ(r.functional_only, 0u);
  EXPECT_EQ(r.bist_detected, lib.size());
}

TEST(OverTest, UnconstrainedSystemHasNoOverTesting) {
  // With the full 4K map usable, (nearly) every MA pair is functionally
  // applicable, so SBST matches BIST and no good chips are over-rejected.
  const soc::SystemConfig cfg;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 30, 11);
  const OverTestResult r = analyze_overtest(
      cfg, soc::BusKind::kAddress, lib, sbst::GeneratorConfig{});
  EXPECT_EQ(r.overtest_only, 0u);
  EXPECT_DOUBLE_EQ(r.overtest_fraction(), 0.0);
}

TEST(OverTest, ConstrainedAddressMapCausesOverTesting) {
  // When part of the address space is functionally unreachable, BIST
  // still fires patterns there -- rejecting chips whose defects can never
  // corrupt real operation.  That difference is the over-test fraction.
  const soc::SystemConfig cfg;
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 40, 13);
  sbst::GeneratorConfig gen;
  gen.usable_limit = 0x800;  // only half the map reachable
  const OverTestResult r =
      analyze_overtest(cfg, soc::BusKind::kAddress, lib, gen);
  EXPECT_GT(r.overtest_only, 0u);
  EXPECT_GT(r.overtest_fraction(), 0.0);
  EXPECT_EQ(r.overtest_only + r.functional_detected, r.bist_detected);
}

}  // namespace
}  // namespace xtest::hwbist
