// Deterministic fault injection: spec parsing, rule semantics, and the
// determinism guarantees the chaos soak leans on.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault_injector.h"

namespace xtest::util {
namespace {

TEST(FaultInjector, DisarmedCountsNothingAndNeverFires) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.fire("checkpoint.rename"));
  EXPECT_NO_THROW(inj.maybe_fail("checkpoint.rename"));
  EXPECT_EQ(inj.hits("checkpoint.rename"), 0u);
}

TEST(FaultInjector, AlwaysRuleFiresEveryHitOfItsSiteOnly) {
  FaultInjector inj;
  inj.configure("checkpoint.rename");
  EXPECT_TRUE(inj.armed());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(inj.fire("checkpoint.rename"));
  EXPECT_FALSE(inj.fire("checkpoint.fsync"));
  EXPECT_EQ(inj.hits("checkpoint.rename"), 3u);
  EXPECT_EQ(inj.fired("checkpoint.rename"), 3u);
  // Unmatched sites are still counted while armed: the summary shows
  // which sites a run actually crossed.
  EXPECT_EQ(inj.hits("checkpoint.fsync"), 1u);
  EXPECT_EQ(inj.fired("checkpoint.fsync"), 0u);
}

TEST(FaultInjector, NthRuleFiresExactlyTheNthHitOnce) {
  FaultInjector inj;
  inj.configure("parallel.item@3");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(inj.fire("parallel.item"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(inj.fired("parallel.item"), 1u);
}

TEST(FaultInjector, MaybeFailThrowsInjectedFaultNamingSiteAndHit) {
  FaultInjector inj;
  inj.configure("serialize.image@2");
  EXPECT_NO_THROW(inj.maybe_fail("serialize.image"));
  try {
    inj.maybe_fail("serialize.image");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("serialize.image"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("hit 2"), std::string::npos);
  }
}

TEST(FaultInjector, ProbabilisticRuleIsAPureFunctionOfSeedSiteHit) {
  // Same seed -> identical fire pattern, run after run.
  const auto pattern = [](std::uint64_t seed) {
    FaultInjector inj;
    inj.configure("parallel.item%0.3:" + std::to_string(seed));
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(inj.fire("parallel.item"));
    return fired;
  };
  const std::vector<bool> a = pattern(42);
  EXPECT_EQ(a, pattern(42));
  EXPECT_NE(a, pattern(43));

  // p=0.3 over 200 hits: the exact count is seed-dependent but must be
  // nowhere near 0 or 200.
  std::size_t fires = 0;
  for (const bool f : a) fires += f;
  EXPECT_GT(fires, 20u);
  EXPECT_LT(fires, 120u);
}

TEST(FaultInjector, ProbabilisticDecisionsIgnoreOtherSitesInterleaving) {
  // The chaos soak depends on this: which hits of a site fail must not
  // depend on how many times *other* sites were hit in between (thread
  // interleaving reorders sites freely).
  const auto pattern = [](bool interleave) {
    FaultInjector inj;
    inj.configure("checkpoint.fsync%0.5:7");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      if (interleave)
        for (int j = 0; j < 3; ++j) inj.fire("checkpoint.rename");
      fired.push_back(inj.fire("checkpoint.fsync"));
    }
    return fired;
  };
  EXPECT_EQ(pattern(false), pattern(true));
}

TEST(FaultInjector, TrailingStarMatchesAnySiteWithThatPrefix) {
  FaultInjector inj;
  inj.configure("checkpoint.*@1");
  EXPECT_TRUE(inj.fire("checkpoint.rename"));
  EXPECT_TRUE(inj.fire("checkpoint.fsync"));  // per-site hit counters
  EXPECT_FALSE(inj.fire("parallel.item"));
  // An exact rule wins over a prefix rule.
  inj.configure("checkpoint.*,checkpoint.fsync@2");
  EXPECT_FALSE(inj.fire("checkpoint.fsync"));
  EXPECT_TRUE(inj.fire("checkpoint.fsync"));
  EXPECT_TRUE(inj.fire("checkpoint.rename"));
}

TEST(FaultInjector, ConfigureResetsCountersAndEmptySpecDisarms) {
  FaultInjector inj;
  inj.configure("a.site");
  inj.fire("a.site");
  inj.configure("a.site@2");
  EXPECT_EQ(inj.hits("a.site"), 0u);  // counters reset
  EXPECT_FALSE(inj.fire("a.site"));   // hit 1 of the new rule
  EXPECT_TRUE(inj.fire("a.site"));
  inj.configure("");
  EXPECT_FALSE(inj.armed());
  inj.configure("a.site");
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.fire("a.site"));
}

TEST(FaultInjector, MalformedSpecsThrowAndLeaveInjectorUsable) {
  FaultInjector inj;
  for (const char* bad :
       {"site@0", "site@x", "site@", "site%1.5", "site%-0.1", "site%x",
        "site%", "site@1%0.5", "@3", "%0.5", "a.site:notanumber"}) {
    EXPECT_THROW(inj.configure(bad), std::invalid_argument) << bad;
  }
  // A failed configure must not leave a half-armed injector.
  inj.configure("good.site@1");
  EXPECT_TRUE(inj.fire("good.site"));
}

TEST(FaultInjector, SummaryListsEveryTrackedSite) {
  FaultInjector inj;
  inj.configure("a.one@1");
  inj.fire("a.one");
  inj.fire("b.two");
  const std::string s = inj.summary();
  EXPECT_NE(s.find("a.one hits=1 fired=1"), std::string::npos) << s;
  EXPECT_NE(s.find("b.two hits=1 fired=0"), std::string::npos) << s;
}

}  // namespace
}  // namespace xtest::util
