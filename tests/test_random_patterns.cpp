#include "hwbist/random_patterns.h"

#include <gtest/gtest.h>

#include "hwbist/bist.h"
#include "sim/campaign.h"

namespace xtest::hwbist {
namespace {

TEST(RandomPatterns, GeneratesRequestedCount) {
  const RandomPatternBist r(12, 100, 1);
  EXPECT_EQ(r.patterns().size(), 100u);
  for (const auto& p : r.patterns()) {
    EXPECT_EQ(p.v1.width(), 12u);
    EXPECT_EQ(p.v2.width(), 12u);
  }
}

TEST(RandomPatterns, DeterministicBySeed) {
  const RandomPatternBist a(12, 50, 7), b(12, 50, 7);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(a.patterns()[i], b.patterns()[i]);
  const RandomPatternBist c(12, 50, 8);
  bool all_same = true;
  for (std::size_t i = 0; i < 50; ++i)
    all_same = all_same && a.patterns()[i] == c.patterns()[i];
  EXPECT_FALSE(all_same);
}

TEST(RandomPatterns, CleanBusPasses) {
  const soc::SystemConfig cfg;
  const soc::System sys(cfg);
  const RandomPatternBist r(12, 500, 1);
  EXPECT_FALSE(
      r.detects(sys.nominal_address_network(), sys.address_model()));
}

TEST(RandomPatterns, CoverageTrailsMaTests) {
  // The MAF theory's point: random pairs rarely align all aggressors, so
  // with a comparable pattern count they miss defects the 48 MA tests
  // catch -- and never beat them.
  const soc::SystemConfig cfg;
  const soc::System sys(cfg);
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 100, 42);
  const HardwareBist ma(12, false);
  const auto ma_det = ma.run_library(sys.nominal_address_network(),
                                     sys.address_model(), lib);
  const RandomPatternBist rnd(12, 48, 42);
  const auto rnd_det = rnd.run_library(sys.nominal_address_network(),
                                       sys.address_model(), lib);
  EXPECT_DOUBLE_EQ(sim::coverage(ma_det), 1.0);
  EXPECT_LT(sim::coverage(rnd_det), sim::coverage(ma_det));
}

TEST(RandomPatterns, CoverageGrowsWithPatternCount) {
  const soc::SystemConfig cfg;
  const soc::System sys(cfg);
  const auto lib =
      sim::make_defect_library(cfg, soc::BusKind::kAddress, 100, 42);
  double prev = -1.0;
  for (std::size_t count : {16u, 256u, 4096u}) {
    const RandomPatternBist rnd(12, count, 42);
    const double cov = sim::coverage(rnd.run_library(
        sys.nominal_address_network(), sys.address_model(), lib));
    EXPECT_GE(cov, prev) << count;
    prev = cov;
  }
}

}  // namespace
}  // namespace xtest::hwbist
