#include "xtalk/defect.h"

#include <set>

#include <gtest/gtest.h>

#include "xtalk/error_model.h"

namespace xtest::xtalk {
namespace {

RcNetwork nominal12() {
  BusGeometry g;
  g.width = 12;
  return RcNetwork(g);
}

DefectConfig config_for(const RcNetwork& nom, std::size_t count = 50,
                        std::uint64_t seed = 99) {
  DefectConfig dc;
  dc.cth_fF = recommended_cth(nom, 1.6);
  dc.count = count;
  dc.seed = seed;
  return dc;
}

TEST(Defect, TriangularIndexingConsistent) {
  const unsigned w = 5;
  std::vector<double> factors(w * (w - 1) / 2);
  for (std::size_t i = 0; i < factors.size(); ++i)
    factors[i] = 1.0 + 0.01 * static_cast<double>(i);
  const Defect d(w, factors);
  // factor(i,j) == factor(j,i) and all entries distinct by construction.
  std::set<double> seen;
  for (unsigned i = 0; i < w; ++i)
    for (unsigned j = i + 1; j < w; ++j) {
      EXPECT_DOUBLE_EQ(d.factor(i, j), d.factor(j, i));
      seen.insert(d.factor(i, j));
    }
  EXPECT_EQ(seen.size(), factors.size());
}

TEST(Defect, ApplyScalesCouplings) {
  const RcNetwork nom = nominal12();
  std::vector<double> factors(12 * 11 / 2, 1.0);
  Defect d(12, factors);
  const RcNetwork same = d.apply(nom);
  for (unsigned i = 0; i < 12; ++i)
    EXPECT_DOUBLE_EQ(same.net_coupling(i), nom.net_coupling(i));

  factors[0] = 2.5;  // pair (0,1)
  const RcNetwork scaled = Defect(12, factors).apply(nom);
  EXPECT_DOUBLE_EQ(scaled.coupling(0, 1), 2.5 * nom.coupling(0, 1));
  EXPECT_DOUBLE_EQ(scaled.coupling(0, 2), nom.coupling(0, 2));
}

TEST(Defect, DefectiveWiresUsesCth) {
  const RcNetwork nom = nominal12();
  const double cth = recommended_cth(nom, 1.6);
  std::vector<double> factors(12 * 11 / 2, 1.0);
  factors[0] = 10.0;  // blow up pair (0,1)
  const Defect d(12, factors);
  const auto bad = d.defective_wires(nom, cth);
  // Both endpoints of the blown-up pair cross the threshold.
  EXPECT_EQ(bad, (std::vector<unsigned>{0, 1}));
}

TEST(DefectLibrary, GeneratesRequestedCount) {
  const RcNetwork nom = nominal12();
  const DefectLibrary lib = DefectLibrary::generate(nom, config_for(nom));
  EXPECT_EQ(lib.size(), 50u);
  EXPECT_GE(lib.attempts(), lib.size());
}

TEST(DefectLibrary, EveryDefectExceedsCthSomewhere) {
  // The acceptance criterion of Fig. 10: candidates below Cth are benign
  // and discarded.
  const RcNetwork nom = nominal12();
  const DefectConfig dc = config_for(nom);
  const DefectLibrary lib = DefectLibrary::generate(nom, dc);
  for (const Defect& d : lib.defects()) {
    EXPECT_GT(d.apply(nom).max_net_coupling(), dc.cth_fF);
    EXPECT_FALSE(d.defective_wires(nom, dc.cth_fF).empty());
  }
}

TEST(DefectLibrary, DeterministicBySeed) {
  const RcNetwork nom = nominal12();
  const DefectLibrary a = DefectLibrary::generate(nom, config_for(nom, 20, 5));
  const DefectLibrary b = DefectLibrary::generate(nom, config_for(nom, 20, 5));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k)
    for (unsigned i = 0; i < 12; ++i)
      for (unsigned j = i + 1; j < 12; ++j)
        EXPECT_DOUBLE_EQ(a[k].factor(i, j), b[k].factor(i, j));
}

TEST(DefectLibrary, DifferentSeedsDiffer) {
  const RcNetwork nom = nominal12();
  const DefectLibrary a = DefectLibrary::generate(nom, config_for(nom, 5, 1));
  const DefectLibrary b = DefectLibrary::generate(nom, config_for(nom, 5, 2));
  EXPECT_NE(a[0].factor(0, 1), b[0].factor(0, 1));
}

TEST(DefectLibrary, OutermostWiresNeverDefective) {
  // The geometric fact behind Fig. 11's zero-coverage side lines: the
  // outermost wires' nominal net coupling is so much smaller that the
  // 3-sigma=150% distribution cannot push them over Cth.
  const RcNetwork nom = nominal12();
  const DefectLibrary lib =
      DefectLibrary::generate(nom, config_for(nom, 200, 7));
  const auto hist = lib.defective_wire_histogram(nom);
  EXPECT_EQ(hist.front(), 0u);
  EXPECT_EQ(hist.back(), 0u);
  // And the center dominates the edges.
  EXPECT_GT(hist[5] + hist[6], hist[1] + hist[10]);
}

TEST(DefectLibrary, FactorsNonNegative) {
  const RcNetwork nom = nominal12();
  const DefectLibrary lib = DefectLibrary::generate(nom, config_for(nom));
  for (const Defect& d : lib.defects())
    for (unsigned i = 0; i < 12; ++i)
      for (unsigned j = i + 1; j < 12; ++j)
        EXPECT_GE(d.factor(i, j), 0.0);
}

TEST(DefectLibrary, RejectsNonPositiveCth) {
  const RcNetwork nom = nominal12();
  DefectConfig dc;
  dc.cth_fF = 0.0;
  EXPECT_THROW(DefectLibrary::generate(nom, dc), std::invalid_argument);
}

TEST(DefectLibrary, ThrowsWhenYieldTooLow) {
  const RcNetwork nom = nominal12();
  DefectConfig dc = config_for(nom, 10);
  dc.cth_fF = 100.0 * nom.max_net_coupling();  // unreachable threshold
  dc.max_attempts = 2000;
  EXPECT_THROW(DefectLibrary::generate(nom, dc), std::runtime_error);
}

TEST(DefectLibrary, DetectableExactlyWhenAboveCth) {
  // Ties the library to the error model: a defect is detectable by some MA
  // test iff a wire's net coupling exceeds Cth (the ICCAD'99 criterion our
  // calibration enforces).
  const RcNetwork nom = nominal12();
  const double cth = recommended_cth(nom, 1.6);
  const CrosstalkErrorModel model(ErrorModelConfig::calibrated(nom, cth));
  const DefectLibrary lib = DefectLibrary::generate(nom, config_for(nom, 30));
  for (const Defect& d : lib.defects()) {
    const RcNetwork net = d.apply(nom);
    bool any = false;
    for (const MafFault& f : enumerate_mafs(12, false))
      any = any || model.corrupts(net, ma_test(12, f));
    EXPECT_TRUE(any);
  }
}

}  // namespace
}  // namespace xtest::xtalk
