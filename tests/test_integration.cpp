// End-to-end scenarios tying the whole stack together: generator ->
// system -> error model -> campaign, the way the paper's Fig. 9 flow runs.

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "sbst/generator.h"
#include "sim/campaign.h"
#include "sim/signature.h"
#include "sim/verify.h"
#include "soc/system.h"
#include "spec/scenario.h"

namespace xtest {
namespace {

using sim::ResponseSnapshot;

/// Every end-to-end test constructs its system and program through the
/// declarative scenario layer, the same path the CLI and benches use.
const spec::ScenarioSpec& baseline() {
  static const spec::ScenarioSpec s = spec::builtin_scenario("paper-baseline");
  return s;
}

TEST(EndToEnd, SingleInjectedDefectIsDetected) {
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(baseline().program).generate();
  soc::System sys(baseline().system);
  const ResponseSnapshot gold =
      sim::run_and_capture(sys, gen.program, 1'000'000);
  ASSERT_TRUE(gold.completed);

  // Blow up one coupling pair far beyond threshold.
  xtalk::RcNetwork bad = sys.nominal_data_network();
  for (unsigned j = 0; j < 8; ++j)
    if (j != 4) bad.scale_coupling(4, j, 2.5);
  ASSERT_GT(bad.net_coupling(4), sys.data_cth());
  sys.set_data_network(bad);
  const ResponseSnapshot faulty =
      sim::run_and_capture(sys, gen.program, gold.cycles * 16);
  EXPECT_FALSE(faulty.matches(gold));
}

TEST(EndToEnd, SubThresholdPerturbationPasses) {
  // A benign perturbation (below Cth everywhere) must not fail the chip:
  // no over-testing by construction.
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(baseline().program).generate();
  soc::System sys(baseline().system);
  const ResponseSnapshot gold =
      sim::run_and_capture(sys, gen.program, 1'000'000);

  xtalk::RcNetwork mild = sys.nominal_data_network();
  for (unsigned i = 0; i < 8; ++i)
    for (unsigned j = i + 1; j < 8; ++j) mild.scale_coupling(i, j, 1.10);
  ASSERT_LT(mild.max_net_coupling(), sys.data_cth());
  sys.set_data_network(mild);
  const ResponseSnapshot snap =
      sim::run_and_capture(sys, gen.program, gold.cycles * 16);
  EXPECT_TRUE(snap.matches(gold));
}

TEST(EndToEnd, AddressDefectDerailsOrFlagsProgram) {
  const auto sessions = baseline().make_sessions();
  soc::System sys(baseline().system);
  xtalk::RcNetwork bad = sys.nominal_address_network();
  for (unsigned j = 0; j < 12; ++j)
    if (j != 3) bad.scale_coupling(3, j, 3.0);
  ASSERT_GT(bad.net_coupling(3), sys.address_cth());

  bool detected = false;
  for (const auto& s : sessions) {
    if (s.program.tests.empty()) continue;
    sys.clear_defects();
    const ResponseSnapshot gold =
        sim::run_and_capture(sys, s.program, 1'000'000);
    sys.set_address_network(bad);
    const ResponseSnapshot faulty =
        sim::run_and_capture(sys, s.program, gold.cycles * 16);
    detected = detected || !faulty.matches(gold);
  }
  EXPECT_TRUE(detected);
}

TEST(EndToEnd, HandWrittenPaperExampleDataBusTest) {
  // Section 4.1's example: to apply (00000000, 11110111), load from an
  // address with offset 00000000 whose content is 11110111, then store
  // the accumulator.  Under a forced gp fault on data wire 3 the stored
  // response shows 11111111.
  const cpu::AsmResult a = cpu::assemble(R"(
        .org 0x020
        lda 14:0x00     ; offset byte 0x00 = v1, loads v2
        sta resp
        hlt
        .org 0xe00
        .byte 0b11110111
        .org 0x200
resp:   .res 1
  )");
  soc::System sys(baseline().system);
  sys.load_and_reset(a.image, a.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x200), 0xF7);

  sys.set_forced_maf(soc::ForcedMaf{
      soc::BusKind::kData,
      {3, xtalk::MafType::kPositiveGlitch, xtalk::BusDirection::kCoreToCpu}});
  sys.load_and_reset(a.image, a.entry);
  sys.run(1000);
  EXPECT_EQ(sys.memory().read(0x200), 0xFF);
}

TEST(EndToEnd, CompactionSignatureMatchesFig8) {
  // Fig. 8: rising-delay tests on all 8 data lines ADD one-hot values
  // 0x80..0x01; the passing signature is 11111111, a failing test zeroes
  // its bit.
  // Each test: offset byte = v1 = ~one_hot, operand content = v2 = one_hot.
  std::string src = "        .org 0x020\n        cla\n";
  for (int i = 7; i >= 0; --i) {
    const unsigned v1 = ~(1u << i) & 0xFF;
    src += "        add 3:" + std::to_string(v1) + "\n";
  }
  src += "        sta 0x200\n        hlt\n";
  for (int i = 7; i >= 0; --i) {
    const unsigned v1 = ~(1u << i) & 0xFF;
    const unsigned v2 = (1u << i) & 0xFF;
    src += "        .org " + std::to_string(0x300 + v1) + "\n";
    src += "        .byte " + std::to_string(v2) + "\n";
  }
  const cpu::AsmResult a = cpu::assemble(src);
  soc::System sys(baseline().system);
  sys.load_and_reset(a.image, a.entry);
  sys.run(10000);
  EXPECT_EQ(sys.memory().read(0x200), 0xFF);

  // Force a rising-delay fault on line 6 (index 5): its ADD contributes 0
  // and the signature's bit 5 drops.
  sys.set_forced_maf(soc::ForcedMaf{
      soc::BusKind::kData,
      {5, xtalk::MafType::kRisingDelay, xtalk::BusDirection::kCoreToCpu}});
  sys.load_and_reset(a.image, a.entry);
  sys.run(10000);
  EXPECT_EQ(sys.memory().read(0x200), 0xFF & ~(1u << 5));
}

TEST(EndToEnd, DiagnosisFromCompactedSignature) {
  // "The position of the '0' bit tells which test failed": locate the
  // failing MA test from the group signature alone.
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(baseline().program).generate();
  const sim::VerificationResult ver = sim::verify_program(gen.program);

  // Pick a compacted address-bus test with a one-hot pass value.
  const sbst::PlannedTest* target = nullptr;
  for (const auto& t : gen.program.tests)
    if ((t.scheme == sbst::Scheme::kAddrDelay ||
         t.scheme == sbst::Scheme::kAddrGlitch) &&
        t.pass_value && (t.pass_value & (t.pass_value - 1)) == 0)
      target = &t;
  ASSERT_NE(target, nullptr);

  soc::System sys(baseline().system);
  sys.set_forced_maf(soc::ForcedMaf{soc::BusKind::kAddress, target->fault});
  const ResponseSnapshot faulty =
      sim::run_and_capture(sys, gen.program, ver.max_cycles);

  // Find the response cell for the target's group and check the missing
  // bit identifies the test.
  for (std::size_t k = 0; k < gen.program.response_cells.size(); ++k) {
    if (gen.program.response_cells[k] != target->response_cell) continue;
    const std::uint8_t gold_sig = ver.gold.values[k];
    const std::uint8_t bad_sig = faulty.values[k];
    EXPECT_NE(gold_sig, bad_sig);
    EXPECT_TRUE((gold_sig ^ bad_sig) & target->pass_value);
  }
}

TEST(EndToEnd, MmioCoreInterconnectTest) {
  // Section 3's extension: the CPU tests the bus towards a non-memory
  // core through memory-mapped I/O.  Write v2 after driving v1 on the
  // data bus; a forced cpu->core fault corrupts the device register.
  soc::System sys(baseline().system);
  soc::RegisterFileDevice dev(256);
  sys.attach_mmio(0xE00, 256, &dev);
  const cpu::AsmResult a = cpu::assemble(R"(
        .org 0x020
        lda src
        sta 14:0x00    ; offset byte 0x00 = v1; ACC = v2 towards the core
        hlt
        .org 0x080
src:    .byte 0b11111110
  )");
  sys.load_and_reset(a.image, a.entry);
  sys.run(1000);
  EXPECT_EQ(dev.read(0x00), 0xFE);

  sys.set_forced_maf(soc::ForcedMaf{
      soc::BusKind::kData,
      {0, xtalk::MafType::kPositiveGlitch, xtalk::BusDirection::kCpuToCore}});
  sys.load_and_reset(a.image, a.entry);
  sys.run(1000);
  EXPECT_EQ(dev.read(0x00), 0xFF);
}

}  // namespace
}  // namespace xtest
