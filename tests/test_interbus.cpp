// Inter-bus coupling ("treating them as one bus", Section 5): wires of a
// neighbouring bus act as quiet capacitive load.  Quiet load never injects
// charge, so it damps glitches and stretches delays -- inter-bus defects
// are a delay-test-only fault class.

#include <gtest/gtest.h>

#include "sbst/generator.h"
#include "sim/signature.h"
#include "soc/system.h"
#include "xtalk/error_model.h"

namespace xtest {
namespace {

using xtalk::BusDirection;
using xtalk::MafType;

TEST(InterBus, GroundLoadAccumulates) {
  xtalk::BusGeometry g;
  g.width = 8;
  xtalk::RcNetwork net(g);
  const double before = net.ground_cap(3);
  net.add_ground_load(3, 100.0);
  EXPECT_DOUBLE_EQ(net.ground_cap(3), before + 100.0);
  EXPECT_DOUBLE_EQ(net.ground_cap(2), before);
  // Net coupling is unchanged: the load is to another bus's quiet wire.
  EXPECT_DOUBLE_EQ(net.net_coupling(3), xtalk::RcNetwork(g).net_coupling(3));
}

TEST(InterBus, LoadDampsGlitchesAndStretchesDelays) {
  xtalk::BusGeometry g;
  g.width = 8;
  const xtalk::RcNetwork nom(g);
  xtalk::RcNetwork loaded(g);
  loaded.add_ground_load(4, 500.0);

  const xtalk::CrosstalkErrorModel model(xtalk::ErrorModelConfig::calibrated(
      nom, xtalk::recommended_cth(nom, 1.6)));
  const auto gp = xtalk::ma_test(
      8, {4, MafType::kPositiveGlitch, BusDirection::kCoreToCpu});
  const auto dr = xtalk::ma_test(
      8, {4, MafType::kRisingDelay, BusDirection::kCoreToCpu});

  EXPECT_LT(model.glitch_amplitude(loaded, gp, 4),
            model.glitch_amplitude(nom, gp, 4));
  EXPECT_GT(model.transition_delay(loaded, dr, 4),
            model.transition_delay(nom, dr, 4));
}

TEST(InterBus, LoadDefectDetectedByDelayTestsOnly) {
  // The analytical criterion: under the MA delay excitation the error
  // fires when Cg + L + 2*Cnet > Cg + 2*Cth, i.e. L > 2*(Cth - Cnet).
  soc::System sys;
  const unsigned victim = 6;
  const double cnet = sys.nominal_address_network().net_coupling(victim);
  const double threshold = 2.0 * (sys.address_cth() - cnet);

  xtalk::RcNetwork bad = sys.nominal_address_network();
  bad.add_ground_load(victim, 1.3 * threshold);

  const auto dr = xtalk::ma_test(
      12, {victim, MafType::kRisingDelay, BusDirection::kCpuToCore});
  const auto gp = xtalk::ma_test(
      12, {victim, MafType::kPositiveGlitch, BusDirection::kCpuToCore});
  EXPECT_TRUE(sys.address_model().corrupts(bad, dr));
  EXPECT_FALSE(sys.address_model().corrupts(bad, gp));

  xtalk::RcNetwork mild = sys.nominal_address_network();
  mild.add_ground_load(victim, 0.7 * threshold);
  EXPECT_FALSE(sys.address_model().corrupts(mild, dr));
}

TEST(InterBus, ProgramDetectsLoadDefect) {
  const auto sessions =
      sbst::TestProgramGenerator::generate_sessions(sbst::GeneratorConfig{});
  soc::System sys;
  const unsigned victim = 6;
  const double threshold =
      2.0 * (sys.address_cth() -
             sys.nominal_address_network().net_coupling(victim));
  xtalk::RcNetwork bad = sys.nominal_address_network();
  bad.add_ground_load(victim, 1.5 * threshold);

  bool detected = false;
  for (const auto& s : sessions) {
    if (s.program.tests.empty()) continue;
    sys.clear_defects();
    const auto gold = sim::run_and_capture(sys, s.program, 1'000'000);
    sys.set_address_network(bad);
    const auto faulty =
        sim::run_and_capture(sys, s.program, gold.cycles * 16);
    detected = detected || !faulty.matches(gold);
  }
  EXPECT_TRUE(detected);
}

}  // namespace
}  // namespace xtest
