#include "sim/diagnosis.h"

#include <gtest/gtest.h>

#include "sbst/generator.h"
#include "sim/verify.h"
#include "soc/system.h"

namespace xtest::sim {
namespace {

struct Prepared {
  sbst::GenerationResult gen;
  VerificationResult ver;

  Prepared()
      : gen(sbst::TestProgramGenerator(sbst::GeneratorConfig{}).generate()),
        ver(verify_program(gen.program)) {}
};

TEST(Diagnosis, CleanResponseYieldsNoCandidates) {
  Prepared p;
  EXPECT_TRUE(diagnose(p.gen.program, p.ver.gold, p.ver.gold).empty());
}

TEST(Diagnosis, LocatesForcedCompactedFault) {
  // Force each compacted, one-hot test in turn; the diagnosis must include
  // the forced fault among its candidates.
  Prepared p;
  soc::System sys;
  int checked = 0;
  for (const auto& t : p.gen.program.tests) {
    if (t.pass_value == 0 || (t.pass_value & (t.pass_value - 1)) != 0)
      continue;
    if (t.scheme != sbst::Scheme::kAddrDelay &&
        t.scheme != sbst::Scheme::kAddrGlitch)
      continue;
    sys.set_forced_maf(soc::ForcedMaf{t.bus, t.fault});
    const ResponseSnapshot snap =
        run_and_capture(sys, p.gen.program, p.ver.max_cycles);
    sys.set_forced_maf(std::nullopt);
    const auto candidates = diagnose(p.gen.program, p.ver.gold, snap);
    ASSERT_FALSE(candidates.empty()) << t.fault.label();
    bool found = false;
    for (const auto& c : candidates) found = found || c.fault == t.fault;
    EXPECT_TRUE(found) << t.fault.label();
    ++checked;
    if (checked >= 8) break;  // keep the suite fast
  }
  EXPECT_GT(checked, 0);
}

TEST(Diagnosis, LocatesFailedWriteTest) {
  Prepared p;
  soc::System sys;
  const sbst::PlannedTest* write = nullptr;
  for (const auto& t : p.gen.program.tests)
    if (t.scheme == sbst::Scheme::kDataWrite) {
      write = &t;
      break;
    }
  ASSERT_NE(write, nullptr);
  sys.set_forced_maf(soc::ForcedMaf{write->bus, write->fault});
  const ResponseSnapshot snap =
      run_and_capture(sys, p.gen.program, p.ver.max_cycles);
  const auto candidates = diagnose(p.gen.program, p.ver.gold, snap);
  bool found = false;
  for (const auto& c : candidates) found = found || c.fault == write->fault;
  EXPECT_TRUE(found);
}

TEST(Diagnosis, TruncatedRunImplicatesDivergenceSchemes) {
  // Force a fault on a real JMP-scheme test: the run typically derails
  // (the corrupted fetch lands on an illegal opcode), and the diagnosis
  // must implicate the forced fault among the truncation-window
  // candidates.
  Prepared p;
  const sbst::PlannedTest* jmp_test = nullptr;
  for (const auto& t : p.gen.program.tests)
    if (t.scheme == sbst::Scheme::kAddrDelayJmp ||
        t.scheme == sbst::Scheme::kAddrGlitchJmp) {
      jmp_test = &t;
      break;
    }
  ASSERT_NE(jmp_test, nullptr);

  soc::System sys;
  sys.set_forced_maf(soc::ForcedMaf{jmp_test->bus, jmp_test->fault});
  const ResponseSnapshot snap =
      run_and_capture(sys, p.gen.program, p.ver.max_cycles);
  ASSERT_FALSE(snap.matches(p.ver.gold));

  const auto candidates = diagnose(p.gen.program, p.ver.gold, snap);
  bool found = false;
  for (const auto& c : candidates)
    found = found || c.fault == jmp_test->fault;
  EXPECT_TRUE(found);
}

TEST(Diagnosis, TruncationWindowShrinksCandidates) {
  // The watermark bracketing must produce far fewer candidates than the
  // total number of divergence-scheme tests.  An address-only program in
  // the delays-first order realises many tests through the compact JMP
  // schemes.
  sbst::GeneratorConfig cfg;
  cfg.include_data_bus = false;
  cfg.order = sbst::PlacementOrder::kDelaysFirst;
  const sbst::GenerationResult gen =
      sbst::TestProgramGenerator(cfg).generate();
  const VerificationResult ver = verify_program(gen.program);

  std::size_t jmp_total = 0;
  const sbst::PlannedTest* jmp_test = nullptr;
  for (const auto& t : gen.program.tests)
    if (t.scheme == sbst::Scheme::kAddrDelayJmp ||
        t.scheme == sbst::Scheme::kAddrGlitchJmp) {
      ++jmp_total;
      if (jmp_test == nullptr) jmp_test = &t;
    }
  ASSERT_NE(jmp_test, nullptr);
  ASSERT_GT(jmp_total, 2u);

  soc::System sys;
  sys.set_forced_maf(soc::ForcedMaf{jmp_test->bus, jmp_test->fault});
  const ResponseSnapshot snap =
      run_and_capture(sys, gen.program, ver.max_cycles);
  const auto candidates = diagnose(gen.program, ver.gold, snap);
  ASSERT_FALSE(candidates.empty());
  if (!snap.completed) {
    std::size_t jmp_candidates = 0;
    for (const auto& c : candidates) {
      const auto& t = gen.program.tests[c.test_index];
      jmp_candidates += t.scheme == sbst::Scheme::kAddrDelayJmp ||
                        t.scheme == sbst::Scheme::kAddrGlitchJmp;
    }
    EXPECT_LT(jmp_candidates, jmp_total);
  }
}

TEST(Diagnosis, EvidenceStringsAreInformative) {
  Prepared p;
  soc::System sys;
  const sbst::PlannedTest* t = nullptr;
  for (const auto& cand : p.gen.program.tests)
    if (cand.pass_value && (cand.pass_value & (cand.pass_value - 1)) == 0 &&
        cand.scheme == sbst::Scheme::kAddrGlitch) {
      t = &cand;
      break;
    }
  ASSERT_NE(t, nullptr);
  sys.set_forced_maf(soc::ForcedMaf{t->bus, t->fault});
  const ResponseSnapshot snap =
      run_and_capture(sys, p.gen.program, p.ver.max_cycles);
  const auto candidates = diagnose(p.gen.program, p.ver.gold, snap);
  ASSERT_FALSE(candidates.empty());
  for (const auto& c : candidates) EXPECT_FALSE(c.evidence.empty());
}

}  // namespace
}  // namespace xtest::sim
