#include "xtalk/transient.h"

#include <cmath>

#include <gtest/gtest.h>

#include "xtalk/defect.h"

namespace xtest::xtalk {
namespace {

RcNetwork nominal(unsigned width = 8) {
  BusGeometry g;
  g.width = width;
  return RcNetwork(g);
}

TEST(LuSolver, SolvesSmallSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  LuSolver lu({2, 1, 1, 3}, 2);
  std::vector<double> b{5, 10};
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LuSolver, PivotsOnZeroDiagonal) {
  LuSolver lu({0, 1, 1, 0}, 2);
  std::vector<double> b{2, 3};
  lu.solve(b);
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuSolver, ReportsSingular) {
  LuSolver lu({1, 2, 2, 4}, 2);
  EXPECT_TRUE(lu.singular());
  std::vector<double> b{1, 1};
  EXPECT_THROW(lu.solve(b), std::runtime_error);
}

TEST(Transient, IsolatedWireMatchesElmoreDelay) {
  // A quiet-aggressor rising transition: the 50% crossing of an RC wire is
  // within ~20% of ln2 * R * Ceff (Elmore is a mild overestimate because
  // quiet neighbours partially follow the victim).
  const RcNetwork nom = nominal();
  const TransientSimulator sim;
  const CrosstalkErrorModel analytic(
      ErrorModelConfig::calibrated(nom, recommended_cth(nom, 1.6)));
  const VectorPair quiet{util::BusWord(8, 0x00), util::BusWord(8, 0x10)};
  const auto resp = sim.simulate(nom, quiet);
  const double elmore = analytic.transition_delay(nom, quiet, 4);
  EXPECT_GT(resp[4].crossing_time_ns, 0.0);
  EXPECT_NEAR(resp[4].crossing_time_ns, elmore, 0.25 * elmore);
}

TEST(Transient, MillerEffectSlowsOpposingTransition) {
  const RcNetwork nom = nominal();
  const TransientSimulator sim;
  const VectorPair quiet{util::BusWord(8, 0x00), util::BusWord(8, 0x10)};
  const VectorPair ma =
      ma_test(8, {4, MafType::kRisingDelay, BusDirection::kCoreToCpu});
  const double d_quiet = sim.simulate(nom, quiet)[4].crossing_time_ns;
  const double d_ma = sim.simulate(nom, ma)[4].crossing_time_ns;
  EXPECT_GT(d_ma, 1.5 * d_quiet);
}

TEST(Transient, GlitchPeakBelowChargeShareBound) {
  // The analytical charge-sharing expression is the instantaneous-
  // aggressor bound; the real (finite-slew) peak must lie below it but
  // remain a substantial fraction.
  const RcNetwork nom = nominal();
  const TransientSimulator sim;
  const CrosstalkErrorModel analytic(
      ErrorModelConfig::calibrated(nom, recommended_cth(nom, 1.6)));
  const VectorPair gp =
      ma_test(8, {4, MafType::kPositiveGlitch, BusDirection::kCoreToCpu});
  const double peak = sim.simulate(nom, gp)[4].peak_excursion_v;
  const double bound = analytic.glitch_amplitude(nom, gp, 4);
  EXPECT_GT(peak, 0.3 * bound);
  EXPECT_LT(peak, bound);
}

TEST(Transient, GlitchPeakMonotoneInCoupling) {
  const RcNetwork nom = nominal();
  const TransientSimulator sim;
  const VectorPair gp =
      ma_test(8, {4, MafType::kPositiveGlitch, BusDirection::kCoreToCpu});
  double prev = 0.0;
  for (double s = 1.0; s <= 3.0; s += 0.5) {
    RcNetwork net = nom;
    for (unsigned j = 0; j < 8; ++j)
      if (j != 4) net.scale_coupling(4, j, s);
    const double peak = sim.simulate(net, gp)[4].peak_excursion_v;
    EXPECT_GT(peak, prev) << "scale " << s;
    prev = peak;
  }
}

TEST(Transient, NegativeGlitchMirrorsPositive) {
  const RcNetwork nom = nominal();
  const TransientSimulator sim;
  const VectorPair gp =
      ma_test(8, {4, MafType::kPositiveGlitch, BusDirection::kCoreToCpu});
  const VectorPair gn =
      ma_test(8, {4, MafType::kNegativeGlitch, BusDirection::kCoreToCpu});
  const double up = sim.simulate(nom, gp)[4].peak_excursion_v;
  const double down = sim.simulate(nom, gn)[4].peak_excursion_v;
  EXPECT_GT(up, 0.0);
  EXPECT_LT(down, 0.0);
  EXPECT_NEAR(up, -down, 0.05 * up);  // symmetric RC network
}

TEST(Transient, WaveformSettlesToFinalValue) {
  const RcNetwork nom = nominal();
  const TransientSimulator sim;
  const VectorPair p{util::BusWord(8, 0x0F), util::BusWord(8, 0xF0)};
  for (unsigned wire : {0u, 3u, 4u, 7u}) {
    const auto wf = sim.waveform(nom, p, wire);
    ASSERT_GT(wf.size(), 10u);
    const double target = p.v2.bit(wire) ? sim.config().vdd_v : 0.0;
    EXPECT_NEAR(wf.back(), target, 1e-3) << "wire " << wire;
    EXPECT_NEAR(wf.front(), p.v1.bit(wire) ? sim.config().vdd_v : 0.0, 1e-9);
  }
}

TEST(Transient, CalibratedReceiverBoundaryAtCth) {
  // With transient-calibrated thresholds, the MA excitation errs exactly
  // when the victim's net coupling crosses Cth -- the same contract the
  // analytical model satisfies by construction.
  const RcNetwork nom = nominal();
  const double cth = recommended_cth(nom, 1.6);
  const TransientSimulator sim;
  const ErrorModelConfig thresholds = transient_calibrated(nom, cth, sim);
  const VectorPair gp =
      ma_test(8, {4, MafType::kPositiveGlitch, BusDirection::kCoreToCpu});

  auto scaled = [&](double target) {
    RcNetwork net = nom;
    const double f = target / nom.net_coupling(4);
    for (unsigned j = 0; j < 8; ++j)
      if (j != 4) net.scale_coupling(4, j, f);
    return net;
  };
  EXPECT_EQ(sim.receive(scaled(0.95 * cth), gp, thresholds), gp.v2);
  EXPECT_NE(sim.receive(scaled(1.05 * cth), gp, thresholds), gp.v2);
}

TEST(Transient, DelayReceiverFlagsSlowVictim) {
  const RcNetwork nom = nominal();
  const double cth = recommended_cth(nom, 1.6);
  const TransientSimulator sim;
  const ErrorModelConfig thresholds = transient_calibrated(nom, cth, sim);
  const VectorPair dr =
      ma_test(8, {4, MafType::kRisingDelay, BusDirection::kCoreToCpu});
  RcNetwork slow = nom;
  for (unsigned j = 0; j < 8; ++j)
    if (j != 4) slow.scale_coupling(4, j, 3.0);
  ASSERT_GT(slow.net_coupling(4), cth);
  const util::BusWord got = sim.receive(slow, dr, thresholds);
  EXPECT_FALSE(got.bit(4));  // old value sampled
}

TEST(Transient, AnalyticGlitchThresholdIsConservative) {
  // ErrorModelConfig::calibrated uses the instant charge-share bound, so
  // its voltage threshold exceeds the transient one at the same Cth: the
  // analytical model never under-estimates glitch severity.
  const RcNetwork nom = nominal();
  const double cth = recommended_cth(nom, 1.6);
  const TransientSimulator sim;
  const ErrorModelConfig analytic = ErrorModelConfig::calibrated(nom, cth);
  const ErrorModelConfig transient = transient_calibrated(nom, cth, sim);
  EXPECT_GT(analytic.glitch_threshold_v, transient.glitch_threshold_v);
  // Both delay calibrations are within ~25% of each other (Elmore).
  EXPECT_NEAR(analytic.delay_slack_ns, transient.delay_slack_ns,
              0.25 * analytic.delay_slack_ns);
}

TEST(Transient, StableBusProducesNoActivity) {
  const RcNetwork nom = nominal();
  const TransientSimulator sim;
  const VectorPair p{util::BusWord(8, 0x5A), util::BusWord(8, 0x5A)};
  const auto resp = sim.simulate(nom, p);
  for (const auto& r : resp) {
    EXPECT_NEAR(r.peak_excursion_v, 0.0, 1e-9);
    EXPECT_EQ(r.crossing_time_ns, 0.0);
  }
}

class TransientWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(TransientWidths, CenterGlitchExceedsEdgeGlitch) {
  const unsigned w = GetParam();
  const RcNetwork nom = nominal(w);
  const TransientSimulator sim;
  const double center =
      sim.simulate(nom, ma_test(w, {w / 2, MafType::kPositiveGlitch,
                                    BusDirection::kCoreToCpu}))[w / 2]
          .peak_excursion_v;
  const double edge =
      sim.simulate(nom, ma_test(w, {0, MafType::kPositiveGlitch,
                                    BusDirection::kCoreToCpu}))[0]
          .peak_excursion_v;
  EXPECT_GT(center, edge);
}

INSTANTIATE_TEST_SUITE_P(Widths, TransientWidths,
                         ::testing::Values(4u, 8u, 12u));

}  // namespace
}  // namespace xtest::xtalk
