// Property tests for sbst::ProgramSlice (src/sbst/slice.h): splitting a
// self-test program at ANY instruction boundary and resuming must be
// invisible -- same memory image, same cycle count, same halt reason as
// the uninterrupted run -- on every execution tier, at 1 and 4 checker
// threads, and across different System instances.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sbst/generator.h"
#include "sbst/slice.h"
#include "soc/system.h"
#include "spec/scenario.h"
#include "util/parallel.h"

using namespace xtest;

namespace {

constexpr std::uint64_t kBudget = 1u << 20;  // far past any session's halt

soc::SystemConfig tier_config(cpu::ExecTier tier) {
  soc::SystemConfig cfg;  // the paper-baseline electricals
  cfg.exec_tier = tier;
  return cfg;
}

/// The uninterrupted reference: one slice, one budget.
soc::SliceState unsliced(const soc::SystemConfig& cfg,
                         const sbst::TestProgram& prog) {
  soc::System sys(cfg);
  sbst::ProgramSlice slice(prog);
  slice.run(sys, kBudget);
  EXPECT_TRUE(slice.halted());
  return slice.state();
}

/// Cumulative cycle count after every instruction: run(1) always rounds up
/// to the next instruction boundary, so stepping with budget 1 enumerates
/// exactly the places a slice can be cut.
std::vector<std::uint64_t> instruction_boundaries(
    const soc::SystemConfig& cfg, const sbst::TestProgram& prog) {
  soc::System sys(cfg);
  sbst::ProgramSlice slice(prog);
  std::vector<std::uint64_t> cuts;
  while (!slice.halted() && slice.cycles() < kBudget) {
    slice.run(sys, 1);
    cuts.push_back(slice.cycles());
  }
  EXPECT_TRUE(slice.halted());
  return cuts;
}

void expect_same_state(const soc::SliceState& got,
                       const soc::SliceState& want, std::uint64_t cut) {
  EXPECT_EQ(got.cpu.cycles, want.cpu.cycles) << "cut at " << cut;
  EXPECT_EQ(got.cpu.reason, want.cpu.reason) << "cut at " << cut;
  EXPECT_EQ(got.cpu.pc, want.cpu.pc) << "cut at " << cut;
  EXPECT_EQ(got.cpu.acc, want.cpu.acc) << "cut at " << cut;
  EXPECT_EQ(got.memory, want.memory) << "cut at " << cut;
}

/// The property itself: for every boundary, run [0, cut] on one System and
/// [cut, halt] on ANOTHER System, and compare with the unsliced run.  The
/// boundary sweep is itself sharded over `threads` workers (each worker
/// owns private Systems, so this also soaks concurrent slicing).
void check_every_boundary(cpu::ExecTier tier, unsigned threads) {
  const soc::SystemConfig cfg = tier_config(tier);
  // A compact but complete program: single-session generation over both
  // buses exercises every test kind the generator emits.
  spec::ScenarioSpec scn;
  scn.multi_session = false;
  const sbst::TestProgram prog = scn.make_sessions()[0].program;

  const soc::SliceState want = unsliced(cfg, prog);
  const std::vector<std::uint64_t> cuts = instruction_boundaries(cfg, prog);
  ASSERT_FALSE(cuts.empty());
  // The last boundary IS the halt; cutting there is the unsliced run.
  const auto errors = util::parallel_for_items(
      cuts.size(), {threads}, [&](std::size_t i, unsigned) {
        soc::System first(cfg);
        soc::System second(cfg);
        sbst::ProgramSlice slice(prog);
        slice.run(first, cuts[i]);  // budget == absolute cycles: first run
        EXPECT_EQ(slice.cycles(), cuts[i]);
        if (!slice.halted()) slice.run(second, kBudget);
        EXPECT_TRUE(slice.halted());
        expect_same_state(slice.state(), want, cuts[i]);
      });
  EXPECT_TRUE(errors.empty());
}

TEST(ProgramSlice, EveryBoundaryReferenceSerial) {
  check_every_boundary(cpu::ExecTier::kReference, 1);
}

TEST(ProgramSlice, EveryBoundaryReferenceThreaded) {
  check_every_boundary(cpu::ExecTier::kReference, 4);
}

TEST(ProgramSlice, EveryBoundaryDecodedSerial) {
  check_every_boundary(cpu::ExecTier::kDecoded, 1);
}

TEST(ProgramSlice, EveryBoundaryDecodedThreaded) {
  check_every_boundary(cpu::ExecTier::kDecoded, 4);
}

// Tiers must agree with each other slice-for-slice, not just with their
// own unsliced runs: a fixed ping-pong budget schedule on the decoded
// tier must land on exactly the reference tier's state.
TEST(ProgramSlice, TiersAgreeUnderPingPongSlicing) {
  spec::ScenarioSpec scn;
  scn.multi_session = false;
  const sbst::TestProgram prog = scn.make_sessions()[0].program;
  const soc::SliceState want =
      unsliced(tier_config(cpu::ExecTier::kReference), prog);

  const soc::SystemConfig cfg = tier_config(cpu::ExecTier::kDecoded);
  soc::System a(cfg);
  soc::System b(cfg);
  sbst::ProgramSlice slice(prog);
  std::uint64_t budget = 7;  // deliberately ragged budgets
  int swaps = 0;
  while (!slice.halted()) {
    ASSERT_LT(slice.cycles(), kBudget);
    slice.run(++swaps % 2 ? a : b, budget);
    budget = budget * 3 + 1;
  }
  expect_same_state(slice.state(), want, 0);
  EXPECT_GE(swaps, 2);
}

// Responses can be unloaded from a parked slice without any System: the
// suspended memory IS the tester-visible state.
TEST(ProgramSlice, MemoryAtReadsSuspendedMemory) {
  spec::ScenarioSpec scn;
  scn.multi_session = false;
  const sbst::TestProgram prog = scn.make_sessions()[0].program;
  soc::System sys(tier_config(cpu::ExecTier::kReference));
  sbst::ProgramSlice slice(prog);
  slice.run(sys, kBudget);
  ASSERT_TRUE(slice.halted());
  for (const cpu::Addr cell : prog.response_cells)
    EXPECT_EQ(slice.memory_at(cell), slice.state().memory[cell]);
}

}  // namespace
